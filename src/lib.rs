#![warn(missing_docs)]

//! **multiscalar** — a from-scratch Rust reproduction of Jacobson, Bennett,
//! Sharma & Smith, *"Control Flow Speculation in Multiscalar Processors"*
//! (HPCA-3, 1997).
//!
//! This meta crate re-exports the whole system under one roof:
//!
//! * [`isa`] — the RISC-style instruction set, program builder and
//!   interpreter the workloads run on;
//! * [`cfg`](mod@cfg) — control-flow graphs, dominators and natural loops;
//! * [`taskform`] — the Multiscalar task former (compiler pass) producing
//!   tasks with up to four exits and their headers;
//! * [`workloads`] — SPEC92-integer-analog benchmark generators
//!   (gcc, compress, espresso, sc, xlisp);
//! * [`core`] — the paper's contribution: multi-way prediction automata,
//!   GLOBAL/PER/PATH history schemes, DOLC index construction,
//!   return-address stacks and (correlated) task target buffers;
//! * [`sim`] — the functional simulator (task traces, miss-rate
//!   measurement) and the ring timing simulator (IPC);
//! * [`analyze`] — static analysis passes (IR validation, TFG checking,
//!   create-mask dataflow) behind `harness lint`;
//! * [`harness`] — one function per paper table/figure.
//!
//! # Quickstart
//!
//! ```
//! use multiscalar::core::automata::LastExitHysteresis;
//! use multiscalar::core::dolc::Dolc;
//! use multiscalar::core::history::PathPredictor;
//! use multiscalar::sim::{measure, trace};
//! use multiscalar::taskform::TaskFormer;
//! use multiscalar::workloads::{Spec92, WorkloadParams};
//!
//! // 1. Generate a workload and break it into Multiscalar tasks.
//! let w = Spec92::Compress.build(&WorkloadParams::small(42));
//! let tasks = TaskFormer::default().form(&w.program).unwrap();
//!
//! // 2. Execute it, collecting the task-level trace.
//! let run = trace::collect_trace(&w.program, &tasks, w.max_steps).unwrap();
//!
//! // 3. Drive the paper's recommended predictor over the trace.
//! let descs = measure::task_descs(&tasks);
//! let mut pred: PathPredictor<LastExitHysteresis<2>> =
//!     PathPredictor::new(Dolc::parse("6-5-8-9 (3)").unwrap());
//! let stats = measure::measure_exits(&mut pred, &descs, &run.events);
//! assert!(stats.miss_rate() < 0.5);
//! ```

pub use multiscalar_analyze as analyze;
pub use multiscalar_cfg as cfg;
pub use multiscalar_core as core;
pub use multiscalar_harness as harness;
pub use multiscalar_isa as isa;
pub use multiscalar_sim as sim;
pub use multiscalar_taskform as taskform;
pub use multiscalar_workloads as workloads;
