//! Intra-task reachability, shared by the dead-exit detector
//! ([`crate::tfg_check`]) and the create-mask dataflow ([`crate::mask`]).

use multiscalar_cfg::{BlockId, Cfg, EdgeKind};
use multiscalar_isa::Program;
use multiscalar_taskform::{Task, TaskProgram};
use std::collections::{HashMap, HashSet};

/// Builds the CFG of every function once; passes index it by raw `FuncId`.
pub(crate) fn build_cfgs(program: &Program) -> HashMap<u32, Cfg> {
    (0..program.functions().len() as u32)
        .map(|f| (f, Cfg::build(program, multiscalar_isa::FuncId(f))))
        .collect()
}

/// The blocks of `task` reachable from its entry following intra-task
/// control flow — the fixed point of "entry block ∪ successors within the
/// task". Only fall-through, taken-branch and jump edges are intra-task;
/// call-return and indirect-case targets are always task entries of their
/// own.
///
/// Returns `None` when the task's entry does not start a basic block (a
/// malformed partition, diagnosed separately by the TFG checker).
pub(crate) fn reachable_blocks(
    cfg: &Cfg,
    tasks: &TaskProgram,
    task: &Task,
) -> Option<HashSet<BlockId>> {
    let entry = cfg.block_at(task.entry())?;
    let tid = task.id();
    let mut seen: HashSet<BlockId> = HashSet::new();
    let mut stack = vec![entry];
    seen.insert(entry);
    while let Some(b) = stack.pop() {
        for e in cfg.block(b).succs() {
            if !matches!(
                e.kind,
                EdgeKind::FallThrough | EdgeKind::Taken | EdgeKind::Jump
            ) {
                continue;
            }
            let start = cfg.block(e.to).start();
            if tasks.task_at(start) == Some(tid) && seen.insert(e.to) {
                stack.push(e.to);
            }
        }
    }
    Some(seen)
}
