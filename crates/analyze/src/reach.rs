//! Intra-task reachability, shared by the dead-exit detector
//! ([`crate::tfg_check`]) and the create-mask dataflow ([`crate::mask`]).

use multiscalar_cfg::{BlockId, Cfg, EdgeKind};
use multiscalar_isa::Program;
use multiscalar_taskform::{Task, TaskProgram};
use std::collections::{HashMap, HashSet};

/// Builds the CFG of every function once; passes index it by raw `FuncId`.
///
/// Every task entry of the partition is injected as a block leader: the
/// partition defines those boundaries (an assembler `.task` directive may
/// start a task mid-block of the plain CFG), and the checkers must reason
/// over the same block structure the former used. For partitions whose
/// entries already fall on natural leaders — every former-derived
/// partition without declared entries — the injected leaders are no-ops
/// and the CFGs are identical to the plain build.
pub(crate) fn build_cfgs(program: &Program, tasks: &TaskProgram) -> HashMap<u32, Cfg> {
    let mut entries: HashMap<u32, Vec<multiscalar_isa::Addr>> = HashMap::new();
    for t in tasks.tasks() {
        entries.entry(t.func().0).or_default().push(t.entry());
    }
    (0..program.functions().len() as u32)
        .map(|f| {
            let extra = entries.get(&f).map(Vec::as_slice).unwrap_or(&[]);
            let cfg =
                multiscalar_cfg::build_cfg_with_leaders(program, multiscalar_isa::FuncId(f), extra);
            (f, cfg)
        })
        .collect()
}

/// The blocks of `task` reachable from its entry following intra-task
/// control flow — the fixed point of "entry block ∪ successors within the
/// task". Only fall-through, taken-branch and jump edges are intra-task;
/// call-return and indirect-case targets are always task entries of their
/// own.
///
/// Returns `None` when the task's entry does not start a basic block (a
/// malformed partition, diagnosed separately by the TFG checker).
pub(crate) fn reachable_blocks(
    cfg: &Cfg,
    tasks: &TaskProgram,
    task: &Task,
) -> Option<HashSet<BlockId>> {
    let entry = cfg.block_at(task.entry())?;
    let tid = task.id();
    let mut seen: HashSet<BlockId> = HashSet::new();
    let mut stack = vec![entry];
    seen.insert(entry);
    while let Some(b) = stack.pop() {
        for e in cfg.block(b).succs() {
            if !matches!(
                e.kind,
                EdgeKind::FallThrough | EdgeKind::Taken | EdgeKind::Jump
            ) {
                continue;
            }
            let start = cfg.block(e.to).start();
            if tasks.task_at(start) == Some(tid) && seen.insert(e.to) {
                stack.push(e.to);
            }
        }
    }
    Some(seen)
}
