//! Interprocedural register liveness: dead-write and maybe-uninit-read
//! lints.
//!
//! Liveness runs backward on the [`crate::dataflow`] engine with one
//! summary per function: `uses` (registers the function may read before
//! redefining, transitively through its callees) and `must_def`
//! (registers it definitely writes on every path to a return). A call
//! site then transfers as `live = callee.uses | (live & !callee.must_def)`
//! — the classic use/kill pair.
//!
//! What is live at a function's *return* depends on its callers, so the
//! driver iterates: each round solves every function under the current
//! return-liveness and joins the observed live-after-call sets back into
//! the callees. The bitmask lattice is finite, so the loop converges.
//!
//! Two lints come out:
//!
//! * [`DEAD_WRITE`](crate::diag::codes) (`N060`) — a register write no
//!   path reads before its next definition. Each carries a machine
//!   [`DeadWrite`] claim the fuzz soundness oracle replays against
//!   concrete executions.
//! * `UNINIT_READ` (`N061`) — a read in the entry function that
//!   must-initialisation cannot prove dominated by a write. Registers
//!   never written anywhere in the program are exempt (the conventional
//!   zero-register idiom), as are reads by an instruction that rewrites
//!   the same register (accumulating from the architectural zero).

use crate::dataflow::{self, Analysis, BlockId, Direction};
use crate::diag::{codes, Diagnostic};
use multiscalar_cfg::{Cfg, Terminator};
use multiscalar_isa::{Addr, FuncId, Instruction, Program, Reg};

/// A machine-checkable dead-write claim: after the write at `pc`, no
/// instruction reads `reg` before `reg` is written again (or execution
/// ends). The fuzz soundness oracle falsifies the analysis by exhibiting
/// a concrete run that reads the written value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeadWrite {
    /// Address of the writing instruction.
    pub pc: Addr,
    /// The register whose written value is claimed dead.
    pub reg: Reg,
}

/// Everything the liveness pass produces.
#[derive(Debug, Clone)]
pub struct LivenessReport {
    /// Human-facing diagnostics (all note severity).
    pub diags: Vec<Diagnostic>,
    /// Dead-write claims for the soundness oracle.
    pub claims: Vec<DeadWrite>,
}

/// Per-function use/kill summary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct FnLive {
    /// Registers that may be read before being written, transitively.
    uses: u32,
    /// Registers definitely written on every path entry → return.
    must_def: u32,
}

fn bit(r: Reg) -> u32 {
    1u32 << r.index()
}

/// use/kill of a call through the summaries: `uses` unions over possible
/// callees, `must_def` intersects. `None` (undeclared indirect targets)
/// means any function: everything may be read, nothing surely written.
fn call_effect(callees: Option<&[FuncId]>, sums: &[FnLive]) -> FnLive {
    let Some(callees) = callees else {
        return FnLive {
            uses: u32::MAX,
            must_def: 0,
        };
    };
    let mut eff = FnLive {
        uses: 0,
        must_def: u32::MAX,
    };
    for &f in callees {
        eff.uses |= sums[f.index()].uses;
        eff.must_def &= sums[f.index()].must_def;
    }
    if callees.is_empty() {
        eff.must_def = 0;
    }
    eff
}

/// Resolved direct/declared-indirect callees of a call instruction;
/// `None` when the targets are unknown.
fn callees_of(program: &Program, pc: Addr, inst: &Instruction) -> Option<Vec<FuncId>> {
    match inst {
        Instruction::Call { target } => Some(program.function_at(*target).into_iter().collect()),
        Instruction::CallIndirect { .. } => program
            .indirect_targets(pc)
            .map(|ts| ts.iter().filter_map(|&t| program.function_at(t)).collect()),
        _ => None,
    }
}

// ---------------------------------------------------------------------
// Backward liveness over one function
// ---------------------------------------------------------------------

struct Live<'a> {
    program: &'a Program,
    sums: &'a [FnLive],
    /// Registers live at this function's returns.
    ret_live: u32,
}

impl Live<'_> {
    /// Applies one instruction backward to a live set.
    fn step(&self, pc: Addr, inst: &Instruction, live: u32) -> u32 {
        let mut live = live;
        if matches!(
            inst,
            Instruction::Call { .. } | Instruction::CallIndirect { .. }
        ) {
            let callees = callees_of(self.program, pc, inst);
            let eff = call_effect(callees.as_deref(), self.sums);
            live = eff.uses | (live & !eff.must_def);
        } else if let Some(rd) = inst.dest() {
            live &= !bit(rd);
        }
        for r in inst.sources() {
            live |= bit(r);
        }
        live
    }
}

impl Analysis for Live<'_> {
    type Fact = u32;
    fn direction(&self) -> Direction {
        Direction::Backward
    }
    fn bottom(&self) -> u32 {
        0
    }
    fn boundary(&self, term: Terminator) -> u32 {
        match term {
            Terminator::Return => self.ret_live,
            _ => 0, // Halt: nothing is live at program end
        }
    }
    fn join(&self, into: &mut u32, from: &u32, _joins: u32) -> bool {
        let new = *into | *from;
        let changed = new != *into;
        *into = new;
        changed
    }
    fn transfer(&self, cfg: &Cfg, block: BlockId, fact: &u32) -> u32 {
        let mut live = *fact;
        for pc in cfg.block(block).range().rev() {
            if let Some(inst) = self.program.fetch(Addr(pc)) {
                live = self.step(Addr(pc), &inst, live);
            }
        }
        live
    }
}

// ---------------------------------------------------------------------
// Forward must-initialisation (per function)
// ---------------------------------------------------------------------

/// `None` = unreachable; `Some(mask)` = registers written on every path
/// from the entry to this point (calls contribute their `must_def`).
struct MustInit<'a> {
    program: &'a Program,
    sums: &'a [FnLive],
}

impl MustInit<'_> {
    fn step(&self, pc: Addr, inst: &Instruction, mask: u32) -> u32 {
        if matches!(
            inst,
            Instruction::Call { .. } | Instruction::CallIndirect { .. }
        ) {
            let callees = callees_of(self.program, pc, inst);
            match callees.as_deref() {
                // Unknown targets: avoid false uninit reports downstream.
                None => u32::MAX,
                Some(cs) => mask | call_effect(Some(cs), self.sums).must_def,
            }
        } else if let Some(rd) = inst.dest() {
            mask | bit(rd)
        } else {
            mask
        }
    }
}

impl Analysis for MustInit<'_> {
    type Fact = Option<u32>;
    fn direction(&self) -> Direction {
        Direction::Forward
    }
    fn bottom(&self) -> Option<u32> {
        None
    }
    fn boundary(&self, _t: Terminator) -> Option<u32> {
        Some(0)
    }
    fn join(&self, into: &mut Option<u32>, from: &Option<u32>, _joins: u32) -> bool {
        let new = match (*into, *from) {
            (None, x) => x,
            (x, None) => x,
            (Some(a), Some(b)) => Some(a & b),
        };
        let changed = new != *into;
        *into = new;
        changed
    }
    fn transfer(&self, cfg: &Cfg, block: BlockId, fact: &Option<u32>) -> Option<u32> {
        let mut mask = (*fact)?;
        for pc in cfg.block(block).range() {
            if let Some(inst) = self.program.fetch(Addr(pc)) {
                mask = self.step(Addr(pc), &inst, mask);
            }
        }
        Some(mask)
    }
}

// ---------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------

/// Rounds of the summary / return-liveness fixpoint. The lattice is
/// finite (bitmasks), so this is a safety net, not a precision knob; on
/// overflow everything degrades to fully-live (no claims).
const MAX_ROUNDS: usize = 64;

/// Recomputes one function's summary from the current summary table.
fn summarize(program: &Program, cfg: &Cfg, sums: &[FnLive]) -> FnLive {
    // `uses`: live-in at the entry under empty return-liveness.
    let live = Live {
        program,
        sums,
        ret_live: 0,
    };
    let sol = dataflow::solve(&live, cfg);
    let uses = sol.entry[cfg.entry().index()];

    // `must_def`: intersection of the must-written sets at every return.
    let mi = MustInit { program, sums };
    let sol = dataflow::solve(&mi, cfg);
    let mut must = u32::MAX; // no returns (halts): vacuously everything
    for (i, b) in cfg.blocks().iter().enumerate() {
        if b.terminator() == Terminator::Return {
            must &= sol.exit[i].unwrap_or(u32::MAX);
        }
    }
    FnLive {
        uses,
        must_def: must,
    }
}

/// Runs the interprocedural liveness analysis over the whole program.
pub fn check(program: &Program) -> LivenessReport {
    let nfuncs = program.functions().len();
    if nfuncs == 0 || program.is_empty() {
        return LivenessReport {
            diags: Vec::new(),
            claims: Vec::new(),
        };
    }
    let cfgs: Vec<Cfg> = (0..nfuncs)
        .map(|i| Cfg::build(program, FuncId(i as u32)))
        .collect();
    let order = dataflow::call_order(program);

    // Phase 1: use/kill summaries to a fixpoint (callee-first order makes
    // the acyclic case converge in one round; recursion iterates).
    let mut sums = vec![
        FnLive {
            uses: 0,
            must_def: u32::MAX,
        };
        nfuncs
    ];
    for round in 0..MAX_ROUNDS {
        let mut changed = false;
        for &f in &order {
            let s = summarize(program, &cfgs[f.index()], &sums);
            if s != sums[f.index()] {
                sums[f.index()] = s;
                changed = true;
            }
        }
        if !changed {
            break;
        }
        if round == MAX_ROUNDS - 1 {
            sums = vec![
                FnLive {
                    uses: u32::MAX,
                    must_def: 0,
                };
                nfuncs
            ];
        }
    }

    // Phase 2: return-liveness — what callers read after each call site.
    let mut ret_live = vec![0u32; nfuncs];
    for round in 0..MAX_ROUNDS {
        let mut changed = false;
        for i in 0..nfuncs {
            let live = Live {
                program,
                sums: &sums,
                ret_live: ret_live[i],
            };
            let sol = dataflow::solve(&live, &cfgs[i]);
            for (bi, block) in cfgs[i].blocks().iter().enumerate() {
                // Walk backward; `live` holds liveness *after* each inst.
                let mut live_after = sol.exit[bi];
                for pc in block.range().rev() {
                    let Some(inst) = program.fetch(Addr(pc)) else {
                        continue;
                    };
                    if matches!(
                        inst,
                        Instruction::Call { .. } | Instruction::CallIndirect { .. }
                    ) {
                        match callees_of(program, Addr(pc), &inst) {
                            Some(cs) => {
                                for c in cs {
                                    let new = ret_live[c.index()] | live_after;
                                    if new != ret_live[c.index()] {
                                        ret_live[c.index()] = new;
                                        changed = true;
                                    }
                                }
                            }
                            None => {
                                // Unknown targets: any function may be the
                                // callee, and anything may be read after.
                                for r in ret_live.iter_mut() {
                                    if *r != u32::MAX {
                                        *r = u32::MAX;
                                        changed = true;
                                    }
                                }
                            }
                        }
                    }
                    live_after = Live {
                        program,
                        sums: &sums,
                        ret_live: ret_live[i],
                    }
                    .step(Addr(pc), &inst, live_after);
                }
            }
        }
        if !changed {
            break;
        }
        if round == MAX_ROUNDS - 1 {
            ret_live = vec![u32::MAX; nfuncs];
        }
    }

    // Phase 3: lints under the converged state.
    let mut diags = Vec::new();
    let mut claims = Vec::new();
    for i in 0..nfuncs {
        let live = Live {
            program,
            sums: &sums,
            ret_live: ret_live[i],
        };
        let sol = dataflow::solve(&live, &cfgs[i]);
        for (bi, block) in cfgs[i].blocks().iter().enumerate() {
            let mut live_after = sol.exit[bi];
            for pc in block.range().rev() {
                let Some(inst) = program.fetch(Addr(pc)) else {
                    continue;
                };
                if let Some(rd) = inst.dest() {
                    if live_after & bit(rd) == 0 {
                        claims.push(DeadWrite {
                            pc: Addr(pc),
                            reg: rd,
                        });
                        diags.push(
                            Diagnostic::new(
                                &codes::DEAD_WRITE,
                                format!("dead write: the value put in {rd} is never read"),
                            )
                            .at(Addr(pc)),
                        );
                    }
                }
                live_after = live.step(Addr(pc), &inst, live_after);
            }
        }
    }

    // Maybe-uninit reads, entry function only (other functions receive
    // arguments in registers; the entry starts from architectural zeros).
    let entry_f = program.entry_function();
    let mut defined_somewhere = 0u32;
    for f in program.functions() {
        for pc in f.range() {
            if let Some(rd) = program.fetch(Addr(pc)).as_ref().and_then(Instruction::dest) {
                defined_somewhere |= bit(rd);
            }
        }
    }
    let cfg = &cfgs[entry_f.index()];
    let mi = MustInit {
        program,
        sums: &sums,
    };
    let sol = dataflow::solve(&mi, cfg);
    for (bi, block) in cfg.blocks().iter().enumerate() {
        let Some(mut mask) = sol.entry[bi] else {
            continue;
        };
        for pc in block.range() {
            let Some(inst) = program.fetch(Addr(pc)) else {
                continue;
            };
            for r in inst.sources() {
                // `x = x op k` accumulating from the architectural zero is
                // a deliberate idiom, not a missing initialisation.
                if inst.dest() == Some(r) {
                    continue;
                }
                if mask & bit(r) == 0 && defined_somewhere & bit(r) != 0 {
                    diags.push(
                        Diagnostic::new(
                            &codes::UNINIT_READ,
                            format!("{r} may be read here before it is initialised"),
                        )
                        .at(Addr(pc)),
                    );
                }
            }
            mask = mi.step(Addr(pc), &inst, mask);
        }
    }

    claims.sort_by_key(|c| (c.pc, c.reg.index()));
    claims.dedup();
    LivenessReport { diags, claims }
}

#[cfg(test)]
mod tests {
    use super::*;
    use multiscalar_isa::{AluOp, Cond, ProgramBuilder};

    /// Adversarial fixture: a value computed and immediately overwritten
    /// on every path must be claimed dead.
    #[test]
    fn overwritten_value_is_a_dead_write() {
        let mut b = ProgramBuilder::new();
        let main = b.begin_function("main");
        b.load_imm(Reg(1), 41); // dead: rewritten below, never read
        b.load_imm(Reg(1), 42);
        b.store(Reg(1), Reg(0), 0);
        b.halt();
        b.end_function();
        let p = b.finish(main).unwrap();
        let r = check(&p);
        assert!(
            r.claims.contains(&DeadWrite {
                pc: Addr(0),
                reg: Reg(1)
            }),
            "{:?}",
            r.claims
        );
        assert!(r.diags.iter().any(|d| d.code.id == "N060"));
        // The second write is stored, hence live.
        assert!(!r.claims.contains(&DeadWrite {
            pc: Addr(1),
            reg: Reg(1)
        }));
    }

    /// A value read only on one branch side is still live — no claim.
    #[test]
    fn conditionally_read_value_is_live() {
        let mut b = ProgramBuilder::new();
        let main = b.begin_function("main");
        let skip = b.new_label();
        b.load_imm(Reg(1), 7);
        b.branch(Cond::Eq, Reg(2), Reg(3), skip);
        b.store(Reg(1), Reg(0), 0);
        b.bind(skip);
        b.halt();
        b.end_function();
        let p = b.finish(main).unwrap();
        let r = check(&p);
        assert!(!r.claims.iter().any(|c| c.pc == Addr(0)), "{:?}", r.claims);
    }

    /// A write whose only reader is a callee (through the use summary) is
    /// live; a write the callee always clobbers before reading is dead.
    #[test]
    fn callee_summaries_gate_liveness_across_calls() {
        let mut b = ProgramBuilder::new();
        let reader = b.begin_function("reader");
        b.op_imm(AluOp::Add, Reg(2), Reg(1), 1); // reads r1
        b.ret();
        b.end_function();
        let clobber = b.begin_function("clobber");
        b.load_imm(Reg(3), 5); // writes r3 before any read
        b.ret();
        b.end_function();
        let main = b.begin_function("main");
        b.load_imm(Reg(1), 10); // live: read by `reader`
        b.load_imm(Reg(3), 11); // dead: `clobber` rewrites r3, no read after
        b.call_label(reader);
        b.call_label(clobber);
        b.store(Reg(2), Reg(0), 0);
        b.store(Reg(3), Reg(0), 1);
        b.halt();
        b.end_function();
        let p = b.finish(main).unwrap();
        let r = check(&p);
        let dead: Vec<_> = r.claims.iter().map(|c| c.pc).collect();
        let (_, f) = p.function_by_name("main").unwrap();
        let base = f.range().start;
        assert!(
            !dead.contains(&Addr(base)),
            "r1 is read by the callee: {dead:?}"
        );
        assert!(
            dead.contains(&Addr(base + 1)),
            "r3 is clobbered before any read: {dead:?}"
        );
    }

    /// Maybe-uninit: the entry function reads a register on a path where
    /// it was never written (but it is written elsewhere, so the
    /// zero-register exemption does not apply).
    #[test]
    fn uninit_read_is_reported_in_the_entry_function() {
        let mut b = ProgramBuilder::new();
        let main = b.begin_function("main");
        let skip = b.new_label();
        b.branch(Cond::Eq, Reg(0), Reg(0), skip);
        b.load_imm(Reg(5), 1);
        b.bind(skip);
        b.op_imm(AluOp::Add, Reg(6), Reg(5), 1); // r5 maybe uninit here
        b.store(Reg(6), Reg(0), 0);
        b.halt();
        b.end_function();
        let p = b.finish(main).unwrap();
        let r = check(&p);
        assert!(
            r.diags
                .iter()
                .any(|d| d.code.id == "N061" && d.span == Some(Addr(2))),
            "{:?}",
            r.diags
        );
    }

    /// Reads of a register never written anywhere are the zero-register
    /// idiom — exempt from N061.
    #[test]
    fn never_written_register_reads_are_exempt() {
        let mut b = ProgramBuilder::new();
        let main = b.begin_function("main");
        b.load(Reg(1), Reg(0), 0); // r0 never written: fine
        b.store(Reg(1), Reg(0), 1);
        b.halt();
        b.end_function();
        let p = b.finish(main).unwrap();
        let r = check(&p);
        assert!(
            !r.diags.iter().any(|d| d.code.id == "N061"),
            "{:?}",
            r.diags
        );
    }
}
