//! Instruction-level IR validation.
//!
//! [`ProgramBuilder`](multiscalar_isa::ProgramBuilder) rejects some
//! malformed programs at `finish()` (invalid registers, functions that fall
//! off their end), but deliberately not everything: it happily binds a
//! branch to a label in *another* function, or a call to a label that is
//! not a function entry. The task former and the simulators assume neither
//! ever happens. This pass re-checks everything from the `Program` alone,
//! so it also covers programs assembled outside the builder.

use crate::diag::{codes, Diagnostic};
use multiscalar_isa::{Addr, Instruction, Program};

/// Validates every instruction of `program`. Returns one diagnostic per
/// violation; an empty vector means the IR is well-formed.
pub fn check_program(program: &Program) -> Vec<Diagnostic> {
    let mut diags = Vec::new();

    for (idx, inst) in program.code().iter().enumerate() {
        let pc = Addr(idx as u32);
        check_registers(pc, inst, &mut diags);
        check_targets(program, pc, inst, &mut diags);
        check_indirect_metadata(program, pc, inst, &mut diags);
        if program.function_at(pc).is_none() {
            diags.push(
                Diagnostic::new(
                    &codes::ORPHAN_INSTRUCTION,
                    "instruction belongs to no function",
                )
                .at(pc),
            );
        }
    }

    for f in program.functions() {
        if f.is_empty() {
            diags.push(Diagnostic::new(
                &codes::EMPTY_FUNCTION,
                format!("function `{}` is empty", f.name()),
            ));
            continue;
        }
        let last = Addr(f.range().end - 1);
        match program.fetch(last) {
            Some(i) if i.is_unconditional_transfer() => {}
            _ => diags.push(
                Diagnostic::new(
                    &codes::FALL_OFF_END,
                    format!("function `{}` can fall off its end", f.name()),
                )
                .at(last),
            ),
        }
    }

    diags
}

fn check_registers(pc: Addr, inst: &Instruction, diags: &mut Vec<Diagnostic>) {
    for r in inst.sources() {
        if !r.is_valid() {
            diags.push(
                Diagnostic::new(
                    &codes::REGISTER_RANGE,
                    format!("source register {r} out of range"),
                )
                .at(pc),
            );
        }
    }
    if let Some(r) = inst.dest() {
        if !r.is_valid() {
            diags.push(
                Diagnostic::new(
                    &codes::REGISTER_RANGE,
                    format!("destination register {r} out of range"),
                )
                .at(pc),
            );
        }
    }
}

fn check_targets(program: &Program, pc: Addr, inst: &Instruction, diags: &mut Vec<Diagnostic>) {
    match *inst {
        Instruction::Branch { target, .. } | Instruction::Jump { target } => {
            if program.fetch(target).is_none() {
                diags.push(
                    Diagnostic::new(
                        &codes::TRANSFER_RANGE,
                        format!("transfer target pc {} is out of range", target.0),
                    )
                    .at(pc),
                );
            } else if program.function_at(target) != program.function_at(pc) {
                diags.push(
                    Diagnostic::new(
                        &codes::CROSS_FUNCTION_BRANCH,
                        format!("branch target pc {} lies in a different function", target.0),
                    )
                    .at(pc),
                );
            }
        }
        Instruction::Call { target } => check_callee(program, pc, target, diags),
        _ => {}
    }
}

fn check_callee(program: &Program, pc: Addr, target: Addr, diags: &mut Vec<Diagnostic>) {
    let is_entry = program
        .function_at(target)
        .map(|fid| program.function(fid).entry() == target)
        .unwrap_or(false);
    if !is_entry {
        diags.push(
            Diagnostic::new(
                &codes::CALL_NOT_ENTRY,
                format!("call target pc {} is not a function entry", target.0),
            )
            .at(pc),
        );
    }
}

fn check_indirect_metadata(
    program: &Program,
    pc: Addr,
    inst: &Instruction,
    diags: &mut Vec<Diagnostic>,
) {
    let Some(targets) = program.indirect_targets(pc) else {
        return;
    };
    match *inst {
        Instruction::JumpIndirect { .. } => {
            for &t in targets {
                if program.fetch(t).is_none() {
                    diags.push(
                        Diagnostic::new(
                            &codes::BAD_INDIRECT_TARGET,
                            format!("declared indirect target pc {} is out of range", t.0),
                        )
                        .at(pc),
                    );
                } else if program.function_at(t) != program.function_at(pc) {
                    diags.push(
                        Diagnostic::new(
                            &codes::BAD_INDIRECT_TARGET,
                            format!(
                                "declared indirect target pc {} lies in a different function",
                                t.0
                            ),
                        )
                        .at(pc),
                    );
                }
            }
        }
        Instruction::CallIndirect { .. } => {
            for &t in targets {
                check_callee(program, pc, t, diags);
            }
        }
        _ => diags.push(
            Diagnostic::new(
                &codes::STRAY_INDIRECT_METADATA,
                "indirect-target metadata attached to a non-indirect instruction",
            )
            .at(pc),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use multiscalar_isa::{Cond, ProgramBuilder, Reg};

    #[test]
    fn clean_program_has_no_diagnostics() {
        let mut b = ProgramBuilder::new();
        let main = b.begin_function("main");
        b.load_imm(Reg(1), 1);
        b.halt();
        b.end_function();
        let p = b.finish(main).unwrap();
        assert!(check_program(&p).is_empty());
    }

    #[test]
    fn cross_function_branch_is_flagged() {
        // The builder accepts this: a branch bound to a label in another
        // function. The validator must not.
        let mut b = ProgramBuilder::new();
        let main = b.begin_function("main");
        let elsewhere = b.new_label();
        b.branch(Cond::Eq, Reg(1), Reg(2), elsewhere);
        b.halt();
        b.end_function();
        b.begin_function("other");
        b.nop();
        b.bind(elsewhere);
        b.halt();
        b.end_function();
        let p = b.finish(main).unwrap();
        let diags = check_program(&p);
        assert!(
            diags
                .iter()
                .any(|d| d.message.contains("different function")),
            "{diags:?}"
        );
    }

    #[test]
    fn call_to_mid_function_label_is_flagged() {
        let mut b = ProgramBuilder::new();
        let main = b.begin_function("main");
        let mid = b.new_label();
        b.call_label(mid);
        b.bind(mid);
        b.halt();
        b.end_function();
        let p = b.finish(main).unwrap();
        let diags = check_program(&p);
        assert!(
            diags
                .iter()
                .any(|d| d.message.contains("not a function entry")),
            "{diags:?}"
        );
    }
}
