//! The diagnostic type shared by every analyzer pass, plus the two
//! renderers: a human-readable rustc-style one and a machine-readable
//! JSON-lines one for CI.

use multiscalar_isa::{Addr, Program};
use multiscalar_taskform::TaskId;
use std::fmt;

/// How bad a finding is.
///
/// Errors are correctness violations (speculation hardware would misbehave
/// or the program is malformed); warnings are soundness-preserving but
/// undesirable (lost performance, dead metadata).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Suspicious but not a correctness violation (perf lints, dead exits).
    Warning,
    /// A violated invariant the simulator relies on.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// Which analyzer pass produced a diagnostic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Pass {
    /// Instruction-level IR validation ([`crate::ir`]).
    Ir,
    /// Task/TFG structural checking ([`crate::tfg_check`]).
    Tfg,
    /// Create-mask dataflow analysis ([`crate::mask`]).
    Mask,
}

impl Pass {
    /// Short lowercase name used in both renderers (`error[tfg]: ...`).
    pub fn name(self) -> &'static str {
        match self {
            Pass::Ir => "ir",
            Pass::Tfg => "tfg",
            Pass::Mask => "create-mask",
        }
    }
}

impl fmt::Display for Pass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One analyzer finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Error or warning.
    pub severity: Severity,
    /// The pass that found it.
    pub pass: Pass,
    /// The task the finding concerns, when task-scoped.
    pub task: Option<TaskId>,
    /// Human-readable description.
    pub message: String,
    /// The instruction address the finding anchors to, when address-scoped.
    pub span: Option<Addr>,
}

impl Diagnostic {
    /// Creates an error diagnostic.
    pub fn error(pass: Pass, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            severity: Severity::Error,
            pass,
            task: None,
            message: message.into(),
            span: None,
        }
    }

    /// Creates a warning diagnostic.
    pub fn warning(pass: Pass, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            severity: Severity::Warning,
            pass,
            task: None,
            message: message.into(),
            span: None,
        }
    }

    /// Attaches the task the finding concerns.
    pub fn in_task(mut self, task: TaskId) -> Diagnostic {
        self.task = Some(task);
        self
    }

    /// Attaches the instruction address the finding anchors to.
    pub fn at(mut self, addr: Addr) -> Diagnostic {
        self.span = Some(addr);
        self
    }

    /// Renders one diagnostic rustc-style:
    ///
    /// ```text
    /// error[tfg]: exit target pc 17 does not start a task
    ///   --> main+5 (pc 17) in task#3
    /// ```
    ///
    /// The `-->` line is omitted when the diagnostic has no span or task.
    pub fn render(&self, program: &Program) -> String {
        let mut s = format!("{}[{}]: {}", self.severity, self.pass, self.message);
        let mut loc = String::new();
        if let Some(addr) = self.span {
            match program.function_at(addr).map(|fid| program.function(fid)) {
                Some(f) => loc = format!("{}+{} (pc {})", f.name(), addr.0 - f.entry().0, addr.0),
                None => loc = format!("pc {}", addr.0),
            }
        }
        if let Some(t) = self.task {
            if !loc.is_empty() {
                loc.push_str(" in ");
            }
            loc.push_str(&t.to_string());
        }
        if !loc.is_empty() {
            s.push_str("\n  --> ");
            s.push_str(&loc);
        }
        s
    }

    /// Renders one diagnostic as a single JSON object (no trailing newline).
    pub fn render_json(&self) -> String {
        let mut s = String::from("{");
        push_json_str(&mut s, "severity", &self.severity.to_string());
        s.push(',');
        push_json_str(&mut s, "pass", self.pass.name());
        s.push(',');
        match self.task {
            Some(t) => s.push_str(&format!("\"task\":{}", t.0)),
            None => s.push_str("\"task\":null"),
        }
        s.push(',');
        match self.span {
            Some(a) => s.push_str(&format!("\"pc\":{}", a.0)),
            None => s.push_str("\"pc\":null"),
        }
        s.push(',');
        push_json_str(&mut s, "message", &self.message);
        s.push('}');
        s
    }
}

fn push_json_str(out: &mut String, key: &str, value: &str) {
    out.push('"');
    out.push_str(key);
    out.push_str("\":\"");
    for c in value.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// `true` if any diagnostic is an [`Severity::Error`].
pub fn has_errors(diags: &[Diagnostic]) -> bool {
    diags.iter().any(|d| d.severity == Severity::Error)
}

/// Renders a whole batch rustc-style, one blank line between findings,
/// ending with a `N errors, M warnings` summary line.
pub fn render_all(diags: &[Diagnostic], program: &Program) -> String {
    let mut out = String::new();
    for d in diags {
        out.push_str(&d.render(program));
        out.push('\n');
    }
    let errors = diags
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .count();
    let warnings = diags.len() - errors;
    out.push_str(&format!("{errors} errors, {warnings} warnings\n"));
    out
}

/// Renders a whole batch as JSON lines (one object per line).
pub fn render_all_json(diags: &[Diagnostic]) -> String {
    let mut out = String::new();
    for d in diags {
        out.push_str(&d.render_json());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escapes_special_characters() {
        let d = Diagnostic::error(Pass::Ir, "a \"quoted\"\nmulti\\line");
        let j = d.render_json();
        assert!(j.contains("a \\\"quoted\\\"\\nmulti\\\\line"));
        assert!(j.contains("\"task\":null"));
    }

    #[test]
    fn severity_ordering_puts_errors_above_warnings() {
        assert!(Severity::Error > Severity::Warning);
    }
}
