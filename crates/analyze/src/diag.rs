//! The diagnostic type shared by every analyzer pass, plus the two
//! renderers: a human-readable rustc-style one and a machine-readable
//! JSON-lines one for CI.
//!
//! Every finding carries a stable [`Code`] (`E0xx` errors, `W0xx`
//! warnings, `N0xx` notes) from the [`codes`] catalog. Codes are part of
//! the CLI contract: they appear in both renderers, `harness lint
//! --explain <CODE>` prints the catalog's long-form description, and the
//! golden-file tests pin them, so a code is never reused for a different
//! finding once released.

use multiscalar_isa::{Addr, Program};
use multiscalar_taskform::TaskId;
use std::fmt;

/// How bad a finding is.
///
/// Errors are correctness violations (speculation hardware would misbehave
/// or the program is malformed); warnings are soundness-preserving but
/// undesirable (lost performance, dead metadata); notes are observations
/// that are expected in ordinary programs (assumption-based bounds
/// classifications, dead writes in generated code) and never fail a lint
/// run, even under `--deny warnings`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// An observation; never fails a lint run.
    Note,
    /// Suspicious but not a correctness violation (perf lints, dead exits).
    Warning,
    /// A violated invariant the simulator relies on.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Note => "note",
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// Which analyzer pass produced a diagnostic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Pass {
    /// The `.masm` assembler frontend (`multiscalar_isa::asm`).
    Asm,
    /// Instruction-level IR validation ([`crate::ir`]).
    Ir,
    /// Task/TFG structural checking ([`crate::tfg_check`]).
    Tfg,
    /// Create-mask dataflow analysis ([`crate::mask`]).
    Mask,
    /// Interval-based memory bounds checking ([`crate::bounds`]).
    Bounds,
    /// Register liveness lints ([`crate::liveness`]).
    Liveness,
}

impl Pass {
    /// Short lowercase name used in both renderers (`error[tfg][E020]: ...`).
    pub fn name(self) -> &'static str {
        match self {
            Pass::Asm => "asm",
            Pass::Ir => "ir",
            Pass::Tfg => "tfg",
            Pass::Mask => "create-mask",
            Pass::Bounds => "bounds",
            Pass::Liveness => "liveness",
        }
    }
}

impl fmt::Display for Pass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A stable diagnostic code. Identity is the `id` string; two codes are
/// equal iff their ids are.
#[derive(Debug)]
pub struct Code {
    /// Stable identifier: `E0xx` for errors, `W0xx` for warnings, `N0xx`
    /// for notes. Never reused across releases.
    pub id: &'static str,
    /// Severity every diagnostic with this code carries.
    pub severity: Severity,
    /// Pass every diagnostic with this code originates from.
    pub pass: Pass,
    /// One-line summary shown by `harness lint --explain` listings.
    pub brief: &'static str,
    /// Long-form description printed by `harness lint --explain <CODE>`.
    pub explain: &'static str,
}

impl PartialEq for Code {
    fn eq(&self, other: &Self) -> bool {
        self.id == other.id
    }
}

impl Eq for Code {}

impl fmt::Display for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.id)
    }
}

/// The stable code catalog. Every emission site references exactly one
/// entry; `--explain` and the golden tests iterate [`codes::ALL`].
pub mod codes {
    use super::{Code, Pass, Severity};

    macro_rules! catalog {
        ($($name:ident = $id:literal, $sev:ident, $pass:ident, $brief:literal, $explain:literal;)*) => {
            $(
                #[doc = concat!("`", $id, "`: ", $brief)]
                pub static $name: Code = Code {
                    id: $id,
                    severity: Severity::$sev,
                    pass: Pass::$pass,
                    brief: $brief,
                    explain: $explain,
                };
            )*
            /// Every code in the catalog, in id order.
            pub static ALL: &[&Code] = &[$(&$name),*];
        };
    }

    catalog! {
        // --- ir: instruction-level validation -------------------------
        ORPHAN_INSTRUCTION = "E001", Error, Ir,
            "instruction belongs to no function",
            "Every instruction must lie inside some function's address \
             range. The task former partitions functions, so an orphan \
             instruction would never be assigned to a task and could only \
             be reached by a malformed transfer.";
        EMPTY_FUNCTION = "E002", Error, Ir,
            "function is empty",
            "A function with an empty address range has no entry \
             instruction; calling it would fetch from another function's \
             body or past the end of the program.";
        FALL_OFF_END = "E003", Error, Ir,
            "function can fall off its end",
            "The last instruction of a function must be an unconditional \
             transfer (return, jump, halt). Otherwise sequential execution \
             falls through into whatever function is laid out next, which \
             the task former and both simulators assume cannot happen.";
        REGISTER_RANGE = "E004", Error, Ir,
            "register out of range",
            "A source or destination register index is outside the \
             architectural file (r0..r31). The interpreter would panic on \
             the access; hardware would alias a wrong register.";
        TRANSFER_RANGE = "E005", Error, Ir,
            "transfer target out of range",
            "A branch or jump targets an address outside the program. \
             Fetch at the target would fail.";
        CROSS_FUNCTION_BRANCH = "E006", Error, Ir,
            "branch target lies in a different function",
            "Branches and jumps must stay inside their function; \
             inter-function control transfer is only legal through calls \
             and returns. A cross-function branch breaks the CFG builder's \
             per-function invariant and the task former's function \
             partitioning.";
        CALL_NOT_ENTRY = "E007", Error, Ir,
            "call target is not a function entry",
            "Direct and indirect calls must land on a function's first \
             instruction: the return-address stack and the task former's \
             call-exit headers both assume it.";
        BAD_INDIRECT_TARGET = "E008", Error, Ir,
            "declared indirect target is invalid",
            "An address in a `JumpIndirect` instruction's declared target \
             metadata is out of range or lies in a different function. The \
             sequencer predicts among declared targets, so an invalid \
             entry could be predicted and fetched.";
        STRAY_INDIRECT_METADATA = "E009", Error, Ir,
            "indirect-target metadata on a non-indirect instruction",
            "Declared-target metadata is only meaningful on `JumpIndirect` \
             and `CallIndirect`. Metadata on any other instruction \
             indicates a builder or transformation bug.";

        // --- tfg: task partition / task-flow-graph structure ----------
        UNTASKED_INSTRUCTION = "E020", Error, Tfg,
            "instruction belongs to no task",
            "The task partition must cover the whole program: an \
             instruction outside every task would be unreachable under \
             task-by-task sequencing, or reached without a header.";
        TASK_MAP_OVERRUN = "E021", Error, Tfg,
            "task map extends past the end of the program",
            "The address-to-task map claims addresses beyond the last \
             instruction; the partition disagrees with the program it was \
             formed over.";
        TASK_OWNERSHIP = "E022", Error, Tfg,
            "task entry or block not owned by the task",
            "A task's entry or one of its block starts resolves to a \
             different task (overlapping tasks) or to no task at all. Only \
             one task can own an address.";
        NO_EXITS = "E023", Error, Tfg,
            "task has no exits",
            "A task with no exits can never hand control to a successor: \
             the global sequencer would stall forever at its head.";
        TOO_MANY_EXITS = "E024", Error, Tfg,
            "task exceeds the header exit limit",
            "Task headers encode at most MAX_EXITS exits (paper \u{a7}2.1); \
             a header beyond the limit is unencodable.";
        EXIT_SOURCE = "E025", Error, Tfg,
            "exit source lies outside the task or program",
            "An exit specifier names a source instruction the task does \
             not own; the hardware decodes specifiers in place of the \
             task's own instructions, so a foreign source is meaningless.";
        EXIT_TARGET_NOT_TASK = "E026", Error, Tfg,
            "exit target or call return point does not start a task",
            "The sequencer predicts among exit targets and call return \
             points; each must itself be a task entry or prediction could \
             start execution mid-task, skipping its header.";
        EXIT_SPEC_MISMATCH = "E027", Error, Tfg,
            "exit specifier does not match its instruction",
            "The exit specifier must describe the instruction that \
             realises it (kind, target, return address) because the \
             hardware decodes the specifier *instead of* the instruction.";
        TFG_DISAGREES = "E028", Error, Tfg,
            "task flow graph disagrees with the task headers",
            "The TFG is derived from the headers; a node count or arc that \
             disagrees with the header exits means the derivation (or a \
             later mutation) corrupted it.";
        ENTRY_NOT_TASK = "E029", Error, Tfg,
            "program entry point does not start a task",
            "Execution begins at the program entry; if no task starts \
             there, the sequencer has no first task to dispatch.";
        ENTRY_NOT_BLOCK = "E030", Error, Tfg,
            "task entry does not start a basic block",
            "A task entry in the middle of a basic block means the \
             partition split an instruction sequence the CFG considers \
             atomic; per-task reachability cannot be computed.";
        FORMATION_FAILED = "E034", Error, Tfg,
            "task formation failed",
            "The task former rejected the program outright, so only \
             instruction-level diagnostics are available. The message \
             carries the former's own error.";
        UNREACHABLE_TASK = "W020", Warning, Tfg,
            "task is unreachable from the program entry",
            "No chain of statically-known exit targets, call return \
             points, or declared indirect targets reaches this task. It \
             wastes header space and predictor reach but cannot affect \
             execution.";
        DEAD_EXIT_UNREACHABLE = "W021", Warning, Tfg,
            "dead exit: source block is unreachable within the task",
            "The exit's source block cannot be reached from the task \
             entry inside the task, so the exit can never be taken; it \
             occupies one of the at-most-four header slots for nothing.";
        DEAD_EXIT_INFEASIBLE = "W022", Warning, Tfg,
            "dead exit: branch side is statically infeasible",
            "The exit sits on the statically dead side of a conditional \
             comparing a register with itself; the branch always goes the \
             other way, so the exit can never be taken.";

        // --- create-mask --------------------------------------------
        MASK_UNSOUND = "E040", Error, Mask,
            "unsound create mask",
            "The task may write a register its create mask omits. A \
             younger task could consume a stale value without waiting — \
             silent wrong execution (paper \u{a7}2.1's forwarding contract).";
        MASK_OVERWIDE = "W040", Warning, Mask,
            "over-wide create mask",
            "The mask promises a register the task can provably never \
             write. Younger consumers stall until the task retires waiting \
             for a value that never comes — a pure performance loss.";

        // --- bounds: interval-based memory bounds ---------------------
        OOB_ACCESS = "E050", Error, Bounds,
            "provably out-of-bounds memory access",
            "Interval analysis proves every execution reaching this \
             load/store computes an effective address outside interpreter \
             memory; executing it always faults. The fuzz soundness oracle \
             cross-checks this claim: if the instruction executes without \
             faulting, the analyzer is wrong.";
        UNPROVEN_ACCESS = "W050", Warning, Bounds,
            "memory access not provably in bounds",
            "The derived address interval straddles the memory bound: the \
             analysis can neither prove the access safe nor prove it \
             faults. The message carries the interval so the producer can \
             add masking or a guard the analysis understands.";
        STACK_ASSUMED = "N050", Note, Bounds,
            "stack access classified under the bounded-stack assumption",
            "The address is stack-pointer-relative in a (possibly \
             recursive) callee, where recursion depth — and hence the \
             concrete SP — is not statically bounded. The pass classifies \
             such accesses under the documented assumption that the stack \
             region [data_len, STACK_TOP] is never exhausted, rather than \
             claiming a proof; they are reported as notes, not counted \
             clean, and never fed to the soundness oracle as claims.";

        // --- liveness -------------------------------------------------
        DEAD_WRITE = "N060", Note, Liveness,
            "dead write: value is never read",
            "Backward liveness (with per-callee use/kill summaries) proves \
             no path from this write reaches a read of the register before \
             its next definition. The write wastes an issue slot and a \
             forwarding send. The fuzz soundness oracle cross-checks dead \
             claims: a read of the written value anywhere in a concrete \
             run disproves the analysis.";
        UNINIT_READ = "N061", Note, Liveness,
            "register may be read before initialisation",
            "Forward must-initialisation cannot prove every path to this \
             read defines the register first. The interpreter zero-fills \
             registers so execution is still deterministic, which is why \
             this is a note; relying on the implicit zero is usually a \
             generator or compiler bug. Registers never written anywhere \
             in the program are exempt (the conventional zero register \
             idiom).";

        // --- asm: .masm assembler frontend ----------------------------
        ASM_SYNTAX = "E101", Error, Asm,
            "malformed assembly syntax",
            "The lexer or statement parser could not make sense of the \
             line: an unexpected token, a stray character, or trailing \
             tokens after a complete statement. The assembler recovers at \
             the next line, so one syntax error does not hide findings in \
             the rest of the file.";
        ASM_UNKNOWN_MNEMONIC = "E102", Error, Asm,
            "unknown mnemonic or directive",
            "The statement head is neither an instruction mnemonic \
             (add/addi/beq/li/ld/st/j/jr/call/callr/ret/halt/nop, ...) \
             nor a recognised directive (.data/.zero/.task). Mnemonics \
             are matched case-sensitively in lowercase, exactly as the \
             disassembler prints them.";
        ASM_BAD_REGISTER = "E103", Error, Asm,
            "bad register name",
            "Register operands are written r0..r31. Anything else — a \
             different prefix, an index at or past the architectural file \
             size, or a bare symbol where a register is required — is \
             rejected rather than silently aliased.";
        ASM_OUT_OF_RANGE = "E104", Error, Asm,
            "value out of encodable range",
            "A constant evaluated fine but does not fit where it is used: \
             immediates must fit in i32, data words in a 32-bit word, \
             `.zero` counts in 0..=2^20, and code addresses inside the \
             assembled program. The message carries the offending value \
             and the accepted range.";
        ASM_DUPLICATE_LABEL = "E105", Error, Asm,
            "duplicate label",
            "Labels share one global namespace with functions and data \
             labels (the disassembler numbers its labels globally, so \
             round-tripping requires it). The second binding is reported \
             and the first kept; the message cites the original line.";
        ASM_UNDEFINED_SYMBOL = "E106", Error, Asm,
            "undefined symbol",
            "An expression references a name that no function, code \
             label, or data label defines anywhere in the file. Forward \
             references are fine — resolution happens in the second pass \
             against the complete symbol table — so this means the name \
             is defined nowhere at all.";
        ASM_DUPLICATE_FUNCTION = "E107", Error, Asm,
            "duplicate function name",
            "Two `func` blocks bind the same name. The call target and \
             symbol value would be ambiguous; the second definition is \
             rejected.";
        ASM_BAD_STRUCTURE = "E108", Error, Asm,
            "misplaced statement",
            "The file's block structure is broken: an instruction or \
             `end` outside any `func`, a `func` starting inside another \
             function, or a `func` left unclosed at end of file. The \
             assembler closes or skips as needed and keeps going.";
        ASM_BAD_FUNCTION = "E109", Error, Asm,
            "malformed function body",
            "A function body violates an invariant the rest of the stack \
             relies on: it is empty, or its last instruction can fall \
             through past the function's end (it must be an unconditional \
             transfer — jump, return, or halt). These mirror the E002 and \
             E003 program-level checks but fire at assembly time with \
             source spans.";
        ASM_BAD_EXPRESSION = "E110", Error, Asm,
            "constant expression does not evaluate",
            "Evaluation of a constant expression failed: division by \
             zero or 64-bit signed overflow. Expressions support + - * /, \
             unary minus, parentheses, and lo()/hi() 16-bit splits over \
             integers and symbol values.";
        ASM_BAD_TASK = "E111", Error, Asm,
            "misplaced .task directive",
            "`.task` marks the next instruction as a Multiscalar task \
             entry, so it must appear inside a function and be followed \
             by an instruction in the same function. A `.task` at top \
             level, or dangling before `end`, marks nothing.";
        ASM_BAD_ENTRY = "E112", Error, Asm,
            "program entry is ambiguous or missing",
            "Exactly one function may carry the `func!` entry marker. \
             With no marker the last function in the file is the entry \
             (matching the disassembler's layout); with two markers, or \
             with no functions at all, there is no well-defined place to \
             start execution.";
    }

    /// Looks a code up by id (`lookup("E050")`).
    pub fn lookup(id: &str) -> Option<&'static Code> {
        ALL.iter().copied().find(|c| c.id.eq_ignore_ascii_case(id))
    }
}

/// A location in `.masm` source text: 1-based line and column plus the
/// length of the offending token run, for caret rendering.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SrcLoc {
    /// 1-based source line.
    pub line: u32,
    /// 1-based source column.
    pub col: u32,
    /// Length of the region in characters (at least 1).
    pub len: u32,
}

/// One analyzer finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// The finding's stable catalog code.
    pub code: &'static Code,
    /// Error, warning, or note (always `code.severity`, duplicated for
    /// ergonomic filtering).
    pub severity: Severity,
    /// The pass that found it (always `code.pass`).
    pub pass: Pass,
    /// The task the finding concerns, when task-scoped.
    pub task: Option<TaskId>,
    /// Human-readable description.
    pub message: String,
    /// The instruction address the finding anchors to, when address-scoped.
    pub span: Option<Addr>,
    /// The `.masm` source location, when the finding came from assembling
    /// text (assembler diagnostics only; analyzer passes leave it `None`).
    pub src: Option<SrcLoc>,
}

impl Diagnostic {
    /// Creates a diagnostic from a catalog code; severity and pass come
    /// from the code.
    pub fn new(code: &'static Code, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            code,
            severity: code.severity,
            pass: code.pass,
            task: None,
            message: message.into(),
            span: None,
            src: None,
        }
    }

    /// Converts an assembler diagnostic into the shared type, resolving
    /// its stable code against the catalog and carrying the source span.
    pub fn from_asm(d: &multiscalar_isa::AsmDiagnostic) -> Diagnostic {
        let code = codes::lookup(d.code).unwrap_or(&codes::ASM_SYNTAX);
        let mut out = Diagnostic::new(code, d.message.clone());
        out.src = Some(SrcLoc {
            line: d.span.line,
            col: d.span.col,
            len: d.span.len.max(1),
        });
        out
    }

    /// Attaches the task the finding concerns.
    pub fn in_task(mut self, task: TaskId) -> Diagnostic {
        self.task = Some(task);
        self
    }

    /// Attaches the instruction address the finding anchors to.
    pub fn at(mut self, addr: Addr) -> Diagnostic {
        self.span = Some(addr);
        self
    }

    /// Renders one diagnostic rustc-style:
    ///
    /// ```text
    /// error[tfg][E026]: exit target pc 17 does not start a task
    ///   --> main+5 (pc 17) in task#3
    /// ```
    ///
    /// The `-->` line is omitted when the diagnostic has no span or task.
    pub fn render(&self, program: &Program) -> String {
        let mut s = format!(
            "{}[{}][{}]: {}",
            self.severity, self.pass, self.code.id, self.message
        );
        let mut loc = String::new();
        if let Some(addr) = self.span {
            match program.function_at(addr).map(|fid| program.function(fid)) {
                Some(f) => loc = format!("{}+{} (pc {})", f.name(), addr.0 - f.entry().0, addr.0),
                None => loc = format!("pc {}", addr.0),
            }
        }
        if let Some(t) = self.task {
            if !loc.is_empty() {
                loc.push_str(" in ");
            }
            loc.push_str(&t.to_string());
        }
        if !loc.is_empty() {
            s.push_str("\n  --> ");
            s.push_str(&loc);
        }
        s
    }

    /// Renders one diagnostic as a single JSON object (no trailing newline).
    pub fn render_json(&self) -> String {
        let mut s = String::from("{");
        push_json_str(&mut s, "severity", &self.severity.to_string());
        s.push(',');
        push_json_str(&mut s, "pass", self.pass.name());
        s.push(',');
        push_json_str(&mut s, "code", self.code.id);
        s.push(',');
        match self.task {
            Some(t) => s.push_str(&format!("\"task\":{}", t.0)),
            None => s.push_str("\"task\":null"),
        }
        s.push(',');
        match self.span {
            Some(a) => s.push_str(&format!("\"pc\":{}", a.0)),
            None => s.push_str("\"pc\":null"),
        }
        s.push(',');
        push_json_str(&mut s, "message", &self.message);
        // Source coordinates are appended only when present so the JSON
        // shape (and the golden files pinning it) is unchanged for every
        // diagnostic that does not come from `.masm` text.
        if let Some(l) = self.src {
            s.push_str(&format!(",\"line\":{},\"col\":{}", l.line, l.col));
        }
        s.push('}');
        s
    }

    /// Renders one diagnostic against the `.masm` source it came from,
    /// rustc-style with a caret line:
    ///
    /// ```text
    /// error[asm][E102]: unknown mnemonic `bogus`
    ///   --> prog.masm:2:3
    ///    |
    ///  2 |   bogus r1
    ///    |   ^^^^^
    /// ```
    ///
    /// Falls back to the headline alone when the diagnostic carries no
    /// source location or the line is out of range for `source`.
    pub fn render_in_source(&self, file: &str, source: &str) -> String {
        let mut s = format!(
            "{}[{}][{}]: {}",
            self.severity, self.pass, self.code.id, self.message
        );
        let Some(loc) = self.src else { return s };
        s.push_str(&format!("\n  --> {file}:{}:{}", loc.line, loc.col));
        let Some(text) = source.lines().nth(loc.line as usize - 1) else {
            return s;
        };
        let num = loc.line.to_string();
        let gutter = " ".repeat(num.len());
        let pad = " ".repeat(loc.col.saturating_sub(1) as usize);
        let carets = "^".repeat(loc.len.max(1) as usize);
        s.push_str(&format!(
            "\n {gutter} |\n {num} | {text}\n {gutter} | {pad}{carets}"
        ));
        s
    }
}

fn push_json_str(out: &mut String, key: &str, value: &str) {
    out.push('"');
    out.push_str(key);
    out.push_str("\":\"");
    for c in value.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// `true` if any diagnostic is an [`Severity::Error`].
pub fn has_errors(diags: &[Diagnostic]) -> bool {
    diags.iter().any(|d| d.severity == Severity::Error)
}

/// Counts `(errors, warnings, notes)` in a batch.
pub fn counts(diags: &[Diagnostic]) -> (usize, usize, usize) {
    let mut n = [0usize; 3];
    for d in diags {
        n[match d.severity {
            Severity::Error => 0,
            Severity::Warning => 1,
            Severity::Note => 2,
        }] += 1;
    }
    (n[0], n[1], n[2])
}

/// Renders a whole batch rustc-style, one blank line between findings,
/// ending with a `N errors, M warnings, K notes` summary line.
pub fn render_all(diags: &[Diagnostic], program: &Program) -> String {
    let mut out = String::new();
    for d in diags {
        out.push_str(&d.render(program));
        out.push('\n');
    }
    let (errors, warnings, notes) = counts(diags);
    out.push_str(&format!(
        "{errors} errors, {warnings} warnings, {notes} notes\n"
    ));
    out
}

/// Renders a whole batch against `.masm` source, one blank line between
/// findings, ending with the same summary line as [`render_all`].
pub fn render_all_in_source(diags: &[Diagnostic], file: &str, source: &str) -> String {
    let mut out = String::new();
    for d in diags {
        out.push_str(&d.render_in_source(file, source));
        out.push('\n');
    }
    let (errors, warnings, notes) = counts(diags);
    out.push_str(&format!(
        "{errors} errors, {warnings} warnings, {notes} notes\n"
    ));
    out
}

/// Renders a whole batch as JSON lines (one object per line).
pub fn render_all_json(diags: &[Diagnostic]) -> String {
    let mut out = String::new();
    for d in diags {
        out.push_str(&d.render_json());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escapes_special_characters() {
        let d = Diagnostic::new(&codes::ORPHAN_INSTRUCTION, "a \"quoted\"\nmulti\\line");
        let j = d.render_json();
        assert!(j.contains("a \\\"quoted\\\"\\nmulti\\\\line"));
        assert!(j.contains("\"task\":null"));
        assert!(j.contains("\"code\":\"E001\""));
    }

    #[test]
    fn severity_ordering_puts_errors_above_warnings_above_notes() {
        assert!(Severity::Error > Severity::Warning);
        assert!(Severity::Warning > Severity::Note);
    }

    #[test]
    fn asm_diagnostics_map_to_catalog_codes_with_source_spans() {
        let errs = multiscalar_isa::assemble("func main\n  bogus r1\nend").unwrap_err();
        let d = Diagnostic::from_asm(&errs[0]);
        assert_eq!(d.code.id, "E102");
        assert_eq!(d.pass, Pass::Asm);
        assert_eq!(d.severity, Severity::Error);
        assert_eq!(
            d.src,
            Some(SrcLoc {
                line: 2,
                col: 3,
                len: 5
            })
        );
        let json = d.render_json();
        assert!(json.ends_with(",\"line\":2,\"col\":3}"), "{json}");

        let rendered = d.render_in_source("prog.masm", "func main\n  bogus r1\nend");
        assert!(rendered.contains("error[asm][E102]"), "{rendered}");
        assert!(rendered.contains("--> prog.masm:2:3"), "{rendered}");
        assert!(rendered.contains(" 2 |   bogus r1"), "{rendered}");
        assert!(rendered.contains("|   ^^^^^"), "{rendered}");
    }

    #[test]
    fn analyzer_diagnostics_omit_source_fields_from_json() {
        let d = Diagnostic::new(&codes::ORPHAN_INSTRUCTION, "m");
        assert!(!d.render_json().contains("\"line\""));
        assert!(d
            .render_in_source("f.masm", "x")
            .starts_with("error[ir][E001]: m"));
        assert!(!d.render_in_source("f.masm", "x").contains("-->"));
    }

    #[test]
    fn catalog_ids_are_unique_stable_and_consistent() {
        let mut ids: Vec<&str> = codes::ALL.iter().map(|c| c.id).collect();
        let n = ids.len();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), n, "duplicate code ids");
        for c in codes::ALL {
            let expect = match c.severity {
                Severity::Error => 'E',
                Severity::Warning => 'W',
                Severity::Note => 'N',
            };
            assert!(
                c.id.starts_with(expect) && c.id.len() == 4,
                "{} must be {expect}0xx",
                c.id
            );
            assert!(!c.brief.is_empty() && !c.explain.is_empty(), "{}", c.id);
            assert_eq!(codes::lookup(c.id), Some(*c));
            assert_eq!(codes::lookup(&c.id.to_ascii_lowercase()), Some(*c));
        }
        assert_eq!(codes::lookup("E999"), None);
    }
}
