//! Soundness oracle: replays analyzer claims against concrete executions.
//!
//! The dataflow passes make three kinds of *claims* — statements that are
//! supposed to hold on **every** execution, not heuristic findings:
//!
//! * [`bounds`](crate::bounds) — a load/store classified
//!   [`AccessClass::InBounds`] never faults and its effective address
//!   stays inside the derived interval; one classified
//!   [`AccessClass::OutOfBounds`] always faults when executed;
//! * [`liveness`](crate::liveness) — a value written by a claimed
//!   [`DeadWrite`] is never read before the register's next definition;
//! * [`spec`](crate::spec) — a claimed [`StaticExitClaim`] source never
//!   transfers control anywhere but the claimed target.
//!
//! [`check_execution`] derives all claims and interprets the program,
//! watching every step for a counterexample. The fuzz harness runs this
//! as its seventh differential oracle, so the static analyses are held to
//! the same corpus as the execution engines: any violation is an analyzer
//! bug by construction (the analyses promise soundness, never precision).

use crate::bounds::{self, AccessClass, MemClaim};
use crate::liveness::{self, DeadWrite};
use crate::spec::{self, StaticExitClaim};
use multiscalar_isa::{Addr, ExecError, Interpreter, Program, TransferKind, NUM_REGS};
use multiscalar_taskform::TaskProgram;
use std::collections::HashMap;
use std::fmt;

/// Everything the analyses claim about a program.
#[derive(Debug, Clone, Default)]
pub struct Claims {
    /// In/out-of-bounds access classifications (unproven and
    /// stack-assumed accesses carry no claim and are not replayed).
    pub mem: Vec<MemClaim>,
    /// Dead-write claims.
    pub dead: Vec<DeadWrite>,
    /// Static-exit claims.
    pub exits: Vec<StaticExitClaim>,
}

/// One disproved claim.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// The claim's instruction address.
    pub pc: Addr,
    /// Which claim kind was disproved.
    pub kind: &'static str,
    /// The concrete counterexample.
    pub detail: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}: {}", self.kind, self.pc, self.detail)
    }
}

/// Derives every claim the analyses make about `program`.
pub fn derive_claims(program: &Program, tasks: &TaskProgram) -> Claims {
    Claims {
        mem: bounds::check(program).claims,
        dead: liveness::check(program).claims,
        exits: spec::analyze(program, tasks).claims,
    }
}

/// Stop collecting after this many violations: one is already an analyzer
/// bug; a cap keeps a badly wrong analysis from flooding the report.
const MAX_VIOLATIONS: usize = 8;

/// Derives all claims and cross-checks them against one interpretation of
/// `program` (up to `max_steps` instructions). Empty result = no claim
/// was disproved.
pub fn check_execution(program: &Program, tasks: &TaskProgram, max_steps: u64) -> Vec<Violation> {
    check_claims(program, &derive_claims(program, tasks), max_steps)
}

/// Cross-checks an explicit claim set against one interpretation. Split
/// from [`check_execution`] so tests can plant deliberately wrong claims
/// and prove the oracle catches them.
pub fn check_claims(program: &Program, claims: &Claims, max_steps: u64) -> Vec<Violation> {
    let mut mem_by_pc: HashMap<u32, AccessClass> = HashMap::new();
    for c in &claims.mem {
        if matches!(
            c.class,
            AccessClass::InBounds { .. } | AccessClass::OutOfBounds { .. }
        ) {
            mem_by_pc.insert(c.pc.index() as u32, c.class);
        }
    }
    let dead_by_pc: HashMap<u32, multiscalar_isa::Reg> = claims
        .dead
        .iter()
        .map(|d| (d.pc.index() as u32, d.reg))
        .collect();
    let exit_by_pc: HashMap<u32, Addr> = claims
        .exits
        .iter()
        .map(|c| (c.source.index() as u32, c.target))
        .collect();

    let mut out = Vec::new();
    // pending[r] = pc of the claimed-dead write whose value currently
    // sits in r (cleared by the next write of r).
    let mut pending: [Option<Addr>; NUM_REGS] = [None; NUM_REGS];
    let mut interp = Interpreter::new(program);
    let mut steps = 0u64;
    while !interp.is_halted() && steps < max_steps && out.len() < MAX_VIOLATIONS {
        steps += 1;
        let pc = interp.pc();
        let key = pc.index() as u32;
        let info = match interp.step() {
            Ok(info) => info,
            Err(e) => {
                // A fault at an InBounds-claimed access disproves the
                // claim; any other fault just ends the run.
                if let ExecError::MemOutOfBounds { pc: fpc, addr } = &e {
                    if let Some(AccessClass::InBounds { lo, hi }) =
                        mem_by_pc.get(&(fpc.index() as u32))
                    {
                        out.push(Violation {
                            pc: *fpc,
                            kind: "bounds-in",
                            detail: format!(
                                "claimed in [{lo}, {hi}] but faulted at address {addr}"
                            ),
                        });
                    }
                }
                break;
            }
        };

        // Bounds: the access executed without faulting.
        match mem_by_pc.get(&key) {
            Some(AccessClass::OutOfBounds { lo, hi }) => {
                out.push(Violation {
                    pc,
                    kind: "bounds-out",
                    detail: format!(
                        "claimed always-faulting in [{lo}, {hi}] but executed \
                         (address {:?})",
                        info.mem_addr
                    ),
                });
                // Don't re-report this pc every iteration.
                mem_by_pc.remove(&key);
            }
            Some(AccessClass::InBounds { lo, hi }) => {
                if let Some(a) = info.mem_addr {
                    let a = a as i64;
                    if a < *lo || a > *hi {
                        out.push(Violation {
                            pc,
                            kind: "bounds-in",
                            detail: format!(
                                "claimed interval [{lo}, {hi}] misses concrete address {a}"
                            ),
                        });
                        mem_by_pc.remove(&key);
                    }
                }
            }
            _ => {}
        }

        // Liveness: reads happen before the write of the same step.
        for r in info.inst.sources() {
            if let Some(w) = pending[r.index()] {
                out.push(Violation {
                    pc: w,
                    kind: "dead-write",
                    detail: format!("claimed dead write of {r} was read at {pc}"),
                });
                pending[r.index()] = None;
            }
        }
        if let Some(rd) = info.inst.dest() {
            pending[rd.index()] = dead_by_pc.contains_key(&key).then_some(pc);
        }

        // Static exits: wherever control went, it must be the claimed
        // target (halts are never claimed).
        if let Some(&target) = exit_by_pc.get(&key) {
            let went = match info.transfer {
                Some(t) if t.kind == TransferKind::Halt => None,
                Some(t) => Some(t.to),
                None => Some(info.next),
            };
            if let Some(went) = went {
                if went != target {
                    out.push(Violation {
                        pc,
                        kind: "static-exit",
                        detail: format!(
                            "claimed static exit to {target} but control went to {went}"
                        ),
                    });
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use multiscalar_isa::{AluOp, Cond, ProgramBuilder, Reg};
    use multiscalar_taskform::{TaskFormer, TaskId};

    fn counted_loop() -> Program {
        let mut b = ProgramBuilder::new();
        let main = b.begin_function("main");
        b.load_imm(Reg(1), 0);
        b.load_imm(Reg(2), 10);
        let top = b.here_label();
        b.store(Reg(1), Reg(1), 0);
        b.op_imm(AluOp::Add, Reg(1), Reg(1), 1);
        b.branch(Cond::Lt, Reg(1), Reg(2), top);
        b.halt();
        b.end_function();
        b.finish(main).unwrap()
    }

    #[test]
    fn derived_claims_survive_their_own_execution() {
        let p = counted_loop();
        let tasks = TaskFormer::default().form(&p).unwrap();
        let claims = derive_claims(&p, &tasks);
        assert!(!claims.mem.is_empty(), "the store must be classified");
        assert!(!claims.exits.is_empty(), "jump/fall-through exits exist");
        assert!(check_claims(&p, &claims, 1 << 16).is_empty());
    }

    #[test]
    fn planted_wrong_out_of_bounds_claim_is_caught() {
        let p = counted_loop();
        let claims = Claims {
            // The store at pc 2 is in bounds; claiming it always faults
            // must be disproved on the first iteration.
            mem: vec![MemClaim {
                pc: Addr(2),
                store: true,
                class: AccessClass::OutOfBounds { lo: 0, hi: 9 },
            }],
            ..Claims::default()
        };
        let v = check_claims(&p, &claims, 1 << 16);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].kind, "bounds-out");
        assert_eq!(v[0].pc, Addr(2));
    }

    #[test]
    fn planted_narrow_in_bounds_interval_is_caught() {
        let p = counted_loop();
        let claims = Claims {
            // Addresses actually run 0..=9; an interval stopping at 3 is
            // unsound.
            mem: vec![MemClaim {
                pc: Addr(2),
                store: true,
                class: AccessClass::InBounds { lo: 0, hi: 3 },
            }],
            ..Claims::default()
        };
        let v = check_claims(&p, &claims, 1 << 16);
        assert!(
            v.iter()
                .any(|v| v.kind == "bounds-in" && v.detail.contains("misses")),
            "{v:?}"
        );
    }

    #[test]
    fn planted_live_write_claimed_dead_is_caught() {
        let p = counted_loop();
        let claims = Claims {
            // r1's increment at pc 3 is read by the branch at pc 4.
            dead: vec![DeadWrite {
                pc: Addr(3),
                reg: Reg(1),
            }],
            ..Claims::default()
        };
        let v = check_claims(&p, &claims, 1 << 16);
        assert!(!v.is_empty());
        assert_eq!(v[0].kind, "dead-write");
        assert_eq!(v[0].pc, Addr(3));
        assert!(v[0].detail.contains("read at"), "{v:?}");
    }

    #[test]
    fn planted_data_dependent_exit_claimed_static_is_caught() {
        let p = counted_loop();
        let claims = Claims {
            // The latch branch at pc 4 goes both ways across iterations;
            // claiming it always loops back is the misclassification the
            // oracle exists to catch.
            exits: vec![StaticExitClaim {
                task: TaskId(0),
                source: Addr(4),
                target: Addr(2),
            }],
            ..Claims::default()
        };
        let v = check_claims(&p, &claims, 1 << 16);
        assert!(!v.is_empty());
        assert_eq!(v[0].kind, "static-exit");
        assert!(v[0].detail.contains("control went to"), "{v:?}");
    }
}
