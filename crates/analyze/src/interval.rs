//! Unsigned 32-bit interval arithmetic for the value-range analysis.
//!
//! An [`Interval`] abstracts a set of `u32` values as `[lo, hi]` held in
//! `i64` (so no computation here ever wraps). Every operation is *sound
//! over-approximation*: the concrete result of the matching [`AluOp`] on
//! any pair of contained values is contained in the abstract result. When
//! a wrapping outcome cannot be excluded the operation answers
//! [`Interval::full`] rather than guessing — the bounds pass only ever
//! claims what it can prove.

use multiscalar_isa::AluOp;

/// Inclusive range of unsigned 32-bit values, `0 <= lo <= hi <= u32::MAX`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interval {
    /// Smallest contained value.
    pub lo: i64,
    /// Largest contained value.
    pub hi: i64,
}

const MAX: i64 = u32::MAX as i64;

/// Widening thresholds: interval bounds snap outward onto these instead of
/// climbing one fuzz-loop iteration at a time. The values are the bounds
/// the memory pass actually compares against (zero, a handful of small
/// power-of-two table sizes, the interpreter memory size, `i32::MAX` for
/// signedness proofs, and the type bound).
const THRESHOLDS: [i64; 8] = [
    0,
    63,
    255,
    65_535,
    1 << 20,
    (1 << 20) + 8,
    i32::MAX as i64,
    MAX,
];

impl Interval {
    /// The interval containing exactly `v`.
    pub fn exact(v: u32) -> Interval {
        Interval {
            lo: v as i64,
            hi: v as i64,
        }
    }

    /// `[lo, hi]`, clamped into the `u32` range. Panics if empty.
    pub fn new(lo: i64, hi: i64) -> Interval {
        assert!(lo <= hi, "empty interval [{lo}, {hi}]");
        Interval {
            lo: lo.clamp(0, MAX),
            hi: hi.clamp(0, MAX),
        }
    }

    /// Every `u32` value.
    pub fn full() -> Interval {
        Interval { lo: 0, hi: MAX }
    }

    /// `true` if this is [`Interval::full`].
    pub fn is_full(&self) -> bool {
        self.lo == 0 && self.hi == MAX
    }

    /// `true` if the interval contains exactly one value.
    pub fn as_singleton(&self) -> Option<u32> {
        (self.lo == self.hi).then_some(self.lo as u32)
    }

    /// `true` if `v` is contained.
    pub fn contains(&self, v: i64) -> bool {
        self.lo <= v && v <= self.hi
    }

    /// Least upper bound (convex hull).
    pub fn join(self, other: Interval) -> Interval {
        Interval {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
    }

    /// Greatest lower bound, `None` when disjoint.
    pub fn meet(self, other: Interval) -> Option<Interval> {
        let lo = self.lo.max(other.lo);
        let hi = self.hi.min(other.hi);
        (lo <= hi).then_some(Interval { lo, hi })
    }

    /// Widens `self` (the accumulated fact) against `next` (the incoming
    /// fact): any bound that moved jumps to the nearest enclosing
    /// threshold. Guarantees termination of the fixpoint in a handful of
    /// joins per bound.
    pub fn widen(self, next: Interval) -> Interval {
        let mut lo = self.lo.min(next.lo);
        let mut hi = self.hi.max(next.hi);
        if next.lo < self.lo {
            lo = THRESHOLDS
                .iter()
                .rev()
                .copied()
                .find(|&t| t <= lo)
                .unwrap_or(0);
        }
        if next.hi > self.hi {
            hi = THRESHOLDS.iter().copied().find(|&t| t >= hi).unwrap_or(MAX);
        }
        Interval { lo, hi }
    }

    /// Abstract transfer of `op` over two intervals.
    pub fn apply(op: AluOp, a: Interval, b: Interval) -> Interval {
        match op {
            AluOp::Add => {
                let (lo, hi) = (a.lo + b.lo, a.hi + b.hi);
                if hi <= MAX {
                    Interval { lo, hi }
                } else {
                    Interval::full()
                }
            }
            AluOp::Sub => {
                let (lo, hi) = (a.lo - b.hi, a.hi - b.lo);
                if lo >= 0 {
                    Interval { lo, hi }
                } else {
                    Interval::full()
                }
            }
            AluOp::Mul => match (a.hi as i128).checked_mul(b.hi as i128) {
                Some(hi) if hi <= MAX as i128 => Interval {
                    lo: a.lo * b.lo,
                    hi: hi as i64,
                },
                _ => Interval::full(),
            },
            // AND can only clear bits: the result is at most either
            // operand's maximum. Exact when one side is a singleton mask
            // that already covers the other side.
            AluOp::And => {
                let hi = a.hi.min(b.hi);
                match (a.as_singleton(), b.as_singleton()) {
                    (Some(x), Some(y)) => Interval::exact(x & y),
                    _ => Interval { lo: 0, hi },
                }
            }
            // OR and XOR can only toggle bits at or below the highest set
            // bit of either operand: bound by the all-ones mask covering
            // both maxima.
            AluOp::Or | AluOp::Xor => {
                if let (Some(x), Some(y)) = (a.as_singleton(), b.as_singleton()) {
                    return Interval::exact(if op == AluOp::Or { x | y } else { x ^ y });
                }
                let hi = ones_mask(a.hi | b.hi);
                // OR can't go below either operand's minimum.
                let lo = if op == AluOp::Or { a.lo.max(b.lo) } else { 0 };
                Interval { lo, hi }
            }
            AluOp::Shl => {
                // The shift amount is taken mod 32; only a provably small
                // amount range keeps the result exact.
                if b.hi > 31 {
                    return Interval::full();
                }
                let hi = a.hi << b.hi;
                if hi <= MAX {
                    Interval {
                        lo: a.lo << b.lo,
                        hi,
                    }
                } else {
                    Interval::full()
                }
            }
            AluOp::Shr => {
                if b.hi > 31 {
                    return Interval::full();
                }
                Interval {
                    lo: a.lo >> b.hi,
                    hi: a.hi >> b.lo,
                }
            }
            AluOp::Slt => {
                // Signed compare; only decidable when both sides stay in
                // the non-negative i32 range (true of every index-typed
                // value the pass cares about).
                if a.hi <= i32::MAX as i64 && b.hi <= i32::MAX as i64 {
                    if a.hi < b.lo {
                        Interval::exact(1)
                    } else if a.lo >= b.hi {
                        Interval::exact(0)
                    } else {
                        Interval { lo: 0, hi: 1 }
                    }
                } else {
                    Interval { lo: 0, hi: 1 }
                }
            }
            AluOp::Sltu => {
                if a.hi < b.lo {
                    Interval::exact(1)
                } else if a.lo >= b.hi {
                    Interval::exact(0)
                } else {
                    Interval { lo: 0, hi: 1 }
                }
            }
        }
    }
}

impl std::fmt::Display for Interval {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_full() {
            f.write_str("[0, 2^32)")
        } else if self.lo == self.hi {
            write!(f, "{}", self.lo)
        } else {
            write!(f, "[{}, {}]", self.lo, self.hi)
        }
    }
}

/// Smallest all-ones mask `>= v` (e.g. `ones_mask(5) == 7`).
fn ones_mask(v: i64) -> i64 {
    let mut m = 0;
    while m < v {
        m = (m << 1) | 1;
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Exhaustive soundness probe: concrete results of sampled operand
    /// pairs must land inside the abstract result.
    #[test]
    fn transfer_is_sound_on_sampled_operands() {
        let intervals = [
            Interval::exact(0),
            Interval::exact(1),
            Interval::exact(31),
            Interval::exact(u32::MAX),
            Interval::new(0, 63),
            Interval::new(5, 9),
            Interval::new(1000, 1 << 20),
            Interval::full(),
        ];
        let ops = [
            AluOp::Add,
            AluOp::Sub,
            AluOp::Mul,
            AluOp::And,
            AluOp::Or,
            AluOp::Xor,
            AluOp::Shl,
            AluOp::Shr,
            AluOp::Slt,
            AluOp::Sltu,
        ];
        let samples = |iv: Interval| {
            let mid = (iv.lo + iv.hi) / 2;
            [iv.lo, mid, iv.hi].map(|v| v as u32)
        };
        for &op in &ops {
            for &a in &intervals {
                for &b in &intervals {
                    let r = Interval::apply(op, a, b);
                    for x in samples(a) {
                        for y in samples(b) {
                            let c = op.apply(x, y) as i64;
                            assert!(
                                r.contains(c),
                                "{op:?}({x}, {y}) = {c} outside {r} (a={a}, b={b})"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn widening_terminates_and_over_approximates() {
        let mut acc = Interval::exact(0);
        let mut widenings = 0;
        for i in 1..1_000_000u32 {
            let next = acc.join(Interval::exact(i));
            if next != acc {
                acc = acc.widen(next);
                widenings += 1;
            }
            if acc.hi >= i as i64 && acc.hi == MAX {
                break;
            }
        }
        assert!(widenings <= THRESHOLDS.len() + 1, "{widenings} widenings");
        assert!(acc.contains(999));
    }

    #[test]
    fn and_with_mask_bounds_the_result() {
        let any = Interval::full();
        let mask = Interval::exact(63);
        let r = Interval::apply(AluOp::And, any, mask);
        assert_eq!(r, Interval::new(0, 63));
    }

    #[test]
    fn meet_refines_and_detects_disjoint() {
        let a = Interval::new(0, 100);
        let b = Interval::new(50, 200);
        assert_eq!(a.meet(b), Some(Interval::new(50, 100)));
        assert_eq!(a.meet(Interval::new(101, 200)), None);
    }
}
