#![warn(missing_docs)]

//! Static analysis over Multiscalar programs and task flow graphs.
//!
//! The speculation machinery of the paper trusts the compiler completely:
//! task headers with at most four exits, exit targets that land on task
//! entries, create masks that cover every register a task may write. This
//! crate is the correctness gate that earns that trust. Three passes run
//! over a [`Program`] and its task partition:
//!
//! * [`ir`] — instruction-level validation (register ranges, transfer
//!   targets in range and intra-function, calls landing on function
//!   entries);
//! * [`tfg_check`] — task/TFG structural checking (exit counts, exit
//!   targets resolving to task entries, exit specifiers matching their
//!   instructions, unreachable tasks, dead exits);
//! * [`mask`] — create-mask dataflow (a fixed-point may-write set per
//!   task, proving the mask sound and flagging over-wide bits as perf
//!   lints);
//! * [`bounds`] — interprocedural interval analysis classifying every
//!   load/store as provably in bounds, provably faulting, unproven, or
//!   stack-assumed;
//! * [`liveness`] — interprocedural register liveness with use/kill
//!   summaries (dead-write and maybe-uninit-read lints);
//! * [`spec`] — speculation quality: per-task static exit classification
//!   plus trip-bound-aware squash-proneness scoring, rendered by
//!   `harness lint --speculation` and cross-checked by the fuzz
//!   soundness oracle.
//!
//! All findings share one [`Diagnostic`] type with a rustc-style text
//! renderer and a JSON-lines renderer for CI. The harness exposes the
//! pipeline as `harness lint [--deny warnings] [--json]`.
//!
//! # Example
//!
//! ```
//! use multiscalar_isa::{AluOp, Cond, ProgramBuilder, Reg};
//! use multiscalar_taskform::{TaskFlowGraph, TaskFormer};
//!
//! let mut b = ProgramBuilder::new();
//! let main = b.begin_function("main");
//! let top = b.here_label();
//! b.op_imm(AluOp::Add, Reg(1), Reg(1), 1);
//! b.branch(Cond::Lt, Reg(1), Reg(2), top);
//! b.halt();
//! b.end_function();
//! let p = b.finish(main).unwrap();
//! let tasks = TaskFormer::default().form(&p).unwrap();
//! let tfg = TaskFlowGraph::build(&tasks);
//!
//! let diags = multiscalar_analyze::analyze(&p, &tasks, &tfg);
//! assert!(diags.is_empty(), "{diags:?}");
//! ```

pub mod bounds;
pub mod dataflow;
pub mod diag;
pub mod interval;
pub mod ir;
pub mod liveness;
pub mod mask;
mod reach;
pub mod soundness;
pub mod spec;
pub mod tfg_check;

pub use diag::{
    has_errors, render_all, render_all_in_source, render_all_json, Diagnostic, Pass, Severity,
    SrcLoc,
};

use multiscalar_isa::Program;
use multiscalar_taskform::{TaskFlowGraph, TaskProgram};

/// Runs every pass over a program and its task partition, returning all
/// findings in deterministic order (by address, then task, then severity).
pub fn analyze(program: &Program, tasks: &TaskProgram, tfg: &TaskFlowGraph) -> Vec<Diagnostic> {
    let mut diags = ir::check_program(program);
    diags.extend(tfg_check::check(program, tasks, tfg));
    diags.extend(mask::check(program, tasks));
    // The dataflow passes assume a structurally valid program; skip them
    // when the structural passes already found errors.
    if !has_errors(&diags) {
        diags.extend(bounds::check(program).diags);
        diags.extend(liveness::check(program).diags);
    }
    sort(&mut diags);
    diags
}

/// Runs only the instruction-level pass — usable before task formation.
pub fn analyze_program(program: &Program) -> Vec<Diagnostic> {
    let mut diags = ir::check_program(program);
    sort(&mut diags);
    diags
}

fn sort(diags: &mut [Diagnostic]) {
    diags.sort_by(|a, b| {
        (
            a.span,
            a.src,
            a.task,
            std::cmp::Reverse(a.severity),
            &a.message,
        )
            .cmp(&(
                b.span,
                b.src,
                b.task,
                std::cmp::Reverse(b.severity),
                &b.message,
            ))
    });
}

/// Converts a batch of assembler diagnostics (already in source order)
/// into the shared [`Diagnostic`] type with catalog codes and source
/// locations attached.
pub fn asm_diagnostics(errs: &[multiscalar_isa::AsmDiagnostic]) -> Vec<Diagnostic> {
    errs.iter().map(Diagnostic::from_asm).collect()
}
