//! Structural checking of a task partition and its task flow graph.
//!
//! Errors found here mean the global sequencer would mispredict or the
//! register forwarding hardware would deadlock: exits that resolve to no
//! task entry, headers whose exit specifier disagrees with the underlying
//! instruction, tasks with no exits at all. Warnings cover speculation
//! metadata that cannot hurt correctness but wastes header space or
//! predictor reach (dead exits, unreachable tasks).

use crate::diag::{codes, Diagnostic};
use crate::reach;
use multiscalar_isa::{Addr, Cond, ExitKind, Instruction, Program, MAX_EXITS};
use multiscalar_taskform::{ExitSpec, Task, TaskFlowGraph, TaskId, TaskProgram, TfgArc};
use std::collections::HashSet;

/// Runs every structural check. See the module docs for the error/warning
/// split.
pub fn check(program: &Program, tasks: &TaskProgram, tfg: &TaskFlowGraph) -> Vec<Diagnostic> {
    let mut diags = Vec::new();

    check_coverage(program, tasks, &mut diags);
    for t in tasks.tasks() {
        check_task(program, tasks, t, &mut diags);
    }
    check_arcs(tasks, tfg, &mut diags);
    check_reachability(program, tasks, &mut diags);
    check_dead_exits(program, tasks, &mut diags);

    diags
}

/// Every instruction must belong to a task, and the map must not extend
/// past the program.
fn check_coverage(program: &Program, tasks: &TaskProgram, diags: &mut Vec<Diagnostic>) {
    for pc in 0..program.len() as u32 {
        if tasks.task_at(Addr(pc)).is_none() {
            diags.push(
                Diagnostic::new(
                    &codes::UNTASKED_INSTRUCTION,
                    "instruction belongs to no task",
                )
                .at(Addr(pc)),
            );
        }
    }
    if tasks.task_at(Addr(program.len() as u32)).is_some() {
        diags.push(Diagnostic::new(
            &codes::TASK_MAP_OVERRUN,
            "task map extends past the end of the program",
        ));
    }
}

fn check_task(program: &Program, tasks: &TaskProgram, t: &Task, diags: &mut Vec<Diagnostic>) {
    let id = t.id();

    // Entry ownership; a failure here means two tasks claim overlapping
    // instructions (only one can own the address).
    match tasks.task_at(t.entry()) {
        Some(owner) if owner == id => {}
        Some(owner) => diags.push(
            Diagnostic::new(
                &codes::TASK_OWNERSHIP,
                format!("duplicate task entry: address also owned by {owner}"),
            )
            .in_task(id)
            .at(t.entry()),
        ),
        None => diags.push(
            Diagnostic::new(
                &codes::TASK_OWNERSHIP,
                "task entry lies outside the program",
            )
            .in_task(id)
            .at(t.entry()),
        ),
    }
    for &b in t.block_starts() {
        if tasks.task_at(b) != Some(id) {
            diags.push(
                Diagnostic::new(&codes::TASK_OWNERSHIP, "task block not owned by the task")
                    .in_task(id)
                    .at(b),
            );
        }
    }

    // Exit count. A task with no exits can never hand control to a
    // successor: the sequencer would stall forever at its head.
    let n = t.header().num_exits();
    if n == 0 {
        diags.push(
            Diagnostic::new(&codes::NO_EXITS, "task has no exits")
                .in_task(id)
                .at(t.entry()),
        );
    } else if n > MAX_EXITS {
        diags.push(
            Diagnostic::new(
                &codes::TOO_MANY_EXITS,
                format!("task has {n} exits, the header encodes at most {MAX_EXITS}"),
            )
            .in_task(id)
            .at(t.entry()),
        );
    }

    for e in t.header().exits() {
        check_exit(program, tasks, t, e, diags);
    }
}

fn check_exit(
    program: &Program,
    tasks: &TaskProgram,
    t: &Task,
    e: &ExitSpec,
    diags: &mut Vec<Diagnostic>,
) {
    let id = t.id();
    if tasks.task_at(e.source) != Some(id) {
        diags.push(
            Diagnostic::new(&codes::EXIT_SOURCE, "exit source lies outside the task")
                .in_task(id)
                .at(e.source),
        );
        return;
    }

    // Exit targets and call return points are what the sequencer predicts
    // among — each must itself start a task.
    for (what, addr) in [
        ("exit target", e.target),
        ("call return point", e.return_addr),
    ] {
        if let Some(a) = addr {
            if tasks.task_entered_at(a).is_none() {
                diags.push(
                    Diagnostic::new(
                        &codes::EXIT_TARGET_NOT_TASK,
                        format!("{what} pc {} does not start a task", a.0),
                    )
                    .in_task(id)
                    .at(e.source),
                );
            }
        }
    }

    check_exit_kind(program, t, e, diags);
}

/// The exit specifier must describe the instruction that realises it —
/// the hardware decodes the specifier *instead of* the instruction.
fn check_exit_kind(program: &Program, t: &Task, e: &ExitSpec, diags: &mut Vec<Diagnostic>) {
    let id = t.id();
    let Some(inst) = program.fetch(e.source) else {
        diags.push(
            Diagnostic::new(&codes::EXIT_SOURCE, "exit source lies outside the program")
                .in_task(id)
                .at(e.source),
        );
        return;
    };
    let mut bad = |why: &str| {
        diags.push(
            Diagnostic::new(
                &codes::EXIT_SPEC_MISMATCH,
                format!("{} exit specifier does not match `{inst}`: {why}", e.kind),
            )
            .in_task(id)
            .at(e.source),
        );
    };
    match e.kind {
        ExitKind::Branch => {
            // Taken branch, jump, or implicit fall-through past the last
            // instruction of a block — anything that stays on the direct
            // control-flow path.
            let ok_target = match inst {
                Instruction::Branch { target, .. } => {
                    e.target == Some(target) || e.target == Some(e.source.next())
                }
                Instruction::Jump { target } => e.target == Some(target),
                i if !i.is_unconditional_transfer() => e.target == Some(e.source.next()),
                _ => {
                    bad("instruction always transfers control some other way");
                    return;
                }
            };
            if !ok_target {
                bad("exit target is neither the transfer target nor the fall-through");
            }
        }
        ExitKind::Call => match inst {
            Instruction::Call { target }
                if e.target == Some(target) && e.return_addr == Some(e.source.next()) => {}
            Instruction::Call { .. } => bad("target or return address is wrong"),
            _ => bad("instruction is not a call"),
        },
        ExitKind::IndirectCall => match inst {
            Instruction::CallIndirect { .. } if e.return_addr == Some(e.source.next()) => {}
            Instruction::CallIndirect { .. } => bad("return address is wrong"),
            _ => bad("instruction is not an indirect call"),
        },
        ExitKind::IndirectBranch => {
            if !matches!(inst, Instruction::JumpIndirect { .. }) {
                bad("instruction is not an indirect jump");
            }
        }
        ExitKind::Return => {
            if !matches!(inst, Instruction::Return) {
                bad("instruction is not a return");
            }
        }
        ExitKind::Halt => {
            if !matches!(inst, Instruction::Halt) {
                bad("instruction is not a halt");
            }
        }
    }
}

/// The TFG must mirror the headers it was built from.
fn check_arcs(tasks: &TaskProgram, tfg: &TaskFlowGraph, diags: &mut Vec<Diagnostic>) {
    if tfg.len() != tasks.static_task_count() {
        diags.push(Diagnostic::new(
            &codes::TFG_DISAGREES,
            format!(
                "TFG has {} nodes for {} tasks",
                tfg.len(),
                tasks.static_task_count()
            ),
        ));
        return;
    }
    for t in tasks.tasks() {
        let arcs = tfg.arcs(t.id());
        if arcs.len() != t.header().num_exits() {
            diags.push(
                Diagnostic::new(
                    &codes::TFG_DISAGREES,
                    format!(
                        "TFG records {} arcs for {} header exits",
                        arcs.len(),
                        t.header().num_exits()
                    ),
                )
                .in_task(t.id()),
            );
            continue;
        }
        for (e, a) in t.header().exits().iter().zip(arcs) {
            let expect = e
                .target
                .and_then(|addr| tasks.task_entered_at(addr))
                .map_or(TfgArc::Unknown(e.kind), TfgArc::To);
            if *a != expect {
                diags.push(
                    Diagnostic::new(
                        &codes::TFG_DISAGREES,
                        format!("TFG arc {a:?} disagrees with header exit ({expect:?})"),
                    )
                    .in_task(t.id())
                    .at(e.source),
                );
            }
        }
    }
}

/// Flags tasks no execution starting at the program entry can ever enter.
/// Reachability follows statically-known exit targets, call return points,
/// and declared indirect-target metadata.
fn check_reachability(program: &Program, tasks: &TaskProgram, diags: &mut Vec<Diagnostic>) {
    if tasks.tasks().is_empty() {
        return;
    }
    let Some(entry_task) = tasks.task_entered_at(program.entry_point()) else {
        diags.push(
            Diagnostic::new(
                &codes::ENTRY_NOT_TASK,
                "program entry point does not start a task",
            )
            .at(program.entry_point()),
        );
        return;
    };

    let mut seen: HashSet<TaskId> = HashSet::new();
    let mut stack = vec![entry_task];
    seen.insert(entry_task);
    while let Some(id) = stack.pop() {
        let t = tasks.task(id);
        let visit = |addr: Addr, seen: &mut HashSet<TaskId>, stack: &mut Vec<TaskId>| {
            if let Some(s) = tasks.task_entered_at(addr) {
                if seen.insert(s) {
                    stack.push(s);
                }
            }
        };
        for e in t.header().exits() {
            if let Some(a) = e.target {
                visit(a, &mut seen, &mut stack);
            }
            if let Some(a) = e.return_addr {
                visit(a, &mut seen, &mut stack);
            }
            if let Some(indirect) = program.indirect_targets(e.source) {
                for &a in indirect {
                    visit(a, &mut seen, &mut stack);
                }
            }
        }
    }

    for t in tasks.tasks() {
        if !seen.contains(&t.id()) {
            diags.push(
                Diagnostic::new(
                    &codes::UNREACHABLE_TASK,
                    "task is unreachable from the program entry",
                )
                .in_task(t.id())
                .at(t.entry()),
            );
        }
    }
}

/// Flags exits that can never be taken: exits whose source block is not
/// reachable within the task, and branch exits on the statically dead side
/// of a register-compared-with-itself conditional.
fn check_dead_exits(program: &Program, tasks: &TaskProgram, diags: &mut Vec<Diagnostic>) {
    let cfgs = reach::build_cfgs(program, tasks);
    for t in tasks.tasks() {
        let Some(cfg) = cfgs.get(&t.func().0) else {
            continue;
        };
        let Some(live) = reach::reachable_blocks(cfg, tasks, t) else {
            diags.push(
                Diagnostic::new(
                    &codes::ENTRY_NOT_BLOCK,
                    "task entry does not start a basic block",
                )
                .in_task(t.id())
                .at(t.entry()),
            );
            continue;
        };
        for e in t.header().exits() {
            if tasks.task_at(e.source) != Some(t.id()) {
                continue; // already an error
            }
            match cfg.block_containing(e.source) {
                Some(b) if live.contains(&b) => check_infeasible_branch(program, t, e, diags),
                Some(_) => diags.push(
                    Diagnostic::new(
                        &codes::DEAD_EXIT_UNREACHABLE,
                        "dead exit: source block is unreachable within the task",
                    )
                    .in_task(t.id())
                    .at(e.source),
                ),
                None => {}
            }
        }
    }
}

fn check_infeasible_branch(program: &Program, t: &Task, e: &ExitSpec, diags: &mut Vec<Diagnostic>) {
    let Some(Instruction::Branch {
        cond,
        rs1,
        rs2,
        target,
    }) = program.fetch(e.source)
    else {
        return;
    };
    if rs1 != rs2 || target == e.source.next() {
        return; // feasible, or taken and fall-through coincide
    }
    // Comparing a register with itself decides the branch statically.
    let always_taken = matches!(cond, Cond::Eq | Cond::Ge | Cond::Geu);
    let dead_side = if always_taken {
        e.source.next() // never falls through
    } else {
        target // never taken
    };
    if e.target == Some(dead_side) {
        diags.push(
            Diagnostic::new(
                &codes::DEAD_EXIT_INFEASIBLE,
                format!("dead exit: `b{cond} {rs1}, {rs1}` always goes the other way",),
            )
            .in_task(t.id())
            .at(e.source),
        );
    }
}
