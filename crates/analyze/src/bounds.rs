//! Interprocedural memory-bounds checking via interval analysis.
//!
//! Every load and store is classified into exactly one of four classes:
//!
//! * **in-bounds** — interval analysis proves the effective address lies
//!   inside interpreter memory on every execution reaching it;
//! * **out-of-bounds** ([`codes::OOB_ACCESS`], error) — the analysis
//!   proves the address is outside memory on every execution: executing
//!   the instruction always faults;
//! * **unproven** ([`codes::UNPROVEN_ACCESS`], warning) — the derived
//!   interval straddles the bound;
//! * **stack-assumed** ([`codes::STACK_ASSUMED`], note) — the address is
//!   stack-pointer-relative in a callee, where recursion depth (and hence
//!   the concrete SP) is not statically bounded. These are classified
//!   under the documented assumption that the stack region
//!   `[data_len, 2^20)` is never exhausted; they are *not* counted as
//!   proved and never become soundness-oracle claims.
//!
//! The abstract domain tracks, per register: a `u32` interval
//! ([`Interval`]), an *entry-SP-relative* offset (`SpRel`) for stack
//! pointers, or an *entry value* (`Entry(r, iv)`) meaning "the value
//! register `r` held at function entry". `Entry` values flow through
//! stack save/restore slots (an exact-offset frame model), which is how
//! callee-saved registers are proven `Preserved` across calls.
//!
//! Three interprocedural fixpoints run interleaved until stable: callee
//! *summaries* (per-register effects, frame safety), caller→callee entry
//! *contexts* (argument intervals), and the global *written set* (memory
//! that may be stored to; loads from provably-unwritten initial data get
//! the data's min/max as their value interval). If the interleaved loop
//! fails to converge within [`MAX_ROUNDS`] it falls back to fully
//! conservative inputs, which are trivially sound.

use crate::dataflow::{self, Analysis, Direction};
use crate::diag::{codes, Diagnostic};
use crate::interval::Interval;
use multiscalar_cfg::trip::{loop_bounds, TripBound};
use multiscalar_cfg::{BlockId, Cfg, Edge, EdgeKind, Terminator};
use multiscalar_isa::{Addr, AluOp, Cond, FuncId, Instruction, Program, Reg, DEFAULT_MEMORY_WORDS};
use std::collections::BTreeMap;

/// The stack-pointer register, by the code generator's convention. The
/// analysis does not *trust* the convention — a program that uses r31
/// differently just sees `SpRel` values degrade to `Top` — it only
/// decides which register starts as the symbolic entry SP.
const SP: Reg = Reg(31);

/// Rounds of the interleaved summary/context/written fixpoint before the
/// conservative fallback kicks in.
const MAX_ROUNDS: usize = 24;

/// `SpRel` offsets beyond this magnitude degrade to `Top`: the
/// bounded-stack assumption only covers frames that stay well inside the
/// `[data_len, 2^20)` stack region.
const SP_OFFSET_LIMIT: i64 = 1 << 19;

/// Changing joins at one block before interval widening kicks in.
const WIDEN_AFTER: u32 = 2;

/// One load/store classification, keyed by instruction address. The fuzz
/// soundness oracle replays these against a concrete execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemClaim {
    /// The load/store instruction.
    pub pc: Addr,
    /// `true` for stores.
    pub store: bool,
    /// The derived class.
    pub class: AccessClass,
}

/// The four-way classification (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessClass {
    /// Effective address provably in `[0, mem_len)`; the claimed interval
    /// must contain every concrete address and the access never faults.
    InBounds {
        /// Smallest possible effective address.
        lo: i64,
        /// Largest possible effective address.
        hi: i64,
    },
    /// Effective address provably outside memory: executing this
    /// instruction always faults.
    OutOfBounds {
        /// Smallest possible effective address.
        lo: i64,
        /// Largest possible effective address.
        hi: i64,
    },
    /// The derived interval straddles the memory bound.
    Unproven {
        /// Smallest possible effective address.
        lo: i64,
        /// Largest possible effective address.
        hi: i64,
    },
    /// Stack-pointer-relative in a callee; safe under the bounded-stack
    /// assumption, not proved.
    StackAssumed,
}

/// The bounds pass result: diagnostics for the lint pipeline plus the raw
/// per-access claims for the soundness oracle.
#[derive(Debug, Clone)]
pub struct BoundsReport {
    /// E050/W050/N050 findings.
    pub diags: Vec<Diagnostic>,
    /// Every reachable load/store's classification.
    pub claims: Vec<MemClaim>,
}

// ---------------------------------------------------------------------
// Abstract values
// ---------------------------------------------------------------------

/// Abstract register value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Val {
    /// No information.
    Top,
    /// Numeric `u32` interval.
    Num(Interval),
    /// Entry-SP plus an offset in `[lo, hi]` (offsets go negative as
    /// frames are pushed).
    SpRel(i64, i64),
    /// The value register `r` held at function entry, numerically bounded
    /// by the interval (from the caller contexts).
    Entry(Reg, Interval),
}

impl Val {
    /// Numeric over-approximation (loses SpRel/Entry identity).
    fn numeric(self) -> Interval {
        match self {
            Val::Num(iv) | Val::Entry(_, iv) => iv,
            Val::Top | Val::SpRel(..) => Interval::full(),
        }
    }

    fn from_interval(iv: Interval) -> Val {
        if iv.is_full() {
            Val::Top
        } else {
            Val::Num(iv)
        }
    }
}

/// Per-program-point abstract state: register file plus the exact-offset
/// stack frame model. `frame[d] = v` means the stack word at
/// `entry_SP + d` currently holds `v`.
#[derive(Debug, Clone, PartialEq)]
struct Env {
    regs: [Val; 32],
    frame: BTreeMap<i64, Val>,
}

/// `None` = unreachable (lattice bottom).
type Fact = Option<Env>;

fn join_interval(a: Interval, b: Interval, widen: bool) -> Interval {
    let j = a.join(b);
    if widen {
        a.widen(j)
    } else {
        j
    }
}

fn join_val(a: Val, b: Val, widen: bool) -> Val {
    match (a, b) {
        _ if a == b => a,
        (Val::Top, _) | (_, Val::Top) => Val::Top,
        (Val::Num(x), Val::Num(y)) => Val::Num(join_interval(x, y, widen)),
        (Val::Entry(r, x), Val::Entry(s, y)) if r == s => Val::Entry(r, join_interval(x, y, widen)),
        (Val::SpRel(l1, h1), Val::SpRel(l2, h2)) => {
            if widen {
                // SpRel has no widening thresholds; a moving SP at a join
                // point (unbalanced loop) degrades to Top.
                Val::Top
            } else {
                Val::SpRel(l1.min(l2), h1.max(h2))
            }
        }
        (Val::SpRel(..), _) | (_, Val::SpRel(..)) => Val::Top,
        // Entry/Num mixes and different entry registers: numeric hull.
        (x, y) => Val::from_interval(join_interval(x.numeric(), y.numeric(), widen)),
    }
}

fn join_env(into: &mut Env, from: &Env, widen: bool) -> bool {
    let mut changed = false;
    for i in 0..32 {
        let j = join_val(into.regs[i], from.regs[i], widen);
        if j != into.regs[i] {
            into.regs[i] = j;
            changed = true;
        }
    }
    // Frame join: keep only slots known on both sides, joining values.
    let keys: Vec<i64> = into.frame.keys().copied().collect();
    for d in keys {
        match from.frame.get(&d) {
            None => {
                into.frame.remove(&d);
                changed = true;
            }
            Some(&v) => {
                let cur = into.frame[&d];
                let j = join_val(cur, v, widen);
                if j != cur {
                    into.frame.insert(d, j);
                    changed = true;
                }
            }
        }
    }
    changed
}

// ---------------------------------------------------------------------
// Function summaries and shared context
// ---------------------------------------------------------------------

/// What a call does to one register, from the caller's point of view.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Effect {
    /// The caller's value survives (never written, or saved/restored).
    Preserved,
    /// Overwritten with a value in the interval.
    Value(Interval),
    /// Unknown.
    Top,
}

/// Callable summary of one function, computed to a fixpoint.
#[derive(Debug, Clone, PartialEq)]
struct FnSummary {
    effects: [Effect; 32],
    /// All transitive stores are exact SpRel slots strictly below the
    /// function's entry SP: a caller's frame slots survive the call.
    frame_safe: bool,
}

impl FnSummary {
    /// Optimistic seed for the descending summary fixpoint.
    fn optimistic() -> FnSummary {
        FnSummary {
            effects: [Effect::Preserved; 32],
            frame_safe: true,
        }
    }

    fn pessimistic() -> FnSummary {
        FnSummary {
            effects: [Effect::Top; 32],
            frame_safe: false,
        }
    }
}

/// Global may-written memory: disjoint address intervals plus coarse
/// flags. Loads from addresses provably outside this set read the initial
/// data segment (or the zero fill).
#[derive(Debug, Clone, PartialEq, Default)]
struct Written {
    /// Sorted, disjoint `(lo, hi, values)` ranges: the words `[lo, hi]`
    /// may be written, and every value stored there lies in `values`.
    intervals: Vec<(i64, i64, Interval)>,
    /// The whole stack region `[data_len, 2^20)` may be written.
    stack: bool,
    /// Everything may be written.
    all: bool,
}

/// Above this many disjoint ranges the set coarsens by merging the
/// closest pair — precision traded for termination.
const WRITTEN_CAP: usize = 48;

impl Written {
    /// Adds `[lo, hi]` holding values in `val`; returns `true` if the set
    /// grew (in addresses or in values).
    fn add(&mut self, lo: i64, hi: i64, val: Interval) -> bool {
        if self.all || lo > hi {
            return false;
        }
        if self
            .intervals
            .iter()
            .any(|&(a, b, v)| a <= lo && hi <= b && v.join(val) == v)
        {
            return false;
        }
        // Merge with any overlapping/adjacent ranges, joining values. The
        // value join widens: stored values can feed later stores through
        // loads (a strictly ascending chain the address lattice does not
        // have), so they must snap to thresholds for the interprocedural
        // rounds to converge.
        let (mut lo, mut hi, mut val) = (lo, hi, val);
        self.intervals.retain(|&(a, b, v)| {
            if a <= hi + 1 && b + 1 >= lo {
                lo = lo.min(a);
                hi = hi.max(b);
                val = join_interval(v, val, true);
                false
            } else {
                true
            }
        });
        self.intervals.push((lo, hi, val));
        self.intervals.sort_unstable_by_key(|&(a, b, _)| (a, b));
        if self.intervals.len() > WRITTEN_CAP {
            // Merge the closest adjacent pair.
            let mut best = 0;
            let mut gap = i64::MAX;
            for i in 0..self.intervals.len() - 1 {
                let g = self.intervals[i + 1].0 - self.intervals[i].1;
                if g < gap {
                    gap = g;
                    best = i;
                }
            }
            let (_, b, v) = self.intervals.remove(best + 1);
            self.intervals[best].1 = self.intervals[best].1.max(b);
            self.intervals[best].2 = join_interval(self.intervals[best].2, v, true);
        }
        true
    }

    fn set_stack(&mut self) -> bool {
        let was = self.stack;
        self.stack = true;
        !was
    }

    fn set_all(&mut self) -> bool {
        let was = self.all;
        self.all = true;
        !was
    }

    /// The join of every value that may have been stored into `[lo, hi]`,
    /// when that set is bounded: `Some(None)` if no write overlaps,
    /// `Some(Some(iv))` if all overlapping writes stored values in `iv`,
    /// and `None` when a write of unknown value may land there
    /// (stack-region aliasing or the `all` flag).
    fn stored_values(&self, lo: i64, hi: i64, data_len: i64) -> Option<Option<Interval>> {
        if self.all {
            return None;
        }
        if self.stack && lo < (1 << 20) && hi >= data_len {
            return None;
        }
        let mut acc: Option<Interval> = None;
        for &(a, b, v) in &self.intervals {
            if b >= lo && a <= hi {
                acc = Some(match acc {
                    None => v,
                    Some(x) => x.join(v),
                });
            }
        }
        Some(acc)
    }
}

/// Block-decomposed min/max over the initial data segment, for deriving
/// the value interval of a load from read-only data.
struct DataMinMax {
    data: Vec<u32>,
    mins: Vec<u32>,
    maxs: Vec<u32>,
}

const DATA_BLOCK: usize = 256;

impl DataMinMax {
    fn build(data: &[u32]) -> DataMinMax {
        let nb = data.len().div_ceil(DATA_BLOCK);
        let mut mins = vec![u32::MAX; nb];
        let mut maxs = vec![0u32; nb];
        for (i, &v) in data.iter().enumerate() {
            let b = i / DATA_BLOCK;
            mins[b] = mins[b].min(v);
            maxs[b] = maxs[b].max(v);
        }
        DataMinMax {
            data: data.to_vec(),
            mins,
            maxs,
        }
    }

    /// Min/max over `data[lo..=hi]` (callers clamp to the data range).
    fn query(&self, lo: usize, hi: usize) -> (u32, u32) {
        let (mut mn, mut mx) = (u32::MAX, 0u32);
        let mut i = lo;
        while i <= hi {
            if i.is_multiple_of(DATA_BLOCK) && i + DATA_BLOCK - 1 <= hi {
                let b = i / DATA_BLOCK;
                mn = mn.min(self.mins[b]);
                mx = mx.max(self.maxs[b]);
                i += DATA_BLOCK;
            } else {
                mn = mn.min(self.data[i]);
                mx = mx.max(self.data[i]);
                i += 1;
            }
        }
        (mn, mx)
    }
}

/// Everything a transfer function needs, shared across one fixpoint round.
struct ACtx<'a> {
    program: &'a Program,
    mem_len: i64,
    data_len: i64,
    summaries: &'a [FnSummary],
    written: &'a Written,
    minmax: &'a DataMinMax,
}

// ---------------------------------------------------------------------
// Instruction transfer
// ---------------------------------------------------------------------

/// Where an access lands, before bounds classification.
enum Address {
    Num { lo: i64, hi: i64 },
    Sp { lo: i64, hi: i64 },
    Unknown,
}

fn address_of(env: &Env, base: Reg, offset: i32) -> Address {
    let off = offset as i64;
    match env.regs[base.index()] {
        Val::Num(iv) | Val::Entry(_, iv) => Address::Num {
            lo: iv.lo + off,
            hi: iv.hi + off,
        },
        Val::SpRel(l, h) => Address::Sp {
            lo: l + off,
            hi: h + off,
        },
        Val::Top => Address::Unknown,
    }
}

fn classify(addr: &Address, mem_len: i64) -> AccessClass {
    match *addr {
        Address::Sp { .. } => AccessClass::StackAssumed,
        Address::Unknown => AccessClass::Unproven {
            lo: 0,
            hi: u32::MAX as i64,
        },
        Address::Num { lo, hi } => {
            if lo >= 0 && hi < mem_len {
                AccessClass::InBounds { lo, hi }
            } else if hi < 0 || lo >= mem_len {
                AccessClass::OutOfBounds { lo, hi }
            } else {
                AccessClass::Unproven { lo, hi }
            }
        }
    }
}

/// Abstract ALU, including the SpRel/Entry special cases.
fn eval_op(op: AluOp, a: Val, b: Val) -> Val {
    // Identity-preserving moves: `add r, s, 0` / `sub r, s, 0` are the
    // `mov` idiom and must not degrade Entry/SpRel values.
    match op {
        AluOp::Add => {
            if b.numeric().as_singleton() == Some(0) && matches!(b, Val::Num(_)) {
                return a;
            }
            if a.numeric().as_singleton() == Some(0) && matches!(a, Val::Num(_)) {
                return b;
            }
        }
        AluOp::Sub | AluOp::Or | AluOp::Xor
            if b.numeric().as_singleton() == Some(0) && matches!(b, Val::Num(_)) =>
        {
            return a;
        }
        _ => {}
    }
    // Stack-pointer arithmetic keeps the symbolic base.
    match (op, a, b) {
        (AluOp::Add, Val::SpRel(l, h), other) | (AluOp::Add, other, Val::SpRel(l, h)) => {
            if let Val::Num(iv) | Val::Entry(_, iv) = other {
                return sp_rel(l + iv.lo, h + iv.hi);
            }
            return Val::Top;
        }
        (AluOp::Sub, Val::SpRel(l, h), Val::Num(iv))
        | (AluOp::Sub, Val::SpRel(l, h), Val::Entry(_, iv)) => {
            return sp_rel(l - iv.hi, h - iv.lo);
        }
        (AluOp::Sub, Val::SpRel(l1, h1), Val::SpRel(l2, h2)) => {
            let (lo, hi) = (l1 - h2, h1 - l2);
            if lo >= 0 {
                return Val::from_interval(Interval::new(lo, hi));
            }
            return Val::Top;
        }
        _ => {}
    }
    if matches!(a, Val::SpRel(..)) || matches!(b, Val::SpRel(..)) {
        // Any other arithmetic on a stack pointer: unknowable numerically.
        return match op {
            AluOp::Slt | AluOp::Sltu => Val::Num(Interval::new(0, 1)),
            _ => Val::Top,
        };
    }
    Val::from_interval(Interval::apply(op, a.numeric(), b.numeric()))
}

fn sp_rel(lo: i64, hi: i64) -> Val {
    if lo.abs() > SP_OFFSET_LIMIT || hi.abs() > SP_OFFSET_LIMIT {
        Val::Top
    } else {
        Val::SpRel(lo, hi)
    }
}

/// An immediate operand: negative immediates flip add/sub so the interval
/// math never sees a sign-extended wrap.
fn imm_op(op: AluOp, imm: i32) -> (AluOp, Val) {
    match op {
        AluOp::Add if imm < 0 => (AluOp::Sub, Val::Num(Interval::exact(imm.unsigned_abs()))),
        AluOp::Sub if imm < 0 => (AluOp::Add, Val::Num(Interval::exact(imm.unsigned_abs()))),
        _ => (op, Val::Num(Interval::exact(imm as u32))),
    }
}

/// What one instruction did, as far as the sweep collectors care.
enum Step {
    None,
    Mem { access: MemClaim },
    Call { callees: Vec<FuncId>, known: bool },
}

/// Abstractly executes one instruction, mutating `env`.
fn exec_inst(env: &mut Env, pc: Addr, inst: &Instruction, a: &ACtx) -> Step {
    match *inst {
        Instruction::LoadImm { rd, imm } => {
            env.regs[rd.index()] = Val::Num(Interval::exact(imm as u32));
            Step::None
        }
        Instruction::Op { op, rd, rs1, rs2 } => {
            env.regs[rd.index()] = eval_op(op, env.regs[rs1.index()], env.regs[rs2.index()]);
            Step::None
        }
        Instruction::OpImm { op, rd, rs1, imm } => {
            let (op, rhs) = imm_op(op, imm);
            env.regs[rd.index()] = eval_op(op, env.regs[rs1.index()], rhs);
            Step::None
        }
        Instruction::Load { rd, base, offset } => {
            let addr = address_of(env, base, offset);
            let class = classify(&addr, a.mem_len);
            env.regs[rd.index()] = load_value(env, &addr, &class, a);
            Step::Mem {
                access: MemClaim {
                    pc,
                    store: false,
                    class,
                },
            }
        }
        Instruction::Store { src, base, offset } => {
            let addr = address_of(env, base, offset);
            let class = classify(&addr, a.mem_len);
            store_effect(env, &addr, &class, src, a);
            Step::Mem {
                access: MemClaim {
                    pc,
                    store: true,
                    class,
                },
            }
        }
        Instruction::Call { target } => {
            let callees: Vec<FuncId> = a.program.function_at(target).into_iter().collect();
            let known = !callees.is_empty();
            apply_call(env, &callees, known, a);
            Step::Call { callees, known }
        }
        Instruction::CallIndirect { .. } => {
            let callees: Vec<FuncId> = a
                .program
                .indirect_targets(pc)
                .map(|ts| {
                    ts.iter()
                        .filter_map(|&t| a.program.function_at(t))
                        .collect()
                })
                .unwrap_or_default();
            let known = !callees.is_empty();
            apply_call(env, &callees, known, a);
            Step::Call { callees, known }
        }
        _ => Step::None,
    }
}

/// The value a load produces: frame slots for exact stack reads, the
/// initial-data min/max for provably-unwritten in-bounds reads, Top
/// otherwise.
fn load_value(env: &Env, addr: &Address, class: &AccessClass, a: &ACtx) -> Val {
    match *addr {
        Address::Sp { lo, hi } if lo == hi => env.frame.get(&lo).copied().unwrap_or(Val::Top),
        Address::Sp { .. } | Address::Unknown => Val::Top,
        Address::Num { lo, hi } => {
            let AccessClass::InBounds { .. } = class else {
                return Val::Top;
            };
            let Some(stored) = a.written.stored_values(lo, hi, a.data_len) else {
                return Val::Top; // a write of unknown value may land here
            };
            // Every word in the range holds either its initial value (the
            // data image / zero fill) or some stored value, so the join of
            // both contributions covers the load.
            let (mut mn, mut mx) = (u32::MAX, 0u32);
            if lo < a.data_len {
                let (m, x) = a.minmax.query(lo as usize, hi.min(a.data_len - 1) as usize);
                mn = mn.min(m);
                mx = mx.max(x);
            }
            if hi >= a.data_len {
                // Words past the data image are zero-filled.
                mn = 0;
            }
            let mut iv = Interval::new(mn as i64, mx as i64);
            if let Some(w) = stored {
                iv = iv.join(w);
            }
            Val::Num(iv)
        }
    }
}

/// A store's effect on the frame model (the written-set contribution is
/// collected by the sweep, not here).
fn store_effect(env: &mut Env, addr: &Address, class: &AccessClass, src: Reg, a: &ACtx) {
    match *addr {
        Address::Sp { lo, hi } if lo == hi => {
            env.frame.insert(lo, env.regs[src.index()]);
        }
        Address::Sp { .. } => env.frame.clear(),
        Address::Unknown => env.frame.clear(),
        Address::Num { lo, hi } => {
            // A numeric store that might land in the stack region may
            // alias our frame slots.
            let stack_hi = 1i64 << 20;
            let may_hit_stack = hi >= a.data_len && lo < stack_hi;
            if may_hit_stack || !matches!(class, AccessClass::InBounds { .. }) {
                env.frame.clear();
            }
        }
    }
}

/// Applies callee summaries at a call site.
fn apply_call(env: &mut Env, callees: &[FuncId], known: bool, a: &ACtx) {
    if !known {
        env.regs = [Val::Top; 32];
        env.frame.clear();
        return;
    }
    let mut regs = [Val::Top; 32];
    for (r, slot) in regs.iter_mut().enumerate() {
        let mut acc: Option<Val> = None;
        for &f in callees {
            let v = match a.summaries[f.index()].effects[r] {
                Effect::Preserved => env.regs[r],
                Effect::Value(iv) => Val::from_interval(iv),
                Effect::Top => Val::Top,
            };
            acc = Some(match acc {
                None => v,
                Some(x) => join_val(x, v, false),
            });
        }
        *slot = acc.unwrap_or(Val::Top);
    }
    env.regs = regs;
    // Frame slots survive iff every callee's transitive stores stay
    // strictly below its entry SP — which is our SP at the call, itself at
    // or below our own entry SP whenever we still have frame knowledge.
    let sp_at_call_safe = matches!(env.regs[SP.index()], Val::SpRel(_, h) if h <= 0);
    let all_safe = callees.iter().all(|&f| a.summaries[f.index()].frame_safe);
    if !(all_safe && sp_at_call_safe) {
        env.frame.clear();
    }
}

// ---------------------------------------------------------------------
// The per-function dataflow problem
// ---------------------------------------------------------------------

/// Trip-count-assisted cap for one loop: a register incremented only by
/// constants inside a loop with a known trip bound cannot climb more than
/// `step * back_edges` above its value at loop entry. This recovers the
/// pointer-increment idiom (`p += 1` bounded by a separate counter) that
/// pure interval analysis widens to ⊤.
#[derive(Debug, Clone)]
struct LoopCap {
    header: BlockId,
    /// Sorted body blocks (from the natural loop).
    body: Vec<BlockId>,
    /// Maximum back-edge traversals per external entry.
    back_edges: u64,
    /// `(reg, max total increment per traversal)`.
    cappable: Vec<(usize, i64)>,
}

/// Computes the loop caps for one function. Loops with unknown trip
/// bounds, and functions with irreducible control flow (where a block can
/// re-execute without crossing a detected loop header), produce no caps.
fn loop_caps(program: &Program, cfg: &Cfg) -> Vec<LoopCap> {
    if !reducible(cfg) {
        return Vec::new();
    }
    let bounds = loop_bounds(program, cfg);
    let mut caps = Vec::new();
    for lb in &bounds {
        let TripBound::AtMost(n) = lb.bound else {
            continue;
        };
        let l = &lb.natural;
        // Blocks of inner loops run more than once per traversal of `l`;
        // increments there cannot be counted.
        let in_inner = |b: BlockId| {
            bounds.iter().any(|other| {
                other.natural.header != l.header
                    && l.contains(other.natural.header)
                    && other.natural.contains(b)
            })
        };
        let mut cappable = Vec::new();
        'reg: for r in 0..32 {
            let mut step_sum = 0i64;
            let mut wrote = false;
            for &b in &l.body {
                for pc in cfg.block(b).range() {
                    let Some(inst) = program.fetch(Addr(pc)) else {
                        continue;
                    };
                    let writes_r = matches!(
                        inst,
                        Instruction::LoadImm { rd, .. }
                        | Instruction::Op { rd, .. }
                        | Instruction::OpImm { rd, .. }
                        | Instruction::Load { rd, .. } if rd.index() == r
                    );
                    if !writes_r {
                        continue;
                    }
                    wrote = true;
                    match inst {
                        Instruction::OpImm {
                            op: AluOp::Add,
                            rd,
                            rs1,
                            imm,
                        } if rd == rs1 && imm >= 0 && !in_inner(b) => {
                            step_sum += imm as i64;
                        }
                        _ => continue 'reg,
                    }
                }
            }
            // A call in the loop may write anything; trip.rs already
            // rejects such loops, so every write is accounted for here.
            if wrote {
                cappable.push((r, step_sum));
            }
        }
        if !cappable.is_empty() {
            caps.push(LoopCap {
                header: l.header,
                body: l.body.clone(),
                back_edges: n.saturating_sub(1),
                cappable,
            });
        }
    }
    caps
}

/// `true` if deleting all back edges (edges to a dominator) leaves the
/// graph acyclic — the precondition for trusting loop-body block sets.
fn reducible(cfg: &Cfg) -> bool {
    let n = cfg.blocks().len();
    let dom = cfg.dominators();
    let mut indeg = vec![0usize; n];
    let fwd: Vec<Vec<usize>> = (0..n)
        .map(|i| {
            cfg.block(BlockId(i as u32))
                .succs()
                .iter()
                .filter(|e| !dom.dominates(e.to, BlockId(i as u32)))
                .map(|e| e.to.index())
                .collect()
        })
        .collect();
    for succs in &fwd {
        for &t in succs {
            indeg[t] += 1;
        }
    }
    let mut stack: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
    let mut seen = 0;
    while let Some(b) = stack.pop() {
        seen += 1;
        for &t in &fwd[b] {
            indeg[t] -= 1;
            if indeg[t] == 0 {
                stack.push(t);
            }
        }
    }
    seen == n
}

struct FuncBounds<'a> {
    a: &'a ACtx<'a>,
    program: &'a Program,
    entry_env: Env,
    caps: &'a [LoopCap],
    /// Per-loop numeric baseline at loop entry, computed from a previous
    /// (sound, cap-free or looser-capped) solution of the same function.
    /// `None` disables capping for that loop.
    baselines: Vec<Option<[Interval; 32]>>,
}

impl Analysis for FuncBounds<'_> {
    type Fact = Fact;

    fn direction(&self) -> Direction {
        Direction::Forward
    }

    fn bottom(&self) -> Fact {
        None
    }

    fn boundary(&self, _t: Terminator) -> Fact {
        Some(self.entry_env.clone())
    }

    fn join(&self, into: &mut Fact, from: &Fact, joins: u32) -> bool {
        let Some(from) = from else { return false };
        match into {
            None => {
                *into = Some(from.clone());
                true
            }
            Some(env) => join_env(env, from, joins >= WIDEN_AFTER),
        }
    }

    fn transfer(&self, cfg: &Cfg, block: BlockId, fact: &Fact) -> Fact {
        let env = fact.as_ref()?;
        let mut env = env.clone();
        for pc in cfg.block(block).range() {
            if let Some(inst) = self.program.fetch(Addr(pc)) {
                exec_inst(&mut env, Addr(pc), &inst, self.a);
            }
        }
        Some(env)
    }

    fn refine(&self, cfg: &Cfg, from: BlockId, edge: Edge, fact: Fact) -> Fact {
        let env = fact?;
        let b = cfg.block(from);
        let refined = 'branch: {
            if b.terminator() != Terminator::CondBranch {
                break 'branch Some(env);
            }
            let Some(Instruction::Branch { cond, rs1, rs2, .. }) = self.program.fetch(b.last())
            else {
                break 'branch Some(env);
            };
            let taken = match edge.kind {
                EdgeKind::Taken => true,
                EdgeKind::FallThrough => false,
                _ => break 'branch Some(env),
            };
            let cond = if taken { cond } else { negate(cond) };
            refine_branch(env, cond, rs1, rs2)
        };
        let mut env = refined?;
        // Trip-count caps on back edges: each register incremented only by
        // constants inside the loop is bounded by its value at loop entry
        // plus step × back-edge count.
        for (i, cap) in self.caps.iter().enumerate() {
            if edge.to != cap.header || cap.body.binary_search(&from).is_err() {
                continue;
            }
            let Some(base) = self.baselines.get(i).copied().flatten() else {
                continue;
            };
            for &(r, step) in &cap.cappable {
                if base[r].is_full() {
                    continue;
                }
                let hi = base[r]
                    .hi
                    .saturating_add(step.saturating_mul(cap.back_edges as i64));
                let bound = Interval::new(base[r].lo, hi.min(u32::MAX as i64));
                if let Some(m) = env.regs[r].numeric().meet(bound) {
                    env.regs[r] = narrow(env.regs[r], m);
                }
            }
        }
        Some(env)
    }
}

/// Solves one function: a cap-free widened pass first, then up to two
/// narrowing rounds where loop-cap baselines are derived from the previous
/// (sound) solution and the function is re-solved with them. Every round
/// is independently sound, so stopping after any round is safe.
fn solve_func(
    a: &ACtx,
    program: &Program,
    cfg: &Cfg,
    caps: &[LoopCap],
    entry: Env,
) -> dataflow::Solution<Fact> {
    let mut baselines: Vec<Option<[Interval; 32]>> = vec![None; caps.len()];
    let mut analysis = FuncBounds {
        a,
        program,
        entry_env: entry.clone(),
        caps,
        baselines: baselines.clone(),
    };
    let mut sol = dataflow::solve(&analysis, cfg);
    for _ in 0..2 {
        if caps.is_empty() {
            break;
        }
        let next = compute_baselines(&analysis, cfg, caps, &sol);
        if next == baselines {
            break;
        }
        baselines = next;
        analysis = FuncBounds {
            a,
            program,
            entry_env: entry.clone(),
            caps,
            baselines: baselines.clone(),
        };
        sol = dataflow::solve(&analysis, cfg);
    }
    sol
}

/// Per-loop numeric join of everything flowing into the header from
/// outside the loop, under `sol` (including the boundary fact when the
/// header is the function entry block).
fn compute_baselines(
    analysis: &FuncBounds,
    cfg: &Cfg,
    caps: &[LoopCap],
    sol: &dataflow::Solution<Fact>,
) -> Vec<Option<[Interval; 32]>> {
    let fold = |acc: &mut Option<[Interval; 32]>, env: &Env| match acc {
        None => {
            let mut base = [Interval::full(); 32];
            for (r, slot) in base.iter_mut().enumerate() {
                *slot = env.regs[r].numeric();
            }
            *acc = Some(base);
        }
        Some(base) => {
            for (r, slot) in base.iter_mut().enumerate() {
                *slot = slot.join(env.regs[r].numeric());
            }
        }
    };
    caps.iter()
        .map(|cap| {
            let mut acc: Option<[Interval; 32]> = None;
            if cap.header == cfg.entry() {
                fold(&mut acc, &analysis.entry_env);
            }
            for (pi, blk) in cfg.blocks().iter().enumerate() {
                let p = BlockId(pi as u32);
                if cap.body.binary_search(&p).is_ok() {
                    continue;
                }
                for &e in blk.succs() {
                    if e.to != cap.header {
                        continue;
                    }
                    if let Some(env) = analysis.refine(cfg, p, e, sol.exit[pi].clone()) {
                        fold(&mut acc, &env);
                    }
                }
            }
            acc
        })
        .collect()
}

fn negate(c: Cond) -> Cond {
    match c {
        Cond::Eq => Cond::Ne,
        Cond::Ne => Cond::Eq,
        Cond::Lt => Cond::Ge,
        Cond::Ge => Cond::Lt,
        Cond::Ltu => Cond::Geu,
        Cond::Geu => Cond::Ltu,
    }
}

/// Narrows `env` with the knowledge that `cond(rs1, rs2)` held. Returns
/// `None` when the condition is infeasible (the edge is dead).
fn refine_branch(mut env: Env, cond: Cond, rs1: Reg, rs2: Reg) -> Fact {
    let a = env.regs[rs1.index()];
    let b = env.regs[rs2.index()];
    // SpRel values have no usable numeric bound; leave them alone.
    if matches!(a, Val::SpRel(..)) || matches!(b, Val::SpRel(..)) {
        return Some(env);
    }
    let (x, y) = (a.numeric(), b.numeric());
    // Signed compares are only decidable as unsigned when both sides stay
    // in the non-negative i32 range.
    let signed_ok = x.hi <= i32::MAX as i64 && y.hi <= i32::MAX as i64;
    let (nx, ny) = match cond {
        Cond::Eq => match x.meet(y) {
            None => return None,
            Some(m) => (Some(m), Some(m)),
        },
        Cond::Ne => {
            if x.as_singleton().is_some() && x == y {
                return None;
            }
            (None, None)
        }
        Cond::Ltu | Cond::Lt if cond == Cond::Ltu || signed_ok => {
            if y.hi == 0 {
                return None; // nothing is unsigned-less-than 0
            }
            let nx = x.meet(Interval::new(0, y.hi - 1));
            let ny = y.meet(Interval::new(x.lo + 1, u32::MAX as i64));
            match (nx, ny) {
                (Some(nx), Some(ny)) => (Some(nx), Some(ny)),
                _ => return None,
            }
        }
        Cond::Geu | Cond::Ge if cond == Cond::Geu || signed_ok => {
            let nx = x.meet(Interval::new(y.lo, u32::MAX as i64));
            let ny = y.meet(Interval::new(0, x.hi));
            match (nx, ny) {
                (Some(nx), Some(ny)) => (Some(nx), Some(ny)),
                _ => return None,
            }
        }
        _ => (None, None),
    };
    if let Some(nx) = nx {
        env.regs[rs1.index()] = narrow(a, nx);
    }
    if let Some(ny) = ny {
        env.regs[rs2.index()] = narrow(b, ny);
    }
    Some(env)
}

/// Replaces a value's numeric bound, keeping Entry identity.
fn narrow(v: Val, iv: Interval) -> Val {
    match v {
        Val::Entry(r, _) => Val::Entry(r, iv),
        _ => Val::from_interval(iv),
    }
}

// ---------------------------------------------------------------------
// Interprocedural driver
// ---------------------------------------------------------------------

/// What one stable-function sweep collects.
struct Sweep {
    summary: FnSummary,
    /// Per-callee numeric entry bounds observed at call sites.
    callee_ctx: Vec<(FuncId, [Interval; 32])>,
    /// Written-set contributions `(lo, hi, stored values)`.
    writes: Vec<(i64, i64, Interval)>,
    writes_stack: bool,
    writes_all: bool,
    claims: Vec<MemClaim>,
}

fn entry_env(is_entry: bool, ctx: &[Interval; 32]) -> Env {
    let mut regs = [Val::Top; 32];
    if is_entry {
        // Architectural state: every register starts at zero.
        for r in regs.iter_mut() {
            *r = Val::Num(Interval::exact(0));
        }
    } else {
        for (i, r) in regs.iter_mut().enumerate() {
            *r = Val::Entry(Reg(i as u8), ctx[i]);
        }
        regs[SP.index()] = Val::SpRel(0, 0);
    }
    Env {
        regs,
        frame: BTreeMap::new(),
    }
}

/// Re-walks a solved function, collecting summary/context/written-set
/// facts and (for the final round) per-access claims.
fn sweep_function(cfg: &Cfg, sol: &dataflow::Solution<Fact>, a: &ACtx) -> Sweep {
    let mut sweep = Sweep {
        summary: FnSummary::optimistic(),
        callee_ctx: Vec::new(),
        writes: Vec::new(),
        writes_stack: false,
        writes_all: false,
        claims: Vec::new(),
    };
    let mut exit_env: Option<Env> = None;
    let mut frame_safe = true;
    let mut returns = false;

    for (bi, block) in cfg.blocks().iter().enumerate() {
        let Some(env) = sol.entry[bi].as_ref() else {
            continue; // unreachable within the function
        };
        let mut env = env.clone();
        for pc in block.range() {
            let Some(inst) = a.program.fetch(Addr(pc)) else {
                continue;
            };
            // Pre-instruction observations (exec_inst mutates env).
            let (pre_store_addr, pre_store_val) = match inst {
                Instruction::Store { src, base, offset } => (
                    Some(address_of(&env, base, offset)),
                    env.regs[src.index()].numeric(),
                ),
                _ => (None, Interval::full()),
            };
            let pre_ctx = if matches!(
                inst,
                Instruction::Call { .. } | Instruction::CallIndirect { .. }
            ) {
                let mut ctx = [Interval::full(); 32];
                for (i, c) in ctx.iter_mut().enumerate() {
                    *c = env.regs[i].numeric();
                }
                Some(ctx)
            } else {
                None
            };
            let step = exec_inst(&mut env, Addr(pc), &inst, a);
            match step {
                Step::None => {}
                Step::Mem { access } => {
                    sweep.claims.push(access);
                    if access.store {
                        match access.class {
                            AccessClass::StackAssumed => {
                                sweep.writes_stack = true;
                                // Frame-safe only when the slot is provably
                                // strictly below the entry SP.
                                let below = matches!(
                                    pre_store_addr,
                                    Some(Address::Sp { hi, .. }) if hi < 0
                                );
                                if !below {
                                    frame_safe = false;
                                }
                            }
                            AccessClass::InBounds { lo, hi } | AccessClass::Unproven { lo, hi } => {
                                let clo = lo.max(0);
                                let chi = hi.min(a.mem_len - 1);
                                if chi - clo > a.mem_len / 2 {
                                    sweep.writes_all = true;
                                } else if clo <= chi {
                                    sweep.writes.push((clo, chi, pre_store_val));
                                }
                                // A numeric store that might hit the stack
                                // region breaks frame safety.
                                if chi >= a.data_len && clo < (1 << 20) {
                                    frame_safe = false;
                                }
                            }
                            AccessClass::OutOfBounds { .. } => {}
                        }
                    }
                }
                Step::Call { callees, known } => {
                    if !known {
                        frame_safe = false;
                        sweep.writes_all = true;
                    }
                    for &c in &callees {
                        if !a.summaries[c.index()].frame_safe {
                            frame_safe = false;
                        }
                    }
                    if let Some(ctx) = pre_ctx {
                        for &cal in &callees {
                            sweep.callee_ctx.push((cal, ctx));
                        }
                    }
                }
            }
        }
        if block.terminator() == Terminator::Return {
            returns = true;
            match &mut exit_env {
                None => exit_env = Some(env),
                Some(acc) => {
                    join_env(acc, &env, false);
                }
            }
        }
    }

    sweep.summary.frame_safe = frame_safe;
    if returns {
        if let Some(exit) = exit_env {
            for (r, eff) in sweep.summary.effects.iter_mut().enumerate() {
                *eff = match exit.regs[r] {
                    Val::Entry(s, iv) => {
                        if s.index() == r {
                            Effect::Preserved
                        } else {
                            Effect::Value(iv)
                        }
                    }
                    Val::Num(iv) => Effect::Value(iv),
                    Val::SpRel(0, 0) if r == SP.index() => Effect::Preserved,
                    Val::SpRel(..) | Val::Top => Effect::Top,
                };
            }
        }
    }
    // A function that never returns (halts) keeps the optimistic summary:
    // callers never resume, so Preserved-everything is vacuously sound.
    sweep
}

/// Runs the full interprocedural bounds analysis.
pub fn check(program: &Program) -> BoundsReport {
    let nfuncs = program.functions().len();
    if nfuncs == 0 || program.is_empty() {
        return BoundsReport {
            diags: Vec::new(),
            claims: Vec::new(),
        };
    }
    let cfgs: Vec<Cfg> = (0..nfuncs)
        .map(|i| Cfg::build(program, FuncId(i as u32)))
        .collect();
    let all_caps: Vec<Vec<LoopCap>> = cfgs.iter().map(|c| loop_caps(program, c)).collect();
    let data_len = program.initial_data().len() as i64;
    let mem_len = DEFAULT_MEMORY_WORDS.max(program.initial_data().len()) as i64;
    let minmax = DataMinMax::build(program.initial_data());
    let order = dataflow::call_order(program);
    let entry_f = program.entry_function();

    let mut summaries = vec![FnSummary::optimistic(); nfuncs];
    let mut ctxs: Vec<Option<[Interval; 32]>> = vec![None; nfuncs];
    ctxs[entry_f.index()] = Some([Interval::exact(0); 32]);
    let mut ctx_joins = vec![0u32; nfuncs];
    let mut written = Written::default();

    for round in 0..MAX_ROUNDS {
        let mut changed = false;
        for &f in &order {
            let Some(ctx) = ctxs[f.index()] else { continue };
            let sweep = {
                let a = ACtx {
                    program,
                    mem_len,
                    data_len,
                    summaries: &summaries,
                    written: &written,
                    minmax: &minmax,
                };
                let sol = solve_func(
                    &a,
                    program,
                    &cfgs[f.index()],
                    &all_caps[f.index()],
                    entry_env(f == entry_f, &ctx),
                );
                sweep_function(&cfgs[f.index()], &sol, &a)
            };
            if summaries[f.index()] != sweep.summary {
                summaries[f.index()] = sweep.summary;
                changed = true;
            }
            for (callee, bounds) in sweep.callee_ctx {
                let slot = &mut ctxs[callee.index()];
                match slot {
                    None => {
                        *slot = Some(bounds);
                        changed = true;
                    }
                    Some(cur) => {
                        let widen = ctx_joins[callee.index()] >= WIDEN_AFTER;
                        let mut grew = false;
                        for i in 0..32 {
                            let j = join_interval(cur[i], bounds[i], widen);
                            if j != cur[i] {
                                cur[i] = j;
                                grew = true;
                            }
                        }
                        if grew {
                            ctx_joins[callee.index()] += 1;
                            changed = true;
                        }
                    }
                }
            }
            for (lo, hi, val) in sweep.writes {
                changed |= written.add(lo, hi, val);
            }
            if sweep.writes_stack {
                changed |= written.set_stack();
            }
            if sweep.writes_all {
                changed |= written.set_all();
            }
        }
        if !changed {
            break;
        }
        if round == MAX_ROUNDS - 1 {
            // No convergence: fall back to trivially sound inputs.
            summaries = vec![FnSummary::pessimistic(); nfuncs];
            ctxs = vec![Some([Interval::full(); 32]); nfuncs];
            ctxs[entry_f.index()] = Some([Interval::exact(0); 32]);
            written.set_all();
        }
    }

    // Final sweep: every function (unreached ones under a full context,
    // so their dead code is still classified — conservatively).
    let a = ACtx {
        program,
        mem_len,
        data_len,
        summaries: &summaries,
        written: &written,
        minmax: &minmax,
    };
    let mut diags = Vec::new();
    let mut claims = Vec::new();
    for i in 0..nfuncs {
        let f = FuncId(i as u32);
        let ctx = ctxs[i].unwrap_or([Interval::full(); 32]);
        let sol = solve_func(
            &a,
            program,
            &cfgs[i],
            &all_caps[i],
            entry_env(f == entry_f, &ctx),
        );
        let sweep = sweep_function(&cfgs[i], &sol, &a);
        for c in sweep.claims {
            match c.class {
                AccessClass::OutOfBounds { lo, hi } => diags.push(
                    Diagnostic::new(
                        &codes::OOB_ACCESS,
                        format!(
                            "{} provably out of bounds: address in {} but memory has {} words",
                            dir(c.store),
                            fmt_range(lo, hi),
                            mem_len
                        ),
                    )
                    .at(c.pc),
                ),
                AccessClass::Unproven { lo, hi } => diags.push(
                    Diagnostic::new(
                        &codes::UNPROVEN_ACCESS,
                        format!(
                            "{} not provably in bounds: derived address interval {} \
                             straddles the {}-word memory",
                            dir(c.store),
                            fmt_range(lo, hi),
                            mem_len
                        ),
                    )
                    .at(c.pc),
                ),
                AccessClass::StackAssumed => diags.push(
                    Diagnostic::new(
                        &codes::STACK_ASSUMED,
                        format!(
                            "{} is stack-relative; in bounds under the bounded-stack assumption",
                            dir(c.store)
                        ),
                    )
                    .at(c.pc),
                ),
                AccessClass::InBounds { .. } => {}
            }
            claims.push(c);
        }
    }
    BoundsReport { diags, claims }
}

fn dir(store: bool) -> &'static str {
    if store {
        "store"
    } else {
        "load"
    }
}

fn fmt_range(lo: i64, hi: i64) -> String {
    if lo == hi {
        format!("{lo}")
    } else {
        format!("[{lo}, {hi}]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::Severity;
    use multiscalar_isa::ProgramBuilder;

    fn severities(r: &BoundsReport) -> (usize, usize, usize) {
        let count = |s: Severity| r.diags.iter().filter(|d| d.severity == s).count();
        (
            count(Severity::Error),
            count(Severity::Warning),
            count(Severity::Note),
        )
    }

    /// Adversarial fixture: a store whose address is a compile-time
    /// constant one past the end of memory. Must be a hard error.
    #[test]
    fn provably_oob_store_is_an_error() {
        let mut b = ProgramBuilder::new();
        let main = b.begin_function("main");
        b.load_imm(Reg(1), 1 << 20);
        b.store(Reg(2), Reg(1), 0);
        b.halt();
        b.end_function();
        let p = b.finish(main).unwrap();
        let r = check(&p);
        let (errors, _, _) = severities(&r);
        assert_eq!(errors, 1, "{:?}", r.diags);
        assert!(r.diags[0].render(&p).contains("error[bounds][E050]"));
        assert!(r.claims.iter().any(|c| c.store
            && matches!(c.class, AccessClass::OutOfBounds { lo, hi }
                if lo == 1 << 20 && hi == 1 << 20)));
    }

    /// An address derived from an unknown value via an AND mask is proved
    /// in bounds — no diagnostics at all.
    #[test]
    fn masked_computed_index_is_proved_in_bounds() {
        let mut b = ProgramBuilder::new();
        let main = b.begin_function("main");
        // An indirect call with undeclared targets makes every register
        // unknown — the strongest adversarial starting point.
        b.call_indirect(Reg(0));
        b.op_imm(AluOp::And, Reg(1), Reg(1), 63);
        b.load(Reg(2), Reg(1), 0);
        b.halt();
        b.end_function();
        let p = b.finish(main).unwrap();
        let r = check(&p);
        assert!(r.diags.is_empty(), "{:?}", r.diags);
        assert!(r
            .claims
            .iter()
            .any(|c| !c.store && matches!(c.class, AccessClass::InBounds { lo: 0, hi: 63 })));
    }

    /// An unmasked unknown index is a W050 warning, not an error.
    #[test]
    fn unknown_index_is_an_unproven_warning() {
        let mut b = ProgramBuilder::new();
        let main = b.begin_function("main");
        b.call_indirect(Reg(0)); // all registers unknown from here
        b.store(Reg(2), Reg(1), 0);
        b.halt();
        b.end_function();
        let p = b.finish(main).unwrap();
        let r = check(&p);
        let (errors, warnings, _) = severities(&r);
        assert_eq!((errors, warnings), (0, 1), "{:?}", r.diags);
        assert!(r.diags[0].render(&p).contains("warning[bounds][W050]"));
    }

    /// A branch guard refines the index interval: `if r1 <u 64` proves the
    /// guarded load.
    #[test]
    fn branch_guard_refines_the_index() {
        let mut b = ProgramBuilder::new();
        let main = b.begin_function("main");
        let ok = b.new_label();
        b.call_indirect(Reg(0)); // all registers unknown from here
        b.load_imm(Reg(2), 64);
        b.branch(Cond::Ltu, Reg(1), Reg(2), ok);
        b.halt();
        b.bind(ok);
        b.load(Reg(3), Reg(1), 0);
        b.halt();
        b.end_function();
        let p = b.finish(main).unwrap();
        let r = check(&p);
        assert!(r.diags.is_empty(), "{:?}", r.diags);
        assert!(r
            .claims
            .iter()
            .any(|c| matches!(c.class, AccessClass::InBounds { lo: 0, hi: 63 })));
    }

    /// Stack traffic in a callee is note-level only, the saved register is
    /// proven preserved across the call, and the caller's post-call use of
    /// it stays provably in bounds.
    #[test]
    fn callee_saved_register_survives_and_stack_is_a_note() {
        let mut b = ProgramBuilder::new();
        let f = b.begin_function("f");
        b.op_imm(AluOp::Sub, SP, SP, 2);
        b.store(Reg(5), SP, 0);
        b.load_imm(Reg(5), 9999);
        b.load(Reg(5), SP, 0);
        b.op_imm(AluOp::Add, SP, SP, 2);
        b.ret();
        b.end_function();
        let main = b.begin_function("main");
        b.load_imm(Reg(5), 3);
        b.call_label(f);
        b.store(Reg(0), Reg(5), 0);
        b.halt();
        b.end_function();
        let p = b.finish(main).unwrap();
        let r = check(&p);
        let (errors, warnings, notes) = severities(&r);
        assert_eq!((errors, warnings), (0, 0), "{:?}", r.diags);
        assert!(notes >= 2, "{:?}", r.diags); // the SP-relative save + restore
        assert!(
            r.claims
                .iter()
                .any(|c| c.store && matches!(c.class, AccessClass::InBounds { lo: 3, hi: 3 })),
            "{:?}",
            r.claims
        );
    }
}
