//! Create-mask dataflow analysis.
//!
//! The create mask is the contract between a task and the inter-unit
//! register forwarding hardware (paper §2.1): bit `r` promises "this task
//! may produce a new value for register `r`". A *missing* bit lets a
//! younger task consume a stale value — silent wrong execution — so it is
//! an error. A *spurious* bit makes younger consumers wait for a value the
//! task will provably never produce, stalling until the task retires — a
//! performance lint, reported as a warning.
//!
//! The may-write set is the least fixed point of "registers written by any
//! block reachable from the task entry within the task", computed over the
//! function CFG restricted to the task (see [`crate::reach`]).

use crate::diag::{codes, Diagnostic};
use crate::reach;
use multiscalar_isa::{Addr, Program, Reg};
use multiscalar_taskform::TaskProgram;

/// Checks every task's create mask against its computed may-write set.
pub fn check(program: &Program, tasks: &TaskProgram) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let cfgs = reach::build_cfgs(program, tasks);
    for t in tasks.tasks() {
        let Some(cfg) = cfgs.get(&t.func().0) else {
            continue;
        };
        // An entry that starts no block is diagnosed by the TFG checker;
        // without it there is no sub-graph to analyse.
        let Some(live) = reach::reachable_blocks(cfg, tasks, t) else {
            continue;
        };
        let mut may_write = 0u32;
        for &b in &live {
            for a in cfg.block(b).range() {
                if let Some(rd) = program.fetch(Addr(a)).and_then(|i| i.dest()) {
                    may_write |= 1 << rd.index();
                }
            }
        }
        let mask = t.header().create_mask();
        let missing = may_write & !mask;
        if missing != 0 {
            diags.push(
                Diagnostic::new(
                    &codes::MASK_UNSOUND,
                    format!(
                        "unsound create mask: task may write {} but the mask omits {}",
                        regs(may_write),
                        regs(missing)
                    ),
                )
                .in_task(t.id())
                .at(t.entry()),
            );
        }
        let spurious = mask & !may_write;
        if spurious != 0 {
            diags.push(
                Diagnostic::new(
                    &codes::MASK_OVERWIDE,
                    format!(
                        "over-wide create mask: {} can never be written by this task",
                        regs(spurious)
                    ),
                )
                .in_task(t.id())
                .at(t.entry()),
            );
        }
    }
    diags
}

/// Renders a register bit-set as `r1, r5, r7`.
fn regs(mask: u32) -> String {
    let names: Vec<String> = (0..32)
        .filter(|r| mask & (1 << r) != 0)
        .map(|r| Reg(r as u8).to_string())
        .collect();
    names.join(", ")
}
