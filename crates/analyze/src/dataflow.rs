//! Generic worklist dataflow engine over [`multiscalar_cfg::Cfg`] graphs.
//!
//! An [`Analysis`] supplies the lattice (bottom, join, optional widening)
//! and the block transfer function; [`solve`] runs the classic worklist
//! fixpoint in either [`Direction`]. Forward analyses may additionally
//! refine the fact flowing along a specific out-edge ([`Analysis::refine`]
//! — how the bounds pass learns from branch conditions).
//!
//! Interprocedural analyses (bounds, liveness) are built as a *summary
//! layer* on top: each function is solved intraprocedurally with callee
//! effects applied at `Call` terminators, and the per-function summaries
//! are themselves iterated to a fixpoint (see [`crate::bounds`] and
//! [`crate::liveness`]). [`call_order`] provides the callee-first seed
//! order that makes that outer fixpoint converge in one or two rounds on
//! call DAGs.

use multiscalar_cfg::{Cfg, Edge, Terminator};
use multiscalar_isa::{Addr, FuncId, Instruction, Program};
use std::collections::VecDeque;

pub use multiscalar_cfg::BlockId;

/// Which way facts flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Facts flow from the entry along edges (reaching-style).
    Forward,
    /// Facts flow from function-leaving blocks against edges
    /// (liveness-style).
    Backward,
}

/// One dataflow problem: a lattice plus transfer functions.
pub trait Analysis {
    /// The lattice element attached to each block boundary.
    type Fact: Clone + PartialEq;

    /// Which way this analysis runs.
    fn direction(&self) -> Direction;

    /// The lattice bottom (initial fact everywhere).
    fn bottom(&self) -> Self::Fact;

    /// The boundary fact: at the entry block (forward) or at every block
    /// whose terminator leaves the function for good — `Return`/`Halt` —
    /// (backward). Defaults to bottom.
    fn boundary(&self, _term: Terminator) -> Self::Fact {
        self.bottom()
    }

    /// Joins `from` into `into`, returning `true` if `into` changed.
    /// `joins` counts prior *changing* joins at this block boundary, so an
    /// infinite-ascent lattice can switch to widening past a threshold.
    fn join(&self, into: &mut Self::Fact, from: &Self::Fact, joins: u32) -> bool;

    /// Transfers a fact across a whole block (entry→exit for forward,
    /// exit→entry for backward).
    fn transfer(&self, cfg: &Cfg, block: BlockId, fact: &Self::Fact) -> Self::Fact;

    /// Forward only: refines the exit fact flowing along one specific
    /// out-edge (e.g. applying a branch condition). Identity by default.
    fn refine(&self, _cfg: &Cfg, _from: BlockId, _edge: Edge, fact: Self::Fact) -> Self::Fact {
        fact
    }
}

/// The fixpoint: one fact per block boundary on each side.
#[derive(Debug, Clone)]
pub struct Solution<F> {
    /// Fact at each block's entry (forward: before the transfer; backward:
    /// the transfer's result, e.g. live-in).
    pub entry: Vec<F>,
    /// Fact at each block's exit (forward: the transfer's result;
    /// backward: before the transfer, e.g. live-out).
    pub exit: Vec<F>,
}

/// Runs the worklist fixpoint of `analysis` over `cfg`.
///
/// Blocks are processed in reverse postorder (forward) or its reverse
/// (backward), which makes acyclic regions converge in one sweep;
/// loops iterate until the lattice stabilises (the analysis's `join` is
/// responsible for bounding ascent, via finite height or widening).
pub fn solve<A: Analysis>(analysis: &A, cfg: &Cfg) -> Solution<A::Fact> {
    let n = cfg.blocks().len();
    let mut entry: Vec<A::Fact> = vec![analysis.bottom(); n];
    let mut exit: Vec<A::Fact> = vec![analysis.bottom(); n];
    let mut joins = vec![0u32; n];

    // Priority = position in the chosen block order; the worklist is a
    // deque popped front, seeded in order, so the common case is a clean
    // sweep with localized re-processing.
    let mut order = cfg.reverse_postorder();
    if analysis.direction() == Direction::Backward {
        order.reverse();
    }
    let mut queue: VecDeque<BlockId> = order.iter().copied().collect();
    let mut queued = vec![true; n];

    if analysis.direction() == Direction::Forward {
        entry[cfg.entry().index()] = analysis.boundary(cfg.block(cfg.entry()).terminator());
    } else {
        for (i, b) in cfg.blocks().iter().enumerate() {
            if matches!(b.terminator(), Terminator::Return | Terminator::Halt) {
                exit[i] = analysis.boundary(b.terminator());
            }
        }
    }

    while let Some(b) = queue.pop_front() {
        queued[b.index()] = false;
        match analysis.direction() {
            Direction::Forward => {
                let out = analysis.transfer(cfg, b, &entry[b.index()]);
                exit[b.index()] = out.clone();
                for &e in cfg.block(b).succs() {
                    let f = analysis.refine(cfg, b, e, out.clone());
                    let t = e.to.index();
                    if analysis.join(&mut entry[t], &f, joins[t]) {
                        joins[t] += 1;
                        if !queued[t] {
                            queued[t] = true;
                            queue.push_back(e.to);
                        }
                    }
                }
            }
            Direction::Backward => {
                let inp = analysis.transfer(cfg, b, &exit[b.index()]);
                if entry[b.index()] == inp {
                    continue;
                }
                entry[b.index()] = inp;
                for &p in cfg.block(b).preds() {
                    // Rebuild the predecessor's exit fact as the join over
                    // its successors' entries (plus its boundary, kept by
                    // joining into the existing fact).
                    let t = p.index();
                    let changed = {
                        let src = entry[b.index()].clone();
                        analysis.join(&mut exit[t], &src, joins[t])
                    };
                    if changed {
                        joins[t] += 1;
                        if !queued[t] {
                            queued[t] = true;
                            queue.push_back(p);
                        }
                    }
                }
            }
        }
    }

    // Descending (narrowing) sweeps, forward only: widening may overshoot
    // a bound that edge refinement knows exactly (a loop counter widened
    // to a threshold above its branch limit). Starting from a
    // post-fixpoint, recomputing each entry from scratch as the join of
    // its refined predecessor exits stays above the least fixpoint by
    // monotonicity, so every sweep is individually sound and we can stop
    // after a fixed number.
    if analysis.direction() == Direction::Forward {
        for _ in 0..2 {
            let mut changed = false;
            for &b in &order {
                let mut inp = if b == cfg.entry() {
                    analysis.boundary(cfg.block(cfg.entry()).terminator())
                } else {
                    analysis.bottom()
                };
                for &p in cfg.block(b).preds() {
                    for &e in cfg.block(p).succs() {
                        if e.to == b {
                            let f = analysis.refine(cfg, p, e, exit[p.index()].clone());
                            analysis.join(&mut inp, &f, 0);
                        }
                    }
                }
                let out = analysis.transfer(cfg, b, &inp);
                if entry[b.index()] != inp || exit[b.index()] != out {
                    changed = true;
                    entry[b.index()] = inp;
                    exit[b.index()] = out;
                }
            }
            if !changed {
                break;
            }
        }
    }

    Solution { entry, exit }
}

/// Every function id that appears as a direct call target anywhere in
/// `f`'s body, in deterministic (address) order with duplicates removed.
pub fn direct_callees(program: &Program, f: FuncId) -> Vec<FuncId> {
    let mut out = Vec::new();
    for a in program.function(f).range() {
        let target = match program.fetch(Addr(a)) {
            Some(Instruction::Call { target }) => Some(target),
            // Indirect calls enumerate their declared targets; the IR pass
            // guarantees each is a function entry.
            Some(Instruction::CallIndirect { .. }) => {
                if let Some(ts) = program.indirect_targets(Addr(a)) {
                    for &t in ts {
                        if let Some(fid) = program.function_at(t) {
                            if !out.contains(&fid) {
                                out.push(fid);
                            }
                        }
                    }
                }
                None
            }
            _ => None,
        };
        if let Some(t) = target {
            if let Some(fid) = program.function_at(t) {
                if !out.contains(&fid) {
                    out.push(fid);
                }
            }
        }
    }
    out
}

/// Functions in callee-first (reverse topological) order, with call cycles
/// broken arbitrarily — the interprocedural fixpoint still iterates to
/// convergence, this order just makes the common acyclic case converge in
/// one round.
pub fn call_order(program: &Program) -> Vec<FuncId> {
    let funcs: Vec<FuncId> = (0..program.functions().len() as u32).map(FuncId).collect();
    let mut state = vec![0u8; funcs.len()]; // 0 unvisited, 1 on stack, 2 done
    let mut order = Vec::with_capacity(funcs.len());
    // Iterative postorder DFS over the call graph.
    for &root in &funcs {
        if state[root.0 as usize] != 0 {
            continue;
        }
        let mut stack: Vec<(FuncId, Vec<FuncId>, usize)> =
            vec![(root, direct_callees(program, root), 0)];
        state[root.0 as usize] = 1;
        while let Some(&mut (f, ref callees, ref mut i)) = stack.last_mut() {
            if *i < callees.len() {
                let c = callees[*i];
                *i += 1;
                if state[c.0 as usize] == 0 {
                    state[c.0 as usize] = 1;
                    stack.push((c, direct_callees(program, c), 0));
                }
            } else {
                state[f.0 as usize] = 2;
                order.push(f);
                stack.pop();
            }
        }
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use multiscalar_isa::{Cond, ProgramBuilder, Reg};

    /// A tiny forward constant-ish analysis: tracks whether each block is
    /// reachable (bool lattice, join = or). Checks the engine visits
    /// exactly the reachable region.
    struct Reachable;
    impl Analysis for Reachable {
        type Fact = bool;
        fn direction(&self) -> Direction {
            Direction::Forward
        }
        fn bottom(&self) -> bool {
            false
        }
        fn boundary(&self, _t: Terminator) -> bool {
            true
        }
        fn join(&self, into: &mut bool, from: &bool, _joins: u32) -> bool {
            let new = *into || *from;
            let changed = new != *into;
            *into = new;
            changed
        }
        fn transfer(&self, _cfg: &Cfg, _b: BlockId, fact: &bool) -> bool {
            *fact
        }
    }

    /// Backward "distance to exit is finite" analysis (bool, join = or).
    struct ReachesExit;
    impl Analysis for ReachesExit {
        type Fact = bool;
        fn direction(&self) -> Direction {
            Direction::Backward
        }
        fn bottom(&self) -> bool {
            false
        }
        fn boundary(&self, _t: Terminator) -> bool {
            true
        }
        fn join(&self, into: &mut bool, from: &bool, _joins: u32) -> bool {
            let new = *into || *from;
            let changed = new != *into;
            *into = new;
            changed
        }
        fn transfer(&self, _cfg: &Cfg, _b: BlockId, fact: &bool) -> bool {
            *fact
        }
    }

    fn looped_program() -> multiscalar_isa::Program {
        // main: r1 = 0; loop: r1 += 1; if r1 < 10 goto loop; halt
        let mut b = ProgramBuilder::new();
        let main = b.begin_function("main");
        let top = b.new_label();
        b.load_imm(Reg(1), 0);
        b.bind(top);
        b.op_imm(multiscalar_isa::AluOp::Add, Reg(1), Reg(1), 1);
        b.load_imm(Reg(2), 10);
        b.branch(Cond::Lt, Reg(1), Reg(2), top);
        b.halt();
        b.end_function();
        b.finish(main).unwrap()
    }

    #[test]
    fn forward_fixpoint_reaches_every_block_of_a_loop() {
        let p = looped_program();
        let cfg = Cfg::build(&p, p.entry_function());
        let sol = solve(&Reachable, &cfg);
        assert!(sol.entry.iter().all(|&r| r), "{:?}", sol.entry);
    }

    #[test]
    fn backward_fixpoint_propagates_from_halt() {
        let p = looped_program();
        let cfg = Cfg::build(&p, p.entry_function());
        let sol = solve(&ReachesExit, &cfg);
        assert!(sol.entry.iter().all(|&r| r), "{:?}", sol.entry);
    }

    #[test]
    fn call_order_is_callee_first() {
        let mut b = ProgramBuilder::new();
        let leaf = b.begin_function("leaf");
        b.ret();
        b.end_function();
        let mid = b.begin_function("mid");
        b.call_label(leaf);
        b.ret();
        b.end_function();
        let main = b.begin_function("main");
        b.call_label(mid);
        b.halt();
        b.end_function();
        let p = b.finish(main).unwrap();
        let order = call_order(&p);
        let pos = |name: &str| {
            let (fid, _) = p.function_by_name(name).unwrap();
            order.iter().position(|&f| f == fid).unwrap()
        };
        assert!(pos("leaf") < pos("mid"));
        assert!(pos("mid") < pos("main"));
        assert_eq!(order.len(), 3);
    }
}
