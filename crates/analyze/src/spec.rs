//! Speculation-quality pass: per-task static exit classification and a
//! squash-proneness score.
//!
//! The paper's sequencer walks the TFG by *predicting* one exit per task;
//! every misprediction squashes the whole downstream task window. A task
//! is cheap to speculate past exactly when its exits are statically
//! determined — an always-taken transfer with one possible destination —
//! and expensive when they depend on runtime data. This pass classifies
//! every exit of every task:
//!
//! * **static** — the only edge control can take from the exit's source:
//!   unconditional jumps and direct calls, implicit fall-throughs,
//!   same-register always-taken branches, halts, and indirect transfers
//!   with a declared single-entry target table;
//! * **bounded-loop** — the latch branch of a counted loop whose trip
//!   count [`TripBound`] is statically bounded: the exit direction
//!   alternates with a period the bound caps, a pattern simple history
//!   predictors capture;
//! * **data-branch** — a conditional branch on runtime data, the paper's
//!   squash-prone case;
//! * **return** — target predicted by the return-address stack;
//! * **indirect** — register-indirect transfer, with or without a
//!   declared target table;
//! * **dead** — statically infeasible edge (never taken, so never
//!   squashes; `tfg_check` warns about it separately).
//!
//! Each class carries a squash-proneness penalty; a task's score is the
//! sum over its exits, and `harness lint --speculation` renders the
//! ranked report. The **static** classifications double as claims for
//! the fuzz soundness oracle: a claimed exit source must never be
//! observed transferring anywhere but the claimed target in any concrete
//! execution.

use multiscalar_cfg::{loop_bounds, Cfg, Terminator, TripBound};
use multiscalar_isa::{Addr, Cond, ExitKind, Instruction, Program};
use multiscalar_taskform::{ExitSpec, TaskId, TaskProgram};
use std::collections::HashMap;

/// Classification of one task exit (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExitClass {
    /// The only edge control can take from the source; `target` is `None`
    /// for halts (no successor at all).
    Static {
        /// The unique destination, when execution continues.
        target: Option<Addr>,
    },
    /// Latch branch of a counted loop: alternates with period ≤ `trips`.
    BoundedLoop {
        /// The loop's trip-count bound.
        trips: u64,
    },
    /// Conditional branch on runtime data.
    DataBranch,
    /// Return through the return-address stack.
    Return,
    /// Indirect transfer with a declared target table of this size.
    IndirectKnown {
        /// Number of declared targets.
        targets: usize,
    },
    /// Indirect transfer with no declared target set.
    IndirectUnknown,
    /// Statically infeasible edge; can never be taken.
    Dead,
}

impl ExitClass {
    /// The squash-proneness penalty this class contributes.
    pub fn penalty(self) -> u32 {
        match self {
            ExitClass::Static { .. } | ExitClass::Dead => 0,
            ExitClass::BoundedLoop { .. } => 5,
            ExitClass::Return => 10,
            ExitClass::IndirectKnown { .. } => 25,
            ExitClass::DataBranch => 30,
            ExitClass::IndirectUnknown => 40,
        }
    }

    fn describe(self) -> String {
        match self {
            ExitClass::Static { target: Some(t) } => format!("static -> {t}"),
            ExitClass::Static { target: None } => "static (halt)".into(),
            ExitClass::BoundedLoop { trips } => format!("bounded loop (<= {trips} trips)"),
            ExitClass::DataBranch => "data-dependent branch".into(),
            ExitClass::Return => "return via RAS".into(),
            ExitClass::IndirectKnown { targets } => format!("indirect ({targets} known targets)"),
            ExitClass::IndirectUnknown => "indirect (unknown target set)".into(),
            ExitClass::Dead => "dead (infeasible)".into(),
        }
    }
}

/// One classified exit of a task.
#[derive(Debug, Clone, Copy)]
pub struct ExitQuality {
    /// Address of the instruction realising the exit.
    pub source: Addr,
    /// The header's exit specifier kind.
    pub kind: ExitKind,
    /// The derived class.
    pub class: ExitClass,
}

/// Per-task speculation quality.
#[derive(Debug, Clone)]
pub struct TaskSpec {
    /// The task.
    pub task: TaskId,
    /// The task's entry address.
    pub entry: Addr,
    /// Sum of exit penalties; 0 means every exit is statically determined.
    pub score: u32,
    /// All exits, in header order.
    pub exits: Vec<ExitQuality>,
}

/// A soundness claim: whenever the instruction at `source` (inside
/// `task`) transfers control, it transfers to `target`. The fuzz oracle
/// checks every concrete execution against these.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StaticExitClaim {
    /// The claiming task.
    pub task: TaskId,
    /// The exit's source instruction.
    pub source: Addr,
    /// The unique destination.
    pub target: Addr,
}

/// The full pass result.
#[derive(Debug, Clone)]
pub struct SpecReport {
    /// One entry per task, in task-id order.
    pub tasks: Vec<TaskSpec>,
    /// All static-exit claims, in (task, source) order.
    pub claims: Vec<StaticExitClaim>,
}

/// Classifies every exit of every task and derives static-exit claims.
pub fn analyze(program: &Program, tasks: &TaskProgram) -> SpecReport {
    // Trip bounds, keyed by the latch branch's address, per function.
    let mut latch_bounds: HashMap<u32, TripBound> = HashMap::new();
    for (f, _) in program.functions().iter().enumerate() {
        let cfg = Cfg::build(program, multiscalar_isa::FuncId(f as u32));
        for lb in loop_bounds(program, &cfg) {
            for &latch in &lb.natural.latches {
                let b = cfg.block(latch);
                if b.terminator() == Terminator::CondBranch {
                    latch_bounds.insert(b.last().index() as u32, lb.bound);
                }
            }
        }
    }

    let mut out = SpecReport {
        tasks: Vec::with_capacity(tasks.static_task_count()),
        claims: Vec::new(),
    };
    for t in tasks.tasks() {
        let mut exits = Vec::with_capacity(t.header().num_exits());
        let mut score = 0u32;
        for exit in t.header().exits() {
            let class = classify(program, &latch_bounds, exit);
            score += class.penalty();
            if let ExitClass::Static { target: Some(tgt) } = class {
                out.claims.push(StaticExitClaim {
                    task: t.id(),
                    source: exit.source,
                    target: tgt,
                });
            }
            exits.push(ExitQuality {
                source: exit.source,
                kind: exit.kind,
                class,
            });
        }
        out.tasks.push(TaskSpec {
            task: t.id(),
            entry: t.entry(),
            score,
            exits,
        });
    }
    out.claims.sort_by_key(|c| (c.task.0, c.source));
    out.claims.dedup();
    out
}

fn classify(
    program: &Program,
    latch_bounds: &HashMap<u32, TripBound>,
    exit: &ExitSpec,
) -> ExitClass {
    // A proven unique destination only yields `Static` when it is the
    // destination *this* exit names; a header exit naming any other
    // target can never be taken.
    let static_to = |dest: Addr| {
        if exit.target.is_none_or(|t| t == dest) {
            ExitClass::Static { target: Some(dest) }
        } else {
            ExitClass::Dead
        }
    };
    match program.fetch(exit.source) {
        Some(Instruction::Jump { target }) | Some(Instruction::Call { target }) => {
            static_to(target)
        }
        Some(Instruction::Branch {
            cond,
            rs1,
            rs2,
            target,
        }) => {
            if rs1 == rs2 {
                // Same-register compare: the direction is a constant.
                let taken = matches!(cond, Cond::Eq | Cond::Ge | Cond::Geu);
                static_to(if taken { target } else { exit.source.next() })
            } else {
                match latch_bounds.get(&(exit.source.index() as u32)) {
                    Some(TripBound::AtMost(n)) => ExitClass::BoundedLoop { trips: *n },
                    _ => ExitClass::DataBranch,
                }
            }
        }
        Some(Instruction::Return) => ExitClass::Return,
        Some(Instruction::JumpIndirect { .. }) | Some(Instruction::CallIndirect { .. }) => {
            match program.indirect_targets(exit.source) {
                Some([only]) => static_to(*only),
                Some(ts) => ExitClass::IndirectKnown { targets: ts.len() },
                None => ExitClass::IndirectUnknown,
            }
        }
        Some(Instruction::Halt) => ExitClass::Static { target: None },
        // Implicit fall-through exit: a straight-line last instruction of
        // a block whose successor starts another task.
        Some(_) => static_to(exit.source.next()),
        // Out-of-range source — the IR pass errors on this; claim nothing.
        None => ExitClass::DataBranch,
    }
}

/// How many ranked tasks the report prints per target.
const REPORT_TOP: usize = 8;

/// Renders one target's ranked squash-proneness report.
pub fn render_report(name: &str, program: &Program, report: &SpecReport) -> String {
    let mut out = format!("# speculation: {name}\n");
    let total_exits: usize = report.tasks.iter().map(|t| t.exits.len()).sum();
    let static_exits: usize = report
        .tasks
        .iter()
        .flat_map(|t| &t.exits)
        .filter(|e| matches!(e.class, ExitClass::Static { .. }))
        .count();
    out.push_str(&format!(
        "{} tasks, {} exits ({} static), {} static-exit claims\n",
        report.tasks.len(),
        total_exits,
        static_exits,
        report.claims.len()
    ));

    let mut ranked: Vec<&TaskSpec> = report.tasks.iter().filter(|t| t.score > 0).collect();
    ranked.sort_by_key(|t| (std::cmp::Reverse(t.score), t.task.0));
    if ranked.is_empty() {
        out.push_str("every exit is statically determined\n\n");
        return out;
    }
    for (i, t) in ranked.iter().take(REPORT_TOP).enumerate() {
        let func = program
            .function_at(t.entry)
            .map(|f| program.function(f).name().to_string())
            .unwrap_or_else(|| "?".into());
        out.push_str(&format!(
            "rank {}: task {} entry {} fn `{}` score {}\n",
            i + 1,
            t.task.0,
            t.entry,
            func,
            t.score
        ));
        for e in &t.exits {
            if e.class.penalty() == 0 {
                continue;
            }
            out.push_str(&format!(
                "  - {} {}: {} (+{})\n",
                e.source,
                e.kind,
                e.class.describe(),
                e.class.penalty()
            ));
        }
    }
    if ranked.len() > REPORT_TOP {
        out.push_str(&format!(
            "... and {} more tasks with nonzero scores\n",
            ranked.len() - REPORT_TOP
        ));
    }
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use multiscalar_isa::{AluOp, ProgramBuilder, Reg};
    use multiscalar_taskform::TaskFormer;

    fn run(p: &Program) -> SpecReport {
        let tasks = TaskFormer::default().form(p).unwrap();
        analyze(p, &tasks)
    }

    fn class_at(report: &SpecReport, pc: Addr) -> Vec<ExitClass> {
        report
            .tasks
            .iter()
            .flat_map(|t| &t.exits)
            .filter(|e| e.source == pc)
            .map(|e| e.class)
            .collect()
    }

    #[test]
    fn jumps_calls_and_halts_are_static_and_claimed() {
        let mut b = ProgramBuilder::new();
        let f = b.begin_function("f");
        b.op_imm(AluOp::Add, Reg(1), Reg(1), 1);
        b.ret();
        b.end_function();
        let main = b.begin_function("main");
        b.call_label(f);
        b.halt();
        b.end_function();
        let p = b.finish(main).unwrap();
        let r = run(&p);
        // The call at main's entry is static with the callee as target.
        let call_pc = p.function(p.entry_function()).entry();
        assert_eq!(
            class_at(&r, call_pc),
            vec![ExitClass::Static {
                target: Some(p.function(multiscalar_isa::FuncId(0)).entry())
            }]
        );
        assert!(r.claims.iter().any(|c| c.source == call_pc));
        // Every claim's class is Static by construction; none may be a
        // return or data branch.
        for c in &r.claims {
            assert!(matches!(
                class_at(&r, c.source)[0],
                ExitClass::Static { .. }
            ));
        }
    }

    #[test]
    fn data_dependent_branch_is_not_claimed_static() {
        // Adversarial fixture: `while (mem[i] != limit)` — the latch
        // branch compares against a loaded value, so no trip bound and no
        // static claim may exist for it.
        let mut b = ProgramBuilder::new();
        let main = b.begin_function("main");
        b.load_imm(Reg(1), 0);
        let top = b.here_label();
        b.op_imm(AluOp::Add, Reg(1), Reg(1), 1);
        b.load(Reg(2), Reg(1), 0);
        b.branch(Cond::Lt, Reg(1), Reg(2), top);
        b.halt();
        b.end_function();
        let p = b.finish(main).unwrap();
        let r = run(&p);
        let branch_pc = Addr(3);
        assert!(
            class_at(&r, branch_pc)
                .iter()
                .all(|c| *c == ExitClass::DataBranch),
            "{r:?}"
        );
        assert!(
            r.claims.iter().all(|c| c.source != branch_pc),
            "a data-dependent exit must never be claimed static: {:?}",
            r.claims
        );
        // And the owning task is squash-prone.
        let owner = r
            .tasks
            .iter()
            .find(|t| t.exits.iter().any(|e| e.source == branch_pc))
            .unwrap();
        assert!(owner.score >= ExitClass::DataBranch.penalty());
    }

    #[test]
    fn counted_loop_latch_scores_below_a_data_dependent_one() {
        let counted = {
            let mut b = ProgramBuilder::new();
            let main = b.begin_function("main");
            b.load_imm(Reg(1), 0);
            b.load_imm(Reg(2), 10);
            let top = b.here_label();
            b.op_imm(AluOp::Add, Reg(1), Reg(1), 1);
            b.branch(Cond::Lt, Reg(1), Reg(2), top);
            b.halt();
            b.end_function();
            b.finish(main).unwrap()
        };
        let r = run(&counted);
        let classes = class_at(&r, Addr(3));
        assert!(
            classes
                .iter()
                .all(|c| matches!(c, ExitClass::BoundedLoop { .. })),
            "{classes:?}"
        );
        let bounded_worst = r.tasks.iter().map(|t| t.score).max().unwrap();
        assert!(bounded_worst <= ExitClass::BoundedLoop { trips: 0 }.penalty() * 2);
        assert!(bounded_worst < ExitClass::DataBranch.penalty());
    }

    #[test]
    fn single_target_indirect_is_static_multi_target_is_not() {
        let mut b = ProgramBuilder::new();
        let f = b.begin_function("f");
        b.ret();
        b.end_function();
        let g = b.begin_function("g");
        b.ret();
        b.end_function();
        let main = b.begin_function("main");
        b.call_indirect_with_targets(Reg(3), &[f]);
        b.call_indirect_with_targets(Reg(4), &[f, g]);
        b.call_indirect(Reg(5));
        b.halt();
        b.end_function();
        let p = b.finish(main).unwrap();
        let r = run(&p);
        let base = p.function(p.entry_function()).entry();
        assert!(matches!(
            class_at(&r, base)[0],
            ExitClass::Static { target: Some(_) }
        ));
        assert!(r.claims.iter().any(|c| c.source == base));
        assert_eq!(
            class_at(&r, base.next())[0],
            ExitClass::IndirectKnown { targets: 2 }
        );
        assert_eq!(
            class_at(&r, Addr(base.index() as u32 + 2))[0],
            ExitClass::IndirectUnknown
        );
    }

    #[test]
    fn report_renders_ranked_tasks() {
        let mut b = ProgramBuilder::new();
        let main = b.begin_function("main");
        b.load_imm(Reg(1), 0);
        let top = b.here_label();
        b.op_imm(AluOp::Add, Reg(1), Reg(1), 1);
        b.load(Reg(2), Reg(1), 0);
        b.branch(Cond::Lt, Reg(1), Reg(2), top);
        b.halt();
        b.end_function();
        let p = b.finish(main).unwrap();
        let r = run(&p);
        let text = render_report("fixture", &p, &r);
        assert!(text.contains("# speculation: fixture"), "{text}");
        assert!(text.contains("data-dependent branch"), "{text}");
        assert!(text.contains("score"), "{text}");
        // Deterministic.
        assert_eq!(text, render_report("fixture", &p, &r));
    }
}
