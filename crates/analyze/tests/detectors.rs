//! Each analyzer detector must fire on a crafted bad input — and stay
//! silent on known-good programs, including every built-in workload and a
//! seeded sweep of synthetic programs.

use multiscalar_analyze::{analyze, has_errors, Pass, Severity};
use multiscalar_isa::{Addr, AluOp, Cond, FuncId, Program, ProgramBuilder, Reg};
use multiscalar_taskform::{
    ExitSpec, Task, TaskFlowGraph, TaskFormConfig, TaskFormer, TaskHeader, TaskId, TaskProgram,
};
use multiscalar_workloads::synthetic::{random_program, SyntheticConfig};
use multiscalar_workloads::{Spec92, WorkloadParams};

fn form(p: &Program) -> TaskProgram {
    TaskFormer::default().form(p).unwrap()
}

fn run(p: &Program, tp: &TaskProgram) -> Vec<multiscalar_analyze::Diagnostic> {
    analyze(p, tp, &TaskFlowGraph::build(tp))
}

/// A small program exercising calls, loops and branches that must produce
/// zero diagnostics end to end.
fn known_good() -> Program {
    let mut b = ProgramBuilder::new();
    let callee = b.begin_function("callee");
    b.op_imm(AluOp::Add, Reg(5), Reg(5), 1);
    b.ret();
    b.end_function();
    let main = b.begin_function("main");
    let top = b.here_label();
    b.op_imm(AluOp::Add, Reg(1), Reg(1), 1);
    b.call_label(callee);
    b.branch(Cond::Lt, Reg(1), Reg(2), top);
    b.halt();
    b.end_function();
    b.finish(main).unwrap()
}

#[test]
fn known_good_program_produces_zero_diagnostics() {
    let p = known_good();
    let tp = form(&p);
    let diags = run(&p, &tp);
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn ir_validator_fires_on_cross_function_branch() {
    let mut b = ProgramBuilder::new();
    let main = b.begin_function("main");
    let elsewhere = b.new_label();
    b.branch(Cond::Eq, Reg(1), Reg(2), elsewhere);
    b.halt();
    b.end_function();
    b.begin_function("other");
    b.nop();
    b.bind(elsewhere);
    b.halt();
    b.end_function();
    let p = b.finish(main).unwrap();
    let diags = multiscalar_analyze::analyze_program(&p);
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!(diags[0].pass, Pass::Ir);
    assert_eq!(diags[0].severity, Severity::Error);
    assert!(diags[0].message.contains("different function"));
}

#[test]
fn dead_exit_fires_on_infeasible_branch_side() {
    // `beq r0, r0` always loops back to the task entry; with one block per
    // task the fall-through side is a separate exit that can never be
    // taken.
    let mut b = ProgramBuilder::new();
    let main = b.begin_function("main");
    let top = b.here_label();
    b.op_imm(AluOp::Add, Reg(1), Reg(1), 1);
    b.branch(Cond::Eq, Reg(0), Reg(0), top);
    b.halt();
    b.end_function();
    let p = b.finish(main).unwrap();
    let tp = TaskFormer::new(TaskFormConfig {
        max_instrs: 2,
        max_blocks: 1,
    })
    .form(&p)
    .unwrap();
    let diags = run(&p, &tp);
    let dead: Vec<_> = diags
        .iter()
        .filter(|d| d.message.starts_with("dead exit"))
        .collect();
    assert_eq!(dead.len(), 1, "{diags:?}");
    assert_eq!(dead[0].severity, Severity::Warning);
    assert_eq!(dead[0].span, Some(Addr(1)));
    // The halt task is now unreachable too — but no errors anywhere.
    assert!(!has_errors(&diags), "{diags:?}");
}

#[test]
fn dead_exit_fires_on_unreachable_source_block() {
    // Raw fixture: a task claiming a block its entry can never reach.
    //
    //   pc0  li r1, 1      \  task 0 (reachable block)
    //   pc1  j pc3         /
    //   pc2  halt          -- task 0 (orphan block: jump skips it)
    //   pc3  halt          -- task 1
    let mut b = ProgramBuilder::new();
    let main = b.begin_function("main");
    let end = b.new_label();
    b.load_imm(Reg(1), 1);
    b.jump(end);
    b.halt();
    b.bind(end);
    b.halt();
    b.end_function();
    let p = b.finish(main).unwrap();

    let t0 = Task::from_raw_parts(
        TaskId(0),
        FuncId(0),
        Addr(0),
        TaskHeader::with_create_mask(
            vec![
                ExitSpec {
                    source: Addr(1),
                    kind: multiscalar_isa::ExitKind::Branch,
                    target: Some(Addr(3)),
                    return_addr: None,
                },
                ExitSpec {
                    source: Addr(2),
                    kind: multiscalar_isa::ExitKind::Halt,
                    target: None,
                    return_addr: None,
                },
            ],
            1 << 1,
        ),
        vec![Addr(0), Addr(2)],
        3,
    );
    let t1 = Task::from_raw_parts(
        TaskId(1),
        FuncId(0),
        Addr(3),
        TaskHeader::new(vec![ExitSpec {
            source: Addr(3),
            kind: multiscalar_isa::ExitKind::Halt,
            target: None,
            return_addr: None,
        }]),
        vec![Addr(3)],
        1,
    );
    let tp = TaskProgram::from_raw_parts(
        vec![t0, t1],
        vec![TaskId(0), TaskId(0), TaskId(0), TaskId(1)],
    );
    let diags = run(&p, &tp);
    // The fixture's `li r1, 1` is also a (correct) dead-write note; the
    // dead exit must be the only warning-or-worse finding.
    let bad: Vec<_> = diags
        .iter()
        .filter(|d| d.severity >= Severity::Warning)
        .collect();
    assert_eq!(bad.len(), 1, "{diags:?}");
    assert_eq!(bad[0].severity, Severity::Warning);
    assert_eq!(bad[0].span, Some(Addr(2)));
    assert!(bad[0].message.contains("source block is unreachable"));
}

#[test]
fn unreachable_task_fires_on_uncalled_function() {
    let mut b = ProgramBuilder::new();
    b.begin_function("orphan");
    b.op_imm(AluOp::Add, Reg(3), Reg(3), 1);
    b.ret();
    b.end_function();
    let main = b.begin_function("main");
    b.load_imm(Reg(1), 1);
    b.halt();
    b.end_function();
    let p = b.finish(main).unwrap();
    let tp = form(&p);
    let diags = run(&p, &tp);
    let unreachable: Vec<_> = diags
        .iter()
        .filter(|d| d.message.contains("unreachable from the program entry"))
        .collect();
    assert_eq!(unreachable.len(), 1, "{diags:?}");
    assert_eq!(unreachable[0].severity, Severity::Warning);
    assert_eq!(
        unreachable[0].task,
        tp.task_entered_at(Addr(0))
            .map(|_| tp.task_at(Addr(0)).unwrap())
    );
    assert!(!has_errors(&diags));
}

#[test]
fn zero_exit_task_is_an_error() {
    let p = known_good();
    let mut tp = form(&p);
    let victim = tp.task_at(p.entry_point()).unwrap();
    tp.tasks_mut()[victim.index()].set_header(TaskHeader::new(vec![]));
    let diags = run(&p, &tp);
    let zero: Vec<_> = diags
        .iter()
        .filter(|d| d.message == "task has no exits")
        .collect();
    assert_eq!(zero.len(), 1, "{diags:?}");
    assert_eq!(zero[0].severity, Severity::Error);
    assert_eq!(zero[0].task, Some(victim));
}

#[test]
fn unsound_create_mask_is_an_error() {
    let p = known_good();
    let mut tp = form(&p);
    // Clear one genuinely-written bit out of some task's mask.
    let (victim, header) = tp
        .tasks()
        .iter()
        .find_map(|t| {
            let m = t.header().create_mask();
            (m != 0).then(|| {
                let low = m & m.wrapping_neg();
                (
                    t.id(),
                    TaskHeader::with_create_mask(t.header().exits().to_vec(), m & !low),
                )
            })
        })
        .expect("some task writes a register");
    tp.tasks_mut()[victim.index()].set_header(header);
    let diags = run(&p, &tp);
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!(diags[0].severity, Severity::Error);
    assert_eq!(diags[0].pass, Pass::Mask);
    assert_eq!(diags[0].task, Some(victim));
    assert!(diags[0].message.contains("unsound create mask"));
}

#[test]
fn over_wide_create_mask_is_a_warning() {
    let p = known_good();
    let mut tp = form(&p);
    let victim = tp.task_at(p.entry_point()).unwrap();
    let t = &tp.tasks()[victim.index()];
    // r29 is written nowhere in the program.
    let header = TaskHeader::with_create_mask(
        t.header().exits().to_vec(),
        t.header().create_mask() | (1 << 29),
    );
    tp.tasks_mut()[victim.index()].set_header(header);
    let diags = run(&p, &tp);
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!(diags[0].severity, Severity::Warning);
    assert_eq!(diags[0].pass, Pass::Mask);
    assert!(diags[0].message.contains("over-wide create mask"));
    assert!(diags[0].message.contains("r29"));
}

#[test]
fn duplicate_task_entry_is_an_error() {
    let mut b = ProgramBuilder::new();
    let main = b.begin_function("main");
    b.load_imm(Reg(1), 1);
    b.halt();
    b.end_function();
    let p = b.finish(main).unwrap();
    let header = || {
        TaskHeader::with_create_mask(
            vec![ExitSpec {
                source: Addr(1),
                kind: multiscalar_isa::ExitKind::Halt,
                target: None,
                return_addr: None,
            }],
            1 << 1,
        )
    };
    let mk = |id| Task::from_raw_parts(TaskId(id), FuncId(0), Addr(0), header(), vec![Addr(0)], 2);
    let tp = TaskProgram::from_raw_parts(vec![mk(0), mk(1)], vec![TaskId(0), TaskId(0)]);
    let diags = run(&p, &tp);
    assert!(
        diags
            .iter()
            .any(|d| d.severity == Severity::Error && d.message.contains("duplicate task entry")),
        "{diags:?}"
    );
}

#[test]
fn all_builtin_workloads_lint_clean() {
    // Notes are allowed (stack-assumed accesses report as N050); anything
    // warning-or-worse fails `--deny warnings` in CI and fails here.
    for spec in Spec92::ALL {
        let w = spec.build(&WorkloadParams::small(42));
        let tp = form(&w.program);
        let diags = run(&w.program, &tp);
        let bad: Vec<_> = diags
            .iter()
            .filter(|d| d.severity >= Severity::Warning)
            .collect();
        assert!(bad.is_empty(), "{}: {bad:#?}", w.name);
    }
}

#[test]
fn synthetic_sweep_lints_clean() {
    // Random programs legitimately contain dead writes (note-level);
    // warnings or errors would fail `--deny warnings` and fail here.
    for seed in 0..24u64 {
        let p = random_program(seed, &SyntheticConfig::default());
        let tp = form(&p);
        let diags = run(&p, &tp);
        let bad: Vec<_> = diags
            .iter()
            .filter(|d| d.severity >= Severity::Warning)
            .collect();
        assert!(bad.is_empty(), "seed {seed}: {bad:#?}");
    }
}
