//! Dominator computation using the Cooper–Harvey–Kennedy iterative
//! algorithm over reverse postorder.

use crate::graph::{BlockId, Cfg};

/// The dominator tree of a [`Cfg`].
///
/// Unreachable blocks have no immediate dominator and are dominated by
/// nothing (queries on them return `false`/`None`).
///
/// # Example
///
/// ```
/// use multiscalar_isa::{Cond, ProgramBuilder, Reg};
/// use multiscalar_cfg::Cfg;
/// let mut b = ProgramBuilder::new();
/// let main = b.begin_function("main");
/// let j = b.new_label();
/// b.branch(Cond::Eq, Reg(0), Reg(1), j);
/// b.load_imm(Reg(2), 1);
/// b.bind(j);
/// b.halt();
/// b.end_function();
/// let p = b.finish(main)?;
/// let cfg = Cfg::build(&p, p.entry_function());
/// let dom = cfg.dominators();
/// // The entry dominates everything.
/// for (i, _) in cfg.blocks().iter().enumerate() {
///     assert!(dom.dominates(cfg.entry(), multiscalar_cfg::BlockId(i as u32)));
/// }
/// # Ok::<(), multiscalar_isa::BuildError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Dominators {
    /// `idom[b]` = immediate dominator of `b`; entry maps to itself;
    /// unreachable blocks map to `None`.
    idom: Vec<Option<BlockId>>,
    entry: BlockId,
}

impl Dominators {
    /// Computes dominators for `cfg`.
    pub fn compute(cfg: &Cfg) -> Dominators {
        let n = cfg.blocks().len();
        let rpo = cfg.reverse_postorder();
        // Position of each block in RPO; unreachable blocks keep usize::MAX.
        let mut pos = vec![usize::MAX; n];
        // Only the reachable prefix participates.
        let reachable = cfg.reachable_count();
        for (i, &b) in rpo.iter().take(reachable).enumerate() {
            pos[b.index()] = i;
        }

        let mut idom: Vec<Option<BlockId>> = vec![None; n];
        idom[cfg.entry().index()] = Some(cfg.entry());

        let intersect =
            |idom: &[Option<BlockId>], pos: &[usize], mut a: BlockId, mut b: BlockId| {
                while a != b {
                    while pos[a.index()] > pos[b.index()] {
                        a = idom[a.index()].expect("processed block has idom");
                    }
                    while pos[b.index()] > pos[a.index()] {
                        b = idom[b.index()].expect("processed block has idom");
                    }
                }
                a
            };

        let mut changed = true;
        while changed {
            changed = false;
            for &b in rpo.iter().take(reachable) {
                if b == cfg.entry() {
                    continue;
                }
                let mut new_idom: Option<BlockId> = None;
                for &p in cfg.block(b).preds() {
                    if pos[p.index()] == usize::MAX || idom[p.index()].is_none() {
                        continue; // unreachable or not yet processed
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => intersect(&idom, &pos, cur, p),
                    });
                }
                if new_idom.is_some() && idom[b.index()] != new_idom {
                    idom[b.index()] = new_idom;
                    changed = true;
                }
            }
        }

        Dominators {
            idom,
            entry: cfg.entry(),
        }
    }

    /// The immediate dominator of `b` (the entry's idom is itself).
    /// `None` for unreachable blocks.
    pub fn idom(&self, b: BlockId) -> Option<BlockId> {
        if b == self.entry {
            return Some(self.entry);
        }
        self.idom[b.index()]
    }

    /// `true` if `a` dominates `b` (reflexive: every block dominates itself,
    /// provided it is reachable).
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        if self.idom[b.index()].is_none() {
            return false; // b unreachable
        }
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            if cur == self.entry {
                return false;
            }
            match self.idom[cur.index()] {
                Some(d) => cur = d,
                None => return false,
            }
        }
    }

    /// `true` if `b` is reachable from the entry.
    pub fn is_reachable(&self, b: BlockId) -> bool {
        self.idom[b.index()].is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Cfg;
    use multiscalar_isa::{Cond, Program, ProgramBuilder, Reg};

    fn diamond_with_loop() -> (Program, Cfg) {
        // bb0: branch -> bb2 (then) or bb1 (else)
        // bb1: jump join
        // bb2: fall into join
        // join(bb3): loop back to itself conditionally, then halt block bb4
        let mut b = ProgramBuilder::new();
        let main = b.begin_function("main");
        let then_ = b.new_label();
        let join = b.new_label();
        b.branch(Cond::Eq, Reg(1), Reg(0), then_);
        b.load_imm(Reg(2), 2);
        b.jump(join);
        b.bind(then_);
        b.load_imm(Reg(2), 1);
        b.bind(join);
        let top = b.here_label();
        b.op_imm(multiscalar_isa::AluOp::Add, Reg(3), Reg(3), 1);
        b.branch(Cond::Lt, Reg(3), Reg(4), top);
        b.halt();
        b.end_function();
        let p = b.finish(main).unwrap();
        let cfg = Cfg::build(&p, p.entry_function());
        (p, cfg)
    }

    #[test]
    fn entry_dominates_all_reachable() {
        let (_p, cfg) = diamond_with_loop();
        let dom = cfg.dominators();
        for i in 0..cfg.blocks().len() {
            assert!(dom.dominates(cfg.entry(), BlockId(i as u32)));
        }
    }

    #[test]
    fn branch_arms_do_not_dominate_join() {
        let (_p, cfg) = diamond_with_loop();
        let dom = cfg.dominators();
        // Find the join block: it has 2+ predecessors and a conditional
        // branch terminator looping to itself.
        let join = cfg
            .blocks()
            .iter()
            .enumerate()
            .find(|(i, b)| b.preds().len() >= 2 && b.succs().iter().any(|e| e.to.index() == *i))
            .map(|(i, _)| BlockId(i as u32))
            .expect("join block");
        for &p in cfg.block(join).preds() {
            if p != join && p != cfg.entry() {
                assert!(
                    !dom.dominates(p, join),
                    "{p} should not dominate join {join}"
                );
            }
        }
        // But entry does, and join dominates itself.
        assert!(dom.dominates(join, join));
    }

    #[test]
    fn idom_chain_reaches_entry() {
        let (_p, cfg) = diamond_with_loop();
        let dom = cfg.dominators();
        for i in 0..cfg.blocks().len() {
            let mut cur = BlockId(i as u32);
            let mut fuel = cfg.blocks().len() + 1;
            while cur != cfg.entry() {
                cur = dom.idom(cur).expect("reachable");
                fuel -= 1;
                assert!(fuel > 0, "idom chain must terminate");
            }
        }
    }

    #[test]
    fn unreachable_block_handled() {
        let mut b = ProgramBuilder::new();
        let main = b.begin_function("main");
        b.halt();
        // unreachable tail
        b.load_imm(Reg(1), 1);
        b.halt();
        b.end_function();
        let p = b.finish(main).unwrap();
        let cfg = Cfg::build(&p, p.entry_function());
        let dom = cfg.dominators();
        assert!(dom.is_reachable(cfg.entry()));
        let unreachable: Vec<_> = (0..cfg.blocks().len())
            .map(|i| BlockId(i as u32))
            .filter(|&b| !dom.is_reachable(b))
            .collect();
        assert!(!unreachable.is_empty());
        for u in unreachable {
            assert!(!dom.dominates(cfg.entry(), u));
            assert_eq!(dom.idom(u), None);
        }
    }
}
