//! Natural-loop detection from back edges.

use crate::graph::{BlockId, Cfg};
use std::collections::BTreeSet;

/// A natural loop: a back edge `latch -> header` where `header` dominates
/// `latch`, together with all blocks that can reach the latch without
/// passing through the header.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NaturalLoop {
    /// The loop header (single entry).
    pub header: BlockId,
    /// Latches: blocks with a back edge to the header.
    pub latches: Vec<BlockId>,
    /// All blocks in the loop, including header and latches, sorted.
    pub body: Vec<BlockId>,
}

impl NaturalLoop {
    /// `true` if `b` is part of the loop.
    pub fn contains(&self, b: BlockId) -> bool {
        self.body.binary_search(&b).is_ok()
    }

    /// Number of blocks in the loop.
    pub fn len(&self) -> usize {
        self.body.len()
    }

    /// A loop always has at least its header.
    pub fn is_empty(&self) -> bool {
        false
    }
}

/// All natural loops of a function, plus per-block loop depth.
#[derive(Debug, Clone)]
pub struct LoopInfo {
    loops: Vec<NaturalLoop>,
    depth: Vec<u32>,
}

impl LoopInfo {
    /// Detects loops in `cfg`. Loops sharing a header are merged (as in the
    /// classic natural-loop formulation).
    pub fn compute(cfg: &Cfg) -> LoopInfo {
        let dom = cfg.dominators();
        let n = cfg.blocks().len();

        // Group back edges by header.
        let mut latches_by_header: Vec<Vec<BlockId>> = vec![Vec::new(); n];
        for (i, blk) in cfg.blocks().iter().enumerate() {
            let from = BlockId(i as u32);
            for e in blk.succs() {
                if dom.is_reachable(from) && dom.dominates(e.to, from) {
                    latches_by_header[e.to.index()].push(from);
                }
            }
        }

        let mut loops = Vec::new();
        for (h, latches) in latches_by_header.into_iter().enumerate() {
            if latches.is_empty() {
                continue;
            }
            let header = BlockId(h as u32);
            // Body: header + everything reaching a latch backwards without
            // crossing the header.
            let mut body: BTreeSet<BlockId> = BTreeSet::new();
            body.insert(header);
            let mut stack: Vec<BlockId> = latches.clone();
            while let Some(b) = stack.pop() {
                if body.insert(b) {
                    for &p in cfg.block(b).preds() {
                        stack.push(p);
                    }
                }
            }
            loops.push(NaturalLoop {
                header,
                latches,
                body: body.into_iter().collect(),
            });
        }

        // Depth: number of loops containing each block.
        let mut depth = vec![0u32; n];
        for l in &loops {
            for &b in &l.body {
                depth[b.index()] += 1;
            }
        }

        LoopInfo { loops, depth }
    }

    /// The detected loops, in header order.
    pub fn loops(&self) -> &[NaturalLoop] {
        &self.loops
    }

    /// Consumes self, returning the loops.
    pub fn into_loops(self) -> Vec<NaturalLoop> {
        self.loops
    }

    /// Nesting depth of `b` (0 = not in any loop).
    pub fn depth(&self, b: BlockId) -> u32 {
        self.depth[b.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Cfg;
    use multiscalar_isa::{AluOp, Cond, ProgramBuilder, Reg};

    fn nested_loops_cfg() -> Cfg {
        // for i { for j { body } }
        let mut b = ProgramBuilder::new();
        let main = b.begin_function("main");
        b.load_imm(Reg(1), 0); // i
        let outer = b.here_label();
        b.load_imm(Reg(2), 0); // j
        let inner = b.here_label();
        b.op_imm(AluOp::Add, Reg(2), Reg(2), 1);
        b.branch(Cond::Lt, Reg(2), Reg(4), inner);
        b.op_imm(AluOp::Add, Reg(1), Reg(1), 1);
        b.branch(Cond::Lt, Reg(1), Reg(3), outer);
        b.halt();
        b.end_function();
        let p = b.finish(main).unwrap();
        Cfg::build(&p, p.entry_function())
    }

    #[test]
    fn finds_both_nested_loops() {
        let cfg = nested_loops_cfg();
        let info = LoopInfo::compute(&cfg);
        assert_eq!(info.loops().len(), 2);
        // One loop's body strictly contains the other's.
        let (a, b) = (&info.loops()[0], &info.loops()[1]);
        let (inner, outer) = if a.len() < b.len() { (a, b) } else { (b, a) };
        for &blk in &inner.body {
            assert!(outer.contains(blk), "inner loop nested in outer");
        }
        assert!(outer.len() > inner.len());
    }

    #[test]
    fn depth_reflects_nesting() {
        let cfg = nested_loops_cfg();
        let info = LoopInfo::compute(&cfg);
        let max_depth = (0..cfg.blocks().len())
            .map(|i| info.depth(BlockId(i as u32)))
            .max()
            .unwrap();
        assert_eq!(max_depth, 2);
        // The entry block (before both loops) has depth 0.
        assert_eq!(info.depth(cfg.entry()), 0);
    }

    #[test]
    fn loop_free_function_has_no_loops() {
        let mut b = ProgramBuilder::new();
        let main = b.begin_function("main");
        let l = b.new_label();
        b.branch(Cond::Eq, Reg(0), Reg(0), l);
        b.load_imm(Reg(1), 1);
        b.bind(l);
        b.halt();
        b.end_function();
        let p = b.finish(main).unwrap();
        let cfg = Cfg::build(&p, p.entry_function());
        assert!(cfg.natural_loops().is_empty());
    }

    #[test]
    fn loop_body_is_sorted_and_contains_header_and_latches() {
        let cfg = nested_loops_cfg();
        for l in cfg.natural_loops() {
            assert!(l.contains(l.header));
            for &latch in &l.latches {
                assert!(l.contains(latch));
            }
            let mut sorted = l.body.clone();
            sorted.sort();
            assert_eq!(sorted, l.body);
            assert!(!l.is_empty());
        }
    }
}
