//! Syntactic trip-count bounds for natural loops.
//!
//! A [`TripBound`] is a sound upper bound on how many times a loop header
//! can execute per entry from outside the loop. The derivation is purely
//! syntactic — it recognises the counted-loop idiom the code generators
//! emit (`ctr += step` in the latch, back edge taken while
//! `ctr < limit`) — and answers [`TripBound::Unknown`] for anything it
//! cannot prove, so consumers may rely on `AtMost` unconditionally.
//!
//! Two passes consume these bounds: the memory-bounds pass caps how far a
//! loop-incremented register can climb (recovering pointer-increment
//! loops that pure interval analysis widens to ⊤), and the
//! speculation-quality pass treats short bounded loops as low squash
//! risk.

use crate::graph::{BlockId, Cfg, EdgeKind, Terminator};
use crate::loops::NaturalLoop;
use multiscalar_isa::{Addr, Cond, Instruction, Program, Reg};

/// Upper bound on header executions per external loop entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TripBound {
    /// The header runs at most this many times each time the loop is
    /// entered (so the back edge is traversed at most `n - 1` times).
    AtMost(u64),
    /// No syntactic bound could be derived.
    Unknown,
}

/// One loop together with its derived bound.
#[derive(Debug, Clone)]
pub struct LoopBound {
    /// The underlying natural loop.
    pub natural: NaturalLoop,
    /// The derived trip bound.
    pub bound: TripBound,
    /// The counter register and its per-traversal step, when the counted
    /// idiom was recognised (the register behind an `AtMost` bound).
    pub counter: Option<(Reg, u32)>,
}

/// Derives a [`LoopBound`] for every natural loop of `cfg`, in header
/// order.
pub fn loop_bounds(program: &Program, cfg: &Cfg) -> Vec<LoopBound> {
    cfg.natural_loops()
        .iter()
        .map(|l| {
            let (bound, counter) = derive(program, cfg, l);
            LoopBound {
                natural: l.clone(),
                bound,
                counter,
            }
        })
        .collect()
}

fn derive(program: &Program, cfg: &Cfg, l: &NaturalLoop) -> (TripBound, Option<(Reg, u32)>) {
    // One latch only: merged multi-latch loops have no single exit test.
    let [latch] = l.latches[..] else {
        return (TripBound::Unknown, None);
    };
    let lb = cfg.block(latch);
    if lb.terminator() != Terminator::CondBranch {
        return (TripBound::Unknown, None);
    }
    let Some(Instruction::Branch { cond, rs1, rs2, .. }) = program.fetch(lb.last()) else {
        return (TripBound::Unknown, None);
    };
    // The back edge must be the taken side of `ctr < lim`.
    let back_is_taken = lb
        .succs()
        .iter()
        .any(|e| e.to == l.header && e.kind == EdgeKind::Taken);
    if !back_is_taken || !matches!(cond, Cond::Lt | Cond::Ltu) {
        return (TripBound::Unknown, None);
    }
    let (ctr, lim) = (rs1, rs2);

    // A call anywhere in the loop may write any register.
    for &b in &l.body {
        for pc in cfg.block(b).range() {
            if matches!(
                program.fetch(Addr(pc)),
                Some(Instruction::Call { .. } | Instruction::CallIndirect { .. })
            ) {
                return (TripBound::Unknown, None);
            }
        }
    }

    // The counter: written exactly once in the loop, by `ctr += s` in the
    // latch block (which every back-edge traversal executes in full). Any
    // write inside a nested inner loop would run more than once per
    // traversal, but the latch of `l` is never inside a proper inner loop.
    let mut step: Option<u32> = None;
    for &b in &l.body {
        for pc in cfg.block(b).range() {
            let Some(inst) = program.fetch(Addr(pc)) else {
                continue;
            };
            if writes(&inst) != Some(ctr) {
                continue;
            }
            let one_step = matches!(
                inst,
                Instruction::OpImm {
                    op: multiscalar_isa::AluOp::Add,
                    rd,
                    rs1,
                    imm,
                } if rd == ctr && rs1 == ctr && imm >= 1
            );
            if !one_step || b != latch || step.is_some() {
                return (TripBound::Unknown, None);
            }
            if let Instruction::OpImm { imm, .. } = inst {
                step = Some(imm as u32);
            }
        }
    }
    let Some(step) = step else {
        return (TripBound::Unknown, None);
    };

    // The limit: a constant at the branch. Either the latch block itself
    // establishes it (last write before the branch is a `LoadImm`), or it
    // is loop-invariant and every out-of-loop header predecessor ends
    // with the same `LoadImm`.
    let lim_c = match last_write_in_block(program, cfg, latch, lim) {
        Some(Instruction::LoadImm { imm, .. }) => Some(imm),
        Some(_) => None,
        None => {
            if l.body.iter().any(|&b| block_writes(program, cfg, b, lim)) {
                None
            } else {
                constant_from_entry_preds(program, cfg, l, lim)
            }
        }
    };
    let Some(lim_c) = lim_c else {
        return (TripBound::Unknown, None);
    };

    // The counter's initial value, when every out-of-loop header
    // predecessor pins it with a `LoadImm` (tightens the signed bound).
    let init = constant_from_entry_preds(program, cfg, l, ctr);

    let s = step as u64;
    let back_edges = match cond {
        // Unsigned: ctr >= 0 always, and after every traversal
        // `ctr < lim` held, so at most lim/s traversals (+1 for a
        // possible first-increment wrap).
        Cond::Ltu => {
            let c = lim_c as u32 as u64;
            c / s + 2
        }
        Cond::Lt => {
            let c = lim_c as i64;
            if c < 0 {
                return (TripBound::Unknown, None);
            }
            let floor = match init {
                Some(i) => i as i64,
                // Signed counter can start as low as i32::MIN.
                None => i32::MIN as i64,
            };
            if floor >= c {
                1 // the branch can still pass once before the increment ran
            } else {
                ((c - floor) as u64) / s + 2
            }
        }
        _ => unreachable!(),
    };
    (TripBound::AtMost(back_edges + 1), Some((ctr, step)))
}

/// The destination register of `inst`, if it writes one.
fn writes(inst: &Instruction) -> Option<Reg> {
    match *inst {
        Instruction::LoadImm { rd, .. }
        | Instruction::Op { rd, .. }
        | Instruction::OpImm { rd, .. }
        | Instruction::Load { rd, .. } => Some(rd),
        _ => None,
    }
}

fn block_writes(program: &Program, cfg: &Cfg, b: BlockId, r: Reg) -> bool {
    cfg.block(b)
        .range()
        .any(|pc| matches!(program.fetch(Addr(pc)), Some(i) if writes(&i) == Some(r)))
}

/// The last instruction in `b` writing `r`, if any.
fn last_write_in_block(program: &Program, cfg: &Cfg, b: BlockId, r: Reg) -> Option<Instruction> {
    cfg.block(b)
        .range()
        .rev()
        .find_map(|pc| program.fetch(Addr(pc)).filter(|i| writes(i) == Some(r)))
}

/// If every out-of-loop predecessor of the header ends by loading the same
/// constant into `r`, that constant.
fn constant_from_entry_preds(program: &Program, cfg: &Cfg, l: &NaturalLoop, r: Reg) -> Option<i32> {
    let mut val: Option<i32> = None;
    let preds = cfg.block(l.header).preds();
    let outside: Vec<BlockId> = preds.iter().copied().filter(|&p| !l.contains(p)).collect();
    if outside.is_empty() {
        return None;
    }
    for p in outside {
        match last_write_in_block(program, cfg, p, r) {
            Some(Instruction::LoadImm { imm, .. }) => match val {
                None => val = Some(imm),
                Some(v) if v == imm => {}
                Some(_) => return None,
            },
            _ => return None,
        }
    }
    val
}

#[cfg(test)]
mod tests {
    use super::*;
    use multiscalar_isa::{AluOp, ProgramBuilder};

    fn bounds_of(p: &Program) -> Vec<LoopBound> {
        let cfg = Cfg::build(p, p.entry_function());
        loop_bounds(p, &cfg)
    }

    #[test]
    fn counted_loop_gets_a_tight_bound() {
        // for (i = 0; i < 10; i++) {}
        let mut b = ProgramBuilder::new();
        let main = b.begin_function("main");
        b.load_imm(Reg(1), 0);
        b.load_imm(Reg(2), 10);
        let top = b.here_label();
        b.op_imm(AluOp::Add, Reg(1), Reg(1), 1);
        b.branch(Cond::Lt, Reg(1), Reg(2), top);
        b.halt();
        b.end_function();
        let p = b.finish(main).unwrap();
        let bounds = bounds_of(&p);
        assert_eq!(bounds.len(), 1);
        let TripBound::AtMost(n) = bounds[0].bound else {
            panic!("expected a bound: {bounds:?}");
        };
        // The loop runs 10 iterations; the bound may be loose but must
        // cover it and stay in the same ballpark.
        assert!((10..=16).contains(&n), "bound {n}");
        assert_eq!(bounds[0].counter, Some((Reg(1), 1)));
    }

    #[test]
    fn data_dependent_exit_is_unknown() {
        // while (mem[i] != 0) { i++ } — limit comes from a load.
        let mut b = ProgramBuilder::new();
        let main = b.begin_function("main");
        b.load_imm(Reg(1), 0);
        let top = b.here_label();
        b.op_imm(AluOp::Add, Reg(1), Reg(1), 1);
        b.load(Reg(2), Reg(1), 0);
        b.branch(Cond::Lt, Reg(1), Reg(2), top);
        b.halt();
        b.end_function();
        let p = b.finish(main).unwrap();
        let bounds = bounds_of(&p);
        assert_eq!(bounds.len(), 1);
        assert_eq!(bounds[0].bound, TripBound::Unknown);
    }

    #[test]
    fn loop_containing_a_call_is_unknown() {
        let mut b = ProgramBuilder::new();
        let f = b.begin_function("f");
        b.ret();
        b.end_function();
        let main = b.begin_function("main");
        b.load_imm(Reg(1), 0);
        b.load_imm(Reg(2), 10);
        let top = b.here_label();
        b.call_label(f);
        b.op_imm(AluOp::Add, Reg(1), Reg(1), 1);
        b.branch(Cond::Lt, Reg(1), Reg(2), top);
        b.halt();
        b.end_function();
        let p = b.finish(main).unwrap();
        let bounds = bounds_of(&p);
        assert_eq!(bounds.len(), 1);
        assert_eq!(bounds[0].bound, TripBound::Unknown);
    }

    #[test]
    fn unsigned_bound_needs_no_init() {
        // Counter never initialised in the entry block; Ltu still bounds.
        let mut b = ProgramBuilder::new();
        let main = b.begin_function("main");
        b.load_imm(Reg(2), 8);
        b.load(Reg(1), Reg(0), 0); // unknown start
        let top = b.here_label();
        b.op_imm(AluOp::Add, Reg(1), Reg(1), 1);
        b.branch(Cond::Ltu, Reg(1), Reg(2), top);
        b.halt();
        b.end_function();
        let p = b.finish(main).unwrap();
        let bounds = bounds_of(&p);
        assert_eq!(bounds.len(), 1);
        let TripBound::AtMost(n) = bounds[0].bound else {
            panic!("expected a bound: {bounds:?}");
        };
        assert!(n <= 16, "bound {n}");
    }
}
