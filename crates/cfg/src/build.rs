//! CFG construction from a function's instruction range.

use crate::graph::{BasicBlock, BlockId, Cfg, Edge, EdgeKind, Terminator};
use multiscalar_isa::{Addr, ControlFlow, FuncId, Program};
use std::collections::{BTreeSet, HashMap};

/// Builds the control-flow graph for `func` in `program`.
///
/// Leaders are: the function entry, every in-function target of a direct
/// branch/jump, every declared target of a resolved indirect jump, and the
/// instruction following any control instruction. Edges to targets outside
/// the function (which would indicate a malformed program — the builder
/// only emits intra-function labels for branches) are ignored.
///
/// # Panics
///
/// Panics if `func` is out of range for `program`.
pub fn build_cfg(program: &Program, func: FuncId) -> Cfg {
    build_cfg_with_leaders(program, func, &[])
}

/// [`build_cfg`] with extra block leaders injected before block layout.
///
/// Addresses in `extra_leaders` that fall inside `func`'s range start a
/// basic block even when no control flow demands it; out-of-range
/// addresses are ignored. The assembler frontend uses this to make
/// `.task`-declared entries fall on block boundaries, which downstream
/// task formation requires of every task entry.
pub fn build_cfg_with_leaders(program: &Program, func: FuncId, extra_leaders: &[Addr]) -> Cfg {
    let f = program.function(func);
    let range = f.range();
    let in_func = |a: Addr| range.contains(&a.0);

    // 1. Collect leaders.
    let mut leaders: BTreeSet<u32> = BTreeSet::new();
    leaders.insert(range.start);
    for &a in extra_leaders {
        if in_func(a) {
            leaders.insert(a.0);
        }
    }
    for pc in range.clone() {
        let inst = program.fetch(Addr(pc)).expect("address in function range");
        let Some(cf) = inst.control_flow() else {
            continue;
        };
        // Instruction after any control instruction starts a block.
        if pc + 1 < range.end {
            leaders.insert(pc + 1);
        }
        match cf {
            ControlFlow::CondBranch(t) | ControlFlow::Jump(t) if in_func(t) => {
                leaders.insert(t.0);
            }
            ControlFlow::IndirectJump => {
                if let Some(ts) = program.indirect_targets(Addr(pc)) {
                    for &t in ts {
                        if in_func(t) {
                            leaders.insert(t.0);
                        }
                    }
                }
            }
            _ => {}
        }
    }

    // 2. Create blocks between consecutive leaders.
    let leader_vec: Vec<u32> = leaders.iter().copied().collect();
    let mut blocks = Vec::with_capacity(leader_vec.len());
    let mut by_start = HashMap::with_capacity(leader_vec.len());
    for (i, &start) in leader_vec.iter().enumerate() {
        let end_limit = leader_vec.get(i + 1).copied().unwrap_or(range.end);
        // The block ends at the first control instruction, or at the next
        // leader / function end.
        let mut end = end_limit;
        for pc in start..end_limit {
            if program.fetch(Addr(pc)).expect("in range").is_control() {
                end = pc + 1;
                break;
            }
        }
        by_start.insert(start, BlockId(blocks.len() as u32));
        blocks.push(BasicBlock {
            range: start..end,
            terminator: Terminator::FallThrough,
            succs: Vec::new(),
            preds: Vec::new(),
        });
    }

    // 3. Terminators and successor edges.
    let n = blocks.len();
    let ranges: Vec<std::ops::Range<u32>> = blocks.iter().map(|b| b.range.clone()).collect();
    for (i, range) in ranges.iter().enumerate() {
        let last = Addr(range.end - 1);
        let next_addr = range.end;
        let inst = program.fetch(last).expect("in range");
        let mut succs = Vec::new();
        let push = |succs: &mut Vec<Edge>, target: u32, kind: EdgeKind| {
            if let Some(&to) = by_start.get(&target) {
                succs.push(Edge { to, kind });
            }
        };
        let term = match inst.control_flow() {
            None => {
                // Pure fall-through into the next leader.
                push(&mut succs, next_addr, EdgeKind::FallThrough);
                Terminator::FallThrough
            }
            Some(ControlFlow::CondBranch(t)) => {
                if in_func(t) {
                    push(&mut succs, t.0, EdgeKind::Taken);
                }
                push(&mut succs, next_addr, EdgeKind::FallThrough);
                Terminator::CondBranch
            }
            Some(ControlFlow::Jump(t)) => {
                if in_func(t) {
                    push(&mut succs, t.0, EdgeKind::Jump);
                }
                Terminator::Jump
            }
            Some(ControlFlow::IndirectJump) => {
                let resolved = match program.indirect_targets(last) {
                    Some(ts) => {
                        for &t in ts {
                            if in_func(t) {
                                push(&mut succs, t.0, EdgeKind::IndirectCase);
                            }
                        }
                        true
                    }
                    None => false,
                };
                Terminator::IndirectJump { resolved }
            }
            Some(ControlFlow::Call(t)) => {
                // Control returns to the next instruction.
                push(&mut succs, next_addr, EdgeKind::CallReturn);
                Terminator::Call { target: t }
            }
            Some(ControlFlow::IndirectCall) => {
                push(&mut succs, next_addr, EdgeKind::CallReturn);
                Terminator::IndirectCall
            }
            Some(ControlFlow::Return) => Terminator::Return,
            Some(ControlFlow::Halt) => Terminator::Halt,
        };
        blocks[i].terminator = term;
        blocks[i].succs = succs;
    }

    // 4. Predecessors.
    for i in 0..n {
        let succs: Vec<BlockId> = blocks[i].succs.iter().map(|e| e.to).collect();
        for to in succs {
            let from = BlockId(i as u32);
            if !blocks[to.index()].preds.contains(&from) {
                blocks[to.index()].preds.push(from);
            }
        }
    }

    let entry = by_start[&range.start];
    Cfg {
        func,
        blocks,
        entry,
        by_start,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use multiscalar_isa::{AluOp, Cond, ProgramBuilder, Reg};

    #[test]
    fn straight_line_is_one_block() {
        let mut b = ProgramBuilder::new();
        let main = b.begin_function("main");
        b.load_imm(Reg(1), 1);
        b.op_imm(AluOp::Add, Reg(1), Reg(1), 1);
        b.halt();
        b.end_function();
        let p = b.finish(main).unwrap();
        let cfg = build_cfg(&p, p.entry_function());
        assert_eq!(cfg.blocks().len(), 1);
        assert_eq!(cfg.block(cfg.entry()).len(), 3);
        assert_eq!(cfg.block(cfg.entry()).terminator(), Terminator::Halt);
    }

    #[test]
    fn self_loop_block() {
        let mut b = ProgramBuilder::new();
        let main = b.begin_function("main");
        let top = b.here_label();
        b.op_imm(AluOp::Add, Reg(1), Reg(1), 1);
        b.branch(Cond::Lt, Reg(1), Reg(2), top);
        b.halt();
        b.end_function();
        let p = b.finish(main).unwrap();
        let cfg = build_cfg(&p, p.entry_function());
        assert_eq!(cfg.blocks().len(), 2);
        let loop_block = cfg.entry();
        assert!(cfg
            .block(loop_block)
            .succs()
            .iter()
            .any(|e| e.to == loop_block));
    }

    #[test]
    fn every_instruction_belongs_to_exactly_one_block() {
        let mut b = ProgramBuilder::new();
        let main = b.begin_function("main");
        let l1 = b.new_label();
        let l2 = b.new_label();
        b.branch(Cond::Eq, Reg(0), Reg(1), l1);
        b.load_imm(Reg(2), 1);
        b.branch(Cond::Ne, Reg(0), Reg(1), l2);
        b.bind(l1);
        b.load_imm(Reg(2), 2);
        b.bind(l2);
        b.halt();
        b.end_function();
        let p = b.finish(main).unwrap();
        let cfg = build_cfg(&p, p.entry_function());
        let f = p.function(p.entry_function());
        let mut covered = vec![0u8; f.len()];
        for blk in cfg.blocks() {
            for a in blk.range() {
                covered[(a - f.range().start) as usize] += 1;
            }
        }
        assert!(
            covered.iter().all(|&c| c == 1),
            "blocks must tile the function: {covered:?}"
        );
    }

    #[test]
    fn unresolved_indirect_jump_has_no_succs() {
        let mut b = ProgramBuilder::new();
        let main = b.begin_function("main");
        b.load_imm(Reg(1), 2);
        b.jump_indirect(Reg(1)); // no metadata
        b.halt();
        b.end_function();
        let p = b.finish(main).unwrap();
        let cfg = build_cfg(&p, p.entry_function());
        let entry = cfg.block(cfg.entry());
        assert_eq!(
            entry.terminator(),
            Terminator::IndirectJump { resolved: false }
        );
        assert!(entry.succs().is_empty());
    }
}
