#![warn(missing_docs)]

//! Control-flow graphs over [`multiscalar_isa`] programs, plus the classic
//! analyses the task former needs: reverse postorder, dominators and natural
//! loops.
//!
//! The paper's task former runs inside the Wisconsin Multiscalar compiler;
//! this crate is the corresponding analysis substrate for our reproduction.
//! A [`Cfg`] is built per function. Intra-function edges cover fall-through,
//! taken branches, jumps, resolved indirect-jump cases (from builder
//! metadata) and the return-continuation edge after a call. Calls and
//! returns themselves leave the function and are represented by terminator
//! kinds rather than edges.
//!
//! # Example
//!
//! ```
//! use multiscalar_isa::{Cond, ProgramBuilder, Reg};
//! use multiscalar_cfg::Cfg;
//!
//! let mut b = ProgramBuilder::new();
//! let main = b.begin_function("main");
//! let done = b.new_label();
//! let top = b.here_label();
//! b.op_imm(multiscalar_isa::AluOp::Add, Reg(1), Reg(1), 1);
//! b.branch(Cond::Ge, Reg(1), Reg(2), done);
//! b.jump(top);
//! b.bind(done);
//! b.halt();
//! b.end_function();
//! let p = b.finish(main)?;
//!
//! let cfg = Cfg::build(&p, p.entry_function());
//! assert_eq!(cfg.blocks().len(), 3);
//! let loops = cfg.natural_loops();
//! assert_eq!(loops.len(), 1, "one natural loop");
//! # Ok::<(), multiscalar_isa::BuildError>(())
//! ```

mod build;
mod dom;
mod graph;
mod loops;
pub mod trip;

pub use build::{build_cfg, build_cfg_with_leaders};
pub use dom::Dominators;
pub use graph::{BasicBlock, BlockId, Cfg, Edge, EdgeKind, Terminator};
pub use loops::{LoopInfo, NaturalLoop};
pub use trip::{loop_bounds, LoopBound, TripBound};
