//! The [`Cfg`] data structure: basic blocks, edges and traversals.

use multiscalar_isa::{Addr, FuncId, Program};
use std::collections::HashMap;
use std::fmt;
use std::ops::Range;

/// Index of a basic block within one function's [`Cfg`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BlockId(pub u32);

impl BlockId {
    /// The raw index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bb{}", self.0)
    }
}

/// How an intra-function edge is taken.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EdgeKind {
    /// Sequential fall-through (including a not-taken conditional branch).
    FallThrough,
    /// Taken side of a conditional branch.
    Taken,
    /// Unconditional direct jump.
    Jump,
    /// One resolved case of an indirect jump (from builder metadata).
    IndirectCase,
    /// Continuation after a call returns (the edge from a call block to the
    /// block at the return address).
    CallReturn,
}

/// A directed intra-function edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Edge {
    /// Destination block.
    pub to: BlockId,
    /// Why control flows along this edge.
    pub kind: EdgeKind,
}

/// Classification of the instruction that ends a basic block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Terminator {
    /// Conditional branch: taken target plus fall-through.
    CondBranch,
    /// Unconditional direct jump.
    Jump,
    /// Indirect jump. `resolved` is `true` if builder metadata lists its
    /// possible targets (they appear as [`EdgeKind::IndirectCase`] edges).
    IndirectJump {
        /// Whether the builder declared the jump's possible targets.
        resolved: bool,
    },
    /// Direct call (control leaves the function and returns to the next
    /// instruction).
    Call {
        /// The callee's entry address.
        target: Addr,
    },
    /// Indirect call.
    IndirectCall,
    /// Return from the function.
    Return,
    /// Program halt.
    Halt,
    /// The block ends because the next instruction is a leader (pure
    /// fall-through, no control instruction).
    FallThrough,
}

impl Terminator {
    /// `true` if control can leave the function at this terminator (call,
    /// indirect call, return or halt).
    pub fn leaves_function(self) -> bool {
        matches!(
            self,
            Terminator::Call { .. }
                | Terminator::IndirectCall
                | Terminator::Return
                | Terminator::Halt
        )
    }
}

/// A maximal straight-line sequence of instructions with a single entry at
/// its first instruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BasicBlock {
    pub(crate) range: Range<u32>,
    pub(crate) terminator: Terminator,
    pub(crate) succs: Vec<Edge>,
    pub(crate) preds: Vec<BlockId>,
}

impl BasicBlock {
    /// First instruction address.
    pub fn start(&self) -> Addr {
        Addr(self.range.start)
    }

    /// Address one past the last instruction.
    pub fn end(&self) -> Addr {
        Addr(self.range.end)
    }

    /// Address of the last (terminating) instruction.
    pub fn last(&self) -> Addr {
        Addr(self.range.end - 1)
    }

    /// Half-open instruction range.
    pub fn range(&self) -> Range<u32> {
        self.range.clone()
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        (self.range.end - self.range.start) as usize
    }

    /// `true` if the block is empty (never happens in a built CFG).
    pub fn is_empty(&self) -> bool {
        self.range.is_empty()
    }

    /// The block's terminator classification.
    pub fn terminator(&self) -> Terminator {
        self.terminator
    }

    /// Outgoing intra-function edges.
    pub fn succs(&self) -> &[Edge] {
        &self.succs
    }

    /// Predecessor blocks.
    pub fn preds(&self) -> &[BlockId] {
        &self.preds
    }
}

/// The control-flow graph of a single function.
#[derive(Debug, Clone)]
pub struct Cfg {
    pub(crate) func: FuncId,
    pub(crate) blocks: Vec<BasicBlock>,
    pub(crate) entry: BlockId,
    pub(crate) by_start: HashMap<u32, BlockId>,
}

impl Cfg {
    /// Builds the CFG for `func` in `program`.
    ///
    /// Equivalent to [`crate::build_cfg`].
    pub fn build(program: &Program, func: FuncId) -> Cfg {
        crate::build::build_cfg(program, func)
    }

    /// The function this graph describes.
    pub fn func(&self) -> FuncId {
        self.func
    }

    /// All blocks, ordered by start address.
    pub fn blocks(&self) -> &[BasicBlock] {
        &self.blocks
    }

    /// The block with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn block(&self, id: BlockId) -> &BasicBlock {
        &self.blocks[id.index()]
    }

    /// The entry block (function entry).
    pub fn entry(&self) -> BlockId {
        self.entry
    }

    /// Looks up a block by its start address.
    pub fn block_at(&self, addr: Addr) -> Option<BlockId> {
        self.by_start.get(&addr.0).copied()
    }

    /// The block *containing* `addr` (not necessarily starting there).
    pub fn block_containing(&self, addr: Addr) -> Option<BlockId> {
        // Blocks are sorted by range start.
        let idx = self
            .blocks
            .partition_point(|b| b.range.start <= addr.0)
            .checked_sub(1)?;
        self.blocks[idx]
            .range
            .contains(&addr.0)
            .then_some(BlockId(idx as u32))
    }

    /// Block ids in reverse postorder from the entry. Unreachable blocks are
    /// appended afterwards in address order.
    pub fn reverse_postorder(&self) -> Vec<BlockId> {
        let n = self.blocks.len();
        let mut visited = vec![false; n];
        let mut post = Vec::with_capacity(n);
        // Iterative DFS with an explicit stack of (block, next-succ-index).
        let mut stack: Vec<(BlockId, usize)> = vec![(self.entry, 0)];
        visited[self.entry.index()] = true;
        while let Some(&mut (b, ref mut i)) = stack.last_mut() {
            let succs = &self.blocks[b.index()].succs;
            if *i < succs.len() {
                let next = succs[*i].to;
                *i += 1;
                if !visited[next.index()] {
                    visited[next.index()] = true;
                    stack.push((next, 0));
                }
            } else {
                post.push(b);
                stack.pop();
            }
        }
        post.reverse();
        for (i, seen) in visited.iter().enumerate() {
            if !seen {
                post.push(BlockId(i as u32));
            }
        }
        post
    }

    /// Number of blocks reachable from the entry.
    pub fn reachable_count(&self) -> usize {
        let mut seen = vec![false; self.blocks.len()];
        let mut stack = vec![self.entry];
        seen[self.entry.index()] = true;
        let mut n = 0;
        while let Some(b) = stack.pop() {
            n += 1;
            for e in &self.blocks[b.index()].succs {
                if !seen[e.to.index()] {
                    seen[e.to.index()] = true;
                    stack.push(e.to);
                }
            }
        }
        n
    }

    /// Computes the dominator tree (see [`crate::Dominators`]).
    pub fn dominators(&self) -> crate::Dominators {
        crate::Dominators::compute(self)
    }

    /// Finds all natural loops (see [`crate::LoopInfo`]).
    pub fn natural_loops(&self) -> Vec<crate::NaturalLoop> {
        crate::LoopInfo::compute(self).into_loops()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use multiscalar_isa::{AluOp, Cond, ProgramBuilder, Reg};

    fn diamond() -> (Program, Cfg) {
        // if (r1 == 0) r2 = 1 else r2 = 2; halt
        let mut b = ProgramBuilder::new();
        let main = b.begin_function("main");
        let then_ = b.new_label();
        let join = b.new_label();
        b.branch(Cond::Eq, Reg(1), Reg(0), then_);
        b.load_imm(Reg(2), 2);
        b.jump(join);
        b.bind(then_);
        b.load_imm(Reg(2), 1);
        b.bind(join);
        b.halt();
        b.end_function();
        let p = b.finish(main).unwrap();
        let cfg = Cfg::build(&p, p.entry_function());
        (p, cfg)
    }

    #[test]
    fn diamond_has_four_blocks() {
        let (_p, cfg) = diamond();
        assert_eq!(cfg.blocks().len(), 4);
        let entry = cfg.block(cfg.entry());
        assert_eq!(entry.terminator(), Terminator::CondBranch);
        assert_eq!(entry.succs().len(), 2);
        let kinds: Vec<_> = entry.succs().iter().map(|e| e.kind).collect();
        assert!(kinds.contains(&EdgeKind::Taken));
        assert!(kinds.contains(&EdgeKind::FallThrough));
    }

    #[test]
    fn preds_are_inverse_of_succs() {
        let (_p, cfg) = diamond();
        for (i, b) in cfg.blocks().iter().enumerate() {
            for e in b.succs() {
                assert!(
                    cfg.block(e.to).preds().contains(&BlockId(i as u32)),
                    "missing pred {} -> {}",
                    i,
                    e.to
                );
            }
            for &p in b.preds() {
                assert!(cfg
                    .block(p)
                    .succs()
                    .iter()
                    .any(|e| e.to == BlockId(i as u32)));
            }
        }
    }

    #[test]
    fn rpo_starts_at_entry_and_covers_all_reachable() {
        let (_p, cfg) = diamond();
        let rpo = cfg.reverse_postorder();
        assert_eq!(rpo[0], cfg.entry());
        assert_eq!(rpo.len(), cfg.blocks().len());
        // In RPO, every edge that is not a back edge goes forward.
        let pos: HashMap<BlockId, usize> = rpo.iter().enumerate().map(|(i, &b)| (b, i)).collect();
        let join = cfg.blocks().len() - 1;
        assert_eq!(
            pos[&BlockId(join as u32)],
            cfg.blocks().len() - 1,
            "join block is last"
        );
    }

    #[test]
    fn block_containing_finds_interior_addresses() {
        let (_p, cfg) = diamond();
        let entry = cfg.block(cfg.entry());
        for a in entry.range() {
            assert_eq!(cfg.block_containing(Addr(a)), Some(cfg.entry()));
        }
        assert_eq!(cfg.block_containing(Addr(1000)), None);
    }

    #[test]
    fn call_splits_block_with_call_return_edge() {
        let mut b = ProgramBuilder::new();
        let f = b.begin_function("f");
        b.ret();
        b.end_function();
        let main = b.begin_function("main");
        b.load_imm(Reg(1), 0);
        b.call_label(f);
        b.op_imm(AluOp::Add, Reg(1), Reg(1), 1);
        b.halt();
        b.end_function();
        let p = b.finish(main).unwrap();
        let (mid, _) = p.function_by_name("main").unwrap();
        let cfg = Cfg::build(&p, mid);
        assert_eq!(cfg.blocks().len(), 2);
        let first = cfg.block(cfg.entry());
        assert!(matches!(first.terminator(), Terminator::Call { .. }));
        assert_eq!(first.succs().len(), 1);
        assert_eq!(first.succs()[0].kind, EdgeKind::CallReturn);
    }

    #[test]
    fn resolved_indirect_jump_produces_case_edges() {
        let mut b = ProgramBuilder::new();
        let main = b.begin_function("main");
        let c0 = b.new_label();
        let c1 = b.new_label();
        let table = b.alloc_label_table(&[c0, c1]);
        b.load_imm(Reg(1), table as i32);
        b.load(Reg(2), Reg(1), 0);
        b.jump_indirect_with_targets(Reg(2), &[c0, c1]);
        b.bind(c0);
        b.halt();
        b.bind(c1);
        b.halt();
        b.end_function();
        let p = b.finish(main).unwrap();
        let cfg = Cfg::build(&p, p.entry_function());
        let entry = cfg.block(cfg.entry());
        assert_eq!(
            entry.terminator(),
            Terminator::IndirectJump { resolved: true }
        );
        assert_eq!(entry.succs().len(), 2);
        assert!(entry
            .succs()
            .iter()
            .all(|e| e.kind == EdgeKind::IndirectCase));
        assert_eq!(cfg.reachable_count(), 3);
    }
}
