//! Seeded-sweep tests: CFG construction and analyses over random
//! structured programs.

use multiscalar_cfg::{BlockId, Cfg};
use multiscalar_isa::{Addr, FuncId};
use multiscalar_workloads::rng::{Rng, SeedableRng, StdRng};
use multiscalar_workloads::synthetic::{random_program, SyntheticConfig};

#[test]
fn blocks_tile_every_function() {
    let mut draws = StdRng::seed_from_u64(0xCF61);
    for _ in 0..64 {
        let seed = draws.gen_range(0..10_000u64);
        let functions = draws.gen_range(1..6usize);
        let constructs = draws.gen_range(1..7usize);
        let p = random_program(
            seed,
            &SyntheticConfig {
                functions,
                constructs,
                nesting: 2,
                mem_ops: 0,
            },
        );
        for (i, f) in p.functions().iter().enumerate() {
            let cfg = Cfg::build(&p, FuncId(i as u32));
            let mut covered = vec![0u32; f.len()];
            for blk in cfg.blocks() {
                for a in blk.range() {
                    covered[(a - f.range().start) as usize] += 1;
                }
            }
            assert!(
                covered.iter().all(|&c| c == 1),
                "blocks must tile exactly once"
            );
            assert_eq!(cfg.block(cfg.entry()).start(), f.entry());
        }
    }
}

#[test]
fn preds_and_succs_are_inverse() {
    for seed in 0..64u64 {
        let p = random_program(seed * 157, &SyntheticConfig::default());
        for (i, _) in p.functions().iter().enumerate() {
            let cfg = Cfg::build(&p, FuncId(i as u32));
            for (bi, blk) in cfg.blocks().iter().enumerate() {
                let from = BlockId(bi as u32);
                for e in blk.succs() {
                    assert!(cfg.block(e.to).preds().contains(&from));
                }
                for &pr in blk.preds() {
                    assert!(cfg.block(pr).succs().iter().any(|e| e.to == from));
                }
            }
        }
    }
}

#[test]
fn dominator_chains_terminate_at_entry() {
    for seed in 0..64u64 {
        let p = random_program(seed * 131, &SyntheticConfig::default());
        for (i, _) in p.functions().iter().enumerate() {
            let cfg = Cfg::build(&p, FuncId(i as u32));
            let dom = cfg.dominators();
            for bi in 0..cfg.blocks().len() {
                let b = BlockId(bi as u32);
                if !dom.is_reachable(b) {
                    continue;
                }
                assert!(dom.dominates(cfg.entry(), b));
                // Walk the idom chain to the entry with bounded fuel.
                let mut cur = b;
                for _ in 0..=cfg.blocks().len() {
                    if cur == cfg.entry() {
                        break;
                    }
                    cur = dom.idom(cur).expect("reachable block has an idom");
                }
                assert_eq!(cur, cfg.entry());
            }
        }
    }
}

#[test]
fn loops_are_dominated_by_their_headers() {
    for seed in 0..64u64 {
        let p = random_program(seed * 149, &SyntheticConfig::default());
        for (i, _) in p.functions().iter().enumerate() {
            let cfg = Cfg::build(&p, FuncId(i as u32));
            let dom = cfg.dominators();
            for l in cfg.natural_loops() {
                for &b in &l.body {
                    assert!(
                        dom.dominates(l.header, b),
                        "loop header must dominate the whole body"
                    );
                }
                for &latch in &l.latches {
                    assert!(
                        cfg.block(latch).succs().iter().any(|e| e.to == l.header),
                        "latch must branch back to the header"
                    );
                }
            }
        }
    }
}

#[test]
fn block_lookup_is_consistent() {
    for seed in 0..48u64 {
        let p = random_program(seed * 101, &SyntheticConfig::default());
        for (i, f) in p.functions().iter().enumerate() {
            let cfg = Cfg::build(&p, FuncId(i as u32));
            for a in f.range() {
                let containing = cfg.block_containing(Addr(a)).expect("tiled");
                let blk = cfg.block(containing);
                assert!(blk.range().contains(&a));
                if blk.start() == Addr(a) {
                    assert_eq!(cfg.block_at(Addr(a)), Some(containing));
                }
            }
        }
    }
}
