//! Property-based tests for the prediction structures: automata, DOLC
//! index construction, path registers and target buffers.

use multiscalar_core::automata::{
    Automaton, LastExit, LastExitHysteresis, VotingCounters,
};
use multiscalar_core::dolc::{Dolc, PathRegister};
use multiscalar_core::rng::XorShift64;
use multiscalar_core::target::ReturnAddressStack;
use multiscalar_isa::{Addr, ExitIndex, MAX_EXITS};
use proptest::prelude::*;

fn exit_strategy() -> impl Strategy<Value = ExitIndex> {
    (0u8..MAX_EXITS as u8).prop_map(|i| ExitIndex::new(i).expect("in range"))
}

/// Runs a sequence of updates and checks the basic automaton contract.
fn check_automaton<A: Automaton>(updates: &[ExitIndex]) {
    let mut a = A::default();
    let mut tie = XorShift64::new(1);
    for &u in updates {
        let p = a.predict(&mut tie);
        prop_assert_in_range(p);
        a.update(u);
    }
    // Convergence: after enough repeats of one exit, it is predicted.
    if let Some(&last) = updates.last() {
        for _ in 0..16 {
            a.update(last);
        }
        assert_eq!(a.predict(&mut tie), last, "{} must converge", A::NAME);
    }
}

fn prop_assert_in_range(p: ExitIndex) {
    assert!(p.index() < MAX_EXITS);
}

proptest! {
    #[test]
    fn automata_never_predict_out_of_range_and_converge(
        updates in proptest::collection::vec(exit_strategy(), 1..60)
    ) {
        check_automaton::<VotingCounters<2, true>>(&updates);
        check_automaton::<VotingCounters<2, false>>(&updates);
        check_automaton::<VotingCounters<3, true>>(&updates);
        check_automaton::<VotingCounters<3, false>>(&updates);
        check_automaton::<LastExit>(&updates);
        check_automaton::<LastExitHysteresis<1>>(&updates);
        check_automaton::<LastExitHysteresis<2>>(&updates);
    }

    #[test]
    fn leh_needs_at_least_confidence_plus_one_misses_to_flip(
        build in 2u8..10, wrong in exit_strategy()
    ) {
        // Saturate confidence on exit 0, then count misses until the
        // prediction flips: must be exactly MAX+1 when saturated.
        prop_assume!(wrong.index() != 0);
        let mut a: LastExitHysteresis<2> = Default::default();
        let mut tie = XorShift64::new(2);
        let e0 = ExitIndex::new(0).unwrap();
        for _ in 0..build {
            a.update(e0);
        }
        let mut flips = 0;
        while a.predict(&mut tie) == e0 {
            a.update(wrong);
            flips += 1;
            prop_assert!(flips <= 4, "2-bit hysteresis flips within 4 misses");
        }
        let expected = u32::from(build).min(3) + 1;
        prop_assert_eq!(flips, expected);
    }

    #[test]
    fn dolc_index_always_in_table(
        depth in 0u8..8,
        older in 0u8..10,
        last in 1u8..12,
        current in 1u8..12,
        folds in 1u8..4,
        addrs in proptest::collection::vec(0u32..1_000_000, 1..40),
    ) {
        // Only realizable configurations: the folded index must fit a table
        // (Dolc::new rejects absurd ones by design).
        let intermediate = if depth == 0 {
            current as u32
        } else {
            (depth as u32 - 1) * older as u32 + last as u32 + current as u32
        };
        prop_assume!(intermediate.div_ceil(folds as u32) <= 28);
        let d = Dolc::new(depth, older, last, current, folds);
        let mut path = PathRegister::new(d.depth());
        for &a in &addrs {
            let idx = d.index(&path, Addr(a));
            prop_assert!(idx < d.table_entries());
            path.push(Addr(a));
        }
    }

    #[test]
    fn dolc_index_is_deterministic(
        addrs in proptest::collection::vec(0u32..100_000, 1..30),
    ) {
        let d = Dolc::new(5, 4, 6, 6, 2);
        let run = |addrs: &[u32]| -> Vec<usize> {
            let mut path = PathRegister::new(d.depth());
            addrs
                .iter()
                .map(|&a| {
                    let i = d.index(&path, Addr(a));
                    path.push(Addr(a));
                    i
                })
                .collect()
        };
        prop_assert_eq!(run(&addrs), run(&addrs));
    }

    #[test]
    fn path_register_matches_reference_model(
        depth in 0usize..10,
        pushes in proptest::collection::vec(0u32..5000, 0..50),
    ) {
        let mut reg = PathRegister::new(depth);
        let mut model: Vec<u32> = Vec::new();
        for &a in &pushes {
            reg.push(Addr(a));
            if depth > 0 {
                model.push(a);
                if model.len() > depth {
                    model.remove(0);
                }
            }
        }
        let got: Vec<u32> = reg.addrs().map(|a| a.0).collect();
        prop_assert_eq!(&got, &model);
        for (i, &m) in model.iter().rev().enumerate() {
            prop_assert_eq!(reg.recent(i), Some(Addr(m)));
        }
        prop_assert_eq!(&*reg.snapshot(), model.as_slice());
    }

    #[test]
    fn ras_is_a_bounded_stack(
        cap in 1usize..16,
        ops in proptest::collection::vec(proptest::option::of(0u32..10_000), 0..80),
    ) {
        // Some(a) = push, None = pop. Model with a Vec truncated from the
        // front on overflow.
        let mut ras = ReturnAddressStack::new(cap);
        let mut model: Vec<u32> = Vec::new();
        for op in ops {
            match op {
                Some(a) => {
                    ras.push(Addr(a));
                    model.push(a);
                    if model.len() > cap {
                        model.remove(0);
                    }
                }
                None => {
                    let got = ras.pop();
                    let want = model.pop();
                    prop_assert_eq!(got, want.map(Addr));
                }
            }
            prop_assert_eq!(ras.len(), model.len());
            prop_assert_eq!(ras.peek(), model.last().copied().map(Addr));
        }
    }

    #[test]
    fn dolc_fold_is_linear_in_xor(
        a in 0u64..u64::MAX, b in 0u64..u64::MAX,
    ) {
        // fold(a ^ b) == fold(a) ^ fold(b): folding is XOR of fields.
        let d = Dolc::new(6, 5, 8, 9, 3);
        let fa = d.fold(a as u128);
        let fb = d.fold(b as u128);
        let fab = d.fold((a ^ b) as u128);
        prop_assert_eq!(fab, fa ^ fb);
    }
}
