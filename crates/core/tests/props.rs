//! Seeded-sweep tests for the prediction structures: automata, DOLC index
//! construction, path registers and target buffers.

use multiscalar_core::automata::{Automaton, LastExit, LastExitHysteresis, VotingCounters};
use multiscalar_core::dolc::{Dolc, PathRegister};
use multiscalar_core::rng::XorShift64;
use multiscalar_core::target::ReturnAddressStack;
use multiscalar_isa::{Addr, ExitIndex, MAX_EXITS};

fn random_exit(rng: &mut XorShift64) -> ExitIndex {
    ExitIndex::new(rng.next_below(MAX_EXITS as u32) as u8).expect("in range")
}

/// Runs a sequence of updates and checks the basic automaton contract.
fn check_automaton<A: Automaton>(updates: &[ExitIndex]) {
    let mut a = A::default();
    let mut tie = XorShift64::new(1);
    for &u in updates {
        let p = a.predict(&mut tie);
        assert!(p.index() < MAX_EXITS);
        a.update(u);
    }
    // Convergence: after enough repeats of one exit, it is predicted.
    if let Some(&last) = updates.last() {
        for _ in 0..16 {
            a.update(last);
        }
        assert_eq!(a.predict(&mut tie), last, "{} must converge", A::NAME);
    }
}

#[test]
fn automata_never_predict_out_of_range_and_converge() {
    let mut rng = XorShift64::new(0xA07A);
    for _ in 0..256 {
        let len = 1 + rng.next_below(59) as usize;
        let updates: Vec<ExitIndex> = (0..len).map(|_| random_exit(&mut rng)).collect();
        check_automaton::<VotingCounters<2, true>>(&updates);
        check_automaton::<VotingCounters<2, false>>(&updates);
        check_automaton::<VotingCounters<3, true>>(&updates);
        check_automaton::<VotingCounters<3, false>>(&updates);
        check_automaton::<LastExit>(&updates);
        check_automaton::<LastExitHysteresis<1>>(&updates);
        check_automaton::<LastExitHysteresis<2>>(&updates);
    }
}

#[test]
fn leh_needs_at_least_confidence_plus_one_misses_to_flip() {
    // Saturate confidence on exit 0, then count misses until the prediction
    // flips: must be exactly MAX+1 when saturated.
    for build in 2u8..10 {
        for wrong_idx in 1..MAX_EXITS as u8 {
            let wrong = ExitIndex::new(wrong_idx).unwrap();
            let mut a: LastExitHysteresis<2> = Default::default();
            let mut tie = XorShift64::new(2);
            let e0 = ExitIndex::new(0).unwrap();
            for _ in 0..build {
                a.update(e0);
            }
            let mut flips = 0;
            while a.predict(&mut tie) == e0 {
                a.update(wrong);
                flips += 1;
                assert!(flips <= 4, "2-bit hysteresis flips within 4 misses");
            }
            let expected = u32::from(build).min(3) + 1;
            assert_eq!(flips, expected);
        }
    }
}

#[test]
fn dolc_index_always_in_table() {
    let mut rng = XorShift64::new(0xD01C);
    let mut cases = 0;
    while cases < 256 {
        let depth = rng.next_below(8) as u8;
        let older = rng.next_below(10) as u8;
        let last = 1 + rng.next_below(11) as u8;
        let current = 1 + rng.next_below(11) as u8;
        let folds = 1 + rng.next_below(3) as u8;
        // Only realizable configurations: the folded index must fit a table
        // (Dolc::new rejects absurd ones by design).
        let intermediate = if depth == 0 {
            current as u32
        } else {
            (depth as u32 - 1) * older as u32 + last as u32 + current as u32
        };
        if intermediate.div_ceil(folds as u32) > 28 {
            continue;
        }
        cases += 1;
        let d = Dolc::new(depth, older, last, current, folds);
        let mut path = PathRegister::new(d.depth());
        let len = 1 + rng.next_below(39) as usize;
        for _ in 0..len {
            let a = rng.next_below(1_000_000);
            let idx = d.index(&path, Addr(a));
            assert!(idx < d.table_entries());
            path.push(Addr(a));
        }
    }
}

#[test]
fn dolc_index_is_deterministic() {
    let d = Dolc::new(5, 4, 6, 6, 2);
    let run = |addrs: &[u32]| -> Vec<usize> {
        let mut path = PathRegister::new(d.depth());
        addrs
            .iter()
            .map(|&a| {
                let i = d.index(&path, Addr(a));
                path.push(Addr(a));
                i
            })
            .collect()
    };
    let mut rng = XorShift64::new(0xDE7E);
    for _ in 0..128 {
        let len = 1 + rng.next_below(29) as usize;
        let addrs: Vec<u32> = (0..len).map(|_| rng.next_below(100_000)).collect();
        assert_eq!(run(&addrs), run(&addrs));
    }
}

#[test]
fn path_register_matches_reference_model() {
    let mut rng = XorShift64::new(0xBA7);
    for _ in 0..256 {
        let depth = rng.next_below(10) as usize;
        let len = rng.next_below(50) as usize;
        let mut reg = PathRegister::new(depth);
        let mut model: Vec<u32> = Vec::new();
        for _ in 0..len {
            let a = rng.next_below(5000);
            reg.push(Addr(a));
            if depth > 0 {
                model.push(a);
                if model.len() > depth {
                    model.remove(0);
                }
            }
        }
        let got: Vec<u32> = reg.addrs().map(|a| a.0).collect();
        assert_eq!(&got, &model);
        for (i, &m) in model.iter().rev().enumerate() {
            assert_eq!(reg.recent(i), Some(Addr(m)));
        }
        assert_eq!(&*reg.snapshot(), model.as_slice());
    }
}

#[test]
fn ras_is_a_bounded_stack() {
    // Push with probability ~1/2, pop otherwise. Model with a Vec truncated
    // from the front on overflow.
    let mut rng = XorShift64::new(0x3A5);
    for _ in 0..256 {
        let cap = 1 + rng.next_below(15) as usize;
        let ops = rng.next_below(80) as usize;
        let mut ras = ReturnAddressStack::new(cap);
        let mut model: Vec<u32> = Vec::new();
        for _ in 0..ops {
            if rng.next_u64() & 1 == 0 {
                let a = rng.next_below(10_000);
                ras.push(Addr(a));
                model.push(a);
                if model.len() > cap {
                    model.remove(0);
                }
            } else {
                let got = ras.pop();
                let want = model.pop();
                assert_eq!(got, want.map(Addr));
            }
            assert_eq!(ras.len(), model.len());
            assert_eq!(ras.peek(), model.last().copied().map(Addr));
        }
    }
}

#[test]
fn dolc_fold_is_linear_in_xor() {
    // fold(a ^ b) == fold(a) ^ fold(b): folding is XOR of fields.
    let d = Dolc::new(6, 5, 8, 9, 3);
    let mut rng = XorShift64::new(0xF01D);
    for _ in 0..4096 {
        let a = rng.next_u64();
        let b = rng.next_u64();
        let fa = d.fold(a as u128);
        let fb = d.fold(b as u128);
        let fab = d.fold((a ^ b) as u128);
        assert_eq!(fab, fa ^ fb);
    }
}
