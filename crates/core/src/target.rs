//! Target-address prediction (paper §5.3, §6.4): return-address stack,
//! task target buffer (TTB) and correlated task target buffer (CTTB).
//!
//! After the exit predictor picks an exit, the *address* of the next task
//! must be produced: header fields cover branches and calls, a
//! [`ReturnAddressStack`] covers returns, and indirect branches/calls need
//! a target buffer. The paper shows a plain address-indexed [`Ttb`] does
//! very poorly (59% misses on gcc) while a path-indexed [`Cttb`] —
//! sharing the exit predictor's DOLC index construction — does far better.

use crate::dolc::{Dolc, PathKey, PathRegister, MAX_PATH_KEY_DEPTH};
use crate::fxhash::FxHashMap;
use multiscalar_isa::Addr;
use std::collections::VecDeque;

/// A bounded return-address stack (RAS).
///
/// Pushed by call exits, popped by return exits; "a reasonably deep RAS is
/// nearly perfect in predicting return addresses" (paper §4.2). When full,
/// the oldest entry is discarded (deep recursion wraps, as in hardware).
///
/// ```
/// use multiscalar_core::target::ReturnAddressStack;
/// use multiscalar_isa::Addr;
/// let mut ras = ReturnAddressStack::new(4);
/// ras.push(Addr(10));
/// ras.push(Addr(20));
/// assert_eq!(ras.peek(), Some(Addr(20)));
/// assert_eq!(ras.pop(), Some(Addr(20)));
/// assert_eq!(ras.pop(), Some(Addr(10)));
/// assert_eq!(ras.pop(), None);
/// ```
#[derive(Debug, Clone, Default)]
pub struct ReturnAddressStack {
    stack: VecDeque<Addr>,
    capacity: usize,
}

impl ReturnAddressStack {
    /// Creates a stack holding up to `capacity` return addresses.
    pub fn new(capacity: usize) -> ReturnAddressStack {
        ReturnAddressStack {
            stack: VecDeque::with_capacity(capacity.min(1024)),
            capacity,
        }
    }

    /// Pushes a return address; discards the oldest entry when full.
    pub fn push(&mut self, addr: Addr) {
        if self.capacity == 0 {
            return;
        }
        if self.stack.len() == self.capacity {
            self.stack.pop_front();
        }
        self.stack.push_back(addr);
    }

    /// Pops the most recent return address.
    pub fn pop(&mut self) -> Option<Addr> {
        self.stack.pop_back()
    }

    /// The most recent return address without popping.
    pub fn peek(&self) -> Option<Addr> {
        self.stack.back().copied()
    }

    /// Current depth.
    pub fn len(&self) -> usize {
        self.stack.len()
    }

    /// `true` if no addresses are stacked.
    pub fn is_empty(&self) -> bool {
        self.stack.is_empty()
    }

    /// Maximum depth.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

/// One target-buffer entry: a target address plus a 2-bit hysteresis
/// counter ("similar to the exit prediction automata", paper §5.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
struct TargetEntry {
    target: u32,
    confidence: u8,
    valid: bool,
}

impl TargetEntry {
    const MAX_CONF: u8 = 3;

    fn predict(&self) -> Option<Addr> {
        self.valid.then_some(Addr(self.target))
    }

    fn train(&mut self, actual: Addr) {
        if self.valid && self.target == actual.0 {
            self.confidence = (self.confidence + 1).min(Self::MAX_CONF);
        } else if !self.valid || self.confidence == 0 {
            *self = TargetEntry {
                target: actual.0,
                confidence: 0,
                valid: true,
            };
        } else {
            self.confidence -= 1;
        }
    }
}

/// A plain task target buffer: a direct-mapped table indexed by low bits of
/// the task's starting address. The paper's baseline, shown to mispredict
/// ~59% of gcc's indirect targets even at infinite size.
#[derive(Debug, Clone)]
pub struct Ttb {
    entries: Vec<TargetEntry>,
    index_bits: u32,
}

impl Ttb {
    /// Creates a TTB with `2^index_bits` entries.
    ///
    /// # Panics
    ///
    /// Panics if `index_bits` is 0 or > 28.
    pub fn new(index_bits: u32) -> Ttb {
        assert!((1..=28).contains(&index_bits));
        Ttb {
            entries: vec![TargetEntry::default(); 1 << index_bits],
            index_bits,
        }
    }

    fn index(&self, task: Addr) -> usize {
        (task.0 & ((1 << self.index_bits) - 1)) as usize
    }

    /// Predicts the target for an indirect exit of the task at `task`.
    pub fn predict(&self, task: Addr) -> Option<Addr> {
        self.entries[self.index(task)].predict()
    }

    /// Trains with the actual target.
    pub fn update(&mut self, task: Addr, actual: Addr) {
        let i = self.index(task);
        self.entries[i].train(actual);
    }

    /// Storage accounted as in the paper: 4 bytes per entry.
    pub fn storage_bytes(&self) -> usize {
        self.entries.len() * 4
    }
}

/// The correlated task target buffer (CTTB): a target buffer indexed by the
/// same path-based DOLC function as the exit predictor, so different paths
/// to the same indirect jump can predict different targets.
///
/// The caller owns the [`PathRegister`] (usually shared conceptually with
/// the exit predictor) and passes it to [`Cttb::predict`] / [`Cttb::update`].
#[derive(Debug, Clone)]
pub struct Cttb {
    dolc: Dolc,
    entries: Vec<TargetEntry>,
}

impl Cttb {
    /// Creates a CTTB with the given index configuration.
    pub fn new(dolc: Dolc) -> Cttb {
        Cttb {
            dolc,
            entries: vec![TargetEntry::default(); dolc.table_entries()],
        }
    }

    /// The index configuration.
    pub fn dolc(&self) -> Dolc {
        self.dolc
    }

    /// Predicts the target reached from `current` along `path`.
    pub fn predict(&self, path: &PathRegister, current: Addr) -> Option<Addr> {
        self.entries[self.dolc.index(path, current)].predict()
    }

    /// Trains with the actual target.
    pub fn update(&mut self, path: &PathRegister, current: Addr, actual: Addr) {
        let i = self.dolc.index(path, current);
        self.entries[i].train(actual);
    }

    /// Storage accounted as in the paper: 4 bytes per entry.
    pub fn storage_bytes(&self) -> usize {
        self.entries.len() * 4
    }
}

/// An ideal (alias-free, infinite) CTTB: one entry per distinct
/// (task, exact path) state — the reference model of the paper's Figure 8.
#[derive(Debug, Clone, Default)]
pub struct IdealCttb {
    depth: usize,
    map: FxHashMap<(u32, PathKey), TargetEntry>,
}

impl IdealCttb {
    /// Creates an ideal CTTB keyed on paths of the given depth.
    ///
    /// # Panics
    ///
    /// Panics if `depth` exceeds [`MAX_PATH_KEY_DEPTH`] (the paper's sweeps
    /// stop at 8).
    pub fn new(depth: usize) -> IdealCttb {
        assert!(
            depth <= MAX_PATH_KEY_DEPTH,
            "ideal CTTB depth {depth} too deep"
        );
        IdealCttb {
            depth,
            map: FxHashMap::default(),
        }
    }

    /// The path depth this buffer keys on.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Predicts the target reached from `current` along `path`.
    pub fn predict(&self, path: &PathRegister, current: Addr) -> Option<Addr> {
        self.map
            .get(&(current.0, path.key()))
            .and_then(|e| e.predict())
    }

    /// Trains with the actual target.
    pub fn update(&mut self, path: &PathRegister, current: Addr, actual: Addr) {
        self.map
            .entry((current.0, path.key()))
            .or_default()
            .train(actual);
    }

    /// Number of distinct (task, path) states seen.
    pub fn states(&self) -> usize {
        self.map.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ras_is_lifo() {
        let mut ras = ReturnAddressStack::new(8);
        for a in 1..=5u32 {
            ras.push(Addr(a));
        }
        for a in (1..=5u32).rev() {
            assert_eq!(ras.pop(), Some(Addr(a)));
        }
        assert!(ras.is_empty());
    }

    #[test]
    fn ras_overflow_discards_oldest() {
        let mut ras = ReturnAddressStack::new(2);
        ras.push(Addr(1));
        ras.push(Addr(2));
        ras.push(Addr(3)); // evicts 1
        assert_eq!(ras.len(), 2);
        assert_eq!(ras.pop(), Some(Addr(3)));
        assert_eq!(ras.pop(), Some(Addr(2)));
        assert_eq!(ras.pop(), None, "Addr(1) was lost to overflow");
    }

    #[test]
    fn ras_zero_capacity_is_inert() {
        let mut ras = ReturnAddressStack::new(0);
        ras.push(Addr(9));
        assert!(ras.is_empty());
        assert_eq!(ras.peek(), None);
        assert_eq!(ras.capacity(), 0);
    }

    #[test]
    fn target_entry_hysteresis() {
        let mut e = TargetEntry::default();
        assert_eq!(e.predict(), None, "invalid entries predict nothing");
        e.train(Addr(100));
        assert_eq!(e.predict(), Some(Addr(100)));
        e.train(Addr(100));
        e.train(Addr(100)); // confidence 2
        e.train(Addr(200)); // wrong: confidence 1, keep 100
        assert_eq!(e.predict(), Some(Addr(100)));
        e.train(Addr(200)); // confidence 0, keep
        assert_eq!(e.predict(), Some(Addr(100)));
        e.train(Addr(200)); // replace
        assert_eq!(e.predict(), Some(Addr(200)));
    }

    #[test]
    fn ttb_cannot_separate_paths() {
        // Two different execution paths reach the same task but lead to
        // different targets: a TTB thrashes, a CTTB separates them.
        let mut ttb = Ttb::new(8);
        let dolc = Dolc::new(2, 6, 8, 8, 1);
        let mut cttb = Cttb::new(dolc);

        // Path addresses must differ in their *low-order* bits — the bits
        // DOLC harvests (paper §6.1, heuristic 1).
        let task = Addr(0x40);
        let mut path_a = PathRegister::new(2);
        path_a.push(Addr(0x10));
        path_a.push(Addr(0x14));
        let mut path_b = PathRegister::new(2);
        path_b.push(Addr(0x21));
        path_b.push(Addr(0x25));

        let mut ttb_misses = 0;
        let mut cttb_misses = 0;
        for i in 0..100 {
            let (path, target) = if i % 2 == 0 {
                (&path_a, Addr(0xA0))
            } else {
                (&path_b, Addr(0xB0))
            };
            if ttb.predict(task) != Some(target) {
                ttb_misses += 1;
            }
            if cttb.predict(path, task) != Some(target) && i >= 4 {
                cttb_misses += 1;
            }
            ttb.update(task, target);
            cttb.update(path, task, target);
        }
        assert_eq!(cttb_misses, 0, "CTTB separates the two paths");
        assert!(
            ttb_misses >= 50,
            "TTB thrashes between targets: {ttb_misses}"
        );
    }

    #[test]
    fn ideal_cttb_never_aliases() {
        let mut ideal = IdealCttb::new(2);
        let mut path = PathRegister::new(2);
        // Many distinct paths to the same task, each with its own target.
        for i in 0..64u32 {
            path.clear();
            path.push(Addr(i * 8));
            path.push(Addr(i * 8 + 4));
            ideal.update(&path, Addr(0x40), Addr(1000 + i));
        }
        assert_eq!(ideal.states(), 64);
        for i in 0..64u32 {
            path.clear();
            path.push(Addr(i * 8));
            path.push(Addr(i * 8 + 4));
            assert_eq!(ideal.predict(&path, Addr(0x40)), Some(Addr(1000 + i)));
        }
    }

    #[test]
    fn storage_accounting_matches_paper() {
        // Figure 12's implementations: 11 index bits * 4 bytes = 8 KB.
        let c = Cttb::new(Dolc::new(5, 5, 6, 7, 3));
        assert_eq!(Dolc::new(5, 5, 6, 7, 3).index_bits(), 11);
        assert_eq!(c.storage_bytes(), 8 * 1024);
        assert_eq!(Ttb::new(11).storage_bytes(), 8 * 1024);
    }

    #[test]
    fn cold_buffers_predict_nothing() {
        let c = Cttb::new(Dolc::new(1, 0, 4, 4, 1));
        let p = PathRegister::new(1);
        assert_eq!(c.predict(&p, Addr(3)), None);
        let i = IdealCttb::new(1);
        assert_eq!(i.predict(&p, Addr(3)), None);
        assert_eq!(i.depth(), 1);
    }
}
