//! DOLC index construction for path-based predictors (paper §6).
//!
//! A realizable path predictor cannot index its table with full task
//! addresses, so the paper builds an *intermediate index* from a few bits of
//! each task address along the path, then *folds* it down with XOR:
//!
//! * **D** — depth: how many preceding tasks represent the path,
//! * **O** — bits taken from each *older* task (current−2 … current−D),
//! * **L** — bits taken from the *last* task (current−1),
//! * **C** — bits taken from the *current* task,
//! * **F** — number of equal sub-fields XORed together to form the final
//!   index.
//!
//! Notation `D-O-L-C (F)`; e.g. `6-5-8-9 (3)` has a 42-bit intermediate
//! index folded into 14 bits → a 16K-entry table, exactly the example in
//! the paper.
//!
//! Two heuristics drive the design (both reproduced here and ablated in the
//! benches): low-order address bits carry the most information, and more
//! recent tasks deserve more bits than older ones.

use multiscalar_isa::Addr;
use std::collections::VecDeque;
use std::fmt;

/// A shift register of the most recent task addresses, oldest first.
///
/// Both the path-based exit predictor and the correlated task target buffer
/// maintain one; pushing the current task's entry address advances the path
/// by one step.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PathRegister {
    addrs: VecDeque<u32>,
    capacity: usize,
}

impl PathRegister {
    /// Creates a register holding up to `depth` addresses.
    pub fn new(depth: usize) -> PathRegister {
        PathRegister {
            addrs: VecDeque::with_capacity(depth + 1),
            capacity: depth,
        }
    }

    /// Shifts in the newest task address, discarding the oldest when full.
    pub fn push(&mut self, addr: Addr) {
        if self.capacity == 0 {
            return;
        }
        if self.addrs.len() == self.capacity {
            self.addrs.pop_front();
        }
        self.addrs.push_back(addr.0);
    }

    /// Addresses oldest→newest; shorter than `depth` until warmed up.
    pub fn addrs(&self) -> impl Iterator<Item = Addr> + '_ {
        self.addrs.iter().map(|&a| Addr(a))
    }

    /// The `i`-th most recent address (0 = last task), if present.
    pub fn recent(&self, i: usize) -> Option<Addr> {
        let n = self.addrs.len();
        (i < n).then(|| Addr(self.addrs[n - 1 - i]))
    }

    /// Number of addresses currently held.
    pub fn len(&self) -> usize {
        self.addrs.len()
    }

    /// `true` until the first push (or always, for depth 0).
    pub fn is_empty(&self) -> bool {
        self.addrs.is_empty()
    }

    /// Maximum number of addresses held.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The exact path as a boxed slice (oldest→newest).
    pub fn snapshot(&self) -> Box<[u32]> {
        self.addrs.iter().copied().collect()
    }

    /// The exact path as a fixed-size `Copy` key (oldest→newest) — the key
    /// used by ideal, alias-free predictors. Unlike [`snapshot`], building
    /// one never touches the heap, so it can sit on the per-event hot path.
    ///
    /// [`snapshot`]: Self::snapshot
    ///
    /// # Panics
    ///
    /// Panics when the register holds more than [`MAX_PATH_KEY_DEPTH`]
    /// addresses.
    pub fn key(&self) -> PathKey {
        let n = self.addrs.len();
        assert!(
            n <= MAX_PATH_KEY_DEPTH,
            "path too deep for a fixed key: {n}"
        );
        let mut addrs = [0u32; MAX_PATH_KEY_DEPTH];
        for (slot, &a) in addrs.iter_mut().zip(self.addrs.iter()) {
            *slot = a;
        }
        PathKey {
            len: n as u8,
            addrs,
        }
    }

    /// Clears the register.
    pub fn clear(&mut self) {
        self.addrs.clear();
    }
}

/// Deepest path an allocation-free [`PathKey`] can hold. The paper's ideal
/// sweeps stop at depth 8, so every ideal predictor fits.
pub const MAX_PATH_KEY_DEPTH: usize = 8;

/// A fixed-size, `Copy` image of a [`PathRegister`]'s exact contents
/// (oldest→newest, `len` valid entries). Two keys compare equal exactly when
/// the underlying paths are identical, so ideal predictors stay alias-free
/// while their per-event key construction stays off the heap.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PathKey {
    len: u8,
    addrs: [u32; MAX_PATH_KEY_DEPTH],
}

/// A `D-O-L-C (F)` index configuration.
///
/// See the [module docs](self) for the meaning of the five parameters.
///
/// ```
/// use multiscalar_core::dolc::Dolc;
/// let d = Dolc::new(6, 5, 8, 9, 3); // the paper's example
/// assert_eq!(d.intermediate_bits(), 42);
/// assert_eq!(d.index_bits(), 14);
/// assert_eq!(d.table_entries(), 1 << 14);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Dolc {
    depth: u8,
    older_bits: u8,
    last_bits: u8,
    current_bits: u8,
    folds: u8,
}

impl Dolc {
    /// Creates a configuration.
    ///
    /// # Panics
    ///
    /// Panics if `folds == 0`, if any bit count exceeds 32, or if the
    /// configuration selects zero index bits.
    pub fn new(depth: u8, older_bits: u8, last_bits: u8, current_bits: u8, folds: u8) -> Dolc {
        assert!(folds > 0, "folds must be at least 1");
        assert!(older_bits <= 32 && last_bits <= 32 && current_bits <= 32);
        let d = Dolc {
            depth,
            older_bits,
            last_bits,
            current_bits,
            folds,
        };
        assert!(d.intermediate_bits() > 0, "index would be empty");
        assert!(d.index_bits() <= 28, "table would be unreasonably large");
        d
    }

    /// Parses the paper's `"D-O-L-C (F)"` notation, e.g. `"6-5-8-9 (3)"`.
    ///
    /// # Errors
    ///
    /// Returns a description of the malformed component.
    pub fn parse(s: &str) -> Result<Dolc, String> {
        let s = s.trim();
        let (dolc_part, fold_part) = match s.find('(') {
            Some(i) => {
                let f = s[i + 1..]
                    .trim_end_matches(')')
                    .trim()
                    .parse::<u8>()
                    .map_err(|e| format!("bad fold count: {e}"))?;
                (&s[..i], f)
            }
            None => (s, 1),
        };
        let parts: Vec<&str> = dolc_part.trim().split('-').collect();
        if parts.len() != 4 {
            return Err(format!("expected D-O-L-C, got `{dolc_part}`"));
        }
        let nums: Result<Vec<u8>, _> = parts.iter().map(|p| p.trim().parse::<u8>()).collect();
        let nums = nums.map_err(|e| format!("bad number in `{dolc_part}`: {e}"))?;
        Ok(Dolc::new(nums[0], nums[1], nums[2], nums[3], fold_part))
    }

    /// Path depth `D` (number of preceding tasks encoded).
    pub fn depth(&self) -> usize {
        self.depth as usize
    }

    /// Bits per older task, `O`.
    pub fn older_bits(&self) -> u32 {
        self.older_bits as u32
    }

    /// Bits from the last task, `L`.
    pub fn last_bits(&self) -> u32 {
        self.last_bits as u32
    }

    /// Bits from the current task, `C`.
    pub fn current_bits(&self) -> u32 {
        self.current_bits as u32
    }

    /// Fold count `F`.
    pub fn folds(&self) -> u32 {
        self.folds as u32
    }

    /// Length of the intermediate index: `(D-1)*O + L + C` (just `C` for
    /// depth 0).
    pub fn intermediate_bits(&self) -> u32 {
        if self.depth == 0 {
            self.current_bits as u32
        } else {
            (self.depth as u32 - 1) * self.older_bits as u32
                + self.last_bits as u32
                + self.current_bits as u32
        }
    }

    /// Bits in the final (folded) index: `ceil(intermediate / F)`.
    pub fn index_bits(&self) -> u32 {
        self.intermediate_bits().div_ceil(self.folds as u32)
    }

    /// Entries in a table indexed by this configuration.
    pub fn table_entries(&self) -> usize {
        1usize << self.index_bits()
    }

    /// Builds the intermediate index from the path and current task, then
    /// folds it into the final table index (`< table_entries()`).
    ///
    /// Layout (low to high): current task's `C` bits, last task's `L` bits,
    /// then `O` bits from each older task, oldest highest — so corresponding
    /// bits of different tasks do not line up under folding, preserving the
    /// low-order information (paper §6.1, heuristic 1).
    pub fn index(&self, path: &PathRegister, current: Addr) -> usize {
        let mut inter: u128 = (current.0 & mask32(self.current_bits as u32)) as u128;
        let mut shift = self.current_bits as u32;
        if self.depth > 0 {
            let last = path.recent(0).map_or(0, |a| a.0);
            inter |= ((last & mask32(self.last_bits as u32)) as u128) << shift;
            shift += self.last_bits as u32;
            for i in 1..self.depth as usize {
                let older = path.recent(i).map_or(0, |a| a.0);
                inter |= ((older & mask32(self.older_bits as u32)) as u128) << shift;
                shift += self.older_bits as u32;
            }
        }
        debug_assert_eq!(shift, self.intermediate_bits());
        self.fold(inter)
    }

    /// Exactly [`Dolc::index`], reading the path from a most-recent-first
    /// window slice instead of a [`PathRegister`]: `window[0]` is the last
    /// task's address, `window[1]` the one before it, and positions at or
    /// past `len` read as absent (0) — the same warm-up behaviour as a
    /// register that has seen the same push stream. A single shared window
    /// (sized to the deepest configuration) can therefore serve many
    /// configurations at once, which is what the lane-packed batched sweep
    /// engine does.
    pub fn index_window(&self, window: &[u32], len: usize, current: Addr) -> usize {
        let at = |i: usize| if i < len { window[i] } else { 0 };
        let mut inter: u128 = (current.0 & mask32(self.current_bits as u32)) as u128;
        let mut shift = self.current_bits as u32;
        if self.depth > 0 {
            inter |= ((at(0) & mask32(self.last_bits as u32)) as u128) << shift;
            shift += self.last_bits as u32;
            for i in 1..self.depth as usize {
                inter |= ((at(i) & mask32(self.older_bits as u32)) as u128) << shift;
                shift += self.older_bits as u32;
            }
        }
        debug_assert_eq!(shift, self.intermediate_bits());
        self.fold(inter)
    }

    /// Folds an intermediate value into the final index by XORing `F`
    /// equal-width sub-fields.
    pub fn fold(&self, intermediate: u128) -> usize {
        let ib = self.index_bits();
        let m = (1u128 << ib) - 1;
        let mut acc = 0u128;
        let mut v = intermediate;
        for _ in 0..self.folds {
            acc ^= v & m;
            v >>= ib;
        }
        acc as usize
    }
}

impl fmt::Display for Dolc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}-{}-{}-{} ({})",
            self.depth, self.older_bits, self.last_bits, self.current_bits, self.folds
        )
    }
}

#[inline]
fn mask32(bits: u32) -> u32 {
    if bits >= 32 {
        u32::MAX
    } else {
        (1u32 << bits) - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_sizes() {
        // "a 6-5-8-9 (3) implementation is 6 deep ... the intermediate
        //  index is 42 bits, the actual index is 14 bits and the table has
        //  16K entries."
        let d = Dolc::new(6, 5, 8, 9, 3);
        assert_eq!(d.intermediate_bits(), 42);
        assert_eq!(d.index_bits(), 14);
        assert_eq!(d.table_entries(), 16 * 1024);
    }

    #[test]
    fn depth_zero_uses_only_current_bits() {
        let d = Dolc::new(0, 0, 0, 14, 1);
        assert_eq!(d.intermediate_bits(), 14);
        let path = PathRegister::new(0);
        let i1 = d.index(&path, Addr(0x1234));
        assert_eq!(i1, 0x1234 & 0x3FFF);
    }

    #[test]
    fn parse_round_trips_display() {
        for s in ["6-5-8-9 (3)", "0-0-0-14 (1)", "7-6-9-9 (3)", "2-4-5-5 (1)"] {
            let d = Dolc::parse(s).unwrap();
            assert_eq!(d.to_string(), s);
        }
        assert!(Dolc::parse("1-2-3").is_err());
        assert!(Dolc::parse("a-b-c-d (1)").is_err());
    }

    #[test]
    fn index_is_always_in_table() {
        let d = Dolc::new(5, 4, 6, 6, 2);
        let mut path = PathRegister::new(d.depth());
        for a in 0..200u32 {
            let idx = d.index(&path, Addr(a.wrapping_mul(2654435761)));
            assert!(idx < d.table_entries());
            path.push(Addr(a.wrapping_mul(40503)));
        }
    }

    #[test]
    fn different_paths_usually_differ() {
        let d = Dolc::new(2, 8, 8, 8, 1);
        let mut p1 = PathRegister::new(2);
        let mut p2 = PathRegister::new(2);
        p1.push(Addr(0x10));
        p1.push(Addr(0x20));
        p2.push(Addr(0x11));
        p2.push(Addr(0x20));
        assert_ne!(d.index(&p1, Addr(0x30)), d.index(&p2, Addr(0x30)));
    }

    #[test]
    fn path_register_is_a_shift_register() {
        let mut p = PathRegister::new(3);
        assert!(p.is_empty());
        for a in 1..=5u32 {
            p.push(Addr(a));
        }
        assert_eq!(p.len(), 3);
        let v: Vec<u32> = p.addrs().map(|a| a.0).collect();
        assert_eq!(v, vec![3, 4, 5], "keeps the newest 3");
        assert_eq!(p.recent(0), Some(Addr(5)));
        assert_eq!(p.recent(2), Some(Addr(3)));
        assert_eq!(p.recent(3), None);
        assert_eq!(p.capacity(), 3);
    }

    #[test]
    fn depth_zero_register_stays_empty() {
        let mut p = PathRegister::new(0);
        p.push(Addr(1));
        assert!(p.is_empty());
    }

    #[test]
    fn fold_preserves_all_intermediate_bits() {
        // Flipping any single intermediate bit must flip the index.
        let d = Dolc::new(3, 4, 6, 6, 2); // intermediate = 2*4+6+6 = 20? no: (3-1)*4+6+6 = 20
        assert_eq!(d.intermediate_bits(), 20);
        let base = d.fold(0);
        for bit in 0..d.intermediate_bits() as u128 {
            let flipped = d.fold(1u128 << bit);
            assert_ne!(flipped, base, "bit {bit} lost by folding");
        }
    }

    #[test]
    fn index_window_matches_index_through_warmup() {
        // A shared most-recent-first window must reproduce index() exactly,
        // including the cold-start phase where the register is shorter than
        // its depth — and even when the window is deeper than the config.
        let configs = [
            Dolc::new(0, 0, 0, 14, 1),
            Dolc::new(1, 0, 7, 7, 1),
            Dolc::new(3, 6, 8, 8, 2),
            Dolc::new(6, 5, 8, 9, 3),
        ];
        let max_depth = configs.iter().map(|d| d.depth()).max().unwrap();
        let mut window = vec![0u32; max_depth];
        let mut len = 0usize;
        let mut regs: Vec<PathRegister> = configs
            .iter()
            .map(|d| PathRegister::new(d.depth()))
            .collect();
        for a in 0..64u32 {
            let cur = Addr(a.wrapping_mul(2654435761));
            for (d, reg) in configs.iter().zip(&regs) {
                assert_eq!(
                    d.index_window(&window, len, cur),
                    d.index(reg, cur),
                    "{d} step {a}"
                );
            }
            let pushed = Addr(a.wrapping_mul(40503) ^ 0x40);
            for i in (1..max_depth).rev() {
                window[i] = window[i - 1];
            }
            if max_depth > 0 {
                window[0] = pushed.0;
            }
            len = (len + 1).min(max_depth);
            for reg in &mut regs {
                reg.push(pushed);
            }
        }
    }

    #[test]
    fn snapshot_matches_contents() {
        let mut p = PathRegister::new(2);
        p.push(Addr(7));
        p.push(Addr(9));
        assert_eq!(&*p.snapshot(), &[7, 9]);
        p.clear();
        assert!(p.is_empty());
    }

    #[test]
    #[should_panic(expected = "folds must be at least 1")]
    fn zero_folds_panics() {
        Dolc::new(1, 1, 1, 1, 0);
    }
}
