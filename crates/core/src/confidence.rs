//! Confidence estimation for task predictions — the follow-on mechanism of
//! Jacobson, Rotenberg & Smith ("Assigning Confidence to Conditional
//! Branch Predictions", MICRO-29 1996) applied to inter-task speculation.
//!
//! A small table of resetting *correct-streak* counters (the CIR estimator)
//! is indexed by task address: a prediction is *high confidence* when the
//! recent predictions for that task have been correct at least
//! `threshold` times in a row. The timing simulator can gate speculation
//! on it (`ext-confidence`): low-confidence predictions stall the
//! sequencer instead of risking a squash.

use crate::predictor::TaskDesc;
use multiscalar_isa::Addr;

/// A resetting-counter (CIR) confidence estimator for task predictions.
///
/// # Example
///
/// ```
/// use multiscalar_core::confidence::ConfidenceEstimator;
/// use multiscalar_isa::Addr;
///
/// let mut c = ConfidenceEstimator::new(10, 4);
/// let task = Addr(0x40);
/// assert!(!c.high_confidence(task), "cold entries are low confidence");
/// for _ in 0..4 {
///     c.update(task, true);
/// }
/// assert!(c.high_confidence(task));
/// c.update(task, false);
/// assert!(!c.high_confidence(task), "one miss resets the streak");
/// ```
#[derive(Debug, Clone)]
pub struct ConfidenceEstimator {
    counters: Vec<u8>,
    mask: u32,
    threshold: u8,
}

impl ConfidenceEstimator {
    /// Creates an estimator with `2^index_bits` resetting counters and the
    /// given high-confidence threshold (correct predictions in a row).
    ///
    /// # Panics
    ///
    /// Panics if `index_bits` is 0 or > 28, or `threshold` is 0.
    pub fn new(index_bits: u32, threshold: u8) -> ConfidenceEstimator {
        assert!((1..=28).contains(&index_bits));
        assert!(threshold > 0);
        ConfidenceEstimator {
            counters: vec![0; 1 << index_bits],
            mask: (1 << index_bits) - 1,
            threshold,
        }
    }

    #[inline]
    fn slot(&self, task: Addr) -> usize {
        (task.0 & self.mask) as usize
    }

    /// `true` when the predictor's recent record for this task clears the
    /// threshold.
    #[inline]
    pub fn high_confidence(&self, task: Addr) -> bool {
        self.counters[self.slot(task)] >= self.threshold
    }

    /// Convenience overload on a [`TaskDesc`].
    #[inline]
    pub fn high_confidence_for(&self, task: &TaskDesc) -> bool {
        self.high_confidence(task.entry())
    }

    /// Records whether the prediction for `task` turned out correct: a hit
    /// saturates the streak upward, a miss resets it (the CIR rule).
    #[inline]
    pub fn update(&mut self, task: Addr, correct: bool) {
        let slot = self.slot(task);
        if correct {
            self.counters[slot] = self.counters[slot].saturating_add(1).min(15);
        } else {
            self.counters[slot] = 0;
        }
    }

    /// The high-confidence threshold.
    pub fn threshold(&self) -> u8 {
        self.threshold
    }

    /// Storage in bytes (4 bits per counter).
    pub fn storage_bytes(&self) -> usize {
        self.counters.len() / 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streaks_build_and_reset() {
        let mut c = ConfidenceEstimator::new(8, 3);
        let t = Addr(5);
        for i in 0..3 {
            assert!(!c.high_confidence(t), "below threshold after {i} hits");
            c.update(t, true);
        }
        assert!(c.high_confidence(t));
        c.update(t, true); // saturates, still high
        assert!(c.high_confidence(t));
        c.update(t, false);
        assert!(!c.high_confidence(t), "reset on first miss");
    }

    #[test]
    fn tasks_are_tracked_independently_modulo_aliasing() {
        let mut c = ConfidenceEstimator::new(8, 2);
        let (a, b) = (Addr(1), Addr(2));
        c.update(a, true);
        c.update(a, true);
        assert!(c.high_confidence(a));
        assert!(!c.high_confidence(b));
        // Aliased addresses share a counter (256-entry table).
        let alias = Addr(1 + 256);
        assert!(c.high_confidence(alias));
    }

    #[test]
    fn coverage_tradeoff_with_threshold() {
        // Higher thresholds classify fewer predictions as high confidence
        // on a noisy stream.
        let mut rng = crate::rng::XorShift64::new(9);
        let count_high = |threshold: u8| {
            let mut c = ConfidenceEstimator::new(6, threshold);
            let mut rng2 = crate::rng::XorShift64::new(9);
            let mut high = 0;
            for _ in 0..2000 {
                let t = Addr(rng2.next_below(16));
                high += c.high_confidence(t) as u32;
                c.update(t, rng2.next_below(10) < 9); // 90% correct
            }
            high
        };
        let low_thr = count_high(1);
        let high_thr = count_high(8);
        assert!(low_thr > high_thr, "{low_thr} vs {high_thr}");
        let _ = rng.next_u64();
    }

    #[test]
    fn storage_accounting() {
        let c = ConfidenceEstimator::new(10, 4);
        assert_eq!(c.storage_bytes(), 512);
        assert_eq!(c.threshold(), 4);
    }
}
