#![warn(missing_docs)]

//! Inter-task control-flow speculation for Multiscalar processors — the
//! mechanisms of Jacobson, Bennett, Sharma & Smith, *"Control Flow
//! Speculation in Multiscalar Processors"* (HPCA-3, 1997).
//!
//! The Multiscalar global sequencer walks the task flow graph speculatively.
//! At each step it must predict, for the current task:
//!
//! 1. **which of up to four exits** the task will take — a *multi-way*
//!    branching problem solved by a prediction automaton selected from a
//!    pattern history table (PHT), and
//! 2. **the target address** of that exit — from the task header (branches,
//!    calls), a return-address stack (returns), or a correlated task target
//!    buffer (indirect branches/calls).
//!
//! This crate implements every mechanism the paper studies:
//!
//! | Paper concept | Here |
//! |---|---|
//! | Voting counters (2/3-bit, MRU/random ties) | [`automata::VotingCounters`] |
//! | Last exit / last exit with hysteresis | [`automata::LastExit`], [`automata::LastExitHysteresis`] |
//! | GLOBAL exit-history scheme | [`history::GlobalPredictor`], [`ideal::IdealGlobal`] |
//! | PER-task history scheme (PAp analog) | [`history::PerTaskPredictor`], [`ideal::IdealPer`] |
//! | PATH path-based scheme | [`history::PathPredictor`], [`ideal::IdealPath`] |
//! | DOLC index construction (`D-O-L-C (F)`) | [`dolc::Dolc`] |
//! | Return-address stack | [`target::ReturnAddressStack`] |
//! | Task target buffer (TTB) | [`target::Ttb`] |
//! | Correlated TTB (CTTB), ideal CTTB | [`target::Cttb`], [`target::IdealCttb`] |
//! | Full exit predictor + RAS + CTTB | [`predictor::TaskPredictor`] |
//! | CTTB-only (headerless) prediction | [`predictor::CttbOnlyPredictor`] |
//! | Scalar bimodal / two-level (intra-task) | [`scalar::Bimodal`], [`scalar::TwoLevelGag`] |
//!
//! Two extensions beyond the paper, measured by the harness's `ext-*`
//! experiments: [`stale::StalePathPredictor`] (the §3.1 update-timing
//! idealisation made real) and [`tournament::TournamentPredictor`]
//! (a PATH/PER hybrid with a per-task chooser). |
//!
//! # Example: predicting task exits with a path-based predictor
//!
//! ```
//! use multiscalar_core::automata::LastExitHysteresis;
//! use multiscalar_core::dolc::Dolc;
//! use multiscalar_core::history::PathPredictor;
//! use multiscalar_core::predictor::{ExitPredictor, TaskDesc, ExitInfo};
//! use multiscalar_isa::{Addr, ExitIndex, ExitKind};
//!
//! // The paper's 6-5-8-9 (3) configuration: depth 6, 14-bit index, 16K entries.
//! let dolc = Dolc::new(6, 5, 8, 9, 3);
//! let mut pred: PathPredictor<LastExitHysteresis<2>> = PathPredictor::new(dolc);
//!
//! let task = TaskDesc::new(Addr(0x40), vec![
//!     ExitInfo { kind: ExitKind::Branch, target: Some(Addr(0x80)), return_addr: None },
//!     ExitInfo { kind: ExitKind::Branch, target: Some(Addr(0x44)), return_addr: None },
//! ]);
//!
//! // Feed a repeating behaviour; the predictor learns it.
//! for _ in 0..8 {
//!     let _ = pred.predict(&task);
//!     pred.update(&task, ExitIndex::new(1).unwrap());
//! }
//! assert_eq!(pred.predict(&task), ExitIndex::new(1).unwrap());
//! ```

pub mod automata;
pub mod confidence;
pub mod dolc;
pub mod fxhash;
pub mod history;
pub mod ideal;
pub mod lane;
pub mod pollution;
pub mod predictor;
pub mod rng;
pub mod scalar;
pub mod stale;
pub mod target;
pub mod tournament;
pub mod zoo;

pub use automata::{Automaton, AutomatonKind};
pub use dolc::Dolc;
pub use predictor::{ExitInfo, ExitPredictor, NextTaskPrediction, TaskDesc};
