//! Ideal (alias-free) predictors — the reference models of paper §5.2.
//!
//! "We define ideal to mean there is no aliasing in any of the data
//! structures": every distinct (task, history) state gets its own
//! automaton, realised here with hash maps instead of finite tables.
//!
//! At history depth 0 all three schemes degenerate to one automaton per
//! static task, which is why the paper's Figure 7 curves converge at the
//! left edge — reproduced by this crate's tests.

use crate::automata::Automaton;
use crate::dolc::{PathKey, PathRegister, MAX_PATH_KEY_DEPTH};
use crate::fxhash::FxHashMap;
use crate::history::SingleExitMode;
use crate::predictor::{ExitPredictor, TaskDesc};
use crate::rng::XorShift64;
use multiscalar_isa::ExitIndex;

const EXIT0: ExitIndex = match ExitIndex::new(0) {
    Some(e) => e,
    None => unreachable!(),
};

/// Ideal GLOBAL: automaton per (task address, exact exit history of the
/// last `depth` task steps).
#[derive(Debug, Clone)]
pub struct IdealGlobal<A: Automaton> {
    depth: u32,
    hist: u64,
    map: FxHashMap<(u32, u64), A>,
    tie: XorShift64,
}

impl<A: Automaton> IdealGlobal<A> {
    /// Creates an ideal GLOBAL predictor with `depth` steps of exit history.
    ///
    /// # Panics
    ///
    /// Panics if `depth > 32` (history is packed 2 bits per step).
    pub fn new(depth: u32) -> IdealGlobal<A> {
        assert!(depth <= 32);
        IdealGlobal {
            depth,
            hist: 0,
            map: FxHashMap::default(),
            tie: XorShift64::default(),
        }
    }

    /// Number of distinct (task, history) states seen.
    pub fn states(&self) -> usize {
        self.map.len()
    }

    fn key(&self, task: &TaskDesc) -> (u32, u64) {
        let m = if self.depth == 0 {
            0
        } else {
            (1u64 << (2 * self.depth)) - 1
        };
        (task.entry().0, self.hist & m)
    }
}

impl<A: Automaton> ExitPredictor for IdealGlobal<A> {
    fn predict(&mut self, task: &TaskDesc) -> ExitIndex {
        let key = self.key(task);
        match self.map.get(&key) {
            Some(a) => a.predict(&mut self.tie),
            None => A::default().predict(&mut self.tie),
        }
    }

    fn update(&mut self, task: &TaskDesc, actual: ExitIndex) {
        let key = self.key(task);
        self.map.entry(key).or_default().update(actual);
        self.hist = (self.hist << 2) | actual.as_u8() as u64;
    }

    fn states_touched(&self) -> usize {
        self.states()
    }
}

/// Ideal PER: one unbounded history register per static task, automaton per
/// (task address, that task's own exit history).
#[derive(Debug, Clone)]
pub struct IdealPer<A: Automaton> {
    depth: u32,
    // Dense direct-indexed history table (entry addresses are small program
    // offsets); grown on demand so the per-event path never hashes.
    hists: Vec<u64>,
    map: FxHashMap<(u32, u64), A>,
    tie: XorShift64,
}

impl<A: Automaton> IdealPer<A> {
    /// Creates an ideal PER predictor with `depth` steps of per-task
    /// history.
    ///
    /// # Panics
    ///
    /// Panics if `depth > 32`.
    pub fn new(depth: u32) -> IdealPer<A> {
        assert!(depth <= 32);
        IdealPer {
            depth,
            hists: Vec::new(),
            map: FxHashMap::default(),
            tie: XorShift64::default(),
        }
    }

    /// Number of distinct (task, history) states seen.
    pub fn states(&self) -> usize {
        self.map.len()
    }

    fn key(&self, task: &TaskDesc) -> (u32, u64) {
        let m = if self.depth == 0 {
            0
        } else {
            (1u64 << (2 * self.depth)) - 1
        };
        let h = self
            .hists
            .get(task.entry().0 as usize)
            .copied()
            .unwrap_or(0);
        (task.entry().0, h & m)
    }
}

impl<A: Automaton> ExitPredictor for IdealPer<A> {
    fn predict(&mut self, task: &TaskDesc) -> ExitIndex {
        let key = self.key(task);
        match self.map.get(&key) {
            Some(a) => a.predict(&mut self.tie),
            None => A::default().predict(&mut self.tie),
        }
    }

    fn update(&mut self, task: &TaskDesc, actual: ExitIndex) {
        let key = self.key(task);
        self.map.entry(key).or_default().update(actual);
        let i = task.entry().0 as usize;
        if i >= self.hists.len() {
            self.hists.resize(i + 1, 0);
        }
        self.hists[i] = (self.hists[i] << 2) | actual.as_u8() as u64;
    }

    fn states_touched(&self) -> usize {
        self.states()
    }
}

/// Ideal PATH: automaton per (task address, exact sequence of the last
/// `depth` task addresses) — unique path identification, no folding, no
/// aliasing.
#[derive(Debug, Clone)]
pub struct IdealPath<A: Automaton> {
    path: PathRegister,
    map: FxHashMap<(u32, PathKey), A>,
    tie: XorShift64,
    mode: SingleExitMode,
}

impl<A: Automaton> IdealPath<A> {
    /// Creates an ideal PATH predictor of the given depth, with the paper's
    /// single-exit optimisation enabled.
    pub fn new(depth: u32) -> IdealPath<A> {
        Self::with_mode(depth, SingleExitMode::default())
    }

    /// Creates an ideal PATH predictor with an explicit single-exit policy.
    ///
    /// # Panics
    ///
    /// Panics if `depth` exceeds [`MAX_PATH_KEY_DEPTH`] (the paper's sweeps
    /// stop at 8).
    pub fn with_mode(depth: u32, mode: SingleExitMode) -> IdealPath<A> {
        assert!(
            depth as usize <= MAX_PATH_KEY_DEPTH,
            "ideal PATH depth {depth} too deep"
        );
        IdealPath {
            path: PathRegister::new(depth as usize),
            map: FxHashMap::default(),
            tie: XorShift64::default(),
            mode,
        }
    }

    /// Number of distinct (task, path) states seen — the "ideal
    /// implementation" curve of the paper's Figure 11.
    pub fn states(&self) -> usize {
        self.map.len()
    }

    fn skip(&self, task: &TaskDesc) -> bool {
        self.mode != SingleExitMode::Off && task.single_exit()
    }
}

impl<A: Automaton> ExitPredictor for IdealPath<A> {
    fn predict(&mut self, task: &TaskDesc) -> ExitIndex {
        if self.skip(task) {
            return EXIT0;
        }
        let key = (task.entry().0, self.path.key());
        match self.map.get(&key) {
            Some(a) => a.predict(&mut self.tie),
            None => A::default().predict(&mut self.tie),
        }
    }

    fn update(&mut self, task: &TaskDesc, actual: ExitIndex) {
        if self.skip(task) {
            if self.mode != SingleExitMode::SkipAll {
                self.path.push(task.entry());
            }
            return;
        }
        let key = (task.entry().0, self.path.key());
        self.map.entry(key).or_default().update(actual);
        self.path.push(task.entry());
    }

    fn states_touched(&self) -> usize {
        self.states()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::automata::LastExitHysteresis;
    use crate::predictor::ExitInfo;
    use multiscalar_isa::{Addr, ExitKind};

    type Leh2 = LastExitHysteresis<2>;

    fn e(i: u8) -> ExitIndex {
        ExitIndex::new(i).unwrap()
    }

    fn task(entry: u32, n: usize) -> TaskDesc {
        let exits = (0..n)
            .map(|i| ExitInfo {
                kind: ExitKind::Branch,
                target: Some(Addr(entry + 10 + i as u32)),
                return_addr: None,
            })
            .collect();
        TaskDesc::new(Addr(entry), exits)
    }

    /// Predecessor-correlated pattern (same as history.rs tests): a random
    /// predecessor (P1 or P2, both taking their own exit 0) determines the
    /// exit of the following task T. Only PATH can identify the
    /// predecessor; exit histories are indistinguishable.
    fn run_correlated<P: ExitPredictor>(p: &mut P) -> usize {
        let t = task(0x08, 2);
        let p1 = task(0x11, 2);
        let p2 = task(0x22, 2);
        let mut rng = XorShift64::new(77);
        let mut misses = 0;
        for i in 0..140 {
            let (pred_task, actual) = if rng.next_below(2) == 0 {
                (&p1, e(0))
            } else {
                (&p2, e(1))
            };
            let _ = p.predict(pred_task);
            p.update(pred_task, e(0));
            let got = p.predict(&t);
            if i >= 40 && got != actual {
                misses += 1;
            }
            p.update(&t, actual);
        }
        misses
    }

    #[test]
    fn ideal_path_separates_predecessors_ideal_global_cannot() {
        let mut path: IdealPath<Leh2> = IdealPath::new(2);
        assert_eq!(run_correlated(&mut path), 0);

        let mut global: IdealGlobal<Leh2> = IdealGlobal::new(2);
        assert!(
            run_correlated(&mut global) >= 25,
            "GLOBAL sees identical exit histories for both predecessors"
        );

        let mut per: IdealPer<Leh2> = IdealPer::new(2);
        // PER sees only T's own (random) exit stream, so it also fails.
        assert!(run_correlated(&mut per) >= 25);
    }

    #[test]
    fn depth_zero_schemes_coincide() {
        // At depth 0 all three ideal schemes are "one automaton per static
        // task" and must produce identical predictions on any stream.
        let mut g: IdealGlobal<Leh2> = IdealGlobal::new(0);
        let mut p: IdealPer<Leh2> = IdealPer::new(0);
        let mut t: IdealPath<Leh2> = IdealPath::with_mode(0, SingleExitMode::Off);
        let mut rng = XorShift64::new(11);
        for _ in 0..500 {
            let entry = 0x40 + (rng.next_below(8) * 0x10);
            let td = task(entry, 3);
            let actual = e(rng.next_below(3) as u8);
            let pg = g.predict(&td);
            let pp = p.predict(&td);
            let pt = t.predict(&td);
            assert_eq!(pg, pp);
            assert_eq!(pp, pt);
            g.update(&td, actual);
            p.update(&td, actual);
            t.update(&td, actual);
        }
    }

    #[test]
    fn ideal_path_state_count_grows_with_distinct_paths() {
        let mut p: IdealPath<Leh2> = IdealPath::new(3);
        let mut rng = XorShift64::new(5);
        for _ in 0..300 {
            let td = task(0x10 * (1 + rng.next_below(16)), 2);
            let _ = p.predict(&td);
            p.update(&td, e(rng.next_below(2) as u8));
        }
        let s = p.states();
        assert!(s > 16, "distinct paths should multiply states: {s}");
        assert_eq!(p.states_touched(), s);
    }

    #[test]
    fn unseen_state_predicts_default() {
        let mut p: IdealPath<Leh2> = IdealPath::new(4);
        let td = task(0xAA0, 2);
        assert_eq!(
            p.predict(&td),
            e(0),
            "cold prediction is the automaton default"
        );
    }

    #[test]
    fn single_exit_tasks_skip_state_creation() {
        let mut p: IdealPath<Leh2> = IdealPath::new(2);
        let td = task(0x50, 1);
        for _ in 0..5 {
            let _ = p.predict(&td);
            p.update(&td, e(0));
        }
        assert_eq!(p.states(), 0);
    }
}
