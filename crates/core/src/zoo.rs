//! The predictor zoo: exit-predictor families *beyond* the paper's GLOBAL /
//! PER / PATH trio, built from the same parts (automata PHTs, DOLC paths,
//! confidence estimation) to probe the design space the paper opens.
//!
//! * [`GshareExitPredictor`] — gshare (McFarling 1993) transplanted to task
//!   exits: the global *exit-number* history is XORed with task-address bits
//!   to index the PHT, instead of concatenated-and-folded as in
//!   [`crate::history::GlobalPredictor`]. XOR dispersion gives each
//!   (history, task) pair its own likely slot without widening the table.
//! * [`GatedHybridPredictor`] — a confidence-gated selector over a cheap
//!   per-task LEH bank and the paper's PATH scheme. Where the
//!   [`crate::tournament::TournamentPredictor`] learns a per-task *choice*,
//!   this one tracks each component's correct-streak confidence (CIR
//!   estimators, as in `ext-confidence`) and asks the component that has
//!   recently been right; PATH wins ties since it is the paper's winner.
//!
//! Both families are exercised by the harness's `ext-zoo` ranking experiment
//! and by the fuzz corpus, and obey the paper's single-exit rule (§6.1):
//! single-exit tasks predict exit 0 without touching any table, but still
//! advance global history so they remain part of the path identity.

use crate::automata::Automaton;
use crate::confidence::ConfidenceEstimator;
use crate::dolc::Dolc;
use crate::history::PathPredictor;
use crate::predictor::{ExitPredictor, TaskDesc};
use crate::rng::XorShift64;
use multiscalar_isa::ExitIndex;

const EXIT0: ExitIndex = match ExitIndex::new(0) {
    Some(e) => e,
    None => unreachable!(),
};

/// Marks a PHT slot as touched, returning 1 if newly touched.
#[inline]
fn touch(touched: &mut [u64], idx: usize) -> usize {
    let (w, b) = (idx / 64, idx % 64);
    let newly = (touched[w] >> b) & 1 == 0;
    touched[w] |= 1 << b;
    newly as usize
}

#[inline]
fn mask64(bits: u32) -> u64 {
    if bits >= 64 {
        u64::MAX
    } else {
        (1u64 << bits) - 1
    }
}

/// XOR-folds `value` (of `total_bits`) into `out_bits`.
#[inline]
fn fold(value: u128, total_bits: u32, out_bits: u32) -> usize {
    let m = (1u128 << out_bits) - 1;
    let mut acc = 0u128;
    let mut v = value;
    let mut consumed = 0;
    while consumed < total_bits.max(1) {
        acc ^= v & m;
        v >>= out_bits;
        consumed += out_bits;
    }
    acc as usize
}

// ---------------------------------------------------------------------------
// GSHARE
// ---------------------------------------------------------------------------

/// Gshare over task exits: `index = fold(exit history) XOR task address`.
///
/// The global register shifts in 2-bit exit numbers exactly like
/// [`crate::history::GlobalPredictor`]; the difference is the hash. XORing
/// history with the address spreads each task's contexts across the whole
/// PHT, where GLOBAL's concatenate-and-fold packs correlated contexts into
/// neighbouring slots and aliases faster at small tables.
///
/// # Example
///
/// ```
/// use multiscalar_core::automata::LastExitHysteresis;
/// use multiscalar_core::zoo::GshareExitPredictor;
///
/// let p: GshareExitPredictor<LastExitHysteresis<2>> = GshareExitPredictor::new(7, 14);
/// assert_eq!(p.storage_bytes(), 8 * 1024);
/// ```
#[derive(Debug, Clone)]
pub struct GshareExitPredictor<A: Automaton> {
    depth: u32,
    index_bits: u32,
    hist: u64,
    pht: Vec<A>,
    tie: XorShift64,
    touched: Vec<u64>,
    touched_count: usize,
}

impl<A: Automaton> GshareExitPredictor<A> {
    /// Creates a predictor with `depth` task steps of exit history and a
    /// `2^index_bits`-entry PHT.
    ///
    /// # Panics
    ///
    /// Panics if `2 * depth > 64` or `index_bits` is 0 or > 28.
    pub fn new(depth: u32, index_bits: u32) -> GshareExitPredictor<A> {
        assert!(2 * depth <= 64, "exit history limited to 32 steps");
        assert!((1..=28).contains(&index_bits));
        let n = 1usize << index_bits;
        GshareExitPredictor {
            depth,
            index_bits,
            hist: 0,
            pht: vec![A::default(); n],
            tie: XorShift64::default(),
            touched: vec![0; n.div_ceil(64)],
            touched_count: 0,
        }
    }

    /// History depth in task steps.
    pub fn depth(&self) -> u32 {
        self.depth
    }

    /// PHT storage in bytes (paper accounting).
    pub fn storage_bytes(&self) -> usize {
        self.pht.len() * A::STORAGE_BITS as usize / 8
    }

    fn index(&self, task: &TaskDesc) -> usize {
        let hist_bits = 2 * self.depth;
        let folded = fold(
            (self.hist & mask64(hist_bits)) as u128,
            hist_bits.max(1),
            self.index_bits,
        );
        folded ^ (task.entry().0 as usize & ((1 << self.index_bits) - 1))
    }
}

impl<A: Automaton> ExitPredictor for GshareExitPredictor<A> {
    fn predict(&mut self, task: &TaskDesc) -> ExitIndex {
        if task.single_exit() {
            return EXIT0;
        }
        let idx = self.index(task);
        self.pht[idx].predict(&mut self.tie)
    }

    fn update(&mut self, task: &TaskDesc, actual: ExitIndex) {
        if task.single_exit() {
            // Paper §6.1: no table access, but the step stays part of the
            // global history (exit 0 shifts in).
            self.hist <<= 2;
            return;
        }
        let idx = self.index(task);
        self.pht[idx].update(actual);
        self.touched_count += touch(&mut self.touched, idx);
        self.hist = (self.hist << 2) | actual.as_u8() as u64;
    }

    fn states_touched(&self) -> usize {
        self.touched_count
    }
}

// ---------------------------------------------------------------------------
// GATED HYBRID
// ---------------------------------------------------------------------------

/// A confidence-gated LEH + PATH selector.
///
/// Two components run side by side: a per-task bank of automata with no
/// history (a depth-0 [`PathPredictor`] — effectively an LEH automaton per
/// task address) and a full DOLC-indexed PATH predictor. Each component has
/// its own CIR [`ConfidenceEstimator`] tracking how often *it* has recently
/// been right per task; prediction asks the component whose streak clears
/// its threshold, preferring PATH (the paper's winner) when both or neither
/// qualify.
///
/// The hypothesis this tests: the tournament's 2-bit chooser is slow to
/// abandon a component after a phase change, while resetting streak
/// counters collapse to the fallback immediately.
///
/// # Example
///
/// ```
/// use multiscalar_core::automata::LastExitHysteresis;
/// use multiscalar_core::dolc::Dolc;
/// use multiscalar_core::zoo::GatedHybridPredictor;
///
/// let p: GatedHybridPredictor<LastExitHysteresis<2>> =
///     GatedHybridPredictor::new(10, Dolc::new(6, 5, 8, 9, 3), 10, 4);
/// # let _ = p;
/// ```
#[derive(Debug, Clone)]
pub struct GatedHybridPredictor<A: Automaton> {
    leh: PathPredictor<A>,
    path: PathPredictor<A>,
    leh_conf: ConfidenceEstimator,
    path_conf: ConfidenceEstimator,
}

impl<A: Automaton> GatedHybridPredictor<A> {
    /// Creates a gated hybrid: a `2^leh_bits`-entry historyless LEH bank, a
    /// PATH component configured by `path_dolc`, and two
    /// `2^conf_bits`-entry CIR estimators with the given streak threshold.
    ///
    /// # Panics
    ///
    /// Panics if `leh_bits` or `conf_bits` is 0 or > 28, or `threshold`
    /// is 0.
    pub fn new(
        leh_bits: u8,
        path_dolc: Dolc,
        conf_bits: u32,
        threshold: u8,
    ) -> GatedHybridPredictor<A> {
        GatedHybridPredictor {
            // Depth 0, current-task bits only: one automaton per (hashed)
            // task address, no path history.
            leh: PathPredictor::new(Dolc::new(0, 0, 0, leh_bits, 1)),
            path: PathPredictor::new(path_dolc),
            leh_conf: ConfidenceEstimator::new(conf_bits, threshold),
            path_conf: ConfidenceEstimator::new(conf_bits, threshold),
        }
    }

    /// The LEH (historyless) component.
    pub fn leh(&self) -> &PathPredictor<A> {
        &self.leh
    }

    /// The PATH component.
    pub fn path(&self) -> &PathPredictor<A> {
        &self.path
    }

    /// Total table storage in bytes (both PHTs plus both estimators).
    pub fn storage_bytes(&self) -> usize {
        self.leh.storage_bytes()
            + self.path.storage_bytes()
            + self.leh_conf.storage_bytes()
            + self.path_conf.storage_bytes()
    }

    fn select(&self, task: &TaskDesc, p_leh: ExitIndex, p_path: ExitIndex) -> ExitIndex {
        if self.path_conf.high_confidence_for(task) {
            p_path
        } else if self.leh_conf.high_confidence_for(task) {
            p_leh
        } else {
            p_path
        }
    }
}

impl<A: Automaton> ExitPredictor for GatedHybridPredictor<A> {
    fn predict(&mut self, task: &TaskDesc) -> ExitIndex {
        let p_leh = self.leh.predict(task);
        let p_path = self.path.predict(task);
        self.select(task, p_leh, p_path)
    }

    fn update(&mut self, task: &TaskDesc, actual: ExitIndex) {
        // Re-derive the component predictions (deterministic between
        // predict and update; see TournamentPredictor for the same idiom).
        let p_leh = self.leh.predict(task);
        let p_path = self.path.predict(task);
        // Single-exit tasks are trivially correct for every component (both
        // skip their PHTs and answer exit 0); training the streaks on them
        // would launder free hits into confidence, so gate the estimators
        // the same way the components gate their tables.
        if !task.single_exit() {
            self.leh_conf.update(task.entry(), p_leh == actual);
            self.path_conf.update(task.entry(), p_path == actual);
        }
        self.leh.update(task, actual);
        self.path.update(task, actual);
    }

    fn states_touched(&self) -> usize {
        self.leh.states_touched() + self.path.states_touched()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::automata::LastExitHysteresis;
    use crate::predictor::ExitInfo;
    use multiscalar_isa::{Addr, ExitKind};

    type Leh2 = LastExitHysteresis<2>;

    fn e(i: u8) -> ExitIndex {
        ExitIndex::new(i).unwrap()
    }

    fn task(entry: u32, n: usize) -> TaskDesc {
        let exits = (0..n)
            .map(|i| ExitInfo {
                kind: ExitKind::Branch,
                target: Some(Addr(entry + 10 + i as u32)),
                return_addr: None,
            })
            .collect();
        TaskDesc::new(Addr(entry), exits)
    }

    #[test]
    fn gshare_learns_alternation_through_global_history() {
        let mut p: GshareExitPredictor<Leh2> = GshareExitPredictor::new(4, 12);
        let t = task(0x100, 2);
        let mut misses = 0;
        for i in 0..200 {
            let actual = e((i % 2) as u8);
            let got = p.predict(&t);
            if i >= 50 && got != actual {
                misses += 1;
            }
            p.update(&t, actual);
        }
        assert_eq!(misses, 0, "alternation is visible in global exit history");
    }

    #[test]
    fn gshare_separates_tasks_with_identical_history() {
        // Two tasks seen under the same (empty-ish) global history but with
        // opposite biases: the XOR with the address must keep their PHT
        // slots apart. Run them strictly alternating so both always see the
        // same history bits.
        let mut p: GshareExitPredictor<Leh2> = GshareExitPredictor::new(2, 10);
        let a = task(0x111, 2);
        let b = task(0x2E2, 2);
        let mut misses = 0;
        for i in 0..300 {
            for (t, actual) in [(&a, e(0)), (&b, e(1))] {
                let got = p.predict(t);
                if i >= 100 && got != actual {
                    misses += 1;
                }
                p.update(t, actual);
            }
        }
        assert_eq!(misses, 0, "address XOR must separate the two tasks");
    }

    #[test]
    fn gshare_skips_tables_for_single_exit_tasks() {
        let mut p: GshareExitPredictor<Leh2> = GshareExitPredictor::new(4, 10);
        let t1 = task(0x10, 1);
        for _ in 0..10 {
            assert_eq!(p.predict(&t1), e(0));
            p.update(&t1, e(0));
        }
        assert_eq!(p.states_touched(), 0, "single-exit tasks skip the PHT");
    }

    #[test]
    fn gshare_storage_accounting() {
        let p: GshareExitPredictor<Leh2> = GshareExitPredictor::new(7, 14);
        assert_eq!(p.storage_bytes(), 8 * 1024);
        assert_eq!(p.depth(), 7);
    }

    #[test]
    fn gated_hybrid_tracks_path_on_predecessor_correlation() {
        // A random predecessor determines the next task's exit — PATH's
        // home turf; the LEH bank sees an i.i.d. stream.
        let mut h: GatedHybridPredictor<Leh2> =
            GatedHybridPredictor::new(8, Dolc::new(4, 4, 6, 6, 2), 10, 4);
        let t = task(0x08, 2);
        let p1 = task(0x11, 2);
        let p2 = task(0x22, 2);
        let mut rng = XorShift64::new(5);
        let mut misses = 0;
        for i in 0..600 {
            let (pred, actual) = if rng.next_below(2) == 0 {
                (&p1, e(0))
            } else {
                (&p2, e(1))
            };
            let _ = h.predict(pred);
            h.update(pred, e(0));
            if h.predict(&t) != actual && i >= 200 {
                misses += 1;
            }
            h.update(&t, actual);
        }
        assert!(misses <= 20, "gate must settle on PATH: {misses}");
    }

    #[test]
    fn gated_hybrid_falls_back_to_leh_when_path_is_noisy() {
        // Task exits depend only on the task itself (strong static bias per
        // task), while a *random* predecessor scrambles every path context:
        // PATH keeps relearning cold slots, the historyless LEH bank nails
        // it. The gate must fall back to LEH.
        let mut h: GatedHybridPredictor<Leh2> =
            GatedHybridPredictor::new(8, Dolc::new(6, 5, 8, 8, 2), 10, 4);
        let t = task(0x08, 2);
        let mut rng = XorShift64::new(7);
        let mut misses = 0;
        for i in 0..2000 {
            // A predecessor drawn from a large pool, each seen ~once: path
            // contexts for `t` almost never repeat.
            let pred = task(0x1000 + rng.next_below(512) * 4, 2);
            let pred_actual = e(rng.next_below(2) as u8);
            let _ = h.predict(&pred);
            h.update(&pred, pred_actual);
            let got = h.predict(&t);
            if i >= 800 && got != e(0) {
                misses += 1;
            }
            h.update(&t, e(0));
        }
        assert!(
            misses <= 24,
            "gate must fall back to the LEH component: {misses} / 1200"
        );
    }

    #[test]
    fn gated_hybrid_single_exit_tasks_do_not_build_confidence() {
        let mut h: GatedHybridPredictor<Leh2> =
            GatedHybridPredictor::new(8, Dolc::new(2, 4, 6, 6, 1), 8, 2);
        let t1 = task(0x40, 1);
        for _ in 0..20 {
            assert_eq!(h.predict(&t1), e(0));
            h.update(&t1, e(0));
        }
        assert_eq!(h.states_touched(), 0, "single-exit tasks touch no PHT");
    }

    #[test]
    fn gated_hybrid_storage_and_accessors() {
        let h: GatedHybridPredictor<Leh2> =
            GatedHybridPredictor::new(10, Dolc::new(6, 5, 8, 9, 3), 10, 4);
        // LEH bank: 2^10 * 4 bits = 512 B; PATH: 16K * 4 bits = 8 KB;
        // estimators: 2 * 2^10 * 4 bits = 1 KB.
        assert_eq!(h.storage_bytes(), 512 + 8 * 1024 + 1024);
        assert_eq!(h.leh().dolc().depth(), 0);
        assert_eq!(h.path().dolc().depth(), 6);
    }
}
