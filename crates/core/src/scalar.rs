//! Scalar (single-branch) predictors used for *intra-task* control-flow
//! speculation (paper §2.2) and as background for the two-level schemes
//! (paper §4.1).
//!
//! "The predictor used for intra-task prediction in our current Multiscalar
//! simulators is a bimodal predictor" — [`Bimodal`] is what the timing
//! simulator uses inside processing units. [`TwoLevelGag`] is provided for
//! completeness and comparison experiments.

use multiscalar_isa::Addr;

/// A 2-bit saturating counter, the classic taken/not-taken automaton.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Counter2 {
    value: u8,
}

impl Counter2 {
    /// Predicted direction: taken when the counter is in the upper half.
    #[inline]
    pub fn predict(self) -> bool {
        self.value >= 2
    }

    /// Trains toward the actual direction.
    #[inline]
    pub fn update(&mut self, taken: bool) {
        if taken {
            self.value = (self.value + 1).min(3);
        } else {
            self.value = self.value.saturating_sub(1);
        }
    }

    /// The raw counter state (0..=3).
    pub fn value(self) -> u8 {
        self.value
    }
}

/// A bimodal branch predictor: a table of 2-bit counters indexed by branch
/// address.
///
/// ```
/// use multiscalar_core::scalar::Bimodal;
/// use multiscalar_isa::Addr;
/// let mut b = Bimodal::new(10);
/// let pc = Addr(0x44);
/// b.update(pc, true);
/// b.update(pc, true);
/// assert!(b.predict(pc));
/// ```
#[derive(Debug, Clone)]
pub struct Bimodal {
    table: Vec<Counter2>,
    mask: u32,
}

impl Bimodal {
    /// Creates a bimodal predictor with `2^index_bits` counters.
    ///
    /// # Panics
    ///
    /// Panics if `index_bits` is 0 or > 28.
    pub fn new(index_bits: u32) -> Bimodal {
        assert!((1..=28).contains(&index_bits));
        Bimodal {
            table: vec![Counter2::default(); 1 << index_bits],
            mask: (1 << index_bits) - 1,
        }
    }

    #[inline]
    fn index(&self, pc: Addr) -> usize {
        (pc.0 & self.mask) as usize
    }

    /// Predicts the direction of the branch at `pc`.
    #[inline]
    pub fn predict(&self, pc: Addr) -> bool {
        self.table[self.index(pc)].predict()
    }

    /// Trains with the actual direction.
    #[inline]
    pub fn update(&mut self, pc: Addr, taken: bool) {
        let i = self.index(pc);
        self.table[i].update(taken);
    }

    /// Storage in bytes (2 bits per counter).
    pub fn storage_bytes(&self) -> usize {
        self.table.len() / 4
    }
}

/// A two-level GAg-style predictor: a global direction-history register
/// XOR-hashed with the branch address into a table of 2-bit counters
/// (gshare flavour of Yeh & Patt / Pan et al., paper §4.1).
#[derive(Debug, Clone)]
pub struct TwoLevelGag {
    table: Vec<Counter2>,
    history: u32,
    hist_bits: u32,
    mask: u32,
}

impl TwoLevelGag {
    /// Creates a predictor with `2^index_bits` counters and `hist_bits` of
    /// global history.
    ///
    /// # Panics
    ///
    /// Panics if `index_bits` is 0 or > 28, or `hist_bits > index_bits`.
    pub fn new(index_bits: u32, hist_bits: u32) -> TwoLevelGag {
        assert!((1..=28).contains(&index_bits));
        assert!(hist_bits <= index_bits);
        TwoLevelGag {
            table: vec![Counter2::default(); 1 << index_bits],
            history: 0,
            hist_bits,
            mask: (1 << index_bits) - 1,
        }
    }

    #[inline]
    fn index(&self, pc: Addr) -> usize {
        let h = self.history & ((1u32 << self.hist_bits) - 1);
        ((pc.0 ^ h) & self.mask) as usize
    }

    /// Predicts the direction of the branch at `pc` under current history.
    #[inline]
    pub fn predict(&self, pc: Addr) -> bool {
        self.table[self.index(pc)].predict()
    }

    /// Trains with the actual direction and shifts the history register.
    #[inline]
    pub fn update(&mut self, pc: Addr, taken: bool) {
        let i = self.index(pc);
        self.table[i].update(taken);
        self.history = (self.history << 1) | taken as u32;
    }
}

/// A two-level PAg-style predictor: per-branch history registers (hashed
/// by address) indexing a shared table of 2-bit counters — the local-
/// history counterpart of [`TwoLevelGag`] (Yeh & Patt's taxonomy, §4.1).
#[derive(Debug, Clone)]
pub struct TwoLevelPag {
    histories: Vec<u16>,
    table: Vec<Counter2>,
    hist_bits: u32,
    addr_mask: u32,
}

impl TwoLevelPag {
    /// Creates a predictor with `2^addr_bits` history registers of
    /// `hist_bits` bits each, and a `2^hist_bits`-entry counter table.
    ///
    /// # Panics
    ///
    /// Panics if `addr_bits` is 0 or > 20, or `hist_bits` is 0 or > 16.
    pub fn new(addr_bits: u32, hist_bits: u32) -> TwoLevelPag {
        assert!((1..=20).contains(&addr_bits));
        assert!((1..=16).contains(&hist_bits));
        TwoLevelPag {
            histories: vec![0; 1 << addr_bits],
            table: vec![Counter2::default(); 1 << hist_bits],
            hist_bits,
            addr_mask: (1 << addr_bits) - 1,
        }
    }

    #[inline]
    fn slot(&self, pc: Addr) -> usize {
        (pc.0 & self.addr_mask) as usize
    }

    #[inline]
    fn index(&self, pc: Addr) -> usize {
        (self.histories[self.slot(pc)] & ((1 << self.hist_bits) - 1) as u16) as usize
    }

    /// Predicts the direction of the branch at `pc` from its own history.
    #[inline]
    pub fn predict(&self, pc: Addr) -> bool {
        self.table[self.index(pc)].predict()
    }

    /// Trains with the actual direction and shifts the branch's history.
    #[inline]
    pub fn update(&mut self, pc: Addr, taken: bool) {
        let i = self.index(pc);
        self.table[i].update(taken);
        let slot = self.slot(pc);
        self.histories[slot] = (self.histories[slot] << 1) | taken as u16;
    }
}

/// McFarling's combining predictor: two component predictors and a chooser
/// table of 2-bit counters indexed by branch address (§4.1's \[10\]).
#[derive(Debug, Clone)]
pub struct McFarling {
    bimodal: Bimodal,
    gshare: TwoLevelGag,
    chooser: Vec<Counter2>,
    mask: u32,
}

impl McFarling {
    /// Creates a combiner of a bimodal and a gshare predictor, all tables
    /// `2^index_bits` entries.
    ///
    /// # Panics
    ///
    /// Panics if `index_bits` is 0 or > 28.
    pub fn new(index_bits: u32) -> McFarling {
        McFarling {
            bimodal: Bimodal::new(index_bits),
            gshare: TwoLevelGag::new(index_bits, index_bits.min(12)),
            chooser: vec![Counter2::default(); 1 << index_bits],
            mask: (1 << index_bits) - 1,
        }
    }

    #[inline]
    fn slot(&self, pc: Addr) -> usize {
        (pc.0 & self.mask) as usize
    }

    /// Predicts using the component the chooser currently favours
    /// (chooser "taken" = use gshare).
    #[inline]
    pub fn predict(&self, pc: Addr) -> bool {
        if self.chooser[self.slot(pc)].predict() {
            self.gshare.predict(pc)
        } else {
            self.bimodal.predict(pc)
        }
    }

    /// Trains both components and moves the chooser toward whichever was
    /// right when exactly one was.
    #[inline]
    pub fn update(&mut self, pc: Addr, taken: bool) {
        let b = self.bimodal.predict(pc) == taken;
        let g = self.gshare.predict(pc) == taken;
        let slot = self.slot(pc);
        match (b, g) {
            (true, false) => self.chooser[slot].update(false),
            (false, true) => self.chooser[slot].update(true),
            _ => {}
        }
        self.bimodal.update(pc, taken);
        self.gshare.update(pc, taken);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_has_two_miss_hysteresis() {
        let mut c = Counter2::default();
        c.update(true);
        c.update(true);
        c.update(true); // saturated at 3
        assert!(c.predict());
        c.update(false); // 2 — still taken
        assert!(c.predict());
        c.update(false); // 1 — flips
        assert!(!c.predict());
        assert_eq!(c.value(), 1);
    }

    #[test]
    fn bimodal_learns_biased_branches() {
        let mut b = Bimodal::new(8);
        let pc = Addr(0x123);
        let mut misses = 0;
        for i in 0..100 {
            // 90% taken.
            let taken = i % 10 != 0;
            if b.predict(pc) != taken {
                misses += 1;
            }
            b.update(pc, taken);
        }
        assert!(misses <= 25, "bimodal should track a strong bias: {misses}");
    }

    #[test]
    fn bimodal_aliases_distinct_branches_to_distinct_slots() {
        let mut b = Bimodal::new(8);
        b.update(Addr(1), true);
        b.update(Addr(1), true);
        assert!(b.predict(Addr(1)));
        assert!(
            !b.predict(Addr(2)),
            "independent slot stays default not-taken"
        );
        assert_eq!(b.storage_bytes(), 64);
    }

    #[test]
    fn pag_learns_per_branch_patterns_under_interleaving() {
        // Two branches with different periodic patterns interleaved:
        // global history gets confused, local history does not.
        let (a, b) = (Addr(0x10), Addr(0x21));
        let mut pag = TwoLevelPag::new(8, 8);
        let mut misses = 0;
        for i in 0..600 {
            let ta = i % 2 == 0; // A alternates
            let tb = i % 3 == 0; // B has period 3
            if i >= 200 {
                misses += (pag.predict(a) != ta) as u32;
                misses += (pag.predict(b) != tb) as u32;
            }
            pag.update(a, ta);
            pag.update(b, tb);
        }
        assert_eq!(misses, 0, "local histories must separate the two patterns");
    }

    #[test]
    fn mcfarling_is_at_least_as_good_as_its_best_component() {
        // A biased branch (bimodal turf) + an alternating branch (gshare
        // turf), interleaved.
        let (biased, alt) = (Addr(0x40), Addr(0x83));
        let mut comb = McFarling::new(12);
        let mut bim = Bimodal::new(12);
        let mut gag = TwoLevelGag::new(12, 10);
        let (mut cm, mut bm, mut gm) = (0, 0, 0);
        for i in 0..1000 {
            for (pc, taken) in [(biased, i % 16 != 0), (alt, i % 2 == 0)] {
                if i >= 300 {
                    cm += (comb.predict(pc) != taken) as u32;
                    bm += (bim.predict(pc) != taken) as u32;
                    gm += (gag.predict(pc) != taken) as u32;
                }
                comb.update(pc, taken);
                bim.update(pc, taken);
                gag.update(pc, taken);
            }
        }
        assert!(
            cm <= bm.min(gm) + 20,
            "combiner {cm} vs bimodal {bm} / gshare {gm}"
        );
    }

    #[test]
    fn gag_learns_alternation_that_bimodal_cannot() {
        let pc = Addr(0x77);
        let mut bim = Bimodal::new(10);
        let mut gag = TwoLevelGag::new(10, 8);
        let (mut bm, mut gm) = (0, 0);
        for i in 0..400 {
            let taken = i % 2 == 0;
            if i >= 100 {
                if bim.predict(pc) != taken {
                    bm += 1;
                }
                if gag.predict(pc) != taken {
                    gm += 1;
                }
            }
            bim.update(pc, taken);
            gag.update(pc, taken);
        }
        assert_eq!(gm, 0, "history predictor nails strict alternation");
        assert!(
            bm >= 100,
            "bimodal misses at least half of alternation: {bm}"
        );
    }
}
