//! Realizable (finite-table) history-based exit predictors: the GLOBAL,
//! PER and PATH schemes of paper §5.2, with PATH using the DOLC index
//! construction of §6.
//!
//! All three share the two-level structure of scalar branch prediction
//! (history → pattern history table of automata) adapted to the multi-way
//! task-exit problem:
//!
//! * [`GlobalPredictor`] — one global register of 2-bit *exit numbers*.
//! * [`PerTaskPredictor`] — per-task history registers and tables, hashed
//!   into finite structures (Yeh & Patt's PAp analog).
//! * [`PathPredictor`] — one global register of task *addresses* (the path),
//!   indexed through a [`Dolc`] configuration. The paper's winner.

use crate::automata::Automaton;
use crate::dolc::{Dolc, PathRegister};
use crate::predictor::{ExitPredictor, TaskDesc};
use crate::rng::XorShift64;
use multiscalar_isa::ExitIndex;

/// How a predictor treats single-exit tasks (paper §6.1): "a single exit is
/// always predicted and no updates are made to the history table".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SingleExitMode {
    /// No special handling: single-exit tasks access and train the PHT.
    Off,
    /// Predict exit 0 without touching the PHT, but still advance the
    /// path/history register (the task remains part of the path identity).
    /// This is the paper's optimization and the default.
    #[default]
    SkipPht,
    /// Additionally skip the history-register update, so only multi-exit
    /// tasks form the path (an ablation variant).
    SkipAll,
}

/// Marks a PHT slot as touched, returning 1 if newly touched.
#[inline]
fn touch(touched: &mut [u64], idx: usize) -> usize {
    let (w, b) = (idx / 64, idx % 64);
    let newly = (touched[w] >> b) & 1 == 0;
    touched[w] |= 1 << b;
    newly as usize
}

const EXIT0: ExitIndex = match ExitIndex::new(0) {
    Some(e) => e,
    None => unreachable!(),
};

// ---------------------------------------------------------------------------
// PATH
// ---------------------------------------------------------------------------

/// The paper's path-based exit predictor: a [`Dolc`]-indexed PHT of
/// automata, driven by a shift register of recent task addresses.
///
/// See the [crate-level example](crate) for usage.
#[derive(Debug, Clone)]
pub struct PathPredictor<A: Automaton> {
    dolc: Dolc,
    path: PathRegister,
    pht: Vec<A>,
    tie: XorShift64,
    mode: SingleExitMode,
    touched: Vec<u64>,
    touched_count: usize,
}

impl<A: Automaton> PathPredictor<A> {
    /// Creates a predictor with the default [`SingleExitMode::SkipPht`].
    pub fn new(dolc: Dolc) -> PathPredictor<A> {
        Self::with_mode(dolc, SingleExitMode::default())
    }

    /// Creates a predictor with an explicit single-exit policy.
    pub fn with_mode(dolc: Dolc, mode: SingleExitMode) -> PathPredictor<A> {
        let n = dolc.table_entries();
        PathPredictor {
            dolc,
            path: PathRegister::new(dolc.depth()),
            pht: vec![A::default(); n],
            tie: XorShift64::default(),
            mode,
            touched: vec![0; n.div_ceil(64)],
            touched_count: 0,
        }
    }

    /// The index configuration.
    pub fn dolc(&self) -> Dolc {
        self.dolc
    }

    /// PHT storage in bytes, accounted as in the paper
    /// (`entries * automaton bits / 8`).
    pub fn storage_bytes(&self) -> usize {
        self.pht.len() * A::STORAGE_BITS as usize / 8
    }

    /// Number of PHT entries.
    pub fn table_entries(&self) -> usize {
        self.pht.len()
    }

    fn skip(&self, task: &TaskDesc) -> bool {
        self.mode != SingleExitMode::Off && task.single_exit()
    }
}

impl<A: Automaton> ExitPredictor for PathPredictor<A> {
    fn predict(&mut self, task: &TaskDesc) -> ExitIndex {
        if self.skip(task) {
            return EXIT0;
        }
        let idx = self.dolc.index(&self.path, task.entry());
        self.pht[idx].predict(&mut self.tie)
    }

    fn update(&mut self, task: &TaskDesc, actual: ExitIndex) {
        if self.skip(task) {
            if self.mode != SingleExitMode::SkipAll {
                self.path.push(task.entry());
            }
            return;
        }
        let idx = self.dolc.index(&self.path, task.entry());
        self.pht[idx].update(actual);
        self.touched_count += touch(&mut self.touched, idx);
        self.path.push(task.entry());
    }

    fn states_touched(&self) -> usize {
        self.touched_count
    }
}

// ---------------------------------------------------------------------------
// GLOBAL
// ---------------------------------------------------------------------------

/// The GLOBAL scheme: one shared history register into which each task step
/// shifts the 2-bit number of the exit taken; the PHT is indexed by folding
/// the history together with low bits of the current task address.
#[derive(Debug, Clone)]
pub struct GlobalPredictor<A: Automaton> {
    depth: u32,
    index_bits: u32,
    hist: u64,
    pht: Vec<A>,
    tie: XorShift64,
    touched: Vec<u64>,
    touched_count: usize,
}

impl<A: Automaton> GlobalPredictor<A> {
    /// Creates a predictor with `depth` task steps of exit history and a
    /// `2^index_bits`-entry PHT.
    ///
    /// # Panics
    ///
    /// Panics if `2 * depth > 64` or `index_bits` is 0 or > 28.
    pub fn new(depth: u32, index_bits: u32) -> GlobalPredictor<A> {
        assert!(2 * depth <= 64, "exit history limited to 32 steps");
        assert!((1..=28).contains(&index_bits));
        let n = 1usize << index_bits;
        GlobalPredictor {
            depth,
            index_bits,
            hist: 0,
            pht: vec![A::default(); n],
            tie: XorShift64::default(),
            touched: vec![0; n.div_ceil(64)],
            touched_count: 0,
        }
    }

    /// History depth in task steps.
    pub fn depth(&self) -> u32 {
        self.depth
    }

    /// PHT storage in bytes (paper accounting).
    pub fn storage_bytes(&self) -> usize {
        self.pht.len() * A::STORAGE_BITS as usize / 8
    }

    fn index(&self, task: &TaskDesc) -> usize {
        // Intermediate = exit history (2*depth bits) ++ task address
        // (index_bits), folded by XOR into index_bits.
        let hist_bits = 2 * self.depth;
        let inter: u128 = ((self.hist & mask64(hist_bits)) as u128) << self.index_bits
            | (task.entry().0 & mask32(self.index_bits)) as u128;
        fold(inter, hist_bits + self.index_bits, self.index_bits)
    }
}

impl<A: Automaton> ExitPredictor for GlobalPredictor<A> {
    fn predict(&mut self, task: &TaskDesc) -> ExitIndex {
        let idx = self.index(task);
        self.pht[idx].predict(&mut self.tie)
    }

    fn update(&mut self, task: &TaskDesc, actual: ExitIndex) {
        let idx = self.index(task);
        self.pht[idx].update(actual);
        self.touched_count += touch(&mut self.touched, idx);
        self.hist = (self.hist << 2) | actual.as_u8() as u64;
    }

    fn states_touched(&self) -> usize {
        self.touched_count
    }
}

// ---------------------------------------------------------------------------
// PER
// ---------------------------------------------------------------------------

/// The PER scheme: per-task exit-history registers (a finite table hashed
/// by task address) and a PHT indexed by task address bits concatenated
/// with folded per-task history — the paper's analog of Yeh & Patt's PAp.
#[derive(Debug, Clone)]
pub struct PerTaskPredictor<A: Automaton> {
    depth: u32,
    addr_bits: u32,
    hist_bits: u32,
    hrt: Vec<u64>,
    pht: Vec<A>,
    tie: XorShift64,
    touched: Vec<u64>,
    touched_count: usize,
}

impl<A: Automaton> PerTaskPredictor<A> {
    /// Creates a predictor: `2^addr_bits` history registers of `depth` task
    /// steps each, and a `2^(addr_bits + hist_bits)`-entry PHT (each task's
    /// history folds into `hist_bits` bits).
    ///
    /// # Panics
    ///
    /// Panics if `2 * depth > 64` or the PHT would exceed 2^28 entries.
    pub fn new(depth: u32, addr_bits: u32, hist_bits: u32) -> PerTaskPredictor<A> {
        assert!(2 * depth <= 64);
        assert!(addr_bits + hist_bits <= 28);
        let n = 1usize << (addr_bits + hist_bits);
        PerTaskPredictor {
            depth,
            addr_bits,
            hist_bits,
            hrt: vec![0; 1usize << addr_bits],
            pht: vec![A::default(); n],
            tie: XorShift64::default(),
            touched: vec![0; n.div_ceil(64)],
            touched_count: 0,
        }
    }

    /// History depth in task steps.
    pub fn depth(&self) -> u32 {
        self.depth
    }

    /// PHT storage in bytes (paper accounting; the HRT is extra).
    pub fn storage_bytes(&self) -> usize {
        self.pht.len() * A::STORAGE_BITS as usize / 8
    }

    fn hrt_slot(&self, task: &TaskDesc) -> usize {
        (task.entry().0 & mask32(self.addr_bits)) as usize
    }

    fn index(&self, task: &TaskDesc) -> usize {
        let slot = self.hrt_slot(task);
        let hist = self.hrt[slot] & mask64(2 * self.depth);
        let folded = fold(hist as u128, 2 * self.depth, self.hist_bits.max(1))
            & mask32(self.hist_bits) as usize;
        (slot << self.hist_bits) | folded
    }
}

impl<A: Automaton> ExitPredictor for PerTaskPredictor<A> {
    fn predict(&mut self, task: &TaskDesc) -> ExitIndex {
        let idx = self.index(task);
        self.pht[idx].predict(&mut self.tie)
    }

    fn update(&mut self, task: &TaskDesc, actual: ExitIndex) {
        let idx = self.index(task);
        self.pht[idx].update(actual);
        self.touched_count += touch(&mut self.touched, idx);
        let slot = self.hrt_slot(task);
        self.hrt[slot] = (self.hrt[slot] << 2) | actual.as_u8() as u64;
    }

    fn states_touched(&self) -> usize {
        self.touched_count
    }
}

// ---------------------------------------------------------------------------
// helpers
// ---------------------------------------------------------------------------

#[inline]
fn mask32(bits: u32) -> u32 {
    if bits >= 32 {
        u32::MAX
    } else {
        (1u32 << bits) - 1
    }
}

#[inline]
fn mask64(bits: u32) -> u64 {
    if bits >= 64 {
        u64::MAX
    } else {
        (1u64 << bits) - 1
    }
}

/// XOR-folds `value` (of `total_bits`) into `out_bits`.
#[inline]
fn fold(value: u128, total_bits: u32, out_bits: u32) -> usize {
    let m = (1u128 << out_bits) - 1;
    let mut acc = 0u128;
    let mut v = value;
    let mut consumed = 0;
    while consumed < total_bits.max(1) {
        acc ^= v & m;
        v >>= out_bits;
        consumed += out_bits;
    }
    acc as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::automata::LastExitHysteresis;
    use crate::predictor::ExitInfo;
    use multiscalar_isa::{Addr, ExitKind};

    type Leh2 = LastExitHysteresis<2>;

    fn e(i: u8) -> ExitIndex {
        ExitIndex::new(i).unwrap()
    }

    fn task(entry: u32, n: usize) -> TaskDesc {
        let exits = (0..n)
            .map(|i| ExitInfo {
                kind: ExitKind::Branch,
                target: Some(Addr(entry + 10 + i as u32)),
                return_addr: None,
            })
            .collect();
        TaskDesc::new(Addr(entry), exits)
    }

    /// Drives a predictor with a path-correlated pattern: a *randomly*
    /// chosen predecessor (P1 or P2, both always taking their own exit 0)
    /// fully determines the exit of the following task T. Only a scheme
    /// that can identify the predecessor by *address* (PATH) predicts this;
    /// exit histories are identical for both predecessors and T's own exit
    /// stream is random. Returns the miss count over the final `measure`
    /// steps.
    ///
    /// Addresses are chosen to differ in their *low-order* bits — the bits
    /// DOLC harvests (paper §6.1, heuristic 1).
    fn correlated_misses<P: ExitPredictor>(p: &mut P, warmup: usize, measure: usize) -> usize {
        let t = task(0x08, 2);
        let p1 = task(0x11, 2);
        let p2 = task(0x22, 2);
        let mut rng = XorShift64::new(1234);
        let mut misses = 0;
        for i in 0..(warmup + measure) {
            let (pred_task, actual) = if rng.next_below(2) == 0 {
                (&p1, e(0))
            } else {
                (&p2, e(1))
            };
            // Predecessor step (it always takes its own exit 0).
            let _ = p.predict(pred_task);
            p.update(pred_task, e(0));
            // The correlated task.
            let got = p.predict(&t);
            if i >= warmup && got != actual {
                misses += 1;
            }
            p.update(&t, actual);
        }
        misses
    }

    #[test]
    fn path_predictor_exploits_predecessor_correlation() {
        let mut p: PathPredictor<Leh2> = PathPredictor::new(Dolc::new(2, 6, 8, 8, 2));
        let misses = correlated_misses(&mut p, 20, 100);
        assert_eq!(
            misses, 0,
            "depth-2 path history must separate the two predecessors"
        );
    }

    #[test]
    fn depth_zero_path_predictor_cannot_learn_correlation() {
        let mut p: PathPredictor<Leh2> = PathPredictor::new(Dolc::new(0, 0, 0, 12, 1));
        let misses = correlated_misses(&mut p, 20, 100);
        assert!(
            misses >= 25,
            "a per-task automaton cannot see the predecessor: {misses}"
        );
    }

    #[test]
    fn global_predictor_exploits_exit_correlation() {
        // GLOBAL sees predecessor *exit numbers*, not addresses. Both
        // predecessors take exit 0, so their histories are identical —
        // GLOBAL cannot tell them apart: the paper's key weakness vs PATH.
        let mut p: GlobalPredictor<Leh2> = GlobalPredictor::new(4, 12);
        let misses = correlated_misses(&mut p, 20, 100);
        assert!(
            misses >= 25,
            "GLOBAL cannot distinguish same-exit predecessors: {misses}"
        );

        // But with alternating *exits* it learns: the correlated task's own
        // previous exit alternates, which is visible in global history.
        let mut p: GlobalPredictor<Leh2> = GlobalPredictor::new(4, 12);
        let t = task(0x100, 2);
        let mut misses = 0;
        for i in 0..200 {
            let actual = e((i % 2) as u8);
            let got = p.predict(&t);
            if i >= 50 && got != actual {
                misses += 1;
            }
            p.update(&t, actual);
        }
        assert_eq!(misses, 0, "alternation is visible in global exit history");
    }

    #[test]
    fn per_task_predictor_learns_cyclic_behaviour() {
        let mut p: PerTaskPredictor<Leh2> = PerTaskPredictor::new(4, 8, 6);
        let t = task(0x80, 3);
        // Period-3 cycle of exits.
        let mut misses = 0;
        for i in 0..300 {
            let actual = e((i % 3) as u8);
            let got = p.predict(&t);
            if i >= 100 && got != actual {
                misses += 1;
            }
            p.update(&t, actual);
        }
        assert_eq!(
            misses, 0,
            "PER must learn a short cycle at one decision point"
        );
    }

    #[test]
    fn single_exit_tasks_do_not_touch_pht_by_default() {
        let mut p: PathPredictor<Leh2> = PathPredictor::new(Dolc::new(2, 4, 6, 6, 1));
        let t1 = task(0x10, 1);
        for _ in 0..10 {
            assert_eq!(p.predict(&t1), e(0));
            p.update(&t1, e(0));
        }
        assert_eq!(p.states_touched(), 0, "single-exit tasks skip the PHT");

        let mut p2: PathPredictor<Leh2> =
            PathPredictor::with_mode(Dolc::new(2, 4, 6, 6, 1), SingleExitMode::Off);
        for _ in 0..10 {
            let _ = p2.predict(&t1);
            p2.update(&t1, e(0));
        }
        assert!(
            p2.states_touched() > 0,
            "mode Off trains on single-exit tasks"
        );
    }

    #[test]
    fn states_touched_counts_distinct_entries() {
        let mut p: PathPredictor<Leh2> = PathPredictor::new(Dolc::new(1, 0, 8, 8, 1));
        for a in 0..50u32 {
            let t = task(a * 4, 2);
            let _ = p.predict(&t);
            p.update(&t, e(0));
        }
        let touched = p.states_touched();
        assert!(touched > 1 && touched <= 50);
        // Replaying the same tasks adds no new states if paths repeat.
        let before = p.states_touched();
        let t = task(0, 2);
        let _ = p.predict(&t);
        p.update(&t, e(0));
        assert!(p.states_touched() >= before);
    }

    #[test]
    fn storage_accounting() {
        let p: PathPredictor<Leh2> = PathPredictor::new(Dolc::new(6, 5, 8, 9, 3));
        // 16K entries * 4 bits = 8 KB — the paper's Figure 10 table size.
        assert_eq!(p.storage_bytes(), 8 * 1024);
        assert_eq!(p.table_entries(), 16 * 1024);

        let g: GlobalPredictor<Leh2> = GlobalPredictor::new(7, 15);
        assert_eq!(g.storage_bytes(), 16 * 1024, "Table 4's 16 KB PHT");

        let per: PerTaskPredictor<Leh2> = PerTaskPredictor::new(7, 8, 7);
        assert_eq!(per.storage_bytes(), 16 * 1024);
    }

    #[test]
    fn fold_consumes_all_bits() {
        assert_eq!(fold(0b1010_1010, 8, 4), 0b1010 ^ 0b1010);
        assert_eq!(fold(0xFF, 8, 8), 0xFF);
        // Flipping a high bit changes the output.
        assert_ne!(fold(1 << 13, 14, 7), fold(0, 14, 7));
    }
}
