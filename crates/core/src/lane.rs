//! Lane-packed (SWAR) automata: many predictors per machine word.
//!
//! The paper's automata are tiny by design — voting counters are 2–3 bits
//! and LEH hysteresis is 1–2 bits — so a single `u64` holds 4–32
//! independent automaton instances. This module exploits that for the
//! harness's fused sweeps (fig10/fig11-style grids train many PATH
//! configurations over one trace walk): [`LanePacked`] stores a
//! struct-of-arrays pattern history table whose entry `j` packs lane `k` =
//! *predictor `k`'s* automaton for index `j`, and [`BatchedExitPredictor`]
//! answers "predict + update" for every lane of a sweep point in one call.
//!
//! Three properties make the packing free of per-lane branching:
//!
//! * **update is branchless lane arithmetic** — equality of each lane's
//!   stored exit with the broadcast actual exit is detected with XOR and a
//!   shift-OR fold to each lane's low bit, then increment/decrement/replace
//!   masks are expanded over the affected fields by multiplication, and one
//!   masked add/subtract trains every lane at once;
//! * **gather/scatter needs no shifts** — predictor `k` always lives in
//!   lane `k`, so reading its table entry is a masked load and writing it
//!   back is a masked read-modify-write, even when the lanes index
//!   different table entries;
//! * **the path window is shared** — every predictor in a fused sweep
//!   observes the same task stream, so one most-recent-first window (sized
//!   to the deepest configuration) replaces per-predictor
//!   [`crate::dolc::PathRegister`]s bit-exactly
//!   ([`crate::dolc::Dolc::index_window`]).
//!
//! # Bit-identity contract
//!
//! For every implementing family, the packed trajectory is **bit-identical**
//! to the scalar [`Automaton`]: `lanes_update` commutes with
//! `encode`/`decode`, and `lanes_predict` returns exactly what the scalar
//! `predict` would. The equivalence is enforced by exhaustive and seeded
//! randomized tests in this module. `VC RANDOM` deliberately has **no**
//! [`LaneAutomaton`] impl: its tie-break consumes the per-predictor
//! [`XorShift64`] stream, and reproducing that stream exactly across packed
//! lanes is impractical — callers dispatch RANDOM sweeps to the scalar
//! engine instead (the harness has a test proving the fallback).

use crate::automata::{Automaton, LastExit, LastExitHysteresis, VotingCounters};
use crate::dolc::Dolc;
use crate::predictor::TaskDesc;
use crate::rng::XorShift64;
use multiscalar_isa::{ExitIndex, MAX_EXITS};
use std::marker::PhantomData;

/// Widest fan-out a batched sweep supports: 32 two-bit [`LastExit`] lanes.
pub const MAX_FUSED_LANES: usize = 32;

/// A word with bit 0 of every `lane_bits`-wide lane set.
const fn lane_lsb(lane_bits: u32) -> u64 {
    let mut w = 0u64;
    let mut i = 0;
    while i < 64 / lane_bits {
        w |= 1 << (i * lane_bits);
        i += 1;
    }
    w
}

/// An [`Automaton`] family that can be packed many-per-word and trained
/// with branchless lane arithmetic.
///
/// Lane `k` occupies bits `k*LANE_BITS .. (k+1)*LANE_BITS` of a `u64`;
/// `encode`/`decode` define the per-lane state image (all-zero must be the
/// default state), and the two `lanes_*` operations act on **all** lanes of
/// a word simultaneously, bit-identically to the scalar automaton.
pub trait LaneAutomaton: Automaton {
    /// Width of one lane in bits (a divisor of 64).
    const LANE_BITS: u32;

    /// Lanes per word.
    const LANES: usize = (64 / Self::LANE_BITS) as usize;

    /// Bit 0 of every lane.
    const LANE_LSB: u64 = lane_lsb(Self::LANE_BITS);

    /// Mask of lane 0.
    const LANE_MASK: u64 = (1u64 << Self::LANE_BITS) - 1;

    /// The exit each lane currently predicts, returned in the low 2 bits of
    /// the corresponding lane (all other bits zero). Must equal what the
    /// scalar [`Automaton::predict`] of each decoded lane returns.
    fn lanes_predict(word: u64) -> u64;

    /// Trains every lane with the actual exit taken, exactly as
    /// [`Automaton::update`] would train each decoded lane.
    fn lanes_update(word: u64, actual: u8) -> u64;

    /// This automaton's state as a lane image (`< 2^LANE_BITS`); the
    /// default state must encode to 0.
    fn encode(&self) -> u64;

    /// Inverse of [`encode`](Self::encode).
    fn decode(lane: u64) -> Self;
}

impl LaneAutomaton for LastExit {
    const LANE_BITS: u32 = 2;

    fn lanes_predict(word: u64) -> u64 {
        // Each 2-bit lane *is* the remembered exit.
        word
    }

    fn lanes_update(_word: u64, actual: u8) -> u64 {
        // Every lane forgets its exit and takes the actual one.
        Self::LANE_LSB * actual as u64
    }

    fn encode(&self) -> u64 {
        self.last().as_u8() as u64
    }

    fn decode(lane: u64) -> Self {
        LastExit::from_exit(ExitIndex::new((lane & 0b11) as u8).expect("2-bit exit"))
    }
}

impl<const BITS: u8> LaneAutomaton for LastExitHysteresis<BITS> {
    // 2 exit bits + up to 2 confidence bits; bit 3 stays zero for BITS=1.
    const LANE_BITS: u32 = {
        assert!(BITS >= 1 && BITS <= 2, "LEH lanes support 1 or 2 bits");
        4
    };

    fn lanes_predict(word: u64) -> u64 {
        word & (Self::LANE_LSB * 0b11)
    }

    fn lanes_update(word: u64, actual: u8) -> u64 {
        let lsb = Self::LANE_LSB;
        let exit_mask = lsb * 0b11;
        let bcast = lsb * actual as u64;
        // Fold "stored exit != actual" down to each lane's low bit.
        let x = (word ^ bcast) & exit_mask;
        let neq = (x | (x >> 1)) & lsb;
        let eq = neq ^ lsb;
        // Confidence saturation/emptiness flags, also at each lane's low bit.
        let c0 = (word >> 2) & lsb;
        let (sat, zero) = if BITS == 1 {
            (c0, c0 ^ lsb)
        } else {
            let c1 = (word >> 3) & lsb;
            (c0 & c1, (c0 | c1) ^ lsb)
        };
        // Correct => gain confidence; wrong => drain it, or replace the
        // exit once it is gone (the scalar three-way branch, as masks).
        let inc = eq & (sat ^ lsb);
        let dec = neq & (zero ^ lsb);
        let repl = neq & zero;
        let trained = word + (inc << 2) - (dec << 2);
        let repl_mask = repl * 0b11;
        (trained & !repl_mask) | (bcast & repl_mask)
    }

    fn encode(&self) -> u64 {
        self.exit().as_u8() as u64 | (self.confidence() as u64) << 2
    }

    fn decode(lane: u64) -> Self {
        LastExitHysteresis::from_parts(
            ExitIndex::new((lane & 0b11) as u8).expect("2-bit exit"),
            ((lane >> 2) & 0b11) as u8,
        )
    }
}

impl<const BITS: u8> LaneAutomaton for VotingCounters<BITS, true> {
    // 4 counters of BITS bits + 2 MRU bits fit a 16-bit lane with room to
    // spare; the unused top bits stay zero.
    const LANE_BITS: u32 = {
        assert!(
            BITS >= 1 && BITS <= 3,
            "VC lanes support 1- to 3-bit counters"
        );
        16
    };

    fn lanes_predict(word: u64) -> u64 {
        // The vote (argmax + MRU tie-break) is control-flow heavy, so each
        // lane reuses the scalar automaton verbatim — bit-identity by
        // construction. MRU tie-breaking never consumes the generator.
        let mut tie = XorShift64::default();
        let mut out = 0u64;
        let mut k = 0u32;
        while (k as usize) < Self::LANES {
            let shift = k * Self::LANE_BITS;
            let lane = (word >> shift) & Self::LANE_MASK;
            out |= (Self::decode(lane).predict(&mut tie).as_u8() as u64) << shift;
            k += 1;
        }
        out
    }

    fn lanes_update(word: u64, actual: u8) -> u64 {
        let lsb = Self::LANE_LSB;
        let mut w = word;
        for j in 0..MAX_EXITS {
            let off = j as u32 * BITS as u32;
            let f = w >> off;
            // AND/OR-fold counter field j of every lane to the lane's low
            // bit: all-ones = saturated, any-one = non-zero.
            let mut all = f;
            let mut any = f;
            let mut b = 1;
            while b < BITS as u32 {
                all &= f >> b;
                any |= f >> b;
                b += 1;
            }
            let (all, any) = (all & lsb, any & lsb);
            // The actual exit's counter saturating-increments in every
            // lane; the other three saturating-decrement.
            let sel = 0u64.wrapping_sub((j == actual as usize) as u64);
            let inc = (all ^ lsb) & sel;
            let dec = any & !sel;
            w = w + (inc << off) - (dec << off);
        }
        let mru_off = MAX_EXITS as u32 * BITS as u32;
        let mru_mask = (lsb * 0b11) << mru_off;
        (w & !mru_mask) | ((lsb * actual as u64) << mru_off)
    }

    fn encode(&self) -> u64 {
        let mut lane = (self.mru() as u64) << (MAX_EXITS as u32 * BITS as u32);
        for (j, &c) in self.counters().iter().enumerate() {
            lane |= (c as u64) << (j as u32 * BITS as u32);
        }
        lane
    }

    fn decode(lane: u64) -> Self {
        let field = (1u64 << BITS) - 1;
        let counters = std::array::from_fn(|j| ((lane >> (j as u32 * BITS as u32)) & field) as u8);
        let mru = ((lane >> (MAX_EXITS as u32 * BITS as u32)) & 0b11) as u8;
        VotingCounters::from_parts(counters, mru)
    }
}

/// A struct-of-arrays pattern history table: entry `j` is one `u64` whose
/// lane `k` holds *predictor `k`'s* automaton state for index `j`.
///
/// Because a predictor owns a fixed lane across all entries, gathering the
/// (generally different) entries the predictors index is a shift-free OR of
/// masked loads, and scattering the trained word back is a masked
/// read-modify-write per lane.
#[derive(Debug, Clone)]
pub struct LanePacked<A: LaneAutomaton> {
    words: Vec<u64>,
    _family: PhantomData<A>,
}

impl<A: LaneAutomaton> LanePacked<A> {
    /// A table of `entries` all-default automata in every lane.
    pub fn new(entries: usize) -> LanePacked<A> {
        debug_assert_eq!(A::default().encode(), 0, "default state must be 0");
        LanePacked {
            words: vec![0; entries],
            _family: PhantomData,
        }
    }

    /// Number of table entries (per lane).
    pub fn entries(&self) -> usize {
        self.words.len()
    }

    /// Collects lane `k` of entry `idxs[k]` for each `k` into one word.
    #[inline]
    pub fn gather(&self, idxs: &[usize]) -> u64 {
        debug_assert!(idxs.len() <= A::LANES);
        let mut word = 0u64;
        let mut mask = A::LANE_MASK;
        for &idx in idxs {
            word |= self.words[idx] & mask;
            mask <<= A::LANE_BITS;
        }
        word
    }

    /// Writes lane `k` of `word` back into entry `idxs[k]` for each `k`.
    #[inline]
    pub fn scatter(&mut self, idxs: &[usize], word: u64) {
        debug_assert!(idxs.len() <= A::LANES);
        let mut mask = A::LANE_MASK;
        for &idx in idxs {
            let w = &mut self.words[idx];
            *w = (*w & !mask) | (word & mask);
            mask <<= A::LANE_BITS;
        }
    }

    /// Decodes lane `lane` of entry `entry` (inspection/tests).
    pub fn lane(&self, lane: usize, entry: usize) -> A {
        A::decode((self.words[entry] >> (lane as u32 * A::LANE_BITS)) & A::LANE_MASK)
    }
}

/// A batch of path-based exit predictors trained over one shared trace
/// walk: lane `k` replays exactly what a scalar
/// [`PathPredictor<A>`](crate::history::PathPredictor) configured with
/// `configs[k]` would do — same [`Dolc`] indexing, same
/// [`SkipPht`](crate::history::SingleExitMode::SkipPht) single-exit
/// handling, same per-lane `states_touched` accounting — but one
/// [`step`](Self::step) call answers predict + update for every lane.
#[derive(Debug, Clone)]
pub struct BatchedExitPredictor<A: LaneAutomaton> {
    dolcs: Vec<Dolc>,
    pht: LanePacked<A>,
    /// Shared path window, most recent first; `window_len` entries valid.
    window: Vec<u32>,
    window_len: usize,
    /// One touched-entry bitmap of `words_per_lane` words per lane.
    touched: Vec<u64>,
    touched_counts: Vec<usize>,
    words_per_lane: usize,
}

impl<A: LaneAutomaton> BatchedExitPredictor<A> {
    /// Builds a batch over `configs`, one lane per configuration, or `None`
    /// when the batch shape does not fit: no configurations, or more than
    /// [`LaneAutomaton::LANES`] of them. Configurations may differ in depth
    /// and index width; the table and window are sized to the largest.
    pub fn new(configs: &[Dolc]) -> Option<BatchedExitPredictor<A>> {
        if configs.is_empty() || configs.len() > A::LANES {
            return None;
        }
        let entries = configs.iter().map(|d| d.table_entries()).max()?;
        let max_depth = configs.iter().map(|d| d.depth()).max()?;
        let words_per_lane = entries.div_ceil(64);
        Some(BatchedExitPredictor {
            dolcs: configs.to_vec(),
            pht: LanePacked::new(entries),
            window: vec![0; max_depth],
            window_len: 0,
            touched: vec![0; configs.len() * words_per_lane],
            touched_counts: vec![0; configs.len()],
            words_per_lane,
        })
    }

    /// Number of active lanes (= configurations).
    pub fn lanes(&self) -> usize {
        self.dolcs.len()
    }

    /// Distinct PHT entries lane `lane` has updated — matches the scalar
    /// predictor's `states_touched()`.
    pub fn states_touched(&self, lane: usize) -> usize {
        self.touched_counts[lane]
    }

    /// The exits the lanes would predict for `task` right now, in the low
    /// 2 bits of each lane, without training. Single-exit tasks predict
    /// exit 0 in every lane (the `SkipPht` fast path).
    pub fn predict_word(&self, task: &TaskDesc) -> u64 {
        if task.single_exit() {
            return 0;
        }
        let mut idxs = [0usize; MAX_FUSED_LANES];
        for (k, d) in self.dolcs.iter().enumerate() {
            idxs[k] = d.index_window(&self.window, self.window_len, task.entry());
        }
        A::lanes_predict(self.pht.gather(&idxs[..self.dolcs.len()]))
    }

    /// Predict + update for every lane in one call: returns a mask with bit
    /// `k` set when lane `k` mispredicted `actual`, and trains every lane —
    /// bit-identically to running each scalar predictor's `predict` then
    /// `update` for this task event.
    pub fn step(&mut self, task: &TaskDesc, actual: ExitIndex) -> u32 {
        let entry = task.entry();
        if task.single_exit() {
            // SkipPht: predict exit 0 without consulting the table, train
            // nothing, keep the path moving.
            self.push(entry.0);
            return if actual.index() == 0 {
                0
            } else {
                self.all_lanes_mask()
            };
        }
        let n = self.dolcs.len();
        let mut idxs = [0usize; MAX_FUSED_LANES];
        for (k, d) in self.dolcs.iter().enumerate() {
            idxs[k] = d.index_window(&self.window, self.window_len, entry);
        }
        let word = self.pht.gather(&idxs[..n]);
        let miss = Self::miss_mask(A::lanes_predict(word), actual.as_u8(), n);
        self.pht
            .scatter(&idxs[..n], A::lanes_update(word, actual.as_u8()));
        for (k, &idx) in idxs[..n].iter().enumerate() {
            let slot = &mut self.touched[k * self.words_per_lane + idx / 64];
            let bit = 1u64 << (idx % 64);
            if *slot & bit == 0 {
                *slot |= bit;
                self.touched_counts[k] += 1;
            }
        }
        self.push(entry.0);
        miss
    }

    /// Bit `k` set for every active lane.
    fn all_lanes_mask(&self) -> u32 {
        let n = self.dolcs.len();
        if n >= 32 {
            u32::MAX
        } else {
            (1u32 << n) - 1
        }
    }

    /// Compresses per-lane "predicted != actual" (exit bits at each lane's
    /// bottom) into a dense per-lane bit mask.
    fn miss_mask(preds: u64, actual: u8, n: usize) -> u32 {
        let lsb = A::LANE_LSB;
        let x = (preds ^ (lsb * actual as u64)) & (lsb * 0b11);
        let neq = (x | (x >> 1)) & lsb;
        let mut miss = 0u32;
        for k in 0..n {
            miss |= (((neq >> (k as u32 * A::LANE_BITS)) & 1) as u32) << k;
        }
        miss
    }

    /// Shifts the newest task address into the shared window.
    #[inline]
    fn push(&mut self, addr: u32) {
        let d = self.window.len();
        if d == 0 {
            return;
        }
        self.window.copy_within(0..d - 1, 1);
        self.window[0] = addr;
        if self.window_len < d {
            self.window_len += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::PathPredictor;
    use crate::predictor::{ExitInfo, ExitPredictor};
    use multiscalar_isa::{Addr, ExitKind};
    use std::fmt::Debug;

    fn e(i: u8) -> ExitIndex {
        ExitIndex::new(i).unwrap()
    }

    /// Drives lane `lane` of a packed word and a scalar automaton through
    /// the same exit sequence, asserting predict + state + decode agree at
    /// every step.
    fn assert_lane_matches_scalar<A: LaneAutomaton + PartialEq + Debug>(
        seq: &[u8],
        lanes: &[usize],
    ) {
        for &lane in lanes {
            let shift = lane as u32 * A::LANE_BITS;
            let mut word = 0u64;
            let mut scalar = A::default();
            let mut tie = XorShift64::default();
            for &x in seq {
                let pred = (A::lanes_predict(word) >> shift) & 0b11;
                assert_eq!(
                    pred as u8,
                    scalar.predict(&mut tie).as_u8(),
                    "{} predict, lane {lane}, seq {seq:?}",
                    A::NAME
                );
                word = A::lanes_update(word, x);
                scalar.update(e(x));
                let got = (word >> shift) & A::LANE_MASK;
                assert_eq!(
                    got,
                    scalar.encode(),
                    "{} state, lane {lane}, seq {seq:?}",
                    A::NAME
                );
                assert_eq!(A::decode(got), scalar, "{} decode, lane {lane}", A::NAME);
            }
        }
    }

    /// Every exit sequence up to length 5, every lane position (the top
    /// lane exercises the saturation/carry edge of the word).
    fn exhaustive_short_sequences<A: LaneAutomaton + PartialEq + Debug>() {
        let lanes: Vec<usize> = (0..A::LANES).collect();
        for len in 1..=5u32 {
            for code in 0..(1u32 << (2 * len)) {
                let seq: Vec<u8> = (0..len).map(|i| ((code >> (2 * i)) & 3) as u8).collect();
                assert_lane_matches_scalar::<A>(&seq, &lanes);
            }
        }
    }

    #[test]
    fn exhaustive_short_sequences_match_scalar() {
        exhaustive_short_sequences::<LastExit>();
        exhaustive_short_sequences::<LastExitHysteresis<1>>();
        exhaustive_short_sequences::<LastExitHysteresis<2>>();
        exhaustive_short_sequences::<VotingCounters<2, true>>();
        exhaustive_short_sequences::<VotingCounters<3, true>>();
    }

    fn long_seeded_sequence<A: LaneAutomaton + PartialEq + Debug>(seed: u64) {
        let mut rng = XorShift64::new(seed);
        let seq: Vec<u8> = (0..20_000).map(|_| (rng.next_u64() & 3) as u8).collect();
        let lanes = [0, A::LANES / 2, A::LANES - 1];
        assert_lane_matches_scalar::<A>(&seq, &lanes);
    }

    #[test]
    fn long_seeded_sequences_match_scalar() {
        long_seeded_sequence::<LastExit>(0xA11CE);
        long_seeded_sequence::<LastExitHysteresis<1>>(0xB0B);
        long_seeded_sequence::<LastExitHysteresis<2>>(0xC0DE);
        long_seeded_sequence::<VotingCounters<2, true>>(0xD00D);
        long_seeded_sequence::<VotingCounters<3, true>>(0xE66);
    }

    /// Lanes holding *different* states must train independently: no carry,
    /// borrow, or mask may leak across a lane boundary.
    fn lanes_are_isolated<A: LaneAutomaton + PartialEq + Debug>(seed: u64) {
        let mut rng = XorShift64::new(seed);
        let mut scalars: Vec<A> = (0..A::LANES)
            .map(|k| {
                let mut a = A::default();
                for _ in 0..(3 * k) {
                    a.update(e((rng.next_u64() & 3) as u8));
                }
                a
            })
            .collect();
        let mut word = 0u64;
        for (k, s) in scalars.iter().enumerate() {
            word |= s.encode() << (k as u32 * A::LANE_BITS);
        }
        let mut tie = XorShift64::default();
        for _ in 0..5_000 {
            let preds = A::lanes_predict(word);
            for (k, s) in scalars.iter().enumerate() {
                let shift = k as u32 * A::LANE_BITS;
                assert_eq!(
                    ((preds >> shift) & 0b11) as u8,
                    s.predict(&mut tie).as_u8(),
                    "{} lane {k} predict diverged",
                    A::NAME
                );
            }
            let x = (rng.next_u64() & 3) as u8;
            word = A::lanes_update(word, x);
            for (k, s) in scalars.iter_mut().enumerate() {
                s.update(e(x));
                assert_eq!(
                    (word >> (k as u32 * A::LANE_BITS)) & A::LANE_MASK,
                    s.encode(),
                    "{} lane {k} state diverged",
                    A::NAME
                );
            }
        }
    }

    #[test]
    fn mixed_lane_states_stay_isolated() {
        lanes_are_isolated::<LastExit>(1);
        lanes_are_isolated::<LastExitHysteresis<1>>(2);
        lanes_are_isolated::<LastExitHysteresis<2>>(3);
        lanes_are_isolated::<VotingCounters<2, true>>(4);
        lanes_are_isolated::<VotingCounters<3, true>>(5);
    }

    #[test]
    fn top_lane_saturates_without_carry_out() {
        fn check<A: LaneAutomaton + PartialEq + Debug>() {
            let top = A::LANES - 1;
            let shift = top as u32 * A::LANE_BITS;
            let mut word = 0u64;
            let mut scalar = A::default();
            // Far past saturation, then a burst of contrary exits: the
            // moments a saturating add/sub would carry across the word edge.
            for _ in 0..12 {
                word = A::lanes_update(word, 3);
                scalar.update(e(3));
            }
            for _ in 0..12 {
                word = A::lanes_update(word, 0);
                scalar.update(e(0));
                assert_eq!(
                    (word >> shift) & A::LANE_MASK,
                    scalar.encode(),
                    "{}",
                    A::NAME
                );
            }
        }
        check::<LastExit>();
        check::<LastExitHysteresis<1>>();
        check::<LastExitHysteresis<2>>();
        check::<VotingCounters<2, true>>();
        check::<VotingCounters<3, true>>();
    }

    #[test]
    fn gather_scatter_round_trips_disjoint_entries() {
        let mut pht: LanePacked<LastExitHysteresis<2>> = LanePacked::new(64);
        // Lane k writes entry 63-k; other lanes/entries stay default.
        let idxs: Vec<usize> = (0..16).map(|k| 63 - k).collect();
        let word = LastExitHysteresis::<2>::LANE_LSB * 0b0111; // exit 3, conf 1
        pht.scatter(&idxs, word);
        assert_eq!(pht.gather(&idxs), word);
        for k in 0..16 {
            assert_eq!(pht.lane(k, 63 - k), LastExitHysteresis::from_parts(e(3), 1));
            assert_eq!(pht.lane(k, k), LastExitHysteresis::default());
        }
    }

    fn multi_exit_task(entry: u32, exits: usize) -> TaskDesc {
        TaskDesc::new(
            Addr(entry),
            (0..exits)
                .map(|i| ExitInfo {
                    kind: ExitKind::Branch,
                    target: Some(Addr(entry + 4 * (i as u32 + 1))),
                    return_addr: None,
                })
                .collect(),
        )
    }

    /// The end-to-end tentpole gate: a batched step stream over a task mix
    /// (including single-exit tasks) must match a bank of scalar
    /// `PathPredictor`s event for event — predictions, misses, and
    /// states-touched accounting.
    #[test]
    fn batched_predictor_matches_scalar_path_predictors() {
        type A = LastExitHysteresis<2>;
        let configs = [
            Dolc::new(0, 0, 0, 8, 1),
            Dolc::new(1, 0, 5, 5, 1),
            Dolc::new(2, 4, 5, 5, 2),
            Dolc::new(4, 3, 4, 5, 2),
            Dolc::new(6, 5, 8, 9, 3),
        ];
        let tasks: Vec<TaskDesc> = (0..12)
            .map(|t| {
                multi_exit_task(
                    0x100 + 16 * t,
                    if t % 3 == 0 { 1 } else { 2 + (t as usize % 3) },
                )
            })
            .collect();
        let mut batch: BatchedExitPredictor<A> =
            BatchedExitPredictor::new(&configs).expect("5 lanes fit");
        let mut scalars: Vec<PathPredictor<A>> =
            configs.iter().map(|&d| PathPredictor::new(d)).collect();
        let mut rng = XorShift64::new(0x5EED);
        for _ in 0..30_000 {
            let task = &tasks[(rng.next_u64() % tasks.len() as u64) as usize];
            let n_exits = task.exits().len() as u64;
            let actual = e((rng.next_u64() % n_exits) as u8);
            let preds = batch.predict_word(task);
            let miss = batch.step(task, actual);
            for (k, p) in scalars.iter_mut().enumerate() {
                let shift = k as u32 * A::LANE_BITS;
                let want = p.predict(task);
                assert_eq!(((preds >> shift) & 0b11) as u8, want.as_u8(), "lane {k}");
                assert_eq!(miss >> k & 1 == 1, want != actual, "lane {k} miss");
                p.update(task, actual);
            }
        }
        for (k, p) in scalars.iter().enumerate() {
            assert_eq!(batch.states_touched(k), p.states_touched(), "lane {k}");
        }
    }

    #[test]
    fn batch_shape_limits_are_enforced() {
        let cfg = Dolc::new(1, 0, 5, 5, 1);
        assert!(BatchedExitPredictor::<LastExitHysteresis<2>>::new(&[]).is_none());
        let too_many = vec![cfg; 17];
        assert!(
            BatchedExitPredictor::<LastExitHysteresis<2>>::new(&too_many).is_none(),
            "LEH packs 16 lanes, 17 configs must be rejected"
        );
        let five = vec![cfg; 5];
        assert!(BatchedExitPredictor::<VotingCounters<2, true>>::new(&five).is_none());
        assert!(BatchedExitPredictor::<VotingCounters<2, true>>::new(&five[..4]).is_some());
        let mut full = BatchedExitPredictor::<LastExit>::new(&[cfg; 32]).expect("32 LE lanes");
        assert_eq!(full.lanes(), 32);
        // All 32 lanes miss a non-zero exit on a single-exit task.
        let single = multi_exit_task(0x40, 1);
        assert_eq!(full.step(&single, e(1)), u32::MAX);
        assert_eq!(full.step(&single, e(0)), 0);
        assert_eq!(full.states_touched(31), 0, "SkipPht trains nothing");
    }
}
