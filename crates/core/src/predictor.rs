//! Shared prediction types, the [`ExitPredictor`] trait, and the composite
//! predictors: the paper's full mechanism ([`TaskPredictor`]) and the
//! headerless [`CttbOnlyPredictor`] (paper §5.4, §6.4.2).

use crate::automata::Automaton;
use crate::dolc::{Dolc, PathRegister};
use crate::history::PathPredictor;
use crate::target::{Cttb, ReturnAddressStack};
use multiscalar_isa::{Addr, ExitIndex, ExitKind};

/// One exit of a task as the sequencer sees it — the header fields relevant
/// to prediction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ExitInfo {
    /// The exit's control-flow class.
    pub kind: ExitKind,
    /// Target address if statically known (branches, calls).
    pub target: Option<Addr>,
    /// Return address for call exits.
    pub return_addr: Option<Addr>,
}

/// A static task as visible to predictors: its entry address (identity) and
/// its header exits in canonical order.
///
/// The simulator materialises one `TaskDesc` per static task from the task
/// former's headers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskDesc {
    entry: Addr,
    exits: Vec<ExitInfo>,
}

impl TaskDesc {
    /// Creates a task description.
    ///
    /// # Panics
    ///
    /// Panics if `exits` is empty or longer than
    /// [`multiscalar_isa::MAX_EXITS`].
    pub fn new(entry: Addr, exits: Vec<ExitInfo>) -> TaskDesc {
        assert!(
            !exits.is_empty() && exits.len() <= multiscalar_isa::MAX_EXITS,
            "a task has 1..=4 exits, got {}",
            exits.len()
        );
        TaskDesc { entry, exits }
    }

    /// The task's entry address — its identity for all predictors.
    pub fn entry(&self) -> Addr {
        self.entry
    }

    /// The exits in canonical order.
    pub fn exits(&self) -> &[ExitInfo] {
        &self.exits
    }

    /// Number of exits (1..=4).
    pub fn num_exits(&self) -> usize {
        self.exits.len()
    }

    /// `true` if the task has a single exit (trivially predictable).
    pub fn single_exit(&self) -> bool {
        self.exits.len() == 1
    }

    /// The exit at `index`, clamped into range — an aliased automaton can
    /// predict an exit number the task does not have; clamping mirrors
    /// hardware reading past the populated header slots.
    pub fn exit_clamped(&self, index: ExitIndex) -> &ExitInfo {
        let i = index.index().min(self.exits.len() - 1);
        &self.exits[i]
    }
}

/// A task *exit* predictor: answers "which of the (up to four) exits will
/// this task take?".
///
/// Implementations: the real [`crate::history`] predictors (GLOBAL, PER,
/// PATH) and their alias-free [`crate::ideal`] counterparts.
pub trait ExitPredictor {
    /// Predicts the exit of `task`.
    fn predict(&mut self, task: &TaskDesc) -> ExitIndex;

    /// Informs the predictor of the actual exit and advances its history.
    ///
    /// Must be called exactly once per `predict`, in order. (The functional
    /// simulator updates immediately after each prediction, matching the
    /// paper's idealised update timing, §3.1.)
    fn update(&mut self, task: &TaskDesc, actual: ExitIndex);

    /// Number of distinct predictor states (PHT entries / automata) touched
    /// so far — the quantity plotted in the paper's Figure 11.
    fn states_touched(&self) -> usize;
}

impl<P: ExitPredictor + ?Sized> ExitPredictor for Box<P> {
    fn predict(&mut self, task: &TaskDesc) -> ExitIndex {
        (**self).predict(task)
    }
    fn update(&mut self, task: &TaskDesc, actual: ExitIndex) {
        (**self).update(task, actual)
    }
    fn states_touched(&self) -> usize {
        (**self).states_touched()
    }
}

/// A full next-task prediction: the exit plus the target address (`None`
/// when no target source exists, e.g. a cold target buffer or empty RAS).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NextTaskPrediction {
    /// Predicted exit index.
    pub exit: ExitIndex,
    /// Predicted address of the next task.
    pub target: Option<Addr>,
}

/// The paper's complete task predictor: an exit predictor plus a
/// return-address stack and a small correlated task target buffer for
/// indirect exits (the configuration of Table 3, "Exit predictor with RAS &
/// CTTB", and of every row of Table 4).
///
/// Generic over the exit-prediction scheme `E` so the same composite serves
/// Simple / GLOBAL / PER / PATH comparisons; [`TaskPredictor::path`] builds
/// the paper's recommended PATH + LEH-2bit flavour.
///
/// # Example
///
/// ```
/// use multiscalar_core::automata::LastExitHysteresis;
/// use multiscalar_core::dolc::Dolc;
/// use multiscalar_core::predictor::{ExitInfo, TaskDesc, TaskPredictor};
/// use multiscalar_isa::{Addr, ExitIndex, ExitKind};
///
/// let mut p = TaskPredictor::<multiscalar_core::history::PathPredictor<LastExitHysteresis<2>>>
///     ::path(Dolc::new(7, 6, 9, 9, 3), Dolc::new(7, 4, 4, 5, 3), 64);
/// let task = TaskDesc::new(Addr(10), vec![ExitInfo {
///     kind: ExitKind::Branch, target: Some(Addr(20)), return_addr: None,
/// }]);
/// let pred = p.predict(&task);
/// assert_eq!(pred.target, Some(Addr(20)), "branch targets come from the header");
/// p.update(&task, ExitIndex::new(0).unwrap(), Addr(20));
/// ```
#[derive(Debug, Clone)]
pub struct TaskPredictor<E: ExitPredictor> {
    exit_pred: E,
    ras: ReturnAddressStack,
    cttb: Cttb,
    cttb_path: PathRegister,
}

impl<A: Automaton> TaskPredictor<PathPredictor<A>> {
    /// Builds the paper's flavour: a PATH exit predictor over `exit_dolc`
    /// with automaton `A`, plus RAS and CTTB.
    pub fn path(exit_dolc: Dolc, cttb_dolc: Dolc, ras_depth: usize) -> Self {
        TaskPredictor::new(PathPredictor::new(exit_dolc), cttb_dolc, ras_depth)
    }
}

impl<E: ExitPredictor> TaskPredictor<E> {
    /// Creates a composite predictor from any exit predictor, a CTTB index
    /// configuration and a RAS depth.
    pub fn new(exit_pred: E, cttb_dolc: Dolc, ras_depth: usize) -> TaskPredictor<E> {
        TaskPredictor {
            exit_pred,
            ras: ReturnAddressStack::new(ras_depth),
            cttb_path: PathRegister::new(cttb_dolc.depth()),
            cttb: Cttb::new(cttb_dolc),
        }
    }

    /// The underlying exit predictor.
    pub fn exit_predictor(&self) -> &E {
        &self.exit_pred
    }

    /// The return-address stack.
    pub fn ras(&self) -> &ReturnAddressStack {
        &self.ras
    }

    /// Predicts the next task: which exit `task` takes and where it leads.
    pub fn predict(&mut self, task: &TaskDesc) -> NextTaskPrediction {
        let exit = self.exit_pred.predict(task);
        let spec = task.exit_clamped(exit);
        let target = match spec.kind {
            ExitKind::Branch | ExitKind::Call | ExitKind::Halt => spec.target,
            ExitKind::Return => self.ras.peek(),
            ExitKind::IndirectBranch | ExitKind::IndirectCall => {
                self.cttb.predict(&self.cttb_path, task.entry())
            }
        };
        NextTaskPrediction { exit, target }
    }

    /// Resolves the step: trains the exit predictor, maintains the RAS and
    /// trains the CTTB for indirect exits. `actual_target` is the entry of
    /// the task actually executed next.
    pub fn update(&mut self, task: &TaskDesc, actual: ExitIndex, actual_target: Addr) {
        self.exit_pred.update(task, actual);
        let spec = task.exit_clamped(actual);
        match spec.kind {
            ExitKind::Call | ExitKind::IndirectCall => {
                if let Some(ra) = spec.return_addr {
                    self.ras.push(ra);
                }
            }
            ExitKind::Return => {
                self.ras.pop();
            }
            _ => {}
        }
        if spec.kind.needs_target_buffer() {
            self.cttb
                .update(&self.cttb_path, task.entry(), actual_target);
        }
        self.cttb_path.push(task.entry());
    }
}

/// Headerless, CTTB-only task prediction (paper §5.4 / §6.4.2): the next
/// task *address* is predicted directly from a large correlated target
/// buffer, with no exit specifiers, no header targets and no RAS.
///
/// The paper shows this trades 4×–54% worse accuracy and 4× the storage
/// for not needing header bits in the ISA — reproduced by Table 3's
/// harness.
#[derive(Debug, Clone)]
pub struct CttbOnlyPredictor {
    cttb: Cttb,
    path: PathRegister,
}

impl CttbOnlyPredictor {
    /// Creates a predictor with the given index configuration.
    pub fn new(dolc: Dolc) -> CttbOnlyPredictor {
        CttbOnlyPredictor {
            path: PathRegister::new(dolc.depth()),
            cttb: Cttb::new(dolc),
        }
    }

    /// Predicts the next task's entry address (`None` while cold).
    pub fn predict(&mut self, current: Addr) -> Option<Addr> {
        self.cttb.predict(&self.path, current)
    }

    /// Trains with the actual next task address and advances the path.
    pub fn update(&mut self, current: Addr, actual_next: Addr) {
        self.cttb.update(&self.path, current, actual_next);
        self.path.push(current);
    }

    /// Storage accounted as in the paper: 4 bytes per entry.
    pub fn storage_bytes(&self) -> usize {
        self.cttb.storage_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::automata::LastExitHysteresis;

    type Leh2 = LastExitHysteresis<2>;

    fn e(i: u8) -> ExitIndex {
        ExitIndex::new(i).unwrap()
    }

    fn branch_exit(target: u32) -> ExitInfo {
        ExitInfo {
            kind: ExitKind::Branch,
            target: Some(Addr(target)),
            return_addr: None,
        }
    }

    fn predictor() -> TaskPredictor<PathPredictor<Leh2>> {
        TaskPredictor::path(Dolc::new(4, 4, 6, 6, 2), Dolc::new(4, 3, 4, 4, 2), 32)
    }

    #[test]
    fn task_desc_validates_exit_count() {
        let r = std::panic::catch_unwind(|| TaskDesc::new(Addr(0), vec![]));
        assert!(r.is_err(), "empty exits rejected");
        let r = std::panic::catch_unwind(|| TaskDesc::new(Addr(0), vec![branch_exit(1); 5]));
        assert!(r.is_err(), "five exits rejected");
    }

    #[test]
    fn exit_clamped_handles_aliased_predictions() {
        let t = TaskDesc::new(Addr(0), vec![branch_exit(5), branch_exit(9)]);
        assert_eq!(
            t.exit_clamped(e(3)).target,
            Some(Addr(9)),
            "clamped to last exit"
        );
        assert_eq!(t.exit_clamped(e(0)).target, Some(Addr(5)));
    }

    #[test]
    fn header_targets_used_for_branches_and_calls() {
        let mut p = predictor();
        let t = TaskDesc::new(
            Addr(100),
            vec![ExitInfo {
                kind: ExitKind::Call,
                target: Some(Addr(7)),
                return_addr: Some(Addr(101)),
            }],
        );
        assert_eq!(p.predict(&t).target, Some(Addr(7)));
    }

    #[test]
    fn ras_predicts_return_targets() {
        let mut p = predictor();
        // Task A calls (pushing return address 55)...
        let call_task = TaskDesc::new(
            Addr(10),
            vec![ExitInfo {
                kind: ExitKind::Call,
                target: Some(Addr(30)),
                return_addr: Some(Addr(55)),
            }],
        );
        p.predict(&call_task);
        p.update(&call_task, e(0), Addr(30));
        // ...the callee task returns: the RAS must supply 55.
        let ret_task = TaskDesc::new(
            Addr(30),
            vec![ExitInfo {
                kind: ExitKind::Return,
                target: None,
                return_addr: None,
            }],
        );
        let pred = p.predict(&ret_task);
        assert_eq!(pred.target, Some(Addr(55)));
        p.update(&ret_task, e(0), Addr(55));
        assert!(p.ras().is_empty());
    }

    #[test]
    fn cttb_learns_indirect_targets() {
        let mut p = predictor();
        let t = TaskDesc::new(
            Addr(20),
            vec![ExitInfo {
                kind: ExitKind::IndirectBranch,
                target: None,
                return_addr: None,
            }],
        );
        // Cold miss first.
        assert_eq!(p.predict(&t).target, None);
        // Re-executing the same task repeatedly saturates the path register
        // with its own entry, after which the CTTB index is stable and the
        // learned target must be returned.
        for _ in 0..8 {
            p.update(&t, e(0), Addr(77));
        }
        assert_eq!(p.predict(&t).target, Some(Addr(77)));
    }

    #[test]
    fn exit_predictor_learns_alternation_with_depth() {
        // A task alternating exits 0,1 is perfectly predictable with
        // path/exit history only if history distinguishes the instances;
        // with a self-loop the path is constant so LEH settles on one exit
        // and misses half. This documents the behaviour (not a bug): the
        // real signal appears when different *predecessors* correlate with
        // different exits, which integration tests exercise.
        let mut p = predictor();
        let t = TaskDesc::new(Addr(40), vec![branch_exit(40), branch_exit(80)]);
        let mut miss = 0;
        for i in 0..100u32 {
            let actual = e((i % 2) as u8);
            if p.predict(&t).exit != actual {
                miss += 1;
            }
            p.update(&t, actual, if actual == e(0) { Addr(40) } else { Addr(80) });
        }
        assert!(
            miss <= 60,
            "LEH should not do much worse than always-wrong-half: {miss}"
        );
    }

    #[test]
    fn cttb_only_predicts_repeating_sequences() {
        let mut p = CttbOnlyPredictor::new(Dolc::new(3, 4, 6, 8, 1));
        // A periodic task sequence A->B->C->A->...
        let seq = [Addr(100), Addr(200), Addr(300)];
        let mut misses = 0;
        for round in 0..50 {
            for i in 0..3 {
                let cur = seq[i];
                let next = seq[(i + 1) % 3];
                if p.predict(cur) != Some(next) && round > 1 {
                    misses += 1;
                }
                p.update(cur, next);
            }
        }
        assert_eq!(
            misses, 0,
            "a periodic sequence must be fully learned after warmup"
        );
    }

    #[test]
    fn cttb_only_reports_storage() {
        let p = CttbOnlyPredictor::new(Dolc::new(7, 5, 7, 7, 2));
        assert_eq!(
            p.storage_bytes(),
            (1 << Dolc::new(7, 5, 7, 7, 2).index_bits()) * 4
        );
    }
}
