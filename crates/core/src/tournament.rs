//! A tournament (hybrid) exit predictor — the natural extension the
//! paper's Figure 7 invites: PATH wins on four benchmarks but PER wins on
//! sc, so combine them with a per-task chooser (McFarling-style).
//!
//! Not part of the original paper; provided (and measured by the harness's
//! `ext-hybrid` experiment) as the design a follow-on implementation would
//! try first.

use crate::predictor::{ExitPredictor, TaskDesc};
use multiscalar_isa::ExitIndex;

/// Combines two exit predictors with a 2-bit chooser table indexed by task
/// address. Both components always train; the chooser trains toward
/// whichever component was right when exactly one of them was.
///
/// # Example
///
/// ```
/// use multiscalar_core::automata::LastExitHysteresis;
/// use multiscalar_core::dolc::Dolc;
/// use multiscalar_core::history::{PathPredictor, PerTaskPredictor};
/// use multiscalar_core::tournament::TournamentPredictor;
///
/// type Leh2 = LastExitHysteresis<2>;
/// let hybrid = TournamentPredictor::new(
///     PathPredictor::<Leh2>::new(Dolc::new(6, 5, 8, 9, 3)),
///     PerTaskPredictor::<Leh2>::new(7, 8, 6),
///     12,
/// );
/// # let _ = hybrid;
/// ```
#[derive(Debug, Clone)]
pub struct TournamentPredictor<P1, P2> {
    first: P1,
    second: P2,
    /// 2-bit counters: `>= 2` selects `second`.
    chooser: Vec<u8>,
    mask: u32,
}

impl<P1: ExitPredictor, P2: ExitPredictor> TournamentPredictor<P1, P2> {
    /// Creates a tournament over two components with a `2^index_bits`-entry
    /// chooser.
    ///
    /// # Panics
    ///
    /// Panics if `index_bits` is 0 or > 28.
    pub fn new(first: P1, second: P2, index_bits: u32) -> TournamentPredictor<P1, P2> {
        assert!((1..=28).contains(&index_bits));
        TournamentPredictor {
            first,
            second,
            chooser: vec![1; 1 << index_bits], // weakly prefer `first`
            mask: (1 << index_bits) - 1,
        }
    }

    fn slot(&self, task: &TaskDesc) -> usize {
        (task.entry().0 & self.mask) as usize
    }

    /// The first component.
    pub fn first(&self) -> &P1 {
        &self.first
    }

    /// The second component.
    pub fn second(&self) -> &P2 {
        &self.second
    }

    /// Chooser storage in bytes (2 bits per entry).
    pub fn chooser_bytes(&self) -> usize {
        self.chooser.len() / 4
    }
}

impl<P1: ExitPredictor, P2: ExitPredictor> ExitPredictor for TournamentPredictor<P1, P2> {
    fn predict(&mut self, task: &TaskDesc) -> ExitIndex {
        let p1 = self.first.predict(task);
        let p2 = self.second.predict(task);
        if self.chooser[self.slot(task)] >= 2 {
            p2
        } else {
            p1
        }
    }

    fn update(&mut self, task: &TaskDesc, actual: ExitIndex) {
        // Re-derive the component predictions (components are deterministic
        // between predict and update; VC RANDOM ties are the lone exception
        // and only add noise to the chooser).
        let p1 = self.first.predict(task);
        let p2 = self.second.predict(task);
        let slot = self.slot(task);
        match (p1 == actual, p2 == actual) {
            (true, false) => self.chooser[slot] = self.chooser[slot].saturating_sub(1),
            (false, true) => self.chooser[slot] = (self.chooser[slot] + 1).min(3),
            _ => {}
        }
        self.first.update(task, actual);
        self.second.update(task, actual);
    }

    fn states_touched(&self) -> usize {
        self.first.states_touched() + self.second.states_touched()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::automata::LastExitHysteresis;
    use crate::dolc::Dolc;
    use crate::history::{PathPredictor, PerTaskPredictor};
    use crate::predictor::ExitInfo;
    use crate::rng::XorShift64;
    use multiscalar_isa::{Addr, ExitKind};

    type Leh2 = LastExitHysteresis<2>;
    type Hybrid = TournamentPredictor<PathPredictor<Leh2>, PerTaskPredictor<Leh2>>;

    fn hybrid() -> Hybrid {
        TournamentPredictor::new(
            PathPredictor::new(Dolc::new(4, 4, 6, 6, 2)),
            // Depth-4 history folds to 8 bits losslessly (2 bits/step), so
            // the PER component resolves short cycles exactly.
            PerTaskPredictor::new(4, 8, 8),
            10,
        )
    }

    fn task(entry: u32, n: usize) -> TaskDesc {
        let exits = (0..n)
            .map(|i| ExitInfo {
                kind: ExitKind::Branch,
                target: Some(Addr(entry + 10 + i as u32)),
                return_addr: None,
            })
            .collect();
        TaskDesc::new(Addr(entry), exits)
    }

    fn e(i: u8) -> ExitIndex {
        ExitIndex::new(i).unwrap()
    }

    #[test]
    fn tracks_per_on_cyclic_behaviour() {
        // A period-3 cycle at a single decision point: PER's home turf.
        let mut h = hybrid();
        let t = task(0x40, 3);
        let mut misses = 0;
        for i in 0..600 {
            let actual = e((i % 3) as u8);
            if h.predict(&t) != actual && i >= 200 {
                misses += 1;
            }
            h.update(&t, actual);
        }
        assert!(
            misses <= 8,
            "hybrid must converge to the PER component: {misses}"
        );
    }

    #[test]
    fn tracks_path_on_predecessor_correlation() {
        // A random predecessor determines the next task's exit: PATH's
        // home turf (PER sees an i.i.d. stream).
        let mut h = hybrid();
        let t = task(0x08, 2);
        let p1 = task(0x11, 2);
        let p2 = task(0x22, 2);
        let mut rng = XorShift64::new(5);
        let mut misses = 0;
        for i in 0..600 {
            let (pred, actual) = if rng.next_below(2) == 0 {
                (&p1, e(0))
            } else {
                (&p2, e(1))
            };
            let _ = h.predict(pred);
            h.update(pred, e(0));
            if h.predict(&t) != actual && i >= 200 {
                misses += 1;
            }
            h.update(&t, actual);
        }
        assert!(
            misses <= 20,
            "hybrid must converge to the PATH component: {misses}"
        );
    }

    #[test]
    fn chooser_is_per_task() {
        // Task A is cyclic (PER wins), task B is predecessor-driven (PATH
        // wins); the hybrid must get *both* right simultaneously.
        let mut h = hybrid();
        let a = task(0x100, 3);
        let b_task = task(0x08, 2);
        let p1 = task(0x11, 2);
        let p2 = task(0x22, 2);
        let mut rng = XorShift64::new(6);
        let mut misses = 0;
        for i in 0..900 {
            let actual_a = e((i % 3) as u8);
            if h.predict(&a) != actual_a && i >= 400 {
                misses += 1;
            }
            h.update(&a, actual_a);

            let (pred, actual_b) = if rng.next_below(2) == 0 {
                (&p1, e(0))
            } else {
                (&p2, e(1))
            };
            let _ = h.predict(pred);
            h.update(pred, e(0));
            if h.predict(&b_task) != actual_b && i >= 400 {
                misses += 1;
            }
            h.update(&b_task, actual_b);
        }
        assert!(misses <= 40, "per-task chooser must satisfy both: {misses}");
    }

    #[test]
    fn accessors_and_storage() {
        let h = hybrid();
        assert_eq!(h.chooser_bytes(), 256);
        let _ = h.first();
        let _ = h.second();
    }
}
