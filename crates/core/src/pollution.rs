//! Wrong-path pollution — the paper's second §3.1 idealisation made
//! measurable.
//!
//! The paper's functional simulator "does not continue past a mispredicted
//! task, therefore no pollution of dynamic data structures occurs because
//! of speculative updates from mispredicted tasks. Our results are accurate
//! in this regard if the mispredict recovery mechanism completely repairs
//! data structures."
//!
//! In the real machine the sequencer runs ahead: after a misprediction it
//! dispatches several wrong-path tasks (up to the ring size) and pushes
//! their addresses into the speculative path-history register before the
//! squash. [`PollutedPathPredictor`] models this: on every misprediction it
//! injects a configurable number of wrong-path path-register updates, and
//! recovery either repairs the register (pops them — the paper's
//! assumption) or leaves them (a cheap implementation). Prediction automata
//! are only updated non-speculatively, as in two-level branch predictors
//! (§4.1), so the PHT itself is never polluted.
//!
//! Measured by the harness's `ext-pollution` experiment.

use crate::automata::Automaton;
use crate::dolc::{Dolc, PathRegister};
use crate::history::SingleExitMode;
use crate::predictor::{ExitPredictor, TaskDesc};
use crate::rng::XorShift64;
use multiscalar_isa::{Addr, ExitIndex};

const EXIT0: ExitIndex = match ExitIndex::new(0) {
    Some(e) => e,
    None => unreachable!(),
};

/// A path-based exit predictor with explicit wrong-path modelling.
///
/// `update_resolved` must be told the predicted and actual exits plus the
/// *addresses* control was predicted to reach, so the wrong-path excursion
/// can be replayed into the path register.
#[derive(Debug, Clone)]
pub struct PollutedPathPredictor<A: Automaton> {
    dolc: Dolc,
    path: PathRegister,
    pht: Vec<A>,
    tie: XorShift64,
    mode: SingleExitMode,
    /// Wrong-path tasks the sequencer runs ahead by before the squash.
    wrongpath_depth: usize,
    /// Whether recovery repairs the path register (the paper's assumption).
    repair: bool,
    pollutions: u64,
}

impl<A: Automaton> PollutedPathPredictor<A> {
    /// Creates a predictor that runs `wrongpath_depth` tasks down the wrong
    /// path on each misprediction, with or without register `repair`.
    pub fn new(dolc: Dolc, wrongpath_depth: usize, repair: bool) -> Self {
        PollutedPathPredictor {
            dolc,
            path: PathRegister::new(dolc.depth()),
            pht: vec![A::default(); dolc.table_entries()],
            tie: XorShift64::default(),
            mode: SingleExitMode::default(),
            wrongpath_depth,
            repair,
            pollutions: 0,
        }
    }

    fn skip(&self, task: &TaskDesc) -> bool {
        self.mode != SingleExitMode::Off && task.single_exit()
    }

    /// Predicts the exit of `task` from the (possibly polluted) path.
    pub fn predict(&mut self, task: &TaskDesc) -> ExitIndex {
        if self.skip(task) {
            return EXIT0;
        }
        let idx = self.dolc.index(&self.path, task.entry());
        self.pht[idx].predict(&mut self.tie)
    }

    /// Resolves a prediction. `predicted_target` is where the sequencer
    /// believed control would go; on a misprediction the wrong-path
    /// excursion is replayed before (optionally) repairing.
    pub fn update_resolved(
        &mut self,
        task: &TaskDesc,
        predicted: ExitIndex,
        actual: ExitIndex,
        predicted_target: Option<Addr>,
        actual_target: Addr,
    ) {
        // Non-speculative automaton training, as in §4.1.
        if !self.skip(task) {
            let idx = self.dolc.index(&self.path, task.entry());
            self.pht[idx].update(actual);
        }
        self.path.push(task.entry());

        let mispredicted = predicted != actual || predicted_target != Some(actual_target);
        if mispredicted && self.wrongpath_depth > 0 {
            // Speculative wrong-path excursion: the sequencer pushes the
            // predicted target and synthetic successors into the register.
            let saved = self.path.clone();
            let mut wrong = predicted_target.unwrap_or(actual_target);
            for _ in 0..self.wrongpath_depth {
                self.path.push(wrong);
                // A crude wrong-path walk: stride to a nearby address, as
                // the sequencer would follow stale header targets.
                wrong = Addr(wrong.0.wrapping_add(3));
            }
            self.pollutions += 1;
            if self.repair {
                self.path = saved;
            }
        }
    }

    /// Mispredictions that triggered a wrong-path excursion.
    pub fn pollutions(&self) -> u64 {
        self.pollutions
    }
}

/// Adapter: drives the polluted predictor through the standard
/// [`ExitPredictor`] interface by assuming the predicted target equals the
/// predicted exit's header target (exit pollution only).
#[derive(Debug, Clone)]
pub struct PollutedExitAdapter<A: Automaton> {
    inner: PollutedPathPredictor<A>,
    last_prediction: Option<ExitIndex>,
}

impl<A: Automaton> PollutedExitAdapter<A> {
    /// Wraps a polluted predictor.
    pub fn new(inner: PollutedPathPredictor<A>) -> Self {
        PollutedExitAdapter {
            inner,
            last_prediction: None,
        }
    }

    /// Mispredictions that triggered a wrong-path excursion.
    pub fn pollutions(&self) -> u64 {
        self.inner.pollutions()
    }
}

impl<A: Automaton> ExitPredictor for PollutedExitAdapter<A> {
    fn predict(&mut self, task: &TaskDesc) -> ExitIndex {
        let p = self.inner.predict(task);
        self.last_prediction = Some(p);
        p
    }

    fn update(&mut self, task: &TaskDesc, actual: ExitIndex) {
        let predicted = self.last_prediction.take().unwrap_or(actual);
        let predicted_target = task.exit_clamped(predicted).target;
        let actual_target = task.exit_clamped(actual).target.unwrap_or(task.entry());
        self.inner.update_resolved(
            task,
            predicted,
            actual,
            predicted_target.or(Some(actual_target)),
            actual_target,
        );
    }

    fn states_touched(&self) -> usize {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::automata::LastExitHysteresis;
    use crate::predictor::ExitInfo;
    use multiscalar_isa::ExitKind;

    type Leh2 = LastExitHysteresis<2>;

    fn task(entry: u32, n: usize) -> TaskDesc {
        let exits = (0..n)
            .map(|i| ExitInfo {
                kind: ExitKind::Branch,
                target: Some(Addr(entry + 10 + i as u32)),
                return_addr: None,
            })
            .collect();
        TaskDesc::new(Addr(entry), exits)
    }

    fn e(i: u8) -> ExitIndex {
        ExitIndex::new(i).unwrap()
    }

    /// Drives a pattern with occasional forced mispredictions and returns
    /// (misses, pollutions).
    fn run(depth: usize, repair: bool) -> (u64, u64) {
        let mut p: PollutedExitAdapter<Leh2> = PollutedExitAdapter::new(
            PollutedPathPredictor::new(Dolc::new(4, 4, 6, 6, 2), depth, repair),
        );
        let mut rng = XorShift64::new(3);
        let mut misses = 0;
        for i in 0..3000u32 {
            let t = task(0x10 + (i % 8) * 8, 2);
            // Mostly-stable outcomes with 10% noise: guarantees some
            // mispredictions to pollute with.
            let actual = if rng.next_below(10) == 0 { e(1) } else { e(0) };
            if p.predict(&t) != actual && i >= 500 {
                misses += 1;
            }
            p.update(&t, actual);
        }
        (misses, p.pollutions())
    }

    #[test]
    fn depth_zero_is_pollution_free() {
        let (m0, p0) = run(0, false);
        let (m0r, _) = run(0, true);
        assert_eq!(m0, m0r, "repair is irrelevant without an excursion");
        assert_eq!(p0, 0);
    }

    #[test]
    fn repair_bounds_the_damage() {
        let (repaired, pr) = run(4, true);
        let (polluted, pp) = run(4, false);
        assert!(pr > 0 && pp > 0, "the noise must cause excursions");
        assert!(
            polluted >= repaired,
            "unrepaired pollution cannot help: {polluted} vs {repaired}"
        );
        // Repaired behaviour equals the no-excursion baseline.
        let (baseline, _) = run(0, true);
        assert_eq!(repaired, baseline, "perfect repair restores the ideal");
    }

    #[test]
    fn pollution_causes_extra_misses_on_correlated_streams() {
        // A predecessor-correlated pattern where the path register matters:
        // pollution of the register must cost accuracy.
        let drive = |repair: bool| {
            let mut p: PollutedExitAdapter<Leh2> = PollutedExitAdapter::new(
                PollutedPathPredictor::new(Dolc::new(2, 6, 8, 8, 2), 3, repair),
            );
            let t = task(0x08, 2);
            let p1 = task(0x11, 2);
            let p2 = task(0x22, 2);
            let mut rng = XorShift64::new(7);
            let mut misses = 0u64;
            for i in 0..4000 {
                let (pred_task, mut actual) = if rng.next_below(2) == 0 {
                    (&p1, e(0))
                } else {
                    (&p2, e(1))
                };
                // 10% noise keeps mispredictions (and hence wrong-path
                // excursions) flowing even after the pattern is learned.
                if rng.next_below(10) == 0 {
                    actual = e(1 - actual.as_u8());
                }
                let _ = p.predict(pred_task);
                p.update(pred_task, e(0));
                // Count every prediction: unrepaired pollution creates
                // extra predictor states that each pay their own learning
                // cost, so the cumulative count must be strictly worse
                // (in steady state the extra states converge — which is
                // precisely why the paper could afford the idealisation).
                let _ = i;
                if p.predict(&t) != actual {
                    misses += 1;
                }
                p.update(&t, actual);
            }
            misses
        };
        let repaired = drive(true);
        let polluted = drive(false);
        assert!(
            polluted > repaired,
            "pollution must hurt a path-correlated stream: {polluted} vs {repaired}"
        );
    }
}
