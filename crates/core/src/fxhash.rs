//! A fast, deterministic hasher for the ideal predictors' alias-free state
//! maps.
//!
//! The ideal models key millions of per-event lookups by small `Copy` keys
//! (`(u32, u64)`, `(u32, PathKey)`). SipHash — the std default — is
//! overkill: these maps are never exposed to untrusted keys, their
//! iteration order is never observed (only `get`/`entry`/`len`), and the
//! simulation is single-keyed per run. The multiply-rotate scheme below
//! (the well-known "Fx" construction from rustc) is several times cheaper
//! per lookup and fully deterministic across platforms and runs.

use std::hash::{BuildHasherDefault, Hasher};

/// Multiply-rotate hasher (rustc's `FxHasher` construction).
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            self.add(u64::from_le_bytes(tail));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// A `HashMap` keyed through [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, BuildHasherDefault<FxHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hashing_is_deterministic_and_spreads() {
        let hash_of = |v: u64| {
            let mut h = FxHasher::default();
            h.write_u64(v);
            h.finish()
        };
        assert_eq!(hash_of(42), hash_of(42));
        let distinct: std::collections::BTreeSet<u64> = (0..1000).map(hash_of).collect();
        assert_eq!(distinct.len(), 1000, "no collisions on sequential keys");
    }

    #[test]
    fn map_behaves_like_default_hashmap() {
        let mut m: FxHashMap<(u32, u64), u32> = FxHashMap::default();
        for i in 0..500u32 {
            m.insert((i, u64::from(i) << 3), i * 2);
        }
        assert_eq!(m.len(), 500);
        for i in 0..500u32 {
            assert_eq!(m.get(&(i, u64::from(i) << 3)), Some(&(i * 2)));
        }
    }
}
