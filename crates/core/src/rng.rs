//! A tiny deterministic xorshift generator used for random tie-breaking.
//!
//! The paper's "VC RANDOM" automaton breaks counter ties randomly; for
//! reproducible experiments we use a seeded xorshift64* generator rather
//! than ambient randomness (a substitution documented in DESIGN.md).

/// A seeded xorshift64* pseudo-random generator.
///
/// Not cryptographically secure — it only supplies tie-break entropy.
///
/// ```
/// use multiscalar_core::rng::XorShift64;
/// let mut a = XorShift64::new(42);
/// let mut b = XorShift64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64(), "same seed, same stream");
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    /// Creates a generator from a seed (zero is remapped to a fixed
    /// non-zero constant, since xorshift cannot leave state 0).
    pub fn new(seed: u64) -> XorShift64 {
        XorShift64 {
            state: if seed == 0 {
                0x9E37_79B9_7F4A_7C15
            } else {
                seed
            },
        }
    }

    /// Next 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform value in `0..n`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn next_below(&mut self, n: u32) -> u32 {
        assert!(n > 0, "next_below(0)");
        // Modulo bias is negligible for the tiny n (<= 4) used here.
        (self.next_u64() % n as u64) as u32
    }
}

impl Default for XorShift64 {
    fn default() -> Self {
        XorShift64::new(0x5EED_5EED_5EED_5EED)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = XorShift64::new(7);
        let mut b = XorShift64::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = XorShift64::new(1);
        let mut b = XorShift64::new(2);
        let same = (0..10).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 10);
    }

    #[test]
    fn zero_seed_is_remapped() {
        let mut z = XorShift64::new(0);
        assert_ne!(z.next_u64(), 0);
    }

    #[test]
    fn next_below_is_in_range_and_covers() {
        let mut r = XorShift64::new(3);
        let mut seen = [false; 4];
        for _ in 0..200 {
            let v = r.next_below(4);
            assert!(v < 4);
            seen[v as usize] = true;
        }
        assert!(
            seen.iter().all(|&s| s),
            "all residues should appear: {seen:?}"
        );
    }

    #[test]
    #[should_panic(expected = "next_below(0)")]
    fn next_below_zero_panics() {
        XorShift64::new(1).next_below(0);
    }
}
