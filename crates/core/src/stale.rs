//! Delayed-update (stale) prediction — quantifying the paper's §3.1
//! idealisation.
//!
//! The paper's functional simulator updates predictor state *immediately*
//! after each prediction and notes: "A real implementation may make
//! predictions based on stale information while waiting for non-speculative
//! outcome information to return from the execution processors." This
//! module implements that real behaviour so the idealisation can be
//! measured: [`StalePathPredictor`] applies each PHT update only after the
//! outcome has "returned from the ring" — `delay` further task predictions
//! later.
//!
//! The path register itself is *not* delayed: the global sequencer knows
//! which task it is dispatching (the path is speculative but, under the
//! paper's perfect-repair assumption, always matches the actual task
//! sequence in a trace-driven run). Only pattern-table training lags.
//!
//! The harness's `ext-staleness` experiment sweeps the delay; the paper's
//! idealisation turns out to cost a few tenths of a percent at ring-sized
//! delays — see EXPERIMENTS.md.

use crate::automata::Automaton;
use crate::dolc::{Dolc, PathRegister};
use crate::history::SingleExitMode;
use crate::predictor::{ExitPredictor, TaskDesc};
use crate::rng::XorShift64;
use multiscalar_isa::ExitIndex;
use std::collections::VecDeque;

const EXIT0: ExitIndex = match ExitIndex::new(0) {
    Some(e) => e,
    None => unreachable!(),
};

/// A path-based exit predictor whose PHT updates are applied `delay` task
/// predictions late. With `delay == 0` it behaves exactly like
/// [`crate::history::PathPredictor`].
#[derive(Debug, Clone)]
pub struct StalePathPredictor<A: Automaton> {
    dolc: Dolc,
    path: PathRegister,
    pht: Vec<A>,
    tie: XorShift64,
    mode: SingleExitMode,
    delay: usize,
    pending: VecDeque<(usize, ExitIndex)>,
}

impl<A: Automaton> StalePathPredictor<A> {
    /// Creates a predictor whose training lags by `delay` task predictions.
    pub fn new(dolc: Dolc, delay: usize) -> StalePathPredictor<A> {
        StalePathPredictor {
            dolc,
            path: PathRegister::new(dolc.depth()),
            pht: vec![A::default(); dolc.table_entries()],
            tie: XorShift64::default(),
            mode: SingleExitMode::default(),
            delay,
            pending: VecDeque::new(),
        }
    }

    /// The configured training delay in task predictions.
    pub fn delay(&self) -> usize {
        self.delay
    }

    fn skip(&self, task: &TaskDesc) -> bool {
        self.mode != SingleExitMode::Off && task.single_exit()
    }

    fn drain(&mut self, keep: usize) {
        while self.pending.len() > keep {
            let (idx, actual) = self.pending.pop_front().expect("non-empty");
            self.pht[idx].update(actual);
        }
    }
}

impl<A: Automaton> ExitPredictor for StalePathPredictor<A> {
    fn predict(&mut self, task: &TaskDesc) -> ExitIndex {
        if self.skip(task) {
            return EXIT0;
        }
        let idx = self.dolc.index(&self.path, task.entry());
        self.pht[idx].predict(&mut self.tie)
    }

    fn update(&mut self, task: &TaskDesc, actual: ExitIndex) {
        if !self.skip(task) {
            let idx = self.dolc.index(&self.path, task.entry());
            self.pending.push_back((idx, actual));
            self.drain(self.delay);
        }
        self.path.push(task.entry());
    }

    fn states_touched(&self) -> usize {
        0 // not tracked for the staleness study
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::automata::LastExitHysteresis;
    use crate::history::PathPredictor;
    use crate::predictor::ExitInfo;
    use multiscalar_isa::{Addr, ExitKind};

    type Leh2 = LastExitHysteresis<2>;

    fn task(entry: u32, n: usize) -> TaskDesc {
        let exits = (0..n)
            .map(|i| ExitInfo {
                kind: ExitKind::Branch,
                target: Some(Addr(entry + 10 + i as u32)),
                return_addr: None,
            })
            .collect();
        TaskDesc::new(Addr(entry), exits)
    }

    fn e(i: u8) -> ExitIndex {
        ExitIndex::new(i).unwrap()
    }

    /// Drives both predictors over the same pseudo-random stream and
    /// returns their miss counts.
    fn race(delay: usize, steps: usize) -> (u64, u64) {
        let d = Dolc::new(3, 4, 6, 6, 2);
        let mut fresh: PathPredictor<Leh2> = PathPredictor::new(d);
        let mut stale: StalePathPredictor<Leh2> = StalePathPredictor::new(d, delay);
        let mut rng = XorShift64::new(42);
        let (mut fm, mut sm) = (0, 0);
        for _ in 0..steps {
            let t = task(0x10 + rng.next_below(8) * 0x8, 2);
            let actual = e((t.entry().0 >> 3 & 1) as u8); // entry-determined
            if fresh.predict(&t) != actual {
                fm += 1;
            }
            if stale.predict(&t) != actual {
                sm += 1;
            }
            fresh.update(&t, actual);
            stale.update(&t, actual);
        }
        (fm, sm)
    }

    #[test]
    fn zero_delay_matches_the_immediate_predictor() {
        let (fresh, stale) = race(0, 2000);
        assert_eq!(fresh, stale, "delay 0 must be bit-identical");
    }

    #[test]
    fn staleness_costs_accuracy_but_converges() {
        let (fresh, stale) = race(8, 4000);
        assert!(
            stale >= fresh,
            "stale training cannot beat immediate training"
        );
        // On a stationary pattern the stale predictor still learns.
        assert!(
            (stale as f64) < 4000.0 * 0.5,
            "even badly stale training must beat chance: {stale}"
        );
    }

    #[test]
    fn pending_queue_is_bounded_by_delay() {
        let d = Dolc::new(2, 4, 5, 5, 1);
        let mut p: StalePathPredictor<Leh2> = StalePathPredictor::new(d, 3);
        let t = task(0x20, 2);
        for _ in 0..50 {
            let _ = p.predict(&t);
            p.update(&t, e(1));
            assert!(p.pending.len() <= 3);
        }
        assert_eq!(p.delay(), 3);
    }
}
