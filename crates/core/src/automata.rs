//! Multi-way prediction automata (paper §5.1).
//!
//! Scalar 2-bit saturating counters cannot predict tasks because a task has
//! up to four exits. The paper studies seven replacement automata, all
//! implemented here:
//!
//! * [`VotingCounters`] with 2- or 3-bit counters and MRU or random
//!   tie-breaking (`VC MRU`, `VC RANDOM`),
//! * [`LastExit`] (`LE`), and
//! * [`LastExitHysteresis`] with 1- or 2-bit confidence counters (`LEH`).
//!
//! The paper's finding — reproduced by this crate's benchmarks — is that
//! LEH-2bit matches 3-bit voting counters at a fraction of the storage, so
//! [`LastExitHysteresis<2>`] is the automaton used by the composite
//! [`crate::predictor::TaskPredictor`].

use crate::rng::XorShift64;
use multiscalar_isa::{ExitIndex, MAX_EXITS};

/// A prediction automaton for the multi-way task-exit problem.
///
/// One automaton sits in every pattern-history-table entry. `predict`
/// receives a tie-break generator (only the `VC RANDOM` family uses it);
/// `update` is told the actual exit after the task resolves.
pub trait Automaton: Clone + Default {
    /// Storage cost of one automaton in bits, as accounted in the paper
    /// (used to size tables for equal-storage comparisons).
    const STORAGE_BITS: u32;

    /// Short name as used in the paper's figures (e.g. `"LEH-2bit"`).
    const NAME: &'static str;

    /// The exit this automaton currently predicts.
    fn predict(&self, tie: &mut XorShift64) -> ExitIndex;

    /// Trains the automaton with the actual exit taken.
    fn update(&mut self, actual: ExitIndex);
}

/// One saturating counter per exit; the exit with the highest counter wins
/// (paper's *voting counters*, `VC`).
///
/// `BITS` is the counter width (2 or 3 in the paper). `MRU` selects the
/// tie-break rule: `true` keeps the most-recently-used exit among ties
/// (costs extra storage), `false` picks randomly.
///
/// On update, the actual exit's counter increments and all others
/// decrement, both saturating.
///
/// ```
/// use multiscalar_core::automata::{Automaton, VotingCounters};
/// use multiscalar_core::rng::XorShift64;
/// use multiscalar_isa::ExitIndex;
///
/// let mut vc: VotingCounters<2, true> = VotingCounters::default();
/// let mut tie = XorShift64::default();
/// vc.update(ExitIndex::new(3).unwrap());
/// assert_eq!(vc.predict(&mut tie), ExitIndex::new(3).unwrap());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VotingCounters<const BITS: u8, const MRU: bool> {
    counters: [u8; MAX_EXITS],
    mru: u8,
}

impl<const BITS: u8, const MRU: bool> Default for VotingCounters<BITS, MRU> {
    fn default() -> Self {
        VotingCounters {
            counters: [0; MAX_EXITS],
            mru: 0,
        }
    }
}

impl<const BITS: u8, const MRU: bool> VotingCounters<BITS, MRU> {
    const MAX: u8 = (1 << BITS) - 1;

    /// Current counter values (for inspection in tests/examples).
    pub fn counters(&self) -> [u8; MAX_EXITS] {
        self.counters
    }

    /// Most-recently-taken exit (the MRU tie-break state).
    pub(crate) fn mru(&self) -> u8 {
        self.mru
    }

    /// Rebuilds an automaton from raw state (lane packing codec).
    pub(crate) fn from_parts(counters: [u8; MAX_EXITS], mru: u8) -> Self {
        VotingCounters { counters, mru }
    }
}

impl<const BITS: u8, const MRU: bool> Automaton for VotingCounters<BITS, MRU> {
    // 4 counters of BITS bits, plus 2 MRU bits when tie-breaking by MRU.
    const STORAGE_BITS: u32 = MAX_EXITS as u32 * BITS as u32 + if MRU { 2 } else { 0 };
    const NAME: &'static str = match (BITS, MRU) {
        (2, true) => "2-bit VC MRU",
        (2, false) => "2-bit VC RANDOM",
        (3, true) => "3-bit VC MRU",
        (3, false) => "3-bit VC RANDOM",
        _ => "VC",
    };

    fn predict(&self, tie: &mut XorShift64) -> ExitIndex {
        let max = *self.counters.iter().max().expect("non-empty");
        let tied: [bool; MAX_EXITS] = std::array::from_fn(|i| self.counters[i] == max);
        let num_tied = tied.iter().filter(|&&t| t).count();
        let winner = if num_tied == 1 {
            tied.iter().position(|&t| t).expect("exactly one winner")
        } else if MRU {
            // Keep the most recently taken exit if it is among the ties,
            // otherwise the lowest tied index.
            if tied[self.mru as usize] {
                self.mru as usize
            } else {
                tied.iter().position(|&t| t).expect("some winner")
            }
        } else {
            // Uniformly random among the tied exits.
            let pick = tie.next_below(num_tied as u32) as usize;
            tied.iter()
                .enumerate()
                .filter(|(_, &t)| t)
                .nth(pick)
                .map(|(i, _)| i)
                .expect("pick < num_tied")
        };
        ExitIndex::new(winner as u8).expect("winner < MAX_EXITS")
    }

    fn update(&mut self, actual: ExitIndex) {
        for (i, c) in self.counters.iter_mut().enumerate() {
            if i == actual.index() {
                *c = (*c + 1).min(Self::MAX);
            } else {
                *c = c.saturating_sub(1);
            }
        }
        self.mru = actual.as_u8();
    }
}

/// Remembers the last exit taken and predicts it (paper's `LE`).
///
/// A degenerate voting counter with one bit per exit; stored as a plain
/// 2-bit exit number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LastExit {
    last: ExitIndex,
}

impl LastExit {
    /// The remembered exit (lane packing codec).
    pub(crate) fn last(&self) -> ExitIndex {
        self.last
    }

    /// Rebuilds an automaton from raw state (lane packing codec).
    pub(crate) fn from_exit(last: ExitIndex) -> Self {
        LastExit { last }
    }
}

impl Automaton for LastExit {
    const STORAGE_BITS: u32 = 2;
    const NAME: &'static str = "LE";

    fn predict(&self, _tie: &mut XorShift64) -> ExitIndex {
        self.last
    }

    fn update(&mut self, actual: ExitIndex) {
        self.last = actual;
    }
}

/// Last exit plus a small confidence counter (paper's `LEH`).
///
/// The counter increments on correct predictions and decrements on
/// incorrect ones; the stored exit is only replaced when the counter is
/// zero *and* the prediction is wrong, so a proven prediction survives
/// occasional noise. `BITS` is the confidence width (1 or 2 in the paper).
///
/// This is the paper's recommended automaton (`LEH-2bit`): the same
/// hysteresis as 3-bit voting counters in a third of the storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LastExitHysteresis<const BITS: u8> {
    exit: ExitIndex,
    confidence: u8,
}

impl<const BITS: u8> LastExitHysteresis<BITS> {
    const MAX: u8 = (1 << BITS) - 1;

    /// Current confidence value (for inspection).
    pub fn confidence(&self) -> u8 {
        self.confidence
    }

    /// The remembered exit (lane packing codec).
    pub(crate) fn exit(&self) -> ExitIndex {
        self.exit
    }

    /// Rebuilds an automaton from raw state (lane packing codec).
    pub(crate) fn from_parts(exit: ExitIndex, confidence: u8) -> Self {
        LastExitHysteresis { exit, confidence }
    }
}

impl<const BITS: u8> Automaton for LastExitHysteresis<BITS> {
    const STORAGE_BITS: u32 = 2 + BITS as u32;
    const NAME: &'static str = match BITS {
        1 => "LEH-1bit",
        2 => "LEH-2bit",
        _ => "LEH",
    };

    fn predict(&self, _tie: &mut XorShift64) -> ExitIndex {
        self.exit
    }

    fn update(&mut self, actual: ExitIndex) {
        if actual == self.exit {
            self.confidence = (self.confidence + 1).min(Self::MAX);
        } else if self.confidence == 0 {
            self.exit = actual;
        } else {
            self.confidence -= 1;
        }
    }
}

/// Runtime-selectable automaton kind — the seven automata of the paper's
/// Figure 6, in the figure's order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AutomatonKind {
    /// 2-bit voting counters, MRU tie-break.
    Vc2Mru,
    /// 2-bit voting counters, random tie-break.
    Vc2Random,
    /// Last exit with 1-bit hysteresis.
    Leh1,
    /// 3-bit voting counters, MRU tie-break.
    Vc3Mru,
    /// 3-bit voting counters, random tie-break.
    Vc3Random,
    /// Last exit with 2-bit hysteresis.
    Leh2,
    /// Last exit.
    LastExit,
}

impl AutomatonKind {
    /// All seven kinds, in the order of the paper's Figure 6 legend.
    pub const ALL: [AutomatonKind; 7] = [
        AutomatonKind::Vc2Mru,
        AutomatonKind::Vc2Random,
        AutomatonKind::Leh1,
        AutomatonKind::Vc3Mru,
        AutomatonKind::Vc3Random,
        AutomatonKind::Leh2,
        AutomatonKind::LastExit,
    ];

    /// The paper's name for this automaton.
    pub fn name(self) -> &'static str {
        match self {
            AutomatonKind::Vc2Mru => VotingCounters::<2, true>::NAME,
            AutomatonKind::Vc2Random => VotingCounters::<2, false>::NAME,
            AutomatonKind::Leh1 => LastExitHysteresis::<1>::NAME,
            AutomatonKind::Vc3Mru => VotingCounters::<3, true>::NAME,
            AutomatonKind::Vc3Random => VotingCounters::<3, false>::NAME,
            AutomatonKind::Leh2 => LastExitHysteresis::<2>::NAME,
            AutomatonKind::LastExit => LastExit::NAME,
        }
    }

    /// Storage bits per PHT entry for this automaton.
    pub fn storage_bits(self) -> u32 {
        match self {
            AutomatonKind::Vc2Mru => VotingCounters::<2, true>::STORAGE_BITS,
            AutomatonKind::Vc2Random => VotingCounters::<2, false>::STORAGE_BITS,
            AutomatonKind::Leh1 => LastExitHysteresis::<1>::STORAGE_BITS,
            AutomatonKind::Vc3Mru => VotingCounters::<3, true>::STORAGE_BITS,
            AutomatonKind::Vc3Random => VotingCounters::<3, false>::STORAGE_BITS,
            AutomatonKind::Leh2 => LastExitHysteresis::<2>::STORAGE_BITS,
            AutomatonKind::LastExit => LastExit::STORAGE_BITS,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(i: u8) -> ExitIndex {
        ExitIndex::new(i).unwrap()
    }

    #[test]
    fn vc_learns_dominant_exit() {
        let mut vc: VotingCounters<2, true> = Default::default();
        let mut tie = XorShift64::default();
        for _ in 0..4 {
            vc.update(e(2));
        }
        assert_eq!(vc.predict(&mut tie), e(2));
        // A single contrary outcome does not flip a saturated prediction.
        vc.update(e(0));
        assert_eq!(vc.predict(&mut tie), e(2));
    }

    #[test]
    fn vc_counters_saturate() {
        let mut vc: VotingCounters<2, true> = Default::default();
        for _ in 0..10 {
            vc.update(e(1));
        }
        assert_eq!(vc.counters()[1], 3, "2-bit counter saturates at 3");
        assert_eq!(vc.counters()[0], 0);
        let mut vc3: VotingCounters<3, true> = Default::default();
        for _ in 0..10 {
            vc3.update(e(1));
        }
        assert_eq!(vc3.counters()[1], 7, "3-bit counter saturates at 7");
    }

    #[test]
    fn vc_mru_tie_break_prefers_most_recent() {
        let mut vc: VotingCounters<2, true> = Default::default();
        let mut tie = XorShift64::default();
        // Alternate 0,1 — counters tie (inc then dec), MRU should win.
        vc.update(e(0));
        vc.update(e(1)); // counters: [0,1,..] -> not tied yet
        vc.update(e(0)); // [1,0]
        vc.update(e(1)); // [0,1]
                         // After this sequence the last update was exit 1.
        let p = vc.predict(&mut tie);
        // exit 1 has the (joint-)highest counter and is MRU.
        assert_eq!(p, e(1));
    }

    #[test]
    fn vc_random_tie_break_is_among_tied() {
        let vc: VotingCounters<2, false> = Default::default(); // all zero: 4-way tie
        let mut tie = XorShift64::new(99);
        let mut seen = [false; 4];
        for _ in 0..100 {
            seen[vc.predict(&mut tie).index()] = true;
        }
        assert!(
            seen.iter().all(|&s| s),
            "random ties should cover all exits"
        );
    }

    #[test]
    fn last_exit_tracks_immediately() {
        let mut le = LastExit::default();
        let mut tie = XorShift64::default();
        le.update(e(3));
        assert_eq!(le.predict(&mut tie), e(3));
        le.update(e(1));
        assert_eq!(le.predict(&mut tie), e(1), "LE flips on every change");
    }

    #[test]
    fn leh_replaces_only_after_confidence_exhausted() {
        let mut leh: LastExitHysteresis<2> = Default::default();
        let mut tie = XorShift64::default();
        // Build confidence in exit 0 (the default prediction).
        for _ in 0..3 {
            leh.update(e(0));
        }
        assert_eq!(leh.confidence(), 3);
        // Three wrong outcomes drain confidence without replacing...
        for _ in 0..3 {
            leh.update(e(2));
            assert_eq!(leh.predict(&mut tie), e(0));
        }
        // ...the fourth replaces.
        leh.update(e(2));
        assert_eq!(leh.predict(&mut tie), e(2));
    }

    #[test]
    fn leh1_has_two_miss_hysteresis() {
        // Matches the paper: LEH-1bit replaces a proven prediction only
        // after two mispredictions.
        let mut leh: LastExitHysteresis<1> = Default::default();
        let mut tie = XorShift64::default();
        leh.update(e(0));
        leh.update(e(0)); // confidence saturated at 1
        leh.update(e(3)); // miss 1: confidence -> 0, still predicts 0
        assert_eq!(leh.predict(&mut tie), e(0));
        leh.update(e(3)); // miss 2: replaced
        assert_eq!(leh.predict(&mut tie), e(3));
    }

    #[test]
    fn storage_bits_match_paper_accounting() {
        assert_eq!(VotingCounters::<2, false>::STORAGE_BITS, 8);
        assert_eq!(VotingCounters::<2, true>::STORAGE_BITS, 10);
        assert_eq!(VotingCounters::<3, false>::STORAGE_BITS, 12);
        assert_eq!(LastExit::STORAGE_BITS, 2);
        assert_eq!(LastExitHysteresis::<1>::STORAGE_BITS, 3);
        assert_eq!(LastExitHysteresis::<2>::STORAGE_BITS, 4);
        // LEH-2bit uses fewer bits than 3-bit VC — the paper's reason for
        // choosing it.
        let (leh2, vc3) = (
            LastExitHysteresis::<2>::STORAGE_BITS,
            VotingCounters::<3, false>::STORAGE_BITS,
        );
        assert!(leh2 < vc3);
    }

    #[test]
    fn kind_enum_round_trips_names() {
        for k in AutomatonKind::ALL {
            assert!(!k.name().is_empty());
            assert!(k.storage_bits() >= 2);
        }
        assert_eq!(AutomatonKind::ALL.len(), 7);
    }

    #[test]
    fn automata_converge_on_stationary_stream() {
        // Every automaton eventually predicts a constant outcome.
        fn check<A: Automaton>() {
            let mut a = A::default();
            let mut tie = XorShift64::new(5);
            for _ in 0..16 {
                a.update(e(2));
            }
            assert_eq!(a.predict(&mut tie), e(2), "{} failed to converge", A::NAME);
        }
        check::<VotingCounters<2, true>>();
        check::<VotingCounters<2, false>>();
        check::<VotingCounters<3, true>>();
        check::<VotingCounters<3, false>>();
        check::<LastExit>();
        check::<LastExitHysteresis<1>>();
        check::<LastExitHysteresis<2>>();
    }
}
