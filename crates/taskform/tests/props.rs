//! Property-based tests: task formation over randomly generated structured
//! programs must always produce a valid partition.

use multiscalar_isa::MAX_EXITS;
use multiscalar_taskform::{TaskFormConfig, TaskFormer};
use multiscalar_workloads::synthetic::{random_program, SyntheticConfig};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn random_programs_form_valid_tasks(
        seed in 0u64..10_000,
        functions in 1usize..8,
        constructs in 1usize..7,
        nesting in 1u32..3,
    ) {
        let p = random_program(seed, &SyntheticConfig { functions, constructs, nesting });
        let tp = TaskFormer::default().form(&p).expect("formation succeeds");
        tp.validate(&p).expect("partition is valid");

        for t in tp.tasks() {
            prop_assert!(t.header().num_exits() >= 1);
            prop_assert!(t.header().num_exits() <= MAX_EXITS);
            prop_assert!(t.num_instrs() >= 1);
            // The entry is among the task's blocks.
            prop_assert!(t.block_starts().contains(&t.entry()));
        }
    }

    #[test]
    fn budgets_are_monotone(
        seed in 0u64..2_000,
    ) {
        // A tighter budget can only produce at least as many tasks.
        let p = random_program(seed, &SyntheticConfig::default());
        let loose = TaskFormer::new(TaskFormConfig { max_instrs: 64, max_blocks: 16 })
            .form(&p)
            .unwrap();
        let tight = TaskFormer::new(TaskFormConfig { max_instrs: 8, max_blocks: 2 })
            .form(&p)
            .unwrap();
        prop_assert!(tight.static_task_count() >= loose.static_task_count());
    }

    #[test]
    fn exit_resolution_is_unambiguous(
        seed in 0u64..2_000,
    ) {
        // Every exit spec of every task must be found by find_exit when
        // queried with its own (source, target) pair.
        let p = random_program(seed, &SyntheticConfig::default());
        let tp = TaskFormer::default().form(&p).unwrap();
        for t in tp.tasks() {
            for (i, e) in t.header().exits().iter().enumerate() {
                if let Some(target) = e.target {
                    let found = t.header().find_exit(e.source, target).expect("resolvable");
                    // With duplicate sources the lower-index exact match wins;
                    // the found exit must at least share source and target.
                    let f = &t.header().exits()[found.index()];
                    prop_assert_eq!(f.source, e.source);
                    prop_assert_eq!(f.target, Some(target));
                } else {
                    let found = t
                        .header()
                        .find_exit(e.source, multiscalar_isa::Addr(u32::MAX))
                        .expect("wildcard resolvable");
                    prop_assert_eq!(found.index(), i);
                }
            }
        }
    }
}
