//! Seeded-sweep tests: task formation over randomly generated structured
//! programs must always produce a valid partition.

use multiscalar_isa::MAX_EXITS;
use multiscalar_taskform::{TaskFormConfig, TaskFormer};
use multiscalar_workloads::rng::{Rng, SeedableRng, StdRng};
use multiscalar_workloads::synthetic::{random_program, SyntheticConfig};

#[test]
fn random_programs_form_valid_tasks() {
    let mut draws = StdRng::seed_from_u64(0x7A5C);
    for _ in 0..64 {
        let seed = draws.gen_range(0..10_000u64);
        let functions = draws.gen_range(1..8usize);
        let constructs = draws.gen_range(1..7usize);
        let nesting = draws.gen_range(1..3u32);
        let p = random_program(
            seed,
            &SyntheticConfig {
                functions,
                constructs,
                nesting,
                mem_ops: 0,
            },
        );
        let tp = TaskFormer::default().form(&p).expect("formation succeeds");
        tp.validate(&p).expect("partition is valid");

        for t in tp.tasks() {
            assert!(t.header().num_exits() >= 1);
            assert!(t.header().num_exits() <= MAX_EXITS);
            assert!(t.num_instrs() >= 1);
            // The entry is among the task's blocks.
            assert!(t.block_starts().contains(&t.entry()));
        }
    }
}

#[test]
fn budgets_are_monotone() {
    for seed in 0..32u64 {
        // A tighter budget can only produce at least as many tasks.
        let p = random_program(seed * 61, &SyntheticConfig::default());
        let loose = TaskFormer::new(TaskFormConfig {
            max_instrs: 64,
            max_blocks: 16,
        })
        .form(&p)
        .unwrap();
        let tight = TaskFormer::new(TaskFormConfig {
            max_instrs: 8,
            max_blocks: 2,
        })
        .form(&p)
        .unwrap();
        assert!(tight.static_task_count() >= loose.static_task_count());
    }
}

#[test]
fn exit_resolution_is_unambiguous() {
    for seed in 0..32u64 {
        // Every exit spec of every task must be found by find_exit when
        // queried with its own (source, target) pair.
        let p = random_program(seed * 73, &SyntheticConfig::default());
        let tp = TaskFormer::default().form(&p).unwrap();
        for t in tp.tasks() {
            for (i, e) in t.header().exits().iter().enumerate() {
                if let Some(target) = e.target {
                    let found = t.header().find_exit(e.source, target).expect("resolvable");
                    // With duplicate sources the lower-index exact match wins;
                    // the found exit must at least share source and target.
                    let f = &t.header().exits()[found.index()];
                    assert_eq!(f.source, e.source);
                    assert_eq!(f.target, Some(target));
                } else {
                    let found = t
                        .header()
                        .find_exit(e.source, multiscalar_isa::Addr(u32::MAX))
                        .expect("wildcard resolvable");
                    assert_eq!(found.index(), i);
                }
            }
        }
    }
}
