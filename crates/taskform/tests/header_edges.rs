//! Edge cases of the task-header exit count.
//!
//! [`TaskHeader`] enforces the hardware ceiling (more than
//! [`MAX_EXITS`] exits panics — the former must never produce such a
//! header), but it deliberately accepts the *other* edge, a header with
//! zero exits, because the type alone cannot know whether the task ends
//! the program. Distinguishing the two is the analyzer's job: a zero-exit
//! task is an explicit `multiscalar-analyze` diagnostic, not silent
//! acceptance.

use multiscalar_isa::{AluOp, Cond, ExitKind, ProgramBuilder, Reg, MAX_EXITS};
use multiscalar_taskform::{ExitSpec, TaskFlowGraph, TaskFormer, TaskHeader};

fn looped_program() -> multiscalar_isa::Program {
    let mut b = ProgramBuilder::new();
    let main = b.begin_function("main");
    b.load_imm(Reg(1), 0);
    let top = b.here_label();
    b.op_imm(AluOp::Add, Reg(1), Reg(1), 1);
    b.op_imm(AluOp::Xor, Reg(2), Reg(1), 3);
    b.branch(Cond::Lt, Reg(1), Reg(2), top);
    b.halt();
    b.end_function();
    b.finish(main).unwrap()
}

#[test]
fn zero_exit_header_is_accepted_by_the_type() {
    let h = TaskHeader::new(vec![]);
    assert_eq!(h.num_exits(), 0);
    assert!(!h.single_exit());
    assert_eq!(h.exits(), &[]);
}

#[test]
fn zero_exit_task_is_an_analyzer_error() {
    let program = looped_program();
    let mut tasks = TaskFormer::default().form(&program).unwrap();
    tasks.tasks_mut()[0].set_header(TaskHeader::new(vec![]));
    let tfg = TaskFlowGraph::build(&tasks);
    let diags = multiscalar_analyze::analyze(&program, &tasks, &tfg);
    assert!(
        diags.iter().any(|d| {
            d.severity == multiscalar_analyze::Severity::Error && d.message.contains("no exits")
        }),
        "a zero-exit task must be an explicit diagnostic: {diags:?}"
    );
}

#[test]
#[should_panic(expected = "max is 4")]
fn header_with_more_than_max_exits_panics() {
    let exits: Vec<ExitSpec> = (0..=MAX_EXITS as u32)
        .map(|i| ExitSpec {
            source: multiscalar_isa::Addr(i),
            kind: ExitKind::Branch,
            target: Some(multiscalar_isa::Addr(100 + i)),
            return_addr: None,
        })
        .collect();
    TaskHeader::new(exits);
}

#[test]
fn former_output_always_sits_between_the_edges() {
    let program = looped_program();
    let tasks = TaskFormer::default().form(&program).unwrap();
    for t in tasks.tasks() {
        let n = t.header().num_exits();
        assert!(
            (1..=MAX_EXITS).contains(&n),
            "task {:?} has {n} exits",
            t.id()
        );
    }
}
