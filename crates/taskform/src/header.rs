//! Task headers: the per-task metadata the Multiscalar global sequencer
//! uses to predict the next task (paper §2.1).

use multiscalar_isa::{Addr, ExitIndex, ExitKind, MAX_EXITS};
use std::fmt;

/// One exit of a task, as recorded in the task header.
///
/// Mirrors the paper's per-exit header fields: the *exit specifier* (control
/// flow type, [`ExitKind`]), the *target address* when statically known, and
/// the *return address* for call exits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ExitSpec {
    /// Address of the instruction that realises this exit. For an implicit
    /// fall-through exit this is the last instruction of the source block.
    pub source: Addr,
    /// The paper's 5-bit exit specifier: which control-flow class the exit
    /// belongs to.
    pub kind: ExitKind,
    /// Target address if known at compile time (`BRANCH`, `CALL`, and
    /// implicit fall-through exits); `None` for returns and indirects.
    pub target: Option<Addr>,
    /// Address executed after a called routine returns (`CALL` /
    /// `INDIRECT_CALL` only); pushed onto the hardware RAS.
    pub return_addr: Option<Addr>,
}

impl ExitSpec {
    /// `true` if this exit spec matches a dynamic transfer from `source_pc`
    /// landing at `to`.
    ///
    /// Exits with a known target require an exact `(source, target)` match;
    /// exits with unknown targets (returns, indirects) match on source
    /// alone.
    pub fn matches(&self, source_pc: Addr, to: Addr) -> bool {
        self.source == source_pc && self.target.is_none_or(|t| t == to)
    }
}

impl fmt::Display for ExitSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at {}", self.kind, self.source)?;
        if let Some(t) = self.target {
            write!(f, " -> {t}")?;
        }
        if let Some(r) = self.return_addr {
            write!(f, " (ra {r})")?;
        }
        Ok(())
    }
}

/// A task header: up to [`MAX_EXITS`] exits in canonical order, plus the
/// *create mask* — the paper's "bit mask indicating which registers may
/// have new values created within the task" (§2.1), which the inter-unit
/// register forwarding hardware uses to know which values to wait for.
///
/// Canonical order is ascending `(source, target)`, so exit indices are
/// stable across executions — index `i` always denotes the same static
/// exit.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TaskHeader {
    exits: Vec<ExitSpec>,
    create_mask: u32,
}

impl TaskHeader {
    /// Builds a header from exit specs, sorting them into canonical order.
    ///
    /// # Panics
    ///
    /// Panics if more than [`MAX_EXITS`] exits are supplied — the task
    /// former must never let that happen.
    pub fn new(exits: Vec<ExitSpec>) -> TaskHeader {
        TaskHeader::with_create_mask(exits, 0)
    }

    /// Builds a header with an explicit create mask (bit `r` set when
    /// register `r` may be written inside the task).
    ///
    /// # Panics
    ///
    /// Panics if more than [`MAX_EXITS`] exits are supplied.
    pub fn with_create_mask(mut exits: Vec<ExitSpec>, create_mask: u32) -> TaskHeader {
        assert!(
            exits.len() <= MAX_EXITS,
            "task has {} exits, max is {MAX_EXITS}",
            exits.len()
        );
        exits.sort_by_key(|e| (e.source, e.target));
        TaskHeader { exits, create_mask }
    }

    /// The create mask: bit `r` is set when the task may write register
    /// `r`. A consumer of register `r` in a younger task must wait for the
    /// newest older task whose mask contains `r` to release its value.
    pub fn create_mask(&self) -> u32 {
        self.create_mask
    }

    /// `true` if the task may write register `r`.
    pub fn creates(&self, r: multiscalar_isa::Reg) -> bool {
        self.create_mask & (1 << r.index()) != 0
    }

    /// The exits in canonical order.
    pub fn exits(&self) -> &[ExitSpec] {
        &self.exits
    }

    /// Number of exits (1..=4 for well-formed tasks; the final task of a
    /// program may have a single `Halt` exit).
    pub fn num_exits(&self) -> usize {
        self.exits.len()
    }

    /// The exit at `index`, if present.
    pub fn exit(&self, index: ExitIndex) -> Option<&ExitSpec> {
        self.exits.get(index.index())
    }

    /// Finds the exit matching a dynamic transfer `(source_pc -> to)`.
    ///
    /// Prefers an exact target match over a wildcard (unknown-target) match
    /// so that a conditional branch whose taken and fall-through sides are
    /// both exits resolves to the right one.
    pub fn find_exit(&self, source_pc: Addr, to: Addr) -> Option<ExitIndex> {
        let mut wildcard = None;
        for (i, e) in self.exits.iter().enumerate() {
            if e.source != source_pc {
                continue;
            }
            match e.target {
                Some(t) if t == to => return ExitIndex::new(i as u8),
                None => wildcard = ExitIndex::new(i as u8),
                _ => {}
            }
        }
        wildcard
    }

    /// `true` if the task has exactly one exit (the paper's single-exit
    /// optimisation: such tasks are trivially predicted and do not update
    /// the pattern history table).
    pub fn single_exit(&self) -> bool {
        self.exits.len() == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(source: u32, kind: ExitKind, target: Option<u32>) -> ExitSpec {
        ExitSpec {
            source: Addr(source),
            kind,
            target: target.map(Addr),
            return_addr: None,
        }
    }

    #[test]
    fn canonical_order_is_source_then_target() {
        let h = TaskHeader::new(vec![
            spec(9, ExitKind::Branch, Some(20)),
            spec(3, ExitKind::Branch, Some(10)),
            spec(9, ExitKind::Branch, Some(10)),
        ]);
        let sources: Vec<u32> = h.exits().iter().map(|e| e.source.0).collect();
        assert_eq!(sources, vec![3, 9, 9]);
        assert_eq!(h.exits()[1].target, Some(Addr(10)));
        assert_eq!(h.exits()[2].target, Some(Addr(20)));
    }

    #[test]
    #[should_panic(expected = "max is 4")]
    fn more_than_four_exits_panics() {
        TaskHeader::new(
            (0..5)
                .map(|i| spec(i, ExitKind::Branch, Some(100 + i)))
                .collect(),
        );
    }

    #[test]
    fn find_exit_prefers_exact_target() {
        // A return (wildcard) and a branch at the same pc cannot really
        // coexist, but the resolution rule is what we verify.
        let h = TaskHeader::new(vec![
            spec(5, ExitKind::Branch, Some(10)),
            spec(5, ExitKind::Branch, Some(12)),
        ]);
        assert_eq!(h.find_exit(Addr(5), Addr(12)).unwrap().index(), 1);
        assert_eq!(h.find_exit(Addr(5), Addr(10)).unwrap().index(), 0);
        assert_eq!(h.find_exit(Addr(5), Addr(99)), None);
        assert_eq!(h.find_exit(Addr(6), Addr(10)), None);
    }

    #[test]
    fn wildcard_matches_any_target() {
        let h = TaskHeader::new(vec![spec(7, ExitKind::Return, None)]);
        assert_eq!(h.find_exit(Addr(7), Addr(1)).unwrap().index(), 0);
        assert_eq!(h.find_exit(Addr(7), Addr(9999)).unwrap().index(), 0);
    }

    #[test]
    fn single_exit_detection() {
        assert!(TaskHeader::new(vec![spec(1, ExitKind::Call, Some(2))]).single_exit());
        assert!(!TaskHeader::new(vec![
            spec(1, ExitKind::Branch, Some(2)),
            spec(1, ExitKind::Branch, Some(3)),
        ])
        .single_exit());
    }

    #[test]
    fn exit_spec_matches_semantics() {
        let e = spec(4, ExitKind::Branch, Some(8));
        assert!(e.matches(Addr(4), Addr(8)));
        assert!(!e.matches(Addr(4), Addr(9)));
        let r = spec(4, ExitKind::Return, None);
        assert!(r.matches(Addr(4), Addr(1234)));
    }
}
