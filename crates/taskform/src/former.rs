//! The task-forming pass: interval-style region growth with an exit budget.

use crate::header::{ExitSpec, TaskHeader};
use crate::task::{Task, TaskId, TaskProgram};
use multiscalar_cfg::{BlockId, Cfg, EdgeKind, Terminator};
use multiscalar_isa::{Addr, ExitKind, FuncId, Program, MAX_EXITS};
use std::collections::{BTreeSet, HashSet};
use std::fmt;

/// Tuning knobs for the task former.
///
/// The defaults produce tasks comparable in size to the paper's (a handful
/// of basic blocks, tens of instructions).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TaskFormConfig {
    /// Maximum static instructions per task.
    pub max_instrs: usize,
    /// Maximum basic blocks per task.
    pub max_blocks: usize,
}

impl Default for TaskFormConfig {
    fn default() -> Self {
        TaskFormConfig {
            max_instrs: 32,
            max_blocks: 12,
        }
    }
}

/// Errors from [`TaskFormer::form`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FormError {
    /// An indirect jump has no declared target set
    /// (see [`multiscalar_isa::ProgramBuilder::jump_indirect_with_targets`]);
    /// without it the landing blocks cannot be made task entries.
    UnresolvedIndirectJump(Addr),
}

impl fmt::Display for FormError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FormError::UnresolvedIndirectJump(a) => {
                write!(f, "indirect jump at {a} has no declared targets")
            }
        }
    }
}

impl std::error::Error for FormError {}

/// Partitions programs into Multiscalar tasks.
///
/// See the [crate-level documentation](crate) for the partitioning rules.
#[derive(Debug, Clone, Default)]
pub struct TaskFormer {
    config: TaskFormConfig,
}

impl TaskFormer {
    /// Creates a former with the given configuration.
    pub fn new(config: TaskFormConfig) -> TaskFormer {
        TaskFormer { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &TaskFormConfig {
        &self.config
    }

    /// Forms tasks for every function of `program`.
    ///
    /// # Errors
    ///
    /// Returns [`FormError::UnresolvedIndirectJump`] if any indirect jump
    /// lacks target metadata.
    pub fn form(&self, program: &Program) -> Result<TaskProgram, FormError> {
        self.form_with_entries(program, &[])
    }

    /// [`form`](TaskFormer::form) with extra task entries declared up
    /// front — the `.task` directives of an assembled `.masm` file.
    ///
    /// Each in-range address in `entries` is injected as a basic-block
    /// leader (so block layout honours it) and made a mandatory task
    /// entry: the instruction at that address starts its own task instead
    /// of being absorbed into a grown region. Out-of-range addresses are
    /// ignored, matching [`multiscalar_cfg::build_cfg_with_leaders`].
    ///
    /// # Errors
    ///
    /// Returns [`FormError::UnresolvedIndirectJump`] if any indirect jump
    /// lacks target metadata.
    pub fn form_with_entries(
        &self,
        program: &Program,
        entries: &[Addr],
    ) -> Result<TaskProgram, FormError> {
        let mut tasks: Vec<Task> = Vec::new();
        let mut task_by_addr: Vec<Option<TaskId>> = vec![None; program.len()];

        for (fidx, _) in program.functions().iter().enumerate() {
            let func = FuncId(fidx as u32);
            let cfg = multiscalar_cfg::build_cfg_with_leaders(program, func, entries);
            self.form_function(program, func, &cfg, entries, &mut tasks, &mut task_by_addr)?;
        }

        let task_by_addr = task_by_addr
            .into_iter()
            .map(|t| t.expect("every instruction assigned to a task"))
            .collect();
        Ok(TaskProgram {
            tasks,
            task_by_addr,
        })
    }

    fn form_function(
        &self,
        program: &Program,
        func: FuncId,
        cfg: &Cfg,
        entries: &[Addr],
        tasks: &mut Vec<Task>,
        task_by_addr: &mut [Option<TaskId>],
    ) -> Result<(), FormError> {
        let n = cfg.blocks().len();

        // Reject unresolved indirect jumps up front.
        for b in cfg.blocks() {
            if let Terminator::IndirectJump { resolved: false } = b.terminator() {
                return Err(FormError::UnresolvedIndirectJump(b.last()));
            }
        }

        // Mandatory task entries: function entry, call-return points,
        // indirect-jump case targets.
        let mut mandatory: HashSet<BlockId> = HashSet::new();
        mandatory.insert(cfg.entry());
        for b in cfg.blocks() {
            for e in b.succs() {
                if matches!(e.kind, EdgeKind::CallReturn | EdgeKind::IndirectCase) {
                    mandatory.insert(e.to);
                }
            }
        }
        // Declared entries (`.task`) were injected as leaders when the CFG
        // was built, so each resolves to a block start here.
        for &a in entries {
            if let Some(b) = cfg.block_at(a) {
                mandatory.insert(b);
            }
        }

        let mut assigned: Vec<bool> = vec![false; n];

        // Seed order: mandatory seeds by address, then any leftovers.
        let mut seeds: Vec<BlockId> = mandatory.iter().copied().collect();
        seeds.sort_by_key(|b| cfg.block(*b).start());

        let mut seed_queue: std::collections::VecDeque<BlockId> = seeds.into();
        let mut next_fallback = 0usize; // scan cursor for unassigned blocks

        loop {
            let seed = match seed_queue.pop_front() {
                Some(s) if !assigned[s.index()] => s,
                Some(_) => continue,
                None => {
                    // Pick the lowest-address unassigned block, if any.
                    while next_fallback < n && assigned[next_fallback] {
                        next_fallback += 1;
                    }
                    if next_fallback == n {
                        break;
                    }
                    BlockId(next_fallback as u32)
                }
            };

            let region = self.grow_region(cfg, seed, &mandatory, &assigned);
            let exits = region_exits(program, cfg, &region, seed);
            debug_assert!(exits.len() <= MAX_EXITS);

            let id = TaskId(tasks.len() as u32);
            let mut block_starts: Vec<Addr> = Vec::with_capacity(region.len());
            let mut num_instrs = 0;
            let mut create_mask = 0u32;
            for &b in &region {
                let blk = cfg.block(b);
                block_starts.push(blk.start());
                num_instrs += blk.len();
                assigned[b.index()] = true;
                for a in blk.range() {
                    task_by_addr[a as usize] = Some(id);
                    if let Some(rd) = program.fetch(Addr(a)).expect("in range").dest() {
                        create_mask |= 1 << rd.index();
                    }
                }
            }
            block_starts.sort_unstable();

            tasks.push(Task {
                id,
                func,
                entry: cfg.block(seed).start(),
                header: TaskHeader::with_create_mask(exits, create_mask),
                block_starts,
                num_instrs,
            });
        }
        Ok(())
    }

    /// Grows a single-entry region from `seed` (interval construction with
    /// budgets). Returns the blocks of the region.
    fn grow_region(
        &self,
        cfg: &Cfg,
        seed: BlockId,
        mandatory: &HashSet<BlockId>,
        assigned: &[bool],
    ) -> BTreeSet<BlockId> {
        let mut region: BTreeSet<BlockId> = BTreeSet::new();
        region.insert(seed);
        let mut instrs = cfg.block(seed).len();

        let mut frontier: BTreeSet<BlockId> = BTreeSet::new();
        let mut rejected: HashSet<BlockId> = HashSet::new();
        let push_succs =
            |region: &BTreeSet<BlockId>, frontier: &mut BTreeSet<BlockId>, b: BlockId| {
                for e in cfg.block(b).succs() {
                    let internal_kind = matches!(
                        e.kind,
                        EdgeKind::FallThrough | EdgeKind::Taken | EdgeKind::Jump
                    );
                    if internal_kind && !region.contains(&e.to) {
                        frontier.insert(e.to);
                    }
                }
            };
        push_succs(&region, &mut frontier, seed);

        loop {
            let mut progressed = false;
            let candidates: Vec<BlockId> = frontier.iter().copied().collect();
            for c in candidates {
                if region.contains(&c)
                    || assigned[c.index()]
                    || mandatory.contains(&c)
                    || rejected.contains(&c)
                    || c == seed
                {
                    frontier.remove(&c);
                    continue;
                }
                // Single-entry (interval) condition: every predecessor of a
                // candidate must already be inside the region.
                if !cfg.block(c).preds().iter().all(|p| region.contains(p)) {
                    continue; // retry on a later pass
                }
                // Budget checks.
                let c_len = cfg.block(c).len();
                if region.len() + 1 > self.max_blocks() || instrs + c_len > self.config.max_instrs {
                    rejected.insert(c);
                    frontier.remove(&c);
                    continue;
                }
                let mut tentative = region.clone();
                tentative.insert(c);
                // `region_exits` only needs structural info, so a dummy
                // program is not required — it reads the CFG. Exit counting:
                if count_region_exits(cfg, &tentative, seed) > MAX_EXITS {
                    rejected.insert(c);
                    frontier.remove(&c);
                    continue;
                }
                region.insert(c);
                instrs += c_len;
                frontier.remove(&c);
                push_succs(&region, &mut frontier, c);
                progressed = true;
            }
            if !progressed {
                break;
            }
        }
        region
    }

    fn max_blocks(&self) -> usize {
        self.config.max_blocks.max(1)
    }
}

/// Counts the exits a region would have. Must agree exactly with
/// [`region_exits`].
fn count_region_exits(cfg: &Cfg, region: &BTreeSet<BlockId>, seed: BlockId) -> usize {
    let mut count = 0;
    for &b in region {
        let blk = cfg.block(b);
        match blk.terminator() {
            Terminator::CondBranch | Terminator::Jump | Terminator::FallThrough => {
                for e in blk.succs() {
                    if !region.contains(&e.to) || e.to == seed {
                        count += 1;
                    }
                }
            }
            Terminator::IndirectJump { .. }
            | Terminator::Call { .. }
            | Terminator::IndirectCall
            | Terminator::Return
            | Terminator::Halt => count += 1,
        }
    }
    count
}

/// Computes the exit specs of a finished region.
///
/// Rules (see crate docs): calls, indirect calls, returns, indirect jumps
/// and halts always exit; branch/jump/fall-through edges exit when their
/// target lies outside the region *or* is the region's own entry (a task
/// looping back to itself re-enters as a new dynamic task, as in the
/// paper's Figure 1).
fn region_exits(
    program: &Program,
    cfg: &Cfg,
    region: &BTreeSet<BlockId>,
    seed: BlockId,
) -> Vec<ExitSpec> {
    let mut exits = Vec::new();
    for &b in region {
        let blk = cfg.block(b);
        let last = blk.last();
        match blk.terminator() {
            Terminator::CondBranch | Terminator::Jump | Terminator::FallThrough => {
                for e in blk.succs() {
                    if !region.contains(&e.to) || e.to == seed {
                        exits.push(ExitSpec {
                            source: last,
                            kind: ExitKind::Branch,
                            target: Some(cfg.block(e.to).start()),
                            return_addr: None,
                        });
                    }
                }
            }
            Terminator::IndirectJump { .. } => exits.push(ExitSpec {
                source: last,
                kind: ExitKind::IndirectBranch,
                target: None,
                return_addr: None,
            }),
            Terminator::Call { target } => {
                debug_assert!(program.fetch(target).is_some());
                exits.push(ExitSpec {
                    source: last,
                    kind: ExitKind::Call,
                    target: Some(target),
                    return_addr: Some(last.next()),
                });
            }
            Terminator::IndirectCall => exits.push(ExitSpec {
                source: last,
                kind: ExitKind::IndirectCall,
                target: None,
                return_addr: Some(last.next()),
            }),
            Terminator::Return => exits.push(ExitSpec {
                source: last,
                kind: ExitKind::Return,
                target: None,
                return_addr: None,
            }),
            Terminator::Halt => exits.push(ExitSpec {
                source: last,
                kind: ExitKind::Halt,
                target: None,
                return_addr: None,
            }),
        }
    }
    // Deduplicate (a conditional branch whose two sides reach the same
    // outside block produces one exit).
    exits.sort_by_key(|e| (e.source, e.target));
    exits.dedup_by_key(|e| (e.source, e.target));
    exits
}

#[cfg(test)]
mod tests {
    use super::*;
    use multiscalar_isa::{AluOp, Cond, Program, ProgramBuilder, Reg};

    fn form(p: &Program) -> TaskProgram {
        let tp = TaskFormer::new(TaskFormConfig::default()).form(p).unwrap();
        tp.validate(p).unwrap();
        tp
    }

    #[test]
    fn straight_line_program_is_one_task() {
        let mut b = ProgramBuilder::new();
        let main = b.begin_function("main");
        b.load_imm(Reg(1), 1);
        b.op_imm(AluOp::Add, Reg(1), Reg(1), 1);
        b.halt();
        b.end_function();
        let p = b.finish(main).unwrap();
        let tp = form(&p);
        assert_eq!(tp.static_task_count(), 1);
        let t = &tp.tasks()[0];
        assert_eq!(t.header().num_exits(), 1);
        assert_eq!(t.header().exits()[0].kind, ExitKind::Halt);
        assert_eq!(t.num_instrs(), 3);
    }

    #[test]
    fn loop_back_edge_to_entry_is_an_exit() {
        // A single-task loop: the back edge targets the task's own entry
        // and must be an exit (paper Fig. 1, task 3).
        let mut b = ProgramBuilder::new();
        let main = b.begin_function("main");
        let top = b.here_label();
        b.op_imm(AluOp::Add, Reg(1), Reg(1), 1);
        b.branch(Cond::Lt, Reg(1), Reg(2), top);
        b.halt();
        b.end_function();
        let p = b.finish(main).unwrap();
        let tp = form(&p);
        // One task contains the loop header; its header has a BRANCH exit
        // targeting its own entry.
        let loop_task = tp.task_at(Addr(0)).unwrap();
        let t = tp.task(loop_task);
        assert!(t
            .header()
            .exits()
            .iter()
            .any(|e| e.kind == ExitKind::Branch && e.target == Some(t.entry())));
    }

    #[test]
    fn call_terminates_task_and_return_point_starts_one() {
        let mut b = ProgramBuilder::new();
        let callee = b.begin_function("callee");
        b.ret();
        b.end_function();
        let main = b.begin_function("main");
        b.load_imm(Reg(1), 0);
        b.call_label(callee);
        b.op_imm(AluOp::Add, Reg(1), Reg(1), 1);
        b.halt();
        b.end_function();
        let p = b.finish(main).unwrap();
        let tp = form(&p);

        let (_, mf) = p.function_by_name("main").unwrap();
        let call_task = tp.task_at(mf.entry()).unwrap();
        let t = tp.task(call_task);
        let call_exit = t
            .header()
            .exits()
            .iter()
            .find(|e| e.kind == ExitKind::Call)
            .expect("call exit");
        // Target is the callee entry; return address starts a fresh task.
        let (_, cf) = p.function_by_name("callee").unwrap();
        assert_eq!(call_exit.target, Some(cf.entry()));
        let ra = call_exit.return_addr.unwrap();
        assert!(
            tp.task_entered_at(ra).is_some(),
            "return point must start a task"
        );
        // The callee entry is also a task entry.
        assert!(tp.task_entered_at(cf.entry()).is_some());
    }

    #[test]
    fn exit_budget_is_respected_on_branchy_code() {
        // A chain of conditional branches all targeting distinct far-away
        // blocks forces task splits.
        let mut b = ProgramBuilder::new();
        let main = b.begin_function("main");
        let mut outs = Vec::new();
        for _ in 0..8 {
            let l = b.new_label();
            b.branch(Cond::Eq, Reg(1), Reg(2), l);
            outs.push(l);
        }
        b.halt();
        for l in outs {
            b.bind(l);
            b.halt();
        }
        b.end_function();
        let p = b.finish(main).unwrap();
        let tp = form(&p);
        for t in tp.tasks() {
            assert!(t.header().num_exits() <= MAX_EXITS);
        }
        assert!(tp.static_task_count() >= 3, "the branch chain must split");
    }

    #[test]
    fn every_instruction_belongs_to_exactly_one_task() {
        let mut b = ProgramBuilder::new();
        let f = b.begin_function("f");
        let l = b.new_label();
        b.branch(Cond::Eq, Reg(0), Reg(1), l);
        b.load_imm(Reg(2), 1);
        b.bind(l);
        b.ret();
        b.end_function();
        let main = b.begin_function("main");
        b.call_label(f);
        b.halt();
        b.end_function();
        let p = b.finish(main).unwrap();
        let tp = form(&p);
        for pc in 0..p.len() as u32 {
            assert!(tp.task_at(Addr(pc)).is_some());
        }
    }

    #[test]
    fn indirect_jump_case_targets_become_task_entries() {
        let mut b = ProgramBuilder::new();
        let main = b.begin_function("main");
        let c0 = b.new_label();
        let c1 = b.new_label();
        let table = b.alloc_label_table(&[c0, c1]);
        b.load_imm(Reg(1), table as i32);
        b.load(Reg(2), Reg(1), 0);
        b.jump_indirect_with_targets(Reg(2), &[c0, c1]);
        b.bind(c0);
        b.halt();
        b.bind(c1);
        b.halt();
        b.end_function();
        let p = b.finish(main).unwrap();
        let tp = form(&p);
        // The dispatch task exits via INDIRECT_BRANCH.
        let dispatch = tp.task(tp.task_at(Addr(0)).unwrap());
        assert!(dispatch
            .header()
            .exits()
            .iter()
            .any(|e| e.kind == ExitKind::IndirectBranch));
        // Both case blocks are entries of their own tasks.
        for t in p.indirect_targets(Addr(2)).unwrap() {
            assert!(tp.task_entered_at(*t).is_some());
        }
    }

    #[test]
    fn unresolved_indirect_jump_is_rejected() {
        let mut b = ProgramBuilder::new();
        let main = b.begin_function("main");
        b.load_imm(Reg(1), 2);
        b.jump_indirect(Reg(1));
        b.halt();
        b.end_function();
        let p = b.finish(main).unwrap();
        let err = TaskFormer::default().form(&p).unwrap_err();
        assert!(matches!(err, FormError::UnresolvedIndirectJump(_)));
    }

    #[test]
    fn declared_entries_split_blocks_and_start_tasks() {
        // A straight-line function is one block and one task; a declared
        // entry in the middle must split the block and start a task there.
        let mut b = ProgramBuilder::new();
        let main = b.begin_function("main");
        for _ in 0..6 {
            b.op_imm(AluOp::Add, Reg(1), Reg(1), 1);
        }
        b.halt();
        b.end_function();
        let p = b.finish(main).unwrap();

        let plain = TaskFormer::default().form(&p).unwrap();
        assert_eq!(plain.static_task_count(), 1);

        let tp = TaskFormer::default()
            .form_with_entries(&p, &[Addr(3)])
            .unwrap();
        tp.validate(&p).unwrap();
        assert_eq!(tp.static_task_count(), 2);
        assert!(tp.task_entered_at(Addr(3)).is_some());

        // Out-of-range declared entries are ignored.
        let same = TaskFormer::default()
            .form_with_entries(&p, &[Addr(999)])
            .unwrap();
        assert_eq!(same.static_task_count(), 1);
    }

    #[test]
    fn small_instruction_budget_splits_tasks() {
        let mut b = ProgramBuilder::new();
        let main = b.begin_function("main");
        for _ in 0..20 {
            b.op_imm(AluOp::Add, Reg(1), Reg(1), 1);
        }
        b.halt();
        b.end_function();
        let p = b.finish(main).unwrap();
        // A whole straight-line function is one block, so even a tiny
        // instruction budget cannot split a single block; but the default
        // config keeps it as one task.
        let tp = form(&p);
        assert_eq!(tp.static_task_count(), 1);

        // With branches creating multiple blocks, the budget forces splits.
        let mut b = ProgramBuilder::new();
        let main = b.begin_function("main");
        for _ in 0..6 {
            let skip = b.new_label();
            b.branch(Cond::Eq, Reg(1), Reg(2), skip);
            b.op_imm(AluOp::Add, Reg(3), Reg(3), 1);
            b.op_imm(AluOp::Add, Reg(3), Reg(3), 2);
            b.bind(skip);
            b.op_imm(AluOp::Add, Reg(4), Reg(4), 1);
        }
        b.halt();
        b.end_function();
        let p = b.finish(main).unwrap();
        let tight = TaskFormer::new(TaskFormConfig {
            max_instrs: 6,
            max_blocks: 4,
        })
        .form(&p)
        .unwrap();
        tight.validate(&p).unwrap();
        let loose = TaskFormer::default().form(&p).unwrap();
        assert!(tight.static_task_count() > loose.static_task_count());
        for t in tight.tasks() {
            assert!(t.num_instrs() <= 6 || t.block_starts().len() == 1);
        }
    }
}
