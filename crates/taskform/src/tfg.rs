//! The static **Task Flow Graph** (TFG) — the paper's Figure 1 view of a
//! Multiscalar executable: tasks at the nodes, control flow between tasks
//! on the arcs.
//!
//! Arcs with statically known targets (branch and call exits, plus call
//! return-addresses) are resolved to task ids; return and indirect exits
//! have statically unknown targets and appear as [`TfgArc::Unknown`]. This
//! is exactly the information the global sequencer's predictor must supply
//! at run time.

use crate::task::{TaskId, TaskProgram};
use multiscalar_isa::ExitKind;
use std::fmt::Write as _;

/// One outgoing arc of a task in the TFG.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TfgArc {
    /// Control transfers to a known task (branch/call exits).
    To(TaskId),
    /// Target unknown statically (returns, indirect branches/calls).
    Unknown(ExitKind),
}

/// The static task flow graph of a program.
#[derive(Debug, Clone)]
pub struct TaskFlowGraph {
    /// `arcs[task][exit]` — one arc per header exit, in exit order.
    arcs: Vec<Vec<TfgArc>>,
}

impl TaskFlowGraph {
    /// Builds the TFG from a task partition.
    pub fn build(tasks: &TaskProgram) -> TaskFlowGraph {
        let arcs = tasks
            .tasks()
            .iter()
            .map(|t| {
                t.header()
                    .exits()
                    .iter()
                    .map(|e| match e.target {
                        Some(addr) => match tasks.task_entered_at(addr) {
                            Some(id) => TfgArc::To(id),
                            None => TfgArc::Unknown(e.kind),
                        },
                        None => TfgArc::Unknown(e.kind),
                    })
                    .collect()
            })
            .collect();
        TaskFlowGraph { arcs }
    }

    /// Number of tasks (nodes).
    pub fn len(&self) -> usize {
        self.arcs.len()
    }

    /// `true` if the graph has no tasks.
    pub fn is_empty(&self) -> bool {
        self.arcs.is_empty()
    }

    /// The outgoing arcs of `task`, one per header exit.
    pub fn arcs(&self, task: TaskId) -> &[TfgArc] {
        &self.arcs[task.index()]
    }

    /// Successor tasks with statically known targets.
    pub fn known_succs(&self, task: TaskId) -> impl Iterator<Item = TaskId> + '_ {
        self.arcs[task.index()].iter().filter_map(|a| match a {
            TfgArc::To(t) => Some(*t),
            TfgArc::Unknown(_) => None,
        })
    }

    /// Fraction of all arcs whose target is statically known — an upper
    /// bound on how much of sequencing could ever be done without dynamic
    /// target prediction.
    pub fn known_arc_fraction(&self) -> f64 {
        let total: usize = self.arcs.iter().map(|a| a.len()).sum();
        if total == 0 {
            return 0.0;
        }
        let known = self
            .arcs
            .iter()
            .flatten()
            .filter(|a| matches!(a, TfgArc::To(_)))
            .count();
        known as f64 / total as f64
    }

    /// Tasks reachable from `entry` over known arcs.
    pub fn reachable_from(&self, entry: TaskId) -> usize {
        let mut seen = vec![false; self.arcs.len()];
        let mut stack = vec![entry];
        seen[entry.index()] = true;
        let mut n = 0;
        while let Some(t) = stack.pop() {
            n += 1;
            for s in self.known_succs(t) {
                if !seen[s.index()] {
                    seen[s.index()] = true;
                    stack.push(s);
                }
            }
        }
        n
    }

    /// Renders the graph in Graphviz dot format (tasks labelled with entry
    /// address and instruction count; unknown-target arcs drawn dashed to a
    /// per-kind sink).
    pub fn to_dot(&self, tasks: &TaskProgram) -> String {
        let mut s = String::from("digraph tfg {\n  node [shape=box];\n");
        for t in tasks.tasks() {
            let _ = writeln!(
                s,
                "  t{} [label=\"{} @{}\\n{} instrs\"];",
                t.id().index(),
                t.id(),
                t.entry().0,
                t.num_instrs()
            );
        }
        for (i, arcs) in self.arcs.iter().enumerate() {
            for (k, a) in arcs.iter().enumerate() {
                match a {
                    TfgArc::To(to) => {
                        let _ = writeln!(s, "  t{i} -> t{} [label=\"e{k}\"];", to.index());
                    }
                    TfgArc::Unknown(kind) => {
                        let sink = format!("u_{kind}").to_lowercase();
                        let _ = writeln!(s, "  t{i} -> {sink} [label=\"e{k}\", style=dashed];");
                    }
                }
            }
        }
        s.push_str("}\n");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::former::TaskFormer;
    use multiscalar_isa::{AluOp, Cond, ProgramBuilder, Reg};

    fn figure1_like() -> (multiscalar_isa::Program, TaskProgram) {
        let mut b = ProgramBuilder::new();
        let callee = b.begin_function("do_some_more");
        b.op_imm(AluOp::Add, Reg(5), Reg(5), 1);
        b.ret();
        b.end_function();
        let main = b.begin_function("main");
        let top = b.here_label();
        b.op_imm(AluOp::Add, Reg(1), Reg(1), 1);
        b.call_label(callee);
        b.branch(Cond::Lt, Reg(1), Reg(2), top);
        b.halt();
        b.end_function();
        let p = b.finish(main).unwrap();
        let tp = TaskFormer::default().form(&p).unwrap();
        (p, tp)
    }

    #[test]
    fn arcs_match_header_exits() {
        let (_p, tp) = figure1_like();
        let tfg = TaskFlowGraph::build(&tp);
        assert_eq!(tfg.len(), tp.static_task_count());
        for t in tp.tasks() {
            assert_eq!(tfg.arcs(t.id()).len(), t.header().num_exits());
        }
    }

    #[test]
    fn known_arcs_point_at_task_entries() {
        let (_p, tp) = figure1_like();
        let tfg = TaskFlowGraph::build(&tp);
        for t in tp.tasks() {
            for s in tfg.known_succs(t.id()) {
                assert!(s.index() < tp.static_task_count());
            }
        }
    }

    #[test]
    fn returns_are_unknown_arcs() {
        let (_p, tp) = figure1_like();
        let tfg = TaskFlowGraph::build(&tp);
        let ret_task = tp
            .tasks()
            .iter()
            .find(|t| {
                t.header()
                    .exits()
                    .iter()
                    .any(|e| e.kind == ExitKind::Return)
            })
            .expect("callee has a return");
        assert!(tfg
            .arcs(ret_task.id())
            .iter()
            .any(|a| matches!(a, TfgArc::Unknown(ExitKind::Return))));
        let frac = tfg.known_arc_fraction();
        assert!(
            frac > 0.0 && frac < 1.0,
            "mix of known and unknown arcs: {frac}"
        );
    }

    #[test]
    fn main_entry_reaches_loop_tasks() {
        let (p, tp) = figure1_like();
        let (_, mf) = p.function_by_name("main").unwrap();
        let entry = tp.task_entered_at(mf.entry()).unwrap();
        assert!(
            tfg_reach(&tp, entry) >= 2,
            "the loop tasks are statically reachable"
        );

        fn tfg_reach(tp: &TaskProgram, e: TaskId) -> usize {
            TaskFlowGraph::build(tp).reachable_from(e)
        }
    }

    #[test]
    fn dot_output_is_well_formed() {
        let (_p, tp) = figure1_like();
        let dot = TaskFlowGraph::build(&tp).to_dot(&tp);
        assert!(dot.starts_with("digraph tfg {"));
        assert!(dot.ends_with("}\n"));
        assert!(dot.contains("->"));
        assert!(dot.contains("style=dashed"), "unknown arcs rendered dashed");
    }
}
