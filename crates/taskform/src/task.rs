//! Tasks and the whole-program task map ([`TaskProgram`]).

use crate::header::TaskHeader;
use multiscalar_isa::{Addr, ExitIndex, Fingerprint, FingerprintHasher, FuncId, Program};
use std::fmt;
use std::hash::Hash as _;

/// Identifier of a task within a [`TaskProgram`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TaskId(pub u32);

impl TaskId {
    /// The raw index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "task#{}", self.0)
    }
}

/// One static task: a single-entry region of basic blocks within a function,
/// plus its header.
#[derive(Debug, Clone)]
pub struct Task {
    pub(crate) id: TaskId,
    pub(crate) func: FuncId,
    pub(crate) entry: Addr,
    pub(crate) header: TaskHeader,
    pub(crate) block_starts: Vec<Addr>,
    pub(crate) num_instrs: usize,
}

impl Task {
    /// The task's id within its [`TaskProgram`].
    pub fn id(&self) -> TaskId {
        self.id
    }

    /// The function the task belongs to.
    pub fn func(&self) -> FuncId {
        self.func
    }

    /// The task's entry address — the value used to identify the task in
    /// predictors (the "task starting address" of the paper).
    pub fn entry(&self) -> Addr {
        self.entry
    }

    /// The task header.
    pub fn header(&self) -> &TaskHeader {
        &self.header
    }

    /// Start addresses of the basic blocks making up the task, sorted.
    pub fn block_starts(&self) -> &[Addr] {
        &self.block_starts
    }

    /// Total static instruction count over all blocks.
    pub fn num_instrs(&self) -> usize {
        self.num_instrs
    }

    /// Assembles a task from raw parts, bypassing the task former.
    ///
    /// No validation is performed — the parts may describe a partition that
    /// violates every task-formation invariant. That is the point: analyzer
    /// tests use this to build adversarial fixtures (unsound create masks,
    /// exits pointing nowhere) that the former itself would never produce.
    /// Production code should always go through `TaskFormer`.
    pub fn from_raw_parts(
        id: TaskId,
        func: FuncId,
        entry: Addr,
        header: TaskHeader,
        block_starts: Vec<Addr>,
        num_instrs: usize,
    ) -> Task {
        Task {
            id,
            func,
            entry,
            header,
            block_starts,
            num_instrs,
        }
    }

    /// Replaces the task's header, keeping everything else.
    ///
    /// Like [`Task::from_raw_parts`], this exists so analyzer tests can
    /// tamper with a well-formed partition (e.g. corrupt one create mask)
    /// without reconstructing the whole `TaskProgram` by hand.
    pub fn set_header(&mut self, header: TaskHeader) {
        self.header = header;
    }
}

/// The result of task formation: every instruction of the program assigned
/// to exactly one task.
#[derive(Debug, Clone)]
pub struct TaskProgram {
    pub(crate) tasks: Vec<Task>,
    /// Task owning each instruction address (`task_by_addr[pc] = TaskId`).
    pub(crate) task_by_addr: Vec<TaskId>,
}

impl TaskProgram {
    /// Assembles a task program from raw parts, bypassing the task former.
    ///
    /// `task_by_addr[pc]` names the task owning instruction address `pc`.
    /// No validation is performed (see [`Task::from_raw_parts`]); feed the
    /// result to `multiscalar-analyze` to find out everything wrong with it.
    pub fn from_raw_parts(tasks: Vec<Task>, task_by_addr: Vec<TaskId>) -> TaskProgram {
        TaskProgram {
            tasks,
            task_by_addr,
        }
    }

    /// Mutable access to the tasks, for tests that corrupt a well-formed
    /// partition in place.
    pub fn tasks_mut(&mut self) -> &mut [Task] {
        &mut self.tasks
    }

    /// All tasks, indexed by [`TaskId`].
    pub fn tasks(&self) -> &[Task] {
        &self.tasks
    }

    /// The task with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn task(&self, id: TaskId) -> &Task {
        &self.tasks[id.index()]
    }

    /// Number of static tasks (paper Table 2, "Static Tasks").
    pub fn static_task_count(&self) -> usize {
        self.tasks.len()
    }

    /// The task containing instruction address `pc`.
    pub fn task_at(&self, pc: Addr) -> Option<TaskId> {
        self.task_by_addr.get(pc.index()).copied()
    }

    /// The task whose *entry* is `pc`, if `pc` starts a task.
    pub fn task_entered_at(&self, pc: Addr) -> Option<TaskId> {
        let id = self.task_at(pc)?;
        (self.tasks[id.index()].entry == pc).then_some(id)
    }

    /// Resolves which exit of `task` a dynamic transfer `(source_pc -> to)`
    /// took. Returns `None` if the transfer does not match any header exit —
    /// which would indicate a task-formation bug and is asserted against in
    /// the simulator.
    pub fn resolve_exit(&self, task: TaskId, source_pc: Addr, to: Addr) -> Option<ExitIndex> {
        self.tasks[task.index()].header.find_exit(source_pc, to)
    }

    /// A stable structural digest of the whole partition: every task's
    /// identity, region and header, plus the address→task map. Together
    /// with [`Program::fingerprint`] this content-addresses any artifact
    /// derived from executing the program under this partition (the
    /// harness's on-disk replay cache keys on both).
    pub fn fingerprint(&self) -> Fingerprint {
        let mut h = FingerprintHasher::new();
        self.tasks.len().hash(&mut h);
        for t in &self.tasks {
            t.id.0.hash(&mut h);
            t.func.0.hash(&mut h);
            t.entry.hash(&mut h);
            t.header.create_mask().hash(&mut h);
            t.header.exits().hash(&mut h);
            t.block_starts.hash(&mut h);
            t.num_instrs.hash(&mut h);
        }
        self.task_by_addr.hash(&mut h);
        h.finish128()
    }

    /// Sanity-checks the partition against the program: every address is
    /// covered, every task entry owns its entry address, every task has at
    /// most four exits, and exit sources lie inside their task. Returns a
    /// human-readable description of the first violation.
    ///
    /// Intended for tests and debugging; O(program size).
    pub fn validate(&self, program: &Program) -> Result<(), String> {
        if self.task_by_addr.len() != program.len() {
            return Err(format!(
                "task map covers {} addresses, program has {}",
                self.task_by_addr.len(),
                program.len()
            ));
        }
        for t in &self.tasks {
            if self.task_at(t.entry) != Some(t.id) {
                return Err(format!("{} does not own its entry {}", t.id, t.entry));
            }
            if t.header.num_exits() > multiscalar_isa::MAX_EXITS {
                return Err(format!("{} has too many exits", t.id));
            }
            for e in t.header.exits() {
                if self.task_at(e.source) != Some(t.id) {
                    return Err(format!(
                        "{} exit source {} lies outside the task",
                        t.id, e.source
                    ));
                }
            }
            for &b in &t.block_starts {
                if self.task_at(b) != Some(t.id) {
                    return Err(format!("{} block {} not owned by task", t.id, b));
                }
            }
        }
        Ok(())
    }
}
