#![warn(missing_docs)]

//! The Multiscalar **task former**: a compiler pass that partitions a
//! program's control-flow graphs into *tasks* and emits *task headers*,
//! standing in for the Wisconsin Multiscalar compiler used by the paper.
//!
//! A task is a connected, single-entry region of basic blocks. Control may
//! flow arbitrarily inside a task; it leaves through one of at most
//! [`multiscalar_isa::MAX_EXITS`] (four) *exits*, each classified as one of
//! the paper's Table 1 kinds ([`multiscalar_isa::ExitKind`]). The header
//! ([`TaskHeader`]) records, per exit: the kind (the paper's 5-bit *exit
//! specifier*), the target address when statically known (branches and
//! calls) and the return address for calls.
//!
//! ## Partitioning rules
//!
//! * Function entries, call-return points and indirect-jump case targets
//!   always start tasks (their blocks are *mandatory seeds*).
//! * Calls, indirect calls, returns and indirect jumps always terminate a
//!   task (they are always exits).
//! * Regions grow greedily over fall-through / branch / jump edges until the
//!   exit budget (4), instruction budget or block budget would be exceeded.
//! * A region boundary crossed by a branch fall-through or a block's plain
//!   fall-through is modelled as a `BRANCH` exit with a known target — the
//!   real compiler would insert an unconditional jump there; we account for
//!   it without rewriting the code.
//!
//! # Example
//!
//! ```
//! use multiscalar_isa::{AluOp, Cond, ProgramBuilder, Reg};
//! use multiscalar_taskform::{TaskFormer, TaskFormConfig};
//!
//! let mut b = ProgramBuilder::new();
//! let main = b.begin_function("main");
//! let top = b.here_label();
//! b.op_imm(AluOp::Add, Reg(1), Reg(1), 1);
//! b.branch(Cond::Lt, Reg(1), Reg(2), top);
//! b.halt();
//! b.end_function();
//! let p = b.finish(main)?;
//!
//! let tasks = TaskFormer::new(TaskFormConfig::default()).form(&p).unwrap();
//! assert!(tasks.static_task_count() >= 1);
//! for t in tasks.tasks() {
//!     assert!(t.header().num_exits() <= 4);
//! }
//! # Ok::<(), multiscalar_isa::BuildError>(())
//! ```

mod former;
mod header;
mod task;
pub mod tfg;

pub use former::{FormError, TaskFormConfig, TaskFormer};
pub use header::{ExitSpec, TaskHeader};
pub use task::{Task, TaskId, TaskProgram};
pub use tfg::{TaskFlowGraph, TfgArc};
