//! Minimal stand-in for the `criterion` benchmarking API.
//!
//! The container this repo builds in has no network access to a cargo
//! registry, so the real criterion cannot be fetched. This shim provides the
//! exact subset of its API the bench targets use — `Criterion`,
//! `benchmark_group`, `sample_size`, `bench_function`, `Bencher::iter`,
//! `criterion_group!`, `criterion_main!` — over `std::time::Instant`, and
//! prints median/min/max per benchmark. It is a measurement convenience, not
//! a statistics engine; swap the real criterion back in when a registry is
//! reachable.

pub use std::hint::black_box;
use std::time::{Duration, Instant};

/// Top-level handle, mirroring `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\nbench group: {name}");
        BenchmarkGroup {
            _c: self,
            name,
            sample_size: 20,
        }
    }
}

/// A named group of benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark collects.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Times one benchmark function.
    pub fn bench_function<S, F>(&mut self, id: S, mut f: F) -> &mut Self
    where
        S: Into<String>,
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            rounds: self.sample_size,
        };
        f(&mut b);
        let mut s = b.samples;
        s.sort_unstable();
        let (median, min, max) = if s.is_empty() {
            (Duration::ZERO, Duration::ZERO, Duration::ZERO)
        } else {
            (s[s.len() / 2], s[0], s[s.len() - 1])
        };
        println!(
            "  {}/{id:<28} median {median:>12.3?}  (min {min:?}, max {max:?}, n={})",
            self.name,
            s.len()
        );
        self
    }

    /// Ends the group (printing is already done incrementally).
    pub fn finish(self) {}
}

/// Passed to each benchmark closure; `iter` runs and times the payload.
pub struct Bencher {
    samples: Vec<Duration>,
    rounds: usize,
}

impl Bencher {
    /// Runs `f` once untimed as warm-up, then `rounds` timed samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f());
        for _ in 0..self.rounds {
            let t0 = Instant::now();
            black_box(f());
            self.samples.push(t0.elapsed());
        }
    }
}

/// Declares a function running a list of benchmark functions, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares `main` for a bench target, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
