//! Property-based tests: the functional simulator over random structured
//! programs — trace well-formedness, determinism, and predictor-harness
//! invariants.

use multiscalar_core::automata::LastExitHysteresis;
use multiscalar_core::dolc::Dolc;
use multiscalar_core::history::PathPredictor;
use multiscalar_core::predictor::TaskPredictor;
use multiscalar_sim::measure::{measure_full, task_descs};
use multiscalar_sim::trace::collect_trace;
use multiscalar_sim::timing::{simulate, NextTaskPredictor, TimingConfig};
use multiscalar_taskform::TaskFormer;
use multiscalar_workloads::synthetic::{random_program, SyntheticConfig};
use proptest::prelude::*;

type Leh2 = LastExitHysteresis<2>;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn traces_are_well_formed(
        seed in 0u64..10_000,
        functions in 1usize..6,
        constructs in 1usize..6,
    ) {
        let p = random_program(seed, &SyntheticConfig { functions, constructs, nesting: 2 });
        let tp = TaskFormer::default().form(&p).unwrap();
        let run = collect_trace(&p, &tp, 5_000_000).expect("trace succeeds");

        prop_assert_eq!(run.events.len() as u64, run.stats.dynamic_tasks);
        for e in &run.events {
            let task = tp.task(e.task);
            // The exit index refers to a real header exit of that task.
            let spec = task.header().exits().get(e.exit.index()).expect("exit exists");
            prop_assert_eq!(spec.kind, e.kind);
            // Control landed on a task entry.
            prop_assert!(tp.task_entered_at(e.next).is_some());
            // Known-target exits must match the recorded destination.
            if let Some(t) = spec.target {
                prop_assert_eq!(t, e.next);
            }
            prop_assert!(e.instrs >= 1);
        }
    }

    #[test]
    fn traces_are_deterministic(seed in 0u64..5_000) {
        let p = random_program(seed, &SyntheticConfig::default());
        let tp = TaskFormer::default().form(&p).unwrap();
        let a = collect_trace(&p, &tp, 5_000_000).unwrap();
        let b = collect_trace(&p, &tp, 5_000_000).unwrap();
        prop_assert_eq!(a.events, b.events);
    }

    #[test]
    fn full_predictor_never_panics_and_counts_every_event(
        seed in 0u64..5_000,
    ) {
        let p = random_program(seed, &SyntheticConfig::default());
        let tp = TaskFormer::default().form(&p).unwrap();
        let run = collect_trace(&p, &tp, 5_000_000).unwrap();
        let descs = task_descs(&tp);
        let mut pred = TaskPredictor::<PathPredictor<Leh2>>::path(
            Dolc::new(3, 4, 5, 6, 2),
            Dolc::new(3, 3, 4, 4, 2),
            16,
        );
        let stats = measure_full(&mut pred, &descs, &run.events);
        prop_assert_eq!(stats.exits.predictions, run.events.len() as u64);
        prop_assert!(stats.exits.misses <= stats.exits.predictions);
        // An exit miss implies a next-task miss, so next-task misses are
        // at least as common.
        prop_assert!(stats.next_task.misses >= stats.exits.misses);
    }

    #[test]
    fn perfect_timing_dominates_real_timing(
        seed in 0u64..2_000,
    ) {
        let p = random_program(seed, &SyntheticConfig::default());
        let tp = TaskFormer::default().form(&p).unwrap();
        let descs = task_descs(&tp);
        let config = TimingConfig::default();
        let perfect = simulate(&p, &tp, &descs, None, &config, 5_000_000).unwrap();
        let mut pred = TaskPredictor::<PathPredictor<Leh2>>::path(
            Dolc::new(3, 4, 5, 6, 2),
            Dolc::new(3, 3, 4, 4, 2),
            16,
        );
        let real = simulate(
            &p,
            &tp,
            &descs,
            Some(&mut pred as &mut dyn NextTaskPredictor),
            &config,
            5_000_000,
        )
        .unwrap();
        prop_assert_eq!(perfect.instructions, real.instructions);
        prop_assert!(perfect.cycles <= real.cycles, "perfect prediction can never be slower");
        prop_assert_eq!(perfect.task_mispredicts, 0);
        // IPC is bounded by the machine's peak.
        let peak = (config.n_units as f64) * (config.issue_width as f64);
        prop_assert!(perfect.ipc() <= peak + 1e-9);
    }

    #[test]
    fn trace_instruction_totals_match_interpreter(
        seed in 0u64..2_000,
    ) {
        let p = random_program(seed, &SyntheticConfig::default());
        let tp = TaskFormer::default().form(&p).unwrap();
        let run = collect_trace(&p, &tp, 5_000_000).unwrap();
        let mut interp = multiscalar_isa::Interpreter::new(&p);
        let out = interp.run(5_000_000).unwrap();
        prop_assert!(out.halted);
        prop_assert_eq!(run.stats.instructions, out.steps);
    }
}
