//! Seeded-sweep tests: the functional simulator over random structured
//! programs — trace well-formedness, determinism, and predictor-harness
//! invariants.

use multiscalar_core::automata::LastExitHysteresis;
use multiscalar_core::dolc::Dolc;
use multiscalar_core::history::PathPredictor;
use multiscalar_core::predictor::TaskPredictor;
use multiscalar_sim::measure::{measure_full, task_descs};
use multiscalar_sim::timing::{simulate, NextTaskPredictor, TimingConfig};
use multiscalar_sim::trace::collect_trace;
use multiscalar_taskform::TaskFormer;
use multiscalar_workloads::rng::{Rng, SeedableRng, StdRng};
use multiscalar_workloads::synthetic::{random_program, SyntheticConfig};

type Leh2 = LastExitHysteresis<2>;

#[test]
fn traces_are_well_formed() {
    let mut draws = StdRng::seed_from_u64(0x51B1);
    for _ in 0..48 {
        let seed = draws.gen_range(0..10_000u64);
        let functions = draws.gen_range(1..6usize);
        let constructs = draws.gen_range(1..6usize);
        let p = random_program(
            seed,
            &SyntheticConfig {
                functions,
                constructs,
                nesting: 2,
                mem_ops: 0,
            },
        );
        let tp = TaskFormer::default().form(&p).unwrap();
        let run = collect_trace(&p, &tp, 5_000_000).expect("trace succeeds");

        assert_eq!(run.events.len() as u64, run.stats.dynamic_tasks);
        for e in run.events.iter() {
            let task = tp.task(e.task);
            // The exit index refers to a real header exit of that task.
            let spec = task
                .header()
                .exits()
                .get(e.exit.index())
                .expect("exit exists");
            assert_eq!(spec.kind, e.kind);
            // Control landed on a task entry.
            assert!(tp.task_entered_at(e.next).is_some());
            // Known-target exits must match the recorded destination.
            if let Some(t) = spec.target {
                assert_eq!(t, e.next);
            }
            assert!(e.instrs >= 1);
        }
    }
}

#[test]
fn traces_are_deterministic() {
    for seed in 0..24u64 {
        let p = random_program(seed * 97, &SyntheticConfig::default());
        let tp = TaskFormer::default().form(&p).unwrap();
        let a = collect_trace(&p, &tp, 5_000_000).unwrap();
        let b = collect_trace(&p, &tp, 5_000_000).unwrap();
        assert_eq!(a.events, b.events);
    }
}

#[test]
fn full_predictor_never_panics_and_counts_every_event() {
    for seed in 0..24u64 {
        let p = random_program(seed * 89, &SyntheticConfig::default());
        let tp = TaskFormer::default().form(&p).unwrap();
        let run = collect_trace(&p, &tp, 5_000_000).unwrap();
        let descs = task_descs(&tp);
        let mut pred = TaskPredictor::<PathPredictor<Leh2>>::path(
            Dolc::new(3, 4, 5, 6, 2),
            Dolc::new(3, 3, 4, 4, 2),
            16,
        );
        let stats = measure_full(&mut pred, &descs, &run.events);
        assert_eq!(stats.exits.predictions, run.events.len() as u64);
        assert!(stats.exits.misses <= stats.exits.predictions);
        // An exit miss implies a next-task miss, so next-task misses are
        // at least as common.
        assert!(stats.next_task.misses >= stats.exits.misses);
    }
}

#[test]
fn perfect_timing_dominates_real_timing() {
    for seed in 0..16u64 {
        let p = random_program(seed * 83, &SyntheticConfig::default());
        let tp = TaskFormer::default().form(&p).unwrap();
        let descs = task_descs(&tp);
        let config = TimingConfig::default();
        let perfect = simulate(&p, &tp, &descs, None, &config, 5_000_000).unwrap();
        let mut pred = TaskPredictor::<PathPredictor<Leh2>>::path(
            Dolc::new(3, 4, 5, 6, 2),
            Dolc::new(3, 3, 4, 4, 2),
            16,
        );
        let real = simulate(
            &p,
            &tp,
            &descs,
            Some(&mut pred as &mut dyn NextTaskPredictor),
            &config,
            5_000_000,
        )
        .unwrap();
        assert_eq!(perfect.instructions, real.instructions);
        assert!(
            perfect.cycles <= real.cycles,
            "perfect prediction can never be slower"
        );
        assert_eq!(perfect.task_mispredicts, 0);
        // IPC is bounded by the machine's peak.
        let peak = (config.n_units as f64) * (config.issue_width as f64);
        assert!(perfect.ipc() <= peak + 1e-9);
    }
}

#[test]
fn trace_instruction_totals_match_interpreter() {
    for seed in 0..16u64 {
        let p = random_program(seed * 79, &SyntheticConfig::default());
        let tp = TaskFormer::default().form(&p).unwrap();
        let run = collect_trace(&p, &tp, 5_000_000).unwrap();
        let mut interp = multiscalar_isa::Interpreter::new(&p);
        let out = interp.run(5_000_000).unwrap();
        assert!(out.halted);
        assert_eq!(run.stats.instructions, out.steps);
    }
}
