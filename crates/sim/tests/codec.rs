//! Codec guarantees over the real workload set: round-trip identity on all
//! five SPEC92 analogs, trace derivation equivalent to the interpreter, and
//! adversarial decoding that errs instead of panicking.

use multiscalar_isa::fingerprint_of;
use multiscalar_sim::replay::{derive_trace, record_replay};
use multiscalar_sim::trace::collect_trace;
use multiscalar_sim::{decode_replay, encode_replay, CodecError};
use multiscalar_taskform::TaskFormer;
use multiscalar_workloads::{Spec92, WorkloadParams};

/// `decode(encode(r)) == r` on every workload, and the trace derived from
/// the decoded recording equals what the interpreter produces directly —
/// the property that lets one cached artifact serve both the functional
/// trace and the timing runs.
#[test]
fn round_trip_and_derived_trace_match_on_all_workloads() {
    let params = WorkloadParams::small(7);
    for &spec in &Spec92::ALL {
        let w = spec.build(&params);
        let tasks = TaskFormer::default().form(&w.program).unwrap();
        let replay = record_replay(&w.program, &tasks, w.max_steps).unwrap();
        let key = fingerprint_of(&(spec.name(), params.seed, params.scale));

        let bytes = encode_replay(&replay, key);
        let decoded = decode_replay(&bytes, key).unwrap_or_else(|e| panic!("{spec}: {e}"));
        assert_eq!(decoded, replay, "{spec}: round-trip must be identity");

        let derived = derive_trace(&decoded, &tasks);
        let direct = collect_trace(&w.program, &tasks, w.max_steps).unwrap();
        assert_eq!(derived.events, direct.events, "{spec}: derived events");
        assert_eq!(derived.stats, direct.stats, "{spec}: derived stats");
    }
}

/// A corrupted artifact of a real workload fails with a typed error — no
/// panic, no oversized allocation, no fabricated recording — for every
/// corruption class the cache store must survive.
#[test]
fn adversarial_decoding_errs_gracefully() {
    let params = WorkloadParams::small(7);
    let w = Spec92::Compress.build(&params);
    let tasks = TaskFormer::default().form(&w.program).unwrap();
    let replay = record_replay(&w.program, &tasks, w.max_steps).unwrap();
    let key = fingerprint_of(&"adversarial");
    let bytes = encode_replay(&replay, key);

    // Truncation anywhere: header, column boundaries, mid-payload.
    for cut in [
        0,
        3,
        4,
        7,
        8,
        23,
        24,
        31,
        32,
        40,
        bytes.len() / 2,
        bytes.len() - 1,
    ] {
        assert!(
            decode_replay(&bytes[..cut], key).is_err(),
            "cut at {cut} must fail"
        );
    }

    // A flipped bit in the trailing checksum itself.
    let mut flipped = bytes.clone();
    let last = flipped.len() - 1;
    flipped[last] ^= 0x01;
    assert_eq!(
        decode_replay(&flipped, key).unwrap_err(),
        CodecError::BadChecksum
    );

    // A flipped bit in the payload.
    let mut flipped = bytes.clone();
    let mid = flipped.len() / 2;
    flipped[mid] ^= 0x80;
    assert!(decode_replay(&flipped, key).is_err());

    // Wrong schema version in the header.
    let mut wrong_schema = bytes.clone();
    wrong_schema[4..8].copy_from_slice(&u32::MAX.to_le_bytes());
    assert_eq!(
        decode_replay(&wrong_schema, key).unwrap_err(),
        CodecError::BadSchema { found: u32::MAX }
    );

    // Looked up under a different key (stale or misfiled entry).
    assert!(matches!(
        decode_replay(&bytes, fingerprint_of(&"other")).unwrap_err(),
        CodecError::BadFingerprint { .. }
    ));

    // Junk appended after the checksum.
    let mut trailing = bytes.clone();
    trailing.push(0);
    assert_eq!(
        decode_replay(&trailing, key).unwrap_err(),
        CodecError::Malformed("trailing bytes after checksum")
    );

    // The pristine bytes still decode after all of the above.
    assert_eq!(decode_replay(&bytes, key).unwrap(), replay);
}
