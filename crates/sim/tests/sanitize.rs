//! Integration tests for the `sanitize` runtime sanitizer
//! (`cargo test --features sanitize -p multiscalar-sim`).

#![cfg(feature = "sanitize")]

use multiscalar_sim::arb::{Arb, ArbConfig};
use multiscalar_sim::sanitize::check_replay_agreement;
use multiscalar_sim::timing::{simulate, TimingConfig};
use multiscalar_sim::{record_replay, simulate_replay, task_descs};
use multiscalar_taskform::TaskFormer;
use multiscalar_workloads::{Spec92, WorkloadParams};

/// The two step feeds agree in lockstep on every built-in workload — the
/// strongest form of the "replay is bit-identical" claim, checked step by
/// step rather than only on the final result.
#[test]
fn replay_agrees_with_interpreter_on_all_workloads() {
    for &spec in Spec92::ALL.iter() {
        let w = spec.build(&WorkloadParams::small(3));
        let tasks = TaskFormer::default().form(&w.program).unwrap();
        let steps = check_replay_agreement(&w.program, &tasks, w.max_steps)
            .unwrap_or_else(|e| panic!("{spec}: {e}"));
        assert!(steps > 0, "{spec}: empty execution");
    }
}

/// A full sanitized timing run: every armed assertion (ARB FIFO commit,
/// monotone ring clocks) must hold over a real workload, and the replay
/// engine must still match the interpreter bit for bit.
#[test]
fn sanitized_timing_run_holds_all_invariants() {
    let w = Spec92::Compress.build(&WorkloadParams::small(5));
    let tasks = TaskFormer::default().form(&w.program).unwrap();
    let descs = task_descs(&tasks);
    let config = TimingConfig::default();
    let legacy = simulate(&w.program, &tasks, &descs, None, &config, w.max_steps).unwrap();
    let replay = record_replay(&w.program, &tasks, w.max_steps).unwrap();
    let fast = simulate_replay(&replay, &descs, None, &config);
    assert_eq!(legacy, fast);
    assert!(legacy.instructions > 0);
}

/// The ARB commit-order assertion actually fires: after committing stage 5,
/// committing a lower-numbered stage is a sanitizer panic.
#[test]
fn arb_commit_order_assertion_fires() {
    let mut a = Arb::new(ArbConfig::default());
    a.begin_task(5);
    assert_eq!(a.commit_head(), Some(5));
    // The window is empty, so `begin_task` accepts any sequence number —
    // only the sanitizer knows stage 3 would commit out of FIFO order.
    a.begin_task(3);
    let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| a.commit_head()));
    assert!(r.is_err(), "committing 3 after 5 must trip the sanitizer");
}
