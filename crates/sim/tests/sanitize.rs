//! Integration tests for the `sanitize` runtime sanitizer
//! (`cargo test --features sanitize -p multiscalar-sim`).

#![cfg(feature = "sanitize")]

use multiscalar_core::automata::LastExitHysteresis;
use multiscalar_core::dolc::Dolc;
use multiscalar_core::history::PathPredictor;
use multiscalar_core::predictor::TaskPredictor;
use multiscalar_sim::arb::{Arb, ArbConfig};
use multiscalar_sim::sanitize::{check_fused_agreement, check_replay_agreement};
use multiscalar_sim::timing::{simulate, NextTaskPredictor, TimingConfig};
use multiscalar_sim::{record_replay, simulate_replay, task_descs};
use multiscalar_taskform::TaskFormer;
use multiscalar_workloads::{Spec92, WorkloadParams};

/// The two step feeds agree in lockstep on every built-in workload — the
/// strongest form of the "replay is bit-identical" claim, checked step by
/// step rather than only on the final result.
#[test]
fn replay_agrees_with_interpreter_on_all_workloads() {
    for &spec in Spec92::ALL.iter() {
        let w = spec.build(&WorkloadParams::small(3));
        let tasks = TaskFormer::default().form(&w.program).unwrap();
        let steps = check_replay_agreement(&w.program, &tasks, w.max_steps)
            .unwrap_or_else(|e| panic!("{spec}: {e}"));
        assert!(steps > 0, "{spec}: empty execution");
    }
}

/// A full sanitized timing run: every armed assertion (ARB FIFO commit,
/// monotone ring clocks) must hold over a real workload, and the replay
/// engine must still match the interpreter bit for bit.
#[test]
fn sanitized_timing_run_holds_all_invariants() {
    let w = Spec92::Compress.build(&WorkloadParams::small(5));
    let tasks = TaskFormer::default().form(&w.program).unwrap();
    let descs = task_descs(&tasks);
    let config = TimingConfig::default();
    let legacy = simulate(&w.program, &tasks, &descs, None, &config, w.max_steps).unwrap();
    let replay = record_replay(&w.program, &tasks, w.max_steps).unwrap();
    let fast = simulate_replay(&replay, &descs, None, &config);
    assert_eq!(legacy, fast);
    assert!(legacy.instructions > 0);
}

/// The fused sweep engine agrees with solo runs in one process: same
/// recording, each predictor slot run solo and fused, results and cycle
/// breakdowns bit-identical per slot (the breakdown sink additionally
/// asserts its attribution sums to the run's cycle count).
#[test]
fn fused_sweep_agrees_with_solo_runs_and_breakdowns() {
    let w = Spec92::Compress.build(&WorkloadParams::small(7));
    let tasks = TaskFormer::default().form(&w.program).unwrap();
    let descs = task_descs(&tasks);
    let config = TimingConfig::paper();
    let make = |slot: usize| -> Option<Box<dyn NextTaskPredictor>> {
        match slot {
            // Slot 0 is perfect prediction; the rest are identical real
            // PATH predictors (so their results must also match each other).
            0 => None,
            _ => Some(Box::new(TaskPredictor::<
                PathPredictor<LastExitHysteresis<2>>,
            >::path(
                Dolc::new(4, 4, 6, 6, 2),
                Dolc::new(4, 3, 4, 4, 2),
                16,
            ))),
        }
    };
    let results =
        check_fused_agreement(&w.program, &tasks, &descs, &config, w.max_steps, 3, make).unwrap();
    assert_eq!(results.len(), 3);
    assert!(results.iter().all(|r| r.instructions > 0));
    assert_eq!(results[1], results[2], "identical slots must agree");
    assert!(
        results[0].cycles <= results[1].cycles,
        "perfect prediction can never be slower than a real predictor"
    );
}

/// The ARB commit-order assertion actually fires: after committing stage 5,
/// committing a lower-numbered stage is a sanitizer panic.
#[test]
fn arb_commit_order_assertion_fires() {
    let mut a = Arb::new(ArbConfig::default());
    a.begin_task(5);
    assert_eq!(a.commit_head(), Some(5));
    // The window is empty, so `begin_task` accepts any sequence number —
    // only the sanitizer knows stage 3 would commit out of FIFO order.
    a.begin_task(3);
    let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| a.commit_head()));
    assert!(r.is_err(), "committing 3 after 5 must trip the sanitizer");
}
