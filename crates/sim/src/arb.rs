//! An Address Resolution Buffer (ARB) model — the Multiscalar memory
//! disambiguation hardware of Franklin & Sohi ("ARB: A Hardware Mechanism
//! for Dynamic Reordering of Memory References", IEEE ToC 1996), which the
//! paper's processing-unit ring relies on (its reference \[5\]).
//!
//! The ARB is an interleaved, set-associative buffer. Each entry tracks one
//! memory address with per-*stage* (in-flight task) load/store marks:
//!
//! * a **load** records its stage so that a later store by an *older* stage
//!   can detect that the load ran too early (a memory-order violation that
//!   squashes the loading stage and everything younger);
//! * a **store** records its stage so later loads by *younger* stages can
//!   forward from it;
//! * when the head task commits, its stage's marks are erased and empty
//!   entries are freed;
//! * when a bank is full, the reference cannot be tracked and the machine
//!   must stall until the head commits.
//!
//! The timing simulator uses this structure for capacity/occupancy
//! modelling and violation bookkeeping; see
//! [`crate::timing::TimingConfig::arb`].

use std::collections::VecDeque;

/// Configuration of the ARB geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArbConfig {
    /// Number of interleaved banks (addresses map to `addr % banks`).
    pub banks: usize,
    /// Entries per bank.
    pub entries_per_bank: usize,
    /// Maximum in-flight stages (the ring size).
    pub stages: usize,
}

impl Default for ArbConfig {
    fn default() -> Self {
        ArbConfig {
            banks: 8,
            entries_per_bank: 32,
            stages: 4,
        }
    }
}

/// Outcome of recording a memory reference.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArbEvent {
    /// Tracked without incident.
    Ok,
    /// The bank had no free entry: the reference stalls until the head
    /// stage commits.
    Full,
    /// A store found younger stages that already loaded the address: those
    /// stages (task sequence numbers, ascending) must squash.
    Violation(Vec<u64>),
}

#[derive(Debug, Clone, Default)]
struct Entry {
    addr: u32,
    /// Task sequence numbers that loaded this address, ascending.
    loads: Vec<u64>,
    /// Task sequence numbers that stored to this address, ascending.
    stores: Vec<u64>,
}

#[derive(Debug, Clone, Default)]
struct Bank {
    entries: Vec<Entry>,
    /// Bit `i` set = `entries[i]` holds a live address. Banks are mostly
    /// empty (the head stage's marks are erased at every task retirement),
    /// so lookups walk set bits instead of scanning every entry.
    valid: u64,
}

/// The ARB: banks of address entries plus the active stage window.
#[derive(Debug, Clone)]
pub struct Arb {
    config: ArbConfig,
    banks: Vec<Bank>,
    /// Active (uncommitted) task sequence numbers, oldest first.
    window: VecDeque<u64>,
    /// Per active stage (parallel to `window`): the `(bank, entry)` slots
    /// whose marks the stage set, so commit only visits those instead of
    /// sweeping every entry. Slots may be stale after a squash — the sweep
    /// treats them as no-ops.
    touched: VecDeque<Vec<(u32, u32)>>,
    /// `banks - 1` when `banks` is a power of two: bank selection is then a
    /// mask instead of a divide (it runs on every memory reference).
    bank_mask: Option<u32>,
    /// Total references rejected because a bank was full.
    full_events: u64,
    /// Total violations detected.
    violations: u64,
    /// Sanitizer state: sequence number of the last committed stage, used
    /// to assert that commit order is strictly FIFO across the whole run
    /// (squashes may drop stages, but a committed sequence number can never
    /// repeat or decrease).
    #[cfg(feature = "sanitize")]
    last_committed: Option<u64>,
}

impl Arb {
    /// Creates an empty ARB.
    ///
    /// # Panics
    ///
    /// Panics if any geometry parameter is zero, or if `entries_per_bank`
    /// exceeds 64 (the occupancy-bitmask width).
    pub fn new(config: ArbConfig) -> Arb {
        assert!(config.banks > 0 && config.entries_per_bank > 0 && config.stages > 0);
        assert!(config.entries_per_bank <= 64, "bank occupancy mask is u64");
        Arb {
            banks: (0..config.banks)
                .map(|_| Bank {
                    entries: vec![Entry::default(); config.entries_per_bank],
                    valid: 0,
                })
                .collect(),
            bank_mask: config
                .banks
                .is_power_of_two()
                .then(|| config.banks as u32 - 1),
            config,
            window: VecDeque::new(),
            touched: VecDeque::new(),
            full_events: 0,
            violations: 0,
            #[cfg(feature = "sanitize")]
            last_committed: None,
        }
    }

    /// The configured geometry.
    pub fn config(&self) -> &ArbConfig {
        &self.config
    }

    /// Opens a new speculative stage for task `seq`. If the window is full
    /// the caller must [`Arb::commit_head`] first.
    ///
    /// # Panics
    ///
    /// Panics if the window already holds `stages` tasks, or `seq` is not
    /// strictly increasing.
    pub fn begin_task(&mut self, seq: u64) {
        assert!(self.window.len() < self.config.stages, "stage window full");
        if let Some(&back) = self.window.back() {
            assert!(seq > back, "task sequence numbers must increase");
        }
        self.window.push_back(seq);
        self.touched.push_back(Vec::new());
    }

    /// Number of active stages.
    pub fn active_stages(&self) -> usize {
        self.window.len()
    }

    /// `true` if a new stage cannot begin before a commit.
    pub fn window_full(&self) -> bool {
        self.window.len() == self.config.stages
    }

    fn entry_slot(&mut self, addr: u32) -> Option<(usize, usize)> {
        let b = match self.bank_mask {
            Some(m) => (addr & m) as usize,
            None => (addr as usize) % self.config.banks,
        };
        let bank = &mut self.banks[b];
        // Walk only the occupied slots for a match.
        let mut live = bank.valid;
        while live != 0 {
            let i = live.trailing_zeros() as usize;
            live &= live - 1;
            if bank.entries[i].addr == addr {
                return Some((b, i));
            }
        }
        // Lowest free slot, if any.
        let i = (!bank.valid).trailing_zeros() as usize;
        if i >= self.config.entries_per_bank {
            return None;
        }
        bank.valid |= 1 << i;
        let e = &mut bank.entries[i];
        e.addr = addr;
        e.loads.clear();
        e.stores.clear();
        Some((b, i))
    }

    /// Records that the stage for `seq` set a mark in slot `(b, i)`, so the
    /// commit sweep can find it without scanning every entry.
    fn touch(&mut self, seq: u64, b: usize, i: usize) {
        // Marks almost always come from the youngest stage.
        if self.window.back() == Some(&seq) {
            self.touched
                .back_mut()
                .expect("parallel to window")
                .push((b as u32, i as u32));
        } else if let Some(pos) = self.window.iter().rposition(|&s| s == seq) {
            self.touched[pos].push((b as u32, i as u32));
        }
    }

    /// Records a load of `addr` by the stage for task `seq`.
    pub fn load(&mut self, addr: u32, seq: u64) -> ArbEvent {
        debug_assert!(self.window.contains(&seq), "load from inactive stage");
        match self.entry_slot(addr) {
            Some((b, i)) => {
                let e = &mut self.banks[b].entries[i];
                if e.loads.last() != Some(&seq) {
                    e.loads.push(seq);
                    self.touch(seq, b, i);
                }
                ArbEvent::Ok
            }
            None => {
                self.full_events += 1;
                ArbEvent::Full
            }
        }
    }

    /// Records a store to `addr` by the stage for task `seq`, reporting any
    /// younger stages that loaded the address too early.
    pub fn store(&mut self, addr: u32, seq: u64) -> ArbEvent {
        debug_assert!(self.window.contains(&seq), "store from inactive stage");
        match self.entry_slot(addr) {
            Some((b, i)) => {
                let e = &mut self.banks[b].entries[i];
                let squash: Vec<u64> = e.loads.iter().copied().filter(|&l| l > seq).collect();
                if e.stores.last() != Some(&seq) {
                    e.stores.push(seq);
                    self.touch(seq, b, i);
                }
                if squash.is_empty() {
                    ArbEvent::Ok
                } else {
                    self.violations += squash.len() as u64;
                    ArbEvent::Violation(squash)
                }
            }
            None => {
                self.full_events += 1;
                ArbEvent::Full
            }
        }
    }

    /// Commits the head (oldest) stage: erases its marks and frees empty
    /// entries. Returns the committed task's sequence number.
    ///
    /// # Panics
    ///
    /// With the `sanitize` feature, panics if commit order is not strictly
    /// FIFO (a committed sequence number repeats or decreases).
    pub fn commit_head(&mut self) -> Option<u64> {
        let seq = self.window.pop_front()?;
        #[cfg(feature = "sanitize")]
        {
            if let Some(prev) = self.last_committed {
                assert!(
                    seq > prev,
                    "sanitize: ARB commit order violated: stage {seq} after {prev}"
                );
            }
            self.last_committed = Some(seq);
        }
        // Only the slots this stage marked can hold its marks; stale slots
        // (marks already erased by a squash, or re-allocated entries) fall
        // through the retains as no-ops.
        let touched = self.touched.pop_front().expect("parallel to window");
        for (b, i) in touched {
            let bank = &mut self.banks[b as usize];
            if bank.valid & (1 << i) == 0 {
                continue;
            }
            let e = &mut bank.entries[i as usize];
            e.loads.retain(|&l| l != seq);
            e.stores.retain(|&s| s != seq);
            if e.loads.is_empty() && e.stores.is_empty() {
                bank.valid &= !(1 << i);
            }
        }
        Some(seq)
    }

    /// Squashes every stage with sequence number `>= from`: their marks are
    /// erased (the tasks will re-execute).
    pub fn squash_from(&mut self, from: u64) {
        while self.window.back().is_some_and(|&s| s >= from) {
            self.window.pop_back();
            self.touched.pop_back();
        }
        for bank in &mut self.banks {
            let mut live = bank.valid;
            while live != 0 {
                let i = live.trailing_zeros() as usize;
                live &= live - 1;
                let e = &mut bank.entries[i];
                e.loads.retain(|&l| l < from);
                e.stores.retain(|&s| s < from);
                if e.loads.is_empty() && e.stores.is_empty() {
                    bank.valid &= !(1 << i);
                }
            }
        }
    }

    /// Currently valid (occupied) entries across all banks.
    pub fn occupancy(&self) -> usize {
        self.banks
            .iter()
            .map(|b| b.valid.count_ones() as usize)
            .sum()
    }

    /// References rejected because a bank was full.
    pub fn full_events(&self) -> u64 {
        self.full_events
    }

    /// Memory-order violations detected.
    pub fn violations(&self) -> u64 {
        self.violations
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arb() -> Arb {
        Arb::new(ArbConfig {
            banks: 2,
            entries_per_bank: 4,
            stages: 4,
        })
    }

    #[test]
    fn store_after_younger_load_is_a_violation() {
        let mut a = arb();
        a.begin_task(1);
        a.begin_task(2);
        // Task 2 (younger) loads address 100 first...
        assert_eq!(a.load(100, 2), ArbEvent::Ok);
        // ...then task 1 (older) stores to it: task 2 loaded stale data.
        match a.store(100, 1) {
            ArbEvent::Violation(squash) => assert_eq!(squash, vec![2]),
            other => panic!("expected violation, got {other:?}"),
        }
        assert_eq!(a.violations(), 1);
    }

    #[test]
    fn store_before_younger_load_is_fine() {
        let mut a = arb();
        a.begin_task(1);
        a.begin_task(2);
        assert_eq!(a.store(100, 1), ArbEvent::Ok);
        assert_eq!(
            a.load(100, 2),
            ArbEvent::Ok,
            "forwarding case, no violation"
        );
    }

    #[test]
    fn same_stage_reordering_is_not_a_violation() {
        let mut a = arb();
        a.begin_task(5);
        assert_eq!(a.load(64, 5), ArbEvent::Ok);
        assert_eq!(
            a.store(64, 5),
            ArbEvent::Ok,
            "intra-task order is the PU's job"
        );
    }

    #[test]
    fn commit_frees_entries() {
        let mut a = arb();
        a.begin_task(1);
        for addr in 0..4 {
            assert_eq!(a.load(addr * 2, 1), ArbEvent::Ok); // all to bank 0
        }
        assert_eq!(a.occupancy(), 4);
        assert_eq!(a.commit_head(), Some(1));
        assert_eq!(a.occupancy(), 0);
    }

    #[test]
    fn bank_overflow_reports_full() {
        let mut a = arb();
        a.begin_task(1);
        // Bank 0 has 4 entries; the 5th even-numbered address overflows.
        for addr in 0..4 {
            assert_eq!(a.load(addr * 2, 1), ArbEvent::Ok);
        }
        assert_eq!(a.load(100, 1), ArbEvent::Full);
        assert_eq!(a.full_events(), 1);
        // The odd bank still has room.
        assert_eq!(a.load(101, 1), ArbEvent::Ok);
    }

    #[test]
    fn squash_erases_young_marks() {
        let mut a = arb();
        a.begin_task(1);
        a.begin_task(2);
        a.begin_task(3);
        a.load(10, 2);
        a.load(10, 3);
        a.store(12, 3);
        a.squash_from(2);
        assert_eq!(a.active_stages(), 1);
        // Address 10 and 12 marks from stages 2,3 are gone.
        assert_eq!(a.occupancy(), 0);
        // The violation that *would* have hit stage 2 no longer exists.
        assert_eq!(a.store(10, 1), ArbEvent::Ok);
    }

    #[test]
    fn window_capacity_is_enforced() {
        let mut a = arb();
        for s in 1..=4 {
            a.begin_task(s);
        }
        assert!(a.window_full());
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| a.begin_task(5)));
        assert!(r.is_err(), "fifth stage must panic");
        a.commit_head();
        a.begin_task(5); // now fine
        assert_eq!(a.active_stages(), 4);
    }

    #[test]
    fn repeated_references_do_not_duplicate_marks() {
        let mut a = arb();
        a.begin_task(1);
        a.begin_task(2);
        for _ in 0..5 {
            a.load(40, 2);
        }
        match a.store(40, 1) {
            ArbEvent::Violation(squash) => assert_eq!(squash, vec![2]),
            other => panic!("{other:?}"),
        }
    }
}
