//! Driving predictors over task traces and measuring miss rates — the
//! paper's central methodology.
//!
//! Matching §3.1's idealisations: predictors are updated immediately after
//! each prediction with the true outcome (no stale-update delay), and no
//! wrong-path pollution occurs because the functional trace never goes down
//! a wrong path.

use crate::trace::{kind_slot, SharedTrace};
use multiscalar_core::dolc::PathRegister;
use multiscalar_core::lane::{BatchedExitPredictor, LaneAutomaton};
use multiscalar_core::predictor::{
    CttbOnlyPredictor, ExitInfo, ExitPredictor, TaskDesc, TaskPredictor,
};
use multiscalar_core::target::{Cttb, IdealCttb, Ttb};
use multiscalar_isa::{Addr, ExitKind};
use multiscalar_taskform::TaskProgram;
use std::sync::atomic::{AtomicU64, Ordering};

/// Process-wide count of lane-packed batched sweeps (see
/// [`measure_exits_batched`]). CI's `bench-pr6 --smoke` asserts the fast
/// path was actually exercised by reading this counter — a structural
/// proof, not a timing one.
static LANE_PACKED_SWEEPS: AtomicU64 = AtomicU64::new(0);

/// Number of lane-packed batched sweeps this process has run (monotonic).
pub fn lane_packed_sweeps() -> u64 {
    LANE_PACKED_SWEEPS.load(Ordering::Relaxed)
}

/// Converts the task former's headers into predictor-facing [`TaskDesc`]s,
/// indexed by [`multiscalar_taskform::TaskId`].
pub fn task_descs(tasks: &TaskProgram) -> Vec<TaskDesc> {
    tasks
        .tasks()
        .iter()
        .map(|t| {
            let exits = t
                .header()
                .exits()
                .iter()
                .map(|e| ExitInfo {
                    kind: e.kind,
                    target: e.target,
                    return_addr: e.return_addr,
                })
                .collect();
            TaskDesc::new(t.entry(), exits)
        })
        .collect()
}

/// Hit/miss counts with a convenience rate.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MissStats {
    /// Predictions made.
    pub predictions: u64,
    /// Predictions that were wrong.
    pub misses: u64,
}

impl MissStats {
    /// Records one outcome.
    #[inline]
    pub fn record(&mut self, miss: bool) {
        self.predictions += 1;
        self.misses += miss as u64;
    }

    /// Miss rate in `[0, 1]` (0 when nothing was predicted).
    pub fn miss_rate(&self) -> f64 {
        if self.predictions == 0 {
            0.0
        } else {
            self.misses as f64 / self.predictions as f64
        }
    }

    /// Merges another stats record into this one.
    pub fn merge(&mut self, other: MissStats) {
        self.predictions += other.predictions;
        self.misses += other.misses;
    }
}

/// Full breakdown from a composite ([`TaskPredictor`]) run.
#[derive(Debug, Clone, Copy, Default)]
pub struct FullStats {
    /// Exit-index prediction accuracy.
    pub exits: MissStats,
    /// Next-task-address accuracy (exit *and* target both right).
    pub next_task: MissStats,
    /// Target accuracy per exit kind (Table 1 order), measured over events
    /// whose *actual* exit had that kind. No `Halt` slot: the halting task
    /// never appears in a trace.
    pub target_by_kind: [MissStats; 5],
}

impl FullStats {
    /// Target accuracy for one exit kind (empty stats for `Halt`, which is
    /// never predicted).
    pub fn target_stats(&self, kind: ExitKind) -> MissStats {
        kind_slot(kind)
            .map(|i| self.target_by_kind[i])
            .unwrap_or_default()
    }
}

/// Measures an exit predictor alone (Figures 6, 7, 10, 11).
pub fn measure_exits<P: ExitPredictor>(
    predictor: &mut P,
    descs: &[TaskDesc],
    events: &SharedTrace,
) -> MissStats {
    let mut stats = MissStats::default();
    for e in events.iter() {
        let desc = &descs[e.task.index()];
        let predicted = predictor.predict(desc);
        stats.record(predicted != e.exit);
        predictor.update(desc, e.exit);
    }
    stats
}

/// Measures many independent exit predictors in a single trace walk.
///
/// Equivalent to calling [`measure_exits`] once per predictor, but the
/// multi-million-event trace is streamed exactly once: each event is decoded
/// once and fed to every predictor. Predictors never observe each other, so
/// the per-predictor results are bit-identical to the one-at-a-time loop —
/// this is what lets a whole depth sweep (`0..=8`) ride one walk.
///
/// When every predictor in the sweep is a PATH predictor over the **same**
/// lane-packable automaton family (the fig10/fig11 grid shape), use
/// [`measure_exits_batched`] instead: same results, one SWAR word per
/// event instead of a predictor-by-predictor loop.
pub fn measure_exits_fused<P: ExitPredictor>(
    predictors: &mut [P],
    descs: &[TaskDesc],
    events: &SharedTrace,
) -> Vec<MissStats> {
    let mut stats = vec![MissStats::default(); predictors.len()];
    for e in events.iter() {
        let desc = &descs[e.task.index()];
        for (p, s) in predictors.iter_mut().zip(stats.iter_mut()) {
            let predicted = p.predict(desc);
            s.record(predicted != e.exit);
            p.update(desc, e.exit);
        }
    }
    stats
}

/// Measures a whole homogeneous PATH sweep in one lane-packed trace walk —
/// the SWAR fast path of [`measure_exits_fused`].
///
/// One [`BatchedExitPredictor`] lane stands in for each scalar
/// `PathPredictor` of the sweep; per event the batch gathers one `u64`,
/// predicts and trains every lane with branchless lane arithmetic, and
/// reports a per-lane miss mask. Results — miss stats *and* states-touched
/// counts — are bit-identical to the scalar fused walk (`multiscalar-core`'s
/// `lane` module tests enforce the per-lane equivalence; the harness's
/// fused tests enforce it end to end against `measure_exits`).
pub fn measure_exits_batched<A: LaneAutomaton>(
    batch: &mut BatchedExitPredictor<A>,
    descs: &[TaskDesc],
    events: &SharedTrace,
) -> Vec<(MissStats, usize)> {
    LANE_PACKED_SWEEPS.fetch_add(1, Ordering::Relaxed);
    let n = batch.lanes();
    let mut stats = vec![MissStats::default(); n];
    for e in events.iter() {
        let mut miss = batch.step(&descs[e.task.index()], e.exit);
        for s in stats.iter_mut() {
            s.record(miss & 1 == 1);
            miss >>= 1;
        }
    }
    stats
        .into_iter()
        .enumerate()
        .map(|(k, s)| (s, batch.states_touched(k)))
        .collect()
}

/// Measures the full composite predictor: exit + RAS + header + CTTB
/// (Tables 3 and 4's prediction side).
pub fn measure_full<E: ExitPredictor>(
    predictor: &mut TaskPredictor<E>,
    descs: &[TaskDesc],
    events: &SharedTrace,
) -> FullStats {
    let mut stats = FullStats::default();
    for e in events.iter() {
        let desc = &descs[e.task.index()];
        let pred = predictor.predict(desc);
        let exit_miss = pred.exit != e.exit;
        stats.exits.record(exit_miss);
        stats
            .next_task
            .record(pred.target != Some(e.next) || exit_miss);
        // Target accuracy conditioned on the actual kind: what would the
        // right source have produced? Only meaningfully attributable when
        // the exit itself was predicted correctly.
        if !exit_miss {
            let slot = kind_slot(e.kind).expect("halting task is never recorded");
            stats.target_by_kind[slot].record(pred.target != Some(e.next));
        }
        predictor.update(desc, e.exit, e.next);
    }
    stats
}

/// Measures headerless CTTB-only next-task prediction (§6.4.2, Table 3).
pub fn measure_cttb_only(
    predictor: &mut CttbOnlyPredictor,
    descs: &[TaskDesc],
    events: &SharedTrace,
) -> MissStats {
    let mut stats = MissStats::default();
    for e in events.iter() {
        let cur = descs[e.task.index()].entry();
        let predicted = predictor.predict(cur);
        stats.record(predicted != Some(e.next));
        predictor.update(cur, e.next);
    }
    stats
}

/// Measures Table 3's two predictors — the full composite and the
/// headerless CTTB-only baseline — in a single trace walk.
///
/// Equivalent to [`measure_full`] followed by [`measure_cttb_only`], but
/// each event is decoded once and fed to both predictors (they never
/// observe each other), halving the trace traffic. Results are
/// bit-identical to the one-at-a-time loops.
pub fn measure_table3<E: ExitPredictor>(
    full: &mut TaskPredictor<E>,
    only: &mut CttbOnlyPredictor,
    descs: &[TaskDesc],
    events: &SharedTrace,
) -> (FullStats, MissStats) {
    let mut full_stats = FullStats::default();
    let mut only_stats = MissStats::default();
    for e in events.iter() {
        let desc = &descs[e.task.index()];
        let pred = full.predict(desc);
        let exit_miss = pred.exit != e.exit;
        full_stats.exits.record(exit_miss);
        full_stats
            .next_task
            .record(pred.target != Some(e.next) || exit_miss);
        if !exit_miss {
            let slot = kind_slot(e.kind).expect("halting task is never recorded");
            full_stats.target_by_kind[slot].record(pred.target != Some(e.next));
        }
        full.update(desc, e.exit, e.next);

        let cur = desc.entry();
        let predicted = only.predict(cur);
        only_stats.record(predicted != Some(e.next));
        only.update(cur, e.next);
    }
    (full_stats, only_stats)
}

/// A target buffer as seen by the measurement loop — implemented by the
/// real [`Ttb`] and [`Cttb`] and the alias-free [`IdealCttb`].
pub trait TargetBuffer {
    /// Predicts the target for the task at `current` given the path.
    fn predict(&self, path: &PathRegister, current: Addr) -> Option<Addr>;
    /// Trains with the actual target.
    fn update(&mut self, path: &PathRegister, current: Addr, actual: Addr);
    /// Path depth this buffer wants maintained.
    fn path_depth(&self) -> usize;
}

impl TargetBuffer for Ttb {
    fn predict(&self, _path: &PathRegister, current: Addr) -> Option<Addr> {
        Ttb::predict(self, current)
    }
    fn update(&mut self, _path: &PathRegister, current: Addr, actual: Addr) {
        Ttb::update(self, current, actual)
    }
    fn path_depth(&self) -> usize {
        0
    }
}

impl TargetBuffer for Cttb {
    fn predict(&self, path: &PathRegister, current: Addr) -> Option<Addr> {
        Cttb::predict(self, path, current)
    }
    fn update(&mut self, path: &PathRegister, current: Addr, actual: Addr) {
        Cttb::update(self, path, current, actual)
    }
    fn path_depth(&self) -> usize {
        self.dolc().depth()
    }
}

impl TargetBuffer for IdealCttb {
    fn predict(&self, path: &PathRegister, current: Addr) -> Option<Addr> {
        IdealCttb::predict(self, path, current)
    }
    fn update(&mut self, path: &PathRegister, current: Addr, actual: Addr) {
        IdealCttb::update(self, path, current, actual)
    }
    fn path_depth(&self) -> usize {
        self.depth()
    }
}

/// Measures target prediction for *indirect* exits only (Figures 8 and 12):
/// the buffer is consulted and trained on `INDIRECT_BRANCH` /
/// `INDIRECT_CALL` events; every event advances the path.
pub fn measure_indirect_targets<B: TargetBuffer>(
    buffer: &mut B,
    descs: &[TaskDesc],
    events: &SharedTrace,
) -> MissStats {
    let mut stats = MissStats::default();
    let mut path = PathRegister::new(buffer.path_depth());
    for e in events.iter() {
        let cur = descs[e.task.index()].entry();
        if e.kind.needs_target_buffer() {
            let predicted = buffer.predict(&path, cur);
            stats.record(predicted != Some(e.next));
            buffer.update(&path, cur, e.next);
        }
        path.push(cur);
    }
    stats
}

/// Measures many independent target buffers in a single trace walk
/// (the fused form of [`measure_indirect_targets`]).
///
/// Each buffer keeps its own [`PathRegister`] at its own depth, so results
/// are bit-identical to measuring the buffers one at a time.
pub fn measure_indirect_targets_fused<B: TargetBuffer>(
    buffers: &mut [B],
    descs: &[TaskDesc],
    events: &SharedTrace,
) -> Vec<MissStats> {
    let mut stats = vec![MissStats::default(); buffers.len()];
    let mut paths: Vec<PathRegister> = buffers
        .iter()
        .map(|b| PathRegister::new(b.path_depth()))
        .collect();
    for e in events.iter() {
        let cur = descs[e.task.index()].entry();
        let needs_target = e.kind.needs_target_buffer();
        for ((b, s), path) in buffers
            .iter_mut()
            .zip(stats.iter_mut())
            .zip(paths.iter_mut())
        {
            if needs_target {
                let predicted = b.predict(path, cur);
                s.record(predicted != Some(e.next));
                b.update(path, cur, e.next);
            }
            path.push(cur);
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::collect_trace;
    use multiscalar_core::automata::LastExitHysteresis;
    use multiscalar_core::dolc::Dolc;
    use multiscalar_core::history::PathPredictor;
    use multiscalar_isa::{AluOp, Cond, ProgramBuilder, Reg};
    use multiscalar_taskform::TaskFormer;

    type Leh2 = LastExitHysteresis<2>;

    /// A loop program whose loop task alternates exits in a fixed pattern.
    fn looped_program() -> (
        multiscalar_isa::Program,
        TaskProgram,
        std::sync::Arc<SharedTrace>,
    ) {
        let mut b = ProgramBuilder::new();
        let main = b.begin_function("main");
        b.load_imm(Reg(1), 0);
        b.load_imm(Reg(2), 400);
        let top = b.here_label();
        b.op_imm(AluOp::Add, Reg(1), Reg(1), 1);
        // A data-free inner diamond: taken when bit 0 of the counter set.
        b.op_imm(AluOp::And, Reg(3), Reg(1), 1);
        let odd = b.new_label();
        let join = b.new_label();
        b.branch(Cond::Ne, Reg(3), Reg(0), odd);
        b.op_imm(AluOp::Add, Reg(4), Reg(4), 1);
        b.jump(join);
        b.bind(odd);
        b.op_imm(AluOp::Add, Reg(5), Reg(5), 1);
        b.bind(join);
        b.branch(Cond::Lt, Reg(1), Reg(2), top);
        b.halt();
        b.end_function();
        let p = b.finish(main).unwrap();
        let tp = TaskFormer::default().form(&p).unwrap();
        let run = collect_trace(&p, &tp, 100_000).unwrap();
        (p, tp, run.events)
    }

    #[test]
    fn perfect_oracle_has_zero_misses() {
        struct Oracle(Option<multiscalar_isa::ExitIndex>);
        impl ExitPredictor for Oracle {
            fn predict(&mut self, _t: &TaskDesc) -> multiscalar_isa::ExitIndex {
                self.0.take().unwrap()
            }
            fn update(&mut self, _t: &TaskDesc, _a: multiscalar_isa::ExitIndex) {}
            fn states_touched(&self) -> usize {
                0
            }
        }
        // Feed the oracle the actual exits (simulating perfect prediction).
        let (_p, tp, events) = looped_program();
        let descs = task_descs(&tp);
        let mut stats = MissStats::default();
        for e in events.iter() {
            let mut o = Oracle(Some(e.exit));
            let got = o.predict(&descs[e.task.index()]);
            stats.record(got != e.exit);
        }
        assert_eq!(stats.misses, 0);
        assert_eq!(stats.predictions, events.len() as u64);
    }

    #[test]
    fn path_predictor_learns_the_loop_pattern() {
        let (_p, tp, events) = looped_program();
        let descs = task_descs(&tp);
        let mut pred: PathPredictor<Leh2> = PathPredictor::new(Dolc::new(4, 4, 6, 6, 2));
        let stats = measure_exits(&mut pred, &descs, &events);
        // The loop body alternates deterministically; with path history the
        // predictor should be nearly perfect after warmup.
        assert!(
            stats.miss_rate() < 0.10,
            "expected <10% misses on a deterministic loop, got {:.1}%",
            stats.miss_rate() * 100.0
        );
    }

    #[test]
    fn full_predictor_resolves_branch_targets_from_header() {
        let (_p, tp, events) = looped_program();
        let descs = task_descs(&tp);
        let mut pred = TaskPredictor::<PathPredictor<Leh2>>::path(
            Dolc::new(4, 4, 6, 6, 2),
            Dolc::new(4, 3, 4, 4, 2),
            16,
        );
        let stats = measure_full(&mut pred, &descs, &events);
        assert_eq!(stats.exits.predictions, events.len() as u64);
        // When the exit is right, a branch target from the header is always
        // right.
        let br = stats.target_stats(ExitKind::Branch);
        assert_eq!(br.misses, 0, "header targets cannot miss");
        // Next-task misses equal exit misses here (all targets known).
        assert_eq!(stats.next_task.misses, stats.exits.misses);
    }

    #[test]
    fn cttb_only_predicts_deterministic_sequences_well() {
        let (_p, tp, events) = looped_program();
        let descs = task_descs(&tp);
        let mut pred = CttbOnlyPredictor::new(Dolc::new(5, 4, 7, 7, 2));
        let stats = measure_cttb_only(&mut pred, &descs, &events);
        assert!(
            stats.miss_rate() < 0.15,
            "CTTB-only should learn a deterministic task sequence: {:.1}%",
            stats.miss_rate() * 100.0
        );
    }

    #[test]
    fn batched_walk_matches_scalar_fused_walk_and_counts_itself() {
        let (_p, tp, events) = looped_program();
        let descs = task_descs(&tp);
        let configs = [
            Dolc::new(0, 0, 0, 8, 1),
            Dolc::new(2, 4, 5, 5, 1),
            Dolc::new(4, 4, 6, 6, 2),
            Dolc::new(6, 5, 8, 9, 3),
        ];
        let mut scalars: Vec<PathPredictor<Leh2>> =
            configs.iter().map(|&d| PathPredictor::new(d)).collect();
        let fused = measure_exits_fused(&mut scalars, &descs, &events);

        let before = lane_packed_sweeps();
        let mut batch = multiscalar_core::lane::BatchedExitPredictor::<Leh2>::new(&configs)
            .expect("4 LEH lanes fit");
        let batched = measure_exits_batched(&mut batch, &descs, &events);
        assert_eq!(lane_packed_sweeps(), before + 1);

        for (k, p) in scalars.iter().enumerate() {
            assert_eq!(batched[k], (fused[k], p.states_touched()), "lane {k}");
        }
    }

    #[test]
    fn fused_table3_walk_matches_separate_walks() {
        let (_p, tp, events) = looped_program();
        let descs = task_descs(&tp);
        let mk_full = || {
            TaskPredictor::<PathPredictor<Leh2>>::path(
                Dolc::new(4, 4, 6, 6, 2),
                Dolc::new(4, 3, 4, 4, 2),
                16,
            )
        };
        let mk_only = || CttbOnlyPredictor::new(Dolc::new(5, 4, 7, 7, 2));

        let full_sep = measure_full(&mut mk_full(), &descs, &events);
        let only_sep = measure_cttb_only(&mut mk_only(), &descs, &events);
        let (full_fused, only_fused) =
            measure_table3(&mut mk_full(), &mut mk_only(), &descs, &events);

        assert_eq!(full_fused.exits, full_sep.exits);
        assert_eq!(full_fused.next_task, full_sep.next_task);
        assert_eq!(full_fused.target_by_kind, full_sep.target_by_kind);
        assert_eq!(only_fused, only_sep);
    }

    #[test]
    fn halt_kind_has_no_slot_and_empty_stats() {
        let (_p, tp, events) = looped_program();
        let descs = task_descs(&tp);
        let mut pred = TaskPredictor::<PathPredictor<Leh2>>::path(
            Dolc::new(4, 4, 6, 6, 2),
            Dolc::new(4, 3, 4, 4, 2),
            16,
        );
        let stats = measure_full(&mut pred, &descs, &events);
        assert_eq!(stats.target_stats(ExitKind::Halt), MissStats::default());
        for e in events.iter() {
            assert_ne!(e.kind, ExitKind::Halt, "traces never record halts");
        }
    }

    #[test]
    fn miss_stats_merge_and_rate() {
        let mut a = MissStats {
            predictions: 10,
            misses: 2,
        };
        let b = MissStats {
            predictions: 30,
            misses: 3,
        };
        a.merge(b);
        assert_eq!(a.predictions, 40);
        assert_eq!(a.misses, 5);
        assert!((a.miss_rate() - 0.125).abs() < 1e-12);
        assert_eq!(MissStats::default().miss_rate(), 0.0);
    }
}
