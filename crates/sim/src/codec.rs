//! Versioned binary codec for [`InstrReplay`] — the on-disk form of the
//! harness's content-addressed artifact cache.
//!
//! # Layout (all integers little-endian)
//!
//! ```text
//! offset  size  field
//! 0       4     magic "MSRP"
//! 4       4     schema version (CACHE_SCHEMA)
//! 8       16    content fingerprint (the cache key the artifact was
//!               recorded under; readers reject a mismatch)
//! 24      8     mem_words
//! 32      ...   7 columns, each: u64 element count, then the packed
//!               elements (ops u32, mem_addrs u32, branch_pcs u32,
//!               bound_at u64, bound_task u32, bound_exit u8,
//!               bound_next u32)
//! end-8   8     checksum: two-lane FxHash of every preceding byte
//! ```
//!
//! # Guarantees
//!
//! * **Round-trip equality**: `decode(encode(r, k), k) == r` for every
//!   recording (tested on all five workloads).
//! * **Graceful failure**: decoding never panics and never fabricates a
//!   recording. Truncation, bit flips, schema bumps and key mismatches all
//!   surface as a typed [`CodecError`]; on top of the checksum, decoded
//!   boundary columns are validated semantically (equal lengths, exit
//!   indices `< MAX_EXITS`, strictly ascending `bound_at` within range) so
//!   even a corruption that forges the checksum cannot reach
//!   [`crate::replay::ReplayCursor`]'s infallible fast path.
//!
//! Bump [`CACHE_SCHEMA`] whenever this layout *or the meaning of any
//! recorded field* changes (e.g. a timing-semantics change that alters what
//! recordings capture): stale artifacts then fail decode and get evicted
//! instead of silently producing wrong results.

use multiscalar_isa::{Fingerprint, FingerprintHasher, MAX_EXITS};
use std::fmt;
use std::hash::Hasher as _;

use crate::replay::InstrReplay;

/// Schema version of the artifact cache: codec layout + recording
/// semantics. Any change to either must bump this.
pub const CACHE_SCHEMA: u32 = 1;

/// File magic: "Multiscalar RePlay".
pub const MAGIC: [u8; 4] = *b"MSRP";

/// Why a cache artifact failed to decode. Every variant is recoverable:
/// the cache store logs it, evicts the entry and re-records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CodecError {
    /// The file does not start with [`MAGIC`] — not a replay artifact.
    BadMagic,
    /// The artifact was written under a different [`CACHE_SCHEMA`].
    BadSchema {
        /// The version found in the header.
        found: u32,
    },
    /// The embedded fingerprint does not match the key the artifact was
    /// looked up under — the entry is stale or misfiled.
    BadFingerprint {
        /// The fingerprint found in the header.
        found: Fingerprint,
    },
    /// The file ended before the declared contents.
    Truncated,
    /// The trailing checksum does not match the contents.
    BadChecksum,
    /// The contents decoded but violate a structural invariant.
    Malformed(&'static str),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::BadMagic => f.write_str("bad magic (not a replay artifact)"),
            CodecError::BadSchema { found } => {
                write!(f, "schema version {found}, expected {CACHE_SCHEMA}")
            }
            CodecError::BadFingerprint { found } => {
                write!(f, "fingerprint mismatch (found {found})")
            }
            CodecError::Truncated => f.write_str("truncated file"),
            CodecError::BadChecksum => f.write_str("checksum mismatch"),
            CodecError::Malformed(what) => write!(f, "malformed contents: {what}"),
        }
    }
}

impl std::error::Error for CodecError {}

fn checksum(bytes: &[u8]) -> u64 {
    let mut h = FingerprintHasher::new();
    h.write(bytes);
    h.finish()
}

fn push_u32s(out: &mut Vec<u8>, vals: &[u32]) {
    out.extend_from_slice(&(vals.len() as u64).to_le_bytes());
    for &v in vals {
        out.extend_from_slice(&v.to_le_bytes());
    }
}

fn push_u64s(out: &mut Vec<u8>, vals: &[u64]) {
    out.extend_from_slice(&(vals.len() as u64).to_le_bytes());
    for &v in vals {
        out.extend_from_slice(&v.to_le_bytes());
    }
}

/// Serialises a recording under cache key `key`.
pub fn encode_replay(r: &InstrReplay, key: Fingerprint) -> Vec<u8> {
    let payload = 4 * (r.ops.len() + r.mem_addrs.len() + r.branch_pcs.len())
        + 8 * r.bound_at.len()
        + 5 * r.bound_task.len() // bound_task u32 + bound_exit u8
        + 4 * r.bound_next.len();
    let mut out = Vec::with_capacity(32 + 7 * 8 + payload + 8);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&CACHE_SCHEMA.to_le_bytes());
    out.extend_from_slice(&key.to_le_bytes());
    out.extend_from_slice(&(r.mem_words as u64).to_le_bytes());
    push_u32s(&mut out, &r.ops);
    push_u32s(&mut out, &r.mem_addrs);
    push_u32s(&mut out, &r.branch_pcs);
    push_u64s(&mut out, &r.bound_at);
    push_u32s(&mut out, &r.bound_task);
    out.extend_from_slice(&(r.bound_exit.len() as u64).to_le_bytes());
    out.extend_from_slice(&r.bound_exit);
    push_u32s(&mut out, &r.bound_next);
    let sum = checksum(&out);
    out.extend_from_slice(&sum.to_le_bytes());
    out
}

/// Sequential reader over the encoded bytes; every read is bounds-checked
/// so corruption surfaces as [`CodecError::Truncated`], never a panic or an
/// oversized allocation.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        let end = self.pos.checked_add(n).ok_or(CodecError::Truncated)?;
        if end > self.buf.len() {
            return Err(CodecError::Truncated);
        }
        let out = &self.buf[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    fn read_u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    fn read_u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    fn read_len(&mut self) -> Result<usize, CodecError> {
        usize::try_from(self.read_u64()?).map_err(|_| CodecError::Truncated)
    }

    fn read_u32s(&mut self) -> Result<Vec<u32>, CodecError> {
        let n = self.read_len()?;
        let bytes = self.take(n.checked_mul(4).ok_or(CodecError::Truncated)?)?;
        Ok(bytes
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().expect("4-byte chunk")))
            .collect())
    }

    fn read_u64s(&mut self) -> Result<Vec<u64>, CodecError> {
        let n = self.read_len()?;
        let bytes = self.take(n.checked_mul(8).ok_or(CodecError::Truncated)?)?;
        Ok(bytes
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().expect("8-byte chunk")))
            .collect())
    }
}

/// Deserialises a recording, validating integrity (magic, schema version,
/// checksum), identity (`expected` cache key) and structure (boundary-array
/// consistency). See the module docs for the failure contract.
pub fn decode_replay(bytes: &[u8], expected: Fingerprint) -> Result<InstrReplay, CodecError> {
    let mut r = Reader { buf: bytes, pos: 0 };
    if r.take(4)? != MAGIC {
        return Err(CodecError::BadMagic);
    }
    let schema = r.read_u32()?;
    if schema != CACHE_SCHEMA {
        return Err(CodecError::BadSchema { found: schema });
    }
    let found = Fingerprint::from_le_bytes(r.take(16)?.try_into().expect("16 bytes"));
    if found != expected {
        return Err(CodecError::BadFingerprint { found });
    }
    let mem_words =
        usize::try_from(r.read_u64()?).map_err(|_| CodecError::Malformed("mem_words overflow"))?;
    let ops = r.read_u32s()?;
    let mem_addrs = r.read_u32s()?;
    let branch_pcs = r.read_u32s()?;
    let bound_at = r.read_u64s()?;
    let bound_task = r.read_u32s()?;
    let bound_exit = {
        let n = r.read_len()?;
        r.take(n)?.to_vec()
    };
    let bound_next = r.read_u32s()?;

    let body_end = r.pos;
    let sum = r.read_u64()?;
    if r.pos != bytes.len() {
        return Err(CodecError::Malformed("trailing bytes after checksum"));
    }
    if sum != checksum(&bytes[..body_end]) {
        return Err(CodecError::BadChecksum);
    }

    // Structural validation: the replay cursor's fast path is infallible by
    // construction, so nothing inconsistent may get past this point even if
    // it carries a valid checksum (e.g. written by a buggy future encoder).
    let n_bounds = bound_at.len();
    if bound_task.len() != n_bounds || bound_exit.len() != n_bounds || bound_next.len() != n_bounds
    {
        return Err(CodecError::Malformed("boundary column lengths differ"));
    }
    if ops.is_empty() {
        return Err(CodecError::Malformed("empty recording"));
    }
    if bound_exit.iter().any(|&e| e as usize >= MAX_EXITS) {
        return Err(CodecError::Malformed("exit index out of range"));
    }
    let mut prev = None;
    for &at in &bound_at {
        if at >= ops.len() as u64 || prev.is_some_and(|p| at <= p) {
            return Err(CodecError::Malformed("boundary op indices not ascending"));
        }
        prev = Some(at);
    }

    Ok(InstrReplay {
        ops,
        mem_addrs,
        branch_pcs,
        bound_at,
        bound_task,
        bound_exit,
        bound_next,
        mem_words,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::replay::record_replay;
    use multiscalar_isa::{fingerprint_of, AluOp, Cond, ProgramBuilder, Reg};
    use multiscalar_taskform::TaskFormer;

    fn recording() -> InstrReplay {
        let mut b = ProgramBuilder::new();
        let main = b.begin_function("main");
        b.load_imm(Reg(1), 0);
        b.load_imm(Reg(2), 40);
        let top = b.here_label();
        b.op_imm(AluOp::And, Reg(3), Reg(1), 3);
        b.store(Reg(1), Reg(3), 0);
        b.load(Reg(4), Reg(3), 0);
        b.op_imm(AluOp::Add, Reg(1), Reg(1), 1);
        b.branch(Cond::Lt, Reg(1), Reg(2), top);
        b.halt();
        b.end_function();
        let p = b.finish(main).unwrap();
        let tp = TaskFormer::default().form(&p).unwrap();
        record_replay(&p, &tp, 1_000_000).unwrap()
    }

    #[test]
    fn round_trip_is_identity() {
        let r = recording();
        let key = fingerprint_of(&"key");
        let bytes = encode_replay(&r, key);
        assert_eq!(decode_replay(&bytes, key).unwrap(), r);
    }

    #[test]
    fn every_truncation_point_errs_not_panics() {
        let r = recording();
        let key = fingerprint_of(&"key");
        let bytes = encode_replay(&r, key);
        // Exhaustive head truncations through the header + column starts,
        // then a sweep of whole-percent cuts through the payload.
        for cut in (0..bytes.len().min(128)).chain((1..100).map(|p| bytes.len() * p / 100)) {
            assert!(
                decode_replay(&bytes[..cut], key).is_err(),
                "cut at {cut} must fail"
            );
        }
    }

    #[test]
    fn flipped_byte_fails_checksum() {
        let r = recording();
        let key = fingerprint_of(&"key");
        let mut bytes = encode_replay(&r, key);
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        let err = decode_replay(&bytes, key).unwrap_err();
        assert!(
            matches!(
                err,
                CodecError::BadChecksum | CodecError::Truncated | CodecError::Malformed(_)
            ),
            "unexpected error {err:?}"
        );
    }

    #[test]
    fn wrong_schema_is_rejected() {
        let r = recording();
        let key = fingerprint_of(&"key");
        let mut bytes = encode_replay(&r, key);
        bytes[4..8].copy_from_slice(&(CACHE_SCHEMA + 1).to_le_bytes());
        assert_eq!(
            decode_replay(&bytes, key).unwrap_err(),
            CodecError::BadSchema {
                found: CACHE_SCHEMA + 1
            }
        );
    }

    #[test]
    fn wrong_fingerprint_is_rejected() {
        let r = recording();
        let bytes = encode_replay(&r, fingerprint_of(&"key-a"));
        assert!(matches!(
            decode_replay(&bytes, fingerprint_of(&"key-b")).unwrap_err(),
            CodecError::BadFingerprint { .. }
        ));
    }

    #[test]
    fn wrong_magic_is_rejected() {
        let r = recording();
        let key = fingerprint_of(&"key");
        let mut bytes = encode_replay(&r, key);
        bytes[0] = b'X';
        assert_eq!(
            decode_replay(&bytes, key).unwrap_err(),
            CodecError::BadMagic
        );
    }
}
