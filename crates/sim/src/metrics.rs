//! Cycle-attribution and event-tracing sinks for the timing core.
//!
//! [`crate::timing::simulate_core`] is generic over a [`MetricsSink`]. The
//! default [`NoopSink`] monomorphises every hook to nothing, so the plain
//! entry points ([`crate::timing::simulate`],
//! [`crate::replay::simulate_replay`]) pay **zero** cost and stay
//! bit-identical to the uninstrumented core. Passing a real sink
//! ([`CycleBreakdown`], [`TaskEventSink`]) through the `*_with_sink`
//! variants turns the same run into an attributed one.
//!
//! # The attribution model
//!
//! The core is event-driven, not cycle-stepped: it maintains a monotone
//! *completion frontier* (`CoreState::complete`) whose final value is
//! exactly [`TimingResult::cycles`]. Every advance of that frontier happens
//! at one of four sites, each of which reports a [`FrontierCause`]:
//!
//! * **startup** — the first task's dispatch and pipeline fill;
//! * **instruction completion** — an instruction's `issue + latency`
//!   pushing past the frontier;
//! * **ARB violation recovery** — a memory-order squash re-executing the
//!   offending load's task tail;
//! * **task boundary** — the next task's issue clock landing beyond the
//!   frontier (squash + refill after a task misprediction, a
//!   confidence-gated stall, or plain sequencer/dispatch serialisation).
//!
//! Within a task, pushes of the *issue cursor* (a dataflow wait, an ARB
//! bank-overflow penalty, an intra-task branch redirect) are reported as
//! [`StallCause`] *debt*. [`CycleBreakdown`] realises debt against the next
//! instruction-completion frontier advance: a stall that the ring hid under
//! task overlap never reaches the frontier and correctly costs nothing,
//! while a stall on the critical path is charged cycle for cycle. What
//! remains of an advance after paying debt is useful issue (including
//! memory latency of loads that were not stalled).
//!
//! Because every attributed cycle corresponds to one frontier advance and
//! the frontier ends at `TimingResult::cycles`, the per-cause counts sum to
//! the total **exactly**; [`CycleBreakdown::finish`] asserts it on every
//! run, for both the interpreter and the replay engine.

use crate::timing::TimingResult;
use std::fmt::Write as _;

/// Why the in-task issue cursor was pushed forward (stall *debt* — charged
/// against the frontier only if the stall reaches it).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StallCause {
    /// A source register was not ready: true dataflow dependence (possibly
    /// an inter-task forwarding delay around the ring).
    Dataflow = 0,
    /// An ARB bank had no free entry; the reference stalled until the
    /// configured overflow penalty elapsed.
    ArbFull = 1,
    /// An intra-task conditional branch mispredicted; the unit redirected
    /// after `intra_penalty` cycles.
    IntraMispredict = 2,
}

/// Why the completion frontier advanced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrontierCause {
    /// Initial dispatch of the first task (pipeline fill).
    Startup,
    /// An instruction's completion (`issue + latency`) pushed the frontier.
    Issue,
    /// Recovery from an ARB memory-order violation (squash of the load's
    /// task tail and re-execution).
    Violation,
    /// Squash + refill after a task misprediction: the correct next task
    /// dispatched only after the mispredicting task completed and the
    /// machine recovered.
    Squash,
    /// The sequencer withheld speculation on a low-confidence prediction;
    /// the next task waited for the boundary to resolve.
    Gated,
    /// Correct-path dispatch serialisation: the next task's issue clock
    /// (dispatch throughput, ring-unit availability) outran the frontier.
    Dispatch,
}

/// One resolved task boundary, as the timing core saw it. Only constructed
/// when the sink's [`MetricsSink::ENABLED`] is true.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BoundaryEvent {
    /// Zero-based dynamic boundary number.
    pub index: u64,
    /// Static id of the retiring task.
    pub task: u32,
    /// Header exit number the task took.
    pub exit: u8,
    /// Entry address of the task executed next.
    pub next: u32,
    /// The predicted next-task address (`Some(next)` for perfect
    /// prediction, `None` when the predictor had no target).
    pub predicted: Option<u32>,
    /// Whether the prediction missed.
    pub miss: bool,
    /// Whether confidence gating withheld speculation at this boundary.
    pub gated: bool,
    /// Clock at which the retiring task completed.
    pub complete: u64,
    /// Clock at which the retiring task committed (strictly FIFO).
    pub commit: u64,
    /// Clock at which the next task was dispatched.
    pub dispatch: u64,
}

/// Observer of one timing run. All hooks have no-op defaults; implementors
/// override what they need. `ENABLED = false` lets the core skip even the
/// construction of event payloads, which is what makes [`NoopSink`] free.
pub trait MetricsSink {
    /// Whether the core should emit events to this sink at all.
    const ENABLED: bool;

    /// The in-task issue cursor was pushed forward by `cycles` (stall debt).
    #[inline(always)]
    fn issue_stall(&mut self, cause: StallCause, cycles: u64) {
        let _ = (cause, cycles);
    }

    /// The completion frontier advanced from `from` to `to` (`to >= from`;
    /// boundary sites report `to == from` advances too, so sinks can track
    /// cursor resets).
    #[inline(always)]
    fn frontier(&mut self, from: u64, to: u64, cause: FrontierCause) {
        let _ = (from, to, cause);
    }

    /// A task boundary resolved.
    #[inline(always)]
    fn boundary(&mut self, ev: &BoundaryEvent) {
        let _ = ev;
    }

    /// The run ended with this result.
    #[inline(always)]
    fn finish(&mut self, result: &TimingResult) {
        let _ = result;
    }
}

/// The default sink: every hook compiles away. [`crate::timing::simulate`]
/// and [`crate::replay::simulate_replay`] use it, so the uninstrumented
/// entry points are bit-identical and speed-neutral by monomorphisation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoopSink;

impl MetricsSink for NoopSink {
    const ENABLED: bool = false;
}

/// The attribution categories of a [`CycleBreakdown`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cause {
    /// Issuing instructions and waiting out their latencies.
    UsefulIssue = 0,
    /// True register-dataflow stalls (including inter-task forwarding).
    DataflowStall = 1,
    /// ARB bank-conflict/overflow stalls.
    ArbFullStall = 2,
    /// Intra-task conditional-branch misprediction redirects.
    IntraMispredict = 3,
    /// Squash + refill after a task misprediction.
    SquashRefill = 4,
    /// ARB memory-order squashes.
    ViolationSquash = 5,
    /// Dispatch/sequencer serialisation (incl. startup pipeline fill).
    SequencerIdle = 6,
    /// Confidence-gated stalls (speculation withheld).
    GatedStall = 7,
}

impl Cause {
    /// Number of categories.
    pub const COUNT: usize = 8;

    /// All categories, in reporting order.
    pub const ALL: [Cause; Cause::COUNT] = [
        Cause::UsefulIssue,
        Cause::DataflowStall,
        Cause::ArbFullStall,
        Cause::IntraMispredict,
        Cause::SquashRefill,
        Cause::ViolationSquash,
        Cause::SequencerIdle,
        Cause::GatedStall,
    ];

    /// Stable machine-readable key (used by `profile.json`).
    pub fn key(self) -> &'static str {
        match self {
            Cause::UsefulIssue => "useful_issue",
            Cause::DataflowStall => "dataflow_stall",
            Cause::ArbFullStall => "arb_full_stall",
            Cause::IntraMispredict => "intra_mispredict",
            Cause::SquashRefill => "squash_refill",
            Cause::ViolationSquash => "violation_squash",
            Cause::SequencerIdle => "sequencer_idle",
            Cause::GatedStall => "gated_stall",
        }
    }

    /// Short human-readable label (used by the profile table).
    pub fn label(self) -> &'static str {
        match self {
            Cause::UsefulIssue => "useful",
            Cause::DataflowStall => "dataflow",
            Cause::ArbFullStall => "arbfull",
            Cause::IntraMispredict => "intrabr",
            Cause::SquashRefill => "squash",
            Cause::ViolationSquash => "violate",
            Cause::SequencerIdle => "seqidle",
            Cause::GatedStall => "gated",
        }
    }
}

/// Attributes every cycle of a run to one [`Cause`]. The counts sum to
/// [`TimingResult::cycles`] exactly; [`MetricsSink::finish`] asserts it.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CycleBreakdown {
    cycles: [u64; Cause::COUNT],
    /// Outstanding issue-cursor pushes, per [`StallCause`], not yet
    /// realised against the frontier. Cleared whenever the cursor resets
    /// (boundary, violation recovery): a stall the ring overlapped away
    /// never becomes cycles.
    debt: [u64; 3],
}

impl CycleBreakdown {
    /// A zeroed breakdown.
    pub fn new() -> CycleBreakdown {
        CycleBreakdown::default()
    }

    /// Cycles attributed to `cause`.
    pub fn get(&self, cause: Cause) -> u64 {
        self.cycles[cause as usize]
    }

    /// Sum over all categories — equals the run's total cycles once the
    /// run finished.
    pub fn total(&self) -> u64 {
        self.cycles.iter().sum()
    }

    /// Pays an instruction-completion frontier advance out of outstanding
    /// stall debt (dataflow first, then ARB overflow, then intra-branch);
    /// the remainder is useful issue.
    fn pay(&mut self, mut delta: u64) {
        const ORDER: [(StallCause, Cause); 3] = [
            (StallCause::Dataflow, Cause::DataflowStall),
            (StallCause::ArbFull, Cause::ArbFullStall),
            (StallCause::IntraMispredict, Cause::IntraMispredict),
        ];
        for (stall, cause) in ORDER {
            let paid = delta.min(self.debt[stall as usize]);
            self.debt[stall as usize] -= paid;
            self.cycles[cause as usize] += paid;
            delta -= paid;
        }
        self.cycles[Cause::UsefulIssue as usize] += delta;
    }
}

impl MetricsSink for CycleBreakdown {
    const ENABLED: bool = true;

    fn issue_stall(&mut self, cause: StallCause, cycles: u64) {
        self.debt[cause as usize] += cycles;
    }

    fn frontier(&mut self, from: u64, to: u64, cause: FrontierCause) {
        debug_assert!(to >= from, "frontier must be monotone");
        let delta = to - from;
        match cause {
            FrontierCause::Issue => {
                self.pay(delta);
                return; // the cursor did not reset: debt stays armed
            }
            FrontierCause::Startup | FrontierCause::Dispatch => {
                self.cycles[Cause::SequencerIdle as usize] += delta;
            }
            FrontierCause::Squash => self.cycles[Cause::SquashRefill as usize] += delta,
            FrontierCause::Gated => self.cycles[Cause::GatedStall as usize] += delta,
            FrontierCause::Violation => self.cycles[Cause::ViolationSquash as usize] += delta,
        }
        // Boundary and violation sites reset the issue cursor; whatever
        // debt its pushes left behind was hidden under overlap.
        self.debt = [0; 3];
    }

    fn finish(&mut self, result: &TimingResult) {
        assert_eq!(
            self.total(),
            result.cycles,
            "cycle attribution must sum to the run's total cycles \
             (breakdown: {:?})",
            self.cycles
        );
    }
}

/// Records task-level events as JSON lines: `predict`, `resolve`, `squash`
/// (on a mispredicted, non-gated boundary), `commit` and `dispatch` per
/// boundary, with machine clocks and exit numbers, plus a final `halt`
/// line. Fields are numbers and fixed keywords only, so no JSON escaping
/// is needed.
#[derive(Debug, Clone, Default)]
pub struct TaskEventSink {
    out: String,
}

impl TaskEventSink {
    /// An empty sink.
    pub fn new() -> TaskEventSink {
        TaskEventSink::default()
    }

    /// The JSON-lines log recorded so far.
    pub fn as_str(&self) -> &str {
        &self.out
    }

    /// Consumes the sink, returning the JSON-lines log.
    pub fn into_jsonl(self) -> String {
        self.out
    }
}

impl MetricsSink for TaskEventSink {
    const ENABLED: bool = true;

    fn boundary(&mut self, ev: &BoundaryEvent) {
        let b = ev.index;
        let t = ev.task;
        match ev.predicted {
            Some(p) => {
                let _ = writeln!(
                    self.out,
                    "{{\"ev\":\"predict\",\"boundary\":{b},\"task\":{t},\"predicted\":{p}}}"
                );
            }
            None => {
                let _ = writeln!(
                    self.out,
                    "{{\"ev\":\"predict\",\"boundary\":{b},\"task\":{t},\"predicted\":null}}"
                );
            }
        }
        let _ = writeln!(
            self.out,
            "{{\"ev\":\"resolve\",\"boundary\":{b},\"task\":{t},\"exit\":{},\"next\":{},\
             \"miss\":{},\"clock\":{}}}",
            ev.exit, ev.next, ev.miss, ev.complete
        );
        if ev.miss && !ev.gated {
            let _ = writeln!(
                self.out,
                "{{\"ev\":\"squash\",\"boundary\":{b},\"task\":{t},\"clock\":{}}}",
                ev.complete
            );
        }
        let _ = writeln!(
            self.out,
            "{{\"ev\":\"commit\",\"boundary\":{b},\"task\":{t},\"clock\":{}}}",
            ev.commit
        );
        let _ = writeln!(
            self.out,
            "{{\"ev\":\"dispatch\",\"boundary\":{b},\"next\":{},\"gated\":{},\"clock\":{}}}",
            ev.next, ev.gated, ev.dispatch
        );
    }

    fn finish(&mut self, result: &TimingResult) {
        let _ = writeln!(
            self.out,
            "{{\"ev\":\"halt\",\"cycles\":{},\"instructions\":{},\"tasks\":{},\
             \"task_mispredicts\":{}}}",
            result.cycles, result.instructions, result.dynamic_tasks, result.task_mispredicts
        );
    }
}
