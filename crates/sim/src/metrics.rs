//! Cycle-attribution and event-tracing sinks for the timing core.
//!
//! [`crate::timing::simulate_core`] is generic over a [`MetricsSink`]. The
//! default [`NoopSink`] monomorphises every hook to nothing, so the plain
//! entry points ([`crate::timing::simulate`],
//! [`crate::replay::simulate_replay`]) pay **zero** cost and stay
//! bit-identical to the uninstrumented core. Passing a real sink
//! ([`CycleBreakdown`], [`TaskEventSink`]) through the `*_with_sink`
//! variants turns the same run into an attributed one.
//!
//! # The attribution model
//!
//! The core is event-driven, not cycle-stepped: it maintains a monotone
//! *completion frontier* (`CoreState::complete`) whose final value is
//! exactly [`TimingResult::cycles`]. Every advance of that frontier happens
//! at one of four sites, each of which reports a [`FrontierCause`]:
//!
//! * **startup** — the first task's dispatch and pipeline fill;
//! * **instruction completion** — an instruction's `issue + latency`
//!   pushing past the frontier;
//! * **ARB violation recovery** — a memory-order squash re-executing the
//!   offending load's task tail;
//! * **task boundary** — the next task's issue clock landing beyond the
//!   frontier (squash + refill after a task misprediction, a
//!   confidence-gated stall, or plain sequencer/dispatch serialisation).
//!
//! Within a task, pushes of the *issue cursor* (a dataflow wait, an ARB
//! bank-overflow penalty, an intra-task branch redirect) are reported as
//! [`StallCause`] *debt*. [`CycleBreakdown`] realises debt against the next
//! instruction-completion frontier advance: a stall that the ring hid under
//! task overlap never reaches the frontier and correctly costs nothing,
//! while a stall on the critical path is charged cycle for cycle. What
//! remains of an advance after paying debt is useful issue (including
//! memory latency of loads that were not stalled).
//!
//! Because every attributed cycle corresponds to one frontier advance and
//! the frontier ends at `TimingResult::cycles`, the per-cause counts sum to
//! the total **exactly**; [`CycleBreakdown::finish`] asserts it on every
//! run, for both the interpreter and the replay engine.

use crate::timing::TimingResult;
use std::fmt::Write as _;

/// Why the in-task issue cursor was pushed forward (stall *debt* — charged
/// against the frontier only if the stall reaches it).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StallCause {
    /// A source register was not ready: true dataflow dependence (possibly
    /// an inter-task forwarding delay around the ring).
    Dataflow = 0,
    /// An ARB bank had no free entry; the reference stalled until the
    /// configured overflow penalty elapsed.
    ArbFull = 1,
    /// An intra-task conditional branch mispredicted; the unit redirected
    /// after `intra_penalty` cycles.
    IntraMispredict = 2,
}

/// Why the completion frontier advanced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrontierCause {
    /// Initial dispatch of the first task (pipeline fill).
    Startup,
    /// An instruction's completion (`issue + latency`) pushed the frontier.
    Issue,
    /// Recovery from an ARB memory-order violation (squash of the load's
    /// task tail and re-execution).
    Violation,
    /// Squash + refill after a task misprediction: the correct next task
    /// dispatched only after the mispredicting task completed and the
    /// machine recovered.
    Squash,
    /// The sequencer withheld speculation on a low-confidence prediction;
    /// the next task waited for the boundary to resolve.
    Gated,
    /// Correct-path dispatch serialisation: the next task's issue clock
    /// (dispatch throughput, ring-unit availability) outran the frontier.
    Dispatch,
}

/// One resolved task boundary, as the timing core saw it. Only constructed
/// when the sink's [`MetricsSink::ENABLED`] is true.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BoundaryEvent {
    /// Zero-based dynamic boundary number.
    pub index: u64,
    /// Static id of the retiring task.
    pub task: u32,
    /// Header exit number the task took.
    pub exit: u8,
    /// Entry address of the task executed next.
    pub next: u32,
    /// The predicted next-task address (`Some(next)` for perfect
    /// prediction, `None` when the predictor had no target).
    pub predicted: Option<u32>,
    /// Whether the prediction missed.
    pub miss: bool,
    /// Whether confidence gating withheld speculation at this boundary.
    pub gated: bool,
    /// Clock at which the retiring task completed.
    pub complete: u64,
    /// Clock at which the retiring task committed (strictly FIFO).
    pub commit: u64,
    /// Clock at which the next task was dispatched.
    pub dispatch: u64,
}

/// Observer of one timing run. All hooks have no-op defaults; implementors
/// override what they need. `ENABLED = false` lets the core skip even the
/// construction of event payloads, which is what makes [`NoopSink`] free.
pub trait MetricsSink {
    /// Whether the core should emit events to this sink at all.
    const ENABLED: bool;

    /// The in-task issue cursor was pushed forward by `cycles` (stall debt).
    #[inline(always)]
    fn issue_stall(&mut self, cause: StallCause, cycles: u64) {
        let _ = (cause, cycles);
    }

    /// The completion frontier advanced from `from` to `to` (`to >= from`;
    /// boundary sites report `to == from` advances too, so sinks can track
    /// cursor resets).
    #[inline(always)]
    fn frontier(&mut self, from: u64, to: u64, cause: FrontierCause) {
        let _ = (from, to, cause);
    }

    /// A task boundary resolved.
    #[inline(always)]
    fn boundary(&mut self, ev: &BoundaryEvent) {
        let _ = ev;
    }

    /// The run ended with this result.
    #[inline(always)]
    fn finish(&mut self, result: &TimingResult) {
        let _ = result;
    }
}

/// The default sink: every hook compiles away. [`crate::timing::simulate`]
/// and [`crate::replay::simulate_replay`] use it, so the uninstrumented
/// entry points are bit-identical and speed-neutral by monomorphisation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoopSink;

impl MetricsSink for NoopSink {
    const ENABLED: bool = false;
}

/// The attribution categories of a [`CycleBreakdown`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cause {
    /// Issuing instructions and waiting out their latencies.
    UsefulIssue = 0,
    /// True register-dataflow stalls (including inter-task forwarding).
    DataflowStall = 1,
    /// ARB bank-conflict/overflow stalls.
    ArbFullStall = 2,
    /// Intra-task conditional-branch misprediction redirects.
    IntraMispredict = 3,
    /// Squash + refill after a task misprediction.
    SquashRefill = 4,
    /// ARB memory-order squashes.
    ViolationSquash = 5,
    /// Dispatch/sequencer serialisation (incl. startup pipeline fill).
    SequencerIdle = 6,
    /// Confidence-gated stalls (speculation withheld).
    GatedStall = 7,
}

impl Cause {
    /// Number of categories.
    pub const COUNT: usize = 8;

    /// All categories, in reporting order.
    pub const ALL: [Cause; Cause::COUNT] = [
        Cause::UsefulIssue,
        Cause::DataflowStall,
        Cause::ArbFullStall,
        Cause::IntraMispredict,
        Cause::SquashRefill,
        Cause::ViolationSquash,
        Cause::SequencerIdle,
        Cause::GatedStall,
    ];

    /// Stable machine-readable key (used by `profile.json`).
    pub fn key(self) -> &'static str {
        match self {
            Cause::UsefulIssue => "useful_issue",
            Cause::DataflowStall => "dataflow_stall",
            Cause::ArbFullStall => "arb_full_stall",
            Cause::IntraMispredict => "intra_mispredict",
            Cause::SquashRefill => "squash_refill",
            Cause::ViolationSquash => "violation_squash",
            Cause::SequencerIdle => "sequencer_idle",
            Cause::GatedStall => "gated_stall",
        }
    }

    /// Short human-readable label (used by the profile table).
    pub fn label(self) -> &'static str {
        match self {
            Cause::UsefulIssue => "useful",
            Cause::DataflowStall => "dataflow",
            Cause::ArbFullStall => "arbfull",
            Cause::IntraMispredict => "intrabr",
            Cause::SquashRefill => "squash",
            Cause::ViolationSquash => "violate",
            Cause::SequencerIdle => "seqidle",
            Cause::GatedStall => "gated",
        }
    }
}

/// Attributes every cycle of a run to one [`Cause`]. The counts sum to
/// [`TimingResult::cycles`] exactly; [`MetricsSink::finish`] asserts it.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CycleBreakdown {
    cycles: [u64; Cause::COUNT],
    /// Outstanding issue-cursor pushes, per [`StallCause`], not yet
    /// realised against the frontier. Cleared whenever the cursor resets
    /// (boundary, violation recovery): a stall the ring overlapped away
    /// never becomes cycles.
    debt: [u64; 3],
}

impl CycleBreakdown {
    /// A zeroed breakdown.
    pub fn new() -> CycleBreakdown {
        CycleBreakdown::default()
    }

    /// Cycles attributed to `cause`.
    pub fn get(&self, cause: Cause) -> u64 {
        self.cycles[cause as usize]
    }

    /// Sum over all categories — equals the run's total cycles once the
    /// run finished.
    pub fn total(&self) -> u64 {
        self.cycles.iter().sum()
    }

    /// Pays an instruction-completion frontier advance out of outstanding
    /// stall debt (dataflow first, then ARB overflow, then intra-branch);
    /// the remainder is useful issue.
    fn pay(&mut self, mut delta: u64) {
        const ORDER: [(StallCause, Cause); 3] = [
            (StallCause::Dataflow, Cause::DataflowStall),
            (StallCause::ArbFull, Cause::ArbFullStall),
            (StallCause::IntraMispredict, Cause::IntraMispredict),
        ];
        for (stall, cause) in ORDER {
            let paid = delta.min(self.debt[stall as usize]);
            self.debt[stall as usize] -= paid;
            self.cycles[cause as usize] += paid;
            delta -= paid;
        }
        self.cycles[Cause::UsefulIssue as usize] += delta;
    }
}

impl MetricsSink for CycleBreakdown {
    const ENABLED: bool = true;

    fn issue_stall(&mut self, cause: StallCause, cycles: u64) {
        self.debt[cause as usize] += cycles;
    }

    fn frontier(&mut self, from: u64, to: u64, cause: FrontierCause) {
        debug_assert!(to >= from, "frontier must be monotone");
        let delta = to - from;
        match cause {
            FrontierCause::Issue => {
                self.pay(delta);
                return; // the cursor did not reset: debt stays armed
            }
            FrontierCause::Startup | FrontierCause::Dispatch => {
                self.cycles[Cause::SequencerIdle as usize] += delta;
            }
            FrontierCause::Squash => self.cycles[Cause::SquashRefill as usize] += delta,
            FrontierCause::Gated => self.cycles[Cause::GatedStall as usize] += delta,
            FrontierCause::Violation => self.cycles[Cause::ViolationSquash as usize] += delta,
        }
        // Boundary and violation sites reset the issue cursor; whatever
        // debt its pushes left behind was hidden under overlap.
        self.debt = [0; 3];
    }

    fn finish(&mut self, result: &TimingResult) {
        assert_eq!(
            self.total(),
            result.cycles,
            "cycle attribution must sum to the run's total cycles \
             (breakdown: {:?})",
            self.cycles
        );
    }
}

/// Two sinks observing the same run: every hook fans out to both halves.
/// Enabled iff either half is, so pairing a live sink with [`NoopSink`]
/// costs nothing extra. This is how `harness profile --occupancy` attaches
/// a [`UnitOccupancy`] alongside the [`CycleBreakdown`] in one pass.
impl<A: MetricsSink, B: MetricsSink> MetricsSink for (A, B) {
    const ENABLED: bool = A::ENABLED || B::ENABLED;

    #[inline(always)]
    fn issue_stall(&mut self, cause: StallCause, cycles: u64) {
        self.0.issue_stall(cause, cycles);
        self.1.issue_stall(cause, cycles);
    }

    #[inline(always)]
    fn frontier(&mut self, from: u64, to: u64, cause: FrontierCause) {
        self.0.frontier(from, to, cause);
        self.1.frontier(from, to, cause);
    }

    #[inline(always)]
    fn boundary(&mut self, ev: &BoundaryEvent) {
        self.0.boundary(ev);
        self.1.boundary(ev);
    }

    #[inline(always)]
    fn finish(&mut self, result: &TimingResult) {
        self.0.finish(result);
        self.1.finish(result);
    }
}

/// Per-ring-unit occupancy: how each unit's cycles split into **busy**
/// (task execution on its critical path), **stalled** (in-task issue-cursor
/// pushes — dataflow waits, ARB overflow penalties, intra-branch redirects
/// — up to the task's residency) and **idle** (no task resident).
///
/// Tasks visit units round-robin; a unit is *occupied* by a task from the
/// task's start on that unit until the task commits and frees the unit
/// (`commit + 1`, matching the core's `unit_free` bookkeeping), and the
/// final in-flight task occupies its unit to the end of the run.
/// Successive residencies on one unit never overlap, so per unit
/// `busy + stalled + idle == cycles` exactly — [`MetricsSink::finish`]
/// asserts the grand total equals `cycles × n_units` on every run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnitOccupancy {
    busy: Vec<u64>,
    stalled: Vec<u64>,
    idle: Vec<u64>,
    /// End of the last finished residency per unit (`commit + 1`).
    last_end: Vec<u64>,
    /// Unit the currently resident task runs on.
    cur_unit: usize,
    /// Start of the current residency on `cur_unit`.
    cur_start: u64,
    /// Issue-stall cycles accumulated by the resident task.
    stall_acc: u64,
    /// Total cycles, recorded at finish.
    cycles: u64,
    finished: bool,
}

impl UnitOccupancy {
    /// A fresh sink for a ring of `n_units` units (pass the run's
    /// `TimingConfig::n_units`).
    ///
    /// # Panics
    ///
    /// Panics if `n_units` is zero.
    pub fn new(n_units: usize) -> UnitOccupancy {
        assert!(n_units > 0, "a ring needs at least one unit");
        UnitOccupancy {
            busy: vec![0; n_units],
            stalled: vec![0; n_units],
            idle: vec![0; n_units],
            last_end: vec![0; n_units],
            cur_unit: 0,
            cur_start: 0,
            stall_acc: 0,
            cycles: 0,
            finished: false,
        }
    }

    /// Number of ring units tracked.
    pub fn n_units(&self) -> usize {
        self.busy.len()
    }

    /// Busy cycles per unit (index = ring unit).
    pub fn busy(&self) -> &[u64] {
        &self.busy
    }

    /// Stalled cycles per unit.
    pub fn stalled(&self) -> &[u64] {
        &self.stalled
    }

    /// Idle cycles per unit (only meaningful after the run finished).
    pub fn idle(&self) -> &[u64] {
        &self.idle
    }

    /// Fraction of all unit-cycles that were busy (`0.0` on an empty run).
    pub fn busy_frac(&self) -> f64 {
        self.frac(&self.busy)
    }

    /// Fraction of all unit-cycles spent stalled.
    pub fn stalled_frac(&self) -> f64 {
        self.frac(&self.stalled)
    }

    /// Fraction of all unit-cycles spent idle.
    pub fn idle_frac(&self) -> f64 {
        self.frac(&self.idle)
    }

    fn frac(&self, what: &[u64]) -> f64 {
        let denom = self.cycles * self.n_units() as u64;
        if denom == 0 {
            0.0
        } else {
            what.iter().sum::<u64>() as f64 / denom as f64
        }
    }

    /// Closes the residency ending at `end` on the current unit, splitting
    /// it into stalled (up to the accumulated stall debt — stalls the ring
    /// overlapped away cannot exceed the residency) and busy.
    fn close_residency(&mut self, end: u64) {
        let u = self.cur_unit;
        let occupied = end.saturating_sub(self.cur_start);
        let stalled = self.stall_acc.min(occupied);
        self.stalled[u] += stalled;
        self.busy[u] += occupied - stalled;
        self.last_end[u] = self.last_end[u].max(end);
        self.stall_acc = 0;
    }
}

impl MetricsSink for UnitOccupancy {
    const ENABLED: bool = true;

    fn issue_stall(&mut self, _cause: StallCause, cycles: u64) {
        self.stall_acc += cycles;
    }

    fn boundary(&mut self, ev: &BoundaryEvent) {
        // The retiring task holds its unit until the commit point frees it.
        let end = (ev.commit + 1).max(self.cur_start);
        self.close_residency(end);
        // The next task starts on the next ring unit once it is dispatched
        // and that unit is free.
        let next = (self.cur_unit + 1) % self.n_units();
        self.cur_unit = next;
        self.cur_start = ev.dispatch.max(self.last_end[next]);
    }

    fn finish(&mut self, result: &TimingResult) {
        self.cycles = result.cycles;
        // The final in-flight task (which never retires through a boundary)
        // occupies its unit to the end of the run.
        self.cur_start = self.cur_start.min(self.cycles);
        self.close_residency(self.cycles);
        // Residencies end at `commit + 1`, and the last commit may equal
        // the final cycle count — clamp the (at most one cycle of)
        // overshoot per unit, then everything uncovered is idle.
        for u in 0..self.n_units() {
            let over = self.last_end[u].saturating_sub(self.cycles);
            let from_busy = over.min(self.busy[u]);
            self.busy[u] -= from_busy;
            self.stalled[u] -= (over - from_busy).min(self.stalled[u]);
            self.idle[u] = self
                .cycles
                .checked_sub(self.busy[u] + self.stalled[u])
                .expect("unit occupancy cannot exceed total cycles");
        }
        let total: u64 = (0..self.n_units())
            .map(|u| self.busy[u] + self.stalled[u] + self.idle[u])
            .sum();
        assert_eq!(
            total,
            self.cycles * self.n_units() as u64,
            "per-unit occupancy must sum to cycles x n_units \
             (busy {:?}, stalled {:?}, idle {:?})",
            self.busy,
            self.stalled,
            self.idle
        );
        self.finished = true;
    }
}

/// Records task-level events as JSON lines: `predict`, `resolve`, `squash`
/// (on a mispredicted, non-gated boundary), `commit` and `dispatch` per
/// boundary, with machine clocks and exit numbers, plus a final `halt`
/// line. Fields are numbers and fixed keywords only, so no JSON escaping
/// is needed.
#[derive(Debug, Clone, Default)]
pub struct TaskEventSink {
    out: String,
}

impl TaskEventSink {
    /// An empty sink.
    pub fn new() -> TaskEventSink {
        TaskEventSink::default()
    }

    /// The JSON-lines log recorded so far.
    pub fn as_str(&self) -> &str {
        &self.out
    }

    /// Consumes the sink, returning the JSON-lines log.
    pub fn into_jsonl(self) -> String {
        self.out
    }
}

impl MetricsSink for TaskEventSink {
    const ENABLED: bool = true;

    fn boundary(&mut self, ev: &BoundaryEvent) {
        let b = ev.index;
        let t = ev.task;
        match ev.predicted {
            Some(p) => {
                let _ = writeln!(
                    self.out,
                    "{{\"ev\":\"predict\",\"boundary\":{b},\"task\":{t},\"predicted\":{p}}}"
                );
            }
            None => {
                let _ = writeln!(
                    self.out,
                    "{{\"ev\":\"predict\",\"boundary\":{b},\"task\":{t},\"predicted\":null}}"
                );
            }
        }
        let _ = writeln!(
            self.out,
            "{{\"ev\":\"resolve\",\"boundary\":{b},\"task\":{t},\"exit\":{},\"next\":{},\
             \"miss\":{},\"clock\":{}}}",
            ev.exit, ev.next, ev.miss, ev.complete
        );
        if ev.miss && !ev.gated {
            let _ = writeln!(
                self.out,
                "{{\"ev\":\"squash\",\"boundary\":{b},\"task\":{t},\"clock\":{}}}",
                ev.complete
            );
        }
        let _ = writeln!(
            self.out,
            "{{\"ev\":\"commit\",\"boundary\":{b},\"task\":{t},\"clock\":{}}}",
            ev.commit
        );
        let _ = writeln!(
            self.out,
            "{{\"ev\":\"dispatch\",\"boundary\":{b},\"next\":{},\"gated\":{},\"clock\":{}}}",
            ev.next, ev.gated, ev.dispatch
        );
    }

    fn finish(&mut self, result: &TimingResult) {
        let _ = writeln!(
            self.out,
            "{{\"ev\":\"halt\",\"cycles\":{},\"instructions\":{},\"tasks\":{},\
             \"task_mispredicts\":{}}}",
            result.cycles, result.instructions, result.dynamic_tasks, result.task_mispredicts
        );
    }
}
