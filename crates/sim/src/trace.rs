//! Task-level trace generation: the functional simulator's view of the
//! global sequencer's job.
//!
//! The interpreter executes the program instruction by instruction; this
//! module watches control flow, detects task-boundary crossings against the
//! task former's partition, and emits one [`TaskEvent`] per dynamic task.

use multiscalar_isa::{Addr, ExecError, ExitIndex, ExitKind, Interpreter, Program};
use multiscalar_taskform::{TaskId, TaskProgram};
use std::fmt;
use std::sync::Arc;

/// One dynamic task instance: which static task ran, which exit it took,
/// and where control went.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TaskEvent {
    /// The static task that executed.
    pub task: TaskId,
    /// The exit taken (index into the task's header).
    pub exit: ExitIndex,
    /// The exit's control-flow class.
    pub kind: ExitKind,
    /// Entry address of the task executed next.
    pub next: Addr,
    /// Dynamic instructions executed by this task instance.
    pub instrs: u32,
}

/// Errors from trace generation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceError {
    /// The program faulted.
    Exec(ExecError),
    /// Control crossed a task boundary that matches no header exit —
    /// indicates a task-formation bug.
    UnmatchedExit {
        /// The task control was in.
        task: TaskId,
        /// The transferring instruction.
        from: Addr,
        /// Where control landed.
        to: Addr,
    },
    /// The step budget ran out before the program halted.
    StepLimit,
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Exec(e) => write!(f, "execution fault: {e}"),
            TraceError::UnmatchedExit { task, from, to } => {
                write!(
                    f,
                    "{task} crossed {from}->{to} without a matching header exit"
                )
            }
            TraceError::StepLimit => f.write_str("step budget exhausted before halt"),
        }
    }
}

impl std::error::Error for TraceError {}

impl From<ExecError> for TraceError {
    fn from(e: ExecError) -> Self {
        TraceError::Exec(e)
    }
}

/// Summary statistics of a trace (the raw material of the paper's Table 2
/// and Figures 3–4).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceStats {
    /// Dynamic task count (Table 2, "Dynamic Tasks").
    pub dynamic_tasks: u64,
    /// Distinct static tasks seen (Table 2, "Distinct Tasks Seen").
    pub distinct_tasks: usize,
    /// Total dynamic instructions.
    pub instructions: u64,
    /// Dynamic task count by number of header exits (index 0 unused;
    /// `by_num_exits[k]` = tasks with `k` exits). Figure 3, "dynamic" bars.
    pub by_num_exits: [u64; 5],
    /// Dynamic exit count by kind, Table 1 order. Figure 4, "dynamic"
    /// bars. There is no `Halt` slot: the final (halting) task is never
    /// recorded, so a halt exit cannot appear in a trace.
    pub by_kind: [u64; 5],
}

impl TraceStats {
    /// Mean dynamic task size in instructions.
    pub fn mean_task_size(&self) -> f64 {
        if self.dynamic_tasks == 0 {
            0.0
        } else {
            self.instructions as f64 / self.dynamic_tasks as f64
        }
    }

    /// Fraction of dynamic tasks with `n` exits (`1..=4`).
    pub fn frac_with_exits(&self, n: usize) -> f64 {
        if self.dynamic_tasks == 0 {
            0.0
        } else {
            self.by_num_exits[n] as f64 / self.dynamic_tasks as f64
        }
    }

    /// Fraction of dynamic exits with the given kind. `Halt` exits are
    /// never recorded, so their fraction is 0.
    pub fn frac_kind(&self, kind: ExitKind) -> f64 {
        match kind_slot(kind) {
            Some(i) if self.dynamic_tasks != 0 => {
                self.by_kind[i] as f64 / self.dynamic_tasks as f64
            }
            _ => 0.0,
        }
    }
}

/// Table 1 slot of an exit kind; `None` for `Halt`, which traces never
/// record (the halting task has no successor to predict).
pub(crate) fn kind_slot(kind: ExitKind) -> Option<usize> {
    ExitKind::TABLE1.iter().position(|&k| k == kind)
}

/// A compact struct-of-arrays task trace, shared read-only between
/// experiments (and threads) behind an [`Arc`].
///
/// Each benchmark is traced **once**; every predictor sweep then walks this
/// immutable structure. Splitting the event fields into parallel arrays
/// keeps each one densely packed (no per-event padding), which matters when
/// nine fused predictor instances stream the same multi-million-event trace.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SharedTrace {
    tasks: Vec<TaskId>,
    exits: Vec<ExitIndex>,
    kinds: Vec<ExitKind>,
    nexts: Vec<Addr>,
    instrs: Vec<u32>,
}

impl SharedTrace {
    /// Number of recorded dynamic task events.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// `true` when the trace holds no events.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Reassembles event `i` from the parallel arrays.
    ///
    /// # Panics
    ///
    /// Panics when `i` is out of bounds.
    pub fn get(&self, i: usize) -> TaskEvent {
        TaskEvent {
            task: self.tasks[i],
            exit: self.exits[i],
            kind: self.kinds[i],
            next: self.nexts[i],
            instrs: self.instrs[i],
        }
    }

    /// Iterates the events in execution order, by value (events are `Copy`).
    pub fn iter(&self) -> impl Iterator<Item = TaskEvent> + '_ {
        (0..self.len()).map(move |i| self.get(i))
    }

    pub(crate) fn push(&mut self, e: TaskEvent) {
        self.tasks.push(e.task);
        self.exits.push(e.exit);
        self.kinds.push(e.kind);
        self.nexts.push(e.next);
        self.instrs.push(e.instrs);
    }
}

impl<'a> IntoIterator for &'a SharedTrace {
    type Item = TaskEvent;
    type IntoIter = Box<dyn Iterator<Item = TaskEvent> + 'a>;

    fn into_iter(self) -> Self::IntoIter {
        Box::new(self.iter())
    }
}

impl FromIterator<TaskEvent> for SharedTrace {
    fn from_iter<I: IntoIterator<Item = TaskEvent>>(iter: I) -> Self {
        let mut t = SharedTrace::default();
        for e in iter {
            t.push(e);
        }
        t
    }
}

/// A completed trace: the events plus summary statistics.
#[derive(Debug, Clone)]
pub struct TraceRun {
    /// One event per dynamic task, in execution order, shared immutably
    /// between all experiments that walk it. The final task (the one ending
    /// in `Halt`) is not recorded — it has no successor to predict.
    pub events: Arc<SharedTrace>,
    /// Aggregate statistics over `events`.
    pub stats: TraceStats,
}

/// Streams task events to `sink` while executing `program` under the task
/// partition `tasks`.
///
/// # Errors
///
/// Fails on execution faults, unmatched boundary crossings (task-former
/// bugs) or step-budget exhaustion.
pub fn stream_trace<F: FnMut(TaskEvent)>(
    program: &Program,
    tasks: &TaskProgram,
    max_steps: u64,
    mut sink: F,
) -> Result<TraceStats, TraceError> {
    let mut interp = Interpreter::new(program);
    let mut stats = TraceStats::default();
    // Dense seen-bitmap instead of a HashSet: task ids are bounded by the
    // static task count, and this loop runs once per dynamic task.
    let mut seen = vec![false; tasks.static_task_count()];
    let mut distinct: usize = 0;

    let mut cur_task = tasks
        .task_entered_at(program.entry_point())
        .expect("program entry starts a task");
    let mut cur_instrs: u32 = 0;
    let mut steps: u64 = 0;

    loop {
        if steps >= max_steps {
            return Err(TraceError::StepLimit);
        }
        let info = interp.step()?;
        steps += 1;
        cur_instrs += 1;

        if interp.is_halted() {
            // The final task is not emitted (nothing left to predict), but
            // its instructions count toward the totals.
            stats.instructions += cur_instrs as u64;
            break;
        }

        let next_pc = info.next;
        // Fast path: sequential flow inside the same task.
        if next_pc == info.pc.next() && tasks.task_at(next_pc) == Some(cur_task) {
            continue;
        }
        // A control transfer (or sequential flow into a new block): did we
        // cross a task boundary?
        match tasks.resolve_exit(cur_task, info.pc, next_pc) {
            Some(exit) => {
                let header = tasks.task(cur_task).header();
                let kind = header.exits()[exit.index()].kind;
                sink(TaskEvent {
                    task: cur_task,
                    exit,
                    kind,
                    next: next_pc,
                    instrs: cur_instrs,
                });
                stats.dynamic_tasks += 1;
                stats.instructions += cur_instrs as u64;
                stats.by_num_exits[header.num_exits().min(4)] += 1;
                stats.by_kind[kind_slot(kind).expect("halting task is never recorded")] += 1;
                if !seen[cur_task.index()] {
                    seen[cur_task.index()] = true;
                    distinct += 1;
                }

                cur_task = match tasks.task_entered_at(next_pc) {
                    Some(t) => t,
                    None => {
                        return Err(TraceError::UnmatchedExit {
                            task: cur_task,
                            from: info.pc,
                            to: next_pc,
                        })
                    }
                };
                cur_instrs = 0;
            }
            None => {
                // Must still be inside the current task.
                if tasks.task_at(next_pc) != Some(cur_task) {
                    return Err(TraceError::UnmatchedExit {
                        task: cur_task,
                        from: info.pc,
                        to: next_pc,
                    });
                }
            }
        }
    }

    stats.distinct_tasks = distinct;
    Ok(stats)
}

/// Collects a full trace into memory.
///
/// # Errors
///
/// Same conditions as [`stream_trace`].
pub fn collect_trace(
    program: &Program,
    tasks: &TaskProgram,
    max_steps: u64,
) -> Result<TraceRun, TraceError> {
    let mut events = SharedTrace::default();
    let stats = stream_trace(program, tasks, max_steps, |e| events.push(e))?;
    Ok(TraceRun {
        events: Arc::new(events),
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use multiscalar_isa::{AluOp, Cond, ProgramBuilder, Reg};
    use multiscalar_taskform::TaskFormer;

    fn trace_of(p: &Program, max: u64) -> (TaskProgram, TraceRun) {
        let tp = TaskFormer::default().form(p).unwrap();
        tp.validate(p).unwrap();
        let run = collect_trace(p, &tp, max).unwrap();
        (tp, run)
    }

    #[test]
    fn loop_task_re_enters_itself() {
        // A 10-iteration self-loop task must appear 10 times in the trace
        // (paper Fig. 1: tasks re-enter through exits).
        let mut b = ProgramBuilder::new();
        let main = b.begin_function("main");
        b.load_imm(Reg(1), 0);
        b.load_imm(Reg(2), 10);
        let top = b.here_label();
        b.op_imm(AluOp::Add, Reg(1), Reg(1), 1);
        b.branch(Cond::Lt, Reg(1), Reg(2), top);
        b.halt();
        b.end_function();
        let p = b.finish(main).unwrap();
        let (tp, run) = trace_of(&p, 10_000);

        // The loop back-edge produces repeated instances of the loop task.
        let loop_task = tp.task_at(multiscalar_isa::Addr(2)).unwrap();
        let n = run.events.iter().filter(|e| e.task == loop_task).count();
        assert!(n >= 9, "expected ~10 loop-task instances, got {n}");
        assert!(run.stats.dynamic_tasks >= 9);
    }

    #[test]
    fn call_return_events_have_matching_kinds() {
        let mut b = ProgramBuilder::new();
        let callee = b.begin_function("callee");
        b.op_imm(AluOp::Add, Reg(1), Reg(1), 1);
        b.ret();
        b.end_function();
        let main = b.begin_function("main");
        b.call_label(callee);
        b.call_label(callee);
        b.halt();
        b.end_function();
        let p = b.finish(main).unwrap();
        let (_tp, run) = trace_of(&p, 10_000);

        let calls = run
            .events
            .iter()
            .filter(|e| e.kind == ExitKind::Call)
            .count();
        let rets = run
            .events
            .iter()
            .filter(|e| e.kind == ExitKind::Return)
            .count();
        assert_eq!(calls, 2);
        assert_eq!(rets, 2);
        // Each event's `next` is the entry of the task recorded by the
        // following event's execution.
        for e in run.events.iter() {
            assert!(p.fetch(e.next).is_some());
        }
    }

    #[test]
    fn instruction_counts_add_up() {
        let mut b = ProgramBuilder::new();
        let main = b.begin_function("main");
        b.load_imm(Reg(1), 0);
        b.load_imm(Reg(2), 50);
        let top = b.here_label();
        b.op_imm(AluOp::Add, Reg(1), Reg(1), 1);
        b.branch(Cond::Lt, Reg(1), Reg(2), top);
        b.halt();
        b.end_function();
        let p = b.finish(main).unwrap();
        let (_tp, run) = trace_of(&p, 10_000);
        // Total instructions = interpreter steps.
        let mut i = Interpreter::new(&p);
        let out = i.run(10_000).unwrap();
        assert_eq!(run.stats.instructions, out.steps);
    }

    #[test]
    fn step_limit_is_reported() {
        let mut b = ProgramBuilder::new();
        let main = b.begin_function("main");
        let top = b.here_label();
        b.op_imm(AluOp::Add, Reg(1), Reg(1), 1);
        b.jump(top);
        b.halt();
        b.end_function();
        let p = b.finish(main).unwrap();
        let tp = TaskFormer::default().form(&p).unwrap();
        assert_eq!(
            collect_trace(&p, &tp, 100).unwrap_err(),
            TraceError::StepLimit
        );
    }

    #[test]
    fn stats_distributions_are_consistent() {
        let mut b = ProgramBuilder::new();
        let f = b.begin_function("f");
        let l = b.new_label();
        b.branch(Cond::Eq, Reg(1), Reg(0), l);
        b.op_imm(AluOp::Add, Reg(2), Reg(2), 1);
        b.bind(l);
        b.ret();
        b.end_function();
        let main = b.begin_function("main");
        b.load_imm(Reg(1), 0);
        b.load_imm(Reg(3), 20);
        let top = b.here_label();
        b.call_label(f);
        b.op_imm(AluOp::Add, Reg(4), Reg(4), 1);
        b.branch(Cond::Lt, Reg(4), Reg(3), top);
        b.halt();
        b.end_function();
        let p = b.finish(main).unwrap();
        let (_tp, run) = trace_of(&p, 100_000);

        let s = &run.stats;
        assert_eq!(s.dynamic_tasks as usize, run.events.len());
        assert_eq!(s.by_num_exits.iter().sum::<u64>(), s.dynamic_tasks);
        assert_eq!(s.by_kind.iter().sum::<u64>(), s.dynamic_tasks);
        assert!(s.mean_task_size() > 0.0);
        assert!(s.distinct_tasks >= 3);
        let frac_sum: f64 = (1..=4).map(|n| s.frac_with_exits(n)).sum();
        assert!((frac_sum - 1.0).abs() < 1e-9);
    }
}
