//! Runtime sanitizer for the timing simulator. The lockstep checkers here
//! compile unconditionally (the differential fuzzer drives them in every
//! build); `--features sanitize` additionally arms the assertions *inside*
//! the model listed below.
//!
//! The timing model has two step feeds — the interpreter
//! ([`crate::timing::simulate`]) and the recorded replay
//! ([`crate::replay::simulate_replay`]) — that are bit-identical *by
//! construction*. This module turns that construction argument into a
//! checked invariant: [`check_replay_agreement`] records an execution, then
//! walks the interpreter feed and the replay cursor in lockstep and asserts
//! that every step they produce agrees — same instruction class, same
//! register operands, same memory address, same intra-task branch outcome,
//! and, crucially, the **same task-boundary events** (retiring task, header
//! exit, next-task entry).
//!
//! [`check_fused_agreement`] closes the remaining gap: it runs the fused
//! multi-column sweep ([`crate::replay::simulate_replay_fused`]) and the
//! equivalent solo runs in one process and asserts bit-identical
//! [`crate::timing::TimingResult`]s *and* cycle attributions per column.
//!
//! Enabling the feature also arms assertions inside the model itself:
//!
//! * [`crate::arb::Arb::commit_head`] asserts commit order is strictly
//!   FIFO across the whole run;
//! * the boundary-retirement code in `timing.rs` asserts the commit clock
//!   and every ring unit's free time only move forward.
//!
//! Those in-model assertions compile away when the feature is off.

use crate::metrics::CycleBreakdown;
use crate::replay::{
    record_replay, simulate_replay_fused_with_sinks, simulate_replay_with_sink, ReplayCursor,
};
use crate::timing::{
    CoreStep, InterpSource, NextTaskPredictor, OpClass, StepSource, TimingConfig, TimingResult,
};
use crate::trace::TraceError;
use multiscalar_core::predictor::TaskDesc;
use multiscalar_isa::Program;
use multiscalar_taskform::TaskProgram;

/// `true` when two steps agree on every field that is *valid* for their
/// instruction class.
///
/// The feeds differ harmlessly on don't-care fields: the interpreter puts
/// the instruction's own pc in `branch_pc` for every step while the replay
/// stores branch pcs only for intra-task branches, so `branch_pc`/`taken`
/// are compared only for [`OpClass::Branch`] and `mem_addr` only for memory
/// operations.
fn steps_agree(a: &CoreStep, b: &CoreStep) -> bool {
    if (a.src1, a.src2, a.dest, a.class, a.halt) != (b.src1, b.src2, b.dest, b.class, b.halt) {
        return false;
    }
    if a.boundary != b.boundary {
        return false;
    }
    match a.class {
        OpClass::Load | OpClass::Store => a.mem_addr == b.mem_addr,
        OpClass::Branch => a.branch_pc == b.branch_pc && a.taken == b.taken,
        OpClass::Other => true,
    }
}

/// Records `program`'s execution, then re-executes it while walking the
/// recording in lockstep, asserting the two step feeds agree everywhere —
/// in particular at every task boundary. Returns the number of steps
/// checked (= committed instructions).
///
/// # Errors
///
/// Propagates the interpreter feed's failure modes: execution faults,
/// unmatched boundary crossings, step-budget exhaustion.
///
/// # Panics
///
/// Panics on the first step where the feeds disagree — that is the
/// sanitizer finding a bug in the recording or the cursor.
pub fn check_replay_agreement(
    program: &Program,
    tasks: &TaskProgram,
    max_steps: u64,
) -> Result<u64, TraceError> {
    let replay = record_replay(program, tasks, max_steps)?;
    let mut interp = InterpSource::new(program, tasks, max_steps);
    let mut cursor = ReplayCursor::new(&replay);
    let mut steps = 0u64;
    loop {
        let a = interp.next_step()?;
        let b = cursor.next_step().expect("replay cursor never errors");
        assert!(
            steps_agree(&a, &b),
            "sanitize: step {steps} diverges\n  interpreter: {a:?}\n  replay:      {b:?}"
        );
        steps += 1;
        if a.halt {
            break;
        }
    }
    assert_eq!(
        steps,
        replay.instructions(),
        "sanitize: replay length disagrees with the interpreter"
    );
    Ok(steps)
}

/// Cross-checks the fused sweep engine against solo runs **in one
/// process**: records `program` once, runs each predictor slot solo and
/// all slots fused over the same recording, and asserts per slot that the
/// [`TimingResult`]s are bit-identical *and* that the [`CycleBreakdown`]s
/// agree cause by cause (each breakdown also self-asserts that it sums to
/// the run's cycle count). Returns the per-slot results.
///
/// `make_predictor` is called twice per slot — once for the solo pass,
/// once for the fused pass — and must return an identically fresh
/// predictor both times (`None` = perfect prediction).
///
/// # Errors
///
/// Propagates recording failures (execution faults, step-budget
/// exhaustion).
///
/// # Panics
///
/// Panics on the first slot where fused and solo disagree — that is the
/// sanitizer finding a bug in the fused lockstep walk.
pub fn check_fused_agreement<F>(
    program: &Program,
    tasks: &TaskProgram,
    descs: &[TaskDesc],
    config: &TimingConfig,
    max_steps: u64,
    n_slots: usize,
    mut make_predictor: F,
) -> Result<Vec<TimingResult>, TraceError>
where
    F: FnMut(usize) -> Option<Box<dyn NextTaskPredictor>>,
{
    let replay = record_replay(program, tasks, max_steps)?;

    let mut solo = Vec::with_capacity(n_slots);
    for i in 0..n_slots {
        let mut pred = make_predictor(i);
        let mut breakdown = CycleBreakdown::new();
        let result = simulate_replay_with_sink(
            &replay,
            descs,
            pred.as_mut().map(|p| p as &mut dyn NextTaskPredictor),
            config,
            &mut breakdown,
        );
        solo.push((result, breakdown));
    }

    let mut predictors: Vec<_> = (0..n_slots).map(&mut make_predictor).collect();
    let mut fused_breakdowns = vec![CycleBreakdown::new(); n_slots];
    let fused = simulate_replay_fused_with_sinks(
        &replay,
        descs,
        &mut predictors,
        config,
        &mut fused_breakdowns,
    );

    for (i, ((solo_result, solo_breakdown), (fused_result, fused_breakdown))) in solo
        .iter()
        .zip(fused.iter().zip(&fused_breakdowns))
        .enumerate()
    {
        assert_eq!(
            solo_result, fused_result,
            "sanitize: fused slot {i} result diverges from its solo run"
        );
        assert_eq!(
            solo_breakdown, fused_breakdown,
            "sanitize: fused slot {i} cycle breakdown diverges from its solo run"
        );
    }
    Ok(fused)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measure::task_descs;
    use multiscalar_core::automata::{Automaton, LastExit, LastExitHysteresis, VotingCounters};
    use multiscalar_core::dolc::Dolc;
    use multiscalar_core::history::PathPredictor;
    use multiscalar_core::predictor::TaskPredictor;
    use multiscalar_isa::{AluOp, Cond, ProgramBuilder, Reg};
    use multiscalar_taskform::TaskFormer;
    use multiscalar_workloads::{Spec92, WorkloadParams};

    #[test]
    fn lockstep_feeds_agree_on_a_mixed_program() {
        let mut b = ProgramBuilder::new();
        let main = b.begin_function("main");
        b.load_imm(Reg(1), 0);
        b.load_imm(Reg(2), 300);
        let top = b.here_label();
        b.op_imm(AluOp::And, Reg(3), Reg(1), 7);
        b.store(Reg(1), Reg(3), 0);
        b.load(Reg(4), Reg(3), 0);
        let skip = b.new_label();
        b.branch(Cond::Ne, Reg(3), Reg(0), skip);
        b.op_imm(AluOp::Add, Reg(5), Reg(5), 1);
        b.bind(skip);
        b.op_imm(AluOp::Add, Reg(1), Reg(1), 1);
        b.branch(Cond::Lt, Reg(1), Reg(2), top);
        b.halt();
        b.end_function();
        let p = b.finish(main).unwrap();
        let tasks = TaskFormer::default().form(&p).unwrap();
        let steps = check_replay_agreement(&p, &tasks, 1_000_000).unwrap();
        assert!(steps > 300, "the loop body runs 300 times: {steps}");
    }

    /// Fused/solo agreement for every lane-packed automaton family on a
    /// real paper workload — the block-batched fused walk must stay
    /// bit-identical (results *and* cycle breakdowns) no matter which
    /// family drives the inter-task predictor.
    #[test]
    fn fused_agreement_holds_for_every_lane_packed_family() {
        fn check_family<A: Automaton + 'static>() {
            let w = Spec92::Compress.build(&WorkloadParams::small(7));
            let tasks = TaskFormer::default().form(&w.program).unwrap();
            let descs = task_descs(&tasks);
            let results = check_fused_agreement(
                &w.program,
                &tasks,
                &descs,
                &TimingConfig::default(),
                w.max_steps,
                2,
                |slot| {
                    (slot > 0).then(|| {
                        Box::new(TaskPredictor::<PathPredictor<A>>::path(
                            Dolc::new(4, 4, 6, 6, 2),
                            Dolc::new(4, 3, 4, 4, 2),
                            16,
                        )) as Box<dyn NextTaskPredictor>
                    })
                },
            )
            .unwrap();
            assert_eq!(results.len(), 2, "{}", A::NAME);
            assert!(results[0].dynamic_tasks > 0, "{}", A::NAME);
        }
        check_family::<LastExit>();
        check_family::<LastExitHysteresis<1>>();
        check_family::<LastExitHysteresis<2>>();
        check_family::<VotingCounters<2, true>>();
        check_family::<VotingCounters<3, true>>();
    }
}
