//! Runtime sanitizer for the timing simulator (`--features sanitize`).
//!
//! The timing model has two step feeds — the interpreter
//! ([`crate::timing::simulate`]) and the recorded replay
//! ([`crate::replay::simulate_replay`]) — that are bit-identical *by
//! construction*. This module turns that construction argument into a
//! checked invariant: [`check_replay_agreement`] records an execution, then
//! walks the interpreter feed and the replay cursor in lockstep and asserts
//! that every step they produce agrees — same instruction class, same
//! register operands, same memory address, same intra-task branch outcome,
//! and, crucially, the **same task-boundary events** (retiring task, header
//! exit, next-task entry).
//!
//! Enabling the feature also arms assertions inside the model itself:
//!
//! * [`crate::arb::Arb::commit_head`] asserts commit order is strictly
//!   FIFO across the whole run;
//! * the boundary-retirement code in `timing.rs` asserts the commit clock
//!   and every ring unit's free time only move forward.
//!
//! All of it compiles away when the feature is off.

use crate::replay::{record_replay, ReplayCursor};
use crate::timing::{CoreStep, InterpSource, OpClass, StepSource};
use crate::trace::TraceError;
use multiscalar_isa::Program;
use multiscalar_taskform::TaskProgram;

/// `true` when two steps agree on every field that is *valid* for their
/// instruction class.
///
/// The feeds differ harmlessly on don't-care fields: the interpreter puts
/// the instruction's own pc in `branch_pc` for every step while the replay
/// stores branch pcs only for intra-task branches, so `branch_pc`/`taken`
/// are compared only for [`OpClass::Branch`] and `mem_addr` only for memory
/// operations.
fn steps_agree(a: &CoreStep, b: &CoreStep) -> bool {
    if (a.src1, a.src2, a.dest, a.class, a.halt) != (b.src1, b.src2, b.dest, b.class, b.halt) {
        return false;
    }
    if a.boundary != b.boundary {
        return false;
    }
    match a.class {
        OpClass::Load | OpClass::Store => a.mem_addr == b.mem_addr,
        OpClass::Branch => a.branch_pc == b.branch_pc && a.taken == b.taken,
        OpClass::Other => true,
    }
}

/// Records `program`'s execution, then re-executes it while walking the
/// recording in lockstep, asserting the two step feeds agree everywhere —
/// in particular at every task boundary. Returns the number of steps
/// checked (= committed instructions).
///
/// # Errors
///
/// Propagates the interpreter feed's failure modes: execution faults,
/// unmatched boundary crossings, step-budget exhaustion.
///
/// # Panics
///
/// Panics on the first step where the feeds disagree — that is the
/// sanitizer finding a bug in the recording or the cursor.
pub fn check_replay_agreement(
    program: &Program,
    tasks: &TaskProgram,
    max_steps: u64,
) -> Result<u64, TraceError> {
    let replay = record_replay(program, tasks, max_steps)?;
    let mut interp = InterpSource::new(program, tasks, max_steps);
    let mut cursor = ReplayCursor::new(&replay);
    let mut steps = 0u64;
    loop {
        let a = interp.next_step()?;
        let b = cursor.next_step().expect("replay cursor never errors");
        assert!(
            steps_agree(&a, &b),
            "sanitize: step {steps} diverges\n  interpreter: {a:?}\n  replay:      {b:?}"
        );
        steps += 1;
        if a.halt {
            break;
        }
    }
    assert_eq!(
        steps,
        replay.instructions(),
        "sanitize: replay length disagrees with the interpreter"
    );
    Ok(steps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use multiscalar_isa::{AluOp, Cond, ProgramBuilder, Reg};
    use multiscalar_taskform::TaskFormer;

    #[test]
    fn lockstep_feeds_agree_on_a_mixed_program() {
        let mut b = ProgramBuilder::new();
        let main = b.begin_function("main");
        b.load_imm(Reg(1), 0);
        b.load_imm(Reg(2), 300);
        let top = b.here_label();
        b.op_imm(AluOp::And, Reg(3), Reg(1), 7);
        b.store(Reg(1), Reg(3), 0);
        b.load(Reg(4), Reg(3), 0);
        let skip = b.new_label();
        b.branch(Cond::Ne, Reg(3), Reg(0), skip);
        b.op_imm(AluOp::Add, Reg(5), Reg(5), 1);
        b.bind(skip);
        b.op_imm(AluOp::Add, Reg(1), Reg(1), 1);
        b.branch(Cond::Lt, Reg(1), Reg(2), top);
        b.halt();
        b.end_function();
        let p = b.finish(main).unwrap();
        let tasks = TaskFormer::default().form(&p).unwrap();
        let steps = check_replay_agreement(&p, &tasks, 1_000_000).unwrap();
        assert!(steps > 300, "the loop body runs 300 times: {steps}");
    }
}
