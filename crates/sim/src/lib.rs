#![warn(missing_docs)]

//! The Multiscalar simulators of the reproduction.
//!
//! Two simulators, mirroring the paper's methodology (§3.1):
//!
//! * a **functional simulator** ([`trace`], [`measure`]) that executes a
//!   program, reconstructs its task-level trace (which task ran, which exit
//!   it took, where it went) and drives predictors over it — with the
//!   paper's idealisations: immediate predictor updates and no wrong-path
//!   pollution;
//! * a **timing simulator** ([`timing`]) modelling the ring of processing
//!   units (4 × 2-way by default), in-order issue with register-dataflow
//!   stalls, intra-task bimodal prediction and full squash on inter-task
//!   mispredictions — the source of Table 4's IPC numbers. The [`replay`]
//!   module records one interpreter pass per benchmark into an immutable
//!   [`replay::InstrReplay`] so every predictor column replays the same
//!   execution with zero re-interpretation ([`replay::simulate_replay`] is
//!   bit-identical to [`timing::simulate`]).
//!
//! Building with `--features sanitize` arms runtime assertions over the
//! timing model's invariants (FIFO ARB commit order, monotone ring clocks)
//! and exposes the `sanitize` module's lockstep replay/interpreter
//! agreement checker; see DESIGN.md.
//!
//! # Example: measuring a predictor on a workload
//!
//! ```no_run
//! use multiscalar_core::automata::LastExitHysteresis;
//! use multiscalar_core::dolc::Dolc;
//! use multiscalar_core::history::PathPredictor;
//! use multiscalar_sim::{measure, trace};
//! use multiscalar_taskform::TaskFormer;
//! use multiscalar_workloads::{Spec92, WorkloadParams};
//!
//! let w = Spec92::Compress.build(&WorkloadParams::small(1));
//! let tasks = TaskFormer::default().form(&w.program).unwrap();
//! let run = trace::collect_trace(&w.program, &tasks, w.max_steps).unwrap();
//! let descs = measure::task_descs(&tasks);
//!
//! let mut pred: PathPredictor<LastExitHysteresis<2>> =
//!     PathPredictor::new(Dolc::new(6, 5, 8, 9, 3));
//! let stats = measure::measure_exits(&mut pred, &descs, &run.events);
//! println!("miss rate: {:.2}%", stats.miss_rate() * 100.0);
//! ```

pub mod arb;
pub mod codec;
pub mod measure;
pub mod metrics;
pub mod replay;
pub mod sanitize;
pub mod timing;
pub mod trace;

pub use codec::{decode_replay, encode_replay, CodecError, CACHE_SCHEMA};
pub use measure::{task_descs, MissStats};
pub use metrics::{
    BoundaryEvent, Cause, CycleBreakdown, FrontierCause, MetricsSink, NoopSink, StallCause,
    TaskEventSink, UnitOccupancy,
};
pub use replay::{
    derive_trace, record_replay, simulate_replay, simulate_replay_fused,
    simulate_replay_fused_with_sinks, simulate_replay_with_sink, InstrReplay,
};
pub use trace::{TaskEvent, TraceRun, TraceStats};
