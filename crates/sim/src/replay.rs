//! Record-once instruction replay for the timing simulator.
//!
//! One interpreter pass per benchmark ([`record_replay`]) captures every
//! timing-relevant fact about the execution — instruction class, compact
//! source/dest register ids, memory word addresses, intra-task branch
//! outcomes, and pre-resolved task-boundary events — into a struct-of-
//! arrays [`InstrReplay`]. The structure is immutable and is shared behind
//! `Arc` exactly like `SharedTrace`, so **every** consumer of a benchmark's
//! execution rides one recording: Table 4's five predictor columns, the
//! `table4_timing` bench ablations, the registry's fig10/fig11 grids
//! (whose functional traces derive from the same artifact via
//! [`derive_trace`]), and the sanitizer's fused/solo cross-checks.
//! [`simulate_replay`] drives [`crate::timing::simulate_core`] from the
//! recording with zero re-interpretation and returns a `TimingResult`
//! bit-identical to [`crate::timing::simulate`]'s.
//!
//! # Layout
//!
//! Each instruction packs into one `u32` op word:
//!
//! ```text
//! bits  0..8   src1 register (NO_REG when absent)
//! bits  8..16  src2 register (NO_REG when absent)
//! bits 16..24  dest register (NO_REG when absent)
//! bits 24..26  OpClass
//! bit  26      taken (intra-task branches only)
//! ```
//!
//! Loads/stores consume the next `mem_addrs` entry, intra-task branches the
//! next `branch_pcs` entry, in program order — the replay cursor advances
//! each side array independently, so the common (ALU) case touches only the
//! op word. Task boundaries are sparse: parallel `bound_*` arrays keyed by
//! the op index that crossed them. Recording resolves every possible
//! failure (execution faults, unmatched exits, the step budget) up front,
//! which is why [`simulate_replay`] is infallible.

use std::sync::Arc;

use multiscalar_core::predictor::TaskDesc;
use multiscalar_isa::{Addr, ExitIndex, Instruction, Interpreter, Program};
use multiscalar_taskform::{TaskId, TaskProgram};

use crate::metrics::{MetricsSink, NoopSink};
use crate::timing::{
    simulate_core, BoundaryStep, CoreState, CoreStep, NextTaskPredictor, OpClass, StepSource,
    TimingConfig, TimingResult, NO_REG,
};
use crate::trace::{kind_slot, SharedTrace, TaskEvent, TraceError, TraceRun, TraceStats};

const CLASS_SHIFT: u32 = 24;
const TAKEN_BIT: u32 = 1 << 26;

#[inline]
fn pack_op(src1: u8, src2: u8, dest: u8, class: OpClass, taken: bool) -> u32 {
    (src1 as u32)
        | (src2 as u32) << 8
        | (dest as u32) << 16
        | (class as u32) << CLASS_SHIFT
        | ((taken as u32) * TAKEN_BIT)
}

/// A recorded execution: everything the timing model needs to re-run a
/// benchmark without the interpreter. Built by [`record_replay`]; shared
/// immutably (wrap in [`Arc`] via [`InstrReplay::into_shared`]) across the
/// pool jobs that consume it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InstrReplay {
    /// One packed op word per committed instruction, in program order.
    pub(crate) ops: Vec<u32>,
    /// Word address of each load/store, in program order.
    pub(crate) mem_addrs: Vec<u32>,
    /// Address of each *intra-task* conditional branch, in program order.
    pub(crate) branch_pcs: Vec<u32>,
    /// Op index whose instruction crossed a task boundary (ascending).
    pub(crate) bound_at: Vec<u64>,
    /// Static id of the task retiring at each boundary.
    pub(crate) bound_task: Vec<u32>,
    /// Header exit taken at each boundary.
    pub(crate) bound_exit: Vec<u8>,
    /// Entry address of the task entered at each boundary.
    pub(crate) bound_next: Vec<u32>,
    /// Interpreter memory size, for the disambiguation tables.
    pub(crate) mem_words: usize,
}

impl InstrReplay {
    /// Committed instructions in the recording.
    pub fn instructions(&self) -> u64 {
        self.ops.len() as u64
    }

    /// Dynamic task boundaries in the recording.
    pub fn boundaries(&self) -> u64 {
        self.bound_at.len() as u64
    }

    /// Heap footprint of the recording in bytes.
    pub fn heap_bytes(&self) -> usize {
        4 * self.ops.len()
            + 4 * self.mem_addrs.len()
            + 4 * self.branch_pcs.len()
            + 17 * self.bound_at.len()
    }

    /// Wraps the recording for sharing across pool jobs.
    pub fn into_shared(self) -> Arc<InstrReplay> {
        Arc::new(self)
    }
}

/// Executes the program once and records its [`InstrReplay`].
///
/// The boundary resolution is the same as trace generation's, so the
/// recording fails in exactly the situations [`crate::timing::simulate`]
/// would: execution faults, unmatched boundary crossings, and step-budget
/// exhaustion.
pub fn record_replay(
    program: &Program,
    tasks: &TaskProgram,
    max_steps: u64,
) -> Result<InstrReplay, TraceError> {
    let mut interp = Interpreter::new(program);
    let mem_words = interp.mem_words();
    let mut cur_task = tasks
        .task_entered_at(program.entry_point())
        .expect("entry starts a task");

    // Reserve the step budget up front. The budget is a workload-proportional
    // cap, so this over-reserves — but untouched capacity is virtual address
    // space only, while growing a multi-megabyte Vec copies (and faults in)
    // every page it has already recorded, which dominates recording cost.
    let cap = usize::try_from(max_steps).unwrap_or(usize::MAX);
    let mut r = InstrReplay {
        ops: Vec::with_capacity(cap),
        mem_addrs: Vec::with_capacity(cap),
        branch_pcs: Vec::with_capacity(cap),
        bound_at: Vec::with_capacity(cap / 16),
        bound_task: Vec::with_capacity(cap / 16),
        bound_exit: Vec::with_capacity(cap / 16),
        bound_next: Vec::with_capacity(cap / 16),
        mem_words,
    };

    let mut steps = 0u64;
    loop {
        if steps >= max_steps {
            return Err(TraceError::StepLimit);
        }
        let info = interp.step()?;
        steps += 1;

        let (src1, src2) = {
            let mut it = info.inst.sources();
            (
                it.next().map_or(NO_REG, |r| r.0),
                it.next().map_or(NO_REG, |r| r.0),
            )
        };
        let dest = info.inst.dest().map_or(NO_REG, |r| r.0);
        let mut class = match info.inst {
            Instruction::Load { .. } => OpClass::Load,
            Instruction::Store { .. } => OpClass::Store,
            Instruction::Branch { .. } => OpClass::Branch,
            _ => OpClass::Other,
        };
        if let Some(ea) = info.mem_addr {
            r.mem_addrs.push(ea);
        }

        if interp.is_halted() {
            // The halting instruction is the recording's last op.
            r.ops.push(pack_op(src1, src2, dest, class, false));
            break;
        }

        let next_pc = info.next;
        let crossed = if next_pc == info.pc.next() && tasks.task_at(next_pc) == Some(cur_task) {
            None
        } else {
            tasks.resolve_exit(cur_task, info.pc, next_pc)
        };

        let mut taken = false;
        match crossed {
            Some(exit) => {
                // The intra predictor never sees boundary-crossing branches,
                // so they record as plain ops (same sources, no dest,
                // 1-cycle latency — timing-identical).
                if class == OpClass::Branch {
                    class = OpClass::Other;
                }
                r.bound_at.push(r.ops.len() as u64);
                r.bound_task.push(cur_task.0);
                r.bound_exit.push(exit.as_u8());
                r.bound_next.push(next_pc.0);
                cur_task = match tasks.task_entered_at(next_pc) {
                    Some(t) => t,
                    None => {
                        return Err(TraceError::UnmatchedExit {
                            task: cur_task,
                            from: info.pc,
                            to: next_pc,
                        })
                    }
                };
            }
            None => {
                if class == OpClass::Branch {
                    taken = next_pc != info.pc.next();
                    r.branch_pcs.push(info.pc.0);
                }
                // Sanity: control must remain within the current task.
                if tasks.task_at(next_pc) != Some(cur_task) {
                    return Err(TraceError::UnmatchedExit {
                        task: cur_task,
                        from: info.pc,
                        to: next_pc,
                    });
                }
            }
        }
        r.ops.push(pack_op(src1, src2, dest, class, taken));
    }

    // Deliberately no shrink_to_fit: shrinking reallocates and copies the
    // whole recording, and the unused capacity tail is never faulted in.
    Ok(r)
}

/// Reconstructs the functional [`TraceRun`] from a recording.
///
/// The replay's sparse boundary arrays carry exactly what
/// [`crate::trace::collect_trace`] emits — retiring task, exit index, next
/// entry address — and the per-task instruction counts fall out of the
/// `bound_at` deltas (each `bound_at[i]` is the op index of the crossing
/// instruction, which belongs to the retiring task). The stats recompute
/// from header lookups. The result is identical to `collect_trace` on the
/// same execution (asserted across all five workloads in the codec tests),
/// so **one** recorded artifact serves both the functional-trace consumers
/// and the timing runs — preparation needs a single interpreter pass cold
/// and zero warm.
///
/// # Panics
///
/// Panics if the recording is inconsistent with `tasks` (a recording is
/// only meaningful under the partition it was recorded with; the cache
/// guarantees this by keying on both fingerprints, and the codec validates
/// exit indices on decode).
pub fn derive_trace(replay: &InstrReplay, tasks: &TaskProgram) -> TraceRun {
    let mut events = SharedTrace::default();
    let mut stats = TraceStats::default();
    let mut seen = vec![false; tasks.static_task_count()];
    let mut distinct = 0usize;
    let mut prev_at = 0u64;
    for (i, &at) in replay.bound_at.iter().enumerate() {
        let task = TaskId(replay.bound_task[i]);
        let exit = ExitIndex::new(replay.bound_exit[i]).expect("recorded exit is valid");
        let header = tasks.task(task).header();
        let kind = header.exits()[exit.index()].kind;
        let instrs = if i == 0 { at + 1 } else { at - prev_at };
        prev_at = at;
        events.push(TaskEvent {
            task,
            exit,
            kind,
            next: Addr(replay.bound_next[i]),
            instrs: instrs as u32,
        });
        stats.dynamic_tasks += 1;
        stats.by_num_exits[header.num_exits().min(4)] += 1;
        stats.by_kind[kind_slot(kind).expect("halting task is never recorded")] += 1;
        if !seen[task.index()] {
            seen[task.index()] = true;
            distinct += 1;
        }
    }
    stats.instructions = replay.ops.len() as u64;
    stats.distinct_tasks = distinct;
    TraceRun {
        events: Arc::new(events),
        stats,
    }
}

/// How far ahead (in elements) the cursor pulls upcoming replay columns
/// toward the cache. One op word is 4 bytes, so 64 elements is four cache
/// lines of lookahead — far enough to cover the fused engines' per-step
/// work, near enough not to thrash.
const PREFETCH_AHEAD: usize = 64;

/// Forces the load of the element `PREFETCH_AHEAD` slots ahead, warming the
/// cache line it lives on. A plain read through [`std::hint::black_box`]
/// (not an intrinsic): safe, portable, and free of side effects beyond the
/// memory touch.
#[inline(always)]
fn prefetch<T: Copy>(s: &[T]) {
    if let Some(&v) = s.get(PREFETCH_AHEAD) {
        std::hint::black_box(v);
    }
}

/// A cursor walking an [`InstrReplay`] as a [`StepSource`]. Infallible by
/// construction: recording already resolved every error. Holds shrinking
/// slices rather than indices so the hot path carries no bounds checks,
/// and prefetches upcoming columns of the recording as it advances.
pub(crate) struct ReplayCursor<'a> {
    /// Remaining op words; the last element is the halting instruction.
    ops: &'a [u32],
    /// Remaining load/store word addresses.
    mem_addrs: &'a [u32],
    /// Remaining intra-task branch addresses.
    branch_pcs: &'a [u32],
    /// Op index of the current position (for boundary matching).
    i: u64,
    /// Remaining boundary rows, advanced in lockstep.
    bound_at: &'a [u64],
    bound_task: &'a [u32],
    bound_exit: &'a [u8],
    bound_next: &'a [u32],
}

impl<'a> ReplayCursor<'a> {
    pub(crate) fn new(r: &'a InstrReplay) -> ReplayCursor<'a> {
        ReplayCursor {
            ops: &r.ops,
            mem_addrs: &r.mem_addrs,
            branch_pcs: &r.branch_pcs,
            i: 0,
            bound_at: &r.bound_at,
            bound_task: &r.bound_task,
            bound_exit: &r.bound_exit,
            bound_next: &r.bound_next,
        }
    }
}

impl StepSource for ReplayCursor<'_> {
    fn next_step(&mut self) -> Result<CoreStep, TraceError> {
        prefetch(self.ops);
        let (&op, rest) = self.ops.split_first().expect("cursor stops at halt");
        let class = OpClass::from_u8(((op >> CLASS_SHIFT) & 0x3) as u8);

        let mem_addr = if matches!(class, OpClass::Load | OpClass::Store) {
            prefetch(self.mem_addrs);
            let (&a, rest) = self.mem_addrs.split_first().expect("recorded address");
            self.mem_addrs = rest;
            a
        } else {
            0
        };
        let (branch_pc, taken) = if class == OpClass::Branch {
            let (&pc, rest) = self.branch_pcs.split_first().expect("recorded branch");
            self.branch_pcs = rest;
            (Addr(pc), op & TAKEN_BIT != 0)
        } else {
            (Addr(0), false)
        };

        // The halting instruction is always the recording's last op.
        let halt = rest.is_empty();
        let boundary = if !halt && self.bound_at.first() == Some(&self.i) {
            let b = BoundaryStep {
                task: self.bound_task[0],
                exit: ExitIndex::new(self.bound_exit[0]).expect("recorded exit is valid"),
                next: Addr(self.bound_next[0]),
            };
            self.bound_at = &self.bound_at[1..];
            self.bound_task = &self.bound_task[1..];
            self.bound_exit = &self.bound_exit[1..];
            self.bound_next = &self.bound_next[1..];
            Some(b)
        } else {
            None
        };
        self.ops = rest;
        self.i += 1;

        Ok(CoreStep {
            src1: (op & 0xFF) as u8,
            src2: ((op >> 8) & 0xFF) as u8,
            dest: ((op >> 16) & 0xFF) as u8,
            class,
            mem_addr,
            branch_pc,
            taken,
            halt,
            boundary,
        })
    }
}

/// Runs the timing model over a recorded execution — same cycle accounting
/// as [`crate::timing::simulate`], zero re-interpretation, bit-identical
/// [`TimingResult`].
///
/// `predictor` drives inter-task speculation; `None` simulates perfect
/// next-task prediction (the paper's "Perfect" row). Infallible: the
/// recording already resolved every error `simulate` can hit.
pub fn simulate_replay(
    replay: &InstrReplay,
    descs: &[TaskDesc],
    predictor: Option<&mut dyn NextTaskPredictor>,
    config: &TimingConfig,
) -> TimingResult {
    simulate_replay_with_sink(replay, descs, predictor, config, &mut NoopSink)
}

/// [`simulate_replay`] with a live [`MetricsSink`] observing the run. The
/// replay cursor feeds the same instrumented core as
/// [`crate::timing::simulate_with_sink`], so breakdowns and event logs are
/// engine-independent: both engines report identical sink streams for the
/// same execution.
pub fn simulate_replay_with_sink<M: MetricsSink>(
    replay: &InstrReplay,
    descs: &[TaskDesc],
    predictor: Option<&mut dyn NextTaskPredictor>,
    config: &TimingConfig,
    sink: &mut M,
) -> TimingResult {
    let mut cursor = ReplayCursor::new(replay);
    simulate_core(
        &mut cursor,
        descs,
        predictor,
        config,
        replay.mem_words,
        sink,
    )
    .expect("replay cursor never errors")
}

/// Runs several independent timing configurations over one recording in a
/// **single** walk. Table 4's five predictor columns are the original
/// consumer; any set of slots over the same recording fits — the registry's
/// grids and the sanitizer's cross-checks ride the same engine. Each slot
/// of `predictors` is one run (use `None` for perfect prediction); the step
/// stream is decoded once per block and fed to every run's [`CoreState`],
/// so each result is bit-identical to a solo [`simulate_replay`] call with
/// the same predictor.
pub fn simulate_replay_fused(
    replay: &InstrReplay,
    descs: &[TaskDesc],
    predictors: &mut [Option<Box<dyn NextTaskPredictor>>],
    config: &TimingConfig,
) -> Vec<TimingResult> {
    let mut sinks = vec![NoopSink; predictors.len()];
    simulate_replay_fused_with_sinks(replay, descs, predictors, config, &mut sinks)
}

/// Steps decoded per batch of the fused walk. Large enough that each
/// slot's hot state (scoreboard, store queue, ARB) stays cache-resident
/// across its inner run; small enough that the shared decoded block and
/// every slot's working set coexist in L1/L2.
const FUSE_BLOCK: usize = 128;

/// [`simulate_replay_fused`] with one live [`MetricsSink`] per fused run:
/// `sinks[i]` observes the run driven by `predictors[i]`. Each sink sees
/// exactly the event stream a solo [`simulate_replay_with_sink`] call with
/// the same predictor would produce.
///
/// The walk is **block-batched**: the cursor decodes [`FUSE_BLOCK`] steps
/// into a reusable buffer, then each slot consumes the whole block before
/// the next slot starts. Slots never observe each other and each still
/// sees the full step stream in order, so batching is invisible to the
/// results — it only converts the inner loop from slot-interleaved (which
/// drags every slot's hot state through the cache at every step) to
/// slot-major bursts.
///
/// # Panics
///
/// If `sinks` and `predictors` differ in length.
pub fn simulate_replay_fused_with_sinks<M: MetricsSink>(
    replay: &InstrReplay,
    descs: &[TaskDesc],
    predictors: &mut [Option<Box<dyn NextTaskPredictor>>],
    config: &TimingConfig,
    sinks: &mut [M],
) -> Vec<TimingResult> {
    assert_eq!(
        predictors.len(),
        sinks.len(),
        "one sink per fused predictor slot"
    );
    let mut states: Vec<CoreState<'_>> = predictors
        .iter_mut()
        .map(|p| {
            CoreState::new(
                p.as_mut().map(|b| b as &mut dyn NextTaskPredictor),
                config,
                replay.mem_words,
            )
        })
        .collect();
    for (state, sink) in states.iter().zip(sinks.iter_mut()) {
        state.bootstrap(sink);
    }
    let mut cursor = ReplayCursor::new(replay);
    let mut block: Vec<CoreStep> = Vec::with_capacity(FUSE_BLOCK);
    let mut halted = false;
    while !halted {
        block.clear();
        while block.len() < FUSE_BLOCK && !halted {
            let step = cursor.next_step().expect("replay cursor never errors");
            halted = step.halt;
            block.push(step);
        }
        for (state, sink) in states.iter_mut().zip(sinks.iter_mut()) {
            for step in &block {
                state.on_step(step, descs, config, sink);
            }
        }
    }
    states
        .into_iter()
        .zip(sinks.iter_mut())
        .map(|(state, sink)| {
            let result = state.finish();
            sink.finish(&result);
            result
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measure::task_descs;
    use crate::timing::simulate;
    use multiscalar_core::automata::LastExitHysteresis;
    use multiscalar_core::dolc::Dolc;
    use multiscalar_core::history::PathPredictor;
    use multiscalar_core::predictor::TaskPredictor;
    use multiscalar_isa::{AluOp, Cond, ProgramBuilder, Reg};
    use multiscalar_taskform::TaskFormer;

    type PathLeh2 = PathPredictor<LastExitHysteresis<2>>;

    /// A loop with ALU work, an internal data-dependent branch, and memory
    /// traffic — exercises every field of the recording.
    fn mixed_program(iters: i32) -> Program {
        let mut b = ProgramBuilder::new();
        let main = b.begin_function("main");
        b.load_imm(Reg(1), 0);
        b.load_imm(Reg(2), iters);
        let top = b.here_label();
        b.op_imm(AluOp::And, Reg(3), Reg(1), 7);
        b.store(Reg(1), Reg(3), 0);
        b.load(Reg(4), Reg(3), 0);
        let skip = b.new_label();
        b.branch(Cond::Ne, Reg(3), Reg(0), skip);
        b.op_imm(AluOp::Add, Reg(5), Reg(5), 1);
        b.bind(skip);
        b.op_imm(AluOp::Add, Reg(1), Reg(1), 1);
        b.branch(Cond::Lt, Reg(1), Reg(2), top);
        b.halt();
        b.end_function();
        b.finish(main).unwrap()
    }

    #[test]
    fn recording_matches_interpreter_step_counts() {
        let p = mixed_program(300);
        let tp = TaskFormer::default().form(&p).unwrap();
        let descs = task_descs(&tp);
        let r = record_replay(&p, &tp, 1_000_000).unwrap();
        let t = simulate(&p, &tp, &descs, None, &TimingConfig::default(), 1_000_000).unwrap();
        assert_eq!(r.instructions(), t.instructions);
        assert_eq!(r.boundaries(), t.dynamic_tasks);
        assert!(r.heap_bytes() > 0);
    }

    #[test]
    fn replay_is_bit_identical_to_interpreter() {
        let p = mixed_program(500);
        let tp = TaskFormer::default().form(&p).unwrap();
        let descs = task_descs(&tp);
        let replay = record_replay(&p, &tp, 1_000_000).unwrap();
        let config = TimingConfig::default();

        // Perfect prediction.
        let legacy = simulate(&p, &tp, &descs, None, &config, 1_000_000).unwrap();
        let fast = simulate_replay(&replay, &descs, None, &config);
        assert_eq!(legacy, fast);

        // A real predictor (stateful: fresh instance per engine).
        let mk = || {
            TaskPredictor::<PathLeh2>::path(Dolc::new(4, 4, 6, 6, 2), Dolc::new(4, 3, 4, 4, 2), 16)
        };
        let legacy = simulate(&p, &tp, &descs, Some(&mut mk()), &config, 1_000_000).unwrap();
        let fast = simulate_replay(&replay, &descs, Some(&mut mk()), &config);
        assert_eq!(legacy, fast);
        assert!(legacy.dynamic_tasks > 0);
    }

    #[test]
    fn fused_columns_match_solo_replay_runs() {
        let p = mixed_program(500);
        let tp = TaskFormer::default().form(&p).unwrap();
        let descs = task_descs(&tp);
        let replay = record_replay(&p, &tp, 1_000_000).unwrap();
        let config = TimingConfig::default();

        let mk = |depth| {
            Box::new(TaskPredictor::<PathLeh2>::path(
                Dolc::new(depth, 4, 6, 6, 2),
                Dolc::new(4, 3, 4, 4, 2),
                16,
            )) as Box<dyn NextTaskPredictor>
        };
        let mut preds = vec![None, Some(mk(2)), Some(mk(4))];
        let fused = simulate_replay_fused(&replay, &descs, &mut preds, &config);

        let solo_perfect = simulate_replay(&replay, &descs, None, &config);
        let solo_d2 = simulate_replay(&replay, &descs, Some(&mut *mk(2)), &config);
        let solo_d4 = simulate_replay(&replay, &descs, Some(&mut *mk(4)), &config);
        assert_eq!(fused, vec![solo_perfect, solo_d2, solo_d4]);
    }

    #[test]
    fn fused_block_batching_is_invisible_across_program_lengths() {
        // Recording lengths on both sides of (and straddling) FUSE_BLOCK
        // multiples: partial final blocks, single-block runs, halts landing
        // anywhere in a block — all must stay bit-identical to solo runs.
        let config = TimingConfig::default();
        let mk = || {
            Box::new(TaskPredictor::<PathLeh2>::path(
                Dolc::new(4, 4, 6, 6, 2),
                Dolc::new(4, 3, 4, 4, 2),
                16,
            )) as Box<dyn NextTaskPredictor>
        };
        for iters in [1, 3, 17, 64, 200] {
            let p = mixed_program(iters);
            let tp = TaskFormer::default().form(&p).unwrap();
            let descs = task_descs(&tp);
            let replay = record_replay(&p, &tp, 1_000_000).unwrap();
            let mut preds = vec![None, Some(mk())];
            let fused = simulate_replay_fused(&replay, &descs, &mut preds, &config);
            let solo_perfect = simulate_replay(&replay, &descs, None, &config);
            let solo_real = simulate_replay(&replay, &descs, Some(&mut *mk()), &config);
            assert_eq!(fused, vec![solo_perfect, solo_real], "iters {iters}");
        }
    }

    #[test]
    fn replay_matches_across_ablation_configs() {
        use crate::arb::ArbConfig;
        use crate::timing::{ForwardingModel, IntraPredictorKind};

        let p = mixed_program(400);
        let tp = TaskFormer::default().form(&p).unwrap();
        let descs = task_descs(&tp);
        let replay = record_replay(&p, &tp, 1_000_000).unwrap();

        let configs = [
            TimingConfig::paper().forwarding(ForwardingModel::ReleaseAtEnd),
            TimingConfig::paper().intra_predictor(IntraPredictorKind::Gshare),
            TimingConfig::paper().arb(None),
            TimingConfig::paper().arb(Some(ArbConfig {
                banks: 1,
                entries_per_bank: 1,
                stages: 4,
            })),
            TimingConfig::paper()
                .n_units(8)
                .issue_width(4)
                .confidence_gate(Some(2)),
        ];
        for config in &configs {
            let legacy = simulate(&p, &tp, &descs, None, config, 1_000_000).unwrap();
            let fast = simulate_replay(&replay, &descs, None, config);
            assert_eq!(legacy, fast, "config {config:?}");
        }
    }
}
