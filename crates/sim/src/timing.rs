//! A timing simulator for the Multiscalar ring of processing units — the
//! source of the reproduction's Table 4 (IPC vs. task predictor).
//!
//! The model (simplified from the Wisconsin detailed simulator, see
//! DESIGN.md §5.3):
//!
//! * `n_units` processing units in a ring, tasks assigned round-robin,
//!   strictly FIFO commit;
//! * the global sequencer dispatches one task per `dispatch_cost` cycles
//!   along the *predicted* path; a task misprediction is discovered when
//!   the mispredicting task completes, squashes all younger work and
//!   restarts dispatch after `squash_penalty` cycles;
//! * within a task: in-order `issue_width`-wide issue with true
//!   register-dataflow stalls (a global register-availability scoreboard
//!   also captures inter-task forwarding delays around the ring), 1-cycle
//!   ALU ops, `load_latency`-cycle loads;
//! * intra-task conditional branches are predicted by a shared bimodal
//!   predictor (as in the paper, §2.2); a miss costs `intra_penalty`
//!   cycles.
//!
//! Absolute IPC differs from the paper's out-of-order cores; what Table 4's
//! reproduction preserves is the *ordering* (Simple < GLOBAL/PER < PATH <
//! Perfect) and the relative gaps.

use crate::arb::{Arb, ArbConfig, ArbEvent};
use multiscalar_core::confidence::ConfidenceEstimator;
use multiscalar_core::predictor::{ExitPredictor, TaskDesc, TaskPredictor};
use multiscalar_core::scalar::{Bimodal, McFarling, TwoLevelGag};
use multiscalar_isa::{Addr, ExitIndex, Instruction, Interpreter, Program, NUM_REGS};
use multiscalar_taskform::TaskProgram;

use crate::trace::TraceError;

/// Which predictor the processing units use for *intra-task* conditional
/// branches (paper §2.2 uses a bimodal; the others are ablation choices).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IntraPredictorKind {
    /// Bimodal 2-bit counters (the paper's choice).
    #[default]
    Bimodal,
    /// gshare-style global two-level.
    Gshare,
    /// McFarling combining predictor.
    McFarling,
}

/// Runtime state for the selected intra-task predictor.
#[derive(Debug, Clone)]
enum IntraState {
    Bimodal(Bimodal),
    Gshare(TwoLevelGag),
    McFarling(McFarling),
}

impl IntraState {
    fn new(kind: IntraPredictorKind, bits: u32) -> IntraState {
        match kind {
            IntraPredictorKind::Bimodal => IntraState::Bimodal(Bimodal::new(bits)),
            IntraPredictorKind::Gshare => IntraState::Gshare(TwoLevelGag::new(bits, bits.min(12))),
            IntraPredictorKind::McFarling => IntraState::McFarling(McFarling::new(bits)),
        }
    }

    fn predict(&self, pc: Addr) -> bool {
        match self {
            IntraState::Bimodal(p) => p.predict(pc),
            IntraState::Gshare(p) => p.predict(pc),
            IntraState::McFarling(p) => p.predict(pc),
        }
    }

    fn update(&mut self, pc: Addr, taken: bool) {
        match self {
            IntraState::Bimodal(p) => p.update(pc, taken),
            IntraState::Gshare(p) => p.update(pc, taken),
            IntraState::McFarling(p) => p.update(pc, taken),
        }
    }
}

/// How register values travel between tasks on the ring.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ForwardingModel {
    /// Eager, last-write forwarding: a value is visible to younger tasks
    /// the cycle it is produced — models the Multiscalar compiler's
    /// forward-bit annotations plus last-update detection (Breach et al.).
    #[default]
    Eager,
    /// Release-at-end forwarding: values named in a task's create mask are
    /// only released to younger tasks when the task completes — the
    /// conservative scheme a header-only implementation gets. Ablated in
    /// `cargo bench -p multiscalar-bench --bench table4_timing`.
    ReleaseAtEnd,
}

/// Machine parameters for the timing model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimingConfig {
    /// Processing units in the ring (paper: 4).
    pub n_units: usize,
    /// Issue width per unit (paper: 2-way).
    pub issue_width: u32,
    /// Load-to-use latency in cycles.
    pub load_latency: u64,
    /// Cycles the global sequencer needs per task dispatch.
    pub dispatch_cost: u64,
    /// Cycles to recover after a task misprediction (squash + refill).
    pub squash_penalty: u64,
    /// Cycles lost to an intra-task branch misprediction.
    pub intra_penalty: u64,
    /// Index bits of the shared intra-task bimodal predictor.
    pub bimodal_bits: u32,
    /// Which intra-task branch predictor the processing units use.
    pub intra_predictor: IntraPredictorKind,
    /// Inter-task register forwarding model.
    pub forwarding: ForwardingModel,
    /// Memory disambiguation hardware; `None` models an ideal, conflict-free
    /// memory system.
    pub arb: Option<ArbConfig>,
    /// Cycles lost when the ARB detects a memory-order violation (squash of
    /// the offending load's task tail and re-execution).
    pub violation_penalty: u64,
    /// Cycles the machine stalls when an ARB bank overflows.
    pub arb_full_penalty: u64,
    /// Confidence gating: `Some(threshold)` makes the sequencer stall
    /// instead of speculating past a low-confidence task prediction
    /// (a CIR estimator with the given correct-streak threshold).
    pub confidence_gate: Option<u8>,
}

impl Default for TimingConfig {
    fn default() -> Self {
        TimingConfig {
            n_units: 4,
            issue_width: 2,
            load_latency: 2,
            dispatch_cost: 1,
            squash_penalty: 12,
            intra_penalty: 3,
            bimodal_bits: 12,
            intra_predictor: IntraPredictorKind::default(),
            forwarding: ForwardingModel::Eager,
            arb: Some(ArbConfig::default()),
            violation_penalty: 8,
            arb_full_penalty: 2,
            confidence_gate: None,
        }
    }
}

/// Result of a timing run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimingResult {
    /// Committed instructions.
    pub instructions: u64,
    /// Total cycles until the last commit.
    pub cycles: u64,
    /// Dynamic tasks executed.
    pub dynamic_tasks: u64,
    /// Inter-task (next-task-address) mispredictions.
    pub task_mispredicts: u64,
    /// Intra-task conditional-branch mispredictions.
    pub intra_mispredicts: u64,
    /// Memory-order violations detected by the ARB model.
    pub arb_violations: u64,
    /// References stalled by ARB bank overflow.
    pub arb_full_stalls: u64,
    /// Boundaries where confidence gating withheld speculation.
    pub gated_boundaries: u64,
}

impl TimingResult {
    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }

    /// Task misprediction rate per dynamic task.
    pub fn task_miss_rate(&self) -> f64 {
        if self.dynamic_tasks == 0 {
            0.0
        } else {
            self.task_mispredicts as f64 / self.dynamic_tasks as f64
        }
    }
}

/// Inter-task prediction as the timing simulator consumes it.
///
/// Implemented by [`TaskPredictor`] for real predictors; pass `None` to
/// [`simulate`] for the paper's "Perfect" upper bound.
pub trait NextTaskPredictor {
    /// Predicts the entry address of the task following `task`.
    fn predict_next(&mut self, task: &TaskDesc) -> Option<Addr>;
    /// Resolves the step with the actual exit and next-task address.
    fn resolve(&mut self, task: &TaskDesc, actual_exit: ExitIndex, actual_next: Addr);
}

impl<E: ExitPredictor> NextTaskPredictor for TaskPredictor<E> {
    fn predict_next(&mut self, task: &TaskDesc) -> Option<Addr> {
        self.predict(task).target
    }
    fn resolve(&mut self, task: &TaskDesc, actual_exit: ExitIndex, actual_next: Addr) {
        self.update(task, actual_exit, actual_next);
    }
}

/// Runs the timing model over a full program execution.
///
/// `predictor` drives inter-task speculation; `None` simulates perfect
/// next-task prediction (the paper's "Perfect" row).
///
/// # Errors
///
/// Same failure modes as trace generation: execution faults, unmatched
/// boundary crossings, step-budget exhaustion.
pub fn simulate(
    program: &Program,
    tasks: &TaskProgram,
    descs: &[TaskDesc],
    mut predictor: Option<&mut dyn NextTaskPredictor>,
    config: &TimingConfig,
    max_steps: u64,
) -> Result<TimingResult, TraceError> {
    let mut interp = Interpreter::new(program);
    let mut intra = IntraState::new(config.intra_predictor, config.bimodal_bits);

    let mut result = TimingResult {
        instructions: 0,
        cycles: 0,
        dynamic_tasks: 0,
        task_mispredicts: 0,
        intra_mispredicts: 0,
        arb_violations: 0,
        arb_full_stalls: 0,
        gated_boundaries: 0,
    };
    let mut confidence = config
        .confidence_gate
        .map(|t| ConfidenceEstimator::new(12, t));

    // Memory disambiguation: the ARB tracks in-flight references per ring
    // stage; time-based detection catches loads that would have issued
    // before an older in-flight task's store to the same address.
    let mut arb = config.arb.map(|mut c| {
        c.stages = c.stages.max(config.n_units);
        Arb::new(c)
    });
    // addr -> (issue, task). Direct-indexed by word address: the key space
    // is bounded by the interpreter's memory, and this is consulted on every
    // memory instruction. NO_TASK marks never-stored slots (it can never
    // satisfy `store_task < task_index`).
    const NO_TASK: u64 = u64::MAX;
    let mut last_store: Vec<(u64, u64)> = vec![(0, NO_TASK); interp.mem_words()];

    // Global register scoreboard: cycle each register's value is ready
    // (exact production time). Under release-at-end forwarding, younger
    // tasks instead see `released`, updated when the producing task ends.
    let mut avail = [0u64; NUM_REGS];
    let mut released = [0u64; NUM_REGS];
    let mut written_this_task: u32 = 0;
    // Ring state.
    let mut unit_free = vec![0u64; config.n_units];
    let mut prev_commit: u64 = 0;

    // Current task instance state.
    let mut cur_task = tasks
        .task_entered_at(program.entry_point())
        .expect("entry starts a task");
    let mut task_index: u64 = 0;
    let mut dispatch = 1u64; // first dispatch
    let mut t_issue = dispatch + 1;
    let mut slots = 0u32;
    let mut complete = t_issue;

    if let Some(arb) = arb.as_mut() {
        arb.begin_task(0);
    }

    let mut steps = 0u64;
    loop {
        if steps >= max_steps {
            return Err(TraceError::StepLimit);
        }
        let info = interp.step()?;
        steps += 1;
        result.instructions += 1;

        // --- issue timing for this instruction --------------------------
        let mut ready = t_issue;
        for r in info.inst.sources() {
            let t = match config.forwarding {
                ForwardingModel::Eager => avail[r.index()],
                ForwardingModel::ReleaseAtEnd => {
                    // Values produced by this task bypass locally; values
                    // from older tasks arrive at their release time.
                    if written_this_task & (1 << r.index()) != 0 {
                        avail[r.index()]
                    } else {
                        released[r.index()]
                    }
                }
            };
            ready = ready.max(t);
        }
        if ready > t_issue {
            t_issue = ready;
            slots = 0;
        }
        let issue_time = t_issue;
        slots += 1;
        if slots >= config.issue_width {
            t_issue += 1;
            slots = 0;
        }
        let latency = match info.inst {
            Instruction::Load { .. } => config.load_latency,
            _ => 1,
        };

        // --- memory disambiguation -----------------------------------------
        if let Some(ea) = info.mem_addr {
            let is_load = matches!(info.inst, Instruction::Load { .. });
            if is_load {
                // Would this load have issued before an older in-flight
                // store to the same address produced its value?
                let (store_time, store_task) = last_store[ea as usize];
                if store_task < task_index && store_time > issue_time {
                    // Violation: the load's task re-executes from here.
                    result.arb_violations += 1;
                    t_issue = store_time + config.violation_penalty;
                    slots = 0;
                    complete = complete.max(t_issue);
                }
            } else {
                last_store[ea as usize] = (issue_time, task_index);
            }
            if let Some(arb) = arb.as_mut() {
                let ev = if is_load {
                    arb.load(ea, task_index)
                } else {
                    arb.store(ea, task_index)
                };
                if ev == ArbEvent::Full {
                    // No free entry: stall until the head commits.
                    result.arb_full_stalls += 1;
                    t_issue += config.arb_full_penalty;
                    slots = 0;
                }
            }
        }
        if let Some(rd) = info.inst.dest() {
            avail[rd.index()] = issue_time + latency;
            written_this_task |= 1 << rd.index();
        }
        complete = complete.max(issue_time + latency);

        if interp.is_halted() {
            break;
        }

        // --- task boundary? ----------------------------------------------
        let next_pc = info.next;
        let crossed = if next_pc == info.pc.next() && tasks.task_at(next_pc) == Some(cur_task) {
            None
        } else {
            tasks.resolve_exit(cur_task, info.pc, next_pc)
        };

        match crossed {
            Some(exit) => {
                // Inter-task prediction for this boundary.
                let desc = &descs[cur_task.index()];
                let mut gated = false;
                let miss = match predictor.as_deref_mut() {
                    Some(p) => {
                        let predicted = p.predict_next(desc);
                        p.resolve(desc, exit, next_pc);
                        let miss = predicted != Some(next_pc);
                        if let Some(c) = confidence.as_mut() {
                            gated = !c.high_confidence(desc.entry());
                            c.update(desc.entry(), !miss);
                        }
                        miss
                    }
                    None => false, // perfect
                };
                result.dynamic_tasks += 1;
                result.task_mispredicts += miss as u64;
                result.gated_boundaries += gated as u64;

                // Retire the finished task: release its created registers
                // (the header's create mask, §2.1) to younger tasks.
                if config.forwarding == ForwardingModel::ReleaseAtEnd {
                    for (r, rel) in released.iter_mut().enumerate() {
                        if written_this_task & (1 << r) != 0 {
                            *rel = (*rel).max(complete);
                        }
                    }
                    written_this_task = 0;
                }
                let commit = complete.max(prev_commit);
                let unit = (task_index as usize) % config.n_units;
                unit_free[unit] = commit + 1;

                // Advance the ARB stage window with the ring.
                if let Some(arb) = arb.as_mut() {
                    if arb.window_full() {
                        arb.commit_head();
                    }
                    arb.begin_task(task_index + 1);
                }

                // Dispatch the next task. The boundary just resolved tells
                // us how the *next* task's dispatch went on real hardware:
                task_index += 1;
                let next_unit = (task_index as usize) % config.n_units;
                let next_dispatch = if miss && !gated {
                    // Mispredicted: the wrong-path work is squashed when
                    // this task completes and reveals its actual exit; the
                    // correct next task dispatches after recovery.
                    complete + config.squash_penalty
                } else if gated {
                    // The sequencer withheld speculation on a
                    // low-confidence prediction: the next task starts once
                    // this boundary resolves — no squash, but no overlap.
                    complete.max(unit_free[next_unit])
                } else {
                    // Correct speculation: one prediction per
                    // `dispatch_cost` cycles, subject to a free unit.
                    (dispatch + config.dispatch_cost).max(unit_free[next_unit])
                };
                prev_commit = commit;
                dispatch = next_dispatch.max(dispatch + config.dispatch_cost);
                cur_task = match tasks.task_entered_at(next_pc) {
                    Some(t) => t,
                    None => {
                        return Err(TraceError::UnmatchedExit {
                            task: cur_task,
                            from: info.pc,
                            to: next_pc,
                        })
                    }
                };
                t_issue = t_issue.max(dispatch + 1);
                slots = 0;
                complete = complete.max(t_issue);
            }
            None => {
                // Still inside the task: internal conditional branches go
                // through the intra-task bimodal predictor.
                if let Instruction::Branch { .. } = info.inst {
                    let taken = next_pc != info.pc.next();
                    let predicted = intra.predict(info.pc);
                    if predicted != taken {
                        result.intra_mispredicts += 1;
                        t_issue = issue_time + 1 + config.intra_penalty;
                        slots = 0;
                    }
                    intra.update(info.pc, taken);
                }
                // Sanity: control must remain within the current task.
                if tasks.task_at(next_pc) != Some(cur_task) {
                    return Err(TraceError::UnmatchedExit {
                        task: cur_task,
                        from: info.pc,
                        to: next_pc,
                    });
                }
            }
        }
    }

    result.cycles = complete.max(prev_commit);
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measure::task_descs;
    use multiscalar_core::automata::LastExitHysteresis;
    use multiscalar_core::dolc::Dolc;
    use multiscalar_core::history::PathPredictor;
    use multiscalar_isa::Program;
    use multiscalar_isa::{AluOp, Cond, ProgramBuilder, Reg};
    use multiscalar_taskform::TaskFormer;

    type PathLeh2 = PathPredictor<LastExitHysteresis<2>>;

    fn loop_program(iters: i32) -> multiscalar_isa::Program {
        let mut b = ProgramBuilder::new();
        let main = b.begin_function("main");
        b.load_imm(Reg(1), 0);
        b.load_imm(Reg(2), iters);
        let top = b.here_label();
        b.op_imm(AluOp::Add, Reg(3), Reg(3), 1);
        b.op_imm(AluOp::Xor, Reg(4), Reg(3), 5);
        b.op_imm(AluOp::Add, Reg(1), Reg(1), 1);
        b.branch(Cond::Lt, Reg(1), Reg(2), top);
        b.halt();
        b.end_function();
        b.finish(main).unwrap()
    }

    fn run(p: &multiscalar_isa::Program, pred: Option<&mut dyn NextTaskPredictor>) -> TimingResult {
        let tp = TaskFormer::default().form(p).unwrap();
        let descs = task_descs(&tp);
        simulate(p, &tp, &descs, pred, &TimingConfig::default(), 10_000_000).unwrap()
    }

    #[test]
    fn perfect_prediction_beats_or_ties_real_prediction() {
        let p = loop_program(2000);
        let perfect = run(&p, None);
        let mut real =
            TaskPredictor::<PathLeh2>::path(Dolc::new(4, 4, 6, 6, 2), Dolc::new(4, 3, 4, 4, 2), 16);
        let realr = run(&p, Some(&mut real));
        assert_eq!(
            perfect.instructions, realr.instructions,
            "same committed work"
        );
        assert!(
            perfect.cycles <= realr.cycles,
            "perfect can never be slower"
        );
        assert_eq!(perfect.task_mispredicts, 0);
        assert!(perfect.ipc() >= realr.ipc());
        assert!(
            perfect.ipc() > 0.5,
            "a tight loop should overlap well: {}",
            perfect.ipc()
        );
    }

    #[test]
    fn ipc_bounded_by_machine_width() {
        let p = loop_program(500);
        let r = run(&p, None);
        let peak = 4.0 * 2.0;
        assert!(r.ipc() <= peak, "IPC {} cannot exceed peak {peak}", r.ipc());
        assert!(r.ipc() > 0.1);
        assert!(r.cycles > 0);
        assert!(r.dynamic_tasks >= 499);
    }

    #[test]
    fn mispredictions_cost_cycles() {
        // Compare a deliberately tiny (bad) predictor against a good one on
        // a program with a learnable pattern.
        let p = loop_program(3000);
        let mut good =
            TaskPredictor::<PathLeh2>::path(Dolc::new(4, 4, 6, 6, 2), Dolc::new(4, 3, 4, 4, 2), 16);
        let good_r = run(&p, Some(&mut good));
        // The loop task always re-enters itself, so even the good predictor
        // only misses at the very end; verify costs are visible by checking
        // misses translate into cycles vs perfect.
        let perfect = run(&p, None);
        if good_r.task_mispredicts > 0 {
            assert!(good_r.cycles > perfect.cycles);
        }
        assert!(
            good_r.task_miss_rate() < 0.05,
            "loop exits are trivially learnable"
        );
    }

    #[test]
    fn dataflow_dependences_throttle_ipc() {
        // A pure dependence chain cannot exceed 1 instruction per cycle.
        let mut b = ProgramBuilder::new();
        let main = b.begin_function("main");
        b.load_imm(Reg(1), 0);
        for _ in 0..64 {
            b.op_imm(AluOp::Add, Reg(1), Reg(1), 1); // serial chain
        }
        b.halt();
        b.end_function();
        let p = b.finish(main).unwrap();
        let r = run(&p, None);
        assert!(
            r.ipc() <= 1.1,
            "serial chain must be ~1 IPC, got {}",
            r.ipc()
        );

        // Independent streams can exceed 1 IPC on a 2-wide unit.
        let mut b = ProgramBuilder::new();
        let main = b.begin_function("main");
        for _ in 0..32 {
            b.op_imm(AluOp::Add, Reg(1), Reg(1), 1);
            b.op_imm(AluOp::Add, Reg(2), Reg(2), 1);
        }
        b.halt();
        b.end_function();
        let p2 = b.finish(main).unwrap();
        let r2 = run(&p2, None);
        assert!(
            r2.ipc() > 1.2,
            "independent streams should dual-issue: {}",
            r2.ipc()
        );
    }

    /// A producer loop that stores, then a consumer loop that loads the
    /// same addresses — cross-task memory traffic for the ARB model.
    fn store_load_program() -> Program {
        let mut b = ProgramBuilder::new();
        let main = b.begin_function("main");
        b.load_imm(Reg(1), 0);
        b.load_imm(Reg(2), 200);
        let top = b.here_label();
        // store to addr (i & 7), then immediately load it back
        b.op_imm(AluOp::And, Reg(3), Reg(1), 7);
        b.store(Reg(1), Reg(3), 0);
        b.op_imm(AluOp::Add, Reg(1), Reg(1), 1);
        b.load(Reg(4), Reg(3), 0);
        b.op(AluOp::Xor, Reg(5), Reg(5), Reg(4));
        b.branch(Cond::Lt, Reg(1), Reg(2), top);
        b.halt();
        b.end_function();
        b.finish(main).unwrap()
    }

    #[test]
    fn arb_model_is_wired_and_ideal_memory_is_faster_or_equal() {
        let p = store_load_program();
        let tp = TaskFormer::default().form(&p).unwrap();
        let descs = task_descs(&tp);
        let with_arb =
            simulate(&p, &tp, &descs, None, &TimingConfig::default(), 1_000_000).unwrap();
        let ideal_mem = TimingConfig {
            arb: None,
            ..TimingConfig::default()
        };
        let without = simulate(&p, &tp, &descs, None, &ideal_mem, 1_000_000).unwrap();
        assert_eq!(with_arb.instructions, without.instructions);
        // The ARB can only add stalls, never remove them.
        assert!(with_arb.cycles >= without.cycles);
        assert_eq!(without.arb_full_stalls, 0);
    }

    #[test]
    fn tiny_arb_banks_cause_full_stalls() {
        let p = store_load_program();
        let tp = TaskFormer::default().form(&p).unwrap();
        let descs = task_descs(&tp);
        let tiny = TimingConfig {
            arb: Some(crate::arb::ArbConfig {
                banks: 1,
                entries_per_bank: 1,
                stages: 4,
            }),
            ..TimingConfig::default()
        };
        let r = simulate(&p, &tp, &descs, None, &tiny, 1_000_000).unwrap();
        assert!(
            r.arb_full_stalls > 0,
            "a one-entry ARB must overflow on 8 addresses"
        );
        let roomy = simulate(&p, &tp, &descs, None, &TimingConfig::default(), 1_000_000).unwrap();
        assert!(roomy.arb_full_stalls < r.arb_full_stalls);
        assert!(r.cycles >= roomy.cycles, "overflow stalls cost cycles");
    }

    #[test]
    fn release_at_end_forwarding_is_slower_or_equal() {
        let p = loop_program(1000);
        let tp = TaskFormer::default().form(&p).unwrap();
        let descs = task_descs(&tp);
        let eager = simulate(&p, &tp, &descs, None, &TimingConfig::default(), 1_000_000).unwrap();
        let conservative = TimingConfig {
            forwarding: ForwardingModel::ReleaseAtEnd,
            ..TimingConfig::default()
        };
        let released = simulate(&p, &tp, &descs, None, &conservative, 1_000_000).unwrap();
        assert_eq!(eager.instructions, released.instructions);
        assert!(
            released.cycles >= eager.cycles,
            "release-at-end can only delay values: {} vs {}",
            released.cycles,
            eager.cycles
        );
        // For a dependence-carrying loop the difference must be visible.
        assert!(
            released.cycles > eager.cycles,
            "the loop-carried counter must stall"
        );
    }

    #[test]
    fn intra_task_branch_mispredicts_are_counted() {
        // A data-dependent alternating branch inside a task body.
        let mut b = ProgramBuilder::new();
        let main = b.begin_function("main");
        b.load_imm(Reg(1), 0);
        b.load_imm(Reg(2), 500);
        let top = b.here_label();
        b.op_imm(AluOp::And, Reg(3), Reg(1), 1);
        let skip = b.new_label();
        b.branch(Cond::Ne, Reg(3), Reg(0), skip);
        b.op_imm(AluOp::Add, Reg(4), Reg(4), 1);
        b.bind(skip);
        b.op_imm(AluOp::Add, Reg(1), Reg(1), 1);
        b.branch(Cond::Lt, Reg(1), Reg(2), top);
        b.halt();
        b.end_function();
        let p = b.finish(main).unwrap();
        let r = run(&p, None);
        // The alternating branch defeats a bimodal predictor; it may be a
        // task exit or internal depending on partitioning, so just check
        // the counter is wired (0 is only possible if it became an exit).
        assert!(r.intra_mispredicts < r.instructions);
    }
}
