//! A timing simulator for the Multiscalar ring of processing units — the
//! source of the reproduction's Table 4 (IPC vs. task predictor).
//!
//! The model (simplified from the Wisconsin detailed simulator, see
//! DESIGN.md §5.3):
//!
//! * `n_units` processing units in a ring, tasks assigned round-robin,
//!   strictly FIFO commit;
//! * the global sequencer dispatches one task per `dispatch_cost` cycles
//!   along the *predicted* path; a task misprediction is discovered when
//!   the mispredicting task completes, squashes all younger work and
//!   restarts dispatch after `squash_penalty` cycles;
//! * within a task: in-order `issue_width`-wide issue with true
//!   register-dataflow stalls (a global register-availability scoreboard
//!   also captures inter-task forwarding delays around the ring), 1-cycle
//!   ALU ops, `load_latency`-cycle loads;
//! * intra-task conditional branches are predicted by a shared bimodal
//!   predictor (as in the paper, §2.2); a miss costs `intra_penalty`
//!   cycles.
//!
//! Absolute IPC differs from the paper's out-of-order cores; what Table 4's
//! reproduction preserves is the *ordering* (Simple < GLOBAL/PER < PATH <
//! Perfect) and the relative gaps.
//!
//! # Two step feeds, one core
//!
//! The cycle-accounting loop ([`simulate_core`]) is generic over a
//! [`StepSource`] that feeds it one instruction's timing-relevant facts at
//! a time. [`simulate`] drives it from the interpreter (re-executing the
//! program); [`crate::replay::simulate_replay`] drives it from a
//! pre-recorded [`crate::replay::InstrReplay`] with zero re-interpretation.
//! Because both feeds produce the same step stream, the two entry points
//! return **bit-identical** [`TimingResult`]s by construction.

use crate::arb::{Arb, ArbConfig, ArbEvent};
use crate::metrics::{BoundaryEvent, FrontierCause, MetricsSink, NoopSink, StallCause};
use multiscalar_core::confidence::ConfidenceEstimator;
use multiscalar_core::predictor::{ExitPredictor, TaskDesc, TaskPredictor};
use multiscalar_core::scalar::{Bimodal, McFarling, TwoLevelGag};
use multiscalar_isa::{Addr, ExitIndex, Instruction, Interpreter, Program, NUM_REGS};
use multiscalar_taskform::{TaskId, TaskProgram};

use crate::trace::TraceError;

/// Which predictor the processing units use for *intra-task* conditional
/// branches (paper §2.2 uses a bimodal; the others are ablation choices).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IntraPredictorKind {
    /// Bimodal 2-bit counters (the paper's choice).
    #[default]
    Bimodal,
    /// gshare-style global two-level.
    Gshare,
    /// McFarling combining predictor.
    McFarling,
}

/// Runtime state for the selected intra-task predictor.
#[derive(Debug, Clone)]
enum IntraState {
    Bimodal(Bimodal),
    Gshare(TwoLevelGag),
    McFarling(McFarling),
}

impl IntraState {
    fn new(kind: IntraPredictorKind, bits: u32) -> IntraState {
        match kind {
            IntraPredictorKind::Bimodal => IntraState::Bimodal(Bimodal::new(bits)),
            IntraPredictorKind::Gshare => IntraState::Gshare(TwoLevelGag::new(bits, bits.min(12))),
            IntraPredictorKind::McFarling => IntraState::McFarling(McFarling::new(bits)),
        }
    }

    fn predict(&self, pc: Addr) -> bool {
        match self {
            IntraState::Bimodal(p) => p.predict(pc),
            IntraState::Gshare(p) => p.predict(pc),
            IntraState::McFarling(p) => p.predict(pc),
        }
    }

    fn update(&mut self, pc: Addr, taken: bool) {
        match self {
            IntraState::Bimodal(p) => p.update(pc, taken),
            IntraState::Gshare(p) => p.update(pc, taken),
            IntraState::McFarling(p) => p.update(pc, taken),
        }
    }
}

/// How register values travel between tasks on the ring.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ForwardingModel {
    /// Eager, last-write forwarding: a value is visible to younger tasks
    /// the cycle it is produced — models the Multiscalar compiler's
    /// forward-bit annotations plus last-update detection (Breach et al.).
    #[default]
    Eager,
    /// Release-at-end forwarding: values named in a task's create mask are
    /// only released to younger tasks when the task completes — the
    /// conservative scheme a header-only implementation gets. Ablated in
    /// `cargo bench -p multiscalar-bench --bench table4_timing`.
    ReleaseAtEnd,
}

/// Machine parameters for the timing model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimingConfig {
    /// Processing units in the ring (paper: 4).
    pub n_units: usize,
    /// Issue width per unit (paper: 2-way).
    pub issue_width: u32,
    /// Load-to-use latency in cycles.
    pub load_latency: u64,
    /// Cycles the global sequencer needs per task dispatch.
    pub dispatch_cost: u64,
    /// Cycles to recover after a task misprediction (squash + refill).
    pub squash_penalty: u64,
    /// Cycles lost to an intra-task branch misprediction.
    pub intra_penalty: u64,
    /// Index bits of the shared intra-task bimodal predictor.
    pub bimodal_bits: u32,
    /// Which intra-task branch predictor the processing units use.
    pub intra_predictor: IntraPredictorKind,
    /// Inter-task register forwarding model.
    pub forwarding: ForwardingModel,
    /// Memory disambiguation hardware; `None` models an ideal, conflict-free
    /// memory system.
    pub arb: Option<ArbConfig>,
    /// Cycles lost when the ARB detects a memory-order violation (squash of
    /// the offending load's task tail and re-execution).
    pub violation_penalty: u64,
    /// Cycles the machine stalls when an ARB bank overflows.
    pub arb_full_penalty: u64,
    /// Confidence gating: `Some(threshold)` makes the sequencer stall
    /// instead of speculating past a low-confidence task prediction
    /// (a CIR estimator with the given correct-streak threshold).
    pub confidence_gate: Option<u8>,
}

impl Default for TimingConfig {
    fn default() -> Self {
        TimingConfig {
            n_units: 4,
            issue_width: 2,
            load_latency: 2,
            dispatch_cost: 1,
            squash_penalty: 12,
            intra_penalty: 3,
            bimodal_bits: 12,
            intra_predictor: IntraPredictorKind::default(),
            forwarding: ForwardingModel::Eager,
            arb: Some(ArbConfig::default()),
            violation_penalty: 8,
            arb_full_penalty: 2,
            confidence_gate: None,
        }
    }
}

impl TimingConfig {
    /// The paper's machine parameters (§4): a 4-unit ring of 2-way units,
    /// 12-cycle squash recovery, a 12-bit shared bimodal intra predictor,
    /// and the default ARB. Identical to [`Default`], spelled as the root
    /// of a builder chain:
    ///
    /// ```
    /// use multiscalar_sim::timing::TimingConfig;
    /// let c = TimingConfig::paper().squash_penalty(20).n_units(8);
    /// assert_eq!(c.squash_penalty, 20);
    /// assert_eq!(c.n_units, 8);
    /// ```
    pub fn paper() -> TimingConfig {
        TimingConfig::default()
    }

    /// Sets the number of processing units in the ring.
    pub fn n_units(mut self, v: usize) -> TimingConfig {
        self.n_units = v;
        self
    }

    /// Sets the per-unit issue width.
    pub fn issue_width(mut self, v: u32) -> TimingConfig {
        self.issue_width = v;
        self
    }

    /// Sets the load-to-use latency.
    pub fn load_latency(mut self, v: u64) -> TimingConfig {
        self.load_latency = v;
        self
    }

    /// Sets the sequencer's per-dispatch cost.
    pub fn dispatch_cost(mut self, v: u64) -> TimingConfig {
        self.dispatch_cost = v;
        self
    }

    /// Sets the task-misprediction squash + refill penalty.
    pub fn squash_penalty(mut self, v: u64) -> TimingConfig {
        self.squash_penalty = v;
        self
    }

    /// Sets the intra-task branch misprediction penalty.
    pub fn intra_penalty(mut self, v: u64) -> TimingConfig {
        self.intra_penalty = v;
        self
    }

    /// Sets the shared intra predictor's index bits.
    pub fn bimodal_bits(mut self, v: u32) -> TimingConfig {
        self.bimodal_bits = v;
        self
    }

    /// Selects the intra-task branch predictor.
    pub fn intra_predictor(mut self, v: IntraPredictorKind) -> TimingConfig {
        self.intra_predictor = v;
        self
    }

    /// Selects the inter-task register forwarding model.
    pub fn forwarding(mut self, v: ForwardingModel) -> TimingConfig {
        self.forwarding = v;
        self
    }

    /// Sets the ARB geometry (`None` = ideal, conflict-free memory).
    pub fn arb(mut self, v: Option<ArbConfig>) -> TimingConfig {
        self.arb = v;
        self
    }

    /// Sets the ARB memory-order violation penalty.
    pub fn violation_penalty(mut self, v: u64) -> TimingConfig {
        self.violation_penalty = v;
        self
    }

    /// Sets the ARB bank-overflow stall penalty.
    pub fn arb_full_penalty(mut self, v: u64) -> TimingConfig {
        self.arb_full_penalty = v;
        self
    }

    /// Sets confidence gating (`Some(correct-streak threshold)`).
    pub fn confidence_gate(mut self, v: Option<u8>) -> TimingConfig {
        self.confidence_gate = v;
        self
    }
}

/// Result of a timing run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimingResult {
    /// Committed instructions.
    pub instructions: u64,
    /// Total cycles until the last commit.
    pub cycles: u64,
    /// Dynamic tasks executed.
    pub dynamic_tasks: u64,
    /// Inter-task (next-task-address) mispredictions.
    pub task_mispredicts: u64,
    /// Intra-task conditional-branch mispredictions.
    pub intra_mispredicts: u64,
    /// Memory-order violations detected by the ARB model.
    pub arb_violations: u64,
    /// References stalled by ARB bank overflow.
    pub arb_full_stalls: u64,
    /// Boundaries where confidence gating withheld speculation.
    pub gated_boundaries: u64,
}

impl TimingResult {
    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }

    /// Task misprediction rate per dynamic task.
    pub fn task_miss_rate(&self) -> f64 {
        if self.dynamic_tasks == 0 {
            0.0
        } else {
            self.task_mispredicts as f64 / self.dynamic_tasks as f64
        }
    }
}

/// Inter-task prediction as the timing simulator consumes it.
///
/// Implemented by [`TaskPredictor`] for real predictors; pass `None` to
/// [`simulate`] for the paper's "Perfect" upper bound.
pub trait NextTaskPredictor {
    /// Predicts the entry address of the task following `task`.
    fn predict_next(&mut self, task: &TaskDesc) -> Option<Addr>;
    /// Resolves the step with the actual exit and next-task address.
    fn resolve(&mut self, task: &TaskDesc, actual_exit: ExitIndex, actual_next: Addr);
}

impl<E: ExitPredictor> NextTaskPredictor for TaskPredictor<E> {
    fn predict_next(&mut self, task: &TaskDesc) -> Option<Addr> {
        self.predict(task).target
    }
    fn resolve(&mut self, task: &TaskDesc, actual_exit: ExitIndex, actual_next: Addr) {
        self.update(task, actual_exit, actual_next);
    }
}

impl NextTaskPredictor for Box<dyn NextTaskPredictor> {
    fn predict_next(&mut self, task: &TaskDesc) -> Option<Addr> {
        (**self).predict_next(task)
    }
    fn resolve(&mut self, task: &TaskDesc, actual_exit: ExitIndex, actual_next: Addr) {
        (**self).resolve(task, actual_exit, actual_next)
    }
}

// ---------------------------------------------------------------------------
// The step feed
// ---------------------------------------------------------------------------

/// Sentinel for "no register" in [`CoreStep`]'s compact register fields.
pub(crate) const NO_REG: u8 = u8::MAX;

/// Bits of a packed `last_store` word holding the storing task's index; the
/// remaining high bits hold the store's issue time. 2^26 dynamic tasks and
/// 2^38 cycles are far beyond any harness run; the store path asserts both
/// so an overflow can never silently corrupt violation detection.
const TASK_IDX_BITS: u32 = 26;
const TASK_IDX_MASK: u64 = (1 << TASK_IDX_BITS) - 1;

/// Timing class of one instruction — everything the cycle accounting needs
/// to know about *what* executed (its *effects* ride the other fields).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub(crate) enum OpClass {
    /// Single-cycle ALU/control work.
    Other = 0,
    /// A load: `load_latency` cycles plus memory disambiguation.
    Load = 1,
    /// A store: memory disambiguation.
    Store = 2,
    /// An *intra-task* conditional branch (boundary-crossing branches are
    /// classed [`OpClass::Other`]: the intra predictor never sees them).
    Branch = 3,
}

impl OpClass {
    pub(crate) fn from_u8(v: u8) -> OpClass {
        match v {
            1 => OpClass::Load,
            2 => OpClass::Store,
            3 => OpClass::Branch,
            _ => OpClass::Other,
        }
    }
}

/// A pre-resolved task-boundary crossing attached to the instruction that
/// caused it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct BoundaryStep {
    /// Static id of the retiring task (index into the `descs` slice).
    pub task: u32,
    /// The header exit it took.
    pub exit: ExitIndex,
    /// Entry address of the task executed next.
    pub next: Addr,
}

/// One instruction's timing-relevant facts, as fed to [`simulate_core`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct CoreStep {
    /// First/second source register ([`NO_REG`] when absent).
    pub src1: u8,
    /// Second source register ([`NO_REG`] when absent).
    pub src2: u8,
    /// Destination register ([`NO_REG`] when absent).
    pub dest: u8,
    /// Timing class.
    pub class: OpClass,
    /// Word address, valid iff `class` is `Load` or `Store`.
    pub mem_addr: u32,
    /// The branch's own address, valid iff `class` is `Branch`.
    pub branch_pc: Addr,
    /// Whether the branch was taken, valid iff `class` is `Branch`.
    pub taken: bool,
    /// `true` when this instruction halted the machine.
    pub halt: bool,
    /// The boundary this instruction crossed, if any.
    pub boundary: Option<BoundaryStep>,
}

/// A stream of [`CoreStep`]s driving [`simulate_core`] — the interpreter
/// (legacy) or a recorded replay cursor.
pub(crate) trait StepSource {
    /// Produces the next instruction's step, or the error that ended the
    /// run (execution fault, unmatched boundary, step-budget exhaustion).
    fn next_step(&mut self) -> Result<CoreStep, TraceError>;
}

/// The interpreter-backed [`StepSource`]: executes the program and resolves
/// task boundaries on the fly, exactly as trace generation does.
pub(crate) struct InterpSource<'a> {
    interp: Interpreter<'a>,
    tasks: &'a TaskProgram,
    cur_task: TaskId,
    steps: u64,
    max_steps: u64,
}

impl<'a> InterpSource<'a> {
    pub(crate) fn new(
        program: &'a Program,
        tasks: &'a TaskProgram,
        max_steps: u64,
    ) -> InterpSource<'a> {
        let cur_task = tasks
            .task_entered_at(program.entry_point())
            .expect("entry starts a task");
        InterpSource {
            interp: Interpreter::new(program),
            tasks,
            cur_task,
            steps: 0,
            max_steps,
        }
    }
}

impl StepSource for InterpSource<'_> {
    fn next_step(&mut self) -> Result<CoreStep, TraceError> {
        if self.steps >= self.max_steps {
            return Err(TraceError::StepLimit);
        }
        let info = self.interp.step()?;
        self.steps += 1;

        let (src1, src2) = {
            let mut it = info.inst.sources();
            (
                it.next().map_or(NO_REG, |r| r.0),
                it.next().map_or(NO_REG, |r| r.0),
            )
        };
        let dest = info.inst.dest().map_or(NO_REG, |r| r.0);
        let mut class = match info.inst {
            Instruction::Load { .. } => OpClass::Load,
            Instruction::Store { .. } => OpClass::Store,
            Instruction::Branch { .. } => OpClass::Branch,
            _ => OpClass::Other,
        };
        let mem_addr = info.mem_addr.unwrap_or(0);

        if self.interp.is_halted() {
            return Ok(CoreStep {
                src1,
                src2,
                dest,
                class,
                mem_addr,
                branch_pc: info.pc,
                taken: false,
                halt: true,
                boundary: None,
            });
        }

        let next_pc = info.next;
        let crossed =
            if next_pc == info.pc.next() && self.tasks.task_at(next_pc) == Some(self.cur_task) {
                None
            } else {
                self.tasks.resolve_exit(self.cur_task, info.pc, next_pc)
            };

        let mut taken = false;
        let boundary = match crossed {
            Some(exit) => {
                let retiring = self.cur_task;
                // The intra predictor never sees boundary-crossing branches.
                if class == OpClass::Branch {
                    class = OpClass::Other;
                }
                self.cur_task = match self.tasks.task_entered_at(next_pc) {
                    Some(t) => t,
                    None => {
                        return Err(TraceError::UnmatchedExit {
                            task: retiring,
                            from: info.pc,
                            to: next_pc,
                        })
                    }
                };
                Some(BoundaryStep {
                    task: retiring.0,
                    exit,
                    next: next_pc,
                })
            }
            None => {
                if class == OpClass::Branch {
                    taken = next_pc != info.pc.next();
                }
                // Sanity: control must remain within the current task.
                if self.tasks.task_at(next_pc) != Some(self.cur_task) {
                    return Err(TraceError::UnmatchedExit {
                        task: self.cur_task,
                        from: info.pc,
                        to: next_pc,
                    });
                }
                None
            }
        };

        Ok(CoreStep {
            src1,
            src2,
            dest,
            class,
            mem_addr,
            branch_pc: info.pc,
            taken,
            halt: false,
            boundary,
        })
    }
}

// ---------------------------------------------------------------------------
// The cycle-accounting core
// ---------------------------------------------------------------------------

/// All per-run mutable state of the cycle-accounting loop, folded out of
/// [`simulate_core`] so several independent runs (e.g. Table 4's five
/// predictor columns) can consume a single step stream in lockstep
/// ([`crate::replay::simulate_replay_fused`]). Each state sees exactly the
/// step sequence a solo run would, so fused and solo runs are bit-identical
/// by construction.
pub(crate) struct CoreState<'p> {
    intra: IntraState,
    result: TimingResult,
    confidence: Option<ConfidenceEstimator>,
    /// Memory disambiguation: the ARB tracks in-flight references per ring
    /// stage; time-based detection catches loads that would have issued
    /// before an older in-flight task's store to the same address.
    arb: Option<Arb>,
    /// addr -> `issue_time << TASK_IDX_BITS | task`, direct-indexed by word
    /// address: the key space is bounded by the interpreter's memory, and
    /// this is consulted on every memory instruction. Packing the pair into
    /// one word halves the footprint of the model's hottest random-access
    /// array (the cache misses here dominate the per-step cost). The
    /// all-zero initial state means "never stored": real stores record
    /// issue times >= 2, so a zeroed slot can never satisfy
    /// `store_time > issue_time` — and the zero-filled allocation is served
    /// from fresh zero pages, so words no store ever touches cost neither a
    /// memset nor a page.
    last_store: Vec<u64>,
    /// Upper bound on every recorded store's issue time. A load whose own
    /// issue time has already passed this bound cannot possibly trip the
    /// `store_time > issue_time` violation check, so the (cache-hostile)
    /// `last_store` read is skipped — the filter is conservative, never
    /// suppressing a real violation.
    max_store_time: u64,
    /// Global register scoreboard: cycle each register's value is ready
    /// (exact production time). Under release-at-end forwarding, younger
    /// tasks instead see `released`, updated when the producing task ends.
    avail: [u64; NUM_REGS],
    released: [u64; NUM_REGS],
    written_this_task: u32,
    // Ring state.
    unit_free: Vec<u64>,
    prev_commit: u64,
    // Current task instance state.
    task_index: u64,
    /// `task_index % n_units`, maintained incrementally (a hardware divide
    /// per boundary is measurable at replay speeds).
    cur_unit: usize,
    dispatch: u64,
    t_issue: u64,
    slots: u32,
    complete: u64,
    predictor: Option<&'p mut dyn NextTaskPredictor>,
}

impl<'p> CoreState<'p> {
    pub(crate) fn new(
        predictor: Option<&'p mut dyn NextTaskPredictor>,
        config: &TimingConfig,
        mem_words: usize,
    ) -> CoreState<'p> {
        let mut arb = config.arb.map(|mut c| {
            c.stages = c.stages.max(config.n_units);
            Arb::new(c)
        });
        if let Some(arb) = arb.as_mut() {
            arb.begin_task(0);
        }
        let dispatch = 1u64; // first dispatch
        let t_issue = dispatch + 1;
        CoreState {
            intra: IntraState::new(config.intra_predictor, config.bimodal_bits),
            result: TimingResult {
                instructions: 0,
                cycles: 0,
                dynamic_tasks: 0,
                task_mispredicts: 0,
                intra_mispredicts: 0,
                arb_violations: 0,
                arb_full_stalls: 0,
                gated_boundaries: 0,
            },
            confidence: config
                .confidence_gate
                .map(|t| ConfidenceEstimator::new(12, t)),
            arb,
            last_store: vec![0; mem_words],
            max_store_time: 0,
            avail: [0u64; NUM_REGS],
            released: [0u64; NUM_REGS],
            written_this_task: 0,
            unit_free: vec![0u64; config.n_units],
            prev_commit: 0,
            task_index: 0,
            cur_unit: 0,
            dispatch,
            t_issue,
            slots: 0,
            complete: t_issue,
            predictor,
        }
    }

    /// Reports the initial pipeline-fill frontier (dispatch of the first
    /// task) to `sink`. Callers invoke it once, before the first step.
    pub(crate) fn bootstrap<M: MetricsSink>(&self, sink: &mut M) {
        if M::ENABLED {
            sink.frontier(0, self.complete, FrontierCause::Startup);
        }
    }

    /// Accounts one instruction. The caller stops feeding steps after the
    /// one with `halt` set. Generic over the [`MetricsSink`] so the
    /// [`NoopSink`] instantiation compiles to exactly the uninstrumented
    /// loop (every hook is guarded by the const `M::ENABLED`).
    pub(crate) fn on_step<M: MetricsSink>(
        &mut self,
        step: &CoreStep,
        descs: &[TaskDesc],
        config: &TimingConfig,
        sink: &mut M,
    ) {
        self.result.instructions += 1;

        // --- issue timing for this instruction --------------------------
        let mut ready = self.t_issue;
        for r in [step.src1, step.src2] {
            if r == NO_REG {
                continue;
            }
            let t = match config.forwarding {
                ForwardingModel::Eager => self.avail[r as usize],
                ForwardingModel::ReleaseAtEnd => {
                    // Values produced by this task bypass locally; values
                    // from older tasks arrive at their release time.
                    if self.written_this_task & (1 << r) != 0 {
                        self.avail[r as usize]
                    } else {
                        self.released[r as usize]
                    }
                }
            };
            ready = ready.max(t);
        }
        if ready > self.t_issue {
            if M::ENABLED {
                sink.issue_stall(StallCause::Dataflow, ready - self.t_issue);
            }
            self.t_issue = ready;
            self.slots = 0;
        }
        let issue_time = self.t_issue;
        self.slots += 1;
        if self.slots >= config.issue_width {
            self.t_issue += 1;
            self.slots = 0;
        }
        let latency = match step.class {
            OpClass::Load => config.load_latency,
            _ => 1,
        };

        // --- memory disambiguation -----------------------------------------
        if matches!(step.class, OpClass::Load | OpClass::Store) {
            let ea = step.mem_addr;
            let is_load = step.class == OpClass::Load;
            if is_load {
                // Would this load have issued before an older in-flight
                // store to the same address produced its value?
                if self.max_store_time > issue_time {
                    let packed = self.last_store[ea as usize];
                    let store_time = packed >> TASK_IDX_BITS;
                    let store_task = packed & TASK_IDX_MASK;
                    if store_task < self.task_index && store_time > issue_time {
                        // Violation: the load's task re-executes from here.
                        self.result.arb_violations += 1;
                        self.t_issue = store_time + config.violation_penalty;
                        self.slots = 0;
                        let to = self.complete.max(self.t_issue);
                        if M::ENABLED {
                            sink.frontier(self.complete, to, FrontierCause::Violation);
                        }
                        self.complete = to;
                    }
                }
            } else {
                assert!(
                    issue_time >> (64 - TASK_IDX_BITS) == 0 && self.task_index <= TASK_IDX_MASK,
                    "last_store packing overflow"
                );
                self.last_store[ea as usize] = issue_time << TASK_IDX_BITS | self.task_index;
                self.max_store_time = self.max_store_time.max(issue_time);
            }
            if let Some(arb) = self.arb.as_mut() {
                let ev = if is_load {
                    arb.load(ea, self.task_index)
                } else {
                    arb.store(ea, self.task_index)
                };
                if ev == ArbEvent::Full {
                    // No free entry: stall until the head commits.
                    self.result.arb_full_stalls += 1;
                    if M::ENABLED {
                        sink.issue_stall(StallCause::ArbFull, config.arb_full_penalty);
                    }
                    self.t_issue += config.arb_full_penalty;
                    self.slots = 0;
                }
            }
        }
        if step.dest != NO_REG {
            self.avail[step.dest as usize] = issue_time + latency;
            self.written_this_task |= 1 << step.dest;
        }
        let done = issue_time + latency;
        if done > self.complete {
            if M::ENABLED {
                sink.frontier(self.complete, done, FrontierCause::Issue);
            }
            self.complete = done;
        }

        if step.halt {
            return;
        }

        // --- task boundary? ----------------------------------------------
        match step.boundary {
            Some(bound) => {
                // Inter-task prediction for this boundary.
                let next_pc = bound.next;
                let desc = &descs[bound.task as usize];
                let mut gated = false;
                let mut predicted_pc = Some(next_pc); // perfect predicts `next`
                let miss = match self.predictor.as_deref_mut() {
                    Some(p) => {
                        let predicted = p.predict_next(desc);
                        predicted_pc = predicted;
                        p.resolve(desc, bound.exit, next_pc);
                        let miss = predicted != Some(next_pc);
                        if let Some(c) = self.confidence.as_mut() {
                            gated = !c.high_confidence(desc.entry());
                            c.update(desc.entry(), !miss);
                        }
                        miss
                    }
                    None => false, // perfect
                };
                self.result.dynamic_tasks += 1;
                self.result.task_mispredicts += miss as u64;
                self.result.gated_boundaries += gated as u64;

                // Retire the finished task: release its created registers
                // (the header's create mask, §2.1) to younger tasks.
                if config.forwarding == ForwardingModel::ReleaseAtEnd {
                    for (r, rel) in self.released.iter_mut().enumerate() {
                        if self.written_this_task & (1 << r) != 0 {
                            *rel = (*rel).max(self.complete);
                        }
                    }
                    self.written_this_task = 0;
                }
                let commit = self.complete.max(self.prev_commit);
                // Sanitizer: commit is strictly FIFO, so the commit clock
                // and every unit's free time can only move forward.
                #[cfg(feature = "sanitize")]
                {
                    assert!(
                        commit >= self.prev_commit,
                        "sanitize: commit time went backwards ({commit} < {})",
                        self.prev_commit
                    );
                    assert!(
                        commit + 1 >= self.unit_free[self.cur_unit],
                        "sanitize: unit {} free time went backwards ({} -> {})",
                        self.cur_unit,
                        self.unit_free[self.cur_unit],
                        commit + 1
                    );
                }
                self.unit_free[self.cur_unit] = commit + 1;

                // Advance the ARB stage window with the ring: commit is
                // strictly FIFO, so the head task's entries are freed at
                // every task retirement (not only when the window fills).
                if let Some(arb) = self.arb.as_mut() {
                    arb.commit_head();
                    arb.begin_task(self.task_index + 1);
                }

                // Dispatch the next task. The boundary just resolved tells
                // us how the *next* task's dispatch went on real hardware:
                self.task_index += 1;
                let next_unit = if self.cur_unit + 1 == config.n_units {
                    0
                } else {
                    self.cur_unit + 1
                };
                self.cur_unit = next_unit;
                let next_dispatch = if miss && !gated {
                    // Mispredicted: the wrong-path work is squashed when
                    // this task completes and reveals its actual exit; the
                    // correct next task dispatches after recovery.
                    self.complete + config.squash_penalty
                } else if gated {
                    // The sequencer withheld speculation on a
                    // low-confidence prediction: the next task starts once
                    // this boundary resolves — no squash, but no overlap.
                    self.complete.max(self.unit_free[next_unit])
                } else {
                    // Correct speculation: one prediction per
                    // `dispatch_cost` cycles, subject to a free unit.
                    (self.dispatch + config.dispatch_cost).max(self.unit_free[next_unit])
                };
                self.prev_commit = commit;
                self.dispatch = next_dispatch.max(self.dispatch + config.dispatch_cost);
                // The next task issues on its own ring unit: its issue
                // clock starts when it is dispatched and its unit is free,
                // independent of the retiring task's issue cursor.
                self.t_issue = (self.dispatch + 1).max(self.unit_free[next_unit]);
                self.slots = 0;
                let to = self.complete.max(self.t_issue);
                if M::ENABLED {
                    let cause = if miss && !gated {
                        FrontierCause::Squash
                    } else if gated {
                        FrontierCause::Gated
                    } else {
                        FrontierCause::Dispatch
                    };
                    sink.frontier(self.complete, to, cause);
                    sink.boundary(&BoundaryEvent {
                        index: self.result.dynamic_tasks - 1,
                        task: bound.task,
                        exit: bound.exit.as_u8(),
                        next: next_pc.0,
                        predicted: predicted_pc.map(|a| a.0),
                        miss,
                        gated,
                        complete: self.complete,
                        commit,
                        dispatch: self.dispatch,
                    });
                }
                self.complete = to;
            }
            None => {
                // Still inside the task: internal conditional branches go
                // through the intra-task bimodal predictor.
                if step.class == OpClass::Branch {
                    let predicted = self.intra.predict(step.branch_pc);
                    if predicted != step.taken {
                        self.result.intra_mispredicts += 1;
                        let redirect = issue_time + 1 + config.intra_penalty;
                        if M::ENABLED {
                            sink.issue_stall(
                                StallCause::IntraMispredict,
                                redirect.saturating_sub(self.t_issue),
                            );
                        }
                        self.t_issue = redirect;
                        self.slots = 0;
                    }
                    self.intra.update(step.branch_pc, step.taken);
                }
            }
        }
    }

    /// Finalises the run and returns its [`TimingResult`].
    pub(crate) fn finish(self) -> TimingResult {
        let mut result = self.result;
        result.cycles = self.complete.max(self.prev_commit);
        result
    }
}

/// The timing loop proper, generic over the step feed. Monomorphised for
/// the interpreter and the replay cursor; both instantiations execute the
/// same cycle arithmetic on the same step stream, which is what makes
/// [`simulate`] and [`crate::replay::simulate_replay`] bit-identical.
pub(crate) fn simulate_core<S: StepSource, M: MetricsSink>(
    source: &mut S,
    descs: &[TaskDesc],
    predictor: Option<&mut dyn NextTaskPredictor>,
    config: &TimingConfig,
    mem_words: usize,
    sink: &mut M,
) -> Result<TimingResult, TraceError> {
    let mut state = CoreState::new(predictor, config, mem_words);
    state.bootstrap(sink);
    loop {
        let step = source.next_step()?;
        state.on_step(&step, descs, config, sink);
        if step.halt {
            break;
        }
    }
    let result = state.finish();
    sink.finish(&result);
    Ok(result)
}

/// Runs the timing model over a full program execution.
///
/// `predictor` drives inter-task speculation; `None` simulates perfect
/// next-task prediction (the paper's "Perfect" row).
///
/// # Errors
///
/// Same failure modes as trace generation: execution faults, unmatched
/// boundary crossings, step-budget exhaustion.
pub fn simulate(
    program: &Program,
    tasks: &TaskProgram,
    descs: &[TaskDesc],
    predictor: Option<&mut dyn NextTaskPredictor>,
    config: &TimingConfig,
    max_steps: u64,
) -> Result<TimingResult, TraceError> {
    simulate_with_sink(
        program,
        tasks,
        descs,
        predictor,
        config,
        max_steps,
        &mut NoopSink,
    )
}

/// [`simulate`] with a live [`MetricsSink`] observing the run. The
/// `NoopSink` instantiation *is* [`simulate`]; a [`crate::CycleBreakdown`]
/// attributes every cycle, a [`crate::TaskEventSink`] records task-level
/// events. The sink never alters cycle arithmetic, so the returned
/// [`TimingResult`] is bit-identical across sinks.
///
/// # Errors
///
/// Same failure modes as [`simulate`].
pub fn simulate_with_sink<M: MetricsSink>(
    program: &Program,
    tasks: &TaskProgram,
    descs: &[TaskDesc],
    predictor: Option<&mut dyn NextTaskPredictor>,
    config: &TimingConfig,
    max_steps: u64,
    sink: &mut M,
) -> Result<TimingResult, TraceError> {
    let mut source = InterpSource::new(program, tasks, max_steps);
    let mem_words = source.interp.mem_words();
    simulate_core(&mut source, descs, predictor, config, mem_words, sink)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measure::task_descs;
    use multiscalar_core::automata::LastExitHysteresis;
    use multiscalar_core::dolc::Dolc;
    use multiscalar_core::history::PathPredictor;
    use multiscalar_isa::Program;
    use multiscalar_isa::{AluOp, Cond, ProgramBuilder, Reg};
    use multiscalar_taskform::TaskFormer;

    type PathLeh2 = PathPredictor<LastExitHysteresis<2>>;

    fn loop_program(iters: i32) -> multiscalar_isa::Program {
        let mut b = ProgramBuilder::new();
        let main = b.begin_function("main");
        b.load_imm(Reg(1), 0);
        b.load_imm(Reg(2), iters);
        let top = b.here_label();
        b.op_imm(AluOp::Add, Reg(3), Reg(3), 1);
        b.op_imm(AluOp::Xor, Reg(4), Reg(3), 5);
        b.op_imm(AluOp::Add, Reg(1), Reg(1), 1);
        b.branch(Cond::Lt, Reg(1), Reg(2), top);
        b.halt();
        b.end_function();
        b.finish(main).unwrap()
    }

    fn run(p: &multiscalar_isa::Program, pred: Option<&mut dyn NextTaskPredictor>) -> TimingResult {
        let tp = TaskFormer::default().form(p).unwrap();
        let descs = task_descs(&tp);
        simulate(p, &tp, &descs, pred, &TimingConfig::default(), 10_000_000).unwrap()
    }

    #[test]
    fn perfect_prediction_beats_or_ties_real_prediction() {
        let p = loop_program(2000);
        let perfect = run(&p, None);
        let mut real =
            TaskPredictor::<PathLeh2>::path(Dolc::new(4, 4, 6, 6, 2), Dolc::new(4, 3, 4, 4, 2), 16);
        let realr = run(&p, Some(&mut real));
        assert_eq!(
            perfect.instructions, realr.instructions,
            "same committed work"
        );
        assert!(
            perfect.cycles <= realr.cycles,
            "perfect can never be slower"
        );
        assert_eq!(perfect.task_mispredicts, 0);
        assert!(perfect.ipc() >= realr.ipc());
        assert!(
            perfect.ipc() > 0.5,
            "a tight loop should overlap well: {}",
            perfect.ipc()
        );
    }

    #[test]
    fn ipc_bounded_by_machine_width() {
        let p = loop_program(500);
        let r = run(&p, None);
        let peak = 4.0 * 2.0;
        assert!(r.ipc() <= peak, "IPC {} cannot exceed peak {peak}", r.ipc());
        assert!(r.ipc() > 0.1);
        assert!(r.cycles > 0);
        assert!(r.dynamic_tasks >= 499);
    }

    /// A loop whose iterations are independent except for the counter: each
    /// task has plenty of instruction-level *and* task-level parallelism.
    fn wide_loop_program(iters: i32) -> Program {
        let mut b = ProgramBuilder::new();
        let main = b.begin_function("main");
        b.load_imm(Reg(1), 0);
        b.load_imm(Reg(2), iters);
        let top = b.here_label();
        b.op_imm(AluOp::Add, Reg(1), Reg(1), 1);
        // Twelve ops that depend only on the (cheap) counter chain, so
        // consecutive tasks can run concurrently on different ring units.
        for r in 3..15 {
            b.op_imm(AluOp::Xor, Reg(r), Reg(1), r as i32);
        }
        b.branch(Cond::Lt, Reg(1), Reg(2), top);
        b.halt();
        b.end_function();
        b.finish(main).unwrap()
    }

    #[test]
    fn independent_tasks_overlap_across_ring_units() {
        // Regression for the cross-unit issue-serialization bug: the next
        // task's issue clock must start from its own unit's availability,
        // not continue the retiring task's issue cursor. With the old
        // behaviour every instruction flowed through one width-2 issue
        // cursor, capping IPC at a single unit's width (2.0) no matter how
        // many units the ring had.
        let p = wide_loop_program(2000);
        let r = run(&p, None);
        let one_unit_width = TimingConfig::default().issue_width as f64;
        assert!(
            r.ipc() > one_unit_width,
            "independent tasks on a 4-unit ring must exceed one unit's \
             issue width: IPC {:.2} <= {one_unit_width}",
            r.ipc()
        );
        assert!(r.ipc() <= 8.0, "still bounded by total machine width");
    }

    #[test]
    fn mispredictions_cost_cycles() {
        // Compare a deliberately tiny (bad) predictor against a good one on
        // a program with a learnable pattern.
        let p = loop_program(3000);
        let mut good =
            TaskPredictor::<PathLeh2>::path(Dolc::new(4, 4, 6, 6, 2), Dolc::new(4, 3, 4, 4, 2), 16);
        let good_r = run(&p, Some(&mut good));
        // The loop task always re-enters itself, so even the good predictor
        // only misses at the very end; verify costs are visible by checking
        // misses translate into cycles vs perfect.
        let perfect = run(&p, None);
        if good_r.task_mispredicts > 0 {
            assert!(good_r.cycles > perfect.cycles);
        }
        assert!(
            good_r.task_miss_rate() < 0.05,
            "loop exits are trivially learnable"
        );
    }

    #[test]
    fn dataflow_dependences_throttle_ipc() {
        // A pure dependence chain cannot exceed 1 instruction per cycle.
        let mut b = ProgramBuilder::new();
        let main = b.begin_function("main");
        b.load_imm(Reg(1), 0);
        for _ in 0..64 {
            b.op_imm(AluOp::Add, Reg(1), Reg(1), 1); // serial chain
        }
        b.halt();
        b.end_function();
        let p = b.finish(main).unwrap();
        let r = run(&p, None);
        assert!(
            r.ipc() <= 1.1,
            "serial chain must be ~1 IPC, got {}",
            r.ipc()
        );

        // Independent streams can exceed 1 IPC on a 2-wide unit.
        let mut b = ProgramBuilder::new();
        let main = b.begin_function("main");
        for _ in 0..32 {
            b.op_imm(AluOp::Add, Reg(1), Reg(1), 1);
            b.op_imm(AluOp::Add, Reg(2), Reg(2), 1);
        }
        b.halt();
        b.end_function();
        let p2 = b.finish(main).unwrap();
        let r2 = run(&p2, None);
        assert!(
            r2.ipc() > 1.2,
            "independent streams should dual-issue: {}",
            r2.ipc()
        );
    }

    /// A producer loop that stores, then a consumer loop that loads the
    /// same addresses — cross-task memory traffic for the ARB model.
    fn store_load_program() -> Program {
        let mut b = ProgramBuilder::new();
        let main = b.begin_function("main");
        b.load_imm(Reg(1), 0);
        b.load_imm(Reg(2), 200);
        let top = b.here_label();
        // store to addr (i & 7), then immediately load it back
        b.op_imm(AluOp::And, Reg(3), Reg(1), 7);
        b.store(Reg(1), Reg(3), 0);
        b.op_imm(AluOp::Add, Reg(1), Reg(1), 1);
        b.load(Reg(4), Reg(3), 0);
        b.op(AluOp::Xor, Reg(5), Reg(5), Reg(4));
        b.branch(Cond::Lt, Reg(1), Reg(2), top);
        b.halt();
        b.end_function();
        b.finish(main).unwrap()
    }

    /// Like [`store_load_program`] but every iteration touches *two*
    /// distinct addresses, so even a single task's working set overflows a
    /// one-entry ARB.
    fn two_address_program() -> Program {
        let mut b = ProgramBuilder::new();
        let main = b.begin_function("main");
        b.load_imm(Reg(1), 0);
        b.load_imm(Reg(2), 200);
        let top = b.here_label();
        b.op_imm(AluOp::And, Reg(3), Reg(1), 7);
        b.op_imm(AluOp::Add, Reg(6), Reg(3), 8);
        b.store(Reg(1), Reg(3), 0);
        b.store(Reg(1), Reg(6), 0);
        b.op_imm(AluOp::Add, Reg(1), Reg(1), 1);
        b.load(Reg(4), Reg(3), 0);
        b.load(Reg(7), Reg(6), 0);
        b.op(AluOp::Xor, Reg(5), Reg(5), Reg(4));
        b.branch(Cond::Lt, Reg(1), Reg(2), top);
        b.halt();
        b.end_function();
        b.finish(main).unwrap()
    }

    #[test]
    fn arb_model_is_wired_and_ideal_memory_is_faster_or_equal() {
        let p = store_load_program();
        let tp = TaskFormer::default().form(&p).unwrap();
        let descs = task_descs(&tp);
        let with_arb =
            simulate(&p, &tp, &descs, None, &TimingConfig::default(), 1_000_000).unwrap();
        let ideal_mem = TimingConfig::paper().arb(None);
        let without = simulate(&p, &tp, &descs, None, &ideal_mem, 1_000_000).unwrap();
        assert_eq!(with_arb.instructions, without.instructions);
        // The ARB can only add stalls, never remove them.
        assert!(with_arb.cycles >= without.cycles);
        assert_eq!(without.arb_full_stalls, 0);
    }

    #[test]
    fn tiny_arb_banks_cause_full_stalls() {
        let p = two_address_program();
        let tp = TaskFormer::default().form(&p).unwrap();
        let descs = task_descs(&tp);
        let tiny = TimingConfig::paper().arb(Some(crate::arb::ArbConfig {
            banks: 1,
            entries_per_bank: 1,
            stages: 4,
        }));
        let r = simulate(&p, &tp, &descs, None, &tiny, 1_000_000).unwrap();
        assert!(
            r.arb_full_stalls > 0,
            "a one-entry ARB must overflow on a two-address working set"
        );
        let roomy = simulate(&p, &tp, &descs, None, &TimingConfig::default(), 1_000_000).unwrap();
        // With FIFO head retirement at every boundary, the default ARB
        // (8 banks x 32 entries) never fills on a 16-word working set.
        assert_eq!(
            roomy.arb_full_stalls, 0,
            "the default ARB must not overflow on a small working set"
        );
        assert!(r.cycles >= roomy.cycles, "overflow stalls cost cycles");
    }

    #[test]
    fn release_at_end_forwarding_is_slower_or_equal() {
        let p = loop_program(1000);
        let tp = TaskFormer::default().form(&p).unwrap();
        let descs = task_descs(&tp);
        let eager = simulate(&p, &tp, &descs, None, &TimingConfig::default(), 1_000_000).unwrap();
        let conservative = TimingConfig::paper().forwarding(ForwardingModel::ReleaseAtEnd);
        let released = simulate(&p, &tp, &descs, None, &conservative, 1_000_000).unwrap();
        assert_eq!(eager.instructions, released.instructions);
        assert!(
            released.cycles >= eager.cycles,
            "release-at-end can only delay values: {} vs {}",
            released.cycles,
            eager.cycles
        );
        // For a dependence-carrying loop the difference must be visible.
        assert!(
            released.cycles > eager.cycles,
            "the loop-carried counter must stall"
        );
    }

    #[test]
    fn cycle_breakdown_sums_to_total_and_leaves_result_unchanged() {
        use crate::metrics::{Cause, CycleBreakdown, TaskEventSink};
        let p = store_load_program();
        let tp = TaskFormer::default().form(&p).unwrap();
        let descs = task_descs(&tp);
        let config = TimingConfig::paper();
        let plain = simulate(&p, &tp, &descs, None, &config, 1_000_000).unwrap();

        let mut bd = CycleBreakdown::new();
        let attributed =
            simulate_with_sink(&p, &tp, &descs, None, &config, 1_000_000, &mut bd).unwrap();
        assert_eq!(plain, attributed, "sinks never alter cycle arithmetic");
        assert_eq!(bd.total(), plain.cycles, "attribution is exact");
        assert!(bd.get(Cause::UsefulIssue) > 0);

        // A real (mispredicting) predictor must surface squash cycles.
        let mut pred =
            TaskPredictor::<PathLeh2>::path(Dolc::new(4, 4, 6, 6, 2), Dolc::new(4, 3, 4, 4, 2), 16);
        let mut bd2 = CycleBreakdown::new();
        let r2 = simulate_with_sink(
            &p,
            &tp,
            &descs,
            Some(&mut pred),
            &config,
            1_000_000,
            &mut bd2,
        )
        .unwrap();
        assert_eq!(bd2.total(), r2.cycles);
        if r2.task_mispredicts > 0 {
            assert!(bd2.get(Cause::SquashRefill) > 0, "misses must cost cycles");
        }

        // The event sink logs one block per boundary plus a halt line.
        let mut ev = TaskEventSink::new();
        let r3 = simulate_with_sink(&p, &tp, &descs, None, &config, 1_000_000, &mut ev).unwrap();
        assert_eq!(plain, r3);
        let log = ev.into_jsonl();
        assert_eq!(
            log.matches("\"ev\":\"resolve\"").count() as u64,
            plain.dynamic_tasks
        );
        assert!(log.trim_end().ends_with('}'), "well-formed last line");
        assert!(log.contains("\"ev\":\"halt\""));
    }

    #[test]
    fn intra_task_branch_mispredicts_are_counted() {
        // A data-dependent alternating branch inside a task body.
        let mut b = ProgramBuilder::new();
        let main = b.begin_function("main");
        b.load_imm(Reg(1), 0);
        b.load_imm(Reg(2), 500);
        let top = b.here_label();
        b.op_imm(AluOp::And, Reg(3), Reg(1), 1);
        let skip = b.new_label();
        b.branch(Cond::Ne, Reg(3), Reg(0), skip);
        b.op_imm(AluOp::Add, Reg(4), Reg(4), 1);
        b.bind(skip);
        b.op_imm(AluOp::Add, Reg(1), Reg(1), 1);
        b.branch(Cond::Lt, Reg(1), Reg(2), top);
        b.halt();
        b.end_function();
        let p = b.finish(main).unwrap();
        let r = run(&p, None);
        // The alternating branch defeats a bimodal predictor; it may be a
        // task exit or internal depending on partitioning, so just check
        // the counter is wired (0 is only possible if it became an exit).
        assert!(r.intra_mispredicts < r.instructions);
    }
}
