//! Table 3 bench: the full composite predictor (exit predictor + RAS +
//! CTTB) against headerless CTTB-only prediction, including the §6.1
//! single-exit-optimisation ablation.

use criterion::{criterion_group, criterion_main, Criterion};
use multiscalar_bench::bench_workload;
use multiscalar_core::automata::LastExitHysteresis;
use multiscalar_core::dolc::Dolc;
use multiscalar_core::history::{PathPredictor, SingleExitMode};
use multiscalar_core::predictor::{CttbOnlyPredictor, ExitPredictor, TaskPredictor};
use multiscalar_sim::measure::{measure_cttb_only, measure_exits, measure_full};
use multiscalar_workloads::Spec92;
use std::hint::black_box;

type Leh2 = LastExitHysteresis<2>;

fn exit_cfg() -> Dolc {
    Dolc::new(7, 4, 9, 9, 3)
}

fn cttb_cfg() -> Dolc {
    Dolc::new(7, 4, 4, 5, 3)
}

fn composite(c: &mut Criterion) {
    println!("\nTable 3 (regenerated): next-task-address miss rates");
    let benches: Vec<_> = Spec92::ALL.iter().map(|&s| bench_workload(s)).collect();
    for b in &benches {
        let mut only = CttbOnlyPredictor::new(exit_cfg());
        let o = measure_cttb_only(&mut only, &b.descs, &b.trace.events);
        let mut full = TaskPredictor::<PathPredictor<Leh2>>::path(exit_cfg(), cttb_cfg(), 64);
        let f = measure_full(&mut full, &b.descs, &b.trace.events);
        println!(
            "  {:<10} CTTB-only(64KB) {:>6.2}%   exit+RAS+CTTB(16KB) {:>6.2}%",
            b.name(),
            o.miss_rate() * 100.0,
            f.next_task.miss_rate() * 100.0
        );
    }

    // Ablation: the single-exit optimisation's effect on PHT pressure.
    let gcc = &benches[0];
    for mode in [
        SingleExitMode::Off,
        SingleExitMode::SkipPht,
        SingleExitMode::SkipAll,
    ] {
        let mut p: PathPredictor<Leh2> = PathPredictor::with_mode(exit_cfg(), mode);
        let s = measure_exits(&mut p, &gcc.descs, &gcc.trace.events);
        println!(
            "  single-exit ablation (gcc) {:?}: {:.2}% miss, {} PHT states",
            mode,
            s.miss_rate() * 100.0,
            p.states_touched()
        );
    }

    let mut group = c.benchmark_group("table3_composite");
    group.sample_size(10);
    group.bench_function("full_predictor_gcc", |b| {
        b.iter(|| {
            let mut p = TaskPredictor::<PathPredictor<Leh2>>::path(exit_cfg(), cttb_cfg(), 64);
            black_box(measure_full(&mut p, &gcc.descs, &gcc.trace.events))
        })
    });
    group.bench_function("cttb_only_gcc", |b| {
        b.iter(|| {
            let mut p = CttbOnlyPredictor::new(exit_cfg());
            black_box(measure_cttb_only(&mut p, &gcc.descs, &gcc.trace.events))
        })
    });
    group.finish();
}

criterion_group!(benches, composite);
criterion_main!(benches);
