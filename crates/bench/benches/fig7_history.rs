//! Figure 7 bench: ideal GLOBAL / PER / PATH history schemes across the
//! five benchmarks. Criterion measures scheme throughput at depth 7; the
//! regenerated miss rates per depth are printed once.

use criterion::{criterion_group, criterion_main, Criterion};
use multiscalar_bench::bench_workload;
use multiscalar_harness::dispatch::{measure_ideal, Scheme};
use multiscalar_workloads::Spec92;
use std::hint::black_box;

fn fig7(c: &mut Criterion) {
    println!("\nFigure 7 (regenerated): ideal miss rate at depths 0 / 3 / 7");
    let benches: Vec<_> = Spec92::ALL.iter().map(|&s| bench_workload(s)).collect();
    for b in &benches {
        for scheme in Scheme::ALL {
            let r: Vec<String> = [0, 3, 7]
                .iter()
                .map(|&d| format!("{:.2}%", measure_ideal(scheme, d, b).miss_rate() * 100.0))
                .collect();
            println!("  {:<10} {:<7} {}", b.name(), scheme.name(), r.join(" / "));
        }
    }

    let gcc = &benches[0];
    let mut group = c.benchmark_group("fig7_history_gcc_depth7");
    group.sample_size(10);
    for scheme in Scheme::ALL {
        group.bench_function(scheme.name(), |b| {
            b.iter(|| black_box(measure_ideal(scheme, 7, gcc)))
        });
    }
    group.finish();
}

criterion_group!(benches, fig7);
criterion_main!(benches);
