//! Figures 10 & 11 bench: real DOLC-indexed PATH predictors vs the ideal,
//! plus the two §6.1 design-heuristic ablations DESIGN.md calls out:
//!
//! * **fold vs truncate** — the same history information folded by XOR
//!   into the index versus simply truncated to the low index bits;
//! * **tapered vs uniform bits** — fewer bits from older tasks versus the
//!   same number of bits from every task at equal intermediate length.

use criterion::{criterion_group, criterion_main, Criterion};
use multiscalar_bench::bench_workload;
use multiscalar_core::automata::LastExitHysteresis;
use multiscalar_core::dolc::Dolc;
use multiscalar_core::history::PathPredictor;
use multiscalar_core::ideal::IdealPath;
use multiscalar_core::predictor::ExitPredictor;
use multiscalar_harness::dispatch::exit_ladder;
use multiscalar_sim::measure::measure_exits;
use multiscalar_workloads::Spec92;
use std::hint::black_box;

type Leh2 = LastExitHysteresis<2>;

fn dolc(c: &mut Criterion) {
    let bench = bench_workload(Spec92::Gcc);

    println!("\nFigure 10 (regenerated, gcc): real vs ideal exit prediction");
    for cfg in exit_ladder() {
        let mut real: PathPredictor<Leh2> = PathPredictor::new(cfg);
        let rr = measure_exits(&mut real, &bench.descs, &bench.trace.events);
        let mut ideal: IdealPath<Leh2> = IdealPath::new(cfg.depth() as u32);
        let ir = measure_exits(&mut ideal, &bench.descs, &bench.trace.events);
        println!(
            "  {:<14} real {:>6.2}% ({} states)   ideal {:>6.2}% ({} states)",
            cfg.to_string(),
            rr.miss_rate() * 100.0,
            real.states_touched(),
            ir.miss_rate() * 100.0,
            ideal.states(),
        );
    }

    // Ablation 1 (fold vs truncate): same depth/bit budget, folds = 3 vs a
    // configuration whose intermediate index already fits (no folding) and
    // therefore carries fewer older-task bits.
    let folded = Dolc::new(6, 5, 8, 9, 3); // 42 bits -> 14
    let truncated = Dolc::new(6, 1, 4, 5, 1); // 14 bits, no fold
    let mut pf: PathPredictor<Leh2> = PathPredictor::new(folded);
    let fr = measure_exits(&mut pf, &bench.descs, &bench.trace.events);
    let mut pt: PathPredictor<Leh2> = PathPredictor::new(truncated);
    let tr = measure_exits(&mut pt, &bench.descs, &bench.trace.events);
    println!(
        "\nAblation §6.1-1 (gcc): folded {folded} {:.2}%  vs  unfolded {truncated} {:.2}%",
        fr.miss_rate() * 100.0,
        tr.miss_rate() * 100.0
    );

    // Ablation 2 (taper): more bits to recent tasks vs uniform spread,
    // equal intermediate length (42 bits, F=3).
    let tapered = Dolc::new(6, 5, 8, 9, 3); // 25 older + 8 last + 9 current
    let uniform = Dolc::new(6, 7, 7, 7, 3); // 35 + 7 + 7 = 49? keep 42: 6-6-6-6 = 30+6+6
    let uniform = if uniform.intermediate_bits() == tapered.intermediate_bits() {
        uniform
    } else {
        Dolc::new(6, 6, 6, 6, 3)
    };
    let mut pu: PathPredictor<Leh2> = PathPredictor::new(uniform);
    let ur = measure_exits(&mut pu, &bench.descs, &bench.trace.events);
    println!(
        "Ablation §6.1-2 (gcc): tapered {tapered} {:.2}%  vs  uniform {uniform} {:.2}%",
        fr.miss_rate() * 100.0,
        ur.miss_rate() * 100.0
    );

    let mut group = c.benchmark_group("fig10_fig11_dolc");
    group.sample_size(10);
    group.bench_function("real_path_d6_8kb", |b| {
        b.iter(|| {
            let mut p: PathPredictor<Leh2> = PathPredictor::new(folded);
            black_box(measure_exits(&mut p, &bench.descs, &bench.trace.events))
        })
    });
    group.bench_function("ideal_path_d6", |b| {
        b.iter(|| {
            let mut p: IdealPath<Leh2> = IdealPath::new(6);
            black_box(measure_exits(&mut p, &bench.descs, &bench.trace.events))
        })
    });
    group.finish();
}

criterion_group!(benches, dolc);
criterion_main!(benches);
