//! Figure 6 bench: the seven multi-way prediction automata driven by an
//! ideal path-indexed predictor over the gcc trace. Criterion measures
//! prediction throughput; the regenerated miss rates are printed once.

use criterion::{criterion_group, criterion_main, Criterion};
use multiscalar_bench::bench_workload;
use multiscalar_core::automata::AutomatonKind;
use multiscalar_harness::dispatch::measure_ideal_path_automaton;
use multiscalar_workloads::Spec92;
use std::hint::black_box;

fn fig6(c: &mut Criterion) {
    let bench = bench_workload(Spec92::Gcc);
    let depth = 7;

    println!("\nFigure 6 (regenerated, gcc, ideal PATH depth {depth}):");
    for kind in AutomatonKind::ALL {
        let stats = measure_ideal_path_automaton(kind, depth, &bench);
        println!(
            "  {:<16} {:>7.2}% miss  ({} bits/entry)",
            kind.name(),
            stats.miss_rate() * 100.0,
            kind.storage_bits()
        );
    }

    let mut group = c.benchmark_group("fig6_automata");
    group.sample_size(10);
    for kind in AutomatonKind::ALL {
        group.bench_function(kind.name(), |b| {
            b.iter(|| black_box(measure_ideal_path_automaton(kind, depth, &bench)))
        });
    }
    group.finish();
}

criterion_group!(benches, fig6);
criterion_main!(benches);
