//! Figures 8 & 12 bench: target-buffer prediction of indirect branch/call
//! targets — plain TTB baseline, real CTTB ladder, and ideal CTTB, on the
//! indirect-heavy gcc and xlisp analogs.

use criterion::{criterion_group, criterion_main, Criterion};
use multiscalar_bench::bench_workload;
use multiscalar_core::target::{Cttb, IdealCttb, Ttb};
use multiscalar_harness::dispatch::cttb_ladder;
use multiscalar_sim::measure::measure_indirect_targets;
use multiscalar_workloads::Spec92;
use std::hint::black_box;

fn target_buffers(c: &mut Criterion) {
    let benches: Vec<_> = [Spec92::Gcc, Spec92::Xlisp]
        .iter()
        .map(|&s| bench_workload(s))
        .collect();

    println!("\nFigures 8 & 12 (regenerated): indirect-target miss rates");
    for b in &benches {
        let mut ttb = Ttb::new(11);
        let ttb_rate = measure_indirect_targets(&mut ttb, &b.descs, &b.trace.events);
        println!(
            "  {:<8} TTB(11b): {:.2}%  over {} indirect exits",
            b.name(),
            ttb_rate.miss_rate() * 100.0,
            ttb_rate.predictions
        );
        for cfg in cttb_ladder() {
            let mut real = Cttb::new(cfg);
            let rr = measure_indirect_targets(&mut real, &b.descs, &b.trace.events);
            let mut ideal = IdealCttb::new(cfg.depth());
            let ir = measure_indirect_targets(&mut ideal, &b.descs, &b.trace.events);
            println!(
                "  {:<8} CTTB {:<14} real {:>7.2}%  ideal {:>7.2}%",
                b.name(),
                cfg.to_string(),
                rr.miss_rate() * 100.0,
                ir.miss_rate() * 100.0
            );
        }
    }

    let mut group = c.benchmark_group("fig8_fig12_target_buffers");
    group.sample_size(10);
    for b in &benches {
        group.bench_function(format!("{}_cttb_real_d7", b.name()), |bch| {
            bch.iter(|| {
                let mut cttb = Cttb::new(cttb_ladder()[7]);
                black_box(measure_indirect_targets(
                    &mut cttb,
                    &b.descs,
                    &b.trace.events,
                ))
            })
        });
        group.bench_function(format!("{}_cttb_ideal_d7", b.name()), |bch| {
            bch.iter(|| {
                let mut cttb = IdealCttb::new(7);
                black_box(measure_indirect_targets(
                    &mut cttb,
                    &b.descs,
                    &b.trace.events,
                ))
            })
        });
        group.bench_function(format!("{}_ttb", b.name()), |bch| {
            bch.iter(|| {
                let mut ttb = Ttb::new(11);
                black_box(measure_indirect_targets(
                    &mut ttb,
                    &b.descs,
                    &b.trace.events,
                ))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, target_buffers);
criterion_main!(benches);
