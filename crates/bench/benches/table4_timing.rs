//! Table 4 bench: the ring timing simulator under Simple / PATH / Perfect
//! inter-task prediction, plus a machine-width ablation (2 vs 4 vs 8
//! processing units).

use criterion::{criterion_group, criterion_main, Criterion};
use multiscalar_bench::bench_workload;
use multiscalar_core::automata::LastExitHysteresis;
use multiscalar_core::dolc::Dolc;
use multiscalar_core::history::PathPredictor;
use multiscalar_core::predictor::TaskPredictor;
use multiscalar_harness::dispatch::{dolc_15bit, real_predictor_16kb, Scheme};
use multiscalar_harness::Bench;
use multiscalar_sim::timing::{simulate, NextTaskPredictor, TimingConfig, TimingResult};
use multiscalar_workloads::Spec92;
use std::hint::black_box;

type Leh2 = LastExitHysteresis<2>;

fn run(b: &Bench, pred: Option<&mut dyn NextTaskPredictor>, config: &TimingConfig) -> TimingResult {
    simulate(
        &b.workload.program,
        &b.tasks,
        &b.descs,
        pred,
        config,
        b.workload.max_steps,
    )
    .expect("timing simulation succeeds")
}

fn timing(c: &mut Criterion) {
    let config = TimingConfig::default();
    let cttb_cfg = Dolc::new(7, 4, 4, 5, 3);

    println!("\nTable 4 (regenerated at bench scale): IPC");
    let benches: Vec<_> = Spec92::ALL.iter().map(|&s| bench_workload(s)).collect();
    for b in &benches {
        let mut simple = TaskPredictor::new(
            Box::new(PathPredictor::<Leh2>::new(dolc_15bit(0)))
                as Box<dyn multiscalar_core::predictor::ExitPredictor>,
            cttb_cfg,
            64,
        );
        let simple_r = run(b, Some(&mut simple), &config);
        let mut path = TaskPredictor::new(real_predictor_16kb(Scheme::Path), cttb_cfg, 64);
        let path_r = run(b, Some(&mut path), &config);
        let perfect = run(b, None, &config);
        println!(
            "  {:<10} simple {:>5.2}  path {:>5.2}  perfect {:>5.2}",
            b.name(),
            simple_r.ipc(),
            path_r.ipc(),
            perfect.ipc()
        );
    }

    // Ablation: ring width under perfect prediction.
    let gcc = &benches[0];
    for units in [2, 4, 8] {
        let cfg = TimingConfig {
            n_units: units,
            ..config
        };
        let r = run(gcc, None, &cfg);
        println!(
            "  width ablation (gcc, perfect): {units} units -> IPC {:.2}",
            r.ipc()
        );
    }

    let mut group = c.benchmark_group("table4_timing");
    group.sample_size(10);
    group.bench_function("perfect_gcc", |b| {
        b.iter(|| black_box(run(gcc, None, &config)))
    });
    group.bench_function("path_gcc", |b| {
        b.iter(|| {
            let mut p = TaskPredictor::new(real_predictor_16kb(Scheme::Path), cttb_cfg, 64);
            black_box(run(gcc, Some(&mut p), &config))
        })
    });
    group.finish();
}

criterion_group!(benches, timing);
criterion_main!(benches);
