//! Table 4 bench: the ring timing simulator under Simple / PATH / Perfect
//! inter-task prediction, plus a machine-width ablation (2 vs 4 vs 8
//! processing units).
//!
//! All ablation columns ride one [`record_replay`] recording per benchmark
//! (the recording is config-independent); criterion then compares a
//! replay-driven run against the legacy interpreter-driven `simulate` on
//! the same workload.

use criterion::{criterion_group, criterion_main, Criterion};
use multiscalar_bench::bench_workload;
use multiscalar_harness::dispatch::Table4Column;
use multiscalar_harness::Bench;
use multiscalar_sim::replay::{record_replay, simulate_replay, InstrReplay};
use multiscalar_sim::timing::{simulate, NextTaskPredictor, TimingConfig, TimingResult};
use multiscalar_workloads::Spec92;
use std::hint::black_box;

fn run_legacy(
    b: &Bench,
    pred: Option<&mut dyn NextTaskPredictor>,
    config: &TimingConfig,
) -> TimingResult {
    simulate(
        &b.workload.program,
        &b.tasks,
        &b.descs,
        pred,
        config,
        b.workload.max_steps,
    )
    .expect("timing simulation succeeds")
}

fn run_replay(
    replay: &InstrReplay,
    b: &Bench,
    column: Table4Column,
    config: &TimingConfig,
) -> TimingResult {
    let mut pred = column.predictor();
    simulate_replay(
        replay,
        &b.descs,
        pred.as_mut().map(|p| p as &mut dyn NextTaskPredictor),
        config,
    )
}

fn timing(c: &mut Criterion) {
    let config = TimingConfig::default();

    println!("\nTable 4 (regenerated at bench scale): IPC");
    let benches: Vec<_> = Spec92::ALL.iter().map(|&s| bench_workload(s)).collect();
    // One recording per benchmark drives every predictor column and every
    // machine-config ablation below.
    let replays: Vec<InstrReplay> = benches
        .iter()
        .map(|b| {
            record_replay(&b.workload.program, &b.tasks, b.workload.max_steps)
                .expect("recording succeeds")
        })
        .collect();
    for (b, replay) in benches.iter().zip(&replays) {
        let simple = run_replay(replay, b, Table4Column::Simple, &config);
        let path = run_replay(replay, b, Table4Column::Path, &config);
        let perfect = run_replay(replay, b, Table4Column::Perfect, &config);
        println!(
            "  {:<10} simple {:>5.2}  path {:>5.2}  perfect {:>5.2}",
            b.name(),
            simple.ipc(),
            path.ipc(),
            perfect.ipc()
        );
    }

    // Ablation: ring width under perfect prediction, on the shared recording.
    let gcc = &benches[0];
    let gcc_replay = &replays[0];
    for units in [2, 4, 8] {
        let cfg = config.n_units(units);
        let r = run_replay(gcc_replay, gcc, Table4Column::Perfect, &cfg);
        println!(
            "  width ablation (gcc, perfect): {units} units -> IPC {:.2}",
            r.ipc()
        );
    }

    let mut group = c.benchmark_group("table4_timing");
    group.sample_size(10);
    group.bench_function("legacy_perfect_gcc", |b| {
        b.iter(|| black_box(run_legacy(gcc, None, &config)))
    });
    group.bench_function("replay_perfect_gcc", |b| {
        b.iter(|| black_box(run_replay(gcc_replay, gcc, Table4Column::Perfect, &config)))
    });
    group.bench_function("replay_path_gcc", |b| {
        b.iter(|| black_box(run_replay(gcc_replay, gcc, Table4Column::Path, &config)))
    });
    group.finish();
}

criterion_group!(benches, timing);
criterion_main!(benches);
