//! Table 2 / Figures 3–4 bench: the functional-simulation front end —
//! workload generation, task formation and trace collection — whose
//! statistics those artifacts tabulate.

use criterion::{criterion_group, criterion_main, Criterion};
use multiscalar_bench::bench_params;
use multiscalar_sim::trace::collect_trace;
use multiscalar_taskform::TaskFormer;
use multiscalar_workloads::Spec92;
use std::hint::black_box;

fn tracing(c: &mut Criterion) {
    let params = bench_params();

    println!("\nTable 2 (regenerated at bench scale):");
    println!(
        "  {:<10} {:>8} {:>10} {:>9} {:>12}",
        "benchmark", "static", "dynamic", "distinct", "instructions"
    );
    for spec in Spec92::ALL {
        let w = spec.build(&params);
        let tp = TaskFormer::default().form(&w.program).unwrap();
        let run = collect_trace(&w.program, &tp, w.max_steps).unwrap();
        println!(
            "  {:<10} {:>8} {:>10} {:>9} {:>12}",
            spec.name(),
            tp.static_task_count(),
            run.stats.dynamic_tasks,
            run.stats.distinct_tasks,
            run.stats.instructions
        );
    }

    let mut group = c.benchmark_group("table2_tracing");
    group.sample_size(10);
    for spec in [Spec92::Compress, Spec92::Gcc] {
        let w = spec.build(&params);
        let tp = TaskFormer::default().form(&w.program).unwrap();
        group.bench_function(format!("trace_{}", spec.name()), |b| {
            b.iter(|| black_box(collect_trace(&w.program, &tp, w.max_steps).unwrap()))
        });
        group.bench_function(format!("taskform_{}", spec.name()), |b| {
            b.iter(|| black_box(TaskFormer::default().form(&w.program).unwrap()))
        });
    }
    group.bench_function("generate_gcc", |b| {
        b.iter(|| black_box(Spec92::Gcc.build(&params)))
    });
    group.finish();
}

criterion_group!(benches, tracing);
criterion_main!(benches);
