//! Shared setup for the Criterion benches: prepared benchmarks at a small
//! scale, so each bench target measures predictor/simulator throughput over
//! a realistic trace while also printing the accuracy numbers it
//! regenerates (the paper's tables and figures come from the same kernels).

use multiscalar_harness::{prepare, Bench};
use multiscalar_workloads::{Spec92, WorkloadParams};

/// The workload scale used by the benches (small: keeps `cargo bench`
/// minutes-scale while exercising the identical code paths as the
/// full-scale harness).
pub fn bench_params() -> WorkloadParams {
    WorkloadParams {
        seed: 0xC0FFEE,
        scale: 1,
    }
}

/// Prepares one benchmark at bench scale.
pub fn bench_workload(spec: Spec92) -> Bench {
    prepare(spec, &bench_params())
}
