//! The fuzz corpus generator: seed → shape → random well-formed program.
//!
//! `harness fuzz` drives every generated program through a differential
//! oracle stack (lint, interpreter vs replay vs fused vs lane-packed
//! engines, cycle-attribution sums); this module owns the *generation*
//! side so the corpus is reproducible from a single `u64` seed anywhere in
//! the workspace — tests, the CLI sweep, and the predictor-zoo ranking all
//! regenerate identical programs.
//!
//! A [`FuzzShape`] is derived from the seed (one xorshift stream, disjoint
//! from the program-body stream) and then drives
//! [`crate::synthetic::random_program`]. Keeping the shape explicit — and
//! serialisable as `key=value` lines — is what makes shrinking work: a
//! failing `(seed, shape)` pair re-runs exactly, and the shrinker walks
//! the shape lattice downward while the failure reproduces.
//!
//! # Termination bound
//!
//! The generator's call DAG means a function's dynamic instruction count
//! can grow like `constructs^functions` in the worst case (every construct
//! a call to the next function). The shape space is therefore capped at
//! [`MAX_FUNCTIONS`] × [`MAX_CONSTRUCTS`] so the worst-case dynamic length
//! (driver trips × call-tree size) stays well inside [`MAX_STEPS`]; the
//! differential harness treats budget exhaustion as a generator bug.

use crate::rng::{Rng, SeedableRng, StdRng};
use crate::synthetic::{random_program, SyntheticConfig};
use multiscalar_isa::Program;

/// Largest function count a derived shape uses (see the module-level
/// termination bound).
pub const MAX_FUNCTIONS: usize = 6;

/// Largest per-function construct count a derived shape uses.
pub const MAX_CONSTRUCTS: usize = 6;

/// Largest construct-nesting depth a derived shape uses.
pub const MAX_NESTING: u32 = 3;

/// Number of task-former budget points a shape can select (index into the
/// harness's budget table; 1 is the default former).
pub const FORMER_BUDGETS: usize = 3;

/// Largest per-function memory-op shape count a fuzz case uses (see
/// [`crate::synthetic::SyntheticConfig::mem_ops`]).
pub const MAX_MEMOPS: usize = 4;

/// Interpreter step budget every fuzz case must halt within. Sized ~4×
/// above the worst shape's dynamic length: `6^6` worst-case call tree ×
/// ≤5 driver trips × ~4 instructions per construct ≈ 1M steps.
pub const MAX_STEPS: u64 = 16_000_000;

/// The size/shape coordinates of one fuzz case. Together with the seed it
/// fully determines the generated program *and* (via `former`) the task
/// partition the harness forms over it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FuzzShape {
    /// Number of functions (1..=[`MAX_FUNCTIONS`]).
    pub functions: usize,
    /// Constructs per function body (1..=[`MAX_CONSTRUCTS`]).
    pub constructs: usize,
    /// Maximum construct nesting depth (0..=[`MAX_NESTING`]).
    pub nesting: u32,
    /// Task-former budget index (0..[`FORMER_BUDGETS`]; the harness maps
    /// it onto its small/default/large budget table).
    pub former: usize,
    /// Boundary-stressing memory-op shapes per function
    /// (0..=[`MAX_MEMOPS`]). Always 0 in seed-derived shapes so every
    /// historical seed's program stays byte-identical; the harness sweeps
    /// a memops-enabled companion case per seed.
    pub memops: usize,
}

impl FuzzShape {
    /// Derives the shape a bare seed fuzzes at. The stream is offset from
    /// the program-body stream, so shape and body are independent draws.
    pub fn from_seed(seed: u64) -> FuzzShape {
        // Distinct stream from `random_program`'s body stream (which seeds
        // from the bare seed): xor a fixed tag before seeding.
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5AAD_F02A_5AAD_F02A);
        FuzzShape {
            functions: rng.gen_range(1..MAX_FUNCTIONS + 1),
            constructs: rng.gen_range(1..MAX_CONSTRUCTS + 1),
            nesting: rng.gen_range(0..MAX_NESTING + 1),
            former: rng.gen_range(0..FORMER_BUDGETS),
            // Not drawn from the stream: a bare seed's program must stay
            // byte-identical across releases. Memop coverage comes from
            // the sweep's explicit companion cases.
            memops: 0,
        }
    }

    /// The default shape (used by shrinking as the `former` floor).
    pub fn minimal() -> FuzzShape {
        FuzzShape {
            functions: 1,
            constructs: 1,
            nesting: 0,
            former: 1,
            memops: 0,
        }
    }

    /// One-step-smaller neighbours of this shape, largest reduction first:
    /// the shrinker tries each and keeps the first that still fails.
    /// Every dimension strictly decreases toward [`FuzzShape::minimal`]
    /// (with `former` stepping toward the default budget, index 1), so
    /// shrinking terminates.
    pub fn shrink_candidates(&self) -> Vec<FuzzShape> {
        let mut out = Vec::new();
        if self.functions > 1 {
            // Halve first (fast descent), then decrement.
            if self.functions > 2 {
                out.push(FuzzShape {
                    functions: self.functions / 2,
                    ..*self
                });
            }
            out.push(FuzzShape {
                functions: self.functions - 1,
                ..*self
            });
        }
        if self.constructs > 1 {
            if self.constructs > 2 {
                out.push(FuzzShape {
                    constructs: self.constructs / 2,
                    ..*self
                });
            }
            out.push(FuzzShape {
                constructs: self.constructs - 1,
                ..*self
            });
        }
        if self.nesting > 0 {
            out.push(FuzzShape {
                nesting: self.nesting - 1,
                ..*self
            });
        }
        if self.memops > 0 {
            out.push(FuzzShape {
                memops: self.memops - 1,
                ..*self
            });
        }
        if self.former != 1 {
            out.push(FuzzShape { former: 1, ..*self });
        }
        out
    }

    /// Serialises the shape as the `key=value` lines of a reproducer
    /// artifact (see `harness fuzz --repro`).
    pub fn render(&self) -> String {
        format!(
            "functions={}\nconstructs={}\nnesting={}\nformer={}\nmemops={}\n",
            self.functions, self.constructs, self.nesting, self.former, self.memops
        )
    }
}

/// Generates the fuzz program for `(seed, shape)`. Deterministic; the
/// guarantees of [`random_program`] apply (builds, halts within
/// [`MAX_STEPS`], no recursion, bounded memory, declared indirect
/// targets) — the differential harness re-checks every one of them.
pub fn fuzz_program(seed: u64, shape: &FuzzShape) -> Program {
    random_program(
        seed,
        &SyntheticConfig {
            functions: shape.functions,
            constructs: shape.constructs,
            nesting: shape.nesting,
            mem_ops: shape.memops,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use multiscalar_isa::Interpreter;

    #[test]
    fn shapes_are_deterministic_and_in_bounds() {
        for seed in 0..200 {
            let a = FuzzShape::from_seed(seed);
            assert_eq!(a, FuzzShape::from_seed(seed));
            assert!((1..=MAX_FUNCTIONS).contains(&a.functions), "{a:?}");
            assert!((1..=MAX_CONSTRUCTS).contains(&a.constructs), "{a:?}");
            assert!(a.nesting <= MAX_NESTING, "{a:?}");
            assert!(a.former < FORMER_BUDGETS, "{a:?}");
            assert_eq!(a.memops, 0, "bare seeds must stay byte-identical");
        }
    }

    /// FNV-1a over the disassembly: a cheap stable fingerprint.
    fn disasm_hash(p: &Program) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for byte in p.disassemble().bytes() {
            h ^= byte as u64;
            h = h.wrapping_mul(0x1_0000_01b3);
        }
        h
    }

    #[test]
    fn seed_derived_programs_are_pinned() {
        // Historical seeds must regenerate the exact same programs —
        // reproducer artifacts and triage notes reference them by seed.
        // If a deliberate generator change breaks this, re-pin AND bump
        // the artifact format notes in the fuzz module docs.
        let pinned: [(u64, u64); 3] = [
            (0, 0xf9c2_ba81_9744_761a),
            (1, 0x6842_5df7_e59a_6fdc),
            (17, 0x8c90_0c1a_5982_02d0),
        ];
        for (seed, want) in pinned {
            let case = FuzzShape::from_seed(seed);
            let got = disasm_hash(&fuzz_program(seed, &case));
            assert_eq!(got, want, "seed {seed} drifted (got {got:#x})");
        }
    }

    #[test]
    fn memop_shapes_build_halt_and_add_memory_traffic() {
        for seed in 0..12 {
            let mut shape = FuzzShape::from_seed(seed);
            shape.memops = 1 + (seed % MAX_MEMOPS as u64) as usize;
            let with = fuzz_program(seed, &shape);
            let without = fuzz_program(seed, &FuzzShape::from_seed(seed));
            assert!(
                with.len() > without.len(),
                "seed {seed}: memops must add instructions"
            );
            let out = Interpreter::new(&with)
                .run(MAX_STEPS)
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            assert!(out.halted, "seed {seed} must halt with memops");
        }
    }

    #[test]
    fn shapes_cover_the_space() {
        // The derivation must not collapse: over a few hundred seeds every
        // dimension should take more than one value.
        let shapes: Vec<FuzzShape> = (0..300).map(FuzzShape::from_seed).collect();
        let distinct = |f: fn(&FuzzShape) -> usize| {
            let mut v: Vec<usize> = shapes.iter().map(f).collect();
            v.sort_unstable();
            v.dedup();
            v.len()
        };
        assert!(distinct(|s| s.functions) >= MAX_FUNCTIONS);
        assert!(distinct(|s| s.constructs) >= MAX_CONSTRUCTS);
        assert!(distinct(|s| s.nesting as usize) >= 3);
        assert!(distinct(|s| s.former) == FORMER_BUDGETS);
    }

    #[test]
    fn fuzz_programs_build_and_halt_within_budget() {
        for seed in 0..30 {
            let shape = FuzzShape::from_seed(seed);
            let p = fuzz_program(seed, &shape);
            let out = Interpreter::new(&p)
                .run(MAX_STEPS)
                .unwrap_or_else(|e| panic!("seed {seed} ({shape:?}): {e}"));
            assert!(out.halted, "seed {seed} must halt");
        }
    }

    #[test]
    fn shrinking_strictly_descends_and_terminates() {
        let mut shape = FuzzShape {
            functions: MAX_FUNCTIONS,
            constructs: MAX_CONSTRUCTS,
            nesting: MAX_NESTING,
            former: 2,
            memops: MAX_MEMOPS,
        };
        let weight = |s: &FuzzShape| {
            s.functions * 1000
                + s.constructs * 100
                + s.nesting as usize * 10
                + s.memops
                + (s.former != 1) as usize
        };
        let mut steps = 0;
        loop {
            let candidates = shape.shrink_candidates();
            let Some(next) = candidates.first() else {
                break;
            };
            assert!(weight(next) < weight(&shape), "{next:?} !< {shape:?}");
            shape = *next;
            steps += 1;
            assert!(steps < 100, "shrinking must terminate");
        }
        assert_eq!(shape, FuzzShape::minimal());
    }
}
