//! `sc` analog: spreadsheet recalculation sweeps.
//!
//! SPEC92 `sc` is a curses spreadsheet; its `loada3` run repeatedly
//! re-evaluates a grid of cells of several formula types. The paper places
//! it between espresso and xlisp in difficulty (575 distinct tasks, ~4–5%
//! best-case miss rate).
//!
//! The analog: a grid of typed cells (constant / row-sum / reference /
//! clamp), a recalc loop dispatching on the cell type through a jump table
//! (`INDIRECT_BRANCH` exits), small formula helper functions (`CALL` /
//! `RETURN` exits) and a data-dependent dirty-propagation branch.

use crate::codegen::*;
use crate::rng::{Rng, SeedableRng, StdRng};
use crate::{Workload, WorkloadParams};
use multiscalar_isa::{AluOp, Cond, ProgramBuilder};

/// Grid cells (power of two for cheap masking).
const CELLS: u32 = 512;
/// Cell types.
const NTYPES: u32 = 4;

/// Builds the `sc` analog. See the module-level docs in the source file.
pub fn sc_like(params: &WorkloadParams) -> Workload {
    let mut rng = StdRng::seed_from_u64(params.seed ^ 0x5C_5C5C);
    let sweeps = 26 * params.scale;

    let mut b = ProgramBuilder::new();

    // --- data: cell types, values, reference links -----------------------
    // Type mix: half constants, the rest split between formula kinds.
    let mut types: Vec<u32> = (0..CELLS)
        .map(|_| match rng.gen_range(0..10) {
            0..=4 => 0, // constant
            5..=6 => 1, // row-sum
            7..=8 => 2, // reference
            _ => 3,     // clamp
        })
        .collect();
    // A hot region of reference cells whose targets are rescrambled every
    // sweep (see below): their propagation branches stay unpredictable.
    for t in types.iter_mut().skip(64).take(64) {
        *t = 2;
    }
    let vals: Vec<u32> = (0..CELLS).map(|_| rng.gen_range(0..1000)).collect();
    let refs: Vec<u32> = (0..CELLS).map(|_| rng.gen_range(0..CELLS)).collect();
    let type_base = b.alloc_data(&types);
    let val_base = b.alloc_data(&vals);
    let ref_base = b.alloc_data(&refs);
    let lcg_state = b.alloc_data(&[params.seed as u32 | 1]);

    // --- sum_window(idx) -> RV: sum of up to 8 cells left of idx ----------
    let f_sum = b.begin_function("sum_window");
    b.load_imm(T0, 0); // acc
    b.load_imm(T1, 0); // k
    b.load_imm(T2, 8);
    let s_top = b.here_label();
    b.op(AluOp::Add, T3, A0, T1);
    b.op_imm(AluOp::And, T3, T3, (CELLS - 1) as i32);
    b.op_imm(AluOp::Add, T3, T3, val_base as i32);
    b.load(T4, T3, 0);
    b.op(AluOp::Add, T0, T0, T4);
    b.op_imm(AluOp::Add, T1, T1, 1);
    b.branch(Cond::Lt, T1, T2, s_top);
    b.op_imm(AluOp::And, RV, T0, 0xFFFF);
    b.ret();
    b.end_function();

    // --- touch(idx): record a propagated update --------------------------
    let f_touch = b.begin_function("touch");
    b.op_imm(AluOp::And, T0, A0, 63);
    b.op_imm(AluOp::Add, T0, T0, ref_base as i32);
    b.load(T1, T0, 0);
    b.op_imm(AluOp::Xor, T1, T1, 1);
    b.op_imm(AluOp::Xor, T1, T1, 1);
    mov(&mut b, RV, T1);
    b.ret();
    b.end_function();

    // --- clamp(v) -> RV: saturate into [0, 4095] ---------------------------
    let f_clamp = b.begin_function("clamp");
    b.load_imm(T0, 4095);
    let small_enough = b.new_label();
    b.branch(Cond::Ltu, A0, T0, small_enough);
    mov(&mut b, A0, T0);
    b.bind(small_enough);
    mov(&mut b, RV, A0);
    b.ret();
    b.end_function();

    // --- main ---------------------------------------------------------------
    // S0 = sweep, S1 = cell idx, S2 = dirty count, S3 = checksum.
    let f_main = b.begin_function("main");
    init_stack(&mut b);
    b.load_imm(S0, 0);
    b.load_imm(S2, 0);
    b.load_imm(S3, 0);

    let sweep_top = b.here_label();
    // Volatile cells: the sweep counter is written into the first few
    // cells, so reference chains and row sums keep changing and the
    // dirty-propagation branch stays data-dependent for the whole run
    // (a spreadsheet whose inputs keep arriving).
    for k in 0..4 {
        b.op_imm(AluOp::Mul, T0, S0, 2 * k + 3);
        b.load_imm(T1, val_base as i32 + k);
        b.store(T0, T1, 0);
    }
    // Rescramble the hot reference cells with an in-program LCG: a
    // spreadsheet whose formulas are being edited while it recalculates.
    b.load_imm(T5, lcg_state as i32);
    b.load(T2, T5, 0); // state
    b.load_imm(S1, 64); // reuse S1 as the loop counter
    let scr_top = b.here_label();
    b.load_imm(T3, 1103515245u32 as i32);
    b.op(AluOp::Mul, T2, T2, T3);
    b.op_imm(AluOp::Add, T2, T2, 12345);
    b.op_imm(AluOp::Shr, T4, T2, 16);
    b.op_imm(AluOp::And, T4, T4, (CELLS - 1) as i32);
    b.op_imm(AluOp::Add, T0, S1, ref_base as i32);
    b.store(T4, T0, 0);
    b.op_imm(AluOp::Add, S1, S1, 1);
    b.load_imm(T0, 128);
    b.branch(Cond::Lt, S1, T0, scr_top);
    b.store(T2, T5, 0);
    b.load_imm(S1, 0);
    let cell_top = b.here_label();
    // t = type[idx]; dispatch
    b.op_imm(AluOp::Add, T0, S1, type_base as i32);
    b.load(T0, T0, 0);
    let cases: Vec<_> = (0..NTYPES).map(|_| b.new_label()).collect();
    let next_cell = b.new_label();
    switch_jump(&mut b, T0, T1, &cases);

    // case 0: constant — accumulate into checksum.
    b.bind(cases[0]);
    b.op_imm(AluOp::Add, T2, S1, val_base as i32);
    b.load(T3, T2, 0);
    b.op(AluOp::Add, S3, S3, T3);
    b.jump(next_cell);

    // case 1: row-sum — call sum_window, store result.
    b.bind(cases[1]);
    mov(&mut b, A0, S1);
    b.call_label(f_sum);
    b.op_imm(AluOp::Add, T2, S1, val_base as i32);
    b.store(RV, T2, 0);
    b.jump(next_cell);

    // case 2: reference — copy the referenced cell's value, bump dirty
    // count when the value changed (data-dependent branch).
    b.bind(cases[2]);
    b.op_imm(AluOp::Add, T2, S1, ref_base as i32);
    b.load(T3, T2, 0); // j = ref[idx]
    b.op_imm(AluOp::Add, T3, T3, val_base as i32);
    b.load(T4, T3, 0); // v = val[j]
    b.op_imm(AluOp::Add, T2, S1, val_base as i32);
    b.load(T5, T2, 0); // old
    let unchanged = b.new_label();
    // "Changed" is judged on the displayed digit (low bit of the delta):
    // stable references compare equal as before, while the rescrambled hot
    // region yields data-dependent outcomes.
    b.op(AluOp::Xor, T6, T4, T5);
    b.op_imm(AluOp::And, T6, T6, 1);
    b.branch(Cond::Eq, T6, ZERO, unchanged);
    b.op_imm(AluOp::Add, S2, S2, 1);
    b.store(T4, T2, 0);
    // Propagation notifies dependents through a call, which (like any call)
    // terminates the task — so the dirty branch is a task exit the
    // inter-task predictor must actually predict.
    mov(&mut b, A0, S1);
    b.call_label(f_touch);
    b.bind(unchanged);
    b.jump(next_cell);

    // case 3: clamp — call clamp on the value plus a drift term.
    b.bind(cases[3]);
    b.op_imm(AluOp::Add, T2, S1, val_base as i32);
    b.load(A0, T2, 0);
    b.op_imm(AluOp::Add, A0, A0, 3);
    b.call_label(f_clamp);
    b.op_imm(AluOp::Add, T2, S1, val_base as i32);
    b.store(RV, T2, 0);
    b.jump(next_cell);

    // next cell
    b.bind(next_cell);
    b.op_imm(AluOp::Add, S1, S1, 1);
    b.load_imm(T0, CELLS as i32);
    b.branch(Cond::Lt, S1, T0, cell_top);
    // end of sweep: next sweep while S0 < sweeps
    b.op_imm(AluOp::Add, S0, S0, 1);
    b.load_imm(T0, sweeps as i32);
    b.branch(Cond::Lt, S0, T0, sweep_top);
    b.halt();
    b.end_function();

    let program = b.finish(f_main).expect("sc workload must build");
    let steps = sweeps as u64 * CELLS as u64 * 90 + 100_000;
    Workload {
        name: "sc",
        program,
        max_steps: steps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use multiscalar_isa::{ExitKind, Interpreter};
    use multiscalar_taskform::TaskFormer;

    #[test]
    fn recalc_reaches_fixpoint_behaviour() {
        let w = sc_like(&WorkloadParams::small(4));
        let mut i = Interpreter::new(&w.program);
        let out = i.run(w.max_steps).unwrap();
        assert!(out.halted);
        assert!(i.reg(S3) > 0, "constants accumulated into the checksum");
        // References settle after early sweeps, so dirty count is far below
        // the theoretical max.
        let dirty = i.reg(S2);
        assert!(dirty > 0, "some propagation happened");
        assert!(dirty < 26 * 512, "propagation must settle: {dirty}");
    }

    #[test]
    fn dispatch_produces_indirect_branch_exits() {
        let w = sc_like(&WorkloadParams::small(4));
        let tp = TaskFormer::default().form(&w.program).unwrap();
        let has_indirect = tp
            .tasks()
            .iter()
            .flat_map(|t| t.header().exits())
            .any(|e| e.kind == ExitKind::IndirectBranch);
        assert!(
            has_indirect,
            "the type switch must appear as INDIRECT_BRANCH exits"
        );
    }
}
