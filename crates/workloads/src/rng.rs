//! Self-contained deterministic RNG with a `rand`-shaped API surface.
//!
//! The workload generators were written against `rand::rngs::StdRng`; this
//! module provides the same call shapes (`seed_from_u64`, `gen_range`,
//! `gen_bool`, `gen`) over a xorshift64* core so the crate builds with no
//! external dependencies. Streams are stable across platforms and releases:
//! workload bytes are part of the experiment contract.

use std::ops::Range;

/// Deterministic 64-bit generator (xorshift64*), API-compatible with the
/// subset of `rand::rngs::StdRng` the generators use.
#[derive(Debug, Clone)]
pub struct StdRng {
    state: u64,
}

/// Construction from a `u64` seed, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 step decorrelates small/sequential seeds before they
        // enter the xorshift state (which must be non-zero).
        let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        StdRng {
            state: if z == 0 { 0x5EED_5EED_5EED_5EED } else { z },
        }
    }
}

/// Integer types `gen_range` can sample. The i128 round-trip covers every
/// integer width the generators use, including negative `i32` ranges.
pub trait UniformInt: Copy {
    /// Widens to `i128` (lossless for every implementor).
    fn to_i128(self) -> i128;
    /// Narrows back; the value is always produced inside the range bounds.
    fn from_i128(v: i128) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            fn to_i128(self) -> i128 {
                self as i128
            }
            fn from_i128(v: i128) -> Self {
                v as $t
            }
        }
    )*};
}

impl_uniform_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize);

/// Types `gen` can produce from one raw 64-bit draw.
pub trait Standard {
    /// Derives a uniform value from one raw 64-bit draw.
    fn from_u64(raw: u64) -> Self;
}

impl Standard for u32 {
    fn from_u64(raw: u64) -> Self {
        (raw >> 32) as u32
    }
}

impl Standard for u64 {
    fn from_u64(raw: u64) -> Self {
        raw
    }
}

/// The sampling surface, mirroring `rand::Rng`.
pub trait Rng {
    /// One raw 64-bit draw; everything else derives from this.
    fn next_u64(&mut self) -> u64;

    /// Uniform sample from `range` (half-open). Panics on an empty range.
    fn gen_range<T: UniformInt>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        let lo = range.start.to_i128();
        let hi = range.end.to_i128();
        assert!(lo < hi, "gen_range called with empty range");
        let span = (hi - lo) as u128;
        T::from_i128(lo + (u128::from(self.next_u64()) % span) as i128)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p));
        // 53 uniform mantissa bits, the same resolution rand uses.
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }

    /// A uniform value of `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_u64(self.next_u64())
    }
}

impl Rng for StdRng {
    fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(-8..8);
            assert!((-8..8).contains(&v));
            let u = rng.gen_range(0..8u32);
            assert!(u < 8);
            let w = rng.gen_range(3..7usize);
            assert!((3..7).contains(&w));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.3).abs() < 0.01, "rate {rate}");
    }
}
