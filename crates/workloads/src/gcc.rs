//! `gcc` analog: a large randomly generated program with a layered call
//! DAG, switch dispatch and data-dependent branching.
//!
//! SPEC92 `gcc` is the paper's hardest benchmark: 12,525 static tasks,
//! 3,164 distinct dynamic tasks — a working set that overwhelms small
//! predictors and separates real implementations from ideal ones
//! (Figures 10–11).
//!
//! The analog generates ~140 functions whose bodies are random compositions
//! of arithmetic, biased and data-dependent conditionals, bounded loops,
//! 4-way switches (jump tables → `INDIRECT_BRANCH` exits) and calls along a
//! layered DAG (bounded call depth, no recursion). A driver loop dispatches
//! over a token stream through a function-pointer table
//! (`INDIRECT_CALL` exits), like gcc's pass structure.

use crate::codegen::*;
use crate::rng::{Rng, SeedableRng, StdRng};
use crate::{Workload, WorkloadParams};
use multiscalar_isa::{AluOp, Cond, Label, ProgramBuilder, Reg};

/// Number of generated functions.
const N_FUNCS: usize = 200;
/// Call-DAG layers: bounds dynamic call depth (≤ `LAYERS`).
const LAYERS: usize = 6;
/// Functions callable from the driver's dispatch table (must be ≤ the
/// number of layer-0 functions and a power of two).
const N_PASSES: usize = 16;
/// Size of the condition-data array (power of two).
const DATA_WORDS: u32 = 4096;

#[derive(Clone)]
struct Ctx<'a> {
    data_base: u32,
    gstate: u32,
    /// Base of the shared per-pass predicate array (see `emit_cond_branch`).
    pred_base: u32,
    /// Callable (strictly higher-layer) functions, each with the predicate
    /// slots its body is sensitive to.
    callees: &'a [(Label, Vec<u32>)],
    /// Shared helper functions `(entry, predicate slot)`: utility routines
    /// called from everywhere whose first branch tests their dedicated
    /// predicate slot. Call sites pin the slot to a site constant, so the
    /// helper's behaviour is determined by *which caller* preceded it — the
    /// signal that separates PATH from PER (paper §5.2).
    helpers: &'a [(Label, u32)],
    /// Round-robin constants assigned to helper call sites (by helper).
    site_flip: &'a std::cell::RefCell<Vec<u32>>,
    /// Current loop nesting (calls are only emitted at level 0).
    loop_level: u32,
}

/// Builds the `gcc` analog. See the module-level docs in the source file.
pub fn gcc_like(params: &WorkloadParams) -> Workload {
    // Separate streams so the generated *structure* is independent of the
    // scale (which only lengthens the input data).
    let mut rng = StdRng::seed_from_u64(params.seed ^ 0x6CC_6CC);
    let mut data_rng = StdRng::seed_from_u64(params.seed ^ 0x0DA7_A6CC);
    let tokens = 2500 * params.scale as usize;

    let mut b = ProgramBuilder::new();

    // --- data -------------------------------------------------------------
    let data: Vec<u32> = (0..DATA_WORDS).map(|_| data_rng.gen()).collect();
    let data_base = b.alloc_data(&data);
    // Phase-structured token stream, like a compiler running passes over
    // consecutive similar statements: a handful of short pass patterns,
    // each repeated for a stretch, with upper token bits random (they feed
    // the evolving global state).
    let patterns: Vec<Vec<u32>> = (0..8)
        .map(|_| {
            let len = data_rng.gen_range(3..7);
            (0..len)
                .map(|_| data_rng.gen_range(0..N_PASSES as u32))
                .collect()
        })
        .collect();
    let mut token_stream: Vec<u32> = Vec::with_capacity(tokens);
    while token_stream.len() < tokens {
        let pat = &patterns[data_rng.gen_range(0..patterns.len())];
        let reps = data_rng.gen_range(4..16);
        for _ in 0..reps {
            for &pass in pat {
                if token_stream.len() == tokens {
                    break;
                }
                // A third of the work items deviate from the phase pattern,
                // keeping the pass sequence only partially regular.
                let pass = if data_rng.gen_bool(0.22) {
                    data_rng.gen_range(0..N_PASSES as u32)
                } else {
                    pass
                };
                let hi: u32 = data_rng.gen();
                token_stream.push((hi << 4) | pass);
            }
        }
    }
    let token_base = b.alloc_data(&token_stream);
    let gstate = b.alloc_zeroed(1);
    // Shared predicates: recomputed from each token at dispatch; conditions
    // across functions test them, so outcomes correlate with the *path*
    // taken through earlier tasks — the signal PATH prediction exploits.
    let pred_base = b.alloc_zeroed(8);

    // --- shared helper functions (deepest layer of all) --------------------
    let mut helpers: Vec<(Label, u32)> = Vec::new();
    for h in 0..16u32 {
        let m = h % 8;
        let entry = b.begin_function(&format!("helper{h}"));
        // First construct: test the dedicated predicate slot. Both arms are
        // made large enough that the task former cannot absorb them into
        // the test task — the test becomes a *task exit*, which is what
        // inter-task predictors actually predict.
        b.load_imm(T4, (pred_base + m) as i32);
        b.load(T4, T4, 0);
        let other = b.new_label();
        let done = b.new_label();
        b.branch(Cond::Eq, T4, ZERO, other);
        for i in 0..18 {
            b.op_imm(AluOp::Add, T0, T0, (m + i + 1) as i32);
        }
        b.jump(done);
        b.bind(other);
        for i in 0..18 {
            b.op_imm(AluOp::Xor, T1, T1, (2 * m + i + 1) as i32);
        }
        b.bind(done);
        mov(&mut b, RV, T0);
        b.ret();
        b.end_function();
        helpers.push((entry, m));
    }
    // Per-helper round-robin of call-site constants keeps the outcome mix
    // balanced, maximising the entropy per-task exit histories cannot
    // resolve.
    let site_flip = std::cell::RefCell::new(vec![0u32; helpers.len()]);

    // --- functions, emitted deepest layer first so callees exist ----------
    // Function i sits in layer i * LAYERS / N_FUNCS; it may call only
    // strictly higher layers, bounding call depth at LAYERS.
    let layer_of = |i: usize| i * LAYERS / N_FUNCS;
    let mut labels: Vec<Option<Label>> = vec![None; N_FUNCS];
    // Predicate slots each function's body (plus a sample of its callees')
    // tests — callers pin exactly these before calling, so the callee's
    // branch outcomes are determined by which caller preceded it.
    let mut sensitive: Vec<Vec<u32>> = vec![Vec::new(); N_FUNCS];
    for i in (0..N_FUNCS).rev() {
        let callees: Vec<(Label, Vec<u32>)> = ((i + 1)..N_FUNCS)
            .filter(|&j| layer_of(j) > layer_of(i))
            .filter_map(|j| labels[j].map(|l| (l, sensitive[j].clone())))
            .collect();
        let entry = b.begin_function(&format!("f{i:03}"));
        labels[i] = Some(entry);
        let ctx = Ctx {
            data_base,
            gstate,
            pred_base,
            callees: &callees,
            helpers: &helpers,
            site_flip: &site_flip,
            loop_level: 0,
        };
        let mut tested = Vec::new();
        emit_body(&mut b, &mut rng, &ctx, &mut tested);
        tested.sort_unstable();
        tested.dedup();
        tested.truncate(4);
        sensitive[i] = tested;
        b.end_function();
    }
    let labels: Vec<Label> = labels.into_iter().map(|l| l.expect("emitted")).collect();

    // --- main: token dispatch loop -----------------------------------------
    let passes: Vec<Label> = labels[..N_PASSES].to_vec();
    let f_main = b.begin_function("main");
    init_stack(&mut b);
    // Warm-up: call every function once before the dispatch loop. Only the
    // dispatch-table passes are guaranteed call sites otherwise — whether a
    // deeper function is ever called depends on the random bodies — and
    // `harness lint` holds the generators to "every task reachable from the
    // entry". The loop below dominates the trace, so the one-time pass
    // barely perturbs the exit-history statistics.
    for &(h, _) in &helpers {
        b.call_label(h);
    }
    for &l in &labels[N_PASSES..] {
        b.call_label(l);
    }
    b.load_imm(S0, 0); // token index
    b.load_imm(S1, tokens as i32);
    let top = b.here_label();
    b.op_imm(AluOp::Add, T0, S0, token_base as i32);
    b.load(T0, T0, 0);
    // evolve the global state with the token (drives data-dependent branches)
    b.load_imm(T2, gstate as i32);
    b.load(T3, T2, 0);
    b.op(AluOp::Add, T3, T3, T0);
    b.op_imm(AluOp::Add, T3, T3, 1);
    b.store(T3, T2, 0);
    // dispatch pass = token & (N_PASSES-1)
    // (the shared predicates are *not* reset here: they carry whatever the
    // previous pass's control flow left in them, so early tests in the next
    // pass are determined by preceding task flow — the correlation PATH
    // prediction exploits, paper §5.2)
    b.op_imm(AluOp::And, T0, T0, (N_PASSES - 1) as i32);
    call_via_table(&mut b, T0, T1, &passes);
    b.op_imm(AluOp::Add, S0, S0, 1);
    b.branch(Cond::Lt, S0, S1, top);
    b.halt();
    b.end_function();

    let program = b.finish(f_main).expect("gcc workload must build");
    Workload {
        name: "gcc",
        program,
        max_steps: tokens as u64 * 6000 + 500_000,
    }
}

/// Emits a function body: a random construct sequence ending in `ret`.
/// Predicate slots tested anywhere in the body are appended to `tested`.
fn emit_body(b: &mut ProgramBuilder, rng: &mut StdRng, ctx: &Ctx<'_>, tested: &mut Vec<u32>) {
    // Bias the first construct toward a conditional so predicate tests sit
    // close to the function entry — within a short path-history window of
    // the call site that pinned them.
    if rng.gen_bool(0.7) {
        let else_l = b.new_label();
        emit_cond_branch(b, rng, ctx, else_l, tested);
        emit_arith(b, rng);
        b.bind(else_l);
    }
    let n = rng.gen_range(3..7);
    for _ in 0..n {
        emit_construct(b, rng, ctx, 2, tested);
    }
    mov(b, RV, T0);
    b.ret();
}

/// Emits one random construct. `depth` bounds construct nesting.
fn emit_construct(
    b: &mut ProgramBuilder,
    rng: &mut StdRng,
    ctx: &Ctx<'_>,
    depth: u32,
    tested: &mut Vec<u32>,
) {
    let in_loop = ctx.loop_level > 0;
    match rng.gen_range(0..100) {
        // Arithmetic run.
        0..=29 => emit_arith(b, rng),
        // Global load/store traffic.
        30..=39 => {
            let slot = rng.gen_range(0..DATA_WORDS) as i32;
            b.load_imm(T5, ctx.data_base as i32 + slot);
            if rng.gen_bool(0.5) {
                b.load(T2, T5, 0);
                b.op(AluOp::Xor, T0, T0, T2);
            } else {
                b.store(T0, T5, 0);
            }
        }
        // Conditional (if / if-else). Arms get a padding run of arithmetic
        // so they frequently exceed the task former's budget and the test
        // becomes a task exit rather than intra-task control flow.
        40..=64 if depth > 0 => {
            let else_l = b.new_label();
            let end_l = b.new_label();
            emit_cond_branch(b, rng, ctx, else_l, tested);
            let pad = rng.gen_range(4..14);
            emit_arith_run(b, rng, pad);
            emit_construct(b, rng, ctx, depth - 1, tested);
            if rng.gen_bool(0.4) {
                b.jump(end_l);
                b.bind(else_l);
                let pad = rng.gen_range(4..14);
                emit_arith_run(b, rng, pad);
                emit_construct(b, rng, ctx, depth - 1, tested);
                b.bind(end_l);
            } else {
                b.bind(else_l);
            }
        }
        // Bounded loop (no calls inside; counter in T6/T7 by level).
        65..=76 if depth > 0 && ctx.loop_level < 2 => {
            let counter = if ctx.loop_level == 0 { T6 } else { T7 };
            let trips = rng.gen_range(2..5);
            b.load_imm(counter, 0);
            let top = b.here_label();
            let inner = Ctx {
                loop_level: ctx.loop_level + 1,
                callees: &[],
                ..ctx.clone()
            };
            emit_construct(b, rng, &inner, depth - 1, tested);
            b.op_imm(AluOp::Add, counter, counter, 1);
            b.op_imm(AluOp::Slt, T5, counter, trips);
            let exit = b.new_label();
            b.branch(Cond::Eq, T5, ZERO, exit);
            b.jump(top);
            b.bind(exit);
        }
        // 4-way switch (jump table). Most switch indices are formed from
        // shared predicate bits — correlated with the preceding control
        // flow, as real switches over IR node kinds are — with a random
        // data-dependent minority.
        77..=84 if depth > 0 => {
            if rng.gen_bool(0.7) {
                let ka = rng.gen_range(0..8u32);
                let kb = rng.gen_range(0..8u32);
                tested.push(ka);
                tested.push(kb);
                b.load_imm(T4, (ctx.pred_base + ka) as i32);
                b.load(T4, T4, 0);
                b.load_imm(T5, (ctx.pred_base + kb) as i32);
                b.load(T5, T5, 0);
                b.op_imm(AluOp::Shl, T4, T4, 1);
                b.op(AluOp::Or, T4, T4, T5);
            } else {
                emit_data_value(b, rng, ctx, T4);
            }
            b.op_imm(AluOp::And, T4, T4, 3);
            let cases: Vec<Label> = (0..4).map(|_| b.new_label()).collect();
            let end = b.new_label();
            switch_jump(b, T4, T5, &cases);
            for &c in &cases {
                b.bind(c);
                emit_arith(b, rng);
                b.jump(end);
            }
            b.bind(end);
        }
        // Call one or two functions (never inside loops): either a shared
        // helper (pinning its dedicated predicate slot to a site constant)
        // or a higher-layer function (pinning its sensitive slots). Either
        // way the callee's branch outcomes become a function of which call
        // site preceded it — information a path-based predictor sees
        // (caller task addresses) but per-task exit histories do not.
        _ if !in_loop && (!ctx.callees.is_empty() || !ctx.helpers.is_empty()) => {
            for _ in 0..rng.gen_range(1..3) {
                let use_helper =
                    !ctx.helpers.is_empty() && (ctx.callees.is_empty() || rng.gen_bool(0.6));
                if use_helper {
                    let h = rng.gen_range(0..ctx.helpers.len());
                    let (callee, slot) = ctx.helpers[h];
                    let constant = ctx.site_flip.borrow_mut()[h];
                    ctx.site_flip.borrow_mut()[h] ^= 1;
                    b.load_imm(T5, constant as i32);
                    b.load_imm(T4, (ctx.pred_base + slot) as i32);
                    b.store(T5, T4, 0);
                    mov(b, A0, T0);
                    b.call_label(callee);
                    b.op(AluOp::Xor, T0, T0, RV);
                } else {
                    let (callee, sens) = &ctx.callees[rng.gen_range(0..ctx.callees.len())];
                    for &k in sens.iter() {
                        if rng.gen_bool(0.9) {
                            b.load_imm(T5, rng.gen_range(0..2));
                            b.load_imm(T4, (ctx.pred_base + k) as i32);
                            b.store(T5, T4, 0);
                        }
                    }
                    mov(b, A0, T0);
                    b.call_label(*callee);
                    b.op(AluOp::Xor, T0, T0, RV);
                }
            }
        }
        // Fallback when the chosen construct is unavailable.
        _ => emit_arith(b, rng),
    }
}

/// Emits a run of `n` random ALU instructions over T0..T3.
fn emit_arith_run(b: &mut ProgramBuilder, rng: &mut StdRng, n: usize) {
    let ops = [
        AluOp::Add,
        AluOp::Sub,
        AluOp::Xor,
        AluOp::And,
        AluOp::Or,
        AluOp::Shl,
        AluOp::Shr,
    ];
    for _ in 0..n {
        let op = ops[rng.gen_range(0..ops.len())];
        let rd = Reg(10 + rng.gen_range(0..4));
        let rs = Reg(10 + rng.gen_range(0..4));
        let imm = rng.gen_range(0..64);
        let imm = if matches!(op, AluOp::Shl | AluOp::Shr) {
            imm % 8
        } else {
            imm
        };
        b.op_imm(op, rd, rs, imm);
    }
}

/// Emits 1–3 random ALU instructions over T0..T3.
fn emit_arith(b: &mut ProgramBuilder, rng: &mut StdRng) {
    let ops = [
        AluOp::Add,
        AluOp::Sub,
        AluOp::Xor,
        AluOp::And,
        AluOp::Or,
        AluOp::Shl,
        AluOp::Shr,
    ];
    for _ in 0..rng.gen_range(1..4) {
        let op = ops[rng.gen_range(0..ops.len())];
        let rd = Reg(10 + rng.gen_range(0..4));
        let rs = Reg(10 + rng.gen_range(0..4));
        if rng.gen_bool(0.5) {
            let imm = rng.gen_range(0..64);
            let imm = if matches!(op, AluOp::Shl | AluOp::Shr) {
                imm % 8
            } else {
                imm
            };
            b.op_imm(op, rd, rs, imm);
        } else {
            let rt = Reg(10 + rng.gen_range(0..4));
            b.op(op, rd, rs, rt);
        }
    }
}

/// Loads a pseudo-random data word (a function of the evolving global
/// state) into `dst`. Clobbers `dst` only.
fn emit_data_value(b: &mut ProgramBuilder, rng: &mut StdRng, ctx: &Ctx<'_>, dst: Reg) {
    b.load_imm(dst, ctx.gstate as i32);
    b.load(dst, dst, 0);
    b.op_imm(AluOp::Add, dst, dst, rng.gen_range(0..DATA_WORDS) as i32);
    b.op_imm(AluOp::And, dst, dst, (DATA_WORDS - 1) as i32);
    b.op_imm(AluOp::Add, dst, dst, ctx.data_base as i32);
    b.load(dst, dst, 0);
}

/// Emits a conditional branch to `target` with a realistic outcome mix:
/// ~40% tests of shared per-pass predicates (path-correlated), ~30%
/// strongly biased, ~15% fixed per call-site, ~15% data-dependent coin
/// flips. Clobbers T4/T5.
fn emit_cond_branch(
    b: &mut ProgramBuilder,
    rng: &mut StdRng,
    ctx: &Ctx<'_>,
    target: Label,
    tested: &mut Vec<u32>,
) {
    match rng.gen_range(0..100) {
        0..=39 => {
            // Shared predicate: many call sites across many functions test
            // the same slot, so earlier control flow (visible to a
            // path-based predictor as task addresses) determines later
            // outcomes.
            let k = rng.gen_range(0..8u32);
            tested.push(k);
            b.load_imm(T4, (ctx.pred_base + k) as i32);
            b.load(T4, T4, 0);
            let c = if rng.gen_bool(0.5) {
                Cond::Eq
            } else {
                Cond::Ne
            };
            b.branch(c, T4, ZERO, target);
        }
        40..=69 => {
            // Biased: low byte of a data word vs a skewed threshold.
            emit_data_value(b, rng, ctx, T4);
            b.op_imm(AluOp::And, T4, T4, 255);
            let threshold = if rng.gen_bool(0.5) { 230 } else { 25 };
            b.load_imm(T5, threshold);
            b.branch(Cond::Ltu, T4, T5, target);
        }
        70..=84 => {
            // Fixed: condition over constant data — always the same way.
            let slot = rng.gen_range(0..DATA_WORDS) as i32;
            b.load_imm(T4, ctx.data_base as i32 + slot);
            b.load(T4, T4, 0);
            b.op_imm(AluOp::And, T4, T4, 1 << rng.gen_range(0..8));
            let c = if rng.gen_bool(0.5) {
                Cond::Eq
            } else {
                Cond::Ne
            };
            b.branch(c, T4, ZERO, target);
        }
        _ => {
            // Coin flip on evolving state.
            emit_data_value(b, rng, ctx, T4);
            b.op_imm(AluOp::And, T4, T4, 1 << rng.gen_range(0..4));
            b.branch(Cond::Ne, T4, ZERO, target);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use multiscalar_isa::{ExitKind, Interpreter};
    use multiscalar_taskform::TaskFormer;

    #[test]
    fn large_static_footprint() {
        let w = gcc_like(&WorkloadParams::small(1));
        // N_FUNCS generated functions + 16 shared helpers + main.
        assert_eq!(w.program.functions().len(), N_FUNCS + 16 + 1);
        assert!(
            w.program.len() > 4000,
            "gcc analog should be by far the largest program: {}",
            w.program.len()
        );
        let tp = TaskFormer::default().form(&w.program).unwrap();
        assert!(
            tp.static_task_count() > 800,
            "expected a gcc-sized task count, got {}",
            tp.static_task_count()
        );
    }

    #[test]
    fn runs_to_completion_with_balanced_calls() {
        let w = gcc_like(&WorkloadParams::small(1));
        let mut i = Interpreter::new(&w.program);
        let out = i.run(w.max_steps).unwrap();
        assert!(out.halted, "driver loop must finish all tokens");
        assert_eq!(i.call_depth(), 0);
        assert!(out.steps > 200_000, "got only {} steps", out.steps);
    }

    #[test]
    fn has_all_five_exit_kinds() {
        let w = gcc_like(&WorkloadParams::small(1));
        let tp = TaskFormer::default().form(&w.program).unwrap();
        let mut seen = std::collections::HashSet::new();
        for t in tp.tasks() {
            for e in t.header().exits() {
                seen.insert(e.kind);
            }
        }
        for k in ExitKind::TABLE1 {
            assert!(seen.contains(&k), "missing exit kind {k}");
        }
    }

    #[test]
    fn structure_depends_on_seed() {
        let a = gcc_like(&WorkloadParams::small(10));
        let b = gcc_like(&WorkloadParams::small(11));
        assert_ne!(
            a.program.len(),
            b.program.len(),
            "random structure should differ"
        );
    }
}
