#![warn(missing_docs)]

//! Synthetic SPEC92-integer-analog workloads for the Multiscalar
//! reproduction.
//!
//! The paper evaluates on five SPEC92 integer benchmarks (gcc, compress,
//! espresso, sc, xlisp) compiled by the Wisconsin Multiscalar compiler.
//! Neither the binaries nor that compiler can be shipped, so this crate
//! generates programs in our ISA whose **task-level control-flow
//! signatures** match what the paper reports for each benchmark
//! (Table 2, Figures 3–4):
//!
//! | Analog | Character | Why it matches |
//! |---|---|---|
//! | [`gcc_like`] | hundreds of generated functions, switch dispatch, deep call DAG | largest static/distinct task counts; hardest to predict |
//! | [`compress_like`] | one hash-probe kernel loop over pseudo-random input | tiny task working set; data-dependent branches keep a high miss floor |
//! | [`espresso_like`] | regular nested loops over bit matrices | very predictable; loop-dominated |
//! | [`sc_like`] | spreadsheet recalculation sweeps with a per-cell type switch | moderate working set and mix |
//! | [`xlisp_like`] | recursive tagged-tree interpreter with dispatch tables | heavy CALL/RETURN/INDIRECT_CALL mix |
//!
//! Every generator is deterministic in its seed, so experiments are exactly
//! reproducible. The predictors under study only observe the task trace —
//! task addresses, exit indices, exit kinds and targets — which these
//! generators shape directly; that is why the substitution preserves the
//! behaviours the paper measures (see DESIGN.md §5).
//!
//! # Example
//!
//! ```
//! use multiscalar_workloads::{Spec92, WorkloadParams};
//! let w = Spec92::Compress.build(&WorkloadParams::small(42));
//! assert!(w.program.len() > 50);
//! // Runs to completion under the interpreter.
//! let mut interp = multiscalar_isa::Interpreter::new(&w.program);
//! let out = interp.run(w.max_steps).unwrap();
//! assert!(out.halted);
//! ```

pub mod codegen;
mod compress;
mod espresso;
pub mod fuzz;
mod gcc;
pub mod rng;
mod sc;
pub mod synthetic;
mod xlisp;

pub use compress::compress_like;
pub use espresso::espresso_like;
pub use gcc::gcc_like;
pub use sc::sc_like;
pub use xlisp::xlisp_like;

use multiscalar_isa::{fingerprint_of, Fingerprint, Program};

/// Version of the workload generators, folded into every cache key built
/// from a generator configuration. Bump whenever any generator's output
/// changes for the same [`WorkloadParams`] — on-disk artifacts recorded
/// from the old programs are then stale and must not be served.
pub const GENERATOR_VERSION: u32 = 1;

/// Parameters common to all generators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkloadParams {
    /// RNG seed: same seed, same program and same input data.
    pub seed: u64,
    /// Linear work multiplier (input sizes, iteration counts). `scale = 1`
    /// targets roughly a million dynamic instructions per workload.
    pub scale: u32,
}

impl WorkloadParams {
    /// Quick configuration (≈0.2–1M dynamic instructions).
    pub fn small(seed: u64) -> WorkloadParams {
        WorkloadParams { seed, scale: 1 }
    }

    /// The default experiment configuration (≈2–6M dynamic instructions),
    /// used by the harness to regenerate the paper's tables and figures.
    pub fn standard(seed: u64) -> WorkloadParams {
        WorkloadParams { seed, scale: 4 }
    }
}

impl Default for WorkloadParams {
    fn default() -> Self {
        WorkloadParams::small(0xC0FFEE)
    }
}

/// A generated workload: the program plus a step budget comfortably above
/// its natural completion point.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Benchmark analog name (`"gcc"`, `"compress"`, ...).
    pub name: &'static str,
    /// The generated program.
    pub program: Program,
    /// Upper bound on dynamic instructions; the program halts well before
    /// this. Used as the interpreter's safety limit.
    pub max_steps: u64,
}

/// The five SPEC92 integer benchmark analogs, in the paper's order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Spec92 {
    /// GNU C compiler analog (`gcc` / input `stmt.i`).
    Gcc,
    /// LZW compressor analog (`compress` / 1MB input).
    Compress,
    /// Logic minimiser analog (`espresso` / `bca.in`).
    Espresso,
    /// Spreadsheet analog (`sc` / `loada3`).
    Sc,
    /// Lisp interpreter analog (`xlisp` / `li-input.lsp`).
    Xlisp,
}

impl Spec92 {
    /// All five benchmarks in the paper's table order.
    pub const ALL: [Spec92; 5] = [
        Spec92::Gcc,
        Spec92::Compress,
        Spec92::Espresso,
        Spec92::Sc,
        Spec92::Xlisp,
    ];

    /// The benchmark's name as printed in the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            Spec92::Gcc => "gcc",
            Spec92::Compress => "compress",
            Spec92::Espresso => "espresso",
            Spec92::Sc => "sc",
            Spec92::Xlisp => "xlisp",
        }
    }

    /// Looks a benchmark up by name (as printed by [`Spec92::name`]).
    pub fn from_name(name: &str) -> Option<Spec92> {
        Spec92::ALL.into_iter().find(|b| b.name() == name)
    }

    /// A stable digest of the generator configuration that produces this
    /// workload: benchmark name, seed, scale, and [`GENERATOR_VERSION`].
    /// Cheap (no generation happens); the harness folds it into cache keys
    /// so changing any generator input — or the generators themselves —
    /// invalidates cached artifacts.
    pub fn config_fingerprint(self, params: &WorkloadParams) -> Fingerprint {
        fingerprint_of(&(GENERATOR_VERSION, self.name(), params.seed, params.scale))
    }

    /// Generates the workload.
    pub fn build(self, params: &WorkloadParams) -> Workload {
        match self {
            Spec92::Gcc => gcc_like(params),
            Spec92::Compress => compress_like(params),
            Spec92::Espresso => espresso_like(params),
            Spec92::Sc => sc_like(params),
            Spec92::Xlisp => xlisp_like(params),
        }
    }
}

impl std::fmt::Display for Spec92 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use multiscalar_isa::Interpreter;
    use multiscalar_taskform::TaskFormer;

    #[test]
    fn all_workloads_build_run_and_task_form() {
        for b in Spec92::ALL {
            let w = b.build(&WorkloadParams::small(7));
            assert_eq!(w.name, b.name());
            let mut i = Interpreter::new(&w.program);
            let out = i
                .run(w.max_steps)
                .unwrap_or_else(|e| panic!("{b} failed to execute: {e}"));
            assert!(
                out.halted,
                "{b} must halt within its step budget ({} steps)",
                out.steps
            );
            assert!(
                out.steps > 10_000,
                "{b} too small to be interesting: {} steps",
                out.steps
            );
            let tp = TaskFormer::default().form(&w.program).unwrap();
            tp.validate(&w.program).unwrap();
        }
    }

    #[test]
    fn workloads_are_deterministic_in_seed() {
        for b in Spec92::ALL {
            let w1 = b.build(&WorkloadParams::small(99));
            let w2 = b.build(&WorkloadParams::small(99));
            assert_eq!(w1.program, w2.program, "{b} must be reproducible");
        }
    }

    #[test]
    fn different_seeds_give_different_programs() {
        // Data (and for gcc, structure) depends on the seed.
        let a = Spec92::Compress.build(&WorkloadParams::small(1));
        let b = Spec92::Compress.build(&WorkloadParams::small(2));
        assert_ne!(a.program, b.program);
    }

    #[test]
    fn scale_increases_work() {
        let small = Spec92::Espresso.build(&WorkloadParams { seed: 3, scale: 1 });
        let large = Spec92::Espresso.build(&WorkloadParams { seed: 3, scale: 2 });
        let mut is = Interpreter::new(&small.program);
        let mut il = Interpreter::new(&large.program);
        let ss = is.run(small.max_steps).unwrap();
        let sl = il.run(large.max_steps).unwrap();
        assert!(
            sl.steps > ss.steps,
            "scale=2 must execute more instructions"
        );
    }

    #[test]
    fn name_round_trip() {
        for b in Spec92::ALL {
            assert_eq!(Spec92::from_name(b.name()), Some(b));
        }
        assert_eq!(Spec92::from_name("nonesuch"), None);
    }
}
