//! `xlisp` analog: a recursive tagged-tree interpreter.
//!
//! SPEC92 `xlisp` is a small Lisp interpreter; its dynamic profile is
//! dominated by recursive `eval`, type dispatch and calls through function
//! pointers. The paper reports 8% of xlisp's exits are indirect
//! branches/calls and a large RETURN share — the second-hardest benchmark.
//!
//! The analog: a forest of random expression trees over tagged nodes
//! (numbers, arithmetic, conditionals, counter cells, op-calls through a
//! function-pointer table), evaluated by a recursive `eval` with a tag
//! switch. Counter cells mutate between iterations so conditional paths
//! vary over time.

use crate::codegen::*;
use crate::rng::{Rng, SeedableRng, StdRng};
use crate::{Workload, WorkloadParams};
use multiscalar_isa::{AluOp, Cond, ProgramBuilder};

// Node tags.
const T_NUM: u32 = 0;
const T_ADD: u32 = 1;
const T_SUB: u32 = 2;
const T_MUL: u32 = 3;
const T_IF: u32 = 4;
const T_OPCALL: u32 = 5;
const T_COUNTER: u32 = 6;
const T_MIN: u32 = 7;
const NTAGS: u32 = 8;

/// A generated expression node.
#[derive(Clone, Copy, Default)]
struct Node {
    tag: u32,
    left: u32,
    right: u32,
    val: u32,
}

/// Recursively generates an expression tree, returning the root index.
fn gen_tree(rng: &mut StdRng, nodes: &mut Vec<Node>, depth: u32) -> u32 {
    let idx = nodes.len() as u32;
    nodes.push(Node::default());
    let leafy = depth == 0 || rng.gen_bool(0.28);
    let node = if leafy {
        if rng.gen_bool(0.45) {
            Node {
                tag: T_COUNTER,
                left: 0,
                right: 0,
                val: rng.gen_range(0..16),
            }
        } else {
            Node {
                tag: T_NUM,
                left: 0,
                right: 0,
                val: rng.gen_range(0..256),
            }
        }
    } else {
        match rng.gen_range(0..10) {
            0..=1 => {
                let l = gen_tree(rng, nodes, depth - 1);
                let r = gen_tree(rng, nodes, depth - 1);
                Node {
                    tag: T_ADD,
                    left: l,
                    right: r,
                    val: 0,
                }
            }
            2 => {
                let l = gen_tree(rng, nodes, depth - 1);
                let r = gen_tree(rng, nodes, depth - 1);
                Node {
                    tag: T_SUB,
                    left: l,
                    right: r,
                    val: 0,
                }
            }
            3 => {
                let l = gen_tree(rng, nodes, depth - 1);
                let r = gen_tree(rng, nodes, depth - 1);
                Node {
                    tag: T_MUL,
                    left: l,
                    right: r,
                    val: 0,
                }
            }
            4..=5 => {
                // Conditions usually inspect the mutable environment
                // (counter cells), so the branch direction evolves at run
                // time instead of being fixed by the tree shape.
                let c = if rng.gen_bool(0.55) {
                    let ci = nodes.len() as u32;
                    nodes.push(Node {
                        tag: T_COUNTER,
                        left: 0,
                        right: 0,
                        val: rng.gen_range(0..16),
                    });
                    ci
                } else {
                    gen_tree(rng, nodes, depth - 1)
                };
                let t = gen_tree(rng, nodes, depth - 1);
                let e = gen_tree(rng, nodes, depth - 1);
                Node {
                    tag: T_IF,
                    left: c,
                    right: t,
                    val: e,
                }
            }
            6..=7 => {
                let l = gen_tree(rng, nodes, depth - 1);
                Node {
                    tag: T_OPCALL,
                    left: l,
                    right: 0,
                    val: rng.gen_range(0..4),
                }
            }
            _ => {
                let l = gen_tree(rng, nodes, depth - 1);
                let r = gen_tree(rng, nodes, depth - 1);
                Node {
                    tag: T_MIN,
                    left: l,
                    right: r,
                    val: 0,
                }
            }
        }
    };
    nodes[idx as usize] = node;
    idx
}

/// Builds the `xlisp` analog. See the module-level docs in the source file.
pub fn xlisp_like(params: &WorkloadParams) -> Workload {
    let mut rng = StdRng::seed_from_u64(params.seed ^ 0x715_9000);
    let iters = 10 * params.scale;
    let n_roots = 40;

    // --- generate the forest ---------------------------------------------
    let mut nodes: Vec<Node> = Vec::new();
    let roots: Vec<u32> = (0..n_roots)
        .map(|_| gen_tree(&mut rng, &mut nodes, 8))
        .collect();
    let n_nodes = nodes.len();
    // Smallest all-ones mask covering every node index (identity on valid
    // indices); applied at `eval` entry.
    let node_mask = (n_nodes.max(1).next_power_of_two() - 1) as i32;

    let mut b = ProgramBuilder::new();
    let tag_base = b.alloc_data(&nodes.iter().map(|n| n.tag).collect::<Vec<_>>());
    let left_base = b.alloc_data(&nodes.iter().map(|n| n.left).collect::<Vec<_>>());
    let right_base = b.alloc_data(&nodes.iter().map(|n| n.right).collect::<Vec<_>>());
    let val_base = b.alloc_data(&nodes.iter().map(|n| n.val).collect::<Vec<_>>());
    let roots_base = b.alloc_data(&roots);
    let counters_base = b.alloc_zeroed(16);

    // --- op functions (targets of indirect calls) --------------------------
    let op0 = b.begin_function("op_add17");
    b.op_imm(AluOp::Add, RV, A0, 17);
    b.ret();
    b.end_function();

    let op1 = b.begin_function("op_xor55");
    b.op_imm(AluOp::Xor, RV, A0, 0x55);
    b.ret();
    b.end_function();

    let op2 = b.begin_function("op_collatzish");
    b.load_imm(T0, 0);
    b.load_imm(T1, 4);
    let o2_top = b.here_label();
    b.op_imm(AluOp::Mul, A0, A0, 3);
    b.op_imm(AluOp::Add, A0, A0, 1);
    b.op_imm(AluOp::And, A0, A0, 0xFFFF);
    b.op_imm(AluOp::Add, T0, T0, 1);
    b.branch(Cond::Lt, T0, T1, o2_top);
    mov(&mut b, RV, A0);
    b.ret();
    b.end_function();

    let op3 = b.begin_function("op_halve7");
    b.op_imm(AluOp::Shr, RV, A0, 1);
    b.op_imm(AluOp::And, T0, A0, 1);
    let even = b.new_label();
    b.load_imm(T1, 0);
    b.branch(Cond::Eq, T0, T1, even);
    b.op_imm(AluOp::Add, RV, RV, 7);
    b.bind(even);
    b.ret();
    b.end_function();
    let ops = [op0, op1, op2, op3];

    // --- eval(node) — the recursive interpreter core ------------------------
    let f_eval_label; // forward declaration trick: begin_function returns it
    {
        f_eval_label = b.begin_function("eval");
        push_regs(&mut b, &[S0, S1]);
        mov(&mut b, S0, A0);
        // Every caller passes a valid node index (< n_nodes), so this mask
        // is a dynamic no-op — but it bounds the index in the code itself,
        // keeping the per-node table loads below provably in range for any
        // forest size (the same masking idiom the bounds lint prescribes).
        b.op_imm(AluOp::And, S0, S0, node_mask);
        b.op_imm(AluOp::Add, T0, S0, tag_base as i32);
        b.load(T0, T0, 0);
        let cases: Vec<_> = (0..NTAGS).map(|_| b.new_label()).collect();
        let epilogue = b.new_label();
        switch_jump(&mut b, T0, T1, &cases);

        // NUM: RV = val[node]
        b.bind(cases[T_NUM as usize]);
        b.op_imm(AluOp::Add, T0, S0, val_base as i32);
        b.load(RV, T0, 0);
        b.jump(epilogue);

        // binary arithmetic: ADD, SUB, MUL
        for (tag, op) in [
            (T_ADD, AluOp::Add),
            (T_SUB, AluOp::Sub),
            (T_MUL, AluOp::Mul),
        ] {
            b.bind(cases[tag as usize]);
            b.op_imm(AluOp::Add, T0, S0, left_base as i32);
            b.load(A0, T0, 0);
            b.call_label(f_eval_label);
            mov(&mut b, S1, RV);
            b.op_imm(AluOp::Add, T0, S0, right_base as i32);
            b.load(A0, T0, 0);
            b.call_label(f_eval_label);
            b.op(op, RV, S1, RV);
            b.op_imm(AluOp::And, RV, RV, 0xFFFF);
            b.jump(epilogue);
        }

        // IF: eval(cond); odd -> then (right), even -> else (val)
        b.bind(cases[T_IF as usize]);
        b.op_imm(AluOp::Add, T0, S0, left_base as i32);
        b.load(A0, T0, 0);
        b.call_label(f_eval_label);
        b.op_imm(AluOp::And, T1, RV, 1);
        let take_else = b.new_label();
        b.load_imm(T2, 0);
        b.branch(Cond::Eq, T1, T2, take_else);
        b.op_imm(AluOp::Add, T0, S0, right_base as i32);
        b.load(A0, T0, 0);
        b.call_label(f_eval_label);
        b.jump(epilogue);
        b.bind(take_else);
        b.op_imm(AluOp::Add, T0, S0, val_base as i32);
        b.load(A0, T0, 0);
        b.call_label(f_eval_label);
        b.jump(epilogue);

        // OPCALL: eval(left), then call op[val & 3] indirectly
        b.bind(cases[T_OPCALL as usize]);
        b.op_imm(AluOp::Add, T0, S0, left_base as i32);
        b.load(A0, T0, 0);
        b.call_label(f_eval_label);
        mov(&mut b, A0, RV);
        b.op_imm(AluOp::Add, T2, S0, val_base as i32);
        b.load(T2, T2, 0);
        b.op_imm(AluOp::And, T2, T2, 3);
        call_via_table(&mut b, T2, T3, &ops);
        b.jump(epilogue);

        // COUNTER: RV = counters[val]++, a value that changes over time.
        // Counter vals are generated in 0..16; the mask makes that bound
        // explicit in the code so the cell index is provably in range.
        b.bind(cases[T_COUNTER as usize]);
        b.op_imm(AluOp::Add, T0, S0, val_base as i32);
        b.load(T0, T0, 0);
        b.op_imm(AluOp::And, T0, T0, 15);
        b.op_imm(AluOp::Add, T0, T0, counters_base as i32);
        b.load(RV, T0, 0);
        b.op_imm(AluOp::Add, T1, RV, 1);
        b.store(T1, T0, 0);
        b.jump(epilogue);

        // MIN: min of both children.
        b.bind(cases[T_MIN as usize]);
        b.op_imm(AluOp::Add, T0, S0, left_base as i32);
        b.load(A0, T0, 0);
        b.call_label(f_eval_label);
        mov(&mut b, S1, RV);
        b.op_imm(AluOp::Add, T0, S0, right_base as i32);
        b.load(A0, T0, 0);
        b.call_label(f_eval_label);
        let keep_right = b.new_label();
        b.branch(Cond::Ltu, RV, S1, keep_right);
        mov(&mut b, RV, S1);
        b.bind(keep_right);
        b.jump(epilogue);

        b.bind(epilogue);
        pop_regs(&mut b, &[S0, S1]);
        b.ret();
        b.end_function();
    }

    // --- main ---------------------------------------------------------------
    // S2 = iteration, S3 = root index, S4 = accumulator.
    let f_main = b.begin_function("main");
    init_stack(&mut b);
    b.load_imm(S2, 0);
    b.load_imm(S4, 0);
    let iter_top = b.here_label();
    b.load_imm(S3, 0);
    let root_top = b.here_label();
    b.op_imm(AluOp::Add, T0, S3, roots_base as i32);
    b.load(A0, T0, 0);
    b.call_label(f_eval_label);
    b.op(AluOp::Add, S4, S4, RV);
    b.op_imm(AluOp::And, S4, S4, 0xFFFFF);
    // Scramble one counter cell with the chaotic accumulator: conditional
    // paths through the next trees depend on accumulated results, like a
    // Lisp program whose environment evolves.
    b.op_imm(AluOp::And, T0, S3, 15);
    b.op_imm(AluOp::Add, T0, T0, counters_base as i32);
    b.op_imm(AluOp::Shr, T1, S4, 3);
    b.op_imm(AluOp::And, T1, T1, 255);
    b.store(T1, T0, 0);
    b.op_imm(AluOp::Add, S3, S3, 1);
    b.load_imm(T0, n_roots);
    b.branch(Cond::Lt, S3, T0, root_top);
    b.op_imm(AluOp::Add, S2, S2, 1);
    b.load_imm(T0, iters as i32);
    b.branch(Cond::Lt, S2, T0, iter_top);
    b.halt();
    b.end_function();

    let program = b.finish(f_main).expect("xlisp workload must build");
    let steps = iters as u64 * n_nodes as u64 * 80 + 200_000;
    Workload {
        name: "xlisp",
        program,
        max_steps: steps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use multiscalar_isa::{ExitKind, Interpreter};
    use multiscalar_taskform::TaskFormer;

    #[test]
    fn interpreter_forest_evaluates() {
        let w = xlisp_like(&WorkloadParams::small(3));
        let mut i = Interpreter::new(&w.program);
        let out = i.run(w.max_steps).unwrap();
        assert!(out.halted, "eval recursion must terminate");
        assert_eq!(i.call_depth(), 0, "calls and returns balance");
    }

    #[test]
    fn exit_mix_is_call_heavy_with_indirect_calls() {
        let w = xlisp_like(&WorkloadParams::small(3));
        let tp = TaskFormer::default().form(&w.program).unwrap();
        let kinds: Vec<_> = tp
            .tasks()
            .iter()
            .flat_map(|t| t.header().exits())
            .map(|e| e.kind)
            .collect();
        assert!(kinds.contains(&ExitKind::Call));
        assert!(kinds.contains(&ExitKind::Return));
        assert!(kinds.contains(&ExitKind::IndirectCall), "OPCALL dispatch");
        assert!(kinds.contains(&ExitKind::IndirectBranch), "tag switch");
    }

    #[test]
    fn counters_make_behaviour_time_varying() {
        // Same seed: the first and second halves of the run differ in
        // accumulated value because counter cells mutate.
        let w = xlisp_like(&WorkloadParams::small(3));
        let mut i = Interpreter::new(&w.program);
        i.run(w.max_steps).unwrap();
        // Counter cells were incremented at least once.
        let data_len = w.program.initial_data().len();
        let counters_lo = (data_len - 16) as u32;
        let any_counter = (0..16).any(|k| i.mem(counters_lo + k).unwrap_or(0) > 0);
        assert!(any_counter, "counter cells must have been bumped");
    }
}
