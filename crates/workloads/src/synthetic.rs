//! A random structured-program generator for fuzzing the whole pipeline
//! (CFG construction, task formation, tracing, prediction).
//!
//! Unlike the SPEC92 analogs, [`random_program`] has no workload-shaping
//! goal: it produces arbitrary *well-formed* programs — nested
//! conditionals, bounded loops, call DAGs, switches — that must survive
//! every downstream pass. Property tests across the workspace are built on
//! it.

use crate::codegen::*;
use crate::rng::{Rng, SeedableRng, StdRng};
use multiscalar_isa::{AluOp, Cond, Label, Program, ProgramBuilder, Reg};

/// Size/shape knobs for [`random_program`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SyntheticConfig {
    /// Number of functions (≥ 1).
    pub functions: usize,
    /// Constructs per function body.
    pub constructs: usize,
    /// Maximum construct nesting depth.
    pub nesting: u32,
    /// Boundary-stressing memory-op shapes appended per function body:
    /// near-top and near-zero constant addresses, masked computed
    /// indices, and branch-guarded computed indices — the hard cases for
    /// the bounds pass and its soundness oracle. 0 (the default) keeps
    /// the historical instruction stream byte-identical.
    pub mem_ops: usize,
}

impl Default for SyntheticConfig {
    fn default() -> Self {
        SyntheticConfig {
            functions: 6,
            constructs: 5,
            nesting: 2,
            mem_ops: 0,
        }
    }
}

/// Generates a random well-formed program. Deterministic in `seed`.
///
/// Guarantees: the program builds (all labels bound, no fall-off ends),
/// terminates within `O(functions * constructs * trips)` steps, never
/// recurses (call DAG), keeps all memory accesses in bounds, and declares
/// targets for all indirect jumps/calls.
///
/// # Panics
///
/// Panics if `config.functions == 0`.
pub fn random_program(seed: u64, config: &SyntheticConfig) -> Program {
    assert!(config.functions > 0, "need at least one function");
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5A9D_0711);
    // Separate stream for the appended memory-op shapes: with
    // `mem_ops == 0` the body stream's draws — and hence the emitted
    // program — are untouched, byte for byte.
    let mut mrng = StdRng::seed_from_u64(seed ^ 0x3E3A_11C7);
    let mut b = ProgramBuilder::new();
    let scratch = b.alloc_zeroed(64);

    // Leaf-first so callees exist; function i may call j > i.
    let mut labels: Vec<Option<Label>> = vec![None; config.functions];
    for i in (0..config.functions).rev() {
        let callees: Vec<Label> = ((i + 1)..config.functions)
            .filter_map(|j| labels[j])
            .collect();
        let entry = b.begin_function(&format!("f{i}"));
        labels[i] = Some(entry);
        for _ in 0..config.constructs {
            construct(&mut b, &mut rng, &callees, scratch, config.nesting, false);
        }
        memory_shapes(&mut b, &mut mrng, scratch, config.mem_ops);
        mov(&mut b, RV, T0);
        b.ret();
        b.end_function();
    }

    let main = b.begin_function("main");
    init_stack(&mut b);
    // Call every function once: the driver loop only enters f0, and whether
    // f0's random body reaches the rest of the call DAG is seed luck. The
    // warm-up keeps every task reachable from the entry, which the analyzer
    // checks for all generated programs.
    for &l in labels.iter().flatten().skip(1) {
        b.call_label(l);
    }
    // A short driver loop over the first function.
    b.load_imm(S0, 0);
    let top = b.here_label();
    if let Some(f0) = labels[0] {
        b.call_label(f0);
    }
    b.op_imm(AluOp::Add, S0, S0, 1);
    b.load_imm(T0, rng.gen_range(2..6));
    b.branch(Cond::Lt, S0, T0, top);
    b.halt();
    b.end_function();

    // Replace the generated f-chain entry when functions == 0 was excluded.
    b.finish(main).expect("synthetic programs always build")
}

fn construct(
    b: &mut ProgramBuilder,
    rng: &mut StdRng,
    callees: &[Label],
    scratch: u32,
    depth: u32,
    in_loop: bool,
) {
    match rng.gen_range(0..10) {
        0..=2 => {
            // Arithmetic.
            for _ in 0..rng.gen_range(1..4) {
                let rd = Reg(10 + rng.gen_range(0..6));
                let rs = Reg(10 + rng.gen_range(0..6));
                b.op_imm(AluOp::Add, rd, rs, rng.gen_range(-8..8));
            }
        }
        3 => {
            // Memory traffic within the scratch area.
            let slot = scratch as i32 + rng.gen_range(0..64);
            b.load_imm(T5, slot);
            if rng.gen_bool(0.5) {
                b.load(T2, T5, 0);
            } else {
                b.store(T2, T5, 0);
            }
        }
        4..=5 if depth > 0 => {
            // If / if-else on a data-dependent condition.
            let else_l = b.new_label();
            let end_l = b.new_label();
            b.op_imm(AluOp::And, T4, T2, 1 << rng.gen_range(0..4));
            b.branch(Cond::Eq, T4, ZERO, else_l);
            construct(b, rng, callees, scratch, depth - 1, in_loop);
            if rng.gen_bool(0.5) {
                b.jump(end_l);
                b.bind(else_l);
                construct(b, rng, callees, scratch, depth - 1, in_loop);
                b.bind(end_l);
            } else {
                b.bind(else_l);
            }
        }
        6 if depth > 0 && !in_loop => {
            // Bounded loop (no calls inside — the counter lives in T7).
            let trips = rng.gen_range(1..4);
            b.load_imm(T7, 0);
            let top = b.here_label();
            construct(b, rng, &[], scratch, depth - 1, true);
            b.op_imm(AluOp::Add, T7, T7, 1);
            b.op_imm(AluOp::Slt, T6, T7, trips);
            let out = b.new_label();
            b.branch(Cond::Eq, T6, ZERO, out);
            b.jump(top);
            b.bind(out);
        }
        7 if depth > 0 => {
            // Switch through a jump table.
            let n = rng.gen_range(2..5);
            let cases: Vec<Label> = (0..n).map(|_| b.new_label()).collect();
            let end = b.new_label();
            b.op_imm(AluOp::And, T4, T2, n - 1);
            switch_jump(b, T4, T5, &cases);
            for &c in &cases {
                b.bind(c);
                b.op_imm(AluOp::Add, T3, T3, 1);
                b.jump(end);
            }
            b.bind(end);
        }
        _ if !in_loop && !callees.is_empty() => {
            // Direct or table-indirect call to a later function.
            if callees.len() >= 2 && rng.gen_bool(0.3) {
                let k = rng.gen_range(0..callees.len());
                b.load_imm(T4, k as i32);
                call_via_table(b, T4, T5, callees);
            } else {
                let callee = callees[rng.gen_range(0..callees.len())];
                b.call_label(callee);
            }
        }
        _ => {
            b.op_imm(AluOp::Xor, T2, T2, rng.gen_range(0..16));
        }
    }
}

/// Appends `n` boundary-stressing memory ops. Every shape is still
/// provably in bounds — by an exact constant, a mask, or a comparison
/// guard the interval analysis refines through — so the lint stays clean
/// while the bounds pass (and the fuzz soundness oracle replaying its
/// `InBounds` claims) gets exercised at the memory boundary and on
/// computed indices.
fn memory_shapes(b: &mut ProgramBuilder, rng: &mut StdRng, scratch: u32, n: usize) {
    use multiscalar_isa::DEFAULT_MEMORY_WORDS;
    for _ in 0..n {
        match rng.gen_range(0..4) {
            0 => {
                // Near the very top of memory: exact constant address.
                let a = DEFAULT_MEMORY_WORDS as i32 - 1 - rng.gen_range(0..4);
                b.load_imm(T5, a);
                if rng.gen_bool(0.5) {
                    b.load(T2, T5, 0);
                } else {
                    b.store(T2, T5, 0);
                }
            }
            1 => {
                // Near address zero, inside the scratch area.
                b.load_imm(T5, scratch as i32 + rng.gen_range(0..4));
                if rng.gen_bool(0.5) {
                    b.load(T2, T5, 0);
                } else {
                    b.store(T2, T5, 0);
                }
            }
            2 => {
                // Masked computed index into scratch.
                b.op_imm(AluOp::And, T5, T2, 63);
                b.op_imm(AluOp::Add, T5, T5, scratch as i32);
                if rng.gen_bool(0.5) {
                    b.load(T2, T5, 0);
                } else {
                    b.store(T3, T5, 0);
                }
            }
            _ => {
                // Guarded computed index: in bounds only through the
                // branch refinement (`T5 < 64` on the taken side).
                let ok = b.new_label();
                let done = b.new_label();
                b.op_imm(AluOp::And, T5, T2, 127);
                b.load_imm(T6, 64);
                b.branch(Cond::Ltu, T5, T6, ok);
                b.jump(done);
                b.bind(ok);
                b.op_imm(AluOp::Add, T5, T5, scratch as i32);
                b.load(T2, T5, 0);
                b.bind(done);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use multiscalar_isa::Interpreter;

    #[test]
    fn random_programs_build_and_halt() {
        for seed in 0..20 {
            let p = random_program(seed, &SyntheticConfig::default());
            let mut i = Interpreter::new(&p);
            let out = i
                .run(1_000_000)
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            assert!(out.halted, "seed {seed} must halt");
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let a = random_program(9, &SyntheticConfig::default());
        let b = random_program(9, &SyntheticConfig::default());
        assert_eq!(a, b);
    }

    #[test]
    fn respects_function_count() {
        let cfg = SyntheticConfig {
            functions: 3,
            constructs: 2,
            nesting: 1,
            mem_ops: 0,
        };
        let p = random_program(1, &cfg);
        assert_eq!(p.functions().len(), 4); // 3 + main
    }
}
