//! `espresso` analog: nested loops over bit-matrix "cube" data.
//!
//! SPEC92 `espresso` (two-level logic minimisation) iterates pairwise over
//! cube covers testing intersections — long, regular loop nests over bit
//! vectors with strongly biased data branches. The paper finds it the
//! *easiest* benchmark to predict (miss rates of a few percent, and a PER
//! scheme almost as good as PATH).
//!
//! The analog: two cube matrices, a triple loop (passes × cube pairs), an
//! `intersect` function with a word loop, a popcount helper on the "hit"
//! path, and a final reduction sweep.

use crate::codegen::*;
use crate::rng::{Rng, SeedableRng, StdRng};
use crate::{Workload, WorkloadParams};
use multiscalar_isa::{AluOp, Cond, ProgramBuilder};

/// Cubes per cover.
const M: u32 = 16;
/// Words per cube.
const W: u32 = 4;

/// Builds the `espresso` analog. See the module-level docs in the source file.
pub fn espresso_like(params: &WorkloadParams) -> Workload {
    let mut rng = StdRng::seed_from_u64(params.seed ^ 0xE5_9E50);
    let passes = 36 * params.scale;

    let mut b = ProgramBuilder::new();

    // --- data: two covers of M cubes, ~50% bit density -------------------
    let cover: Vec<u32> = (0..M * W).map(|_| rng.gen::<u32>()).collect();
    let other: Vec<u32> = (0..M * W).map(|_| rng.gen::<u32>()).collect();
    let a_base = b.alloc_data(&cover);
    let b_base = b.alloc_data(&other);
    let count_base = b.alloc_zeroed(M as usize);

    // --- intersect(i, j) -> RV = OR of pairwise ANDs ----------------------
    let f_intersect = b.begin_function("intersect");
    // T0 = &A[i*W], T1 = &B[j*W]
    b.op_imm(AluOp::Mul, T0, A0, W as i32);
    b.op_imm(AluOp::Add, T0, T0, a_base as i32);
    b.op_imm(AluOp::Mul, T1, A1, W as i32);
    b.op_imm(AluOp::Add, T1, T1, b_base as i32);
    b.load_imm(T2, 0); // acc
    b.load_imm(T3, 0); // w
    b.load_imm(T4, W as i32);
    let w_top = b.here_label();
    b.load(T5, T0, 0);
    b.load(T6, T1, 0);
    b.op(AluOp::And, T5, T5, T6);
    b.op(AluOp::Or, T2, T2, T5);
    b.op_imm(AluOp::Add, T0, T0, 1);
    b.op_imm(AluOp::Add, T1, T1, 1);
    b.op_imm(AluOp::Add, T3, T3, 1);
    b.branch(Cond::Lt, T3, T4, w_top);
    mov(&mut b, RV, T2);
    b.ret();
    b.end_function();

    // --- popcount(x) -> RV (byte-at-a-time loop) --------------------------
    let f_popcount = b.begin_function("popcount");
    b.load_imm(T0, 0); // count
    b.load_imm(T1, 0); // bit index
    b.load_imm(T2, 32);
    let p_top = b.here_label();
    b.op(AluOp::Shr, T3, A0, T1);
    b.op_imm(AluOp::And, T3, T3, 1);
    b.op(AluOp::Add, T0, T0, T3);
    b.op_imm(AluOp::Add, T1, T1, 4); // sample every 4th bit: 8 iterations
    b.branch(Cond::Lt, T1, T2, p_top);
    mov(&mut b, RV, T0);
    b.ret();
    b.end_function();

    // --- reduce() : sweep the per-cube counters ---------------------------
    let f_reduce = b.begin_function("reduce");
    b.load_imm(T0, 0);
    b.load_imm(T1, M as i32);
    b.load_imm(T7, 0); // sum
    let r_top = b.here_label();
    b.op_imm(AluOp::Add, T2, T0, count_base as i32);
    b.load(T3, T2, 0);
    b.op(AluOp::Add, T7, T7, T3);
    // halve large counters (biased, mostly not-taken branch)
    b.load_imm(T4, 1_000_000);
    let no_halve = b.new_label();
    b.branch(Cond::Lt, T3, T4, no_halve);
    b.op_imm(AluOp::Shr, T3, T3, 1);
    b.store(T3, T2, 0);
    b.bind(no_halve);
    b.op_imm(AluOp::Add, T0, T0, 1);
    b.branch(Cond::Lt, T0, T1, r_top);
    mov(&mut b, RV, T7);
    b.ret();
    b.end_function();

    // --- main --------------------------------------------------------------
    // S0 = pass, S1 = i, S2 = j, S3 = nonzero count, S4 = ones accumulator.
    let f_main = b.begin_function("main");
    init_stack(&mut b);
    b.load_imm(S0, 0);
    b.load_imm(S3, 0);
    b.load_imm(S4, 0);

    let pass_top = b.here_label();
    b.load_imm(S1, 0);
    let i_top = b.here_label();
    b.load_imm(S2, 0);
    let j_top = b.here_label();
    // RV = intersect(i, j)
    mov(&mut b, A0, S1);
    mov(&mut b, A1, S2);
    b.call_label(f_intersect);
    let disjoint = b.new_label();
    b.load_imm(T7, 0);
    b.branch(Cond::Eq, RV, T7, disjoint);
    // overlapping: count it; popcount the overlap; bump per-cube counter
    b.op_imm(AluOp::Add, S3, S3, 1);
    mov(&mut b, A0, RV);
    b.call_label(f_popcount);
    b.op(AluOp::Add, S4, S4, RV);
    b.op_imm(AluOp::Add, T0, S1, count_base as i32);
    b.load(T1, T0, 0);
    b.op_imm(AluOp::Add, T1, T1, 1);
    b.store(T1, T0, 0);
    b.bind(disjoint);
    // j++
    b.op_imm(AluOp::Add, S2, S2, 1);
    b.load_imm(T0, M as i32);
    b.branch(Cond::Lt, S2, T0, j_top);
    // i++
    b.op_imm(AluOp::Add, S1, S1, 1);
    b.load_imm(T0, M as i32);
    b.branch(Cond::Lt, S1, T0, i_top);
    // end of pass: reduce
    b.call_label(f_reduce);
    b.op_imm(AluOp::Add, S0, S0, 1);
    b.load_imm(T0, passes as i32);
    b.branch(Cond::Lt, S0, T0, pass_top);
    b.halt();
    b.end_function();

    let program = b.finish(f_main).expect("espresso workload must build");
    let steps = passes as u64 * (M as u64 * M as u64) * 120 + 100_000;
    Workload {
        name: "espresso",
        program,
        max_steps: steps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use multiscalar_isa::Interpreter;

    #[test]
    fn intersections_are_mostly_nonzero() {
        // Random 50%-density 128-bit cubes almost always intersect — the
        // biased branch espresso is famous for.
        let w = espresso_like(&WorkloadParams::small(9));
        let mut i = Interpreter::new(&w.program);
        let out = i.run(w.max_steps).unwrap();
        assert!(out.halted);
        let pairs = 36 * 16 * 16;
        let nonzero = i.reg(S3);
        assert!(
            nonzero as f64 > pairs as f64 * 0.9,
            "expected >90% overlapping pairs, got {nonzero}/{pairs}"
        );
        assert!(i.reg(S4) > 0, "popcount accumulated something");
    }

    #[test]
    fn loop_structure_dominates() {
        let w = espresso_like(&WorkloadParams::small(9));
        let mut i = Interpreter::new(&w.program);
        let out = i.run(w.max_steps).unwrap();
        // The W-word inner loop plus popcount dominate the instruction
        // count: at least 50 dynamic instructions per pair.
        assert!(out.steps > 36 * 256 * 50);
    }
}
