//! Code-generation helpers shared by the workload generators: register
//! conventions, a software stack for locals across calls, and switch /
//! indirect-call dispatch through tables.
//!
//! # Register conventions
//!
//! The hardware call stack only saves return addresses, so generators
//! follow a software convention:
//!
//! * `r1..=r4` ([`A0`]–[`A3`]) — arguments and return value ([`RV`] = `r1`),
//!   caller-clobbered,
//! * `r10..=r17` ([`T0`]–[`T7`]) — temporaries, caller-clobbered,
//! * `r20..=r25` ([`S0`]–[`S5`]) — callee-saved (push/pop via [`push_regs`]
//!   / [`pop_regs`] around use),
//! * `r28` ([`GP`]) — global data pointer, set once in `main`,
//! * `r31` ([`SP`]) — software stack pointer, initialised by
//!   [`init_stack`].

use multiscalar_isa::{AluOp, Label, ProgramBuilder, Reg};

/// First argument / return value register.
pub const A0: Reg = Reg(1);
/// Second argument register.
pub const A1: Reg = Reg(2);
/// Third argument register.
pub const A2: Reg = Reg(3);
/// Fourth argument register.
pub const A3: Reg = Reg(4);
/// Return-value register (alias of [`A0`]).
pub const RV: Reg = Reg(1);

/// Temporary registers `T0..=T7` (`r10..=r17`).
#[allow(missing_docs)] // the group doc above names the whole bank
pub const T0: Reg = Reg(10);
#[allow(missing_docs)]
pub const T1: Reg = Reg(11);
#[allow(missing_docs)]
pub const T2: Reg = Reg(12);
#[allow(missing_docs)]
pub const T3: Reg = Reg(13);
#[allow(missing_docs)]
pub const T4: Reg = Reg(14);
#[allow(missing_docs)]
pub const T5: Reg = Reg(15);
#[allow(missing_docs)]
pub const T6: Reg = Reg(16);
#[allow(missing_docs)]
pub const T7: Reg = Reg(17);

/// Callee-saved registers `S0..=S5` (`r20..=r25`).
#[allow(missing_docs)] // the group doc above names the whole bank
pub const S0: Reg = Reg(20);
#[allow(missing_docs)]
pub const S1: Reg = Reg(21);
#[allow(missing_docs)]
pub const S2: Reg = Reg(22);
#[allow(missing_docs)]
pub const S3: Reg = Reg(23);
#[allow(missing_docs)]
pub const S4: Reg = Reg(24);
#[allow(missing_docs)]
pub const S5: Reg = Reg(25);

/// Global data pointer.
pub const GP: Reg = Reg(28);
/// Software stack pointer.
pub const SP: Reg = Reg(31);
/// Conventional zero register: workloads never write `r0`.
pub const ZERO: Reg = Reg(0);

/// Emits a register move (`dst = src`).
pub fn mov(b: &mut ProgramBuilder, dst: Reg, src: Reg) {
    b.op_imm(AluOp::Add, dst, src, 0);
}

/// Word address the software stack grows down from (the interpreter's
/// default memory is 2^20 words; the data segment grows up from 0).
pub const STACK_TOP: i32 = (1 << 20) - 8;

/// Emits the stack-pointer initialisation; call once at the top of `main`.
pub fn init_stack(b: &mut ProgramBuilder) {
    b.load_imm(SP, STACK_TOP);
}

/// Pushes `regs` onto the software stack (one `sub` plus one store each).
pub fn push_regs(b: &mut ProgramBuilder, regs: &[Reg]) {
    if regs.is_empty() {
        return;
    }
    b.op_imm(AluOp::Sub, SP, SP, regs.len() as i32);
    for (i, &r) in regs.iter().enumerate() {
        b.store(r, SP, i as i32);
    }
}

/// Pops `regs` (previously pushed with [`push_regs`], same order).
pub fn pop_regs(b: &mut ProgramBuilder, regs: &[Reg]) {
    if regs.is_empty() {
        return;
    }
    for (i, &r) in regs.iter().enumerate() {
        b.load(r, SP, i as i32);
    }
    b.op_imm(AluOp::Add, SP, SP, regs.len() as i32);
}

/// Emits a computed `switch` over `cases`: allocates a jump table, indexes
/// it with `idx` (which the caller guarantees is `< cases.len()`), and
/// jumps. Clobbers `scratch`. The case labels must be bound by the caller
/// (before or after this call).
pub fn switch_jump(b: &mut ProgramBuilder, idx: Reg, scratch: Reg, cases: &[Label]) {
    assert!(!cases.is_empty(), "switch needs at least one case");
    let table = b.alloc_label_table(cases);
    b.load_imm(scratch, table as i32);
    b.op(AluOp::Add, scratch, scratch, idx);
    b.load(scratch, scratch, 0);
    b.jump_indirect_with_targets(scratch, cases);
}

/// Emits an indirect call through a function-pointer table: indexes the
/// table with `idx` (caller-bounded) and calls. Clobbers `scratch`.
pub fn call_via_table(b: &mut ProgramBuilder, idx: Reg, scratch: Reg, funcs: &[Label]) {
    assert!(!funcs.is_empty(), "call table needs at least one function");
    let table = b.alloc_label_table(funcs);
    b.load_imm(scratch, table as i32);
    b.op(AluOp::Add, scratch, scratch, idx);
    b.load(scratch, scratch, 0);
    b.call_indirect_with_targets(scratch, funcs);
}

/// Emits `dst = dst & (pow2 - 1)`, a cheap bound for table indices.
///
/// # Panics
///
/// Panics if `pow2` is not a power of two.
pub fn mask_pow2(b: &mut ProgramBuilder, dst: Reg, pow2: u32) {
    assert!(pow2.is_power_of_two(), "mask_pow2 requires a power of two");
    b.op_imm(AluOp::And, dst, dst, (pow2 - 1) as i32);
}

#[cfg(test)]
mod tests {
    use super::*;
    use multiscalar_isa::{Cond, Interpreter};

    #[test]
    fn push_pop_round_trips_registers() {
        let mut b = ProgramBuilder::new();
        let main = b.begin_function("main");
        init_stack(&mut b);
        b.load_imm(S0, 111);
        b.load_imm(S1, 222);
        push_regs(&mut b, &[S0, S1]);
        b.load_imm(S0, 0);
        b.load_imm(S1, 0);
        pop_regs(&mut b, &[S0, S1]);
        b.halt();
        b.end_function();
        let p = b.finish(main).unwrap();
        let mut i = Interpreter::new(&p);
        i.run(100).unwrap();
        assert_eq!(i.reg(S0), 111);
        assert_eq!(i.reg(S1), 222);
        assert_eq!(i.reg(SP) as i32, STACK_TOP, "stack balanced");
    }

    #[test]
    fn switch_jump_selects_correct_case() {
        let mut b = ProgramBuilder::new();
        let main = b.begin_function("main");
        init_stack(&mut b);
        let c: Vec<_> = (0..4).map(|_| b.new_label()).collect();
        b.load_imm(T0, 2);
        switch_jump(&mut b, T0, T1, &c);
        let done = b.new_label();
        for (i, &l) in c.iter().enumerate() {
            b.bind(l);
            b.load_imm(S0, 100 + i as i32);
            b.jump(done);
        }
        b.bind(done);
        b.halt();
        b.end_function();
        let p = b.finish(main).unwrap();
        let mut i = Interpreter::new(&p);
        i.run(100).unwrap();
        assert_eq!(i.reg(S0), 102);
    }

    #[test]
    fn call_via_table_calls_selected_function() {
        let mut b = ProgramBuilder::new();
        let f0 = b.begin_function("f0");
        b.load_imm(RV, 7);
        b.ret();
        b.end_function();
        let f1 = b.begin_function("f1");
        b.load_imm(RV, 9);
        b.ret();
        b.end_function();
        let main = b.begin_function("main");
        init_stack(&mut b);
        b.load_imm(T0, 1);
        call_via_table(&mut b, T0, T1, &[f0, f1]);
        b.halt();
        b.end_function();
        let p = b.finish(main).unwrap();
        let mut i = Interpreter::new(&p);
        i.run(100).unwrap();
        assert_eq!(i.reg(RV), 9);
    }

    #[test]
    fn mask_pow2_bounds_indices() {
        let mut b = ProgramBuilder::new();
        let main = b.begin_function("main");
        b.load_imm(T0, 13);
        mask_pow2(&mut b, T0, 8);
        b.halt();
        b.end_function();
        let p = b.finish(main).unwrap();
        let mut i = Interpreter::new(&p);
        i.run(10).unwrap();
        assert_eq!(i.reg(T0), 5);
    }

    #[test]
    fn nested_pushes_are_lifo() {
        let mut b = ProgramBuilder::new();
        let main = b.begin_function("main");
        init_stack(&mut b);
        b.load_imm(S0, 1);
        push_regs(&mut b, &[S0]);
        b.load_imm(S0, 2);
        push_regs(&mut b, &[S0]);
        b.load_imm(S0, 0);
        pop_regs(&mut b, &[S0]);
        let after_first = b.new_label();
        b.branch(Cond::Eq, S0, S0, after_first); // always taken, keeps flow obvious
        b.bind(after_first);
        assert!(b.here().0 > 0);
        pop_regs(&mut b, &[S1]);
        b.halt();
        b.end_function();
        let p = b.finish(main).unwrap();
        let mut i = Interpreter::new(&p);
        i.run(100).unwrap();
        assert_eq!(i.reg(S0), 2, "inner push pops first");
        assert_eq!(i.reg(S1), 1);
    }
}
