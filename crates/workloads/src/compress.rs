//! `compress` analog: an LZW-flavoured hash-probe kernel.
//!
//! SPEC92 `compress` spends its time in one small loop: hash the current
//! symbol pair, probe a table, and take a *data-dependent* hit/miss branch.
//! The paper reports a tiny task working set (39 distinct tasks) and a miss
//! rate that stays high (~19–20%) at every history depth — history cannot
//! predict data.
//!
//! This generator reproduces that signature: one kernel loop over a
//! pseudo-random (but Markov-correlated, so hits do occur) input stream,
//! a linear-probe collision loop, and a periodic table clear.

use crate::codegen::*;
use crate::rng::{Rng, SeedableRng, StdRng};
use crate::{Workload, WorkloadParams};
use multiscalar_isa::{AluOp, Cond, ProgramBuilder};

/// Hash table size (power of two).
const HSIZE: u32 = 1024;
/// Symbol alphabet.
const ALPHABET: u32 = 64;

/// Builds the `compress` analog. See the module-level docs in the source file.
pub fn compress_like(params: &WorkloadParams) -> Workload {
    let mut rng = StdRng::seed_from_u64(params.seed ^ 0xC0_4D50);
    let n_input = 30_000 * params.scale as usize;

    let mut b = ProgramBuilder::new();

    // --- data segment ---------------------------------------------------
    // Markov-correlated symbol stream: repeated digraphs produce hash hits.
    let mut prev = 0u32;
    let input: Vec<u32> = (0..n_input)
        .map(|_| {
            let s = if rng.gen_bool(0.6) {
                prev
            } else {
                rng.gen_range(0..ALPHABET)
            };
            prev = s;
            s
        })
        .collect();
    let input_base = b.alloc_data(&input);
    let htab_base = b.alloc_zeroed(HSIZE as usize); // fingerprint keys
    let vtab_base = b.alloc_zeroed(HSIZE as usize); // codes
    let out_base = b.alloc_zeroed(256);

    // --- hash(prev, c) -> RV --------------------------------------------
    let f_hash = b.begin_function("hash");
    b.op_imm(AluOp::Shl, T0, A0, 4);
    b.op(AluOp::Xor, T0, T0, A1);
    b.op_imm(AluOp::And, RV, T0, (HSIZE - 1) as i32);
    b.ret();
    b.end_function();

    // --- output(code) ---------------------------------------------------
    // Writes the emitted code into a small circular buffer.
    let f_output = b.begin_function("output");
    b.op_imm(AluOp::And, T0, A0, 255);
    b.op_imm(AluOp::Add, T0, T0, out_base as i32);
    b.store(A0, T0, 0);
    b.ret();
    b.end_function();

    // --- clear_table() --------------------------------------------------
    let f_clear = b.begin_function("clear_table");
    b.load_imm(T0, 0); // h
    b.load_imm(T1, HSIZE as i32);
    b.load_imm(T2, 0);
    let clr_top = b.here_label();
    b.op_imm(AluOp::Add, T3, T0, htab_base as i32);
    b.store(T2, T3, 0);
    b.op_imm(AluOp::Add, T0, T0, 1);
    b.branch(Cond::Lt, T0, T1, clr_top);
    b.ret();
    b.end_function();

    // --- main -------------------------------------------------------------
    // S0 = i, S1 = prev symbol, S2 = next free code, S3 = hits, S4 = misses.
    let f_main = b.begin_function("main");
    init_stack(&mut b);
    b.load_imm(S0, 0);
    b.load_imm(S1, 0);
    b.load_imm(S2, 256);
    b.load_imm(S3, 0);
    b.load_imm(S4, 0);
    b.load_imm(S5, n_input as i32);

    let loop_top = b.here_label();
    // c = input[i]
    b.op_imm(AluOp::Add, T0, S0, input_base as i32);
    b.load(T5, T0, 0); // T5 = c (T5 survives: hash only touches T0, RV)
                       // Data-dependent pre-probe work: odd symbols go through the output
                       // path first (a task exit whose direction is pure input data — the
                       // kind of branch that keeps compress's miss rate high at every
                       // history depth).
    let even_sym = b.new_label();
    // Condition mixes the symbol with the dictionary state (free-code
    // counter), decorrelating it from plain symbol repetition.
    b.op(AluOp::Add, T0, T5, S2);
    b.op_imm(AluOp::And, T0, T0, 1);
    b.branch(Cond::Eq, T0, ZERO, even_sym);
    mov(&mut b, A0, T5);
    b.call_label(f_output);
    b.bind(even_sym);
    // h = hash(prev, c)
    mov(&mut b, A0, S1);
    mov(&mut b, A1, T5);
    b.call_label(f_hash);
    mov(&mut b, T6, RV); // T6 = h
                         // fingerprint = (prev << 9) | (c << 1) | 1  (never zero)
    b.op_imm(AluOp::Shl, T7, S1, 9);
    b.op_imm(AluOp::Shl, T4, T5, 1);
    b.op(AluOp::Or, T7, T7, T4);
    b.op_imm(AluOp::Or, T7, T7, 1);

    // probe loop
    let probe = b.here_label();
    let hit = b.new_label();
    let empty = b.new_label();
    let advance = b.new_label();
    b.op_imm(AluOp::Add, T0, T6, htab_base as i32);
    b.load(T1, T0, 0); // key
    b.branch(Cond::Eq, T1, T7, hit);
    b.load_imm(T2, 0);
    b.branch(Cond::Eq, T1, T2, empty);
    // collision: h = (h + 1) & (HSIZE-1); retry
    b.op_imm(AluOp::Add, T6, T6, 1);
    b.op_imm(AluOp::And, T6, T6, (HSIZE - 1) as i32);
    b.jump(probe);

    // hit: prev = vtab[h]; hits++
    b.bind(hit);
    b.op_imm(AluOp::Add, T0, T6, vtab_base as i32);
    b.load(S1, T0, 0);
    b.op_imm(AluOp::And, S1, S1, (ALPHABET - 1) as i32); // keep prev in range
    b.op_imm(AluOp::Add, S3, S3, 1);
    b.jump(advance);

    // empty: insert; emit code for prev; prev = c; misses++
    b.bind(empty);
    b.op_imm(AluOp::Add, T0, T6, htab_base as i32);
    b.store(T7, T0, 0);
    b.op_imm(AluOp::Add, T0, T6, vtab_base as i32);
    b.store(S2, T0, 0);
    b.op_imm(AluOp::Add, S2, S2, 1);
    mov(&mut b, A0, S1);
    b.call_label(f_output);
    mov(&mut b, S1, T5);
    b.op_imm(AluOp::Add, S4, S4, 1);

    // table-full check: clear when codes exhausted (periodic "block reset")
    b.load_imm(T0, 256 + 900);
    let no_clear = b.new_label();
    b.branch(Cond::Lt, S2, T0, no_clear);
    b.call_label(f_clear);
    b.load_imm(S2, 256);
    b.bind(no_clear);

    // advance: i++; loop while i < n
    b.bind(advance);
    b.op_imm(AluOp::Add, S0, S0, 1);
    b.branch(Cond::Lt, S0, S5, loop_top);
    b.halt();
    b.end_function();

    let program = b.finish(f_main).expect("compress workload must build");
    Workload {
        name: "compress",
        program,
        max_steps: n_input as u64 * 200 + 100_000,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use multiscalar_isa::Interpreter;

    #[test]
    fn kernel_produces_hits_and_misses() {
        let w = compress_like(&WorkloadParams::small(5));
        let mut i = Interpreter::new(&w.program);
        let out = i.run(w.max_steps).unwrap();
        assert!(out.halted);
        let hits = i.reg(S3);
        let misses = i.reg(S4);
        assert!(
            hits > 1000,
            "correlated input must produce hash hits: {hits}"
        );
        assert!(misses > 100, "fresh digraphs must produce misses: {misses}");
        // Every input symbol was consumed.
        assert_eq!(i.reg(S0) as usize, 30_000);
    }

    #[test]
    fn small_static_footprint() {
        // compress is the paper's smallest benchmark (103 static tasks);
        // the analog's whole program is a few dozen instructions.
        let w = compress_like(&WorkloadParams::small(5));
        assert!(
            w.program.len() < 200,
            "compress kernel should be tiny: {}",
            w.program.len()
        );
        assert_eq!(w.program.functions().len(), 4);
    }
}
