//! Property test: every randomly generated structured program survives the
//! assembler round trip (`to_masm` -> `parse_program`) with identical code,
//! data and metadata.

use multiscalar_isa::{parse_program, to_masm};
use multiscalar_workloads::synthetic::{random_program, SyntheticConfig};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn random_programs_round_trip_through_masm(
        seed in 0u64..10_000,
        functions in 1usize..6,
        constructs in 1usize..6,
    ) {
        let p1 = random_program(seed, &SyntheticConfig { functions, constructs, nesting: 2 });
        let text = to_masm(&p1);
        let p2 = parse_program(&text)
            .unwrap_or_else(|e| panic!("reparse failed: {e}\n{text}"));
        prop_assert_eq!(p1.code(), p2.code());
        prop_assert_eq!(p1.entry_point(), p2.entry_point());
        prop_assert_eq!(p1.functions().len(), p2.functions().len());
        prop_assert_eq!(p1.initial_data(), p2.initial_data());
        // Indirect metadata preserved at every indirect site.
        for pc in 0..p1.len() as u32 {
            let a = multiscalar_isa::Addr(pc);
            prop_assert_eq!(p1.indirect_targets(a), p2.indirect_targets(a));
        }
    }

    #[test]
    fn spec92_analogs_round_trip(seed in 0u64..50) {
        // The real benchmark generators too — including jump tables,
        // dispatch function-pointer tables and non-trivial data segments.
        let w = multiscalar_workloads::Spec92::Xlisp
            .build(&multiscalar_workloads::WorkloadParams { seed, scale: 1 });
        let text = to_masm(&w.program);
        let p2 = parse_program(&text).unwrap_or_else(|e| panic!("reparse failed: {e}"));
        prop_assert_eq!(w.program.code(), p2.code());
    }
}
