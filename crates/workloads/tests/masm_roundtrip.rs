//! Seeded-sweep test: every randomly generated structured program survives
//! the assembler round trip (`to_masm` -> `parse_program`) with identical
//! code, data and metadata.

use multiscalar_isa::{parse_program, to_masm};
use multiscalar_workloads::rng::{Rng, SeedableRng, StdRng};
use multiscalar_workloads::synthetic::{random_program, SyntheticConfig};

#[test]
fn random_programs_round_trip_through_masm() {
    let mut draws = StdRng::seed_from_u64(0x4D41_534D);
    for case in 0..48u64 {
        let seed = draws.gen_range(0..10_000u64);
        let functions = draws.gen_range(1..6usize);
        let constructs = draws.gen_range(1..6usize);
        let p1 = random_program(
            seed,
            &SyntheticConfig {
                functions,
                constructs,
                nesting: 2,
                mem_ops: 0,
            },
        );
        let text = to_masm(&p1);
        let p2 = parse_program(&text)
            .unwrap_or_else(|e| panic!("case {case}: reparse failed: {e}\n{text}"));
        assert_eq!(p1.code(), p2.code());
        assert_eq!(p1.entry_point(), p2.entry_point());
        assert_eq!(p1.functions().len(), p2.functions().len());
        assert_eq!(p1.initial_data(), p2.initial_data());
        // Indirect metadata preserved at every indirect site.
        for pc in 0..p1.len() as u32 {
            let a = multiscalar_isa::Addr(pc);
            assert_eq!(p1.indirect_targets(a), p2.indirect_targets(a));
        }
    }
}

#[test]
fn spec92_analogs_round_trip() {
    // The real benchmark generators too — including jump tables, dispatch
    // function-pointer tables and non-trivial data segments. Full structural
    // equality: code, data, function table, entry point, indirect metadata.
    for bench in multiscalar_workloads::Spec92::ALL {
        for seed in 0..8u64 {
            let w = bench.build(&multiscalar_workloads::WorkloadParams { seed, scale: 1 });
            let text = to_masm(&w.program);
            let p2 = parse_program(&text)
                .unwrap_or_else(|e| panic!("{}/{seed}: reparse failed: {e}", bench.name()));
            assert_eq!(w.program, p2, "{}/{seed}: round trip drifted", bench.name());
        }
    }
}

#[test]
fn fuzz_corpus_round_trips() {
    // A slice of the differential fuzzer's own corpus: the exact generator
    // the fuzz oracle feeds through the `.masm` round-trip check.
    use multiscalar_workloads::fuzz::{fuzz_program, FuzzShape};
    for seed in 0..32u64 {
        let p1 = fuzz_program(seed, &FuzzShape::from_seed(seed));
        let text = to_masm(&p1);
        let p2 =
            parse_program(&text).unwrap_or_else(|e| panic!("seed {seed}: reparse failed: {e}"));
        assert_eq!(p1, p2, "seed {seed}: round trip drifted");
    }
}
