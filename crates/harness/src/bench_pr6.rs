//! `harness bench-pr6` — scalar vs lane-packed fused sweep comparison.
//!
//! Both arms run the fused Figure 10 + Figure 11 real-PATH pass — the
//! eight-config DOLC exit ladder over all five paper workloads, 40
//! predictor columns total — on already-prepared benchmarks, so the
//! measurement isolates the sweep engine itself. The **scalar** arm uses
//! the pre-lane-packing engine ([`dispatch::path_real_sweep_scalar`]): one
//! `PathPredictor` instance per configuration, trained pointer-chase by
//! pointer-chase. The **packed** arm uses [`dispatch::path_real_sweep`],
//! which folds all eight configurations into one SoA
//! [`multiscalar_core::lane::BatchedExitPredictor`] — one trace walk, all
//! lanes updated per `u64` word. The packed arm must produce bit-identical
//! `(MissStats, states_touched)` results *and* prove it took the packed
//! path via the [`multiscalar_sim::measure::lane_packed_sweeps`] counter
//! (one sweep per workload per repetition) — structure, not timing.

use crate::pool::Pool;
use crate::{dispatch, prepare_all_with, Bench};
use multiscalar_core::automata::LastExitHysteresis;
use multiscalar_sim::measure::{lane_packed_sweeps, MissStats};
use multiscalar_workloads::WorkloadParams;
use std::fmt::Write as _;
use std::time::Instant;

/// The timed comparison: wall-clock per arm over the 40-column fused
/// fig10+fig11 pass, plus the packed arm's counter proof that the
/// lane-packed engine (not the scalar fallback) did the work.
#[derive(Debug, Clone)]
pub struct BenchPr6Report {
    /// Best-of-reps milliseconds for the scalar engine (one
    /// `PathPredictor` per column, single trace walk per workload).
    pub scalar_ms: f64,
    /// Best-of-reps milliseconds for the lane-packed engine (all columns
    /// in one `u64` word per PHT entry, single trace walk per workload).
    pub packed_ms: f64,
    /// Predictor columns swept per repetition (ladder configs × workloads).
    pub columns: usize,
    /// Column-events per repetition: Σ over workloads of
    /// `trace events × ladder configs` — the unit both throughput rates
    /// count.
    pub column_events: u64,
    /// `lane_packed_sweeps()` delta observed in the final packed
    /// repetition (= number of workloads — checked before this report
    /// exists).
    pub packed_sweeps: u64,
    /// Pool width used for preparation (both sweep arms are single-walk
    /// and run on the calling thread).
    pub threads: usize,
}

impl BenchPr6Report {
    /// `scalar_ms / packed_ms`.
    pub fn speedup(&self) -> f64 {
        self.scalar_ms / self.packed_ms.max(1e-9)
    }

    /// Scalar-arm throughput in column-events per second.
    pub fn scalar_rate(&self) -> f64 {
        self.column_events as f64 / (self.scalar_ms.max(1e-9) / 1e3)
    }

    /// Packed-arm throughput in column-events per second.
    pub fn packed_rate(&self) -> f64 {
        self.column_events as f64 / (self.packed_ms.max(1e-9) / 1e3)
    }

    /// Renders the report as JSON (hand-rolled; fixed key order).
    pub fn to_json(&self, params: &WorkloadParams) -> String {
        let mut s = String::from("{\n");
        let _ = writeln!(s, "  \"threads\": {},", self.threads);
        let _ = writeln!(s, "  \"seed\": {},", params.seed);
        let _ = writeln!(s, "  \"scale\": {},", params.scale);
        let _ = writeln!(s, "  \"columns\": {},", self.columns);
        let _ = writeln!(s, "  \"column_events\": {},", self.column_events);
        let _ = writeln!(s, "  \"scalar_ms\": {:.1},", self.scalar_ms);
        let _ = writeln!(s, "  \"packed_ms\": {:.1},", self.packed_ms);
        let _ = writeln!(
            s,
            "  \"scalar_col_events_per_s\": {:.0},",
            self.scalar_rate()
        );
        let _ = writeln!(
            s,
            "  \"packed_col_events_per_s\": {:.0},",
            self.packed_rate()
        );
        let _ = writeln!(s, "  \"packed_sweeps\": {},", self.packed_sweeps);
        let _ = writeln!(s, "  \"speedup\": {:.2}", self.speedup());
        s.push_str("}\n");
        s
    }
}

/// Repetitions per arm; the minimum is reported (same defence against
/// scheduler noise as the earlier `bench-pr*` commands).
const REPS: usize = 5;

/// One arm's pass: the fused real-PATH ladder sweep over every workload,
/// returning the per-workload result vectors (for the bit-identity check).
fn sweep_all(
    benches: &[Bench],
    ladder: &[multiscalar_core::dolc::Dolc],
    packed: bool,
) -> Vec<Vec<(MissStats, usize)>> {
    benches
        .iter()
        .map(|b| {
            if packed {
                dispatch::path_real_sweep(ladder, b)
            } else {
                dispatch::path_real_sweep_scalar::<LastExitHysteresis<2>>(ladder, b)
            }
        })
        .collect()
}

/// Runs both arms over freshly prepared benchmarks and returns the
/// comparison; `Err` if the arms' results diverge anywhere or the counter
/// proof fails (packed arm fell back to scalar, or scalar arm took the
/// packed path).
pub fn run(params: &WorkloadParams, pool: &Pool) -> Result<BenchPr6Report, String> {
    let benches = prepare_all_with(params, pool);
    let ladder = dispatch::exit_ladder();
    let columns = ladder.len() * benches.len();
    let column_events: u64 = benches
        .iter()
        .map(|b| b.trace.events.len() as u64 * ladder.len() as u64)
        .sum();

    let mut scalar_ms = f64::INFINITY;
    let mut scalar_results = Vec::new();
    for _ in 0..REPS {
        let before = lane_packed_sweeps();
        let start = Instant::now();
        scalar_results = sweep_all(&benches, &ladder, false);
        scalar_ms = scalar_ms.min(start.elapsed().as_secs_f64() * 1e3);
        if lane_packed_sweeps() != before {
            return Err("scalar arm took the lane-packed path".to_string());
        }
    }

    let mut packed_ms = f64::INFINITY;
    let mut packed_sweeps = 0;
    for _ in 0..REPS {
        let before = lane_packed_sweeps();
        let start = Instant::now();
        let packed_results = sweep_all(&benches, &ladder, true);
        packed_ms = packed_ms.min(start.elapsed().as_secs_f64() * 1e3);
        packed_sweeps = lane_packed_sweeps() - before;
        if packed_sweeps != benches.len() as u64 {
            return Err(format!(
                "packed arm expected {} lane-packed sweeps, counted {packed_sweeps}",
                benches.len()
            ));
        }
        if packed_results != scalar_results {
            return Err("packed results diverged from scalar results".to_string());
        }
    }

    Ok(BenchPr6Report {
        scalar_ms,
        packed_ms,
        columns,
        column_events,
        packed_sweeps,
        threads: pool.threads(),
    })
}

/// CI smoke mode: one repetition of each arm, asserting the structural
/// invariants only — the packed engine ran (counter delta, not timing) and
/// its results are bit-identical to the scalar engine's. Returns a summary
/// line; never writes a file.
pub fn smoke(params: &WorkloadParams, pool: &Pool) -> Result<String, String> {
    let benches = prepare_all_with(params, pool);
    let ladder = dispatch::exit_ladder();
    let scalar = sweep_all(&benches, &ladder, false);
    let before = lane_packed_sweeps();
    let packed = sweep_all(&benches, &ladder, true);
    let sweeps = lane_packed_sweeps() - before;
    if sweeps != benches.len() as u64 {
        return Err(format!(
            "expected {} lane-packed sweeps, counted {sweeps}",
            benches.len()
        ));
    }
    if packed != scalar {
        return Err("packed results diverged from scalar results".to_string());
    }
    Ok(format!(
        "bench-pr6 smoke: lane-packed engine ran {sweeps} sweeps, {} columns bit-identical to scalar",
        ladder.len() * benches.len()
    ))
}

/// The registry tool entry: `--smoke` runs the deterministic parity
/// check; otherwise run the benchmark and emit the JSON report both as
/// the body and as a `BENCH_PR6.json` artifact.
pub fn run_tool(ctx: &crate::registry::ExpCtx) -> Result<crate::registry::Output, String> {
    if ctx.req.opts.smoke {
        let msg =
            smoke(&ctx.params, ctx.pool).map_err(|e| format!("bench-pr6 smoke failed: {e}"))?;
        return Ok(crate::registry::Output::text(format!("{msg}\n")));
    }
    let report = run(&ctx.params, ctx.pool).map_err(|e| format!("bench-pr6 failed: {e}"))?;
    let json = report.to_json(&ctx.params);
    Ok(crate::registry::Output {
        body: format!("{json}wrote BENCH_PR6.json\n"),
        files: vec![("BENCH_PR6.json".to_string(), json)],
        ok: true,
    })
}
