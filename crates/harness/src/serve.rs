//! `harness serve` — the resident experiment daemon.
//!
//! Starting the harness pays two costs the CLI re-pays on every
//! invocation: preparing benchmarks (build + task-form + record, or at
//! best a disk read through the artifact cache) and running the
//! experiment itself. The server pays each cost **once**: prepared
//! [`Bench`]es live in an in-memory pool (their replays and traces are
//! immutable behind `Arc`, so serving one to a request is a cheap clone),
//! and rendered [`Output`]s are memoised in a byte-capped LRU result
//! cache keyed by [`registry::result_key`] — the experiment's
//! content-addressed inputs × engine × workload parameters × output
//! format × tool options. A repeated request is served byte-identical
//! from memory without touching a benchmark at all.
//!
//! The wire protocol is line-delimited JSON over stdio or a Unix socket
//! (see [`crate::proto`]): one [`Envelope`] per request line, one
//! [`Response`] per response line. Requests dispatch through the same
//! [`registry::dispatch`] path as the CLI — the server adds residency and
//! memoisation, never behavior — so a request's body is exactly the bytes
//! `harness <experiment> ...` would print to stdout.
//!
//! Three layers of caching compose:
//!
//! 1. the on-disk [`ArtifactCache`] (PR 5) warms cold *preparation*
//!    across processes;
//! 2. the resident bench pool keeps *prepared* benchmarks hot within the
//!    server's lifetime;
//! 3. the result cache keeps *rendered* outputs hot, with hit/miss/evict
//!    counters reported by the `stats` command.

use std::collections::HashMap;
use std::io::{BufRead, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

use crate::cache::{self, ArtifactCache};
use crate::pool::Pool;
use crate::proto::{Command, Envelope, Request, Response};
use crate::registry::{self, BenchSource, Output};
use crate::Bench;
use multiscalar_isa::Fingerprint;
use multiscalar_workloads::{Spec92, WorkloadParams};

/// One benchmark spec paired with its replay-artifact cache key.
type BenchKeys = Vec<(Spec92, Fingerprint)>;

/// Everything `harness serve` is configured with. These are process-level
/// resources (where the server runs), deliberately outside [`Request`]
/// (what a client computes): two clients of one server share one pool,
/// one artifact store and one result cache.
pub struct ServeConfig {
    /// The job pool experiments fan out on (and batches fan out on).
    pub pool: Pool,
    /// The resolved artifact-cache directory.
    pub cache_dir: PathBuf,
    /// Disable the on-disk artifact cache (preparation still memoises in
    /// memory; only cross-process warming is lost).
    pub no_cache: bool,
    /// Byte cap for the in-memory result cache; least-recently-used
    /// entries are evicted past it.
    pub result_max_bytes: u64,
    /// Serve on this Unix socket instead of stdio.
    pub socket: Option<PathBuf>,
}

/// Default result-cache cap: plenty for every registry entry at several
/// parameter points, small enough to never matter on a laptop.
pub const DEFAULT_RESULT_MAX_BYTES: u64 = 16 * 1024 * 1024;

/// One memoised rendered result.
struct CachedResult {
    output: Output,
    bytes: u64,
    last_used: u64,
}

/// The byte-capped LRU result cache plus its counters. Recency is a
/// monotonic tick bumped on every lookup — cheap, deterministic, and
/// immune to wall-clock weirdness.
struct ResultCache {
    entries: HashMap<Fingerprint, CachedResult>,
    total_bytes: u64,
    max_bytes: u64,
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl ResultCache {
    fn new(max_bytes: u64) -> ResultCache {
        ResultCache {
            entries: HashMap::new(),
            total_bytes: 0,
            max_bytes,
            tick: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// A hit clones the memoised output (bodies are the dominant cost and
    /// clients consume them immediately; sharing `Arc<str>` would buy
    /// nothing measurable at this cache's size).
    fn get(&mut self, key: Fingerprint) -> Option<Output> {
        self.tick += 1;
        let tick = self.tick;
        match self.entries.get_mut(&key) {
            Some(e) => {
                e.last_used = tick;
                self.hits += 1;
                Some(e.output.clone())
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    fn insert(&mut self, key: Fingerprint, output: &Output) {
        let bytes = result_bytes(output);
        self.tick += 1;
        let prev = self.entries.insert(
            key,
            CachedResult {
                output: output.clone(),
                bytes,
                last_used: self.tick,
            },
        );
        self.total_bytes += bytes;
        if let Some(p) = prev {
            self.total_bytes -= p.bytes;
        }
        // Evict LRU-first until under the cap. An oversized output evicts
        // everything including itself — the counters then show the churn
        // instead of the cache silently lying about residency.
        while self.total_bytes > self.max_bytes {
            let Some((&lru, _)) = self.entries.iter().min_by_key(|(_, e)| e.last_used) else {
                break;
            };
            let e = self.entries.remove(&lru).expect("present");
            self.total_bytes -= e.bytes;
            self.evictions += 1;
        }
    }
}

/// What one cached result costs the cap: its rendered bytes plus a small
/// per-entry overhead so a flood of tiny entries still hits the cap.
fn result_bytes(output: &Output) -> u64 {
    let files: usize = output
        .files
        .iter()
        .map(|(name, content)| name.len() + content.len())
        .sum();
    (output.body.len() + files + 64) as u64
}

/// The resident server: one instance serves every connection.
pub struct Server {
    pool: Pool,
    store: Option<ArtifactCache>,
    cache_dir: PathBuf,
    /// Prepared benchmarks, keyed by their replay-artifact key (which
    /// folds spec + workload parameters, so every parameter point gets
    /// its own residency).
    benches: Mutex<HashMap<Fingerprint, Bench>>,
    /// Benchmark cache keys per parameter point. [`cache::key_for`]
    /// rebuilds the workload to fingerprint it, so the five keys are
    /// computed once per (seed, scale) rather than once per request.
    bench_keys: Mutex<HashMap<(u64, u32), BenchKeys>>,
    results: Mutex<ResultCache>,
    requests: AtomicU64,
    shutdown: AtomicBool,
}

impl Server {
    /// A fresh server with empty caches.
    pub fn new(config: &ServeConfig) -> Server {
        let store = if config.no_cache {
            None
        } else {
            Some(ArtifactCache::new(config.cache_dir.clone()))
        };
        Server {
            pool: config.pool,
            store,
            cache_dir: config.cache_dir.clone(),
            benches: Mutex::new(HashMap::new()),
            bench_keys: Mutex::new(HashMap::new()),
            results: Mutex::new(ResultCache::new(config.result_max_bytes)),
            requests: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
        }
    }

    /// The benchmark cache keys at `params`, memoised per (seed, scale).
    fn keys_for(&self, params: &WorkloadParams) -> BenchKeys {
        let mut memo = self.bench_keys.lock().unwrap();
        memo.entry((params.seed, params.scale))
            .or_insert_with(|| registry::bench_keys(params))
            .clone()
    }

    /// Runs one request through the shared dispatch path, memoising the
    /// rendered output when the experiment declares itself cache-safe.
    pub fn run_request(&self, id: Option<i128>, req: &Request) -> Response {
        self.requests.fetch_add(1, Ordering::Relaxed);
        let exp = registry::find(&req.experiment);
        // `fuzz --repro` reads a file the request doesn't fingerprint, so
        // repro runs are never memoised even though fuzz itself is pure.
        let memoise = exp.is_some_and(|e| e.cache_safe) && req.opts.repro.is_none();
        let key = memoise.then(|| {
            let keys = self.keys_for(&req.params);
            registry::result_key(exp.expect("found"), req, &keys)
        });
        if let Some(key) = key {
            if let Some(output) = self.results.lock().unwrap().get(key) {
                return ok_response(id, true, &output);
            }
        }
        let res = registry::Resources {
            pool: &self.pool,
            store: self.store.as_ref(),
            cache_dir: self.cache_dir.clone(),
            source: Some(self),
        };
        match registry::dispatch(req, &res) {
            Ok(output) => {
                if let Some(key) = key {
                    self.results.lock().unwrap().insert(key, &output);
                }
                ok_response(id, false, &output)
            }
            Err(error) => Response::Error { id, error },
        }
    }

    /// Executes one parsed command. The bool asks the serving loop to stop
    /// after writing the response.
    pub fn handle(&self, env: &Envelope) -> (Response, bool) {
        match &env.cmd {
            Command::Run(req) => (self.run_request(env.id, req), false),
            Command::Batch(reqs) => {
                // Fan the batch out on the server's own pool; `Pool::run`
                // returns results in job order, so responses line up with
                // requests no matter how execution interleaves.
                let responses = self.pool.run(
                    reqs.iter()
                        .map(|r| move || self.run_request(None, r))
                        .collect(),
                );
                (
                    Response::Batch {
                        id: env.id,
                        responses,
                    },
                    false,
                )
            }
            Command::Stats => (
                Response::Stats {
                    id: env.id,
                    stats: self.stats(),
                },
                false,
            ),
            Command::Ping => (
                Response::Ok {
                    id: env.id,
                    cached: false,
                    exit_ok: true,
                    files: Vec::new(),
                    body: "pong\n".to_string(),
                },
                false,
            ),
            Command::Shutdown => (
                Response::Ok {
                    id: env.id,
                    cached: false,
                    exit_ok: true,
                    files: Vec::new(),
                    body: "shutting down\n".to_string(),
                },
                true,
            ),
        }
    }

    /// One request line in, one response line out (no trailing newline).
    /// Parse errors come back as `Response::Error` with a `null` id.
    pub fn handle_line(&self, line: &str) -> (String, bool) {
        match crate::proto::parse_line(line) {
            Ok(env) => {
                let (resp, stop) = self.handle(&env);
                (resp.to_json(), stop)
            }
            Err(error) => (
                Response::Error {
                    id: crate::proto::salvage_id(line),
                    error,
                }
                .to_json(),
                false,
            ),
        }
    }

    /// Server counters, in a pinned order (golden tests mask the values,
    /// not the keys).
    pub fn stats(&self) -> Vec<(String, u64)> {
        let mut stats = Vec::new();
        let mut push = |k: &str, v: u64| stats.push((k.to_string(), v));
        push("requests", self.requests.load(Ordering::Relaxed));
        {
            let rc = self.results.lock().unwrap();
            push("result_hits", rc.hits);
            push("result_misses", rc.misses);
            push("result_evictions", rc.evictions);
            push("result_entries", rc.entries.len() as u64);
            push("result_bytes", rc.total_bytes);
            push("result_max_bytes", rc.max_bytes);
        }
        push("bench_resident", self.benches.lock().unwrap().len() as u64);
        if let Some(store) = &self.store {
            let s = store.stats();
            push("store_hits", s.hits);
            push("store_misses", s.misses);
            push("store_stores", s.stores);
            push("store_evictions", s.evictions);
        }
        stats
    }

    /// Serves one line-delimited connection: requests from `input`,
    /// responses to `output` (flushed per line so a blocked reader never
    /// stalls behind buffering). Returns `true` if a shutdown command
    /// asked the whole server to stop.
    pub fn serve_connection<R: BufRead, W: Write>(&self, input: R, mut output: W) -> bool {
        for line in input.lines() {
            let Ok(line) = line else { break };
            if line.trim().is_empty() {
                continue;
            }
            let (resp, stop) = self.handle_line(&line);
            if writeln!(output, "{resp}").is_err() {
                break;
            }
            let _ = output.flush();
            if stop {
                self.shutdown.store(true, Ordering::SeqCst);
                return true;
            }
        }
        false
    }
}

/// The server's resident bench pool, substituted into [`registry::dispatch`]
/// in place of per-invocation preparation: missing benchmarks are prepared
/// once (warming from the artifact cache when one is attached) and every
/// later request clones the resident, `Arc`-shared preparation.
impl BenchSource for Server {
    fn benches(
        &self,
        specs: &[Spec92],
        params: &WorkloadParams,
        pool: &Pool,
        cache: Option<&ArtifactCache>,
    ) -> Vec<Bench> {
        let keys = self.keys_for(params);
        let key_of = |spec: Spec92| {
            keys.iter()
                .find(|(s, _)| *s == spec)
                .map(|(_, k)| *k)
                .expect("key for every spec")
        };
        // Holding the lock across preparation serialises concurrent
        // warm-ups of the same parameter point — exactly the "prepare
        // once" the server exists for. Distinct connections pay at most
        // one preparation per benchmark per parameter point.
        let mut resident = self.benches.lock().unwrap();
        let missing: Vec<Spec92> = specs
            .iter()
            .copied()
            .filter(|&s| !resident.contains_key(&key_of(s)))
            .collect();
        if !missing.is_empty() {
            for bench in crate::prepare_set_cached(&missing, params, pool, cache) {
                resident.insert(bench.key, bench);
            }
        }
        specs
            .iter()
            .map(|&s| resident.get(&key_of(s)).expect("prepared").clone())
            .collect()
    }
}

fn ok_response(id: Option<i128>, cached: bool, output: &Output) -> Response {
    Response::Ok {
        id,
        cached,
        exit_ok: output.ok,
        files: output.files.iter().map(|(name, _)| name.clone()).collect(),
        body: output.body.clone(),
    }
}

/// Runs the server on stdio: one client, requests on stdin, responses on
/// stdout, diagnostics on stderr. Returns when stdin closes or a shutdown
/// command arrives.
pub fn serve_stdio(config: &ServeConfig) {
    let server = Server::new(config);
    eprintln!(
        "serve: ready on stdio ({} threads, result cache {} bytes, artifacts {})",
        config.pool.threads(),
        config.result_max_bytes,
        if config.no_cache {
            "disabled".to_string()
        } else {
            config.cache_dir.display().to_string()
        }
    );
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    server.serve_connection(stdin.lock(), stdout.lock());
}

/// Runs the server on a Unix socket, one thread per connection sharing the
/// one resident [`Server`]. A shutdown command from any connection stops
/// the accept loop.
#[cfg(unix)]
pub fn serve_unix(config: &ServeConfig, path: &std::path::Path) -> Result<(), String> {
    use std::os::unix::net::{UnixListener, UnixStream};
    use std::sync::Arc;

    // A stale socket file from a dead server would make bind fail; a live
    // server holding it would race us anyway, so removal is safe.
    let _ = std::fs::remove_file(path);
    let listener =
        UnixListener::bind(path).map_err(|e| format!("could not bind {}: {e}", path.display()))?;
    let server = Arc::new(Server::new(config));
    eprintln!(
        "serve: ready on {} ({} threads, result cache {} bytes)",
        path.display(),
        config.pool.threads(),
        config.result_max_bytes
    );
    let mut workers = Vec::new();
    for stream in listener.incoming() {
        if server.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { break };
        let server = Arc::clone(&server);
        let path = path.to_path_buf();
        workers.push(std::thread::spawn(move || {
            let reader = std::io::BufReader::new(&stream);
            if server.serve_connection(reader, &stream) {
                // Wake the accept loop so it observes the shutdown flag.
                let _ = UnixStream::connect(&path);
            }
        }));
    }
    for w in workers {
        let _ = w.join();
    }
    let _ = std::fs::remove_file(path);
    Ok(())
}

/// `harness serve` entry point: Unix socket when `--socket` is given,
/// stdio otherwise.
pub fn serve_main(config: &ServeConfig) -> Result<(), String> {
    match &config.socket {
        #[cfg(unix)]
        Some(path) => serve_unix(config, path),
        #[cfg(not(unix))]
        Some(_) => Err("--socket requires a Unix platform".to_string()),
        None => {
            serve_stdio(config);
            Ok(())
        }
    }
}

/// The default cache directory as a `ServeConfig` would resolve it.
pub fn default_cache_dir() -> PathBuf {
    PathBuf::from(cache::DEFAULT_DIR)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_config(dir: &std::path::Path, max_bytes: u64) -> ServeConfig {
        ServeConfig {
            pool: Pool::new(2),
            cache_dir: dir.join("cache"),
            no_cache: false,
            result_max_bytes: max_bytes,
            socket: None,
        }
    }

    #[test]
    fn lru_evicts_oldest_first_and_counts() {
        let mut rc = ResultCache::new(400);
        let out = |body: &str| Output::text(body.to_string());
        let k = |n: u64| {
            use std::hash::Hash as _;
            let mut h = multiscalar_isa::FingerprintHasher::new();
            n.hash(&mut h);
            h.finish128()
        };
        rc.insert(k(1), &out(&"a".repeat(100)));
        rc.insert(k(2), &out(&"b".repeat(100)));
        assert!(rc.get(k(1)).is_some()); // k1 now more recent than k2
        rc.insert(k(3), &out(&"c".repeat(100)));
        assert_eq!(rc.evictions, 1);
        assert!(rc.get(k(2)).is_none(), "k2 was LRU and must be gone");
        assert!(rc.get(k(1)).is_some());
        assert!(rc.get(k(3)).is_some());
        assert_eq!(rc.hits, 3);
        assert_eq!(rc.misses, 1);
    }

    #[test]
    fn oversized_entry_does_not_wedge_the_cache() {
        let mut rc = ResultCache::new(50);
        let mut h = multiscalar_isa::FingerprintHasher::new();
        use std::hash::Hash as _;
        1u64.hash(&mut h);
        rc.insert(h.finish128(), &Output::text("x".repeat(1000)));
        assert_eq!(rc.entries.len(), 0);
        assert_eq!(rc.total_bytes, 0);
        assert_eq!(rc.evictions, 1);
    }

    #[test]
    fn ping_and_errors_respond_without_touching_experiments() {
        let dir = std::env::temp_dir().join("serve-unit-ping");
        let server = Server::new(&test_config(&dir, 1024));
        let (resp, stop) = server.handle_line(r#"{"id":7,"cmd":"ping"}"#);
        assert_eq!(
            resp,
            r#"{"id":7,"ok":true,"cached":false,"exit":0,"files":[],"body":"pong\n"}"#
        );
        assert!(!stop);
        let (resp, _) = server.handle_line(r#"{"experiment":"nope"}"#);
        assert_eq!(
            resp,
            r#"{"id":null,"ok":false,"error":"unknown experiment `nope`"}"#
        );
        let (resp, _) = server.handle_line("not json");
        assert!(resp.contains("\"ok\":false"), "{resp}");
        let (_, stop) = server.handle_line(r#"{"cmd":"shutdown"}"#);
        assert!(stop);
    }
}
