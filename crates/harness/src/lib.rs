#![warn(missing_docs)]

//! The experiment harness: one function per table/figure of the paper,
//! each returning structured results the CLI (and benches, and tests)
//! render.
//!
//! | Paper artifact | Function |
//! |---|---|
//! | Table 2 (task counts) | [`experiments::table2`] |
//! | Figure 3 (exits per task) | [`experiments::fig3`] |
//! | Figure 4 (exit kinds) | [`experiments::fig4`] |
//! | Figure 6 (automata) | [`experiments::fig6`] |
//! | Figure 7 (ideal history schemes) | [`experiments::fig7`] |
//! | Figure 8 (ideal CTTB) | [`experiments::fig8`] |
//! | Figure 10 (real vs ideal exit prediction) | [`experiments::fig10`] |
//! | Figure 11 (PHT states touched) | [`experiments::fig11`] |
//! | Figure 12 (real vs ideal CTTB) | [`experiments::fig12`] |
//! | Table 3 (CTTB-only vs full predictor) | [`experiments::table3`] |
//! | Table 4 (IPC) | [`experiments::table4`] |
//!
//! # Example
//!
//! ```no_run
//! use multiscalar_harness::{prepare, experiments};
//! use multiscalar_workloads::{Spec92, WorkloadParams};
//!
//! let bench = prepare(Spec92::Compress, &WorkloadParams::small(1));
//! let rows = experiments::table2(std::slice::from_ref(&bench));
//! println!("{} dynamic tasks", rows[0].dynamic_tasks);
//! ```

pub mod bench_pr1;
pub mod bench_pr2;
pub mod bench_pr5;
pub mod bench_pr6;
pub mod cache;
pub mod csv;
pub mod dispatch;
pub mod experiments;
pub mod extensions;
pub mod fuzz;
pub mod lint;
pub mod masm;
pub mod pool;
pub mod profile;
pub mod proto;
pub mod registry;
pub mod report;
pub mod serve;
pub mod verify;

use std::sync::Arc;

use multiscalar_core::predictor::TaskDesc;
use multiscalar_isa::Fingerprint;
use multiscalar_sim::replay::{derive_trace, record_replay, InstrReplay};
use multiscalar_sim::{measure, TraceRun};
use multiscalar_taskform::{TaskFormer, TaskProgram};
use multiscalar_workloads::{Spec92, Workload, WorkloadParams};

/// A fully prepared benchmark: program, task partition, predictor-facing
/// task descriptions, the recorded instruction replay and the functional
/// trace derived from it.
#[derive(Debug, Clone)]
pub struct Bench {
    /// Which SPEC92 analog this is.
    pub spec: Spec92,
    /// The generated workload.
    pub workload: Workload,
    /// The task partition.
    pub tasks: TaskProgram,
    /// Per-task predictor-facing descriptions (indexed by task id).
    pub descs: Vec<TaskDesc>,
    /// The recorded instruction replay — the one execution artifact every
    /// timing run rides ([`experiments::table4`], `profile`). Served from
    /// the artifact cache when warm; recorded (one interpreter pass) when
    /// cold.
    pub replay: Arc<InstrReplay>,
    /// The content address `replay` is cached under (see
    /// [`cache::replay_key`]).
    pub key: Fingerprint,
    /// The functional trace, derived from `replay` — identical to what
    /// `trace::collect_trace` produces, without its interpreter pass.
    pub trace: TraceRun,
}

impl Bench {
    /// Benchmark name as printed in the paper.
    pub fn name(&self) -> &'static str {
        self.spec.name()
    }
}

/// Builds, task-forms and records one benchmark, optionally through the
/// on-disk artifact cache: a valid cached recording skips the interpreter
/// pass entirely; otherwise the recording runs and (when a cache is given)
/// is persisted for the next invocation. The functional trace derives from
/// the recording either way, so results are byte-identical with a cold
/// cache, a warm cache, or no cache at all.
///
/// # Panics
///
/// Panics if the workload fails to build, form or execute — these are
/// generator invariants, not user errors.
pub fn prepare_cached(
    spec: Spec92,
    params: &WorkloadParams,
    cache: Option<&cache::ArtifactCache>,
) -> Bench {
    let workload = spec.build(params);
    let tasks = TaskFormer::default()
        .form(&workload.program)
        .unwrap_or_else(|e| panic!("{spec}: task formation failed: {e}"));
    let descs = measure::task_descs(&tasks);
    let key = cache::replay_key(spec, params, &workload.program, &tasks, workload.max_steps);
    let replay = cache.and_then(|c| c.load_replay(key)).unwrap_or_else(|| {
        let r = record_replay(&workload.program, &tasks, workload.max_steps)
            .unwrap_or_else(|e| panic!("{spec}: recording failed: {e}"));
        if let Some(c) = cache {
            c.store_replay(key, &r);
        }
        r
    });
    let trace = derive_trace(&replay, &tasks);
    Bench {
        spec,
        workload,
        tasks,
        descs,
        replay: replay.into_shared(),
        key,
        trace,
    }
}

/// [`prepare_cached`] without a cache (always records).
pub fn prepare(spec: Spec92, params: &WorkloadParams) -> Bench {
    prepare_cached(spec, params, None)
}

/// Prepares all five benchmarks.
pub fn prepare_all(params: &WorkloadParams) -> Vec<Bench> {
    Spec92::ALL.iter().map(|&s| prepare(s, params)).collect()
}

/// Prepares all five benchmarks, one pool job per benchmark. The result is
/// identical to [`prepare_all`] (preparation is deterministic per
/// benchmark); only wall-clock differs.
pub fn prepare_all_with(params: &WorkloadParams, pool: &pool::Pool) -> Vec<Bench> {
    prepare_set_cached(Spec92::ALL.as_slice(), params, pool, None)
}

/// Prepares an arbitrary benchmark set through one shared cache, one pool
/// job per benchmark. The cache's counters are shared across jobs (atomic),
/// and distinct benchmarks write distinct keys, so any pool width is safe.
pub fn prepare_set_cached(
    specs: &[Spec92],
    params: &WorkloadParams,
    pool: &pool::Pool,
    cache: Option<&cache::ArtifactCache>,
) -> Vec<Bench> {
    let params = *params;
    pool.run(
        specs
            .iter()
            .map(|&s| move || prepare_cached(s, &params, cache))
            .collect(),
    )
}
