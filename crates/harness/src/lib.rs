#![warn(missing_docs)]

//! The experiment harness: one function per table/figure of the paper,
//! each returning structured results the CLI (and benches, and tests)
//! render.
//!
//! | Paper artifact | Function |
//! |---|---|
//! | Table 2 (task counts) | [`experiments::table2`] |
//! | Figure 3 (exits per task) | [`experiments::fig3`] |
//! | Figure 4 (exit kinds) | [`experiments::fig4`] |
//! | Figure 6 (automata) | [`experiments::fig6`] |
//! | Figure 7 (ideal history schemes) | [`experiments::fig7`] |
//! | Figure 8 (ideal CTTB) | [`experiments::fig8`] |
//! | Figure 10 (real vs ideal exit prediction) | [`experiments::fig10`] |
//! | Figure 11 (PHT states touched) | [`experiments::fig11`] |
//! | Figure 12 (real vs ideal CTTB) | [`experiments::fig12`] |
//! | Table 3 (CTTB-only vs full predictor) | [`experiments::table3`] |
//! | Table 4 (IPC) | [`experiments::table4`] |
//!
//! # Example
//!
//! ```no_run
//! use multiscalar_harness::{prepare, experiments};
//! use multiscalar_workloads::{Spec92, WorkloadParams};
//!
//! let bench = prepare(Spec92::Compress, &WorkloadParams::small(1));
//! let rows = experiments::table2(std::slice::from_ref(&bench));
//! println!("{} dynamic tasks", rows[0].dynamic_tasks);
//! ```

pub mod bench_pr1;
pub mod bench_pr2;
pub mod csv;
pub mod dispatch;
pub mod experiments;
pub mod extensions;
pub mod lint;
pub mod pool;
pub mod profile;
pub mod registry;
pub mod report;
pub mod verify;

use multiscalar_core::predictor::TaskDesc;
use multiscalar_sim::{measure, trace, TraceRun};
use multiscalar_taskform::{TaskFormer, TaskProgram};
use multiscalar_workloads::{Spec92, Workload, WorkloadParams};

/// A fully prepared benchmark: program, task partition, predictor-facing
/// task descriptions and the complete functional trace.
#[derive(Debug, Clone)]
pub struct Bench {
    /// Which SPEC92 analog this is.
    pub spec: Spec92,
    /// The generated workload.
    pub workload: Workload,
    /// The task partition.
    pub tasks: TaskProgram,
    /// Per-task predictor-facing descriptions (indexed by task id).
    pub descs: Vec<TaskDesc>,
    /// The functional trace.
    pub trace: TraceRun,
}

impl Bench {
    /// Benchmark name as printed in the paper.
    pub fn name(&self) -> &'static str {
        self.spec.name()
    }
}

/// Builds, task-forms and traces one benchmark.
///
/// # Panics
///
/// Panics if the workload fails to build, form or execute — these are
/// generator invariants, not user errors.
pub fn prepare(spec: Spec92, params: &WorkloadParams) -> Bench {
    let workload = spec.build(params);
    let tasks = TaskFormer::default()
        .form(&workload.program)
        .unwrap_or_else(|e| panic!("{spec}: task formation failed: {e}"));
    let descs = measure::task_descs(&tasks);
    let trace = trace::collect_trace(&workload.program, &tasks, workload.max_steps)
        .unwrap_or_else(|e| panic!("{spec}: trace failed: {e}"));
    Bench {
        spec,
        workload,
        tasks,
        descs,
        trace,
    }
}

/// Prepares all five benchmarks.
pub fn prepare_all(params: &WorkloadParams) -> Vec<Bench> {
    Spec92::ALL.iter().map(|&s| prepare(s, params)).collect()
}

/// Prepares all five benchmarks, one pool job per benchmark. The result is
/// identical to [`prepare_all`] (preparation is deterministic per
/// benchmark); only wall-clock differs.
pub fn prepare_all_with(params: &WorkloadParams, pool: &pool::Pool) -> Vec<Bench> {
    let params = *params;
    pool.run(
        Spec92::ALL
            .iter()
            .map(|&s| move || prepare(s, &params))
            .collect(),
    )
}
