//! `harness bench-pr1` — wall-clock comparison of the legacy experiment
//! loop against the shared-trace, fused, pooled sweep engine.
//!
//! The **serial** arm reproduces what the pre-parallel harness did for
//! `harness all`: every experiment re-prepares its benchmarks from scratch
//! and sweeps one (scheme, depth) configuration per trace walk. The
//! **engine** arm prepares each benchmark exactly once (shared immutable
//! traces behind `Arc`), fuses every depth sweep into one walk, and fans
//! the job grid over the pool. Both arms compute the same numbers; only
//! wall-clock differs.

use crate::dispatch::{
    cttb_ladder, exit_ladder, measure_ideal, measure_ideal_path_automaton, Scheme,
};
use crate::experiments::{self, Engine, DEPTHS};
use crate::pool::Pool;
use crate::{prepare, prepare_all, prepare_all_with, Bench};
use multiscalar_core::automata::{AutomatonKind, LastExitHysteresis};
use multiscalar_core::history::PathPredictor;
use multiscalar_core::ideal::IdealPath;
use multiscalar_core::predictor::ExitPredictor;
use multiscalar_core::target::{Cttb, IdealCttb};
use multiscalar_sim::measure::{measure_exits, measure_indirect_targets};
use multiscalar_sim::timing::TimingConfig;
use multiscalar_workloads::{Spec92, WorkloadParams};
use std::fmt::Write as _;
use std::hint::black_box;
use std::time::Instant;

type Leh2 = LastExitHysteresis<2>;

/// One timed experiment.
#[derive(Debug, Clone)]
pub struct Timing {
    /// Experiment name as it appears in the JSON.
    pub name: &'static str,
    /// Wall-clock milliseconds.
    pub ms: f64,
}

/// The full comparison: per-experiment timings for both arms plus totals.
#[derive(Debug, Clone)]
pub struct BenchReport {
    /// Legacy-arm timings (each entry includes its own re-preparation).
    pub serial: Vec<Timing>,
    /// Engine-arm timings (`prepare` appears once, as its own entry).
    pub parallel: Vec<Timing>,
    /// Pool width used by the engine arm.
    pub threads: usize,
}

impl BenchReport {
    /// Sum of the legacy-arm timings.
    pub fn serial_total(&self) -> f64 {
        self.serial.iter().map(|t| t.ms).sum()
    }

    /// Sum of the engine-arm timings.
    pub fn parallel_total(&self) -> f64 {
        self.parallel.iter().map(|t| t.ms).sum()
    }

    /// `serial_total / parallel_total`.
    pub fn speedup(&self) -> f64 {
        self.serial_total() / self.parallel_total().max(1e-9)
    }

    /// Renders the report as JSON (hand-rolled; fixed key order).
    pub fn to_json(&self, params: &WorkloadParams) -> String {
        let mut s = String::from("{\n");
        let _ = writeln!(s, "  \"threads\": {},", self.threads);
        let _ = writeln!(s, "  \"seed\": {},", params.seed);
        let _ = writeln!(s, "  \"scale\": {},", params.scale);
        for (key, arm, total) in [
            ("serial_ms", &self.serial, self.serial_total()),
            ("parallel_ms", &self.parallel, self.parallel_total()),
        ] {
            let _ = writeln!(s, "  \"{key}\": {{");
            for t in arm {
                let _ = writeln!(s, "    \"{}\": {:.1},", t.name, t.ms);
            }
            let _ = writeln!(s, "    \"total\": {total:.1}");
            let _ = writeln!(s, "  }},");
        }
        let _ = writeln!(s, "  \"speedup\": {:.2}", self.speedup());
        s.push_str("}\n");
        s
    }
}

fn timed<T>(name: &'static str, out: &mut Vec<Timing>, f: impl FnOnce() -> T) -> T {
    let start = Instant::now();
    let v = f();
    out.push(Timing {
        name,
        ms: start.elapsed().as_secs_f64() * 1e3,
    });
    v
}

/// The indirect-heavy pair studied by Figures 8 and 12.
const INDIRECT_PAIR: [Spec92; 2] = [Spec92::Gcc, Spec92::Xlisp];
/// The pair plotted in Figure 11.
const FIG11_PAIR: [Spec92; 2] = [Spec92::Gcc, Spec92::Espresso];

fn subset(all: &[Bench], wanted: &[Spec92]) -> Vec<Bench> {
    wanted
        .iter()
        .map(|&s| {
            all.iter()
                .find(|b| b.spec == s)
                .expect("benchmark prepared")
                .clone()
        })
        .collect()
}

// --- legacy (pre-fusion) sweeps: one predictor instance per trace walk ---

fn legacy_fig6(gcc: &Bench) {
    for &kind in &AutomatonKind::ALL {
        for d in DEPTHS {
            black_box(measure_ideal_path_automaton(kind, d, gcc).miss_rate());
        }
    }
}

fn legacy_fig7(benches: &[Bench]) {
    for b in benches {
        for scheme in Scheme::ALL {
            for d in DEPTHS {
                black_box(measure_ideal(scheme, d, b).miss_rate());
            }
        }
    }
}

fn legacy_fig8(benches: &[Bench]) {
    for b in benches {
        for d in DEPTHS {
            let mut cttb = IdealCttb::new(d as usize);
            black_box(measure_indirect_targets(&mut cttb, &b.descs, &b.trace.events).miss_rate());
        }
    }
}

fn legacy_fig10(benches: &[Bench]) {
    for b in benches {
        for d in exit_ladder() {
            let mut real: PathPredictor<Leh2> = PathPredictor::new(d);
            black_box(measure_exits(&mut real, &b.descs, &b.trace.events).miss_rate());
            let mut ideal: IdealPath<Leh2> = IdealPath::new(d.depth() as u32);
            black_box(measure_exits(&mut ideal, &b.descs, &b.trace.events).miss_rate());
        }
    }
}

fn legacy_fig11(benches: &[Bench]) {
    for b in benches {
        for d in exit_ladder() {
            let mut ideal: IdealPath<Leh2> = IdealPath::new(d.depth() as u32);
            measure_exits(&mut ideal, &b.descs, &b.trace.events);
            black_box(ideal.states());
            let mut real: PathPredictor<Leh2> = PathPredictor::new(d);
            measure_exits(&mut real, &b.descs, &b.trace.events);
            black_box(real.states_touched());
        }
    }
}

fn legacy_fig12(benches: &[Bench]) {
    for b in benches {
        for d in cttb_ladder() {
            let mut real = Cttb::new(d);
            black_box(measure_indirect_targets(&mut real, &b.descs, &b.trace.events).miss_rate());
            let mut ideal = IdealCttb::new(d.depth());
            black_box(measure_indirect_targets(&mut ideal, &b.descs, &b.trace.events).miss_rate());
        }
    }
}

/// Runs both arms and returns the timed comparison.
///
/// The serial arm re-prepares benchmarks inside every experiment — exactly
/// the behaviour of the pre-parallel harness, where `harness all` called
/// `prepare` 40+ times. Tables 3 and 4 have no depth dimension to fuse,
/// so their serial arms are the pooled functions at width 1 on fresh
/// benchmarks (the record-once replay engine that batches Table 4's
/// columns is measured separately by `harness bench-pr2`).
pub fn run(params: &WorkloadParams, pool: &Pool) -> BenchReport {
    let serial_pool = Pool::new(1);
    let timing_cfg = TimingConfig::default();
    let mut serial = Vec::new();

    timed("table2", &mut serial, || {
        black_box(experiments::table2(&prepare_all(params)).len())
    });
    timed("fig3", &mut serial, || {
        black_box(experiments::fig3(&prepare_all(params)).len())
    });
    timed("fig4", &mut serial, || {
        black_box(experiments::fig4(&prepare_all(params)).len())
    });
    timed("fig6", &mut serial, || {
        legacy_fig6(&prepare(Spec92::Gcc, params))
    });
    timed("fig7", &mut serial, || legacy_fig7(&prepare_all(params)));
    timed("fig8", &mut serial, || {
        legacy_fig8(&INDIRECT_PAIR.map(|s| prepare(s, params)));
    });
    timed("fig10", &mut serial, || legacy_fig10(&prepare_all(params)));
    timed("fig11", &mut serial, || {
        legacy_fig11(&FIG11_PAIR.map(|s| prepare(s, params)));
    });
    timed("fig12", &mut serial, || {
        legacy_fig12(&INDIRECT_PAIR.map(|s| prepare(s, params)));
    });
    timed("table3", &mut serial, || {
        black_box(experiments::table3(&prepare_all(params), &serial_pool).len());
    });
    timed("table4", &mut serial, || {
        black_box(
            experiments::table4(
                &prepare_all(params),
                &timing_cfg,
                &serial_pool,
                Engine::Legacy,
            )
            .len(),
        );
    });

    let mut parallel = Vec::new();
    let benches = timed("prepare", &mut parallel, || prepare_all_with(params, pool));
    let pair = subset(&benches, &INDIRECT_PAIR);
    let gcc = &benches[0];

    timed("table2", &mut parallel, || {
        black_box(experiments::table2(&benches).len())
    });
    timed("fig3", &mut parallel, || {
        black_box(experiments::fig3(&benches).len())
    });
    timed("fig4", &mut parallel, || {
        black_box(experiments::fig4(&benches).len())
    });
    timed("fig6", &mut parallel, || {
        black_box(experiments::fig6(gcc, pool).len())
    });
    timed("fig7", &mut parallel, || {
        black_box(experiments::fig7(&benches, pool).len())
    });
    timed("fig8", &mut parallel, || {
        black_box(experiments::fig8(&pair, pool).len())
    });
    // The engine computes Figures 10 and 11 in one pass (they share their
    // predictor runs), so they appear as one entry here.
    timed("fig10_fig11", &mut parallel, || {
        let (r10, r11) = experiments::fig10_fig11(&benches, pool);
        black_box(r10.len() + r11.len());
    });
    timed("fig12", &mut parallel, || {
        black_box(experiments::fig12(&pair, pool).len())
    });
    timed("table3", &mut parallel, || {
        black_box(experiments::table3(&benches, pool).len())
    });
    timed("table4", &mut parallel, || {
        black_box(experiments::table4(&benches, &timing_cfg, pool, Engine::Legacy).len());
    });

    BenchReport {
        serial,
        parallel,
        threads: pool.threads(),
    }
}

/// The registry tool entry: run the benchmark, emit the JSON report both
/// as the body and as a `BENCH_PR1.json` artifact.
pub fn run_tool(ctx: &crate::registry::ExpCtx) -> Result<crate::registry::Output, String> {
    let report = run(&ctx.params, ctx.pool);
    let json = report.to_json(&ctx.params);
    Ok(crate::registry::Output {
        body: format!("{json}wrote BENCH_PR1.json\n"),
        files: vec![("BENCH_PR1.json".to_string(), json)],
        ok: true,
    })
}
