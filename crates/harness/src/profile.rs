//! `harness profile` — cycle attribution over Table 4's benchmark ×
//! predictor grid.
//!
//! Each cell re-runs a Table 4 timing simulation with a
//! [`CycleBreakdown`] sink attached, attributing every cycle to one
//! [`Cause`] (the attribution sums to `TimingResult::cycles` exactly; the
//! sink asserts it). Runs ride the record-once replay engine — the
//! attribution is engine-independent, which `tests/profile.rs` checks
//! against the legacy interpreter. [`events_jsonl`] exposes the task-level
//! JSON-lines event log of a single run for the same grid.

use std::fmt::Write as _;
use std::sync::Arc;

use crate::dispatch::Table4Column;
use crate::experiments::record_replays;
use crate::pool::{Job, Pool};
use crate::Bench;
use multiscalar_sim::metrics::{Cause, CycleBreakdown, TaskEventSink};
use multiscalar_sim::replay::simulate_replay_with_sink;
use multiscalar_sim::timing::{NextTaskPredictor, TimingConfig, TimingResult};

/// Schema version stamped into `profile.json`; bump on breaking changes.
pub const PROFILE_SCHEMA_VERSION: u32 = 1;

/// One benchmark × predictor-column cell of the profile grid.
#[derive(Debug, Clone)]
pub struct ProfileCell {
    /// The predictor column.
    pub column: Table4Column,
    /// The run's timing result (bit-identical to Table 4's).
    pub result: TimingResult,
    /// Where every one of `result.cycles` went.
    pub breakdown: CycleBreakdown,
}

/// Attribution of one benchmark across all predictor columns.
#[derive(Debug, Clone)]
pub struct ProfileRow {
    /// Benchmark name.
    pub name: &'static str,
    /// One cell per [`Table4Column::ALL`] entry, in that order.
    pub cells: Vec<ProfileCell>,
}

/// Profiles every benchmark × predictor column: Table 4's runs with a
/// [`CycleBreakdown`] sink attached, on the replay engine. One job per
/// cell; results come back in submission order, so output is byte-identical
/// for every pool width.
pub fn profile(benches: &[Bench], config: &TimingConfig, pool: &Pool) -> Vec<ProfileRow> {
    let replays = record_replays(benches, pool);
    let mut jobs: Vec<Job<'_, ProfileCell>> = Vec::new();
    for (b, replay) in benches.iter().zip(&replays) {
        for column in Table4Column::ALL {
            let replay = Arc::clone(replay);
            jobs.push(Box::new(move || {
                let mut pred = column.predictor();
                let mut breakdown = CycleBreakdown::new();
                let result = simulate_replay_with_sink(
                    &replay,
                    &b.descs,
                    pred.as_mut().map(|p| p as &mut dyn NextTaskPredictor),
                    config,
                    &mut breakdown,
                );
                ProfileCell {
                    column,
                    result,
                    breakdown,
                }
            }));
        }
    }
    let mut results = pool.run(jobs).into_iter();
    benches
        .iter()
        .map(|b| ProfileRow {
            name: b.name(),
            cells: Table4Column::ALL
                .iter()
                .map(|_| results.next().expect("one cell per column"))
                .collect(),
        })
        .collect()
}

/// The task-level event log (JSON lines) of one benchmark's run under one
/// predictor column: `predict` / `resolve` / `squash` / `commit` /
/// `dispatch` per boundary, with machine clocks and exit numbers.
pub fn events_jsonl(bench: &Bench, column: Table4Column, config: &TimingConfig) -> String {
    let replay = multiscalar_sim::record_replay(
        &bench.workload.program,
        &bench.tasks,
        bench.workload.max_steps,
    )
    .expect("recording must succeed");
    let mut pred = column.predictor();
    let mut sink = TaskEventSink::new();
    simulate_replay_with_sink(
        &replay,
        &bench.descs,
        pred.as_mut().map(|p| p as &mut dyn NextTaskPredictor),
        config,
        &mut sink,
    );
    sink.into_jsonl()
}

/// Renders the profile as per-benchmark tables: one line per predictor
/// column, total cycles and IPC, then each cause's share of total cycles.
pub fn render(rows: &[ProfileRow]) -> String {
    let mut out = String::new();
    out.push_str("Cycle attribution (percent of total cycles; replay engine)\n");
    for row in rows {
        let _ = write!(out, "\n{:<10} {:>12} {:>6}", row.name, "cycles", "IPC");
        for cause in Cause::ALL {
            let _ = write!(out, " {:>8}", cause.label());
        }
        out.push('\n');
        for cell in &row.cells {
            let _ = write!(
                out,
                "  {:<8} {:>12} {:>6.2}",
                cell.column.name(),
                cell.result.cycles,
                cell.result.ipc()
            );
            let total = cell.result.cycles.max(1) as f64;
            for cause in Cause::ALL {
                let pct = 100.0 * cell.breakdown.get(cause) as f64 / total;
                let _ = write!(out, " {:>7.1}%", pct);
            }
            out.push('\n');
        }
    }
    out
}

/// Serialises the profile as versioned JSON (`profile.json`): absolute
/// per-cause cycle counts, so consumers can recompute any ratio. All
/// values are numbers or fixed keywords — no escaping needed.
pub fn to_json(rows: &[ProfileRow]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"version\": {PROFILE_SCHEMA_VERSION},");
    out.push_str("  \"engine\": \"replay\",\n");
    out.push_str("  \"causes\": [");
    for (i, cause) in Cause::ALL.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "\"{}\"", cause.key());
    }
    out.push_str("],\n");
    out.push_str("  \"benchmarks\": [\n");
    for (bi, row) in rows.iter().enumerate() {
        let _ = writeln!(out, "    {{");
        let _ = writeln!(out, "      \"name\": \"{}\",", row.name);
        let _ = writeln!(out, "      \"columns\": [");
        for (ci, cell) in row.cells.iter().enumerate() {
            let r = &cell.result;
            let _ = write!(
                out,
                "        {{\"predictor\": \"{}\", \"cycles\": {}, \"instructions\": {}, \
                 \"ipc\": {:.6}, \"task_mispredicts\": {}, \"breakdown\": {{",
                cell.column.name(),
                r.cycles,
                r.instructions,
                r.ipc(),
                r.task_mispredicts
            );
            for (i, cause) in Cause::ALL.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "\"{}\": {}", cause.key(), cell.breakdown.get(*cause));
            }
            out.push_str("}}");
            out.push_str(if ci + 1 < row.cells.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("      ]\n");
        out.push_str(if bi + 1 < rows.len() {
            "    },\n"
        } else {
            "    }\n"
        });
    }
    out.push_str("  ]\n");
    out.push_str("}\n");
    out
}
