//! `harness profile` — cycle attribution over Table 4's benchmark ×
//! predictor grid.
//!
//! Each cell re-runs a Table 4 timing simulation with a
//! [`CycleBreakdown`] sink attached, attributing every cycle to one
//! [`Cause`] (the attribution sums to `TimingResult::cycles` exactly; the
//! sink asserts it). Runs ride the recorded replay in [`Bench::replay`]
//! (served from the artifact cache when warm) — the attribution is
//! engine-independent, which `tests/profile.rs` checks against the legacy
//! interpreter. With `--occupancy` a [`UnitOccupancy`] sink rides the same
//! pass and three per-unit utilisation columns join the output (the
//! default output stays byte-identical). [`events_jsonl`] exposes the
//! task-level JSON-lines event log of a single run for the same grid.

use std::fmt::Write as _;
use std::sync::Arc;

use crate::dispatch::Table4Column;
use crate::pool::{Job, Pool};
use crate::Bench;
use multiscalar_sim::metrics::{Cause, CycleBreakdown, TaskEventSink, UnitOccupancy};
use multiscalar_sim::replay::simulate_replay_with_sink;
use multiscalar_sim::timing::{NextTaskPredictor, TimingConfig, TimingResult};

/// Schema version stamped into `profile.json`; bump on breaking changes.
pub const PROFILE_SCHEMA_VERSION: u32 = 1;

/// One benchmark × predictor-column cell of the profile grid.
#[derive(Debug, Clone)]
pub struct ProfileCell {
    /// The predictor column.
    pub column: Table4Column,
    /// The run's timing result (bit-identical to Table 4's).
    pub result: TimingResult,
    /// Where every one of `result.cycles` went.
    pub breakdown: CycleBreakdown,
    /// Per-ring-unit busy/stalled/idle split — only collected under
    /// `--occupancy` so the default output stays byte-identical.
    pub occupancy: Option<UnitOccupancy>,
}

/// Attribution of one benchmark across all predictor columns.
#[derive(Debug, Clone)]
pub struct ProfileRow {
    /// Benchmark name.
    pub name: &'static str,
    /// One cell per [`Table4Column::ALL`] entry, in that order.
    pub cells: Vec<ProfileCell>,
}

/// Profiles every benchmark × predictor column: Table 4's runs with a
/// [`CycleBreakdown`] sink attached, driven from each benchmark's recorded
/// replay with zero re-interpretation. When `occupancy` is set a
/// [`UnitOccupancy`] sink shares the same pass (tuple sinks fan out). One
/// job per cell; results come back in submission order, so output is
/// byte-identical for every pool width.
pub fn profile(
    benches: &[Bench],
    config: &TimingConfig,
    pool: &Pool,
    occupancy: bool,
) -> Vec<ProfileRow> {
    let mut jobs: Vec<Job<'_, ProfileCell>> = Vec::new();
    for b in benches {
        for column in Table4Column::ALL {
            let replay = Arc::clone(&b.replay);
            jobs.push(Box::new(move || {
                let mut pred = column.predictor();
                let pred = pred.as_mut().map(|p| p as &mut dyn NextTaskPredictor);
                if occupancy {
                    let mut sinks = (CycleBreakdown::new(), UnitOccupancy::new(config.n_units));
                    let result =
                        simulate_replay_with_sink(&replay, &b.descs, pred, config, &mut sinks);
                    ProfileCell {
                        column,
                        result,
                        breakdown: sinks.0,
                        occupancy: Some(sinks.1),
                    }
                } else {
                    let mut breakdown = CycleBreakdown::new();
                    let result =
                        simulate_replay_with_sink(&replay, &b.descs, pred, config, &mut breakdown);
                    ProfileCell {
                        column,
                        result,
                        breakdown,
                        occupancy: None,
                    }
                }
            }));
        }
    }
    let mut results = pool.run(jobs).into_iter();
    benches
        .iter()
        .map(|b| ProfileRow {
            name: b.name(),
            cells: Table4Column::ALL
                .iter()
                .map(|_| results.next().expect("one cell per column"))
                .collect(),
        })
        .collect()
}

/// The task-level event log (JSON lines) of one benchmark's run under one
/// predictor column: `predict` / `resolve` / `squash` / `commit` /
/// `dispatch` per boundary, with machine clocks and exit numbers.
pub fn events_jsonl(bench: &Bench, column: Table4Column, config: &TimingConfig) -> String {
    let mut pred = column.predictor();
    let mut sink = TaskEventSink::new();
    simulate_replay_with_sink(
        &bench.replay,
        &bench.descs,
        pred.as_mut().map(|p| p as &mut dyn NextTaskPredictor),
        config,
        &mut sink,
    );
    sink.into_jsonl()
}

/// Renders the profile as per-benchmark tables: one line per predictor
/// column, total cycles and IPC, then each cause's share of total cycles.
/// Rows profiled with `--occupancy` gain three trailing columns (busy /
/// stalled / idle share of unit-cycles); without the flag the output is
/// byte-identical to what it always was.
pub fn render(rows: &[ProfileRow]) -> String {
    let mut out = String::new();
    let occupancy = rows
        .iter()
        .any(|r| r.cells.iter().any(|c| c.occupancy.is_some()));
    out.push_str("Cycle attribution (percent of total cycles; replay engine)\n");
    for row in rows {
        let _ = write!(out, "\n{:<10} {:>12} {:>6}", row.name, "cycles", "IPC");
        for cause in Cause::ALL {
            let _ = write!(out, " {:>8}", cause.label());
        }
        if occupancy {
            let _ = write!(out, " {:>8} {:>8} {:>8}", "u.busy", "u.stall", "u.idle");
        }
        out.push('\n');
        for cell in &row.cells {
            let _ = write!(
                out,
                "  {:<8} {:>12} {:>6.2}",
                cell.column.name(),
                cell.result.cycles,
                cell.result.ipc()
            );
            let total = cell.result.cycles.max(1) as f64;
            for cause in Cause::ALL {
                let pct = 100.0 * cell.breakdown.get(cause) as f64 / total;
                let _ = write!(out, " {:>7.1}%", pct);
            }
            if let Some(occ) = &cell.occupancy {
                let _ = write!(
                    out,
                    " {:>7.1}% {:>7.1}% {:>7.1}%",
                    100.0 * occ.busy_frac(),
                    100.0 * occ.stalled_frac(),
                    100.0 * occ.idle_frac()
                );
            }
            out.push('\n');
        }
    }
    out
}

/// Serialises the profile as versioned JSON (`profile.json`): absolute
/// per-cause cycle counts, so consumers can recompute any ratio. All
/// values are numbers or fixed keywords — no escaping needed.
pub fn to_json(rows: &[ProfileRow]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"version\": {PROFILE_SCHEMA_VERSION},");
    out.push_str("  \"engine\": \"replay\",\n");
    out.push_str("  \"causes\": [");
    for (i, cause) in Cause::ALL.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "\"{}\"", cause.key());
    }
    out.push_str("],\n");
    out.push_str("  \"benchmarks\": [\n");
    for (bi, row) in rows.iter().enumerate() {
        let _ = writeln!(out, "    {{");
        let _ = writeln!(out, "      \"name\": \"{}\",", row.name);
        let _ = writeln!(out, "      \"columns\": [");
        for (ci, cell) in row.cells.iter().enumerate() {
            let r = &cell.result;
            let _ = write!(
                out,
                "        {{\"predictor\": \"{}\", \"cycles\": {}, \"instructions\": {}, \
                 \"ipc\": {:.6}, \"task_mispredicts\": {}, \"breakdown\": {{",
                cell.column.name(),
                r.cycles,
                r.instructions,
                r.ipc(),
                r.task_mispredicts
            );
            for (i, cause) in Cause::ALL.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "\"{}\": {}", cause.key(), cell.breakdown.get(*cause));
            }
            out.push('}');
            if let Some(occ) = &cell.occupancy {
                // Debug-formatting a `&[u64]` yields `[a, b, c]` — valid
                // JSON for an array of numbers.
                let _ = write!(
                    out,
                    ", \"occupancy\": {{\"units\": {}, \"busy\": {:?}, \"stalled\": {:?}, \
                     \"idle\": {:?}}}",
                    occ.n_units(),
                    occ.busy(),
                    occ.stalled(),
                    occ.idle()
                );
            }
            out.push('}');
            out.push_str(if ci + 1 < row.cells.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("      ]\n");
        out.push_str(if bi + 1 < rows.len() {
            "    },\n"
        } else {
            "    }\n"
        });
    }
    out.push_str("  ]\n");
    out.push_str("}\n");
    out
}
