//! The typed experiment registry and the one dispatch path behind both the
//! `harness` CLI and `harness serve`.
//!
//! Every subcommand — paper tables/figures, extensions, *and* the tools
//! (`lint`, `fuzz`, `verify`, `cache`, the `bench-pr*` probes, `all`,
//! `ext`, `csv`) — registers once in [`REGISTRY`] as an [`Experiment`].
//! A [`crate::proto::Request`] names an entry; [`dispatch`] prepares the
//! entry's declared benchmark set and [`execute`]s it into a structured
//! [`Output`] (exact stdout bytes + artifact files + pass/fail), with
//! errors as values rather than `eprintln!` + exit codes. The CLI prints
//! the `Output`; the server serialises it into a
//! [`crate::proto::Response`] and memoises it under [`result_key`].
//!
//! Entries come in two [`Kind`]s. Declarative [`Kind::Rendered`] entries
//! (the paper artifacts) register text/CSV/JSON renderers and the request's
//! [`crate::proto::OutputFormat`] picks one — three formats from one run.
//! Self-contained [`Kind::Tool`] entries run a fallible function with full
//! access to the request.
//!
//! Experiments run against an [`ExpCtx`], which owns the prepared
//! benchmarks plus per-invocation caches: experiments that share work
//! (Figures 10/11 share one predictor pass; `table4`'s rows feed both its
//! table and its CSV) compute it once per dispatch regardless of how many
//! renderers consume it.
//!
//! Every entry also **declares its inputs**: which benchmark set it reads
//! ([`BenchSet`]) and which derived artifacts it consumes ([`Needs`]).
//! Running one experiment prepares only its declared set, and the declared
//! inputs fold into a per-experiment [`input_fingerprint`] — the shared
//! key-derivation path behind both `harness cache stats` coverage
//! reporting and the serve result cache ([`result_key`]).

use std::cell::OnceCell;

use crate::cache::ArtifactCache;
use crate::experiments::{self, Engine, Fig10Row, Fig11Row, Table4Row};
use crate::pool::Pool;
use crate::profile::{self, ProfileRow};
use crate::proto::{OutputFormat, Request};
use crate::{csv, extensions, prepare_set_cached, report, Bench};
use multiscalar_isa::{fingerprint::FingerprintHasher, Fingerprint};
use multiscalar_sim::timing::TimingConfig;
use multiscalar_workloads::{Spec92, WorkloadParams};
use std::hash::Hash as _;

/// The benchmark set an experiment declares as its input.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BenchSet {
    /// All five SPEC92 analogs.
    All,
    /// gcc only (Figure 6's automata study).
    Gcc,
    /// The two indirect-heavy benchmarks (Figures 8 and 12).
    GccXlisp,
    /// No prepared benchmarks (tools that manage their own preparation).
    None,
}

impl BenchSet {
    /// The concrete benchmarks in this set, in preparation order.
    pub fn specs(self) -> &'static [Spec92] {
        match self {
            BenchSet::All => Spec92::ALL.as_slice(),
            BenchSet::Gcc => &[Spec92::Gcc],
            BenchSet::GccXlisp => &[Spec92::Gcc, Spec92::Xlisp],
            BenchSet::None => &[],
        }
    }
}

/// Which derived artifacts an experiment consumes per prepared benchmark.
/// Both derive from the one cached recording (the functional trace is
/// reconstructed from the replay), so either flag makes the experiment a
/// cache consumer; the split documents *how* each entry uses it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Needs {
    /// Walks the functional task-level trace.
    pub trace: bool,
    /// Drives the timing simulator straight from the recording.
    pub replay: bool,
}

impl Needs {
    /// Trace-walking experiments (all measurement figures/tables).
    pub const TRACE: Needs = Needs {
        trace: true,
        replay: false,
    };
    /// Timing runs riding the recording (Table 4, `profile`).
    pub const REPLAY: Needs = Needs {
        trace: false,
        replay: true,
    };
    /// Both (the `all`/`csv` umbrellas, `ext-zoo`).
    pub const BOTH: Needs = Needs {
        trace: true,
        replay: true,
    };
    /// Experiments that only re-generate workloads (`ext-taskform`) or
    /// prepare entirely on their own (tools).
    pub const NONE: Needs = Needs {
        trace: false,
        replay: false,
    };
}

/// How dispatch obtains prepared benchmarks. The CLI uses the default
/// (build + record through the artifact cache, once per invocation); the
/// resident server substitutes its in-memory pool of already-prepared,
/// `Arc`-shared benchmarks so repeated requests skip preparation
/// entirely.
pub trait BenchSource: Sync {
    /// Returns one prepared [`Bench`] per spec, in `specs` order.
    fn benches(
        &self,
        specs: &[Spec92],
        params: &WorkloadParams,
        pool: &Pool,
        cache: Option<&ArtifactCache>,
    ) -> Vec<Bench>;
}

/// Benchmarks prepared once per dispatch and reused by every experiment
/// (traces are shared, immutable, behind `Arc`). `--bench` narrows
/// preparation to one benchmark; running a single experiment narrows it to
/// the experiment's declared [`BenchSet`].
pub struct Prepared {
    benches: Vec<Bench>,
    narrowed: bool,
}

impl Prepared {
    /// Prepares the benchmark set — `bench` when given, the declared `set`
    /// otherwise — through the artifact cache when one is supplied.
    pub fn new(
        bench: Option<Spec92>,
        set: BenchSet,
        params: &WorkloadParams,
        pool: &Pool,
        cache: Option<&ArtifactCache>,
    ) -> Prepared {
        Prepared::with_source(bench, set, params, pool, cache, None)
    }

    /// [`Prepared::new`] with an optional [`BenchSource`] supplying the
    /// benchmarks (the serve path's resident pool).
    pub fn with_source(
        bench: Option<Spec92>,
        set: BenchSet,
        params: &WorkloadParams,
        pool: &Pool,
        cache: Option<&ArtifactCache>,
        source: Option<&dyn BenchSource>,
    ) -> Prepared {
        let (specs, narrowed): (&[Spec92], bool) = match &bench {
            Some(s) => (std::slice::from_ref(s), true),
            None => (set.specs(), false),
        };
        let benches = match source {
            Some(src) => src.benches(specs, params, pool, cache),
            None => prepare_set_cached(specs, params, pool, cache),
        };
        Prepared { benches, narrowed }
    }

    /// Wraps already-prepared benchmarks (tests, bespoke drivers).
    pub fn from_benches(benches: Vec<Bench>, narrowed: bool) -> Prepared {
        Prepared { benches, narrowed }
    }

    /// All prepared benchmarks.
    pub fn all(&self) -> &[Bench] {
        &self.benches
    }

    /// Whether `--bench` narrowed preparation to a single benchmark.
    pub fn narrowed(&self) -> bool {
        self.narrowed
    }

    /// The subset a figure studies (cloning is cheap: traces are
    /// `Arc`-shared). Under `--bench`, the single prepared benchmark.
    pub fn subset(&self, wanted: &[Spec92]) -> Vec<Bench> {
        if self.narrowed {
            return self.benches.clone();
        }
        wanted
            .iter()
            .map(|&s| {
                self.benches
                    .iter()
                    .find(|b| b.spec == s)
                    .expect("prepared")
                    .clone()
            })
            .collect()
    }

    /// The benchmark Figure 6 studies (gcc unless `--bench` narrows).
    pub fn gcc(&self) -> &Bench {
        self.benches
            .iter()
            .find(|b| b.spec == Spec92::Gcc)
            .unwrap_or(&self.benches[0])
    }
}

/// Everything one dispatched request's experiments run against: the
/// prepared benchmarks, the job pool, the full typed request, and lazily
/// computed shared results.
pub struct ExpCtx<'a> {
    /// The prepared benchmark set.
    pub prep: &'a Prepared,
    /// The `--threads`-wide job pool.
    pub pool: &'a Pool,
    /// The request being executed (format, tool options, ...).
    pub req: &'a Request,
    /// Which engine drives Table 4 (`--engine`; replay by default).
    pub engine: Engine,
    /// Workload parameters (for experiments that re-generate workloads).
    pub params: WorkloadParams,
    /// Timing-model parameters (the paper's).
    pub config: TimingConfig,
    /// Collect per-ring-unit occupancy in `profile` (`--occupancy`).
    pub occupancy: bool,
    /// The artifact store this dispatch prepares through, if caching is
    /// enabled.
    pub store: Option<&'a ArtifactCache>,
    /// The resolved artifact-cache directory (the `cache` tool operates on
    /// it even when `--no-cache` disabled preparation caching).
    pub cache_dir: std::path::PathBuf,
    fig10_fig11: OnceCell<(Vec<Fig10Row>, Vec<Fig11Row>)>,
    table4: OnceCell<Vec<Table4Row>>,
    profile: OnceCell<Vec<ProfileRow>>,
}

impl<'a> ExpCtx<'a> {
    /// A fresh context with empty caches, carrying `req`'s parameters.
    pub fn new(
        prep: &'a Prepared,
        pool: &'a Pool,
        req: &'a Request,
        store: Option<&'a ArtifactCache>,
        cache_dir: std::path::PathBuf,
    ) -> Self {
        ExpCtx {
            prep,
            pool,
            req,
            engine: req.engine,
            params: req.params,
            config: TimingConfig::paper(),
            occupancy: req.opts.occupancy,
            store,
            cache_dir,
            fig10_fig11: OnceCell::new(),
            table4: OnceCell::new(),
            profile: OnceCell::new(),
        }
    }

    /// Figures 10 and 11 share their predictor runs; computed once and
    /// served to both entries (and both CSVs).
    pub fn fig10_fig11(&self) -> &(Vec<Fig10Row>, Vec<Fig11Row>) {
        self.fig10_fig11
            .get_or_init(|| experiments::fig10_fig11(self.prep.all(), self.pool))
    }

    /// Figure 11's plotted rows: the full shared pass narrowed to the pair
    /// the paper plots (gcc, espresso) unless `--bench` already narrowed.
    pub fn fig11_rows(&self) -> Vec<Fig11Row> {
        let rows = self.fig10_fig11().1.clone();
        if self.prep.narrowed() {
            return rows;
        }
        rows.into_iter()
            .filter(|r| r.name == "gcc" || r.name == "espresso")
            .collect()
    }

    /// Table 4's rows under the selected engine; computed once and served
    /// to the table renderer and the CSV writer alike.
    pub fn table4(&self) -> &[Table4Row] {
        self.table4.get_or_init(|| {
            experiments::table4(self.prep.all(), &self.config, self.pool, self.engine)
        })
    }

    /// The cycle-attribution profile grid; computed once per dispatch.
    pub fn profile(&self) -> &[ProfileRow] {
        self.profile.get_or_init(|| {
            profile::profile(self.prep.all(), &self.config, self.pool, self.occupancy)
        })
    }
}

/// Which subcommand groups an experiment belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Group {
    /// A paper table/figure: runs under `all`, exports under `csv`.
    Paper,
    /// A beyond-the-paper extension: runs under `ext`.
    Ext,
    /// A standalone tool (e.g. `profile`, `lint`): runs only by name.
    Tool,
}

/// A renderer: experiment context in, output text out.
pub type RenderFn = fn(&ExpCtx) -> String;

/// A named output file (CSV export or run artifact): file name + writer.
pub type FileOutput = (&'static str, RenderFn);

/// A tool body: the full fallible run, errors as values.
pub type RunFn = fn(&ExpCtx) -> Result<Output, String>;

/// The structured outcome of one executed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Output {
    /// The exact bytes the CLI prints to stdout (trailing newlines
    /// included), and the server memoises.
    pub body: String,
    /// Artifact files the run produces: `(relative path, content)`. The
    /// CLI writes them; the server reports their names.
    pub files: Vec<(String, String)>,
    /// Whether the run passed. `false` — failed verify claims, denied lint
    /// warnings, fuzz findings — maps to CLI exit code 1 with the body
    /// still printed.
    pub ok: bool,
}

impl Output {
    /// A passing, file-less text output.
    pub fn text(body: impl Into<String>) -> Output {
        Output {
            body: body.into(),
            files: Vec::new(),
            ok: true,
        }
    }
}

/// How an experiment executes.
pub enum Kind {
    /// Declarative renderers over a shared [`ExpCtx`]; the request's
    /// format picks text, CSV or JSON from the same run.
    Rendered {
        /// Renders the human-readable table.
        render: RenderFn,
        /// CSV export: file name and writer, when the experiment has one.
        csv: Option<FileOutput>,
        /// JSON serialisation (`--format json`), when supported.
        json: Option<RenderFn>,
        /// An artifact file written whenever the experiment runs by name.
        artifact: Option<FileOutput>,
    },
    /// A self-contained fallible tool.
    Tool(RunFn),
}

/// One registered experiment: its CLI/wire name plus everything the
/// harness can do with it, declared once.
pub struct Experiment {
    /// CLI subcommand / wire name.
    pub name: &'static str,
    /// Grouping for the `all` / `ext` / `csv` umbrellas.
    pub group: Group,
    /// The benchmark set this experiment reads — prepared (and only it)
    /// when the experiment runs; folded into [`input_fingerprint`].
    pub benches: BenchSet,
    /// Which derived artifacts it consumes per benchmark.
    pub needs: Needs,
    /// How it executes.
    pub kind: Kind,
    /// Whether a run is a pure function of its [`Request`] — the server
    /// memoises only these. `false` for disk-mutating tools (`cache`) and
    /// the wall-clock `bench-pr*` probes.
    pub cache_safe: bool,
}

impl Experiment {
    /// The CSV export, when the experiment registers one.
    pub fn csv_output(&self) -> Option<FileOutput> {
        match self.kind {
            Kind::Rendered { csv, .. } => csv,
            Kind::Tool(_) => None,
        }
    }
}

/// Every experiment and tool the harness knows, in `all`-output order
/// (paper artifacts first, then extensions, then tools).
pub const REGISTRY: &[Experiment] = &[
    Experiment {
        name: "table2",
        group: Group::Paper,
        benches: BenchSet::All,
        needs: Needs::TRACE,
        kind: Kind::Rendered {
            render: |c| report::render_table2(&experiments::table2(c.prep.all())),
            csv: Some(("table2.csv", |c| {
                csv::table2(&experiments::table2(c.prep.all()))
            })),
            json: None,
            artifact: None,
        },
        cache_safe: true,
    },
    Experiment {
        name: "fig3",
        group: Group::Paper,
        benches: BenchSet::All,
        needs: Needs::TRACE,
        kind: Kind::Rendered {
            render: |c| report::render_fig3(&experiments::fig3(c.prep.all())),
            csv: Some(("fig3.csv", |c| csv::fig3(&experiments::fig3(c.prep.all())))),
            json: None,
            artifact: None,
        },
        cache_safe: true,
    },
    Experiment {
        name: "fig4",
        group: Group::Paper,
        benches: BenchSet::All,
        needs: Needs::TRACE,
        kind: Kind::Rendered {
            render: |c| report::render_fig4(&experiments::fig4(c.prep.all())),
            csv: Some(("fig4.csv", |c| csv::fig4(&experiments::fig4(c.prep.all())))),
            json: None,
            artifact: None,
        },
        cache_safe: true,
    },
    Experiment {
        name: "fig6",
        group: Group::Paper,
        benches: BenchSet::Gcc,
        needs: Needs::TRACE,
        kind: Kind::Rendered {
            render: |c| report::render_fig6(&experiments::fig6(c.prep.gcc(), c.pool)),
            csv: Some(("fig6.csv", |c| {
                csv::fig6(&experiments::fig6(c.prep.gcc(), c.pool))
            })),
            json: None,
            artifact: None,
        },
        cache_safe: true,
    },
    Experiment {
        name: "fig7",
        group: Group::Paper,
        benches: BenchSet::All,
        needs: Needs::TRACE,
        kind: Kind::Rendered {
            render: |c| report::render_fig7(&experiments::fig7(c.prep.all(), c.pool)),
            csv: Some(("fig7.csv", |c| {
                csv::fig7(&experiments::fig7(c.prep.all(), c.pool))
            })),
            json: None,
            artifact: None,
        },
        cache_safe: true,
    },
    Experiment {
        name: "fig8",
        group: Group::Paper,
        benches: BenchSet::GccXlisp,
        needs: Needs::TRACE,
        kind: Kind::Rendered {
            // The paper studies the two indirect-heavy benchmarks.
            render: |c| {
                let b = c.prep.subset(&[Spec92::Gcc, Spec92::Xlisp]);
                report::render_fig8(&experiments::fig8(&b, c.pool))
            },
            csv: Some(("fig8.csv", |c| {
                let b = c.prep.subset(&[Spec92::Gcc, Spec92::Xlisp]);
                csv::fig8(&experiments::fig8(&b, c.pool))
            })),
            json: None,
            artifact: None,
        },
        cache_safe: true,
    },
    Experiment {
        name: "fig10",
        group: Group::Paper,
        benches: BenchSet::All,
        needs: Needs::TRACE,
        kind: Kind::Rendered {
            render: |c| report::render_fig10(&c.fig10_fig11().0),
            csv: Some(("fig10.csv", |c| csv::fig10(&c.fig10_fig11().0))),
            json: None,
            artifact: None,
        },
        cache_safe: true,
    },
    Experiment {
        name: "fig11",
        group: Group::Paper,
        benches: BenchSet::All,
        needs: Needs::TRACE,
        kind: Kind::Rendered {
            render: |c| report::render_fig11(&c.fig11_rows()),
            csv: Some(("fig11.csv", |c| csv::fig11(&c.fig11_rows()))),
            json: None,
            artifact: None,
        },
        cache_safe: true,
    },
    Experiment {
        name: "fig12",
        group: Group::Paper,
        benches: BenchSet::GccXlisp,
        needs: Needs::TRACE,
        kind: Kind::Rendered {
            render: |c| {
                let b = c.prep.subset(&[Spec92::Gcc, Spec92::Xlisp]);
                report::render_fig12(&experiments::fig12(&b, c.pool))
            },
            csv: Some(("fig12.csv", |c| {
                let b = c.prep.subset(&[Spec92::Gcc, Spec92::Xlisp]);
                csv::fig12(&experiments::fig12(&b, c.pool))
            })),
            json: None,
            artifact: None,
        },
        cache_safe: true,
    },
    Experiment {
        name: "table3",
        group: Group::Paper,
        benches: BenchSet::All,
        needs: Needs::TRACE,
        kind: Kind::Rendered {
            render: |c| report::render_table3(&experiments::table3(c.prep.all(), c.pool)),
            csv: Some(("table3.csv", |c| {
                csv::table3(&experiments::table3(c.prep.all(), c.pool))
            })),
            json: None,
            artifact: None,
        },
        cache_safe: true,
    },
    Experiment {
        name: "table4",
        group: Group::Paper,
        benches: BenchSet::All,
        needs: Needs::REPLAY,
        kind: Kind::Rendered {
            render: |c| report::render_table4(c.table4()),
            csv: Some(("table4.csv", |c| csv::table4(c.table4()))),
            json: None,
            artifact: None,
        },
        cache_safe: true,
    },
    Experiment {
        name: "ext-staleness",
        group: Group::Ext,
        benches: BenchSet::All,
        needs: Needs::TRACE,
        kind: Kind::Rendered {
            render: |c| report::render_staleness(&extensions::ext_staleness(c.prep.all())),
            csv: Some(("ext_staleness.csv", |c| {
                csv::staleness(&extensions::ext_staleness(c.prep.all()))
            })),
            json: None,
            artifact: None,
        },
        cache_safe: true,
    },
    Experiment {
        name: "ext-hybrid",
        group: Group::Ext,
        benches: BenchSet::All,
        needs: Needs::TRACE,
        kind: Kind::Rendered {
            render: |c| report::render_hybrid(&extensions::ext_hybrid(c.prep.all())),
            csv: None,
            json: None,
            artifact: None,
        },
        cache_safe: true,
    },
    Experiment {
        name: "ext-taskform",
        group: Group::Ext,
        benches: BenchSet::None,
        needs: Needs::NONE,
        kind: Kind::Rendered {
            render: |c| report::render_taskform(&extensions::ext_taskform(&c.params)),
            csv: None,
            json: None,
            artifact: None,
        },
        cache_safe: true,
    },
    Experiment {
        name: "ext-memory",
        group: Group::Ext,
        benches: BenchSet::All,
        needs: Needs::TRACE,
        kind: Kind::Rendered {
            render: |c| report::render_memory(&extensions::ext_memory(c.prep.all())),
            csv: None,
            json: None,
            artifact: None,
        },
        cache_safe: true,
    },
    Experiment {
        name: "ext-confidence",
        group: Group::Ext,
        benches: BenchSet::All,
        needs: Needs::TRACE,
        kind: Kind::Rendered {
            render: |c| report::render_confidence(&extensions::ext_confidence(c.prep.all())),
            csv: None,
            json: None,
            artifact: None,
        },
        cache_safe: true,
    },
    Experiment {
        name: "ext-intra",
        group: Group::Ext,
        benches: BenchSet::All,
        needs: Needs::TRACE,
        kind: Kind::Rendered {
            render: |c| report::render_intra(&extensions::ext_intra(c.prep.all())),
            csv: None,
            json: None,
            artifact: None,
        },
        cache_safe: true,
    },
    Experiment {
        name: "ext-pollution",
        group: Group::Ext,
        benches: BenchSet::All,
        needs: Needs::TRACE,
        kind: Kind::Rendered {
            render: |c| report::render_pollution(&extensions::ext_pollution(c.prep.all())),
            csv: Some(("ext_pollution.csv", |c| {
                csv::pollution(&extensions::ext_pollution(c.prep.all()))
            })),
            json: None,
            artifact: None,
        },
        cache_safe: true,
    },
    Experiment {
        name: "ext-zoo",
        group: Group::Ext,
        benches: BenchSet::All,
        needs: Needs::BOTH,
        kind: Kind::Rendered {
            render: |c| report::render_zoo(&extensions::ext_zoo(c.prep.all())),
            csv: None,
            json: None,
            artifact: None,
        },
        cache_safe: true,
    },
    Experiment {
        name: "profile",
        group: Group::Tool,
        benches: BenchSet::All,
        needs: Needs::REPLAY,
        kind: Kind::Rendered {
            render: |c| profile::render(c.profile()),
            csv: None,
            json: Some(|c| profile::to_json(c.profile())),
            artifact: Some(("profile.json", |c| profile::to_json(c.profile()))),
        },
        cache_safe: true,
    },
    Experiment {
        name: "all",
        group: Group::Tool,
        benches: BenchSet::All,
        needs: Needs::BOTH,
        kind: Kind::Tool(run_all),
        cache_safe: true,
    },
    Experiment {
        name: "ext",
        group: Group::Tool,
        benches: BenchSet::All,
        needs: Needs::BOTH,
        kind: Kind::Tool(run_ext),
        cache_safe: true,
    },
    Experiment {
        name: "csv",
        group: Group::Tool,
        benches: BenchSet::All,
        needs: Needs::BOTH,
        kind: Kind::Tool(run_csv),
        cache_safe: true,
    },
    Experiment {
        name: "verify",
        group: Group::Tool,
        benches: BenchSet::None,
        needs: Needs::NONE,
        kind: Kind::Tool(crate::verify::run_tool),
        cache_safe: true,
    },
    Experiment {
        name: "lint",
        group: Group::Tool,
        benches: BenchSet::None,
        needs: Needs::NONE,
        kind: Kind::Tool(crate::lint::run_tool),
        cache_safe: true,
    },
    Experiment {
        name: "fuzz",
        group: Group::Tool,
        benches: BenchSet::None,
        needs: Needs::NONE,
        // Deterministic per seed range, but `--repro` reads a file; the
        // server additionally skips memoisation for repro requests.
        kind: Kind::Tool(crate::fuzz::run_tool),
        cache_safe: true,
    },
    Experiment {
        name: "asm",
        group: Group::Tool,
        benches: BenchSet::None,
        needs: Needs::NONE,
        // Reads a file from disk, so the server must not memoise: the
        // same request can legitimately produce different bytes after an
        // edit (the *artifact* cache is still safe — the replay key folds
        // the source bytes).
        kind: Kind::Tool(crate::masm::run_asm),
        cache_safe: false,
    },
    Experiment {
        name: "disasm",
        group: Group::Tool,
        benches: BenchSet::None,
        needs: Needs::NONE,
        kind: Kind::Tool(crate::masm::run_disasm),
        cache_safe: false,
    },
    Experiment {
        name: "cache",
        group: Group::Tool,
        benches: BenchSet::None,
        needs: Needs::NONE,
        kind: Kind::Tool(crate::cache::run_tool),
        cache_safe: false,
    },
    Experiment {
        name: "bench-pr1",
        group: Group::Tool,
        benches: BenchSet::None,
        needs: Needs::NONE,
        kind: Kind::Tool(crate::bench_pr1::run_tool),
        cache_safe: false,
    },
    Experiment {
        name: "bench-pr2",
        group: Group::Tool,
        benches: BenchSet::None,
        needs: Needs::NONE,
        kind: Kind::Tool(crate::bench_pr2::run_tool),
        cache_safe: false,
    },
    Experiment {
        name: "bench-pr5",
        group: Group::Tool,
        benches: BenchSet::None,
        needs: Needs::NONE,
        kind: Kind::Tool(crate::bench_pr5::run_tool),
        cache_safe: false,
    },
    Experiment {
        name: "bench-pr6",
        group: Group::Tool,
        benches: BenchSet::None,
        needs: Needs::NONE,
        kind: Kind::Tool(crate::bench_pr6::run_tool),
        cache_safe: false,
    },
];

/// `harness all`: every paper table/figure, in registry order — the same
/// bytes as running each by name, one blank-line-terminated block each.
fn run_all(ctx: &ExpCtx) -> Result<Output, String> {
    let mut body = String::new();
    for exp in by_group(Group::Paper) {
        if let Kind::Rendered { render, .. } = exp.kind {
            body.push_str(&render(ctx));
            body.push('\n');
        }
    }
    Ok(Output::text(body))
}

/// `harness ext`: every beyond-the-paper extension, in registry order.
fn run_ext(ctx: &ExpCtx) -> Result<Output, String> {
    let mut body = String::new();
    for exp in by_group(Group::Ext) {
        if let Kind::Rendered { render, .. } = exp.kind {
            body.push_str(&render(ctx));
            body.push('\n');
        }
    }
    Ok(Output::text(body))
}

/// `harness csv`: every registered CSV export into `--csv DIR`
/// (`results` by default), in registry order.
fn run_csv(ctx: &ExpCtx) -> Result<Output, String> {
    let dir = ctx
        .req
        .opts
        .csv_dir
        .clone()
        .unwrap_or_else(|| "results".to_string());
    let mut files = Vec::new();
    for exp in REGISTRY {
        if let Some((name, write)) = exp.csv_output() {
            files.push((format!("{dir}/{name}"), write(ctx)));
        }
    }
    Ok(Output {
        body: format!("wrote CSV results to {dir}\n"),
        files,
        ok: true,
    })
}

/// Looks an experiment up by CLI/wire name.
pub fn find(name: &str) -> Option<&'static Experiment> {
    REGISTRY.iter().find(|e| e.name == name)
}

/// The registered experiments of one group, in registry order.
pub fn by_group(group: Group) -> impl Iterator<Item = &'static Experiment> {
    REGISTRY.iter().filter(move |e| e.group == group)
}

/// The process-level resources one dispatch runs with. These deliberately
/// sit outside [`Request`]: they are where the run executes (pool width,
/// cache location), not what it computes.
pub struct Resources<'a> {
    /// The job pool experiments fan out on.
    pub pool: &'a Pool,
    /// The artifact store preparation reads/writes (`None` = `--no-cache`).
    pub store: Option<&'a ArtifactCache>,
    /// The resolved cache directory (the `cache` tool's target even when
    /// `store` is `None`).
    pub cache_dir: std::path::PathBuf,
    /// Substitute benchmark preparation (the server's resident pool).
    pub source: Option<&'a dyn BenchSource>,
}

/// The one dispatch path shared by the CLI and the server: look the
/// experiment up, prepare its declared benchmark set, execute it into a
/// structured [`Output`]. Unknown names, unsupported formats and tool
/// failures all come back as `Err` values — the CLI prints them to stderr,
/// the server wraps them in `Response::Error`.
pub fn dispatch(req: &Request, res: &Resources) -> Result<Output, String> {
    let exp =
        find(&req.experiment).ok_or_else(|| format!("unknown experiment `{}`", req.experiment))?;
    // Reject unsupported formats *before* paying for preparation.
    if let Kind::Rendered { csv, json, .. } = &exp.kind {
        match req.format {
            OutputFormat::Csv if csv.is_none() => {
                return Err(format!("experiment `{}` has no csv output", exp.name))
            }
            OutputFormat::Json if json.is_none() => {
                return Err(format!("experiment `{}` has no json output", exp.name))
            }
            _ => {}
        }
    }
    // Tools that manage their own preparation declare an empty set;
    // `--bench` narrowing only applies where preparation happens at all.
    let bench = if exp.benches.specs().is_empty() {
        None
    } else {
        req.bench
    };
    let prep = Prepared::with_source(
        bench,
        exp.benches,
        &req.params,
        res.pool,
        res.store,
        res.source,
    );
    let ctx = ExpCtx::new(&prep, res.pool, req, res.store, res.cache_dir.clone());
    execute(exp, &ctx)
}

/// Executes one registry entry against a prepared context.
pub fn execute(exp: &Experiment, ctx: &ExpCtx) -> Result<Output, String> {
    match &exp.kind {
        Kind::Tool(run) => run(ctx),
        Kind::Rendered {
            render,
            csv,
            json,
            artifact,
        } => {
            let body = match ctx.req.format {
                OutputFormat::Text => format!("{}\n", render(ctx)),
                OutputFormat::Csv => {
                    let (_, write) =
                        csv.ok_or(format!("experiment `{}` has no csv output", exp.name))?;
                    write(ctx)
                }
                OutputFormat::Json => {
                    let write =
                        json.ok_or(format!("experiment `{}` has no json output", exp.name))?;
                    write(ctx)
                }
            };
            let files = artifact
                .map(|(name, write)| vec![(name.to_string(), write(ctx))])
                .unwrap_or_default();
            Ok(Output {
                body,
                files,
                ok: true,
            })
        }
    }
}

/// The cache key every benchmark would be prepared under at `params` —
/// computed without recording anything (see [`crate::cache::key_for`]).
/// The shared key-derivation path: `harness cache stats` folds these into
/// per-experiment coverage, and the serve result cache folds them into
/// [`result_key`].
pub fn bench_keys(params: &WorkloadParams) -> Vec<(Spec92, Fingerprint)> {
    Spec92::ALL
        .iter()
        .map(|&s| (s, crate::cache::key_for(s, params)))
        .collect()
}

/// The content address of everything `exp` reads: its name folded with the
/// cache key of each benchmark in its declared set. `keys` maps every
/// spec to its replay-artifact key (see [`bench_keys`]) so callers compute
/// the five keys once and fold them per experiment.
pub fn input_fingerprint(exp: &Experiment, keys: &[(Spec92, Fingerprint)]) -> Fingerprint {
    let mut h = FingerprintHasher::new();
    exp.name.hash(&mut h);
    for &spec in exp.benches.specs() {
        let key = keys
            .iter()
            .find(|(s, _)| *s == spec)
            .map(|(_, k)| *k)
            .expect("key for every spec");
        key.hash(&mut h);
    }
    h.finish128()
}

/// The serve result cache's memoisation key: [`input_fingerprint`] (the
/// experiment's content-addressed inputs) × engine × workload parameters ×
/// output format × every tool option that can change the rendered bytes.
/// Two requests with equal keys produce byte-identical [`Output`]s, so a
/// cached body can be replayed verbatim.
pub fn result_key(exp: &Experiment, req: &Request, keys: &[(Spec92, Fingerprint)]) -> Fingerprint {
    let mut h = FingerprintHasher::new();
    input_fingerprint(exp, keys).hash(&mut h);
    req.params.seed.hash(&mut h);
    req.params.scale.hash(&mut h);
    req.engine.name().hash(&mut h);
    req.format.name().hash(&mut h);
    req.bench.map(|b| b.name()).hash(&mut h);
    let o = &req.opts;
    o.occupancy.hash(&mut h);
    o.deny_warnings.hash(&mut h);
    o.speculation.hash(&mut h);
    o.smoke.hash(&mut h);
    o.explain.hash(&mut h);
    o.seeds.as_ref().map(|r| (r.start, r.end)).hash(&mut h);
    o.repro.hash(&mut h);
    o.cache_action.map(|a| a.name()).hash(&mut h);
    o.cache_max_bytes.hash(&mut h);
    o.csv_dir.hash(&mut h);
    o.file.hash(&mut h);
    h.finish128()
}
